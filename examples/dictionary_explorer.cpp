// Dictionary explorer: run the whole pipeline on any registered benchmark
// or external .bench file, print the resulting dictionary statistics, and
// optionally save the same/different dictionary to disk.
//
//   $ ./dictionary_explorer s344
//   $ ./dictionary_explorer path/to/circuit.bench --ttype=10det --save=dict.txt
//   $ ./dictionary_explorer s298 --ttype=diag --calls1=20 --hybrid=true
//   $ ./dictionary_explorer s1423 --deadline=2.5   # anytime: best-so-far
#include <cstdio>
#include <exception>
#include <fstream>

#include "bmcirc/registry.h"
#include "compact/compact.h"
#include "core/baseline.h"
#include "core/hybrid.h"
#include "core/procedure2.h"
#include "dict/full_dict.h"
#include "dict/passfail_dict.h"
#include "dict/samediff_dict.h"
#include "dict/serialize.h"
#include "fault/collapse.h"
#include "netlist/bench_io.h"
#include "netlist/stats.h"
#include "netlist/transform.h"
#include "repo/repository.h"
#include "store/signature_store.h"
#include "tgen/diagset.h"
#include "tgen/ndetect.h"
#include "util/budget.h"
#include "util/cli.h"
#include "util/fileio.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace sddict;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: dictionary_explorer <benchmark-or-bench-file>\n"
               "  [--ttype=diag|10det] [--calls1=N] [--lower=N] [--seed=N]\n"
               "  [--threads=N] [--deadline=SECONDS] [--hybrid=true]\n"
               "  [--save=FILE] [--export-store=FILE [--force]]\n"
               "  [--publish=REPODIR [--append=N]]\n"
               "  [--compact[=lossless|lossy:EPS]]\n\n"
               "registered benchmarks:");
  for (const auto& n : benchmark_names()) std::fprintf(stderr, " %s", n.c_str());
  std::fprintf(stderr, "\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto unknown = args.unknown_flags(
      {"ttype", "calls1", "lower", "seed", "threads", "deadline", "hybrid",
       "save", "export-store", "force", "publish", "compact", "append"});
  if (!unknown.empty()) {
    for (const auto& f : unknown)
      std::fprintf(stderr, "unknown flag --%s\n", f.c_str());
    return usage();
  }
  if (args.positional().size() != 1) return usage();

  std::string ttype;
  std::uint64_t seed = 1;
  std::size_t threads = 0, lower = 10, calls1 = 10;
  double deadline = 0;
  bool hybrid = false;
  bool force = false;
  bool do_compact = false;
  std::uint64_t compact_loss = 0;
  std::size_t append_n = 0;
  try {
    ttype = args.get("ttype", "diag");
    seed = static_cast<std::uint64_t>(args.get_int("seed", 1, 0));
    // 0 = hardware concurrency; results are identical at any thread count.
    threads = static_cast<std::size_t>(args.get_int("threads", 0, 0, 4096));
    lower = static_cast<std::size_t>(args.get_int("lower", 10, 1, 1 << 20));
    calls1 = static_cast<std::size_t>(args.get_int("calls1", 10, 1, 1 << 20));
    deadline = args.get_double("deadline", 0);
    if (deadline < 0)
      throw std::invalid_argument("flag --deadline must be >= 0");
    hybrid = args.get_bool("hybrid", false);
    force = args.get_bool("force", false);
    if (args.has("compact")) {
      do_compact = true;
      // Bare --compact means lossless; --compact=lossy:EPS tolerates EPS
      // extra indistinguished fault pairs in the exported store.
      const std::string mode = args.get("compact");
      if (mode != "true" && mode != "lossless") {
        if (mode.rfind("lossy:", 0) != 0)
          throw std::invalid_argument("bad --compact=" + mode +
                                      " (use lossless or lossy:EPS)");
        const std::string eps = mode.substr(6);
        std::size_t consumed = 0;
        compact_loss = static_cast<std::uint64_t>(std::stoll(eps, &consumed));
        if (consumed != eps.size())
          throw std::invalid_argument("bad --compact=" + mode +
                                      " (use lossless or lossy:EPS)");
      }
    }
    append_n =
        static_cast<std::size_t>(args.get_int("append", 0, 0, 1 << 20));
    if (append_n > 0 && !args.has("publish"))
      throw std::invalid_argument("--append needs --publish");
    if (append_n > 0 && do_compact)
      throw std::invalid_argument("--append and --compact are exclusive");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return usage();
  }

  const std::string target = args.positional()[0];
  Netlist nl;
  try {
    nl = is_known_benchmark(target) ? load_benchmark(target)
                                    : parse_bench_file(target);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return usage();
  }
  if (nl.has_dffs()) nl = full_scan(nl);
  std::printf("%s\n", format_stats(nl).c_str());

  const FaultList faults = collapsed_fault_list(nl).collapsed;

  // One absolute deadline for the whole pipeline: each stage receives the
  // time remaining when it starts, returns its best-so-far result on
  // expiry, and the stage stop reasons are reported below.
  RunBudget pipeline_budget;
  pipeline_budget.max_seconds = deadline;
  BudgetScope pipeline(pipeline_budget);
  Timer pipeline_timer;  // build wall time, recorded by --publish

  TestSet tests(nl.num_inputs());
  StopReason testgen_reason = StopReason::kCompleted;
  if (ttype == "diag") {
    DiagSetOptions dopts;
    dopts.seed = seed;
    dopts.budget = pipeline.nested();
    const DiagSetResult r = generate_diagnostic(nl, faults, dopts);
    tests = r.tests;
    testgen_reason = r.stop_reason;
  } else if (ttype == "10det") {
    NDetectOptions nopts;
    nopts.n = 10;
    nopts.seed = seed;
    nopts.budget = pipeline.nested();
    const NDetectResult r = generate_ndetect(nl, faults, nopts);
    tests = r.tests;
    testgen_reason = r.stop_reason;
  } else {
    std::fprintf(stderr, "unknown --ttype=%s (use diag or 10det)\n",
                 ttype.c_str());
    return usage();
  }
  if (tests.size() == 0) {
    std::fprintf(stderr, "deadline expired before any test was generated\n");
    return 1;
  }

  ResponseMatrixStatus rm_status;
  const ResponseMatrix rm = build_response_matrix(
      nl, faults, tests,
      {.num_threads = threads, .budget = pipeline.nested()}, &rm_status);
  const FullDictionary full = FullDictionary::build(rm);
  const PassFailDictionary pf = PassFailDictionary::build(rm);

  BaselineSelectionConfig bcfg;
  bcfg.lower = lower;
  bcfg.calls1 = calls1;
  bcfg.seed = seed;
  bcfg.num_threads = threads;
  bcfg.target_indistinguished = full.indistinguished_pairs();
  bcfg.budget = pipeline.nested();
  const BaselineSelection p1 = run_procedure1(rm, bcfg);
  Procedure2Config p2cfg;
  p2cfg.target_indistinguished = full.indistinguished_pairs();
  p2cfg.budget = pipeline.nested();
  const Procedure2Result p2 = run_procedure2(rm, p1.baselines, p2cfg);
  const SameDifferentDictionary sd =
      SameDifferentDictionary::build(rm, p2.baselines);

  std::printf("\n%zu faults, %zu tests (%s), %zu outputs\n", faults.size(),
              tests.size(), ttype.c_str(), nl.num_outputs());
  std::printf("%-16s %14s %22s\n", "dictionary", "size (bits)",
              "indistinguished pairs");
  std::printf("%-16s %14llu %22llu\n", "full",
              (unsigned long long)full.size_bits(),
              (unsigned long long)full.indistinguished_pairs());
  std::printf("%-16s %14llu %22llu\n", "pass/fail",
              (unsigned long long)pf.size_bits(),
              (unsigned long long)pf.indistinguished_pairs());
  std::printf("%-16s %14llu %22llu  (Procedure 1: %llu over %zu calls)\n",
              "same/different", (unsigned long long)sd.size_bits(),
              (unsigned long long)sd.indistinguished_pairs(),
              (unsigned long long)p1.indistinguished_pairs, p1.calls_used);
  if (deadline > 0)
    std::printf("deadline %.3fs: testgen=%s faultsim=%s proc1=%s proc2=%s\n",
                deadline, stop_reason_name(testgen_reason),
                stop_reason_name(rm_status.stop_reason),
                stop_reason_name(p1.stop_reason),
                stop_reason_name(p2.stop_reason));

  if (hybrid) {
    const HybridResult hyb = hybridize_baselines(rm, p2.baselines);
    std::printf("%-16s %14llu %22llu  (%zu/%zu baselines stored)\n",
                "s/d hybrid", (unsigned long long)hyb.size_bits,
                (unsigned long long)hyb.indistinguished_pairs,
                hyb.stored_baselines, tests.size());
  }

  const std::string save = args.get("save");
  if (!save.empty()) {
    std::ofstream out(save);
    try {
      write_dictionary(sd, out);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "failed to write %s: %s\n", save.c_str(), e.what());
      return 1;
    }
    std::printf("same/different dictionary written to %s\n", save.c_str());
  }

  // Dictionary-aware test-set compaction (src/compact): drop store columns
  // that distinguish no extra fault pair, lossless by default. Applied to
  // whatever artifact is exported or published below.
  auto maybe_compact = [&](SignatureStore store) {
    if (!do_compact) return store;
    CompactionOptions copts;
    copts.max_resolution_loss = compact_loss;
    CompactionResult cr = compact_store(store, copts);
    std::printf("compacted tests=%zu->%zu dropped=%zu pairs=%llu->%llu "
                "bytes=%zu->%zu\n",
                cr.report.tests_before, cr.report.tests_after,
                cr.report.dropped.size(),
                (unsigned long long)cr.report.pairs_before,
                (unsigned long long)cr.report.pairs_after,
                cr.report.bytes_before, cr.report.bytes_after);
    return std::move(cr.store);
  };

  // Packed serving artifact: what sddict_serve loads (mmap-ready, CRC'd).
  const std::string export_store = args.get("export-store");
  if (!export_store.empty()) {
    try {
      if (!dir_exists(parent_dir(export_store)))
        throw std::runtime_error("output directory " +
                                 parent_dir(export_store) + " does not exist");
      if (!force && file_exists(export_store))
        throw std::runtime_error(export_store +
                                 " already exists (pass --force to overwrite)");
      const SignatureStore store = maybe_compact(SignatureStore::build(sd));
      store.write_file(export_store);
      std::printf("same/different store written to %s (%zu bytes)\n",
                  export_store.c_str(), store.size_bytes());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "failed to write %s: %s\n", export_store.c_str(),
                   e.what());
      return 1;
    }
  }

  // Publish into a repository catalog (sddict_serve --repo serves it).
  const std::string publish = args.get("publish");
  if (!publish.empty()) {
    try {
      // Circuit name: registered benchmark name, or the file's base name.
      std::string circuit = target;
      if (const std::size_t slash = circuit.find_last_of('/');
          slash != std::string::npos)
        circuit = circuit.substr(slash + 1);
      if (const std::size_t dot = circuit.rfind(".bench");
          dot != std::string::npos)
        circuit = circuit.substr(0, dot);

      Provenance prov;
      prov.tests_hash = hash_hex(hash_testset(tests));
      prov.faults_hash = hash_hex(hash_faultlist(faults));
      prov.config = "ttype=" + ttype + ",seed=" + std::to_string(seed) +
                    ",calls1=" + std::to_string(calls1) +
                    ",lower=" + std::to_string(lower);

      DictionaryRepository repo(publish);
      if (append_n > 0) {
        // Incremental maintenance: instead of republishing the whole
        // store, catalog N extra seeded random tests as an added-columns
        // delta on top of the current latest version. Base columns are
        // untouched; only the new columns are simulated and stored.
        const Manifest catalog = repo.manifest();
        const ManifestEntry* base =
            catalog.find(circuit, StoreSource::kSameDifferent);
        if (base == nullptr)
          throw std::runtime_error(
              "--append needs a published base version (run --publish "
              "without --append first)");
        if (!base->provenance.faults_hash.empty() &&
            base->provenance.faults_hash != prov.faults_hash)
          throw std::runtime_error(
              "fault list changed since base version " +
              std::to_string(base->version) + " (full republish required)");
        TestSet extended = tests;
        Rng arng(seed ^ 0xA99E4Dull);
        extended.add_random(append_n, arng);
        std::vector<std::size_t> idx(append_n);
        for (std::size_t i = 0; i < append_n; ++i) idx[i] = tests.size() + i;
        const TestSet appended = extended.subset(idx);
        const ResponseMatrix arm = build_response_matrix(
            nl, faults, appended, {.num_threads = threads});
        const FullDictionary afull = FullDictionary::build(arm);
        BaselineSelectionConfig abcfg = bcfg;
        abcfg.target_indistinguished = afull.indistinguished_pairs();
        const BaselineSelection ap1 = run_procedure1(arm, abcfg);
        Procedure2Config ap2cfg;
        ap2cfg.target_indistinguished = afull.indistinguished_pairs();
        const Procedure2Result ap2 = run_procedure2(arm, ap1.baselines, ap2cfg);
        const SignatureStore added = SignatureStore::build(
            SameDifferentDictionary::build(arm, ap2.baselines));
        prov.tests_hash = hash_hex(hash_testset(extended));
        prov.config += ",append=" + std::to_string(append_n);
        const ManifestEntry entry = repo.publish_delta(
            circuit, StoreSource::kSameDifferent, &added, {}, prov,
            pipeline_timer.millis());
        std::printf(
            "published %s x %s v%llu to %s (delta base=%llu added=%zu, "
            "%llu bytes, %s)\n",
            entry.circuit.c_str(), store_source_name(entry.kind),
            (unsigned long long)entry.version, publish.c_str(),
            (unsigned long long)entry.base_version, append_n,
            (unsigned long long)entry.bytes, entry.file.c_str());
      } else {
        if (do_compact) prov.config += ",compact=" + std::to_string(compact_loss);
        const SignatureStore store = maybe_compact(SignatureStore::build(sd));
        const ManifestEntry entry =
            repo.publish(circuit, StoreSource::kSameDifferent, store, prov,
                         pipeline_timer.millis());
        std::printf("published %s x %s v%llu to %s (%llu bytes, %s)\n",
                    entry.circuit.c_str(), store_source_name(entry.kind),
                    (unsigned long long)entry.version, publish.c_str(),
                    (unsigned long long)entry.bytes, entry.file.c_str());
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "failed to publish to %s: %s\n", publish.c_str(),
                   e.what());
      return 1;
    }
  }
  return 0;
}
