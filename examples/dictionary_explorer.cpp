// Dictionary explorer: run the whole pipeline on any registered benchmark
// or external .bench file, print the resulting dictionary statistics, and
// optionally save the same/different dictionary to disk.
//
//   $ ./dictionary_explorer s344
//   $ ./dictionary_explorer path/to/circuit.bench --ttype=10det --save=dict.txt
//   $ ./dictionary_explorer s298 --ttype=diag --calls1=20 --hybrid=true
#include <cstdio>
#include <fstream>

#include "bmcirc/registry.h"
#include "core/baseline.h"
#include "core/hybrid.h"
#include "core/procedure2.h"
#include "dict/full_dict.h"
#include "dict/passfail_dict.h"
#include "dict/samediff_dict.h"
#include "dict/serialize.h"
#include "fault/collapse.h"
#include "netlist/bench_io.h"
#include "netlist/stats.h"
#include "netlist/transform.h"
#include "tgen/diagset.h"
#include "tgen/ndetect.h"
#include "util/cli.h"

using namespace sddict;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  if (args.positional().empty()) {
    std::printf("usage: dictionary_explorer <benchmark-or-bench-file>\n"
                "  [--ttype=diag|10det] [--calls1=N] [--lower=N] [--seed=N]\n"
                "  [--threads=N] [--hybrid=true] [--save=FILE]\n\n"
                "registered benchmarks:");
    for (const auto& n : benchmark_names()) std::printf(" %s", n.c_str());
    std::printf("\n");
    return 1;
  }
  const std::string target = args.positional()[0];
  Netlist nl = is_known_benchmark(target) ? load_benchmark(target)
                                          : parse_bench_file(target);
  if (nl.has_dffs()) nl = full_scan(nl);
  std::printf("%s\n", format_stats(nl).c_str());

  const FaultList faults = collapsed_fault_list(nl).collapsed;
  const std::string ttype = args.get("ttype", "diag");
  const std::uint64_t seed = args.get_int("seed", 1);
  // 0 = hardware concurrency; results are identical at any thread count.
  const std::size_t threads = args.get_int("threads", 0);

  TestSet tests(nl.num_inputs());
  if (ttype == "diag") {
    DiagSetOptions dopts;
    dopts.seed = seed;
    tests = generate_diagnostic(nl, faults, dopts).tests;
  } else if (ttype == "10det") {
    NDetectOptions nopts;
    nopts.n = 10;
    nopts.seed = seed;
    tests = generate_ndetect(nl, faults, nopts).tests;
  } else {
    std::fprintf(stderr, "unknown --ttype=%s (use diag or 10det)\n",
                 ttype.c_str());
    return 1;
  }

  const ResponseMatrix rm =
      build_response_matrix(nl, faults, tests, {.num_threads = threads});
  const FullDictionary full = FullDictionary::build(rm);
  const PassFailDictionary pf = PassFailDictionary::build(rm);

  BaselineSelectionConfig bcfg;
  bcfg.lower = args.get_int("lower", 10);
  bcfg.calls1 = args.get_int("calls1", 10);
  bcfg.seed = seed;
  bcfg.num_threads = threads;
  bcfg.target_indistinguished = full.indistinguished_pairs();
  const BaselineSelection p1 = run_procedure1(rm, bcfg);
  Procedure2Config p2cfg;
  p2cfg.target_indistinguished = full.indistinguished_pairs();
  const Procedure2Result p2 = run_procedure2(rm, p1.baselines, p2cfg);
  const SameDifferentDictionary sd =
      SameDifferentDictionary::build(rm, p2.baselines);

  std::printf("\n%zu faults, %zu tests (%s), %zu outputs\n", faults.size(),
              tests.size(), ttype.c_str(), nl.num_outputs());
  std::printf("%-16s %14s %22s\n", "dictionary", "size (bits)",
              "indistinguished pairs");
  std::printf("%-16s %14llu %22llu\n", "full",
              (unsigned long long)full.size_bits(),
              (unsigned long long)full.indistinguished_pairs());
  std::printf("%-16s %14llu %22llu\n", "pass/fail",
              (unsigned long long)pf.size_bits(),
              (unsigned long long)pf.indistinguished_pairs());
  std::printf("%-16s %14llu %22llu  (Procedure 1: %llu over %zu calls)\n",
              "same/different", (unsigned long long)sd.size_bits(),
              (unsigned long long)sd.indistinguished_pairs(),
              (unsigned long long)p1.indistinguished_pairs, p1.calls_used);

  if (args.get_bool("hybrid", false)) {
    const HybridResult hyb = hybridize_baselines(rm, p2.baselines);
    std::printf("%-16s %14llu %22llu  (%zu/%zu baselines stored)\n",
                "s/d hybrid", (unsigned long long)hyb.size_bits,
                (unsigned long long)hyb.indistinguished_pairs,
                hyb.stored_baselines, tests.size());
  }

  const std::string save = args.get("save");
  if (!save.empty()) {
    std::ofstream out(save);
    write_dictionary(sd, out);
    std::printf("same/different dictionary written to %s\n", save.c_str());
  }
  return 0;
}
