// sddict_fleet: supervised serving fleet over one shared repository.
//
//   sddict_fleet --repo=DIR [--circuit=NAME] [--kind=sd|pf]
//                [--backends=3] [--tcp=0] [--host=127.0.0.1]
//                [--serve-bin=PATH] [--state-dir=DIR] [--port-file=PATH]
//                [--threads=N] [--batch=N]
//                [--respawn-min-ms=200] [--respawn-max-ms=5000]
//                [--probe-interval-ms=250] [--probe-timeout-ms=2000]
//                [--eject-after=3] [--probation-ms=1000]
//                [--max-failovers=4] [--op-timeout-ms=20000]
//                [--failpoints=SPEC] [--backend-failpoints=SPEC]
//
// Forks --backends sddict_serve processes (`--serve-bin`, defaulting to
// a sibling of this binary) over the shared --repo directory, each with
// `--tcp=0 --port-file=...` so its kernel-assigned address is discovered
// race-free, then runs the round-robin proxy on --tcp. Backend crashes
// (including kill -9) are respawned under exponential backoff and their
// in-flight requests fail over to healthy backends — the client sees
// exactly one reply per request. Clients speak the same line protocol as
// sddict_serve; the proxy adds `!fleet` (per-backend status), `!reload`
// (fleet-wide epoch-consistent hot swap) and `!rolling` (drain+restart
// each backend in turn).
//
// --failpoints arms the proxy process (plus SDDICT_FAILPOINTS from the
// environment); --backend-failpoints is handed to the children — they
// never inherit the proxy's own spec.
//
// Try it: start a fleet, then kill a backend mid-stream and watch the
// request finish anyway (see README "Fleet serving" for the full demo).
#include <csignal>
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "fleet/proxy.h"
#include "fleet/supervisor.h"
#include "util/cli.h"
#include "util/failpoint.h"
#include "util/fileio.h"

using namespace sddict;

namespace {

fleet::FleetProxy* g_proxy = nullptr;

void on_stop_signal(int) {
  // request_stop is async-signal-safe: an atomic store + self-pipe write.
  if (g_proxy != nullptr) g_proxy->request_stop();
}

int usage() {
  std::fprintf(
      stderr,
      "usage: sddict_fleet --repo=DIR [--circuit=NAME] [--kind=sd|pf]\n"
      "                    [--backends=3] [--tcp=0] [--host=127.0.0.1]\n"
      "                    [--serve-bin=PATH] [--state-dir=DIR]\n"
      "                    [--port-file=PATH] [--threads=N] [--batch=N]\n"
      "                    [--respawn-min-ms=200] [--respawn-max-ms=5000]\n"
      "                    [--probe-interval-ms=250] [--probe-timeout-ms=2000]\n"
      "                    [--eject-after=3] [--probation-ms=1000]\n"
      "                    [--max-failovers=4] [--op-timeout-ms=20000]\n"
      "                    [--failpoints=SPEC] [--backend-failpoints=SPEC]\n");
  return 2;
}

// The sddict_serve binary normally sits next to sddict_fleet.
std::string sibling_serve_binary(const char* argv0) {
  const std::string self(argv0 != nullptr ? argv0 : "");
  const std::size_t slash = self.rfind('/');
  if (slash == std::string::npos) return "./sddict_serve";
  return self.substr(0, slash + 1) + "sddict_serve";
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto unknown = args.unknown_flags(
      {"repo", "circuit", "kind", "backends", "tcp", "host", "serve-bin",
       "state-dir", "port-file", "threads", "batch", "respawn-min-ms",
       "respawn-max-ms", "probe-interval-ms", "probe-timeout-ms",
       "eject-after", "probation-ms", "max-failovers", "op-timeout-ms",
       "failpoints", "backend-failpoints"});
  if (!unknown.empty()) {
    for (const auto& f : unknown)
      std::fprintf(stderr, "unknown flag --%s\n", f.c_str());
    return usage();
  }

  fleet::SupervisorOptions sopts;
  fleet::ProxyOptions popts;
  std::string port_file;
  try {
    const std::string repo_dir = args.get("repo");
    if (repo_dir.empty()) return usage();
    sopts.serve_binary = args.get("serve-bin", sibling_serve_binary(argv[0]));
    sopts.state_dir = args.get("state-dir", repo_dir + "/.fleet");
    sopts.backends = static_cast<int>(args.get_int("backends", 3, 1, 64));
    sopts.respawn_min_ms = args.get_double("respawn-min-ms", 200);
    sopts.respawn_max_ms = args.get_double("respawn-max-ms", 5000);
    sopts.backend_failpoints = args.get("backend-failpoints");
    sopts.backend_args.push_back("--repo=" + repo_dir);
    if (args.has("circuit"))
      sopts.backend_args.push_back("--circuit=" + args.get("circuit"));
    if (args.has("kind"))
      sopts.backend_args.push_back("--kind=" + args.get("kind"));
    if (args.has("threads"))
      sopts.backend_args.push_back(
          "--threads=" + std::to_string(args.get_int("threads", 1, 0, 4096)));
    if (args.has("batch"))
      sopts.backend_args.push_back(
          "--batch=" + std::to_string(args.get_int("batch", 8, 1, 1 << 16)));

    popts.tcp_port = static_cast<int>(args.get_int("tcp", 0, 0, 65535));
    popts.bind_host = args.get("host", "127.0.0.1");
    popts.probe_interval_ms = args.get_double("probe-interval-ms", 250);
    popts.probe_timeout_ms = args.get_double("probe-timeout-ms", 2000);
    popts.eject_after_failures =
        static_cast<int>(args.get_int("eject-after", 3, 1, 1 << 10));
    popts.probation_ms = args.get_double("probation-ms", 1000);
    popts.max_failovers =
        static_cast<int>(args.get_int("max-failovers", 4, 1, 1 << 10));
    popts.op_timeout_ms = args.get_double("op-timeout-ms", 20000);
    port_file = args.get("port-file");

    std::size_t armed = failpoint::arm_from_env();
    armed += failpoint::arm_from_spec(args.get("failpoints"));
    if (armed > 0)
      std::fprintf(stderr, "sddict_fleet: %zu failpoint(s) armed\n", armed);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sddict_fleet: %s\n", e.what());
    return usage();
  }

  try {
    fleet::Supervisor supervisor(sopts);
    fleet::FleetProxy proxy(supervisor, popts);
    proxy.start();
    std::fprintf(stderr, "sddict_fleet: listening on %s:%d (%d backends)\n",
                 popts.bind_host.c_str(), proxy.tcp_port(), sopts.backends);
    if (!port_file.empty())
      atomic_write_file(port_file, popts.bind_host + ":" +
                                       std::to_string(proxy.tcp_port()) + "\n");
    g_proxy = &proxy;
    std::signal(SIGINT, on_stop_signal);
    std::signal(SIGTERM, on_stop_signal);
    proxy.run();  // returns after a stop signal, fully drained
    g_proxy = nullptr;
    supervisor.shutdown();  // backends stop only after the drain
    const fleet::ProxyStats s = proxy.stats();
    std::fprintf(stderr, "sddict_fleet: %s\n",
                 fleet::format_proxy_stats(s).c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sddict_fleet: fatal: %s\n", e.what());
    return 1;
  }
  return 0;
}
