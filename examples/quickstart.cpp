// Quickstart: build all three dictionary types for the ISCAS-85 c17
// circuit, pick same/different baselines with the paper's Procedures 1 and
// 2, and compare diagnostic resolution and size.
//
//   $ ./quickstart
#include <cstdio>

#include "bmcirc/embedded.h"
#include "core/baseline.h"
#include "core/procedure2.h"
#include "dict/full_dict.h"
#include "dict/passfail_dict.h"
#include "dict/samediff_dict.h"
#include "fault/collapse.h"
#include "netlist/stats.h"
#include "tgen/ndetect.h"
#include "util/cli.h"

using namespace sddict;

int main(int argc, char** argv) {
  // quickstart takes no flags; reject anything that looks like one so a
  // typo ("quickstart --seed=3") fails loudly instead of being ignored.
  const CliArgs args(argc, argv);
  if (!args.unknown_flags({}).empty() || !args.positional().empty()) {
    std::fprintf(stderr, "usage: quickstart  (no arguments)\n");
    return 1;
  }

  // 1. A circuit. (Load your own with parse_bench_file("my.bench") and, if
  //    it is sequential, full_scan() it first.)
  const Netlist nl = make_c17();
  std::printf("circuit: %s\n", format_stats(nl).c_str());

  // 2. The collapsed stuck-at fault list.
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  std::printf("collapsed faults: %zu\n", faults.size());

  // 3. A test set (here: 10-detection).
  NDetectOptions topts;
  topts.n = 10;
  const TestSet tests = generate_ndetect(nl, faults, topts).tests;
  std::printf("tests: %zu\n\n", tests.size());

  // 4. Fault-simulate once; everything else derives from the response matrix.
  const ResponseMatrix rm = build_response_matrix(nl, faults, tests);

  // 5. The three dictionaries.
  const FullDictionary full = FullDictionary::build(rm);
  const PassFailDictionary pf = PassFailDictionary::build(rm);

  BaselineSelectionConfig cfg;
  cfg.lower = 10;
  cfg.calls1 = 100;
  cfg.target_indistinguished = full.indistinguished_pairs();
  const BaselineSelection p1 = run_procedure1(rm, cfg);
  Procedure2Config p2cfg;
  p2cfg.target_indistinguished = full.indistinguished_pairs();
  const Procedure2Result p2 = run_procedure2(rm, p1.baselines, p2cfg);
  const SameDifferentDictionary sd =
      SameDifferentDictionary::build(rm, p2.baselines);

  std::printf("%-16s %12s %22s\n", "dictionary", "size (bits)",
              "indistinguished pairs");
  std::printf("%-16s %12llu %22llu\n", "full",
              (unsigned long long)full.size_bits(),
              (unsigned long long)full.indistinguished_pairs());
  std::printf("%-16s %12llu %22llu\n", "pass/fail",
              (unsigned long long)pf.size_bits(),
              (unsigned long long)pf.indistinguished_pairs());
  std::printf("%-16s %12llu %22llu\n", "same/different",
              (unsigned long long)sd.size_bits(),
              (unsigned long long)sd.indistinguished_pairs());

  // 6. Diagnose: the tester observed fault #5's behaviour.
  std::vector<ResponseId> observed(tests.size());
  for (std::size_t t = 0; t < tests.size(); ++t)
    observed[t] = rm.response(5, t);
  const auto candidates = sd.diagnose(sd.encode(observed), 3);
  std::printf("\ntop same/different candidates for an observed failure:\n");
  for (const auto& m : candidates)
    std::printf("  %-24s (%u mismatching tests)\n",
                fault_name(nl, faults[m.fault]).c_str(), m.mismatches);
  return 0;
}
