// End-to-end diagnosis scenario: a "manufactured chip" (the s298-profile
// benchmark with a secretly injected defect) fails on the tester; we
// diagnose it with all three dictionary types and with the two-phase
// (dictionary + simulation) flow, and compare how far each narrows the
// candidate list.
//
// The tester is allowed to be imperfect: --noise corrupts a fraction of
// the observed responses, --drop loses a fraction of the datalog records,
// and the diagnosis runs through the noise-tolerant engine (diag/engine.h)
// with the chosen mismatch tolerance. The observation can be saved to a
// tester datalog (--log) and a diagnosis can be re-run later straight from
// such a file (--from-log), exercising the robust datalog reader.
//
// Session mode (--runs=N > 1, --defects=a,b with several faults, or
// --from-log pointing at a sessionlog): the test set is applied N times
// with independent noise, the runs are aggregated into consensus
// evidence, and the session diagnoser (src/session) reports the
// single-fault consensus ranking plus minimal multi-fault covers as
// ranked ambiguity groups. --log then writes a sessionlog instead of a
// testerlog, and --from-log re-runs a saved session (the format is
// sniffed from the header line).
//
//   $ ./diagnose_chip [--circuit=s298] [--defect=<fault-index>] [--seed=N]
//       [--noise=PCT] [--drop=PCT] [--tolerance=N]
//       [--runs=N] [--defects=a,b,...]
//       [--log=obs.log] [--from-log=obs.log]
#include <cstdio>
#include <exception>
#include <fstream>
#include <stdexcept>
#include <string>

#include "bmcirc/registry.h"
#include "core/baseline.h"
#include "core/procedure2.h"
#include "diag/engine.h"
#include "diag/observe.h"
#include "diag/report.h"
#include "diag/testerlog.h"
#include "diag/twophase.h"
#include "fault/collapse.h"
#include "netlist/stats.h"
#include "netlist/transform.h"
#include "session/engine.h"
#include "tgen/diagset.h"
#include "util/cli.h"
#include "util/strings.h"

#include "../tests/faultinject.h"

using namespace sddict;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: diagnose_chip [--circuit=s298] [--defect=INDEX]\n"
               "  [--seed=N] [--noise=PCT] [--drop=PCT] [--tolerance=N]\n"
               "  [--runs=N] [--defects=a,b,...]\n"
               "  [--log=FILE] [--from-log=FILE]\n");
  return 1;
}

double get_pct(const CliArgs& args, const std::string& name) {
  const double v = args.get_double(name, 0.0);
  if (v < 0 || v > 100)
    throw std::invalid_argument("flag --" + name +
                                " must be a percentage in [0, 100]");
  return v;
}

// Session (multi-run / multi-fault) diagnosis: aggregate repeated test-set
// applications and report consensus single-fault ranking plus minimal
// multi-fault covers.
int run_session_mode(const Netlist& nl, const FaultList& faults,
                     const TestSet& tests, const ResponseMatrix& rm,
                     const SameDifferentDictionary& sd,
                     const EngineOptions& eopt, std::size_t runs_count,
                     std::vector<FaultId> defects, double noise_pct,
                     double drop_pct, std::uint64_t seed,
                     const std::string& log_path, const std::string& from_log) {
  std::vector<SessionRun> runs;
  std::string session_id = "chip";
  if (!from_log.empty()) {
    std::ifstream in(from_log);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", from_log.c_str());
      return 1;
    }
    try {
      const SessionLog log = read_sessionlog(in, {.recover = true});
      for (const auto& d : log.dropped)
        std::fprintf(stderr, "%s:%zu:%zu: dropped record: %s\n",
                     from_log.c_str(), d.line, d.column, d.reason.c_str());
      for (std::size_t r = 0; r < log.runs.size(); ++r) {
        for (const auto& d : log.runs[r].dropped)
          std::fprintf(stderr, "%s:%zu:%zu: dropped record: %s\n",
                       from_log.c_str(), d.line, d.column, d.reason.c_str());
        if (log.runs[r].truncated)
          std::fprintf(stderr, "%s: run %zu truncated (no 'end' trailer)\n",
                       from_log.c_str(), r + 1);
        runs.push_back(
            {log.runs[r].observations, log.runs[r].dropped.size()});
      }
      session_id = log.id;
      if (log.num_tests != tests.size()) {
        std::fprintf(stderr, "%s: log has %zu tests but the test set has %zu\n",
                     from_log.c_str(), log.num_tests, tests.size());
        return 1;
      }
      std::printf("session '%s' read from %s: %zu runs\n\n",
                  session_id.c_str(), from_log.c_str(), runs.size());
    } catch (const TesterLogError& e) {
      std::fprintf(stderr, "%s: %s\n", from_log.c_str(), e.what());
      return 1;
    }
  } else {
    if (defects.empty())
      defects.push_back(static_cast<FaultId>(faults.size() / 2));
    std::printf("injected defect(s) (hidden from diagnosis):");
    std::vector<Injection> inj;
    for (FaultId f : defects) {
      std::printf(" %s", fault_name(nl, faults[f]).c_str());
      inj.push_back(to_injection(faults[f]));
    }
    std::printf("\n\n");
    const std::vector<ResponseId> clean = observe_defect(nl, tests, rm, inj);
    for (std::size_t r = 0; r < runs_count; ++r) {
      testing::NoiseChannel channel;
      channel.flip_rate = noise_pct / 100.0;
      channel.drop_rate = drop_pct / 100.0;
      channel.seed = seed + 17 + 131 * r;  // independent noise per run
      runs.push_back({testing::apply_noise(clean, rm, channel), 0});
    }
  }

  if (!log_path.empty()) {
    std::ofstream out(log_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", log_path.c_str());
      return 1;
    }
    std::vector<std::vector<Observed>> obs;
    for (const SessionRun& r : runs) obs.push_back(r.observed);
    write_sessionlog(out, session_id, obs);
    std::printf("session written to %s\n\n", log_path.c_str());
  }

  const SessionEvidence ev = aggregate_runs(runs);
  const SessionEngine engine(sd);
  SessionOptions sopt;
  sopt.engine = eopt;
  const SessionDiagnosis d = engine.diagnose(ev, sopt);

  std::printf("session diagnosis (%zu runs, same/different dictionary):\n",
              d.num_runs);
  std::printf("  consensus: %zu failing tests, %zu conflicted across runs\n",
              d.failing_tests, ev.conflicted_tests);
  std::printf("  single-fault: %s, best %u mismatches\n",
              diagnosis_outcome_name(d.single.outcome), d.single.best_mismatches);
  const std::size_t top = d.single.matches.size() < 5 ? d.single.matches.size()
                                                      : std::size_t{5};
  for (std::size_t i = 0; i < top; ++i)
    std::printf("    %s (%u mismatches)\n",
                fault_name(nl, faults[d.single.matches[i].fault]).c_str(),
                d.single.matches[i].mismatches);
  std::printf("  multi-fault: min cover %zu (%s), %zu group(s)%s\n",
              d.min_cover,
              d.cover_minimal ? "provably minimal" : "greedy upper bound",
              d.groups.size(), d.groups_truncated ? " [truncated]" : "");
  if (d.unexplained_failures > 0)
    std::printf("  %zu failing test(s) no modeled fault detects\n",
                d.unexplained_failures);
  if (d.uncovered_failures > 0)
    std::printf("  %zu coverable failure(s) left uncovered\n",
                d.uncovered_failures);
  const std::size_t gtop =
      d.groups.size() < 8 ? d.groups.size() : std::size_t{8};
  for (std::size_t i = 0; i < gtop; ++i) {
    const AmbiguityGroup& g = d.groups[i];
    std::printf("    group %zu:", i + 1);
    for (FaultId f : g.faults)
      std::printf(" %s", fault_name(nl, faults[f]).c_str());
    std::printf("  (conflicts %u, confidence %.4f)\n", g.conflicts,
                g.confidence);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto unknown = args.unknown_flags({"circuit", "defect", "seed",
                                           "noise", "drop", "tolerance", "log",
                                           "from-log", "runs", "defects"});
  if (!unknown.empty()) {
    for (const auto& f : unknown)
      std::fprintf(stderr, "unknown flag --%s\n", f.c_str());
    return usage();
  }

  std::string circuit;
  std::uint64_t seed = 0;
  double noise_pct = 0, drop_pct = 0;
  EngineOptions eopt;
  std::string log_path, from_log, defects_list;
  std::size_t runs_count = 1;
  try {
    circuit = args.get("circuit", "s298");
    if (!is_known_benchmark(circuit))
      throw std::invalid_argument("flag --circuit: unknown benchmark '" +
                                  circuit + "'");
    seed = args.get_int("seed", 7, 0);
    noise_pct = get_pct(args, "noise");
    drop_pct = get_pct(args, "drop");
    eopt.tolerance =
        static_cast<std::uint32_t>(args.get_int("tolerance", 2, 0, 1 << 20));
    log_path = args.get("log");
    from_log = args.get("from-log");
    runs_count = static_cast<std::size_t>(args.get_int("runs", 1, 1, 1024));
    defects_list = args.get("defects");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return usage();
  }

  Netlist nl = load_benchmark(circuit);
  if (nl.has_dffs()) nl = full_scan(nl);
  std::printf("chip under diagnosis: %s\n", format_stats(nl).c_str());

  const FaultList faults = collapsed_fault_list(nl).collapsed;
  DiagSetOptions dopts;
  dopts.seed = seed;
  const TestSet tests = generate_diagnostic(nl, faults, dopts).tests;
  std::printf("diagnostic test set: %zu tests for %zu collapsed faults\n\n",
              tests.size(), faults.size());

  const ResponseMatrix rm = build_response_matrix(nl, faults, tests);
  const FullDictionary full = FullDictionary::build(rm);
  const PassFailDictionary pf = PassFailDictionary::build(rm);

  BaselineSelectionConfig bcfg;
  bcfg.calls1 = 10;
  bcfg.seed = seed;
  bcfg.target_indistinguished = full.indistinguished_pairs();
  const BaselineSelection p1 = run_procedure1(rm, bcfg);
  Procedure2Config p2cfg;
  p2cfg.target_indistinguished = full.indistinguished_pairs();
  const Procedure2Result p2 = run_procedure2(rm, p1.baselines, p2cfg);
  const SameDifferentDictionary sd =
      SameDifferentDictionary::build(rm, p2.baselines);

  // Session mode: multiple runs, multiple injected defects, or a saved
  // sessionlog (the file format is sniffed from the header line).
  std::vector<FaultId> defects;
  if (!defects_list.empty()) {
    for (const std::string& tok : split(defects_list, ',')) {
      std::size_t pos = 0;
      unsigned long v = 0;
      try {
        v = std::stoul(trim(tok), &pos);
      } catch (const std::exception&) {
        pos = 0;
      }
      if (pos == 0 || pos != trim(tok).size() || v >= faults.size()) {
        std::fprintf(stderr, "flag --defects: bad fault index '%s'\n",
                     tok.c_str());
        return usage();
      }
      defects.push_back(static_cast<FaultId>(v));
    }
  }
  bool session_mode = runs_count > 1 || defects.size() > 1;
  if (!from_log.empty()) {
    std::ifstream sniff(from_log);
    if (!sniff) {
      std::fprintf(stderr, "cannot open %s\n", from_log.c_str());
      return 1;
    }
    if (sniff_sessionlog(sniff)) session_mode = true;
  }
  if (session_mode)
    return run_session_mode(nl, faults, tests, rm, sd, eopt, runs_count,
                            std::move(defects), noise_pct, drop_pct, seed,
                            log_path, from_log);

  // The defect: by default a modeled single stuck-at fault somewhere in the
  // middle of the fault list (the diagnosis engines don't know which).
  FaultId truth = kNoFault;
  std::vector<Observed> observed;
  std::vector<ResponseId> clean_ids;
  if (!from_log.empty()) {
    std::ifstream in(from_log);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", from_log.c_str());
      return 1;
    }
    try {
      TesterLogOptions lopts;
      lopts.recover = true;
      const TesterLog log = read_testerlog(in, lopts);
      for (const auto& d : log.dropped)
        std::fprintf(stderr, "%s:%zu:%zu: dropped record: %s\n",
                     from_log.c_str(), d.line, d.column, d.reason.c_str());
      if (log.truncated)
        std::fprintf(stderr, "%s: log truncated (no 'end' trailer)\n",
                     from_log.c_str());
      observed = log.observations;
    } catch (const TesterLogError& e) {
      std::fprintf(stderr, "%s: %s\n", from_log.c_str(), e.what());
      return 1;
    }
    if (observed.size() != tests.size()) {
      std::fprintf(stderr,
                   "%s: log has %zu tests but the test set has %zu\n",
                   from_log.c_str(), observed.size(), tests.size());
      return 1;
    }
    std::printf("observation read from %s\n\n", from_log.c_str());
  } else {
    std::int64_t defect = 0;
    try {
      defect = args.get_int("defect",
                            static_cast<std::int64_t>(faults.size() / 2), 0,
                            static_cast<std::int64_t>(faults.size()) - 1);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return usage();
    }
    truth = static_cast<FaultId>(defect);
    std::printf("injected defect (hidden from diagnosis): %s\n\n",
                fault_name(nl, faults[truth]).c_str());
    clean_ids = observe_defect(nl, tests, rm, {to_injection(faults[truth])});
    testing::NoiseChannel channel;
    channel.flip_rate = noise_pct / 100.0;
    channel.drop_rate = drop_pct / 100.0;
    channel.seed = seed + 17;
    observed = testing::apply_noise(clean_ids, rm, channel);
  }

  if (!log_path.empty()) {
    std::ofstream out(log_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", log_path.c_str());
      return 1;
    }
    write_testerlog(out, observed);
    std::printf("observation written to %s\n\n", log_path.c_str());
  }

  // Noise-tolerant diagnosis through the engine, all three dictionaries.
  const RobustDiagnosisComparison rcmp =
      compare_dictionaries_robust(full, pf, sd, observed, eopt);
  std::printf("%s\n", format_robust_diagnosis(nl, faults, rcmp).c_str());

  // With a clean, fully-observed datalog the classical flows apply too:
  // exact dictionary comparison plus two-phase (dictionary narrows,
  // full-response simulation confirms; the figure of merit is phase-2
  // simulations saved).
  if (from_log.empty() && noise_pct == 0 && drop_pct == 0) {
    const DiagnosisComparison cmp =
        compare_dictionaries(full, pf, sd, clean_ids, truth);
    std::printf("%s\n", format_diagnosis(nl, faults, cmp).c_str());
    const auto tp_pf = two_phase_with_passfail(pf, rm, clean_ids);
    const auto tp_sd = two_phase_with_samediff(sd, rm, clean_ids);
    std::printf(
        "two-phase diagnosis (candidate simulations instead of %zu):\n",
        faults.size());
    std::printf("  via pass/fail:      %zu candidates -> %zu exact\n",
                tp_pf.phase1_candidates.size(),
                tp_pf.phase2_candidates.size());
    std::printf("  via same/different: %zu candidates -> %zu exact\n",
                tp_sd.phase1_candidates.size(),
                tp_sd.phase2_candidates.size());
  }
  return 0;
}
