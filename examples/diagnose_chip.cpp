// End-to-end diagnosis scenario: a "manufactured chip" (the s298-profile
// benchmark with a secretly injected defect) fails on the tester; we
// diagnose it with all three dictionary types and with the two-phase
// (dictionary + simulation) flow, and compare how far each narrows the
// candidate list.
//
//   $ ./diagnose_chip [--circuit=s298] [--defect=<fault-index>] [--seed=N]
#include <cstdio>

#include "bmcirc/registry.h"
#include "core/baseline.h"
#include "core/procedure2.h"
#include "diag/observe.h"
#include "diag/report.h"
#include "diag/twophase.h"
#include "fault/collapse.h"
#include "netlist/stats.h"
#include "netlist/transform.h"
#include "tgen/diagset.h"
#include "util/cli.h"

using namespace sddict;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const std::string circuit = args.get("circuit", "s298");
  const std::uint64_t seed = args.get_int("seed", 7);

  const Netlist nl = full_scan(load_benchmark(circuit));
  std::printf("chip under diagnosis: %s\n", format_stats(nl).c_str());

  const FaultList faults = collapsed_fault_list(nl).collapsed;
  DiagSetOptions dopts;
  dopts.seed = seed;
  const TestSet tests = generate_diagnostic(nl, faults, dopts).tests;
  std::printf("diagnostic test set: %zu tests for %zu collapsed faults\n\n",
              tests.size(), faults.size());

  const ResponseMatrix rm = build_response_matrix(nl, faults, tests);
  const FullDictionary full = FullDictionary::build(rm);
  const PassFailDictionary pf = PassFailDictionary::build(rm);

  BaselineSelectionConfig bcfg;
  bcfg.calls1 = 10;
  bcfg.seed = seed;
  bcfg.target_indistinguished = full.indistinguished_pairs();
  const BaselineSelection p1 = run_procedure1(rm, bcfg);
  Procedure2Config p2cfg;
  p2cfg.target_indistinguished = full.indistinguished_pairs();
  const Procedure2Result p2 = run_procedure2(rm, p1.baselines, p2cfg);
  const SameDifferentDictionary sd =
      SameDifferentDictionary::build(rm, p2.baselines);

  // The defect: by default a modeled single stuck-at fault somewhere in the
  // middle of the fault list (the diagnosis engines don't know which).
  const FaultId truth = static_cast<FaultId>(
      args.get_int("defect", static_cast<std::int64_t>(faults.size() / 2)));
  std::printf("injected defect (hidden from diagnosis): %s\n\n",
              fault_name(nl, faults[truth]).c_str());

  const auto observed =
      observe_defect(nl, tests, rm, {to_injection(faults[truth])});

  const DiagnosisComparison cmp =
      compare_dictionaries(full, pf, sd, observed, truth);
  std::printf("%s\n", format_diagnosis(nl, faults, cmp).c_str());

  // Two-phase diagnosis: bit dictionary narrows, full-response simulation
  // confirms. The figure of merit is phase-2 simulations saved.
  const auto tp_pf = two_phase_with_passfail(pf, rm, observed);
  const auto tp_sd = two_phase_with_samediff(sd, rm, observed);
  std::printf("two-phase diagnosis (candidate simulations instead of %zu):\n",
              faults.size());
  std::printf("  via pass/fail:      %zu candidates -> %zu exact\n",
              tp_pf.phase1_candidates.size(), tp_pf.phase2_candidates.size());
  std::printf("  via same/different: %zu candidates -> %zu exact\n",
              tp_sd.phase1_candidates.size(), tp_sd.phase2_candidates.size());
  return 0;
}
