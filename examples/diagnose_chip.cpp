// End-to-end diagnosis scenario: a "manufactured chip" (the s298-profile
// benchmark with a secretly injected defect) fails on the tester; we
// diagnose it with all three dictionary types and with the two-phase
// (dictionary + simulation) flow, and compare how far each narrows the
// candidate list.
//
// The tester is allowed to be imperfect: --noise corrupts a fraction of
// the observed responses, --drop loses a fraction of the datalog records,
// and the diagnosis runs through the noise-tolerant engine (diag/engine.h)
// with the chosen mismatch tolerance. The observation can be saved to a
// tester datalog (--log) and a diagnosis can be re-run later straight from
// such a file (--from-log), exercising the robust datalog reader.
//
//   $ ./diagnose_chip [--circuit=s298] [--defect=<fault-index>] [--seed=N]
//       [--noise=PCT] [--drop=PCT] [--tolerance=N]
//       [--log=obs.log] [--from-log=obs.log]
#include <cstdio>
#include <exception>
#include <fstream>
#include <stdexcept>
#include <string>

#include "bmcirc/registry.h"
#include "core/baseline.h"
#include "core/procedure2.h"
#include "diag/engine.h"
#include "diag/observe.h"
#include "diag/report.h"
#include "diag/testerlog.h"
#include "diag/twophase.h"
#include "fault/collapse.h"
#include "netlist/stats.h"
#include "netlist/transform.h"
#include "tgen/diagset.h"
#include "util/cli.h"

#include "../tests/faultinject.h"

using namespace sddict;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: diagnose_chip [--circuit=s298] [--defect=INDEX]\n"
               "  [--seed=N] [--noise=PCT] [--drop=PCT] [--tolerance=N]\n"
               "  [--log=FILE] [--from-log=FILE]\n");
  return 1;
}

double get_pct(const CliArgs& args, const std::string& name) {
  const double v = args.get_double(name, 0.0);
  if (v < 0 || v > 100)
    throw std::invalid_argument("flag --" + name +
                                " must be a percentage in [0, 100]");
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto unknown = args.unknown_flags({"circuit", "defect", "seed",
                                           "noise", "drop", "tolerance", "log",
                                           "from-log"});
  if (!unknown.empty()) {
    for (const auto& f : unknown)
      std::fprintf(stderr, "unknown flag --%s\n", f.c_str());
    return usage();
  }

  std::string circuit;
  std::uint64_t seed = 0;
  double noise_pct = 0, drop_pct = 0;
  EngineOptions eopt;
  std::string log_path, from_log;
  try {
    circuit = args.get("circuit", "s298");
    if (!is_known_benchmark(circuit))
      throw std::invalid_argument("flag --circuit: unknown benchmark '" +
                                  circuit + "'");
    seed = args.get_int("seed", 7, 0);
    noise_pct = get_pct(args, "noise");
    drop_pct = get_pct(args, "drop");
    eopt.tolerance =
        static_cast<std::uint32_t>(args.get_int("tolerance", 2, 0, 1 << 20));
    log_path = args.get("log");
    from_log = args.get("from-log");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return usage();
  }

  Netlist nl = load_benchmark(circuit);
  if (nl.has_dffs()) nl = full_scan(nl);
  std::printf("chip under diagnosis: %s\n", format_stats(nl).c_str());

  const FaultList faults = collapsed_fault_list(nl).collapsed;
  DiagSetOptions dopts;
  dopts.seed = seed;
  const TestSet tests = generate_diagnostic(nl, faults, dopts).tests;
  std::printf("diagnostic test set: %zu tests for %zu collapsed faults\n\n",
              tests.size(), faults.size());

  const ResponseMatrix rm = build_response_matrix(nl, faults, tests);
  const FullDictionary full = FullDictionary::build(rm);
  const PassFailDictionary pf = PassFailDictionary::build(rm);

  BaselineSelectionConfig bcfg;
  bcfg.calls1 = 10;
  bcfg.seed = seed;
  bcfg.target_indistinguished = full.indistinguished_pairs();
  const BaselineSelection p1 = run_procedure1(rm, bcfg);
  Procedure2Config p2cfg;
  p2cfg.target_indistinguished = full.indistinguished_pairs();
  const Procedure2Result p2 = run_procedure2(rm, p1.baselines, p2cfg);
  const SameDifferentDictionary sd =
      SameDifferentDictionary::build(rm, p2.baselines);

  // The defect: by default a modeled single stuck-at fault somewhere in the
  // middle of the fault list (the diagnosis engines don't know which).
  FaultId truth = kNoFault;
  std::vector<Observed> observed;
  std::vector<ResponseId> clean_ids;
  if (!from_log.empty()) {
    std::ifstream in(from_log);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", from_log.c_str());
      return 1;
    }
    try {
      TesterLogOptions lopts;
      lopts.recover = true;
      const TesterLog log = read_testerlog(in, lopts);
      for (const auto& d : log.dropped)
        std::fprintf(stderr, "%s:%zu:%zu: dropped record: %s\n",
                     from_log.c_str(), d.line, d.column, d.reason.c_str());
      if (log.truncated)
        std::fprintf(stderr, "%s: log truncated (no 'end' trailer)\n",
                     from_log.c_str());
      observed = log.observations;
    } catch (const TesterLogError& e) {
      std::fprintf(stderr, "%s: %s\n", from_log.c_str(), e.what());
      return 1;
    }
    if (observed.size() != tests.size()) {
      std::fprintf(stderr,
                   "%s: log has %zu tests but the test set has %zu\n",
                   from_log.c_str(), observed.size(), tests.size());
      return 1;
    }
    std::printf("observation read from %s\n\n", from_log.c_str());
  } else {
    std::int64_t defect = 0;
    try {
      defect = args.get_int("defect",
                            static_cast<std::int64_t>(faults.size() / 2), 0,
                            static_cast<std::int64_t>(faults.size()) - 1);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return usage();
    }
    truth = static_cast<FaultId>(defect);
    std::printf("injected defect (hidden from diagnosis): %s\n\n",
                fault_name(nl, faults[truth]).c_str());
    clean_ids = observe_defect(nl, tests, rm, {to_injection(faults[truth])});
    testing::NoiseChannel channel;
    channel.flip_rate = noise_pct / 100.0;
    channel.drop_rate = drop_pct / 100.0;
    channel.seed = seed + 17;
    observed = testing::apply_noise(clean_ids, rm, channel);
  }

  if (!log_path.empty()) {
    std::ofstream out(log_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", log_path.c_str());
      return 1;
    }
    write_testerlog(out, observed);
    std::printf("observation written to %s\n\n", log_path.c_str());
  }

  // Noise-tolerant diagnosis through the engine, all three dictionaries.
  const RobustDiagnosisComparison rcmp =
      compare_dictionaries_robust(full, pf, sd, observed, eopt);
  std::printf("%s\n", format_robust_diagnosis(nl, faults, rcmp).c_str());

  // With a clean, fully-observed datalog the classical flows apply too:
  // exact dictionary comparison plus two-phase (dictionary narrows,
  // full-response simulation confirms; the figure of merit is phase-2
  // simulations saved).
  if (from_log.empty() && noise_pct == 0 && drop_pct == 0) {
    const DiagnosisComparison cmp =
        compare_dictionaries(full, pf, sd, clean_ids, truth);
    std::printf("%s\n", format_diagnosis(nl, faults, cmp).c_str());
    const auto tp_pf = two_phase_with_passfail(pf, rm, clean_ids);
    const auto tp_sd = two_phase_with_samediff(sd, rm, clean_ids);
    std::printf(
        "two-phase diagnosis (candidate simulations instead of %zu):\n",
        faults.size());
    std::printf("  via pass/fail:      %zu candidates -> %zu exact\n",
                tp_pf.phase1_candidates.size(),
                tp_pf.phase2_candidates.size());
    std::printf("  via same/different: %zu candidates -> %zu exact\n",
                tp_sd.phase1_candidates.size(),
                tp_sd.phase2_candidates.size());
  }
  return 0;
}
