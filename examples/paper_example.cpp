// Regenerates the worked example of Section 2 and 3 of the paper — Tables
// 1 through 5 — from the library's own machinery: four faults, two tests,
// two outputs.
//
//   $ ./paper_example
#include <cstdio>
#include <string>

#include "core/baseline.h"
#include "dict/full_dict.h"
#include "dict/partition.h"
#include "dict/passfail_dict.h"
#include "dict/samediff_dict.h"
#include "sim/response.h"
#include "util/cli.h"

using namespace sddict;

namespace {

// The example's output vectors (Table 1).
const char* kFaultFree[2] = {"00", "00"};
const char* kFaulty[4][2] = {
    {"10", "11"},  // f0
    {"00", "10"},  // f1
    {"01", "10"},  // f2
    {"01", "00"},  // f3
};

ResponseMatrix example_matrix() {
  std::vector<BitVec> ff;
  for (const char* s : kFaultFree) ff.push_back(BitVec::from_string(s));
  std::vector<std::vector<BitVec>> faulty;
  for (const auto& row : kFaulty) {
    faulty.push_back({BitVec::from_string(row[0]), BitVec::from_string(row[1])});
  }
  return response_matrix_from_table(ff, faulty);
}

// Renders a response id back to its output-vector string using the stored
// difference lists.
std::string vector_of(const ResponseMatrix& rm, std::size_t test,
                      ResponseId id) {
  BitVec v = BitVec::from_string(kFaultFree[test]);
  for (std::uint32_t o : rm.diff_outputs(test, id)) v.flip(o);
  return v.to_string();
}

void print_dist_table(const ResponseMatrix& rm, std::size_t test,
                      const Partition& part, const char* title) {
  std::printf("%s\n  z    dist(z)\n", title);
  const auto dist = candidate_dist(rm, test, part);
  for (ResponseId z = 0; z < dist.size(); ++z)
    std::printf("  %s  %llu\n", vector_of(rm, test, z).c_str(),
                (unsigned long long)dist[z]);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  // paper_example takes no flags; fail loudly on any argument.
  const CliArgs args(argc, argv);
  if (!args.unknown_flags({}).empty() || !args.positional().empty()) {
    std::fprintf(stderr, "usage: paper_example  (no arguments)\n");
    return 1;
  }

  const ResponseMatrix rm = example_matrix();

  std::printf("Table 1: full fault dictionary\n        t0   t1\n");
  std::printf("  ff    %s   %s\n", kFaultFree[0], kFaultFree[1]);
  for (int i = 0; i < 4; ++i)
    std::printf("  f%d    %s   %s\n", i, kFaulty[i][0], kFaulty[i][1]);
  const FullDictionary full = FullDictionary::build(rm);
  std::printf("  -> indistinguished pairs: %llu\n\n",
              (unsigned long long)full.indistinguished_pairs());

  const PassFailDictionary pf = PassFailDictionary::build(rm);
  std::printf("Table 2: pass/fail fault dictionary\n        t0  t1\n");
  std::printf("  ff    %s   %s\n", kFaultFree[0], kFaultFree[1]);
  for (FaultId i = 0; i < 4; ++i)
    std::printf("  f%u    %d   %d\n", i, pf.bit(i, 0), pf.bit(i, 1));
  std::printf("  -> indistinguished pairs: %llu (f2,f3 left together)\n\n",
              (unsigned long long)pf.indistinguished_pairs());

  // Procedure 1 on the example, tests in natural order — reproduces the
  // paper's selection of z_bl,0 = 01 and z_bl,1 = 10, including the
  // intermediate dist(z) candidate tables.
  Partition part(rm.num_faults());
  print_dist_table(rm, 0, part, "Table 4: selection of z_bl,0");
  const BaselineSelection sel = procedure1_single(rm, {0, 1}, /*lower=*/10);
  part.refine_with([&](std::uint32_t f) {
    return static_cast<std::uint32_t>(rm.response(f, 0) == sel.baselines[0]);
  });
  print_dist_table(rm, 1, part, "Table 5: selection of z_bl,1");

  const SameDifferentDictionary sd =
      SameDifferentDictionary::build(rm, sel.baselines);
  std::printf("Table 3: same/different fault dictionary\n        t0  t1\n");
  std::printf("  bl    %s  %s\n", vector_of(rm, 0, sel.baselines[0]).c_str(),
              vector_of(rm, 1, sel.baselines[1]).c_str());
  for (FaultId i = 0; i < 4; ++i)
    std::printf("  f%u    %d   %d\n", i, sd.bit(i, 0), sd.bit(i, 1));
  std::printf("  -> indistinguished pairs: %llu (full resolution)\n",
              (unsigned long long)sd.indistinguished_pairs());
  return 0;
}
