// sddict_serve: the tester-floor query server. Loads one packed signature
// store (dictionary_explorer --export-store writes them) and answers
// diagnosis queries over a line protocol, on stdin/stdout by default or on
// a Unix-domain socket with --socket.
//
// Protocol, one request per tester datalog (diag/testerlog.h format):
//
//   sddict testerlog v1        <- client sends a whole datalog, closed by
//   tests <k>                     its well-formed `end` line
//   t 0 4
//   end
//
// and the server answers
//
//   diagnosis <outcome> best=<n> margin=<n> effective=<n> dont_care=<n>
//       unknown=<n> completed=<0|1> stop=<reason> [dropped=<n>]
//   candidate <rank> fault=<id> mismatches=<n>
//   ...
//   cover fault=<id> ...           (unmodeled-defect verdicts only)
//   timing latency_ms=<x> cache_hit=<0|1>   <- volatile; CI diffs ignore it
//   done
//
// Between datalogs the bare commands `stats` (print a counters line),
// `!health` (a machine-readable liveness one-liner for supervisors) and
// `quit` are accepted. Responses always come back in request order, but
// requests are submitted asynchronously as they are read, so piped input
// actually exercises the service's micro-batching.
//
// Repository mode (--repo=DIR instead of --store) serves a whole catalog
// of published artifacts (dictionary_explorer --publish writes them) and
// additionally accepts admin verbs between datalogs:
//
//   !list                 catalog entries, one `artifact ...` line each
//   !use CIRCUIT [KIND]   switch the query target
//   !reload [CIRCUIT]     re-read the manifest and hot-swap the circuit's
//                         service to the newest version, without dropping
//                         in-flight requests
//   !stats                repository + per-service counters (per-version
//                         store bytes and delta-chain length included)
//   !compact [lossless|lossy:EPS]
//                         plan a test-set compaction of the current
//                         target's latest version, publish it as a
//                         drop-only delta, and hot-swap the service
//   !squash               collapse the current target's delta chain into
//                         a fresh full store version and hot-swap
//
// With --max-chain=N a !reload additionally kicks background squashing
// (repo.squash_async on a maintenance pool) for chains deeper than N.
//
// Session verbs (multi-observation diagnosis, src/session): a retest flow
// opens a session per die, appends one datalog per test-set application,
// and asks for a session-level diagnosis — consensus single-fault ranking
// plus minimal multi-fault covers as ranked ambiguity groups. Each verb
// is itself a datalog-type frame (closed by a bare `end`; the appended
// testerlog's own `end` doubles as the frame close), so the verbs flow
// through every front end and the fleet proxy unchanged:
//
//   session begin DIE42        session append DIE42      session diagnose DIE42
//   end                        sddict testerlog v1       end
//                              tests <k> ... end
//   session end DIE42
//   end
//
// Networked mode (--tcp=PORT, port 0 = kernel-assigned): an event-loop
// front end (src/net/server.h) multiplexes many concurrent TCP sessions —
// plus a Unix listener when --socket is also given — onto the same
// service, with per-connection timeouts, bounded in-flight limits, and
// load shedding via explicit `busy retry_after_ms=N` replies (see
// src/net/client.h for the backoff discipline clients should follow).
// SIGINT/SIGTERM drain every accepted request before exiting. With
// --port-file=PATH the bound address is additionally written to PATH
// atomically (host:port + newline) once the listener is up, so a
// supervisor never has to scrape stderr — and never reads a torn file.
//
//   $ ./sddict_serve --store=dict.store [--threads=N] [--batch=N]
//       [--cache=N] [--deadline-ms=X] [--load=auto|mmap|stream]
//       [--socket=PATH [--once] [--backlog=N]]
//       [--tcp=PORT [--host=ADDR] [--max-sessions=N] [--max-inflight=N]
//        [--session-inflight=N] [--pending=N] [--idle-timeout-ms=X]
//        [--frame-timeout-ms=X] [--write-timeout-ms=X] [--busy-retry-ms=N]
//        [--failpoints=SPEC]]
//   $ ./sddict_serve --repo=DIR --circuit=NAME [--kind=KIND] [...]
#include <csignal>
#include <cstdio>
#include <deque>
#include <exception>
#include <future>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "compact/repo_compact.h"
#include "diag/testerlog.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "repo/repository.h"
#include "serve/diagnosis_service.h"
#include "session/service.h"
#include "store/kernels.h"
#include "store/signature_store.h"
#include "util/cli.h"
#include "util/failpoint.h"
#include "util/fdio.h"
#include "util/fileio.h"
#include "util/strings.h"
#include "util/threadpool.h"

#if defined(__unix__) || defined(__APPLE__)
#define SDDICT_SERVE_HAS_SOCKET 1
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>
#endif

using namespace sddict;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: sddict_serve --store=FILE [--threads=N] [--batch=N]\n"
               "  [--cache=N] [--deadline-ms=X] [--load=auto|mmap|stream]\n"
               "  [--socket=PATH [--once] [--backlog=N]]\n"
               "  [--tcp=PORT [--host=ADDR] [--max-sessions=N]\n"
               "   [--max-inflight=N] [--session-inflight=N] [--pending=N]\n"
               "   [--idle-timeout-ms=X] [--frame-timeout-ms=X]\n"
               "   [--write-timeout-ms=X] [--busy-retry-ms=N]\n"
               "   [--port-file=PATH] [--failpoints=SPEC]]\n"
               "  [--session-deadline-ms=X] [--max-die-sessions=N]\n"
               "  [--session-runs=N] [--session-cover=N]\n"
               "   or: sddict_serve --repo=DIR --circuit=NAME [--kind=KIND]\n"
               "  [--max-chain=N] [same options]\n");
  return 1;
}

// Repository-backed serving state: one hot-swappable DiagnosisService per
// (circuit, kind) the client has targeted, created lazily from the catalog.
struct RepoServer {
  DictionaryRepository* repo = nullptr;
  ServiceOptions opts;
  std::string circuit;                          // current target
  StoreSource kind = StoreSource::kSameDifferent;
  std::map<std::string, std::unique_ptr<DiagnosisService>> services;
  // Manifest version each service currently serves, by the same key.
  // `!health` reports this so a fleet supervisor can check every backend
  // flipped to the same version after a republish.
  std::map<std::string, std::uint64_t> versions;
  // Delta chains deeper than this get squashed in the background on
  // !reload (0 = maintenance off). The pool exists only once needed.
  std::size_t max_chain = 0;
  std::unique_ptr<ThreadPool> maintenance;

  ThreadPool& maintenance_pool() {
    if (!maintenance) maintenance = std::make_unique<ThreadPool>(1);
    return *maintenance;
  }

  std::string key(const std::string& c, StoreSource k) const {
    return c + '\0' + store_source_name(k);
  }
  // The service for the current target, created on first use.
  DiagnosisService& current() {
    if (circuit.empty())
      throw std::runtime_error("no circuit selected (use !use CIRCUIT)");
    const std::string k = key(circuit, kind);
    auto it = services.find(k);
    if (it == services.end()) {
      it = services
               .emplace(k, std::make_unique<DiagnosisService>(
                                repo->acquire(circuit, kind), opts))
               .first;
      versions[k] = repo->latest_version(circuit, kind);
    }
    return *it->second;
  }
  std::uint64_t served_version() const {
    const auto it = versions.find(key(circuit, kind));
    return it == versions.end() ? 0 : it->second;
  }
};

struct PendingQuery {
  std::future<ServiceResponse> future;
  std::size_t dropped = 0;  // recovery-mode datalog records set aside
};

// Resolves and prints every pending response in submission order; with
// block == false stops at the first not-yet-ready future. Rendering is
// shared with the event-loop front end (net/protocol.h) so stdio and TCP
// replies are byte-identical.
void drain(std::ostream& out, std::deque<PendingQuery>& pending, bool block) {
  while (!pending.empty()) {
    auto& q = pending.front();
    if (!block &&
        q.future.wait_for(std::chrono::seconds(0)) != std::future_status::ready)
      return;
    try {
      net::write_response(out, q.future.get(), q.dropped);
    } catch (const std::exception& e) {
      net::write_error(out, e.what());
    }
    out.flush();
    pending.pop_front();
  }
}

// Admin verbs (repository mode). Every reply ends with `done`; failures
// surface as `error ...` through the caller's catch.
void handle_admin(RepoServer& rs, const std::vector<std::string>& tokens,
                  std::ostream& out) {
  const std::string& verb = tokens[0];
  if (verb == "!list") {
    const Manifest m = rs.repo->manifest();
    for (const ManifestEntry& e : m.entries) {
      // Established fields stay a stable prefix (CI greps them); the
      // chain/delta maintenance fields are appended after.
      out << "artifact circuit=" << e.circuit
          << " kind=" << store_source_name(e.kind) << " version=" << e.version
          << " bytes=" << e.bytes
          << " chain=" << rs.repo->chain_length_of(e.circuit, e.kind, e.version);
      if (e.is_delta)
        out << " base=" << e.base_version << " added=" << e.added_tests
            << " dropped=" << encode_index_ranges(e.dropped);
      out << " file=" << (e.file.empty() ? "-" : e.file) << "\n";
    }
    out << "done\n";
  } else if (verb == "!use") {
    if (tokens.size() < 2 || tokens.size() > 3)
      throw std::runtime_error("usage: !use CIRCUIT [KIND]");
    StoreSource kind = StoreSource::kSameDifferent;
    if (tokens.size() == 3 && !parse_store_source(tokens[2], &kind))
      throw std::runtime_error("unknown kind '" + tokens[2] + "'");
    rs.circuit = tokens[1];
    rs.kind = kind;
    DiagnosisService& svc = rs.current();  // load now, so failures land here
    out << "using circuit=" << rs.circuit
        << " kind=" << store_source_name(rs.kind)
        << " faults=" << svc.num_faults() << " tests=" << svc.num_tests()
        << "\n" << "done\n";
  } else if (verb == "!reload") {
    if (tokens.size() > 2) throw std::runtime_error("usage: !reload [CIRCUIT]");
    const std::string target = tokens.size() == 2 ? tokens[1] : rs.circuit;
    if (target.empty())
      throw std::runtime_error("no circuit selected (use !reload CIRCUIT)");
    rs.repo->reload();
    std::size_t swapped = 0;
    std::size_t squashed = 0;
    for (auto& [key, svc] : rs.services) {
      const std::size_t nul = key.find('\0');
      if (key.substr(0, nul) != target) continue;
      StoreSource kind{};
      parse_store_source(key.substr(nul + 1), &kind);
      // Background chain maintenance: with --max-chain=N, a reload of a
      // chain deeper than N squashes it first (on the maintenance pool;
      // the blocking get keeps replies deterministic) so the swap below
      // lands on the collapsed store.
      if (rs.max_chain > 0 &&
          rs.repo->chain_length(target, kind) > rs.max_chain) {
        rs.repo->squash_async(rs.maintenance_pool(), target, kind,
                              rs.max_chain).get();
        ++squashed;
      }
      svc->swap_store(rs.repo->acquire(target, kind));
      rs.versions[key] = rs.repo->latest_version(target, kind);
      ++swapped;
    }
    // `swapped=` stays the line's final established field (CI greps the
    // prefix); the maintenance counter only appears when armed.
    out << "reloaded circuit=" << target << " swapped=" << swapped;
    if (rs.max_chain > 0) out << " squashed=" << squashed;
    out << "\n" << "done\n";
  } else if (verb == "!stats") {
    out << "stats " << format_repository_stats(rs.repo->stats()) << "\n";
    for (const auto& [key, svc] : rs.services) {
      const std::size_t nul = key.find('\0');
      const std::string circuit = key.substr(0, nul);
      StoreSource kind{};
      parse_store_source(key.substr(nul + 1), &kind);
      const auto it = rs.versions.find(key);
      const std::uint64_t version = it == rs.versions.end() ? 0 : it->second;
      out << "stats circuit=" << circuit << " kind=" << key.substr(nul + 1)
          << " " << format_service_stats(svc->stats())
          << " version=" << version
          << " chain=" << rs.repo->chain_length_of(circuit, kind, version)
          << " store_bytes=" << svc->current_store()->size_bytes() << "\n";
    }
    out << "done\n";
  } else if (verb == "!compact") {
    if (tokens.size() > 2)
      throw std::runtime_error("usage: !compact [lossless|lossy:EPS]");
    CompactionOptions copts;
    if (tokens.size() == 2 && tokens[1] != "lossless") {
      if (tokens[1].rfind("lossy:", 0) != 0)
        throw std::runtime_error("unknown compaction mode '" + tokens[1] +
                                 "' (have lossless lossy:EPS)");
      std::size_t pos = 0;
      const std::string eps = tokens[1].substr(6);
      unsigned long long v = 0;
      try {
        v = std::stoull(eps, &pos);
      } catch (const std::exception&) {
        pos = 0;
      }
      if (pos == 0 || pos != eps.size())
        throw std::runtime_error("bad lossy budget '" + eps + "'");
      copts.max_resolution_loss = v;
    }
    DiagnosisService& svc = rs.current();  // resolves the target, or throws
    const RepoCompaction rc =
        compact_published(*rs.repo, rs.circuit, rs.kind, copts);
    std::size_t swapped = 0;
    if (rc.published) {
      // Epoch-consistent hot swap: in-flight queries finish on the old
      // store, everything after sees the compacted version.
      svc.swap_store(rs.repo->acquire(rs.circuit, rs.kind));
      rs.versions[rs.key(rs.circuit, rs.kind)] =
          rs.repo->latest_version(rs.circuit, rs.kind);
      swapped = 1;
    }
    out << "compacted circuit=" << rs.circuit
        << " kind=" << store_source_name(rs.kind)
        << " version=" << rc.entry.version
        << " tests=" << rc.report.tests_before << "->" << rc.report.tests_after
        << " dropped=" << rc.report.dropped.size()
        << " pairs=" << rc.report.pairs_before << "->" << rc.report.pairs_after
        << " bytes=" << rc.report.bytes_before << "->" << rc.report.bytes_after
        << " published=" << (rc.published ? 1 : 0) << " swapped=" << swapped
        << "\n" << "done\n";
  } else if (verb == "!squash") {
    if (tokens.size() > 1) throw std::runtime_error("usage: !squash");
    DiagnosisService& svc = rs.current();
    const std::size_t chain_before = rs.repo->chain_length(rs.circuit, rs.kind);
    const ManifestEntry e = rs.repo->squash(rs.circuit, rs.kind);
    std::size_t swapped = 0;
    if (chain_before > 0) {
      svc.swap_store(rs.repo->acquire(rs.circuit, rs.kind));
      rs.versions[rs.key(rs.circuit, rs.kind)] =
          rs.repo->latest_version(rs.circuit, rs.kind);
      swapped = 1;
    }
    out << "squashed circuit=" << rs.circuit
        << " kind=" << store_source_name(rs.kind) << " version=" << e.version
        << " chain_before=" << chain_before << " bytes=" << e.bytes
        << " swapped=" << swapped << "\n" << "done\n";
  } else {
    throw std::runtime_error(
        "unknown admin verb " + verb +
        " (have !list !use !reload !stats !compact !squash)");
  }
}

// One client session: reads datalogs and commands until quit/EOF. Exactly
// one of `service` (single-store mode) and `repo` is non-null.
void serve_session(DiagnosisService* service, RepoServer* repo,
                   SessionService* session, std::istream& in,
                   std::ostream& out) {
  std::deque<PendingQuery> pending;
  std::string line;
  std::string block;
  bool in_block = false;
  while (std::getline(in, line)) {
    const std::vector<std::string> tokens = split_ws(line);
    if (!in_block && tokens.size() == 1 && tokens[0] == "!health") {
      // Same one-liner shape the event-loop front end emits. Replies are
      // strictly ordered, so everything owed drains first — which is why
      // in_flight is honestly zero here: stdio mode is serial.
      drain(out, pending, /*block=*/true);
      try {
        DiagnosisService& svc = repo ? repo->current() : *service;
        const ServiceStats st = svc.stats();
        out << "health state=ok queue_depth=" << st.queue_depth
            << " in_flight=" << pending.size() << " epoch=" << st.swaps
            << " version=" << (repo ? repo->served_version() : 0) << "\n";
      } catch (const std::exception& e) {
        out << "error " << e.what() << "\n" << "done\n";
      }
      out.flush();
      continue;
    }
    if (!in_block && !tokens.empty() && tokens[0][0] == '!') {
      drain(out, pending, /*block=*/true);
      try {
        if (!repo)
          throw std::runtime_error("admin verbs need repository mode (--repo)");
        handle_admin(*repo, tokens, out);
      } catch (const std::exception& e) {
        out << "error " << e.what() << "\n" << "done\n";
      }
      out.flush();
      continue;
    }
    if (!in_block && tokens.size() == 1 &&
        (tokens[0] == "stats" || tokens[0] == "quit")) {
      drain(out, pending, /*block=*/true);
      if (tokens[0] == "quit") return;
      try {
        DiagnosisService& svc = repo ? repo->current() : *service;
        out << "stats " << format_service_stats(svc.stats()) << "\n";
      } catch (const std::exception& e) {
        out << "error " << e.what() << "\n" << "done\n";
      }
      out.flush();
      continue;
    }
    if (!tokens.empty()) in_block = true;
    block += line;
    block += '\n';
    // A well-formed `end` line is exactly what closes a datalog for the
    // reader (diag/testerlog.h) — same framing rule here.
    if (tokens.size() == 1 && tokens[0] == "end") {
      if (net::is_session_frame(block)) {
        // Session verbs are stateful and ordered: drain everything owed,
        // then execute inline — the same discipline admin verbs follow.
        const std::string frame = std::move(block);
        block.clear();
        in_block = false;
        drain(out, pending, /*block=*/true);
        session->handle(frame, out);
        out.flush();
        continue;
      }
      std::istringstream blockin(block);
      block.clear();
      in_block = false;
      PendingQuery q;
      try {
        const TesterLog log = read_testerlog(blockin, {.recover = true});
        q.dropped = log.dropped.size();
        DiagnosisService& svc = repo ? repo->current() : *service;
        q.future = svc.submit(log.observations);
      } catch (const std::exception& e) {
        drain(out, pending, /*block=*/true);
        out << "error " << e.what() << "\n" << "done\n";
        out.flush();
        continue;
      }
      pending.push_back(std::move(q));
      drain(out, pending, /*block=*/false);
    }
  }
  drain(out, pending, /*block=*/true);
}

#ifdef SDDICT_SERVE_HAS_SOCKET
// Minimal read/write streambuf over a connected socket fd.
class FdStreamBuf : public std::streambuf {
 public:
  explicit FdStreamBuf(int fd) : fd_(fd) {
    setg(in_, in_, in_);
    setp(out_, out_ + sizeof out_);
  }
  ~FdStreamBuf() override { sync(); }

 protected:
  int_type underflow() override {
    if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
    const ssize_t n = ::read(fd_, in_, sizeof in_);
    if (n <= 0) return traits_type::eof();
    setg(in_, in_, in_ + n);
    return traits_type::to_int_type(*gptr());
  }
  int_type overflow(int_type ch) override {
    if (sync() != 0) return traits_type::eof();
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(ch);
      pbump(1);
    }
    return traits_type::not_eof(ch);
  }
  int sync() override {
    const char* p = pbase();
    while (p < pptr()) {
      const ssize_t n = ::write(fd_, p, static_cast<std::size_t>(pptr() - p));
      if (n <= 0) return -1;
      p += n;
    }
    setp(out_, out_ + sizeof out_);
    return 0;
  }

 private:
  int fd_;
  char in_[4096];
  char out_[4096];
};

int serve_socket(DiagnosisService* service, RepoServer* repo,
                 SessionService* session, const std::string& path, bool once,
                 int backlog) {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("socket");
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    std::fprintf(stderr, "socket path too long: %s\n", path.c_str());
    ::close(listener);
    return 1;
  }
  std::snprintf(addr.sun_path, sizeof addr.sun_path, "%s", path.c_str());
  // Reclaim a stale socket file from a dead server, but refuse to clobber
  // anything that is not a socket.
  struct stat st{};
  if (::lstat(path.c_str(), &st) == 0) {
    if (!S_ISSOCK(st.st_mode)) {
      std::fprintf(stderr, "refusing to replace non-socket %s\n", path.c_str());
      ::close(listener);
      return 1;
    }
    ::unlink(path.c_str());
  }
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listener, backlog) != 0) {
    std::perror(path.c_str());
    ::close(listener);
    return 1;
  }
  std::fprintf(stderr, "listening on %s (kernels: %s)\n", path.c_str(),
               kernels::dispatch().name);
  for (;;) {
    fdio::IoResult ar;
    const int conn = fdio::accept_retry(listener, &ar);  // EINTR-tolerant
    if (conn < 0) continue;
    {
      FdStreamBuf buf(conn);
      std::istream in(&buf);
      std::ostream out(&buf);
      serve_session(service, repo, session, in, out);
    }
    ::close(conn);
    if (once) break;
  }
  ::close(listener);
  ::unlink(path.c_str());
  return 0;
}

// ----------------------------------------------------- event-loop mode --

// Backend adapters handing the event loop its dispatch target: the single
// store service, or the repo server's current circuit plus admin verbs.
struct StoreBackend : net::NetServer::Backend {
  DiagnosisService* svc;
  SessionService* session;
  StoreBackend(DiagnosisService* s, SessionService* ss)
      : svc(s), session(ss) {}
  DiagnosisService& service() override { return *svc; }
  bool handle_admin(const std::vector<std::string>&, std::ostream&) override {
    return false;  // admin verbs need repository mode
  }
  bool handle_session(const std::string& frame_text,
                      std::ostream& out) override {
    session->handle(frame_text, out);
    return true;
  }
};

struct RepoBackend : net::NetServer::Backend {
  RepoServer* rs;
  SessionService* session;
  RepoBackend(RepoServer* r, SessionService* ss) : rs(r), session(ss) {}
  DiagnosisService& service() override { return rs->current(); }
  bool handle_admin(const std::vector<std::string>& tokens,
                    std::ostream& out) override {
    ::handle_admin(*rs, tokens, out);  // the free admin-verb handler above
    return true;
  }
  bool handle_session(const std::string& frame_text,
                      std::ostream& out) override {
    session->handle(frame_text, out);
    return true;
  }
  std::uint64_t store_version() override { return rs->served_version(); }
};

net::NetServer* g_net_server = nullptr;

void on_stop_signal(int) {
  // request_stop is async-signal-safe: an atomic store + self-pipe write.
  if (g_net_server != nullptr) g_net_server->request_stop();
}

int serve_net(DiagnosisService* service, RepoServer* repo,
              SessionService* session, const net::NetServerOptions& nopts,
              const std::string& port_file) {
  StoreBackend store_backend(service, session);
  RepoBackend repo_backend(repo, session);
  net::NetServer::Backend& backend =
      repo ? static_cast<net::NetServer::Backend&>(repo_backend)
           : static_cast<net::NetServer::Backend&>(store_backend);
  net::NetServer server(backend, nopts);
  server.start();
  g_net_server = &server;
  std::signal(SIGINT, on_stop_signal);
  std::signal(SIGTERM, on_stop_signal);
  if (server.tcp_port() >= 0)
    std::fprintf(stderr, "listening on tcp %s:%d (kernels: %s)\n",
                 nopts.bind_host.c_str(), server.tcp_port(),
                 kernels::dispatch().name);
  if (!nopts.unix_path.empty())
    std::fprintf(stderr, "listening on %s\n", nopts.unix_path.c_str());
  if (!port_file.empty() && server.tcp_port() >= 0)
    // Atomic (temp + rename): a supervisor polling the path sees either
    // nothing or the complete address, never a torn prefix.
    atomic_write_file(port_file, nopts.bind_host + ":" +
                                     std::to_string(server.tcp_port()) + "\n");
  server.run();  // returns after a stop signal, fully drained
  g_net_server = nullptr;
  std::fprintf(stderr, "drained: %s\n",
               format_net_stats(server.stats()).c_str());
  return 0;
}
#endif

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto unknown = args.unknown_flags(
      {"store", "repo", "circuit", "kind", "threads", "batch", "cache",
       "deadline-ms", "load", "socket", "once", "backlog", "tcp", "host",
       "max-sessions", "max-inflight", "session-inflight", "pending",
       "idle-timeout-ms", "frame-timeout-ms", "write-timeout-ms",
       "busy-retry-ms", "port-file", "failpoints", "session-deadline-ms",
       "max-die-sessions", "session-runs", "session-cover", "max-chain"});
  if (!unknown.empty()) {
    for (const auto& f : unknown)
      std::fprintf(stderr, "unknown flag --%s\n", f.c_str());
    return usage();
  }

  std::string store_path, repo_dir, circuit, kind_token, load_mode, socket_path;
  std::string port_file;
  ServiceOptions opts;
  SessionServiceOptions sopts;
  net::NetServerOptions nopts;
  bool once = false;
  bool tcp_mode = false;
  std::size_t max_chain = 0;
  try {
    store_path = args.get("store");
    repo_dir = args.get("repo");
    circuit = args.get("circuit");
    kind_token = args.get("kind", store_source_name(StoreSource::kSameDifferent));
    if (store_path.empty() == repo_dir.empty())
      throw std::invalid_argument(
          "exactly one of --store and --repo is required");
    opts.threads = static_cast<std::size_t>(args.get_int("threads", 1, 0, 4096));
    opts.batch = static_cast<std::size_t>(args.get_int("batch", 8, 1, 1 << 16));
    opts.cache = static_cast<std::size_t>(args.get_int("cache", 256, 0, 1 << 24));
    opts.deadline_ms = args.get_double("deadline-ms", 0);
    if (opts.deadline_ms < 0)
      throw std::invalid_argument("flag --deadline-ms must be >= 0");
    load_mode = args.get("load", "auto");
    if (load_mode != "auto" && load_mode != "mmap" && load_mode != "stream")
      throw std::invalid_argument("flag --load must be auto, mmap or stream");
    socket_path = args.get("socket");
    once = args.get_bool("once", false);
    tcp_mode = args.has("tcp");
    nopts.tcp_port =
        tcp_mode ? static_cast<int>(args.get_int("tcp", 0, 0, 65535)) : -1;
    nopts.bind_host = args.get("host", "127.0.0.1");
    nopts.backlog = static_cast<int>(args.get_int("backlog", 64, 1, 65535));
    nopts.max_sessions =
        static_cast<std::size_t>(args.get_int("max-sessions", 256, 1, 1 << 20));
    nopts.max_inflight =
        static_cast<std::size_t>(args.get_int("max-inflight", 64, 1, 1 << 20));
    nopts.session_inflight = static_cast<std::size_t>(
        args.get_int("session-inflight", 8, 1, 1 << 20));
    nopts.max_pending =
        static_cast<std::size_t>(args.get_int("pending", 128, 1, 1 << 20));
    nopts.idle_timeout_ms = args.get_double("idle-timeout-ms", 30000);
    nopts.frame_timeout_ms = args.get_double("frame-timeout-ms", 10000);
    nopts.write_timeout_ms = args.get_double("write-timeout-ms", 10000);
    nopts.busy_retry_ms = static_cast<std::uint32_t>(
        args.get_int("busy-retry-ms", 25, 1, 1 << 20));
    port_file = args.get("port-file");
    max_chain =
        static_cast<std::size_t>(args.get_int("max-chain", 0, 0, 1 << 20));
    sopts.deadline_ms = args.get_double("session-deadline-ms", 0);
    if (sopts.deadline_ms < 0)
      throw std::invalid_argument("flag --session-deadline-ms must be >= 0");
    sopts.limits.max_sessions = static_cast<std::size_t>(
        args.get_int("max-die-sessions", 64, 1, 1 << 20));
    sopts.limits.max_runs =
        static_cast<std::size_t>(args.get_int("session-runs", 64, 1, 1 << 20));
    sopts.diagnose.max_cover =
        static_cast<std::size_t>(args.get_int("session-cover", 8, 1, 64));
    // Chaos harness hook: deterministic fault injection armed from the
    // command line or the SDDICT_FAILPOINTS environment variable.
    std::size_t armed = failpoint::arm_from_env();
    armed += failpoint::arm_from_spec(args.get("failpoints"));
    if (armed > 0)
      std::fprintf(stderr, "armed %zu failpoint(s)\n", armed);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return usage();
  }

  try {
    const StoreLoadMode mode = load_mode == "mmap"   ? StoreLoadMode::kMmap
                               : load_mode == "stream" ? StoreLoadMode::kStream
                                                       : StoreLoadMode::kAuto;
    std::unique_ptr<DiagnosisService> service;
    std::unique_ptr<DictionaryRepository> repository;
    RepoServer repo_server;
    RepoServer* repo = nullptr;
    if (!repo_dir.empty()) {
      RepositoryOptions ropts;
      ropts.load_mode = mode;
      repository =
          std::make_unique<DictionaryRepository>(repo_dir, ropts);
      repo_server.repo = repository.get();
      repo_server.opts = opts;
      repo_server.circuit = circuit;
      repo_server.max_chain = max_chain;
      if (!parse_store_source(kind_token, &repo_server.kind))
        throw std::runtime_error("unknown kind '" + kind_token + "'");
      std::fprintf(stderr, "repo %s: %zu artifacts cataloged\n",
                   repo_dir.c_str(), repository->manifest().entries.size());
      repo = &repo_server;
    } else {
      SignatureStore store = SignatureStore::load_file(store_path, mode);
      std::fprintf(stderr,
                   "store %s: kind=%s source=%s faults=%zu tests=%zu %s\n",
                   store_path.c_str(), store_kind_name(store.kind()),
                   store_source_name(store.source()), store.num_faults(),
                   store.num_tests(), store.mapped() ? "mmap" : "stream");
      // Shared (not owned) so the session diagnoser can build its packed
      // detection rows over the very store the single-fault service runs
      // on; behavior of the service itself is unchanged.
      service = std::make_unique<DiagnosisService>(
          std::make_shared<const SignatureStore>(std::move(store)), opts);
    }
    // Session verbs resolve the engine lazily per request, so repo-mode
    // hot swaps are picked up; the cache rebuilds only when the served
    // store pointer actually changes.
    auto session_cache = std::make_shared<SessionEngineCache>();
    SessionService session_service(
        [svc = service.get(), repo, session_cache]() {
          DiagnosisService& s = repo ? repo->current() : *svc;
          return session_cache->get(s.current_store());
        },
        sopts);
    if (tcp_mode) {
#ifdef SDDICT_SERVE_HAS_SOCKET
      // --socket alongside --tcp adds a Unix listener on the same loop.
      nopts.unix_path = socket_path;
      return serve_net(service.get(), repo, &session_service, nopts,
                       port_file);
#else
      std::fprintf(stderr, "--tcp is not supported on this platform\n");
      return 1;
#endif
    }
    if (!socket_path.empty()) {
#ifdef SDDICT_SERVE_HAS_SOCKET
      return serve_socket(service.get(), repo, &session_service, socket_path,
                          once, nopts.backlog);
#else
      std::fprintf(stderr, "--socket is not supported on this platform\n");
      return 1;
#endif
    }
    serve_session(service.get(), repo, &session_service, std::cin, std::cout);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sddict_serve: %s\n", e.what());
    return 1;
  }
}
