// sddict_repo: offline repository maintenance CLI. The same catalog
// operations sddict_serve exposes as !list/!stats/!compact/!squash admin
// verbs, runnable against a repository directory without standing up a
// server — for cron jobs, CI smoke flows, and operators inspecting a
// catalog by hand. Output lines deliberately match the serve admin-verb
// shapes so scripts can share their parsers.
//
//   $ ./sddict_repo DIR list
//   $ ./sddict_repo DIR stats
//   $ ./sddict_repo DIR compact CIRCUIT [--kind=KIND] [--lossy=EPS]
//   $ ./sddict_repo DIR squash CIRCUIT [--kind=KIND] [--max-chain=N]
//
// compact plans a test-set compaction of the latest version (lossless by
// default; --lossy=EPS tolerates EPS extra indistinguished fault pairs)
// and publishes it as a drop-only delta. squash collapses the delta chain
// into a fresh full store version; with --max-chain=N it is a no-op while
// the chain is at most N hops deep.
#include <cstdio>
#include <exception>
#include <iostream>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "compact/repo_compact.h"
#include "repo/repository.h"
#include "store/signature_store.h"
#include "util/cli.h"

using namespace sddict;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: sddict_repo DIR list\n"
               "       sddict_repo DIR stats\n"
               "       sddict_repo DIR compact CIRCUIT [--kind=KIND]"
               " [--lossy=EPS]\n"
               "       sddict_repo DIR squash CIRCUIT [--kind=KIND]"
               " [--max-chain=N]\n");
  return 1;
}

void print_entry(DictionaryRepository& repo, const ManifestEntry& e) {
  std::cout << "artifact circuit=" << e.circuit
            << " kind=" << store_source_name(e.kind)
            << " version=" << e.version << " bytes=" << e.bytes
            << " chain=" << repo.chain_length_of(e.circuit, e.kind, e.version);
  if (e.is_delta)
    std::cout << " base=" << e.base_version << " added=" << e.added_tests
              << " dropped=" << encode_index_ranges(e.dropped);
  std::cout << " file=" << (e.file.empty() ? "-" : e.file) << "\n";
}

int run_list(DictionaryRepository& repo) {
  for (const ManifestEntry& e : repo.manifest().entries) print_entry(repo, e);
  return 0;
}

int run_stats(DictionaryRepository& repo) {
  std::cout << "stats " << format_repository_stats(repo.stats()) << "\n";
  // One maintenance line per (circuit, kind): the latest version, its
  // delta-chain depth, the cataloged artifact bytes along the chain, and
  // the bytes the materialized store actually occupies when served.
  std::map<std::pair<std::string, StoreSource>, std::uint64_t> latest;
  std::map<std::pair<std::string, StoreSource>, std::uint64_t> file_bytes;
  for (const ManifestEntry& e : repo.manifest().entries) {
    const auto k = std::make_pair(e.circuit, e.kind);
    if (e.version > latest[k]) latest[k] = e.version;
    file_bytes[k] += e.bytes;
  }
  for (const auto& [k, version] : latest) {
    const auto store = repo.acquire_version(k.first, k.second, version);
    std::cout << "stats circuit=" << k.first
              << " kind=" << store_source_name(k.second)
              << " version=" << version
              << " chain=" << repo.chain_length_of(k.first, k.second, version)
              << " file_bytes=" << file_bytes[k]
              << " store_bytes=" << store->size_bytes() << "\n";
  }
  return 0;
}

int run_compact(DictionaryRepository& repo, const std::string& circuit,
                StoreSource kind, std::uint64_t lossy) {
  CompactionOptions opts;
  opts.max_resolution_loss = lossy;
  const RepoCompaction rc = compact_published(repo, circuit, kind, opts);
  std::cout << "compacted circuit=" << circuit
            << " kind=" << store_source_name(kind)
            << " version=" << rc.entry.version
            << " tests=" << rc.report.tests_before << "->"
            << rc.report.tests_after << " dropped=" << rc.report.dropped.size()
            << " pairs=" << rc.report.pairs_before << "->"
            << rc.report.pairs_after << " bytes=" << rc.report.bytes_before
            << "->" << rc.report.bytes_after
            << " published=" << (rc.published ? 1 : 0) << "\n";
  return 0;
}

int run_squash(DictionaryRepository& repo, const std::string& circuit,
               StoreSource kind, std::size_t max_chain) {
  const std::size_t chain = repo.chain_length(circuit, kind);
  if (chain <= max_chain) {
    std::cout << "squashed circuit=" << circuit
              << " kind=" << store_source_name(kind)
              << " version=" << repo.latest_version(circuit, kind)
              << " chain_before=" << chain << " skipped=1\n";
    return 0;
  }
  const ManifestEntry e = repo.squash(circuit, kind);
  std::cout << "squashed circuit=" << circuit
            << " kind=" << store_source_name(kind) << " version=" << e.version
            << " chain_before=" << chain << " bytes=" << e.bytes
            << " skipped=0\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto unknown = args.unknown_flags({"kind", "lossy", "max-chain"});
  if (!unknown.empty()) {
    for (const auto& f : unknown)
      std::fprintf(stderr, "unknown flag --%s\n", f.c_str());
    return usage();
  }
  const std::vector<std::string>& pos = args.positional();
  if (pos.size() < 2) return usage();
  const std::string& dir = pos[0];
  const std::string& verb = pos[1];
  try {
    StoreSource kind = StoreSource::kSameDifferent;
    const std::string kind_token =
        args.get("kind", store_source_name(StoreSource::kSameDifferent));
    if (!parse_store_source(kind_token, &kind))
      throw std::runtime_error("unknown kind '" + kind_token + "'");
    DictionaryRepository repo(dir);
    if (verb == "list" && pos.size() == 2) return run_list(repo);
    if (verb == "stats" && pos.size() == 2) return run_stats(repo);
    if (verb == "compact" && pos.size() == 3) {
      const std::uint64_t lossy = static_cast<std::uint64_t>(
          args.get_int("lossy", 0, 0, std::numeric_limits<std::int64_t>::max()));
      return run_compact(repo, pos[2], kind, lossy);
    }
    if (verb == "squash" && pos.size() == 3) {
      const std::size_t max_chain =
          static_cast<std::size_t>(args.get_int("max-chain", 0, 0, 1 << 20));
      return run_squash(repo, pos[2], kind, max_chain);
    }
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
