// Guided-probe diagnosis session: a chip fails with an *unmodeled* defect
// (a two-net bridge). The same/different dictionary narrows the candidate
// list from the tester response alone; guided probing of internal nets then
// pins the defect down to the bridged region — the full classic flow of
// dictionary lookup followed by physical probing.
//
//   $ ./probe_session [--circuit=s298] [--seed=1]
#include <cstdio>
#include <exception>
#include <stdexcept>

#include "bmcirc/registry.h"
#include "core/baseline.h"
#include "core/procedure2.h"
#include "diag/observe.h"
#include "diag/probe.h"
#include "dict/full_dict.h"
#include "dict/samediff_dict.h"
#include "fault/bridge.h"
#include "fault/collapse.h"
#include "netlist/stats.h"
#include "netlist/transform.h"
#include "tgen/diagset.h"
#include "util/cli.h"

using namespace sddict;

namespace {

int usage() {
  std::fprintf(stderr, "usage: probe_session [--circuit=s298] [--seed=N]\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto unknown = args.unknown_flags({"circuit", "seed"});
  if (!unknown.empty()) {
    for (const auto& f : unknown)
      std::fprintf(stderr, "unknown flag --%s\n", f.c_str());
    return usage();
  }
  std::string circuit;
  std::uint64_t seed = 0;
  try {
    circuit = args.get("circuit", "s298");
    if (!is_known_benchmark(circuit))
      throw std::invalid_argument("flag --circuit: unknown benchmark '" +
                                  circuit + "'");
    seed = args.get_int("seed", 1, 0);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return usage();
  }

  Netlist nl = load_benchmark(circuit);
  if (nl.has_dffs()) nl = full_scan(nl);
  std::printf("chip: %s\n", format_stats(nl).c_str());

  const FaultList faults = collapsed_fault_list(nl).collapsed;
  DiagSetOptions dopts;
  dopts.seed = seed;
  const TestSet tests = generate_diagnostic(nl, faults, dopts).tests;
  const ResponseMatrix rm = build_response_matrix(nl, faults, tests);

  BaselineSelectionConfig cfg;
  cfg.calls1 = 10;
  cfg.seed = seed;
  cfg.target_indistinguished =
      FullDictionary::build(rm).indistinguished_pairs();
  const auto p1 = run_procedure1(rm, cfg);
  Procedure2Config p2cfg;
  p2cfg.target_indistinguished = cfg.target_indistinguished;
  const auto p2 = run_procedure2(rm, p1.baselines, p2cfg);
  const auto sd = SameDifferentDictionary::build(rm, p2.baselines);

  // The hidden defect: a sampled non-feedback bridge.
  Rng rng(seed + 42);
  const auto bridges = sample_bridges(nl, 10, rng);
  BridgingFault defect{};
  std::vector<ResponseId> observed;
  bool excited = false;
  for (const auto& br : bridges) {
    const Netlist bad = inject_bridge(nl, br);
    observed = observe_defective_netlist(nl, bad, tests, rm);
    for (ResponseId id : observed) excited |= id != 0;
    if (excited) {
      defect = br;
      break;
    }
  }
  if (!excited) {
    std::printf("no sampled bridge was excited by the test set; rerun with "
                "another --seed\n");
    return 1;
  }
  std::printf("hidden defect: %s\n\n", bridge_name(nl, defect).c_str());

  // Stage 1: dictionary lookup.
  const auto ranked = sd.diagnose(sd.encode(observed), faults.size());
  std::vector<FaultId> candidates;
  for (const auto& m : ranked)
    if (m.mismatches == ranked.front().mismatches)
      candidates.push_back(m.fault);
  std::printf("stage 1 (same/different dictionary): %zu candidate(s) at %u "
              "mismatching tests\n",
              candidates.size(), ranked.front().mismatches);
  for (std::size_t i = 0; i < candidates.size() && i < 6; ++i)
    std::printf("    %s\n", fault_name(nl, faults[candidates[i]]).c_str());

  // Stage 2: guided probing.
  const auto oracle = bridge_probe_oracle(nl, tests, defect);
  const ProbeResult probe =
      guided_probe(nl, faults, tests, candidates, oracle);
  std::printf("\nstage 2 (guided probe): %zu probe(s)\n", probe.steps.size());
  for (const auto& step : probe.steps)
    std::printf("    probed %s under test %zu -> %d  (%zu -> %zu candidates)\n",
                nl.gate(step.net).name.c_str(), step.test, step.reading,
                step.candidates_before, step.candidates_after);
  std::printf("final candidates:\n");
  for (FaultId f : probe.final_candidates)
    std::printf("    %s\n", fault_name(nl, faults[f]).c_str());

  // Score: did diagnosis end on the bridged nets?
  bool on_bridge = false;
  for (FaultId f : probe.final_candidates) {
    const StuckFault& sf = faults[f];
    if (sf.gate == defect.a || sf.gate == defect.b) on_bridge = true;
    if (!sf.is_output_fault()) {
      const GateId driver =
          nl.gate(sf.gate).fanin[static_cast<std::size_t>(sf.pin)];
      if (driver == defect.a || driver == defect.b) on_bridge = true;
    }
  }
  std::printf("\ndefect region %s by the final candidate set\n",
              on_bridge ? "LOCALIZED" : "not hit");
  return 0;
}
