#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "util/bitvec.h"
#include "util/cli.h"
#include "util/hash.h"
#include "util/rng.h"
#include "util/strings.h"

namespace sddict {
namespace {

// ---------------------------------------------------------------- BitVec --

TEST(BitVec, StartsZeroed) {
  BitVec v(130);
  EXPECT_EQ(v.size(), 130u);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_FALSE(v.get(i));
  EXPECT_EQ(v.count_ones(), 0u);
}

TEST(BitVec, SetGetFlipAcrossWordBoundary) {
  BitVec v(130);
  for (std::size_t i : {0u, 63u, 64u, 65u, 127u, 128u, 129u}) {
    v.set(i, true);
    EXPECT_TRUE(v.get(i)) << i;
    v.flip(i);
    EXPECT_FALSE(v.get(i)) << i;
  }
}

TEST(BitVec, FillConstructorAndSetAllKeepTailClean) {
  BitVec v(70, true);
  EXPECT_EQ(v.count_ones(), 70u);
  // Tail bits beyond size must stay zero for word-level equality.
  EXPECT_EQ(v.words()[1] >> 6, 0u);
}

TEST(BitVec, FromStringRoundTrip) {
  const std::string s = "0110010111010001";
  BitVec v = BitVec::from_string(s);
  EXPECT_EQ(v.to_string(), s);
  EXPECT_EQ(v.count_ones(), 8u);
}

TEST(BitVec, FromStringRejectsBadCharacters) {
  EXPECT_THROW(BitVec::from_string("01x"), std::invalid_argument);
}

TEST(BitVec, PushBackGrows) {
  BitVec v;
  for (int i = 0; i < 100; ++i) v.push_back(i % 3 == 0);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v.count_ones(), 34u);
}

TEST(BitVec, EqualityIsValueBased) {
  BitVec a = BitVec::from_string("0101");
  BitVec b = BitVec::from_string("0101");
  BitVec c = BitVec::from_string("0100");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, BitVec(5));
}

TEST(BitVec, FirstDifference) {
  BitVec a = BitVec::from_string("00001000");
  BitVec b = BitVec::from_string("00001010");
  EXPECT_EQ(a.first_difference(b), 6u);
  EXPECT_EQ(a.first_difference(a), BitVec::npos);
  BitVec wide_a(100);
  BitVec wide_b(100);
  wide_b.set(99, true);
  EXPECT_EQ(wide_a.first_difference(wide_b), 99u);
}

TEST(BitVec, FirstDifferenceSizeMismatchThrows) {
  BitVec a(4), b(5);
  EXPECT_THROW(a.first_difference(b), std::invalid_argument);
}

TEST(BitVec, XorAndOr) {
  BitVec a = BitVec::from_string("0110");
  BitVec b = BitVec::from_string("0011");
  BitVec x = a;
  x ^= b;
  EXPECT_EQ(x.to_string(), "0101");
  BitVec n = a;
  n &= b;
  EXPECT_EQ(n.to_string(), "0010");
  BitVec o = a;
  o |= b;
  EXPECT_EQ(o.to_string(), "0111");
}

TEST(BitVec, LexicographicOrder) {
  EXPECT_LT(BitVec::from_string("0011"), BitVec::from_string("0100"));
  EXPECT_LT(BitVec::from_string("000"), BitVec::from_string("0000"));
  EXPECT_FALSE(BitVec::from_string("0100") < BitVec::from_string("0011"));
}

TEST(BitVec, NormalizeTailAfterRawWordWrite) {
  BitVec v(10);
  v.mutable_words()[0] = ~std::uint64_t{0};
  v.normalize_tail();
  EXPECT_EQ(v.count_ones(), 10u);
}

// ------------------------------------------------------------------- Rng --

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(13), 13u);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(1);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(5);
  std::vector<int> v(64);
  for (int i = 0; i < 64; ++i) v[i] = i;
  const auto orig = v;
  rng.shuffle(v);
  EXPECT_NE(v, orig);
}

TEST(Rng, SplitIndependentStreams) {
  Rng a(77);
  Rng b = a.split();
  EXPECT_NE(a.next(), b.next());
}

// ------------------------------------------------------------------ hash --

TEST(Hash, Mix64IsInjectiveOnSample) {
  std::unordered_set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) seen.insert(mix64(i));
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(Hash, HashBitvecDistinguishesContent) {
  const Hash128 a = hash_bitvec(BitVec::from_string("0101"));
  const Hash128 b = hash_bitvec(BitVec::from_string("0111"));
  const Hash128 c = hash_bitvec(BitVec::from_string("0101"));
  EXPECT_EQ(a, c);
  EXPECT_FALSE(a == b);
}

TEST(Hash, HashBitvecDistinguishesLength) {
  const Hash128 a = hash_bitvec(BitVec(64));
  const Hash128 b = hash_bitvec(BitVec(65));
  EXPECT_FALSE(a == b);
}

TEST(Hash, SlotTokensDistinct) {
  std::unordered_set<std::uint64_t> seen;
  for (std::uint64_t slot = 0; slot < 1000; ++slot)
    for (std::uint64_t v = 0; v < 2; ++v) seen.insert(slot_token(slot, v).lo);
  EXPECT_EQ(seen.size(), 2000u);
}

TEST(Hash, XorAccumulationOrderIndependent) {
  Hash128 a = slot_token(1, 1) ^ slot_token(2, 1) ^ slot_token(3, 1);
  Hash128 b = slot_token(3, 1) ^ slot_token(1, 1) ^ slot_token(2, 1);
  EXPECT_EQ(a, b);
}

// --------------------------------------------------------------- strings --

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n"), "");
}

TEST(Strings, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(Strings, SplitWs) {
  const auto parts = split_ws("  foo\tbar  baz ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "bar");
}

TEST(Strings, ToLowerAndStartsWith) {
  EXPECT_EQ(to_lower("NaNd"), "nand");
  EXPECT_TRUE(starts_with("INPUT(x)", "INPUT"));
  EXPECT_FALSE(starts_with("IN", "INPUT"));
}

TEST(Strings, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(1234567890ULL), "1,234,567,890");
}

// ------------------------------------------------------------------- cli --

TEST(Cli, ParsesFlagsAndPositional) {
  const char* argv[] = {"prog", "--alpha=3", "--flag", "file.bench", "--name=x"};
  CliArgs args(5, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("alpha", 0), 3);
  EXPECT_TRUE(args.get_bool("flag", false));
  EXPECT_EQ(args.get("name"), "x");
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "file.bench");
}

TEST(Cli, Defaults) {
  const char* argv[] = {"prog"};
  CliArgs args(1, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("missing", 7), 7);
  EXPECT_EQ(args.get("missing", "d"), "d");
  EXPECT_FALSE(args.has("missing"));
}

TEST(Cli, GetList) {
  const char* argv[] = {"prog", "--circuits=s27,s208"};
  CliArgs args(2, const_cast<char**>(argv));
  const auto list = args.get_list("circuits");
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[1], "s208");
}

TEST(Cli, BadBoolThrows) {
  const char* argv[] = {"prog", "--b=maybe"};
  CliArgs args(2, const_cast<char**>(argv));
  EXPECT_THROW(args.get_bool("b", false), std::invalid_argument);
}

TEST(Cli, UnknownFlags) {
  const char* argv[] = {"prog", "--good=1", "--typo=2"};
  CliArgs args(3, const_cast<char**>(argv));
  const auto unknown = args.unknown_flags({"good"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

}  // namespace
}  // namespace sddict
