// Fault-injection helpers for the robustness test suite.
//
// Three kinds of failure are injected:
//  * library failpoints (src/util/failpoint.h) armed/disarmed via the RAII
//    ScopedFailPoint, so a throwing EXPECT can never leave a point armed
//    for later tests;
//  * stream failures through custom streambufs — FailAfterWriteBuf makes an
//    ostream fail mid-write, ThrowAfterReadBuf makes an istream go bad
//    mid-read — exercising the serialization layer's torn-file handling;
//  * byte-level corruption via flip_byte, the primitive of the
//    deterministic mutation fuzzer in test_robustness.cpp;
//  * observation noise via apply_noise, a seeded per-test channel that
//    flips response ids and drops records — the model of an imperfect
//    tester datalog driving bench/bench_noise.cpp and the engine tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <streambuf>
#include <string>
#include <vector>

#include "sim/response.h"
#include "util/failpoint.h"

namespace sddict::testing {

// Arms a failpoint for the lifetime of a scope. The destructor disarms
// unconditionally, which is a no-op when the point already fired.
class ScopedFailPoint {
 public:
  explicit ScopedFailPoint(std::string name, std::size_t countdown = 1,
                           failpoint::Kind kind = failpoint::Kind::kRuntimeError)
      : name_(std::move(name)) {
    failpoint::arm(name_, countdown, kind);
  }
  ~ScopedFailPoint() { failpoint::disarm(name_); }

  ScopedFailPoint(const ScopedFailPoint&) = delete;
  ScopedFailPoint& operator=(const ScopedFailPoint&) = delete;

 private:
  std::string name_;
};

// A streambuf that accepts `limit` characters and then reports write
// failure (overflow returns eof), which sets badbit on the owning ostream —
// the behavior of a disk filling up mid-write.
class FailAfterWriteBuf : public std::streambuf {
 public:
  explicit FailAfterWriteBuf(std::size_t limit) : limit_(limit) {}

  const std::string& written() const { return written_; }

 protected:
  int_type overflow(int_type ch) override;

 private:
  std::size_t limit_;
  std::string written_;
};

// A streambuf that serves `data` one character at a time and throws
// std::ios_base::failure after `limit` characters — the behavior of an I/O
// error (NFS timeout, yanked device) mid-read. istream catches the
// exception internally and sets badbit, so readers observe a stream that
// goes bad partway through, not an escaping exception.
class ThrowAfterReadBuf : public std::streambuf {
 public:
  ThrowAfterReadBuf(std::string data, std::size_t limit)
      : data_(std::move(data)), limit_(limit) {}

 protected:
  int_type underflow() override;

 private:
  std::string data_;
  std::size_t limit_;
  std::size_t served_ = 0;
  char ch_ = 0;
};

// The mutation-fuzzer primitive: returns `text` with the byte at `index`
// xor'd with 1 (flips '0' <-> '1', perturbs digits, letters and '\n').
// Works equally on binary images (the signature-store fuzzers flip every
// byte of a packed store through it).
std::string flip_byte(std::string text, std::size_t index);

// The truncation-fuzzer primitive: the first `size` bytes of `bytes` —
// a torn download / partial copy of a binary artifact.
std::string truncate_to(std::string bytes, std::size_t size);

// Deterministic observation-noise channel. Per test, in fixed draw order:
// with probability drop_rate the record is lost (kMissing); otherwise with
// probability flip_rate the value is corrupted — into a different modeled
// response id when the test has one, into kUnknownResponse when the only
// modeled response is fault-free (nothing plausible to flip to). The same
// seed always produces the same noise pattern.
struct NoiseChannel {
  double flip_rate = 0.0;
  double drop_rate = 0.0;
  std::uint64_t seed = 1;
};

std::vector<Observed> apply_noise(const std::vector<ResponseId>& observed,
                                  const ResponseMatrix& rm,
                                  const NoiseChannel& noise);

}  // namespace sddict::testing
