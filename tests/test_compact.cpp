// Compaction suite (ISSUE 10): the dictionary-aware test-set compaction
// subsystem (src/compact) and the incremental delta-store repository flow
// it feeds.
//
//  * planner basics against the full-dictionary resolution oracle: the
//    pair count, lossless pair preservation with the exact verification
//    pass, the lossy bound, anytime budget semantics, and the
//    never-drop-the-last-column guard;
//  * column surgery identities: select_tests()/concat_tests() route
//    through the same image builder as build(), so splitting a store and
//    concatenating the halves reproduces the original bytes exactly — for
//    every store kind;
//  * the serving identity (clean AND noisy observations, every kind):
//    diagnosing the compacted store with the observation projected onto
//    the kept columns is identical to diagnosing the UNCOMPACTED store
//    with the dropped observations forced to kMissing;
//  * delta repository: base+delta materialization is byte-identical to
//    the equivalent direct build, chains walk correctly, squash collapses
//    them, named errors for malformed deltas, squash_async honors
//    max_chain;
//  * compact_published(): a drop-only delta lands in the catalog and the
//    hot-swap identity gate holds while 4 producer threads query through
//    a repository-backed DiagnosisService mid-compaction (the TSan gate).
//
// Registered under the "serving" ctest label; the tsan preset includes it.
#include <gtest/gtest.h>

#include <filesystem>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bmcirc/synth.h"
#include "compact/compact.h"
#include "compact/plan.h"
#include "compact/repo_compact.h"
#include "diag/engine.h"
#include "dict/firstfail_dict.h"
#include "dict/full_dict.h"
#include "dict/multibaseline_dict.h"
#include "dict/passfail_dict.h"
#include "dict/samediff_dict.h"
#include "fault/collapse.h"
#include "faultinject.h"
#include "repo/repository.h"
#include "serve/diagnosis_service.h"
#include "sim/response.h"
#include "sim/testset.h"
#include "store/signature_store.h"
#include "tgen/compact.h"
#include "util/budget.h"
#include "util/rng.h"
#include "util/threadpool.h"

namespace sddict {
namespace {

using testing::NoiseChannel;
using testing::apply_noise;

// ------------------------------------------------------------- fixtures --

ResponseMatrix compact_matrix() {
  SynthProfile profile;
  profile.name = "compact";
  profile.inputs = 10;
  profile.outputs = 4;
  profile.dffs = 0;
  profile.gates = 80;
  profile.seed = 0xc0ac;
  const Netlist nl = generate_synthetic(profile);
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  TestSet tests(nl.num_inputs());
  Rng rng(17);
  // Enough random tests that many columns split no pair the others do not
  // already split — the compactor has real work to do.
  tests.add_random(56, rng);
  ResponseMatrixStatus status;
  return build_response_matrix(nl, faults, tests, {.store_diff_outputs = true},
                               &status);
}

const ResponseMatrix& rm() {
  static const ResponseMatrix m = compact_matrix();
  return m;
}

std::vector<ResponseId> sd_baselines() {
  std::vector<ResponseId> bl(rm().num_tests(), 0);
  for (std::size_t t = 0; t < rm().num_tests(); ++t)
    if (rm().num_distinct(t) > 1 && t % 2 == 0) bl[t] = 1;
  return bl;
}

std::vector<std::vector<ResponseId>> mb_baselines() {
  std::vector<std::vector<ResponseId>> bl(rm().num_tests());
  for (std::size_t t = 0; t < rm().num_tests(); ++t) {
    bl[t] = {0};
    if (rm().num_distinct(t) > 1 && t % 3 == 0) bl[t].push_back(1);
  }
  return bl;
}

// One store per kind, as the serving layer would load them.
std::vector<SignatureStore> all_kind_stores() {
  std::vector<SignatureStore> out;
  out.push_back(SignatureStore::build(PassFailDictionary::build(rm())));
  out.push_back(
      SignatureStore::build(SameDifferentDictionary::build(rm(), sd_baselines())));
  out.push_back(SignatureStore::build(
      MultiBaselineDictionary::build(rm(), mb_baselines())));
  out.push_back(SignatureStore::build(FullDictionary::build(rm())));
  out.push_back(SignatureStore::build(FirstFailDictionary::build(rm())));
  return out;
}

// The fault's exact full-width observation.
std::vector<ResponseId> fault_response(FaultId f) {
  std::vector<ResponseId> ids(rm().num_tests());
  for (std::size_t t = 0; t < rm().num_tests(); ++t)
    ids[t] = rm().response(f, t);
  return ids;
}

// Full-width observation with the dropped columns forced to kMissing —
// the uncompacted-store equivalent of serving a compacted store.
std::vector<Observed> with_dropped_missing(
    const std::vector<Observed>& obs, const std::vector<std::size_t>& dropped) {
  std::vector<Observed> out = obs;
  for (const std::size_t t : dropped) out[t] = Observed::missing();
  return out;
}

// Tie-insensitive equivalence: same verdict, counts, margin and candidate
// SET. Used where one side's observation is clean and the other's carries
// kMissing records — the engine's degraded-observation tiebreak may
// legally reorder tied candidates between the two (see compact/compact.h).
// Callers widen max_results to the fault count so truncation can never
// split a tie group differently on the two sides.
void expect_equivalent_diagnosis(const EngineDiagnosis& a,
                                 const EngineDiagnosis& b,
                                 const std::string& what) {
  EXPECT_EQ(a.outcome, b.outcome) << what;
  EXPECT_EQ(a.best_mismatches, b.best_mismatches) << what;
  EXPECT_EQ(a.margin, b.margin) << what;
  EXPECT_EQ(a.effective_tests, b.effective_tests) << what;
  EXPECT_EQ(a.completed, b.completed) << what;
  ASSERT_EQ(a.matches.size(), b.matches.size()) << what;
  const auto canonical = [](const EngineDiagnosis& d) {
    std::vector<std::pair<std::uint32_t, FaultId>> c;
    c.reserve(d.matches.size());
    for (const DiagnosisMatch& m : d.matches) c.emplace_back(m.mismatches, m.fault);
    std::sort(c.begin(), c.end());
    return c;
  };
  EXPECT_EQ(canonical(a), canonical(b)) << what;
}

// The engine's tied-candidate order matches between a compacted store and
// the dropped-to-kMissing reference exactly when both observations look
// equally degraded: i.e. when the projected observation still carries a
// don't-care record of its own. Otherwise only the reference engages the
// degraded-observation tiebreak and tied candidates may legally reorder.
bool projection_is_degraded(const std::vector<Observed>& projected) {
  for (const Observed& o : projected)
    if (o.dont_care()) return true;
  return false;
}

void expect_same_diagnosis(const EngineDiagnosis& a, const EngineDiagnosis& b,
                           const std::string& what) {
  EXPECT_EQ(a.outcome, b.outcome) << what;
  EXPECT_EQ(a.best_mismatches, b.best_mismatches) << what;
  EXPECT_EQ(a.margin, b.margin) << what;
  EXPECT_EQ(a.effective_tests, b.effective_tests) << what;
  EXPECT_EQ(a.completed, b.completed) << what;
  ASSERT_EQ(a.matches.size(), b.matches.size()) << what;
  for (std::size_t i = 0; i < a.matches.size(); ++i) {
    EXPECT_EQ(a.matches[i].fault, b.matches[i].fault) << what << " #" << i;
    EXPECT_EQ(a.matches[i].mismatches, b.matches[i].mismatches)
        << what << " #" << i;
  }
  EXPECT_EQ(a.cover, b.cover) << what;
}

std::string fresh_repo_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "sddict_compact_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// --------------------------------------------------------------- planner --

TEST(CompactionPlanner, PairOracleMatchesFullDictionary) {
  const SymbolMatrix m = response_symbols(rm());
  std::vector<std::size_t> all(m.num_tests());
  for (std::size_t t = 0; t < all.size(); ++t) all[t] = t;
  EXPECT_EQ(indistinguished_pairs(m, all),
            FullDictionary::build(rm()).indistinguished_pairs());
}

TEST(CompactionPlanner, LosslessPlanPreservesPairsAndVerifies) {
  const SymbolMatrix m = response_symbols(rm());
  const CompactionPlan plan = plan_compaction(m);
  EXPECT_TRUE(plan.completed);
  EXPECT_TRUE(plan.verified);
  EXPECT_EQ(plan.pairs_after, plan.pairs_before);
  EXPECT_EQ(plan.kept.size() + plan.dropped.size(), m.num_tests());
  // The verification pass cross-checks internally; cross-check the oracle
  // here once more from the outside.
  EXPECT_EQ(indistinguished_pairs(m, plan.kept), plan.pairs_before);
  // Random tests on a small circuit always carry redundant columns.
  EXPECT_FALSE(plan.dropped.empty());
}

TEST(CompactionPlanner, DuplicateColumnsAreDropped) {
  // Two identical columns: one must go, losslessly.
  SymbolMatrix m(4, 3);
  const std::uint64_t col0[4] = {0, 1, 0, 1};
  const std::uint64_t col2[4] = {0, 0, 1, 1};
  for (std::size_t f = 0; f < 4; ++f) {
    m.set(f, 0, col0[f]);
    m.set(f, 1, col0[f]);  // duplicate of column 0
    m.set(f, 2, col2[f]);
  }
  const CompactionPlan plan = plan_compaction(m);
  EXPECT_EQ(plan.pairs_after, plan.pairs_before);
  EXPECT_EQ(plan.kept.size(), 2u);
  // Exactly one of the twins survives.
  EXPECT_EQ((plan.kept[0] == 0) + (plan.kept[0] == 1) + (plan.kept[1] == 0) +
                (plan.kept[1] == 1),
            1);
}

TEST(CompactionPlanner, LossyBoundIsRespected) {
  const SymbolMatrix m = response_symbols(rm());
  const CompactionPlan lossless = plan_compaction(m);
  PlanOptions opts;
  opts.max_resolution_loss = 3;
  const CompactionPlan lossy = plan_compaction(m, opts);
  EXPECT_LE(lossy.pairs_after - lossy.pairs_before, 3u);
  EXPECT_LE(lossy.kept.size(), lossless.kept.size());
  EXPECT_TRUE(lossy.verified);
  EXPECT_EQ(indistinguished_pairs(m, lossy.kept), lossy.pairs_after);
}

TEST(CompactionPlanner, CancelledBudgetKeepsEverythingAnytime) {
  const SymbolMatrix m = response_symbols(rm());
  CancelToken cancel;
  cancel.cancel();
  PlanOptions opts;
  opts.budget.cancel = cancel;
  const CompactionPlan plan = plan_compaction(m, opts);
  EXPECT_FALSE(plan.completed);
  EXPECT_EQ(plan.stop_reason, StopReason::kCancelled);
  // Anytime semantics: unprocessed candidates are kept, the plan is valid.
  EXPECT_EQ(plan.kept.size(), m.num_tests());
  EXPECT_EQ(plan.pairs_after, plan.pairs_before);
}

TEST(CompactionPlanner, NeverDropsTheLastColumn) {
  // Every column identical: all of them are individually redundant, but a
  // store with zero tests is not a thing — one column must survive.
  SymbolMatrix m(3, 4);
  for (std::size_t f = 0; f < 3; ++f)
    for (std::size_t t = 0; t < 4; ++t) m.set(f, t, f);
  const CompactionPlan plan = plan_compaction(m);
  EXPECT_EQ(plan.kept.size(), 1u);
  EXPECT_EQ(plan.pairs_after, plan.pairs_before);
}

TEST(CompactionPlanner, AdIndexStatsMatchTheOracle) {
  const SymbolMatrix m = response_symbols(rm());
  const CompactionPlan plan = plan_compaction(m);
  ASSERT_EQ(plan.stats.size(), m.num_tests());
  std::vector<std::size_t> all(m.num_tests());
  for (std::size_t t = 0; t < all.size(); ++t) all[t] = t;
  const std::uint64_t base = indistinguished_pairs(m, all);
  for (std::size_t t = 0; t < m.num_tests(); ++t) {
    std::vector<std::size_t> without;
    for (std::size_t u = 0; u < m.num_tests(); ++u)
      if (u != t) without.push_back(u);
    // unique_pairs is exactly the resolution lost by dropping only t.
    EXPECT_EQ(indistinguished_pairs(m, without) - base, plan.stats[t].unique_pairs)
        << "test " << t;
  }
}

// -------------------------------------------------------- column surgery --

TEST(StoreSurgery, SplitAndConcatReproduceOriginalBytes) {
  for (const SignatureStore& store : all_kind_stores()) {
    const std::string what = store_kind_name(store.kind());
    const std::size_t half = store.num_tests() / 2;
    std::vector<std::size_t> lo, hi, all;
    for (std::size_t t = 0; t < store.num_tests(); ++t) {
      all.push_back(t);
      (t < half ? lo : hi).push_back(t);
    }
    EXPECT_EQ(store.select_tests(all).to_bytes(), store.to_bytes()) << what;
    const SignatureStore joined = SignatureStore::concat_tests(
        store.select_tests(lo), store.select_tests(hi));
    EXPECT_EQ(joined.to_bytes(), store.to_bytes()) << what;
  }
}

TEST(StoreSurgery, SelectTestsValidatesItsArguments) {
  const SignatureStore store =
      SignatureStore::build(PassFailDictionary::build(rm()));
  EXPECT_THROW(store.select_tests({}), std::runtime_error);
  EXPECT_THROW(store.select_tests({1, 1}), std::runtime_error);
  EXPECT_THROW(store.select_tests({2, 1}), std::runtime_error);
  EXPECT_THROW(store.select_tests({store.num_tests()}), std::runtime_error);
}

TEST(StoreSurgery, ConcatRejectsIncompatibleStores) {
  const SignatureStore pf =
      SignatureStore::build(PassFailDictionary::build(rm()));
  const SignatureStore sd =
      SignatureStore::build(SameDifferentDictionary::build(rm(), sd_baselines()));
  EXPECT_THROW(SignatureStore::concat_tests(pf, sd), std::runtime_error);
}

// ------------------------------------------------------ store compaction --

TEST(StoreCompaction, LosslessPreservesResolutionEveryKind) {
  for (const SignatureStore& store : all_kind_stores()) {
    const std::string what = store_kind_name(store.kind());
    const CompactionResult cr = compact_store(store);
    EXPECT_TRUE(cr.report.completed) << what;
    EXPECT_TRUE(cr.report.verified) << what;
    EXPECT_EQ(cr.report.pairs_after, cr.report.pairs_before) << what;
    EXPECT_EQ(cr.report.tests_after + cr.report.dropped.size(),
              cr.report.tests_before)
        << what;
    EXPECT_EQ(cr.store.num_tests(), cr.report.tests_after) << what;
    EXPECT_LE(cr.report.bytes_after, cr.report.bytes_before) << what;
  }
}

TEST(StoreCompaction, DiagnosisIdentityCleanAndNoisyEveryKind) {
  for (const SignatureStore& store : all_kind_stores()) {
    const std::string what = store_kind_name(store.kind());
    const CompactionResult cr = compact_store(store);
    std::vector<std::size_t> kept;
    {
      std::size_t d = 0;
      for (std::size_t t = 0; t < store.num_tests(); ++t) {
        if (d < cr.report.dropped.size() && cr.report.dropped[d] == t)
          ++d;
        else
          kept.push_back(t);
      }
    }
    for (FaultId f = 0; f < rm().num_faults(); f += 7) {
      const std::vector<ResponseId> ids = fault_response(f);
      // Clean and noisy (flips + drops) observations of the same fault.
      const std::vector<std::vector<Observed>> cases = {
          qualify(ids),
          apply_noise(ids, rm(),
                      NoiseChannel{.flip_rate = 0.1,
                                   .drop_rate = 0.1,
                                   .seed = 0xbead + f}),
      };
      for (std::size_t c = 0; c < cases.size(); ++c) {
        // When the projection strips every don't-care record the reference
        // side alone is "degraded" and tied candidates may legally reorder
        // (see compact/compact.h) — compare untruncated and
        // tie-insensitively there, exactly (including order) otherwise.
        const std::vector<Observed> projected =
            project_observations(cases[c], kept);
        const bool exact = projection_is_degraded(projected);
        EngineOptions opts;
        if (!exact) opts.max_results = rm().num_faults();
        const EngineDiagnosis compacted =
            diagnose_observed(cr.store, projected, opts);
        const EngineDiagnosis reference = diagnose_observed(
            store, with_dropped_missing(cases[c], cr.report.dropped), opts);
        const std::string label = what + " fault " + std::to_string(f) +
                                  (c == 0 ? " clean" : " noisy");
        if (exact)
          expect_same_diagnosis(compacted, reference, label);
        else
          expect_equivalent_diagnosis(compacted, reference, label);
      }
    }
  }
}

TEST(StoreCompaction, DuplicatedStoreLosesTheDuplicates) {
  const SignatureStore store =
      SignatureStore::build(SameDifferentDictionary::build(rm(), sd_baselines()));
  const SignatureStore dup = SignatureStore::concat_tests(store, store);
  const CompactionResult cr = compact_store(dup);
  // Every column appears twice; at least half the columns must go, and
  // resolution must not move.
  EXPECT_LE(cr.store.num_tests(), store.num_tests());
  EXPECT_EQ(cr.report.pairs_after, cr.report.pairs_before);
}

TEST(TestsetCompaction, KeptTestsPreserveFullResponseResolution) {
  SynthProfile profile;
  profile.name = "tsc";
  profile.inputs = 9;
  profile.outputs = 3;
  profile.dffs = 0;
  profile.gates = 60;
  profile.seed = 0x7e57;
  const Netlist nl = generate_synthetic(profile);
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  TestSet tests(nl.num_inputs());
  Rng rng(23);
  tests.add_random(40, rng);
  const ResponseMatrix m = build_response_matrix(nl, faults, tests);

  const TestsetCompaction tc = compact_testset(m, tests);
  EXPECT_EQ(tc.tests.size(), tc.plan.kept.size());
  // Re-simulating only the kept tests yields the same fault partition.
  const ResponseMatrix m2 = build_response_matrix(nl, faults, tc.tests);
  EXPECT_EQ(FullDictionary::build(m2).indistinguished_pairs(),
            FullDictionary::build(m).indistinguished_pairs());

  // The reverse-order front end in tgen agrees with the planner run here.
  const TestSet rev = compact_reverse_diagnostic(nl, faults, tests);
  const ResponseMatrix m3 = build_response_matrix(nl, faults, rev);
  EXPECT_EQ(FullDictionary::build(m3).indistinguished_pairs(),
            FullDictionary::build(m).indistinguished_pairs());
}

TEST(TestsetCompaction, ProjectObservationsChecksBounds) {
  const std::vector<Observed> obs = qualify(fault_response(0));
  EXPECT_THROW(project_observations(obs, {obs.size()}), std::invalid_argument);
}

// -------------------------------------------------------- delta repository --

TEST(DeltaRepository, MaterializationIsByteIdenticalToDirectBuild) {
  const std::string dir = fresh_repo_dir("materialize");
  DictionaryRepository repo(dir);
  const SignatureStore full =
      SignatureStore::build(SameDifferentDictionary::build(rm(), sd_baselines()));
  const std::size_t half = full.num_tests() / 2;
  std::vector<std::size_t> lo, hi;
  for (std::size_t t = 0; t < full.num_tests(); ++t)
    (t < half ? lo : hi).push_back(t);

  // v1 = first half; v2 = delta appending the second half. Acquiring v2
  // must reproduce the full store byte for byte.
  repo.publish("c1", StoreSource::kSameDifferent, full.select_tests(lo), {});
  const SignatureStore added = full.select_tests(hi);
  const ManifestEntry e2 =
      repo.publish_delta("c1", StoreSource::kSameDifferent, &added, {}, {});
  EXPECT_TRUE(e2.is_delta);
  EXPECT_EQ(e2.base_version, 1u);
  EXPECT_EQ(e2.added_tests, hi.size());
  EXPECT_EQ(repo.acquire("c1", StoreSource::kSameDifferent)->to_bytes(),
            full.to_bytes());

  // v3 = drop-only delta dropping the first half again: equals the second
  // half built directly. No artifact file is written for it.
  std::vector<std::uint64_t> drop(lo.begin(), lo.end());
  const ManifestEntry e3 = repo.publish_delta(
      "c1", StoreSource::kSameDifferent, nullptr, drop, {});
  EXPECT_TRUE(e3.file.empty());
  EXPECT_EQ(e3.bytes, 0u);
  EXPECT_EQ(repo.acquire("c1", StoreSource::kSameDifferent)->to_bytes(),
            full.select_tests(hi).to_bytes());

  // Reload from disk: the chain still materializes identically.
  DictionaryRepository cold(dir);
  EXPECT_EQ(cold.chain_length("c1", StoreSource::kSameDifferent), 2u);
  EXPECT_EQ(cold.acquire("c1", StoreSource::kSameDifferent)->to_bytes(),
            full.select_tests(hi).to_bytes());
}

TEST(DeltaRepository, SquashCollapsesTheChain) {
  const std::string dir = fresh_repo_dir("squash");
  DictionaryRepository repo(dir);
  const SignatureStore full =
      SignatureStore::build(PassFailDictionary::build(rm()));
  const std::size_t n = full.num_tests();
  std::vector<std::size_t> first, rest;
  for (std::size_t t = 0; t < n; ++t) (t < n - 8 ? first : rest).push_back(t);
  repo.publish("c2", StoreSource::kPassFail, full.select_tests(first), {});
  const SignatureStore added = full.select_tests(rest);
  repo.publish_delta("c2", StoreSource::kPassFail, &added, {}, {});
  repo.publish_delta("c2", StoreSource::kPassFail, nullptr, {0, 1}, {});
  EXPECT_EQ(repo.chain_length("c2", StoreSource::kPassFail), 2u);

  const auto before = repo.acquire("c2", StoreSource::kPassFail)->to_bytes();
  const ManifestEntry sq = repo.squash("c2", StoreSource::kPassFail);
  EXPECT_FALSE(sq.is_delta);
  EXPECT_EQ(sq.version, 4u);
  EXPECT_EQ(repo.chain_length("c2", StoreSource::kPassFail), 0u);
  EXPECT_EQ(repo.acquire("c2", StoreSource::kPassFail)->to_bytes(), before);
  // Squashing a full latest is a no-op returning the existing entry.
  EXPECT_EQ(repo.squash("c2", StoreSource::kPassFail).version, 4u);
}

TEST(DeltaRepository, MalformedDeltasAreNamedErrors) {
  const std::string dir = fresh_repo_dir("errors");
  DictionaryRepository repo(dir);
  const SignatureStore pf =
      SignatureStore::build(PassFailDictionary::build(rm()));
  const SignatureStore sd =
      SignatureStore::build(SameDifferentDictionary::build(rm(), sd_baselines()));

  const auto message_of = [](auto&& fn) -> std::string {
    try {
      fn();
    } catch (const std::runtime_error& e) {
      return e.what();
    }
    return "";
  };

  // No base version published yet.
  EXPECT_NE(message_of([&] {
              repo.publish_delta("c3", StoreSource::kPassFail, &pf, {}, {});
            }).find("cannot publish a delta"),
            std::string::npos);
  repo.publish("c3", StoreSource::kPassFail, pf, {});
  // Nothing added, nothing dropped.
  EXPECT_NE(message_of([&] {
              repo.publish_delta("c3", StoreSource::kPassFail, nullptr, {}, {});
            }).find("empty delta"),
            std::string::npos);
  // Unsorted drop list.
  EXPECT_NE(message_of([&] {
              repo.publish_delta("c3", StoreSource::kPassFail, nullptr, {2, 1},
                                 {});
            }).find("strictly ascending"),
            std::string::npos);
  // Out-of-range drop.
  EXPECT_NE(
      message_of([&] {
        repo.publish_delta("c3", StoreSource::kPassFail, nullptr,
                           {static_cast<std::uint64_t>(pf.num_tests())}, {});
      }).find("out of range"),
      std::string::npos);
  // Dropping every base column.
  std::vector<std::uint64_t> all(pf.num_tests());
  for (std::size_t t = 0; t < all.size(); ++t) all[t] = t;
  EXPECT_NE(message_of([&] {
              repo.publish_delta("c3", StoreSource::kPassFail, nullptr, all,
                                 {});
            }).find("every base test column"),
            std::string::npos);
  // Added store of an incompatible kind.
  EXPECT_FALSE(message_of([&] {
                 repo.publish_delta("c3", StoreSource::kPassFail, &sd, {}, {});
               }).empty());
  // None of those attempts may have advanced the catalog.
  EXPECT_EQ(repo.latest_version("c3", StoreSource::kPassFail), 1u);
}

TEST(DeltaRepository, SquashAsyncHonorsMaxChain) {
  const std::string dir = fresh_repo_dir("squash_async");
  DictionaryRepository repo(dir);
  const SignatureStore full =
      SignatureStore::build(PassFailDictionary::build(rm()));
  repo.publish("c4", StoreSource::kPassFail, full, {});
  repo.publish_delta("c4", StoreSource::kPassFail, nullptr, {0}, {});
  ThreadPool pool(2);
  // Chain (1) is within bounds: resolves with the existing latest.
  ManifestEntry e =
      repo.squash_async(pool, "c4", StoreSource::kPassFail, 1).get();
  EXPECT_EQ(e.version, 2u);
  EXPECT_TRUE(e.is_delta);
  // Chain exceeds bounds: a fresh full version appears.
  e = repo.squash_async(pool, "c4", StoreSource::kPassFail, 0).get();
  EXPECT_EQ(e.version, 3u);
  EXPECT_FALSE(e.is_delta);
  EXPECT_EQ(repo.chain_length("c4", StoreSource::kPassFail), 0u);
}

// ----------------------------------------------------- compact_published --

TEST(RepoCompaction, PublishesADropOnlyDeltaAndPreservesDiagnosis) {
  const std::string dir = fresh_repo_dir("compact_published");
  DictionaryRepository repo(dir);
  const SignatureStore store =
      SignatureStore::build(SameDifferentDictionary::build(rm(), sd_baselines()));
  // Duplicate every column so the compactor provably has redundancy.
  const SignatureStore dup = SignatureStore::concat_tests(store, store);
  Provenance prov;
  prov.tests_hash = "00112233445566778899aabbccddeeff";
  repo.publish("c5", StoreSource::kSameDifferent, dup, prov);

  const RepoCompaction rc =
      compact_published(repo, "c5", StoreSource::kSameDifferent);
  ASSERT_TRUE(rc.published);
  EXPECT_TRUE(rc.entry.is_delta);
  EXPECT_EQ(rc.entry.added_tests, 0u);
  EXPECT_EQ(rc.entry.version, 2u);
  EXPECT_EQ(rc.report.pairs_after, rc.report.pairs_before);
  EXPECT_FALSE(rc.report.dropped.empty());
  // Derived tests hash: changed, deterministic, still 32 hex chars.
  EXPECT_NE(rc.entry.provenance.tests_hash, prov.tests_hash);
  EXPECT_EQ(rc.entry.provenance.tests_hash.size(), prov.tests_hash.size());

  // Serving identity across the compaction, clean and noisy.
  const auto compacted = repo.acquire("c5", StoreSource::kSameDifferent);
  std::vector<std::size_t> kept;
  {
    std::size_t d = 0;
    for (std::size_t t = 0; t < dup.num_tests(); ++t) {
      if (d < rc.report.dropped.size() && rc.report.dropped[d] == t)
        ++d;
      else
        kept.push_back(t);
    }
  }
  for (FaultId f = 0; f < rm().num_faults(); f += 11) {
    std::vector<ResponseId> ids = fault_response(f);
    std::vector<ResponseId> twice = ids;
    twice.insert(twice.end(), ids.begin(), ids.end());
    // apply_noise is bounded by the matrix's test count, so noise the
    // single-width observation and duplicate it to the store's width.
    const std::vector<Observed> noisy_half =
        apply_noise(ids, rm(),
                    NoiseChannel{.flip_rate = 0.05,
                                 .drop_rate = 0.05,
                                 .seed = 0xf00d + f});
    std::vector<Observed> noisy = noisy_half;
    noisy.insert(noisy.end(), noisy_half.begin(), noisy_half.end());
    const std::vector<std::vector<Observed>> cases = {
        qualify(twice),
        noisy,
    };
    for (std::size_t c = 0; c < cases.size(); ++c) {
      // See DiagnosisIdentityCleanAndNoisyEveryKind: exact identity only
      // when the projection keeps a don't-care record of its own.
      const std::vector<Observed> projected =
          project_observations(cases[c], kept);
      const bool exact = projection_is_degraded(projected);
      EngineOptions opts;
      if (!exact) opts.max_results = rm().num_faults();
      const EngineDiagnosis a = diagnose_observed(*compacted, projected, opts);
      const EngineDiagnosis b = diagnose_observed(
          dup, with_dropped_missing(cases[c], rc.report.dropped), opts);
      const std::string label = "fault " + std::to_string(f) +
                                (c == 0 ? " clean" : " noisy");
      if (exact)
        expect_same_diagnosis(a, b, label);
      else
        expect_equivalent_diagnosis(a, b, label);
    }
  }

  // Already minimal: a second compaction publishes nothing.
  const RepoCompaction again =
      compact_published(repo, "c5", StoreSource::kSameDifferent);
  EXPECT_FALSE(again.published);
  EXPECT_EQ(repo.latest_version("c5", StoreSource::kSameDifferent), 2u);
}

// The TSan gate: 4 producer threads query a repository-backed service
// while the main thread compacts the published store and hot-swaps the
// service to the new version. Epoch consistency: every reply is either
// the full-store answer (request processed before the swap) or the
// engine's named size error (full-width observation meeting the already-
// compacted store) — never a torn or silently wrong ranking.
TEST(RepoCompaction, HotSwapIdentityUnderConcurrentQueries) {
  const std::string dir = fresh_repo_dir("hotswap");
  DictionaryRepository repo(dir);
  const SignatureStore store =
      SignatureStore::build(SameDifferentDictionary::build(rm(), sd_baselines()));
  const SignatureStore dup = SignatureStore::concat_tests(store, store);
  repo.publish("c6", StoreSource::kSameDifferent, dup, {});

  ServiceOptions sopts;
  sopts.threads = 2;
  sopts.batch = 4;
  sopts.cache = 0;
  DiagnosisService service(repo.acquire("c6", StoreSource::kSameDifferent),
                           sopts);

  constexpr int kProducers = 4;
  constexpr int kQueries = 40;
  std::vector<std::string> failures(kProducers);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kQueries; ++i) {
        const auto f =
            static_cast<FaultId>((p * kQueries + i) % rm().num_faults());
        std::vector<ResponseId> ids = fault_response(f);
        std::vector<ResponseId> twice = ids;
        twice.insert(twice.end(), ids.begin(), ids.end());
        const std::vector<Observed> obs = qualify(twice);
        try {
          const ServiceResponse r = service.submit(obs).get();
          const EngineDiagnosis direct = diagnose_observed(dup, obs);
          if (r.diagnosis.outcome != direct.outcome ||
              r.diagnosis.matches.size() != direct.matches.size() ||
              (!r.diagnosis.matches.empty() &&
               r.diagnosis.matches[0].fault != direct.matches[0].fault)) {
            failures[p] = "divergent ranking for fault " + std::to_string(f);
            return;
          }
        } catch (const std::exception& e) {
          // Only the post-swap size mismatch is a legal failure.
          if (std::string(e.what()).find("observ") == std::string::npos) {
            failures[p] = e.what();
            return;
          }
        }
      }
    });
  }

  const RepoCompaction rc =
      compact_published(repo, "c6", StoreSource::kSameDifferent);
  ASSERT_TRUE(rc.published);
  service.swap_store(repo.acquire("c6", StoreSource::kSameDifferent));
  for (auto& t : producers) t.join();
  for (int p = 0; p < kProducers; ++p) EXPECT_EQ(failures[p], "") << "producer " << p;

  // After the swap: projected queries against the service equal the
  // direct engine call on the compacted store.
  const auto compacted = repo.acquire("c6", StoreSource::kSameDifferent);
  std::vector<std::size_t> kept;
  {
    std::size_t d = 0;
    for (std::size_t t = 0; t < dup.num_tests(); ++t) {
      if (d < rc.report.dropped.size() && rc.report.dropped[d] == t)
        ++d;
      else
        kept.push_back(t);
    }
  }
  for (FaultId f = 0; f < rm().num_faults(); f += 13) {
    std::vector<ResponseId> ids = fault_response(f);
    std::vector<ResponseId> twice = ids;
    twice.insert(twice.end(), ids.begin(), ids.end());
    const std::vector<Observed> obs =
        project_observations(qualify(twice), kept);
    const ServiceResponse r = service.submit(obs).get();
    expect_same_diagnosis(r.diagnosis, diagnose_observed(*compacted, obs),
                          "post-swap fault " + std::to_string(f));
  }
}

}  // namespace
}  // namespace sddict
