// Property-based tests: invariants that must hold on *any* circuit, swept
// over a parameterized family of synthetic circuits and seeds.
#include <gtest/gtest.h>

#include <tuple>

#include "bmcirc/synth.h"
#include "core/baseline.h"
#include "core/hybrid.h"
#include "core/procedure2.h"
#include "dict/full_dict.h"
#include "dict/passfail_dict.h"
#include "dict/samediff_dict.h"
#include "fault/collapse.h"
#include "netlist/transform.h"
#include "sim/faultsim.h"
#include "sim/logicsim.h"
#include "tgen/podem.h"

namespace sddict {
namespace {

struct Params {
  std::size_t inputs;
  std::size_t outputs;
  std::size_t dffs;
  std::size_t gates;
  std::uint64_t seed;
};

std::string param_name(const testing::TestParamInfo<Params>& info) {
  const Params& p = info.param;
  return "i" + std::to_string(p.inputs) + "o" + std::to_string(p.outputs) +
         "d" + std::to_string(p.dffs) + "g" + std::to_string(p.gates) + "s" +
         std::to_string(p.seed);
}

class CircuitProperty : public testing::TestWithParam<Params> {
 protected:
  void SetUp() override {
    const Params& p = GetParam();
    SynthProfile prof;
    prof.name = "prop";
    prof.inputs = p.inputs;
    prof.outputs = p.outputs;
    prof.dffs = p.dffs;
    prof.gates = p.gates;
    prof.seed = p.seed;
    nl_ = full_scan(generate_synthetic(prof));
    faults_ = collapsed_fault_list(nl_).collapsed;
    tests_ = TestSet(nl_.num_inputs());
    Rng rng(p.seed ^ 0xabcdef);
    tests_.add_random(40, rng);
    rm_ = build_response_matrix(nl_, faults_, tests_);
  }

  Netlist nl_;
  FaultList faults_;
  TestSet tests_{0};
  ResponseMatrix rm_;
};

TEST_P(CircuitProperty, ResolutionHierarchy) {
  const auto full = FullDictionary::build(rm_);
  const auto pf = PassFailDictionary::build(rm_);
  BaselineSelectionConfig cfg;
  cfg.calls1 = 2;
  cfg.seed = GetParam().seed;
  const auto p1 = run_procedure1(rm_, cfg);
  const auto p2 = run_procedure2(rm_, p1.baselines);

  // full <= s/d(P2) <= s/d(P1) <= pass/fail.
  EXPECT_LE(full.indistinguished_pairs(), p2.indistinguished_pairs);
  EXPECT_LE(p2.indistinguished_pairs, p1.indistinguished_pairs);
  EXPECT_LE(p1.indistinguished_pairs, pf.indistinguished_pairs());
}

TEST_P(CircuitProperty, SignatureCountingAgreesWithPartition) {
  // The incremental (hash multiset) and partition-refinement accountings of
  // indistinguished pairs must agree for arbitrary baselines.
  Rng rng(GetParam().seed + 1);
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<ResponseId> baselines(rm_.num_tests());
    for (std::size_t t = 0; t < rm_.num_tests(); ++t)
      baselines[t] =
          static_cast<ResponseId>(rng.below(rm_.num_distinct(t)));
    const auto sd = SameDifferentDictionary::build(rm_, baselines);
    EXPECT_EQ(sd.indistinguished_pairs(),
              count_indistinguished(rm_, baselines));
  }
}

TEST_P(CircuitProperty, PassFailEqualsAllFaultFreeBaselines) {
  const auto pf = PassFailDictionary::build(rm_);
  const auto sd = SameDifferentDictionary::build(
      rm_, std::vector<ResponseId>(rm_.num_tests(), 0));
  EXPECT_EQ(sd.indistinguished_pairs(), pf.indistinguished_pairs());
  for (FaultId f = 0; f < faults_.size(); ++f)
    EXPECT_EQ(sd.row(f), pf.row(f));
}

TEST_P(CircuitProperty, HybridPreservesResolution) {
  BaselineSelectionConfig cfg;
  cfg.calls1 = 2;
  cfg.seed = GetParam().seed;
  const auto p1 = run_procedure1(rm_, cfg);
  const auto hyb = hybridize_baselines(rm_, p1.baselines);
  EXPECT_LE(hyb.indistinguished_pairs, p1.indistinguished_pairs);
  EXPECT_LE(hyb.stored_baselines, rm_.num_tests());
}

TEST_P(CircuitProperty, DetectionConsistency) {
  // ResponseMatrix detection flags match direct fault simulation.
  FaultSimulator fsim(nl_);
  std::vector<std::uint64_t> words;
  const std::size_t count = std::min<std::size_t>(64, tests_.size());
  tests_.pack_batch(0, count, &words);
  fsim.load_batch(words, count);
  for (FaultId i = 0; i < faults_.size(); i += 7) {
    const std::uint64_t w = fsim.detect_word(faults_[i]);
    for (std::size_t t = 0; t < count; ++t)
      EXPECT_EQ(rm_.detected(i, t), ((w >> t) & 1) != 0) << i << " " << t;
  }
}

TEST_P(CircuitProperty, PodemTestsDetectTheirTargets) {
  Podem podem(nl_);
  Rng rng(GetParam().seed + 2);
  FaultSimulator fsim(nl_);
  for (FaultId i = 0; i < faults_.size(); i += 11) {
    BitVec test;
    if (podem.generate(faults_[i], &test, rng) != PodemStatus::kTestFound)
      continue;
    TestSet one(nl_.num_inputs());
    one.add(test);
    std::vector<std::uint64_t> words;
    one.pack_batch(0, 1, &words);
    fsim.load_batch(words, 1);
    EXPECT_NE(fsim.detect_word(faults_[i]), 0u)
        << fault_name(nl_, faults_[i]);
  }
}

TEST_P(CircuitProperty, EquivalenceClassesShareResponses) {
  // Structural equivalence implies identical response ids on every test.
  const CollapseResult cr = collapsed_fault_list(nl_);
  const FaultList all = enumerate_all_faults(nl_);
  const ResponseMatrix rm_all = build_response_matrix(nl_, all, tests_);
  for (std::size_t c = 0; c < cr.class_members.size(); ++c) {
    const auto& members = cr.class_members[c];
    for (std::size_t i = 1; i < members.size(); ++i)
      for (std::size_t t = 0; t < tests_.size(); ++t)
        EXPECT_EQ(rm_all.response(members[0], t),
                  rm_all.response(members[i], t))
            << fault_name(nl_, all[members[0]]) << " vs "
            << fault_name(nl_, all[members[i]]);
  }
}

TEST_P(CircuitProperty, MoreTestsNeverReduceResolution) {
  // Dictionaries over a superset of tests distinguish at least as much.
  const std::size_t half = tests_.size() / 2;
  std::vector<std::size_t> idx(half);
  for (std::size_t i = 0; i < half; ++i) idx[i] = i;
  const TestSet first_half = tests_.subset(idx);
  const ResponseMatrix rm_half =
      build_response_matrix(nl_, faults_, first_half);
  EXPECT_GE(FullDictionary::build(rm_half).indistinguished_pairs(),
            FullDictionary::build(rm_).indistinguished_pairs());
  EXPECT_GE(PassFailDictionary::build(rm_half).indistinguished_pairs(),
            PassFailDictionary::build(rm_).indistinguished_pairs());
}

INSTANTIATE_TEST_SUITE_P(
    SyntheticSweep, CircuitProperty,
    testing::Values(Params{6, 3, 0, 40, 1}, Params{6, 3, 0, 40, 2},
                    Params{8, 4, 5, 80, 3}, Params{8, 4, 5, 80, 4},
                    Params{4, 2, 8, 60, 5}, Params{12, 6, 10, 150, 6},
                    Params{10, 2, 3, 120, 7}, Params{5, 5, 5, 50, 8}),
    param_name);

}  // namespace
}  // namespace sddict
