#include <gtest/gtest.h>

#include <set>

#include "bmcirc/embedded.h"
#include "fault/collapse.h"
#include "fault/faultlist.h"
#include "netlist/bench_io.h"
#include "netlist/transform.h"
#include "sim/logicsim.h"

namespace sddict {
namespace {

std::vector<BitVec> truth_table(const Netlist& nl) {
  const std::size_t n = nl.num_inputs();
  std::vector<BitVec> rows;
  for (std::size_t v = 0; v < (1u << n); ++v) {
    BitVec in(n);
    for (std::size_t i = 0; i < n; ++i) in.set(i, (v >> i) & 1);
    rows.push_back(simulate_pattern(nl, in));
  }
  return rows;
}

TEST(FaultList, SingleGateNoFanoutBranches) {
  // y = AND(a, b): lines are a, b, y (fanout 1 everywhere): 6 faults.
  Netlist nl("t");
  const GateId a = nl.add_gate(GateType::kInput, "a");
  const GateId b = nl.add_gate(GateType::kInput, "b");
  const GateId y = nl.add_gate(GateType::kAnd, "y", {a, b});
  nl.mark_output(y);
  const FaultList fl = enumerate_all_faults(nl);
  EXPECT_EQ(fl.size(), 6u);
  for (const auto& f : fl) EXPECT_TRUE(f.is_output_fault());
}

TEST(FaultList, FanoutStemCreatesBranchFaults) {
  // a feeds two gates: stem a plus two branches -> 2 + 2*2 extra faults.
  Netlist nl("t");
  const GateId a = nl.add_gate(GateType::kInput, "a");
  const GateId x = nl.add_gate(GateType::kNot, "x", {a});
  const GateId y = nl.add_gate(GateType::kBuf, "y", {a});
  nl.mark_output(x);
  nl.mark_output(y);
  const FaultList fl = enumerate_all_faults(nl);
  // Stems: a, x, y (6) + branches a->x, a->y (4).
  EXPECT_EQ(fl.size(), 10u);
  std::size_t branches = 0;
  for (const auto& f : fl) branches += f.is_output_fault() ? 0 : 1;
  EXPECT_EQ(branches, 4u);
}

TEST(FaultList, C17Universe) {
  // c17 has 11 lines plus fanout branches; the classic uncollapsed count.
  Netlist nl = make_c17();
  const FaultList fl = enumerate_all_faults(nl);
  // 11 gates/stems... c17: 5 PI + 6 NAND = 11 stems, of which stems with
  // fanout>1: net 3, 11, 16 => 3 stems * 2 branches = 6 branch sites.
  // Faults = 2*(11 + 6) = 34.
  EXPECT_EQ(fl.size(), 34u);
}

TEST(FaultList, RejectsSequential) {
  EXPECT_THROW(enumerate_all_faults(make_s27()), std::runtime_error);
}

TEST(FaultList, DanglingGateStemExcluded) {
  // A gate driving nothing has no observable output line, so its stem
  // faults are not enumerated (branch faults on its *inputs* still are —
  // they sit on the driver's fanout lines).
  Netlist nl("t");
  const GateId a = nl.add_gate(GateType::kInput, "a");
  nl.add_gate(GateType::kNot, "dead", {a});
  const GateId y = nl.add_gate(GateType::kBuf, "y", {a});
  nl.mark_output(y);
  const FaultList fl = enumerate_all_faults(nl);
  for (const auto& f : fl) {
    if (f.is_output_fault()) {
      EXPECT_NE(nl.gate(f.gate).name, "dead");
    }
  }
}

TEST(FaultNames, Readable) {
  Netlist nl("t");
  const GateId a = nl.add_gate(GateType::kInput, "a");
  const GateId b = nl.add_gate(GateType::kInput, "b");
  const GateId x = nl.add_gate(GateType::kNot, "x", {a});
  const GateId y = nl.add_gate(GateType::kAnd, "y", {a, b});
  nl.mark_output(x);
  nl.mark_output(y);
  EXPECT_EQ(fault_name(nl, {y, -1, 1}), "y sa1");
  EXPECT_EQ(fault_name(nl, {y, 0, 0}), "y.in0(a) sa0");
}

// ------------------------------------------------------------- collapse --

TEST(Collapse, BufferChainCollapsesToOneClassPerValue) {
  Netlist nl("chain");
  GateId g = nl.add_gate(GateType::kInput, "a");
  for (int i = 0; i < 4; ++i)
    g = nl.add_gate(GateType::kBuf, "b" + std::to_string(i), {g});
  nl.mark_output(g);
  const CollapseResult cr = collapsed_fault_list(nl);
  // 5 stems * 2 values, all equivalent along the chain -> 2 classes.
  EXPECT_EQ(cr.uncollapsed_count, 10u);
  EXPECT_EQ(cr.collapsed.size(), 2u);
}

TEST(Collapse, InverterSwapsValues) {
  Netlist nl("inv");
  const GateId a = nl.add_gate(GateType::kInput, "a");
  const GateId x = nl.add_gate(GateType::kNot, "x", {a});
  nl.mark_output(x);
  const CollapseResult cr = collapsed_fault_list(nl);
  // a sa0 == x sa1, a sa1 == x sa0 -> 2 classes of size 2.
  EXPECT_EQ(cr.collapsed.size(), 2u);
  for (const auto& members : cr.class_members) EXPECT_EQ(members.size(), 2u);
}

TEST(Collapse, AndGateInputsCollapseWithOutputSa0) {
  Netlist nl("and");
  const GateId a = nl.add_gate(GateType::kInput, "a");
  const GateId b = nl.add_gate(GateType::kInput, "b");
  const GateId y = nl.add_gate(GateType::kAnd, "y", {a, b});
  nl.mark_output(y);
  const CollapseResult cr = collapsed_fault_list(nl);
  // {a sa0, b sa0, y sa0} merge: 6 - 2 = 4 classes.
  EXPECT_EQ(cr.collapsed.size(), 4u);
}

TEST(Collapse, C17ClassicCount) {
  // The standard equivalence-collapsed count for c17 is 22.
  const CollapseResult cr = collapsed_fault_list(make_c17());
  EXPECT_EQ(cr.collapsed.size(), 22u);
}

TEST(Collapse, RepresentativeMappingIsConsistent) {
  const Netlist nl = make_c17();
  const FaultList all = enumerate_all_faults(nl);
  const CollapseResult cr = collapse_equivalent(nl, all);
  ASSERT_EQ(cr.representative_of.size(), all.size());
  // Class members must map back to their class.
  for (std::size_t c = 0; c < cr.class_members.size(); ++c)
    for (FaultId m : cr.class_members[c])
      EXPECT_EQ(cr.representative_of[m], c);
  // Classes partition the universe.
  std::size_t total = 0;
  for (const auto& members : cr.class_members) total += members.size();
  EXPECT_EQ(total, all.size());
}

// Functional check: every fault in a class produces identical output
// behaviour over all input vectors.
TEST(Collapse, ClassesAreFunctionallyEquivalentOnC17) {
  const Netlist nl = make_c17();
  const FaultList all = enumerate_all_faults(nl);
  const CollapseResult cr = collapse_equivalent(nl, all);
  for (const auto& members : cr.class_members) {
    if (members.size() < 2) continue;
    const auto ref =
        truth_table(inject_faults(nl, {to_injection(all[members[0]])}));
    for (std::size_t i = 1; i < members.size(); ++i) {
      const auto other =
          truth_table(inject_faults(nl, {to_injection(all[members[i]])}));
      EXPECT_EQ(ref, other) << fault_name(nl, all[members[0]]) << " vs "
                            << fault_name(nl, all[members[i]]);
    }
  }
}

TEST(Collapse, XorGateHasNoLocalEquivalences) {
  Netlist nl("x");
  const GateId a = nl.add_gate(GateType::kInput, "a");
  const GateId b = nl.add_gate(GateType::kInput, "b");
  const GateId y = nl.add_gate(GateType::kXor, "y", {a, b});
  nl.mark_output(y);
  const CollapseResult cr = collapsed_fault_list(nl);
  EXPECT_EQ(cr.collapsed.size(), 6u);
}

TEST(Collapse, SingleInputAndBehavesAsBuf) {
  Netlist nl("deg");
  const GateId a = nl.add_gate(GateType::kInput, "a");
  const GateId y = nl.add_gate(GateType::kAnd, "y", {a});
  nl.mark_output(y);
  const CollapseResult cr = collapsed_fault_list(nl);
  EXPECT_EQ(cr.collapsed.size(), 2u);
}

TEST(Dominance, AndOutputSa1Dominated) {
  Netlist nl("and");
  const GateId a = nl.add_gate(GateType::kInput, "a");
  const GateId b = nl.add_gate(GateType::kInput, "b");
  const GateId y = nl.add_gate(GateType::kAnd, "y", {a, b});
  nl.mark_output(y);
  const CollapseResult cr = collapsed_fault_list(nl);
  EXPECT_EQ(count_dominated_faults(nl, cr.collapsed), 1u);
}

TEST(Dominance, PresentOnC17) {
  const CollapseResult cr = collapsed_fault_list(make_c17());
  const std::size_t d = count_dominated_faults(make_c17(), cr.collapsed);
  EXPECT_GT(d, 0u);
  EXPECT_LT(d, cr.collapsed.size());
}

}  // namespace
}  // namespace sddict
