// Session suite (ISSUE 9): multi-observation, multi-fault diagnosis.
//
//  * evidence aggregation — single-run identity, majority vote, tie ->
//    unstable, length-mismatch rejection;
//  * the identity gate — a clean single-run session's single-fault part is
//    bit-identical to diagnose_observed(), store-backed and
//    dictionary-backed;
//  * the minimality proof — branch-and-bound covers checked against a
//    brute-force enumeration oracle on hand-built dictionaries (tie
//    cardinalities enumerated exhaustively) and on a synthesized
//    two-fault composite over a real store;
//  * anytime semantics — a cancelled budget still returns the greedy
//    incumbent with completed == false, and a max_cover too small for any
//    full cover degrades to the greedy prefix with cover_minimal == false;
//  * the stage-4 greedy rewrite differential — the incremental-gain cover
//    must equal the O(faults x failing) recounting reference on random
//    dictionaries;
//  * sessionlog parsing — strict mode names the offending run, recovery
//    salvages run by run, write/read round-trips;
//  * SessionStore admission bounds and SessionService protocol replies;
//  * session verbs over a real NetServer TCP session, byte-identical to
//    the direct SessionService::handle() text.
//
// Registered under the "serving" ctest label; the tsan preset includes it.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bmcirc/synth.h"
#include "diag/engine.h"
#include "diag/testerlog.h"
#include "dict/full_dict.h"
#include "dict/passfail_dict.h"
#include "dict/samediff_dict.h"
#include "fault/collapse.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "session/engine.h"
#include "session/evidence.h"
#include "session/service.h"
#include "session/store.h"
#include "sim/response.h"
#include "sim/testset.h"
#include "store/signature_store.h"
#include "util/bitvec.h"
#include "util/rng.h"

namespace sddict {
namespace {

// ------------------------------------------------------------- fixtures --

ResponseMatrix session_matrix() {
  SynthProfile profile;
  profile.name = "sess";
  profile.inputs = 8;
  profile.outputs = 4;
  profile.dffs = 0;
  profile.gates = 60;
  profile.seed = 0x5e55;
  const Netlist nl = generate_synthetic(profile);
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  TestSet tests(nl.num_inputs());
  Rng rng(11);
  tests.add_random(48, rng);
  ResponseMatrixStatus status;
  return build_response_matrix(nl, faults, tests, {.store_diff_outputs = true},
                               &status);
}

const ResponseMatrix& rm() {
  static const ResponseMatrix m = session_matrix();
  return m;
}

const FullDictionary& full_dict() {
  static const FullDictionary d = FullDictionary::build(rm());
  return d;
}

const SameDifferentDictionary& sd() {
  static const SameDifferentDictionary d = [] {
    std::vector<ResponseId> bl(rm().num_tests(), 0);
    for (std::size_t t = 0; t < rm().num_tests(); ++t)
      if (rm().num_distinct(t) > 1 && t % 2 == 0) bl[t] = 1;
    return SameDifferentDictionary::build(rm(), bl);
  }();
  return d;
}

// Full-kind store: detects(f, t) is exactly entry(f, t) != 0, so any
// two-fault composite is covered by its own pair — every oracle trial is
// decidable at cardinality <= 2.
std::shared_ptr<const SignatureStore> shared_store() {
  static const std::shared_ptr<const SignatureStore> s =
      std::make_shared<const SignatureStore>(SignatureStore::build(full_dict()));
  return s;
}

std::vector<ResponseId> fault_response(FaultId f) {
  std::vector<ResponseId> obs(rm().num_tests());
  for (std::size_t t = 0; t < rm().num_tests(); ++t)
    obs[t] = full_dict().entry(f, t);
  return obs;
}

// A two-fault composite at the full-response level: wherever fault `a`
// deviates from fault-free its response wins, elsewhere fault `b` speaks.
// Response id 0 is the fault-free id throughout the suite.
std::vector<Observed> composite_observation(FaultId a, FaultId b) {
  std::vector<Observed> obs(rm().num_tests());
  for (std::size_t t = 0; t < rm().num_tests(); ++t) {
    const ResponseId ra = full_dict().entry(a, t);
    obs[t] = Observed::of(ra != 0 ? ra : full_dict().entry(b, t));
  }
  return obs;
}

SessionRun run_of(std::vector<Observed> obs) {
  SessionRun r;
  r.observed = std::move(obs);
  return r;
}

// -------------------------------------------------- brute-force oracle --

struct OracleResult {
  std::size_t min_cover = 0;  // 0 = no cover within max_k
  std::set<std::vector<FaultId>> covers;
};

// Enumerates ALL minimal-cardinality covers of `target` (bitmask over at
// most 64 failing-test positions) by exhaustive combination search.
OracleResult brute_force_covers(const std::vector<std::uint64_t>& mask,
                                std::uint64_t target, std::size_t max_k) {
  OracleResult r;
  if (target == 0) return r;
  std::vector<FaultId> useful;
  for (FaultId f = 0; f < mask.size(); ++f)
    if ((mask[f] & target) != 0) useful.push_back(f);
  std::vector<FaultId> pick;
  std::function<void(std::size_t, std::uint64_t, std::size_t)> choose =
      [&](std::size_t start, std::uint64_t covered, std::size_t left) {
        if (left == 0) {
          if ((covered & target) == target) r.covers.insert(pick);
          return;
        }
        for (std::size_t i = start; i + left <= useful.size() + 1 &&
                                    i < useful.size();
             ++i) {
          pick.push_back(useful[i]);
          choose(i + 1, covered | mask[useful[i]], left - 1);
          pick.pop_back();
        }
      };
  for (std::size_t k = 1; k <= max_k; ++k) {
    choose(0, 0, k);
    if (!r.covers.empty()) {
      r.min_cover = k;
      return r;
    }
  }
  return r;
}

std::set<std::vector<FaultId>> group_sets(const SessionDiagnosis& d) {
  std::set<std::vector<FaultId>> out;
  for (const AmbiguityGroup& g : d.groups) out.insert(g.faults);
  return out;
}

// Consensus failing tests of `obs` split by the engine's detection bits:
// `target` gets one mask bit per coverable failure, undetectable failures
// are counted instead.
void failure_masks(const SessionEngine& eng, const std::vector<Observed>& obs,
                   std::vector<std::uint64_t>* mask, std::uint64_t* target,
                   std::size_t* unexplained) {
  std::vector<std::size_t> failing;
  for (std::size_t t = 0; t < obs.size(); ++t)
    if (!obs[t].dont_care() && obs[t].value != 0) failing.push_back(t);
  mask->assign(eng.num_faults(), 0);
  *target = 0;
  *unexplained = 0;
  std::size_t pos = 0;
  for (const std::size_t t : failing) {
    bool any = false;
    for (FaultId f = 0; f < eng.num_faults(); ++f)
      if (eng.detects(f, t)) {
        (*mask)[f] |= std::uint64_t{1} << pos;
        any = true;
      }
    if (any) {
      *target |= std::uint64_t{1} << pos;
      ++pos;
    } else {
      ++*unexplained;
    }
  }
  ASSERT_LE(pos, 64u) << "oracle mask overflow";
}

// A tiny pass/fail dictionary from explicit detection sets (one entry per
// fault: the tests it fails).
PassFailDictionary pf_from_sets(
    const std::vector<std::vector<std::size_t>>& sets, std::size_t num_tests) {
  std::vector<BitVec> rows;
  for (const auto& s : sets) {
    BitVec row(num_tests);
    for (const std::size_t t : s) row.set(t, true);
    rows.push_back(std::move(row));
  }
  return PassFailDictionary::from_rows(std::move(rows), num_tests, 1);
}

// --------------------------------------------------- evidence aggregation --

TEST(SessionEvidence, SingleRunAggregatesToItself) {
  Rng rng(0x11);
  std::vector<Observed> obs(rm().num_tests());
  for (std::size_t t = 0; t < obs.size(); ++t) {
    const std::uint64_t roll = rng.below(10);
    if (roll == 0)
      obs[t] = Observed::missing();
    else if (roll == 1)
      obs[t] = Observed::unstable();
    else
      obs[t] = Observed::of(static_cast<ResponseId>(rng.below(5)));
  }
  const SessionEvidence ev = aggregate_runs({run_of(obs)});
  ASSERT_EQ(ev.num_runs, 1u);
  ASSERT_EQ(ev.num_tests, obs.size());
  EXPECT_EQ(ev.consensus(), obs);
  EXPECT_EQ(ev.conflicted_tests, 0u);
}

TEST(SessionEvidence, MajorityVoteAndTies) {
  // t0: 2-1 majority. t1: 1-1 tie -> unstable. t2: no concrete reading,
  // one unstable flag -> unstable. t3: silence everywhere -> missing.
  std::vector<SessionRun> runs;
  runs.push_back(run_of({Observed::of(4), Observed::of(2),
                         Observed::unstable(), Observed::missing()}));
  runs.push_back(run_of({Observed::of(4), Observed::of(3),
                         Observed::missing(), Observed::missing()}));
  runs.push_back(run_of({Observed::of(7), Observed::missing(),
                         Observed::missing(), Observed::missing()}));
  const SessionEvidence ev = aggregate_runs(runs);
  ASSERT_EQ(ev.num_tests, 4u);
  EXPECT_EQ(ev.tests[0].consensus, Observed::of(4));
  EXPECT_EQ(ev.tests[0].votes, 3u);
  EXPECT_EQ(ev.tests[0].agree, 2u);
  EXPECT_TRUE(ev.tests[0].conflicted);
  EXPECT_EQ(ev.tests[1].consensus, Observed::unstable());
  EXPECT_TRUE(ev.tests[1].conflicted);
  EXPECT_EQ(ev.tests[2].consensus, Observed::unstable());
  EXPECT_FALSE(ev.tests[2].conflicted);
  EXPECT_EQ(ev.tests[3].consensus, Observed::missing());
  EXPECT_EQ(ev.conflicted_tests, 2u);
  EXPECT_DOUBLE_EQ(ev.weight(0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(ev.weight(3), 0.0);
}

TEST(SessionEvidence, LengthMismatchThrows) {
  std::vector<SessionRun> runs;
  runs.push_back(run_of({Observed::of(1), Observed::of(2)}));
  runs.push_back(run_of({Observed::of(1)}));
  EXPECT_THROW(aggregate_runs(runs), std::invalid_argument);
}

// ------------------------------------------------------- identity gate --

void expect_same_diagnosis(const EngineDiagnosis& a, const EngineDiagnosis& b) {
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.best_mismatches, b.best_mismatches);
  EXPECT_EQ(a.margin, b.margin);
  EXPECT_EQ(a.effective_tests, b.effective_tests);
  EXPECT_EQ(a.dont_care_tests, b.dont_care_tests);
  EXPECT_EQ(a.unknown_tests, b.unknown_tests);
  ASSERT_EQ(a.matches.size(), b.matches.size());
  for (std::size_t i = 0; i < a.matches.size(); ++i) {
    EXPECT_EQ(a.matches[i].fault, b.matches[i].fault) << "rank " << i;
    EXPECT_EQ(a.matches[i].mismatches, b.matches[i].mismatches) << "rank " << i;
  }
  EXPECT_EQ(a.cover, b.cover);
  EXPECT_EQ(a.uncovered_failures, b.uncovered_failures);
  EXPECT_EQ(a.completed, b.completed);
}

TEST(SessionEngineGate, SingleRunCleanMatchesDiagnoseObservedStore) {
  const SessionEngine eng(shared_store());
  Rng rng(0x21);
  for (int i = 0; i < 8; ++i) {
    const auto f = static_cast<FaultId>(rng.below(rm().num_faults()));
    const std::vector<Observed> obs = qualify(fault_response(f));
    const SessionDiagnosis d = eng.diagnose(aggregate_runs({run_of(obs)}));
    expect_same_diagnosis(d.single, diagnose_observed(*shared_store(), obs));
  }
}

TEST(SessionEngineGate, SingleRunCleanMatchesDiagnoseObservedDict) {
  const SessionEngine eng(sd());
  Rng rng(0x22);
  for (int i = 0; i < 8; ++i) {
    const auto f = static_cast<FaultId>(rng.below(rm().num_faults()));
    const std::vector<Observed> obs = qualify(fault_response(f));
    const SessionDiagnosis d = eng.diagnose(aggregate_runs({run_of(obs)}));
    expect_same_diagnosis(d.single, diagnose_observed(sd(), obs));
  }
}

TEST(SessionEngineGate, RepeatedIdenticalRunsMatchSingleRun) {
  const SessionEngine eng(shared_store());
  const std::vector<Observed> obs = qualify(fault_response(5));
  const SessionDiagnosis one = eng.diagnose(aggregate_runs({run_of(obs)}));
  const SessionDiagnosis three =
      eng.diagnose(aggregate_runs({run_of(obs), run_of(obs), run_of(obs)}));
  expect_same_diagnosis(one.single, three.single);
  EXPECT_EQ(group_sets(one), group_sets(three));
  EXPECT_EQ(one.min_cover, three.min_cover);
}

// ------------------------------------------------------ oracle minimality --

TEST(SessionCovers, BranchAndBoundMatchesOracleOnStore) {
  const SessionEngine eng(shared_store());
  SessionOptions opt;
  opt.max_groups = 256;
  Rng rng(0x31);
  int checked = 0;
  for (int i = 0; i < 24 && checked < 10; ++i) {
    const auto a = static_cast<FaultId>(1 + rng.below(rm().num_faults() - 1));
    const auto b = static_cast<FaultId>(1 + rng.below(rm().num_faults() - 1));
    if (a == b) continue;
    const std::vector<Observed> obs = composite_observation(a, b);
    std::vector<std::uint64_t> mask;
    std::uint64_t target = 0;
    std::size_t unexplained = 0;
    failure_masks(eng, obs, &mask, &target, &unexplained);
    if (target == 0) continue;
    const SessionDiagnosis d = eng.diagnose(aggregate_runs({run_of(obs)}), opt);
    // {a, b} itself covers the target on a full-kind store, so the oracle
    // always decides within cardinality 2; 4 leaves slack for cheaper
    // covers the engine might also have to enumerate exhaustively.
    const OracleResult oracle = brute_force_covers(mask, target, 4);
    EXPECT_EQ(d.unexplained_failures, unexplained);
    if (oracle.min_cover == 0) continue;  // nothing coverable in bounds
    ASSERT_TRUE(d.cover_minimal) << "pair " << a << "," << b;
    EXPECT_TRUE(d.completed);
    EXPECT_EQ(d.min_cover, oracle.min_cover) << "pair " << a << "," << b;
    EXPECT_EQ(d.uncovered_failures, 0u);
    if (!d.groups_truncated) {
      EXPECT_EQ(group_sets(d), oracle.covers) << "pair " << a << "," << b;
    }
    ++checked;
  }
  EXPECT_GE(checked, 5) << "fixture produced too few coverable composites";
}

TEST(SessionCovers, EnumeratesAllTieCardinalityCovers) {
  // 4 failing tests; exactly two distinct minimal 2-covers ({0,1} and
  // {2,3}), plus singles that cannot finish the job.
  const PassFailDictionary dict =
      pf_from_sets({{0, 1}, {2, 3}, {0, 2}, {1, 3}, {0}, {3}}, 4);
  const SessionEngine eng(dict);
  const std::vector<Observed> obs(4, Observed::of(1));  // everything fails
  const SessionDiagnosis d = eng.diagnose(aggregate_runs({run_of(obs)}));
  ASSERT_TRUE(d.cover_minimal);
  EXPECT_EQ(d.min_cover, 2u);
  EXPECT_FALSE(d.groups_truncated);
  const std::set<std::vector<FaultId>> expected = {{0, 1}, {2, 3}};
  EXPECT_EQ(group_sets(d), expected);
  // Conflict-free full covers of a clean session carry full confidence.
  for (const AmbiguityGroup& g : d.groups) {
    EXPECT_EQ(g.conflicts, 0u);
    EXPECT_DOUBLE_EQ(g.confidence, 1.0);
  }
  // And the oracle agrees wholesale.
  std::vector<std::uint64_t> mask;
  std::uint64_t target = 0;
  std::size_t unexplained = 0;
  failure_masks(eng, obs, &mask, &target, &unexplained);
  const OracleResult oracle = brute_force_covers(mask, target, 8);
  EXPECT_EQ(oracle.min_cover, d.min_cover);
  EXPECT_EQ(oracle.covers, group_sets(d));
}

TEST(SessionCovers, RandomDictionariesMatchOracle) {
  Rng rng(0x41);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t num_tests = 8;
    std::vector<std::vector<std::size_t>> sets(10);
    for (auto& s : sets)
      for (std::size_t t = 0; t < num_tests; ++t)
        if (rng.below(100) < 30) s.push_back(t);
    const PassFailDictionary dict = pf_from_sets(sets, num_tests);
    const SessionEngine eng(dict);
    std::vector<Observed> obs(num_tests, Observed::of(0));
    for (auto& o : obs)
      if (rng.below(100) < 50) o = Observed::of(1);
    std::vector<std::uint64_t> mask;
    std::uint64_t target = 0;
    std::size_t unexplained = 0;
    failure_masks(eng, obs, &mask, &target, &unexplained);
    SessionOptions opt;
    opt.max_groups = 256;
    const SessionDiagnosis d = eng.diagnose(aggregate_runs({run_of(obs)}), opt);
    EXPECT_EQ(d.unexplained_failures, unexplained) << "trial " << trial;
    const OracleResult oracle = brute_force_covers(mask, target, opt.max_cover);
    if (target == 0) {
      EXPECT_EQ(d.min_cover, 0u) << "trial " << trial;
      continue;
    }
    if (oracle.min_cover == 0) continue;
    ASSERT_TRUE(d.cover_minimal) << "trial " << trial;
    EXPECT_EQ(d.min_cover, oracle.min_cover) << "trial " << trial;
    if (!d.groups_truncated) {
      EXPECT_EQ(group_sets(d), oracle.covers) << "trial " << trial;
    }
  }
}

// ------------------------------------------------------ anytime semantics --

TEST(SessionCovers, CancelledBudgetReturnsGreedyIncumbent) {
  const PassFailDictionary dict =
      pf_from_sets({{0, 1}, {2, 3}, {0, 2}, {1, 3}, {0}, {3}}, 4);
  const SessionEngine eng(dict);
  const std::vector<Observed> obs(4, Observed::of(1));
  SessionOptions opt;
  opt.budget.cancel.cancel();  // tripped before the search starts
  const SessionDiagnosis d = eng.diagnose(aggregate_runs({run_of(obs)}), opt);
  EXPECT_FALSE(d.completed);
  EXPECT_EQ(d.stop_reason, StopReason::kCancelled);
  EXPECT_FALSE(d.cover_minimal);
  // The greedy incumbent survives: max gain, lowest id on ties -> {0, 1}.
  ASSERT_EQ(d.groups.size(), 1u);
  EXPECT_EQ(d.groups[0].faults, (std::vector<FaultId>{0, 1}));
  EXPECT_EQ(d.min_cover, 2u);
  EXPECT_EQ(d.uncovered_failures, 0u);
}

TEST(SessionCovers, MaxCoverTooSmallDegradesToGreedyPrefix) {
  const PassFailDictionary dict =
      pf_from_sets({{0, 1}, {2, 3}, {0, 2}, {1, 3}, {0}, {3}}, 4);
  const SessionEngine eng(dict);
  const std::vector<Observed> obs(4, Observed::of(1));
  SessionOptions opt;
  opt.max_cover = 1;  // no single fault covers all four failures
  const SessionDiagnosis d = eng.diagnose(aggregate_runs({run_of(obs)}), opt);
  EXPECT_TRUE(d.completed);
  EXPECT_FALSE(d.cover_minimal);
  ASSERT_EQ(d.groups.size(), 1u);
  EXPECT_EQ(d.groups[0].faults, (std::vector<FaultId>{0}));
  EXPECT_EQ(d.uncovered_failures, 2u);
}

// -------------------------------------- stage-4 greedy cover differential --

// The recounting reference the incremental rewrite replaced: per pick,
// recompute every fault's gain over the still-uncovered failing tests and
// take the strictly-greatest (== lowest id among maxima).
void reference_greedy(const PassFailDictionary& dict,
                      const std::vector<Observed>& obs, std::size_t max_cover,
                      std::vector<FaultId>* cover, std::size_t* uncovered) {
  std::vector<std::size_t> failing;
  for (std::size_t t = 0; t < obs.size(); ++t)
    if (!obs[t].dont_care() && obs[t].value != 0) failing.push_back(t);
  std::vector<bool> covered(failing.size(), false);
  *uncovered = failing.size();
  cover->clear();
  while (*uncovered > 0 && cover->size() < max_cover) {
    FaultId best_f = kNoFault;
    std::size_t best_gain = 0;
    for (FaultId f = 0; f < dict.num_faults(); ++f) {
      std::size_t gain = 0;
      for (std::size_t i = 0; i < failing.size(); ++i)
        if (!covered[i] && dict.bit(f, failing[i])) ++gain;
      if (gain > best_gain) {
        best_gain = gain;
        best_f = f;
      }
    }
    if (best_gain == 0) break;
    cover->push_back(best_f);
    for (std::size_t i = 0; i < failing.size(); ++i)
      if (!covered[i] && dict.bit(best_f, failing[i])) {
        covered[i] = true;
        --*uncovered;
      }
  }
}

TEST(GreedyCover, IncrementalMatchesRecountingReference) {
  Rng rng(0x51);
  int compared = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t num_tests = 10;
    std::vector<std::vector<std::size_t>> sets(12);
    for (auto& s : sets)
      for (std::size_t t = 0; t < num_tests; ++t)
        if (rng.below(100) < 25) s.push_back(t);
    const PassFailDictionary dict = pf_from_sets(sets, num_tests);
    std::vector<Observed> obs(num_tests, Observed::of(0));
    for (auto& o : obs)
      if (rng.below(100) < 40) o = Observed::of(1);
    const EngineDiagnosis d = diagnose_observed(dict, obs);
    if (d.outcome != DiagnosisOutcome::kUnmodeledDefect) continue;
    std::vector<FaultId> expected;
    std::size_t expected_uncovered = 0;
    reference_greedy(dict, obs, EngineOptions{}.max_cover, &expected,
                     &expected_uncovered);
    EXPECT_EQ(d.cover, expected) << "trial " << trial;
    EXPECT_EQ(d.uncovered_failures, expected_uncovered) << "trial " << trial;
    ++compared;
  }
  EXPECT_GE(compared, 10) << "too few unmodeled-defect trials";
}

// ------------------------------------------------------------ sessionlog --

TEST(SessionLogIo, RoundTripsRuns) {
  const std::vector<std::vector<Observed>> runs = {
      qualify(fault_response(3)),
      {Observed::of(2), Observed::missing(), Observed::unstable(),
       Observed::of(0)},
  };
  std::ostringstream out;
  write_sessionlog(out, "die-7", {runs[1], runs[1], runs[1]});
  std::istringstream in(out.str());
  const SessionLog log = read_sessionlog(in);
  EXPECT_EQ(log.id, "die-7");
  EXPECT_EQ(log.num_tests, 4u);
  ASSERT_EQ(log.runs.size(), 3u);
  for (const SessionLogRun& r : log.runs) {
    EXPECT_EQ(r.observations, runs[1]);
    EXPECT_TRUE(r.dropped.empty());
    EXPECT_FALSE(r.truncated);
  }
}

TEST(SessionLogIo, StrictModeNamesTheOffendingRun) {
  const std::string text =
      "sddict sessionlog v1\n"
      "session die-1\n"
      "tests 3\n"
      "begin\nt 0 1\nend\n"
      "begin\nt 9 1\nend\n";  // run 2: index out of range
  std::istringstream in(text);
  try {
    read_sessionlog(in);
    FAIL() << "expected TesterLogError";
  } catch (const TesterLogError& e) {
    EXPECT_NE(std::string(e.what()).find("run 2:"), std::string::npos)
        << e.what();
  }
}

TEST(SessionLogIo, RecoverySalvagesRunByRun) {
  const std::string text =
      "sddict sessionlog v1\n"
      "session die-2\n"
      "tests 3\n"
      "t 0 1\n"  // outside any run
      "begin\nt 0 1\nt 1 bogus\nend\n"
      "begin\nt 2 5\n";  // EOF inside the run
  std::istringstream in(text);
  const SessionLog log = read_sessionlog(in, {.recover = true});
  ASSERT_EQ(log.dropped.size(), 1u);
  EXPECT_NE(log.dropped[0].reason.find("expected 'begin'"), std::string::npos);
  ASSERT_EQ(log.runs.size(), 2u);
  ASSERT_EQ(log.runs[0].dropped.size(), 1u);
  EXPECT_NE(log.runs[0].dropped[0].reason.find("run 1:"), std::string::npos);
  EXPECT_EQ(log.runs[0].observations[0], Observed::of(1));
  EXPECT_EQ(log.runs[0].observations[1], Observed::missing());
  EXPECT_FALSE(log.runs[0].truncated);
  EXPECT_TRUE(log.runs[1].truncated);
  EXPECT_EQ(log.runs[1].observations[2], Observed::of(5));
}

TEST(SessionLogIo, SniffsFormats) {
  std::istringstream sess("sddict sessionlog v1\nsession x\ntests 0\n");
  EXPECT_TRUE(sniff_sessionlog(sess));
  std::string first;
  std::getline(sess, first);  // seekg(0) restored the stream
  EXPECT_EQ(first, "sddict sessionlog v1");
  std::istringstream tlog("sddict testerlog v1\ntests 0\nend\n");
  EXPECT_FALSE(sniff_sessionlog(tlog));
}

// ----------------------------------------------------------- SessionStore --

TEST(SessionStoreBounds, AdmissionErrorsAreExplicit) {
  SessionStore store({.max_sessions = 2, .max_runs = 2});
  store.begin("a");
  EXPECT_THROW(store.begin("a"), std::runtime_error);  // already open
  store.begin("b");
  EXPECT_THROW(store.begin("c"), std::runtime_error);  // too many sessions
  EXPECT_THROW(store.append("zz", run_of({Observed::of(1)})),
               std::runtime_error);  // not open
  EXPECT_EQ(store.append("a", run_of({Observed::of(1)})), 1u);
  EXPECT_THROW(store.append("a", run_of({Observed::of(1), Observed::of(2)})),
               std::runtime_error);  // test-count mismatch
  EXPECT_EQ(store.append("a", run_of({Observed::of(2)})), 2u);
  EXPECT_THROW(store.append("a", run_of({Observed::of(3)})),
               std::runtime_error);  // run cap
  EXPECT_EQ(store.end("a"), 2u);
  EXPECT_FALSE(store.open("a"));
  EXPECT_THROW(store.end("a"), std::runtime_error);
  store.begin("c");  // capacity freed
  EXPECT_EQ(store.size(), 2u);
}

// --------------------------------------------------------- SessionService --

SessionService make_service() {
  auto cache = std::make_shared<SessionEngineCache>();
  return SessionService(
      [cache]() { return cache->get(shared_store()); });
}

std::string handle(SessionService& svc, const std::string& frame) {
  std::ostringstream os;
  svc.handle(frame, os);
  return os.str();
}

std::string append_frame(const std::string& id,
                         const std::vector<Observed>& obs) {
  std::ostringstream os;
  os << "session append " << id << "\n";
  write_testerlog(os, obs);
  return os.str();
}

TEST(SessionServiceProtocol, FullVerbCycle) {
  SessionService svc = make_service();
  EXPECT_EQ(handle(svc, "session begin D\nend\n"),
            "session id=D state=open runs=0\ndone\n");
  const std::vector<Observed> obs = qualify(fault_response(4));
  EXPECT_EQ(handle(svc, append_frame("D", obs)),
            "session id=D state=open runs=1\ndone\n");
  EXPECT_EQ(handle(svc, append_frame("D", obs)),
            "session id=D state=open runs=2\ndone\n");
  const std::string reply = handle(svc, "session diagnose D\nend\n");
  EXPECT_EQ(reply.rfind("session id=D runs=2 tests=", 0), 0u) << reply;
  EXPECT_NE(reply.find("\nmultifault "), std::string::npos);
  EXPECT_EQ(reply.substr(reply.size() - 5), "done\n");
  // The single-fault block is write_response's text minus the timing line.
  ServiceResponse direct;
  direct.diagnosis = diagnose_observed(*shared_store(), obs);
  std::ostringstream expect_os;
  net::write_response(expect_os, direct, 0);
  std::istringstream direct_lines(expect_os.str());
  std::istringstream reply_lines(reply);
  std::string dl, rl;
  std::getline(reply_lines, rl);  // skip the session header line
  while (std::getline(direct_lines, dl)) {
    if (dl.rfind("timing ", 0) == 0 || dl == "done") continue;
    ASSERT_TRUE(std::getline(reply_lines, rl));
    EXPECT_EQ(rl, dl);
  }
  EXPECT_EQ(handle(svc, "session end D\nend\n"),
            "session id=D state=closed runs=2\ndone\n");
  EXPECT_EQ(svc.open_sessions(), 0u);
}

TEST(SessionServiceProtocol, ErrorsRenderAsErrorReplies) {
  SessionService svc = make_service();
  EXPECT_EQ(handle(svc, "session diagnose X\nend\n"),
            "error no open session 'X' (use 'session begin')\ndone\n");
  EXPECT_EQ(handle(svc, "session warp X\nend\n"),
            "error unknown session verb 'warp'\ndone\n");
  EXPECT_EQ(handle(svc, "session begin\nend\n"),
            "error usage: session begin|append|diagnose|end <id>\ndone\n");
}

TEST(SessionServiceProtocol, AppendValidatesTestCount) {
  SessionService svc = make_service();
  handle(svc, "session begin D\nend\n");
  const std::string reply =
      handle(svc, append_frame("D", {Observed::of(1), Observed::of(0)}));
  EXPECT_EQ(reply.rfind("error run observes 2 tests, dictionary has", 0), 0u)
      << reply;
  const std::string diag = handle(svc, "session diagnose D\nend\n");
  EXPECT_EQ(diag.rfind("error session 'D' has no runs", 0), 0u) << diag;
}

// --------------------------------------------------- session verbs on TCP --

struct SessionBackend : net::NetServer::Backend {
  DiagnosisService* svc = nullptr;
  SessionService* session = nullptr;
  DiagnosisService& service() override { return *svc; }
  bool handle_admin(const std::vector<std::string>&, std::ostream&) override {
    return false;
  }
  bool handle_session(const std::string& frame_text,
                      std::ostream& out) override {
    if (session == nullptr) return false;
    session->handle(frame_text, out);
    return true;
  }
};

class SessionTestServer {
 public:
  explicit SessionTestServer(bool with_session = true) {
    ServiceOptions o;
    o.threads = 1;
    o.batch = 1;
    o.cache = 0;
    service_ = std::make_unique<DiagnosisService>(shared_store(), o);
    if (with_session) {
      session_ = std::make_unique<SessionService>(
          [cache = std::make_shared<SessionEngineCache>()]() {
            return cache->get(shared_store());
          });
      backend_.session = session_.get();
    }
    backend_.svc = service_.get();
    net::NetServerOptions nopts;
    nopts.tcp_port = 0;
    server_ = std::make_unique<net::NetServer>(backend_, nopts);
    server_->start();
    thread_ = std::thread([this] { server_->run(); });
  }

  ~SessionTestServer() {
    server_->request_stop();
    thread_.join();
  }

  net::Client connect() {
    return net::Client::connect_tcp("127.0.0.1", server_->tcp_port(), 10);
  }

 private:
  std::unique_ptr<DiagnosisService> service_;
  std::unique_ptr<SessionService> session_;
  SessionBackend backend_;
  std::unique_ptr<net::NetServer> server_;
  std::thread thread_;
};

std::string joined(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& l : lines) out += l + "\n";
  return out;
}

TEST(NetSessionVerbs, TcpRepliesMatchDirectServiceText) {
  SessionTestServer server;
  net::Client client = server.connect();
  // A reference SessionService fed the same frames must produce the same
  // bytes (session replies carry no volatile timing line).
  SessionService reference = make_service();
  const std::vector<Observed> obs = qualify(fault_response(7));
  const std::vector<std::string> frames = {
      "session begin T\nend\n",
      append_frame("T", obs),
      append_frame("T", obs),
      "session diagnose T\nend\n",
      "session end T\nend\n",
      "session diagnose T\nend\n",  // now an error reply
  };
  for (const std::string& frame : frames) {
    const net::Reply reply = client.request(frame);
    EXPECT_FALSE(reply.busy);
    EXPECT_EQ(joined(reply.lines), handle(reference, frame)) << frame;
  }
  // Ordinary datalogs still work on the same connection.
  std::ostringstream datalog;
  write_testerlog(datalog, obs);
  const net::Reply plain = client.request(datalog.str());
  EXPECT_FALSE(plain.error);
  EXPECT_FALSE(plain.lines.empty());
  EXPECT_EQ(plain.lines[0].rfind("diagnosis ", 0), 0u);
}

TEST(NetSessionVerbs, UnsupportedBackendSaysSo) {
  SessionTestServer server(/*with_session=*/false);
  net::Client client = server.connect();
  const net::Reply reply = client.request("session begin T\nend\n");
  ASSERT_TRUE(reply.error);
  EXPECT_EQ(reply.error_text, "session verbs not supported by this server");
}

}  // namespace
}  // namespace sddict
