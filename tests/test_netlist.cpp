#include <gtest/gtest.h>

#include <sstream>

#include "netlist/bench_io.h"
#include "netlist/netlist.h"
#include "netlist/stats.h"

namespace sddict {
namespace {

// ------------------------------------------------------------- gate eval --

TEST(GateEval, BasicFunctionsOverWords) {
  const std::uint64_t a = 0b1100;
  const std::uint64_t b = 0b1010;
  const std::uint64_t in[] = {a, b};
  EXPECT_EQ(eval_gate_words(GateType::kAnd, in, 2), 0b1000u);
  EXPECT_EQ(eval_gate_words(GateType::kOr, in, 2), 0b1110u);
  EXPECT_EQ(eval_gate_words(GateType::kXor, in, 2), 0b0110u);
  EXPECT_EQ(eval_gate_words(GateType::kNand, in, 2) & 0xF, 0b0111u);
  EXPECT_EQ(eval_gate_words(GateType::kNor, in, 2) & 0xF, 0b0001u);
  EXPECT_EQ(eval_gate_words(GateType::kXnor, in, 2) & 0xF, 0b1001u);
  EXPECT_EQ(eval_gate_words(GateType::kBuf, in, 1), a);
  EXPECT_EQ(eval_gate_words(GateType::kNot, in, 1) & 0xF, 0b0011u);
}

TEST(GateEval, MultiInput) {
  const std::uint64_t in[] = {0b1111, 0b1110, 0b1100};
  EXPECT_EQ(eval_gate_words(GateType::kAnd, in, 3), 0b1100u);
  EXPECT_EQ(eval_gate_words(GateType::kXor, in, 3) & 0xF, 0b1101u & 0xF);
}

TEST(GateEval, Constants) {
  EXPECT_EQ(eval_gate_words(GateType::kConst0, nullptr, 0), 0u);
  EXPECT_EQ(eval_gate_words(GateType::kConst1, nullptr, 0), ~std::uint64_t{0});
}

TEST(GateEval, InputAndDffThrow) {
  EXPECT_THROW(eval_gate_words(GateType::kInput, nullptr, 0), std::logic_error);
  const std::uint64_t in[] = {0};
  EXPECT_THROW(eval_gate_words(GateType::kDff, in, 1), std::logic_error);
}

TEST(GateEval, BoolWrapper) {
  const bool in[] = {true, false};
  EXPECT_FALSE(eval_gate_bool(GateType::kAnd, in, 2));
  EXPECT_TRUE(eval_gate_bool(GateType::kNand, in, 2));
  EXPECT_TRUE(eval_gate_bool(GateType::kXor, in, 2));
}

TEST(GateTypes, ControllingValues) {
  EXPECT_FALSE(controlling_value(GateType::kAnd));
  EXPECT_FALSE(controlling_value(GateType::kNand));
  EXPECT_TRUE(controlling_value(GateType::kOr));
  EXPECT_TRUE(controlling_value(GateType::kNor));
  EXPECT_FALSE(controlled_response(GateType::kAnd));
  EXPECT_TRUE(controlled_response(GateType::kNand));
  EXPECT_FALSE(has_controlling_value(GateType::kXor));
  EXPECT_THROW(controlling_value(GateType::kXor), std::logic_error);
}

TEST(GateTypes, ParseNames) {
  GateType t;
  EXPECT_TRUE(parse_gate_type("NAND", &t));
  EXPECT_EQ(t, GateType::kNand);
  EXPECT_TRUE(parse_gate_type("buff", &t));
  EXPECT_EQ(t, GateType::kBuf);
  EXPECT_TRUE(parse_gate_type("inv", &t));
  EXPECT_EQ(t, GateType::kNot);
  EXPECT_FALSE(parse_gate_type("mux", &t));
}

// --------------------------------------------------------------- Netlist --

Netlist tiny_and() {
  Netlist nl("tiny");
  const GateId a = nl.add_gate(GateType::kInput, "a");
  const GateId b = nl.add_gate(GateType::kInput, "b");
  const GateId g = nl.add_gate(GateType::kAnd, "g", {a, b});
  nl.mark_output(g);
  return nl;
}

TEST(Netlist, ConstructionBasics) {
  Netlist nl = tiny_and();
  nl.validate();
  EXPECT_EQ(nl.num_gates(), 3u);
  EXPECT_EQ(nl.num_inputs(), 2u);
  EXPECT_EQ(nl.num_outputs(), 1u);
  EXPECT_EQ(nl.find("g"), 2u);
  EXPECT_EQ(nl.find("zz"), kNoGate);
  EXPECT_TRUE(nl.is_output(2));
  EXPECT_EQ(nl.output_index(2), 0);
  EXPECT_EQ(nl.output_index(0), -1);
}

TEST(Netlist, FanoutTracked) {
  Netlist nl("f");
  const GateId a = nl.add_gate(GateType::kInput, "a");
  const GateId x = nl.add_gate(GateType::kNot, "x", {a});
  const GateId y = nl.add_gate(GateType::kNot, "y", {a});
  nl.mark_output(x);
  nl.mark_output(y);
  EXPECT_EQ(nl.gate(a).fanout.size(), 2u);
}

TEST(Netlist, DuplicateNameRejected) {
  Netlist nl("d");
  nl.add_gate(GateType::kInput, "a");
  EXPECT_THROW(nl.add_gate(GateType::kInput, "a"), std::runtime_error);
}

TEST(Netlist, ArityChecks) {
  Netlist nl("a");
  const GateId a = nl.add_gate(GateType::kInput, "a");
  EXPECT_THROW(nl.add_gate(GateType::kNot, "n", {a, a}), std::runtime_error);
  EXPECT_THROW(nl.add_gate(GateType::kAnd, "g", {}), std::runtime_error);
  EXPECT_THROW(nl.add_gate(GateType::kInput, "i", {a}), std::runtime_error);
}

TEST(Netlist, DoubleOutputMarkRejected) {
  Netlist nl = tiny_and();
  EXPECT_THROW(nl.mark_output(2), std::runtime_error);
}

TEST(Netlist, TopoOrderRespectsDependencies) {
  Netlist nl("t");
  const GateId a = nl.add_gate(GateType::kInput, "a");
  const GateId b = nl.add_gate(GateType::kNot, "b", {a});
  const GateId c = nl.add_gate(GateType::kNot, "c", {b});
  const GateId d = nl.add_gate(GateType::kAnd, "d", {a, c});
  nl.mark_output(d);
  const auto& topo = nl.topo_order();
  std::vector<std::size_t> pos(nl.num_gates());
  for (std::size_t i = 0; i < topo.size(); ++i) pos[topo[i]] = i;
  EXPECT_LT(pos[a], pos[b]);
  EXPECT_LT(pos[b], pos[c]);
  EXPECT_LT(pos[c], pos[d]);
  EXPECT_EQ(nl.levels()[d], 3u);
  EXPECT_EQ(nl.depth(), 3u);
}

TEST(Netlist, DffPlaceholderAndSequentialLoop) {
  // FF feeding logic feeding the same FF.
  Netlist nl("loop");
  const GateId in = nl.add_gate(GateType::kInput, "in");
  const GateId ff = nl.add_dff_placeholder("ff");
  const GateId g = nl.add_gate(GateType::kXor, "g", {in, ff});
  nl.connect_dff(ff, g);
  nl.mark_output(g);
  nl.validate();
  EXPECT_TRUE(nl.has_dffs());
  EXPECT_EQ(nl.dffs().size(), 1u);
}

TEST(Netlist, UnconnectedDffFailsValidation) {
  Netlist nl("u");
  const GateId in = nl.add_gate(GateType::kInput, "in");
  nl.add_dff_placeholder("ff");
  nl.mark_output(in);
  EXPECT_THROW(nl.validate(), std::runtime_error);
}

TEST(Netlist, ConnectDffTwiceRejected) {
  Netlist nl("c");
  const GateId in = nl.add_gate(GateType::kInput, "in");
  const GateId ff = nl.add_dff_placeholder("ff");
  nl.connect_dff(ff, in);
  EXPECT_THROW(nl.connect_dff(ff, in), std::runtime_error);
}

TEST(Netlist, NumLines) {
  Netlist nl = tiny_and();
  EXPECT_EQ(nl.num_lines(), 2u);
}

// ---------------------------------------------------------------- bench --

constexpr const char* kSmallBench = R"(
# example
INPUT(a)
INPUT(b)
OUTPUT(y)
n1 = NAND(a, b)
y = NOT(n1)
)";

TEST(BenchIo, ParsesSmallCircuit) {
  Netlist nl = parse_bench_string(kSmallBench, "small");
  EXPECT_EQ(nl.num_inputs(), 2u);
  EXPECT_EQ(nl.num_outputs(), 1u);
  EXPECT_EQ(nl.num_gates(), 4u);
  EXPECT_EQ(nl.gate(nl.find("n1")).type, GateType::kNand);
}

TEST(BenchIo, ForwardReferences) {
  Netlist nl = parse_bench_string(R"(
INPUT(a)
OUTPUT(y)
y = NOT(x)
x = BUF(a)
)");
  EXPECT_EQ(nl.num_gates(), 3u);
}

TEST(BenchIo, SequentialLoopThroughDff) {
  Netlist nl = parse_bench_string(R"(
INPUT(a)
OUTPUT(q)
q = DFF(d)
d = XOR(a, q)
)");
  EXPECT_EQ(nl.dffs().size(), 1u);
  nl.validate();
}

TEST(BenchIo, CombinationalCycleRejected) {
  EXPECT_THROW(parse_bench_string(R"(
INPUT(a)
OUTPUT(x)
x = AND(a, y)
y = BUF(x)
)"),
               std::runtime_error);
}

TEST(BenchIo, UndefinedNetRejected) {
  EXPECT_THROW(parse_bench_string("INPUT(a)\nOUTPUT(y)\ny = NOT(zzz)\n"),
               std::runtime_error);
}

TEST(BenchIo, UndefinedOutputRejected) {
  EXPECT_THROW(parse_bench_string("INPUT(a)\nOUTPUT(nope)\nx = NOT(a)\n"),
               std::runtime_error);
}

TEST(BenchIo, RedefinitionRejected) {
  EXPECT_THROW(
      parse_bench_string("INPUT(a)\nOUTPUT(x)\nx = NOT(a)\nx = BUF(a)\n"),
      std::runtime_error);
}

TEST(BenchIo, UnknownFunctionRejected) {
  EXPECT_THROW(parse_bench_string("INPUT(a)\nOUTPUT(x)\nx = MAJ(a, a, a)\n"),
               std::runtime_error);
}

TEST(BenchIo, CommentsAndBlankLinesIgnored) {
  Netlist nl = parse_bench_string(
      "# header\n\nINPUT(a)  # trailing\n  \nOUTPUT(y)\ny = NOT(a) # c\n");
  EXPECT_EQ(nl.num_gates(), 2u);
}

TEST(BenchIo, WriteParseRoundTrip) {
  Netlist orig = parse_bench_string(kSmallBench, "rt");
  const std::string text = write_bench_string(orig);
  Netlist again = parse_bench_string(text, "rt");
  EXPECT_EQ(again.num_gates(), orig.num_gates());
  EXPECT_EQ(again.num_inputs(), orig.num_inputs());
  EXPECT_EQ(again.num_outputs(), orig.num_outputs());
  EXPECT_EQ(write_bench_string(again), text);
}

TEST(BenchIo, SequentialRoundTrip) {
  Netlist orig = parse_bench_string(R"(
INPUT(a)
OUTPUT(q)
q = DFF(d)
d = XOR(a, q)
)",
                                    "seq");
  Netlist again = parse_bench_string(write_bench_string(orig), "seq");
  EXPECT_EQ(again.dffs().size(), 1u);
  EXPECT_EQ(again.num_gates(), orig.num_gates());
}

// ---------------------------------------------------------------- stats --

TEST(Stats, CountsSmallCircuit) {
  Netlist nl = parse_bench_string(kSmallBench, "s");
  const NetlistStats s = compute_stats(nl);
  EXPECT_EQ(s.inputs, 2u);
  EXPECT_EQ(s.outputs, 1u);
  EXPECT_EQ(s.logic_gates, 2u);
  EXPECT_EQ(s.lines, 3u);
  EXPECT_EQ(s.depth, 2u);
  EXPECT_EQ(s.max_fanin, 2u);
  EXPECT_FALSE(format_stats(nl).empty());
}

}  // namespace
}  // namespace sddict
