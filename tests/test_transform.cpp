#include <gtest/gtest.h>

#include "bmcirc/embedded.h"
#include "netlist/bench_io.h"
#include "netlist/transform.h"
#include "sim/logicsim.h"

namespace sddict {
namespace {

// Exhaustive output table of a small combinational netlist.
std::vector<BitVec> truth_table(const Netlist& nl) {
  const std::size_t n = nl.num_inputs();
  std::vector<BitVec> rows;
  for (std::size_t v = 0; v < (1u << n); ++v) {
    BitVec in(n);
    for (std::size_t i = 0; i < n; ++i) in.set(i, (v >> i) & 1);
    rows.push_back(simulate_pattern(nl, in));
  }
  return rows;
}

TEST(FullScan, S27Structure) {
  Netlist scan = full_scan(make_s27());
  EXPECT_FALSE(scan.has_dffs());
  // 4 PIs + 3 PPIs; 1 PO + 3 PPOs.
  EXPECT_EQ(scan.num_inputs(), 7u);
  EXPECT_EQ(scan.num_outputs(), 4u);
  scan.validate();
}

TEST(FullScan, CombinationalPassThrough) {
  Netlist scan = full_scan(make_c17());
  EXPECT_EQ(scan.num_inputs(), 5u);
  EXPECT_EQ(scan.num_outputs(), 2u);
  // Function preserved.
  EXPECT_EQ(truth_table(scan), truth_table(make_c17()));
}

TEST(FullScan, PseudoOutputObservesDffData) {
  Netlist nl = parse_bench_string(R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
q = DFF(d)
d = AND(a, b)
y = NOT(q)
)");
  Netlist scan = full_scan(nl);
  // Inputs: a, b, q ; outputs: y, q_si (= d = a AND b).
  ASSERT_EQ(scan.num_inputs(), 3u);
  ASSERT_EQ(scan.num_outputs(), 2u);
  BitVec in(3);
  in.set(0, true);  // a=1
  in.set(1, true);  // b=1
  in.set(2, false); // scan state q=0
  const BitVec out = simulate_pattern(scan, in);
  EXPECT_TRUE(out.get(0));   // y = !q = 1
  EXPECT_TRUE(out.get(1));   // q_si = a&b = 1
}

TEST(CopyInto, PlainCopyPreservesFunction) {
  Netlist src = make_c17();
  Netlist dst("copy");
  std::vector<GateId> ins;
  for (GateId g : src.inputs())
    ins.push_back(dst.add_gate(GateType::kInput, src.gate(g).name));
  const auto outs = copy_into(dst, src, "cp$", ins, {});
  for (GateId o : outs) dst.mark_output(o);
  dst.validate();
  EXPECT_EQ(truth_table(dst), truth_table(src));
}

TEST(CopyInto, OutputFaultForcesConstant) {
  // y = AND(a,b); fault: AND output stuck-at-1 -> y always 1.
  Netlist src("s");
  const GateId a = src.add_gate(GateType::kInput, "a");
  const GateId b = src.add_gate(GateType::kInput, "b");
  const GateId g = src.add_gate(GateType::kAnd, "g", {a, b});
  src.mark_output(g);

  const Netlist bad = inject_faults(src, {{g, -1, true}});
  for (const auto& row : truth_table(bad)) EXPECT_TRUE(row.get(0));
}

TEST(CopyInto, PinFaultOnlyAffectsOnePin) {
  // y0 = AND(a,b), y1 = BUF(a); fault a->AND pin stuck-at-1: y0 = b, y1 = a.
  Netlist src("s");
  const GateId a = src.add_gate(GateType::kInput, "a");
  const GateId b = src.add_gate(GateType::kInput, "b");
  const GateId g = src.add_gate(GateType::kAnd, "g", {a, b});
  const GateId h = src.add_gate(GateType::kBuf, "h", {a});
  src.mark_output(g);
  src.mark_output(h);

  const Netlist bad = inject_faults(src, {{g, 0, true}});
  const auto rows = truth_table(bad);
  for (std::size_t v = 0; v < 4; ++v) {
    const bool av = v & 1, bv = (v >> 1) & 1;
    EXPECT_EQ(rows[v].get(0), bv);  // AND sees pin0 = 1
    EXPECT_EQ(rows[v].get(1), av);  // branch to BUF unaffected
  }
}

TEST(CopyInto, MultipleFaults) {
  // Two independent outputs, each stuck.
  Netlist src("s");
  const GateId a = src.add_gate(GateType::kInput, "a");
  const GateId x = src.add_gate(GateType::kNot, "x", {a});
  const GateId y = src.add_gate(GateType::kBuf, "y", {a});
  src.mark_output(x);
  src.mark_output(y);
  const Netlist bad = inject_faults(src, {{x, -1, false}, {y, -1, true}});
  for (const auto& row : truth_table(bad)) {
    EXPECT_FALSE(row.get(0));
    EXPECT_TRUE(row.get(1));
  }
}

TEST(CopyInto, RejectsSequentialAndBadSites) {
  Netlist seq = make_s27();
  Netlist dst("d");
  EXPECT_THROW(copy_into(dst, seq, "p$", {}, {}), std::runtime_error);

  Netlist comb = make_c17();
  Netlist dst2("d2");
  std::vector<GateId> ins;
  for (GateId g : comb.inputs())
    ins.push_back(dst2.add_gate(GateType::kInput, comb.gate(g).name));
  EXPECT_THROW(
      copy_into(dst2, comb, "p$", ins,
                {{static_cast<GateId>(comb.num_gates()), -1, false}}),
      std::runtime_error);
  EXPECT_THROW(copy_into(dst2, comb, "q$", ins, {{comb.outputs()[0], 9, false}}),
               std::runtime_error);
}

TEST(Miter, DetectionMiterMatchesFaultBehaviour) {
  // Detection miter output = 1 exactly on vectors where the fault changes
  // some output.
  Netlist nl = make_c17();
  const GateId g = nl.find("10");
  ASSERT_NE(g, kNoGate);
  const Injection f{g, -1, true};
  const Netlist miter = build_detection_miter(nl, f);
  ASSERT_EQ(miter.num_outputs(), 1u);

  const Netlist bad = inject_faults(nl, {f});
  const auto good_rows = truth_table(nl);
  const auto bad_rows = truth_table(bad);
  const auto miter_rows = truth_table(miter);
  for (std::size_t v = 0; v < good_rows.size(); ++v)
    EXPECT_EQ(miter_rows[v].get(0), good_rows[v] != bad_rows[v]) << v;
}

TEST(Miter, PairMiterMatchesResponseDifference) {
  Netlist nl = make_c17();
  const Injection fa{nl.find("10"), -1, true};
  const Injection fb{nl.find("16"), -1, false};
  const Netlist miter = build_pair_miter(nl, fa, fb);

  const auto rows_a = truth_table(inject_faults(nl, {fa}));
  const auto rows_b = truth_table(inject_faults(nl, {fb}));
  const auto rows_m = truth_table(miter);
  for (std::size_t v = 0; v < rows_a.size(); ++v)
    EXPECT_EQ(rows_m[v].get(0), rows_a[v] != rows_b[v]) << v;
}

TEST(Miter, SharedInputOrderMatchesSource) {
  Netlist nl = make_c17();
  const Netlist miter =
      build_pair_miter(nl, {nl.find("10"), -1, true}, {nl.find("11"), -1, true});
  ASSERT_EQ(miter.num_inputs(), nl.num_inputs());
  for (std::size_t i = 0; i < nl.num_inputs(); ++i)
    EXPECT_EQ(miter.gate(miter.inputs()[i]).name,
              nl.gate(nl.inputs()[i]).name);
}

}  // namespace
}  // namespace sddict
