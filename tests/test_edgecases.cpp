// Edge cases across layers: very wide gates, constant gates, degenerate
// circuit and dictionary shapes.
#include <gtest/gtest.h>

#include "core/baseline.h"
#include "core/procedure2.h"
#include "dict/full_dict.h"
#include "dict/passfail_dict.h"
#include "fault/collapse.h"
#include "netlist/bench_io.h"
#include "netlist/transform.h"
#include "sim/faultsim.h"
#include "sim/logicsim.h"
#include "tgen/podem.h"

namespace sddict {
namespace {

// ------------------------------------------------------- wide fanin (>64) --

Netlist wide_and(std::size_t width) {
  Netlist nl("wide");
  std::vector<GateId> ins;
  for (std::size_t i = 0; i < width; ++i)
    ins.push_back(nl.add_gate(GateType::kInput, "i" + std::to_string(i)));
  const GateId g = nl.add_gate(GateType::kAnd, "g", ins);
  nl.mark_output(g);
  return nl;
}

TEST(WideGates, SimulationBeyond64Fanin) {
  const Netlist nl = wide_and(100);
  BitVec all1(100, true);
  EXPECT_TRUE(simulate_pattern(nl, all1).get(0));
  BitVec one0 = all1;
  one0.set(87, false);
  EXPECT_FALSE(simulate_pattern(nl, one0).get(0));
}

TEST(WideGates, FaultSimulationBeyond64Fanin) {
  const Netlist nl = wide_and(100);
  TestSet tests(100);
  tests.add(BitVec(100, true));
  FaultSimulator fsim(nl);
  std::vector<std::uint64_t> words;
  tests.pack_batch(0, 1, &words);
  fsim.load_batch(words, 1);
  // Pin 87 stuck at 0 forces the output low under the all-ones test.
  EXPECT_EQ(fsim.detect_word({nl.find("g"), 87, 0}), 1u);
  EXPECT_EQ(fsim.detect_word({nl.find("g"), 87, 1}), 0u);
}

TEST(WideGates, PodemBeyond64Fanin) {
  const Netlist nl = wide_and(80);
  Podem podem(nl);
  Rng rng(1);
  BitVec test;
  // Output sa0 needs all 80 inputs at 1.
  ASSERT_EQ(podem.generate({nl.find("g"), -1, 0}, &test, rng),
            PodemStatus::kTestFound);
  EXPECT_EQ(test.count_ones(), 80u);
}

// ------------------------------------------------------------- constants --

Netlist const_circuit() {
  return parse_bench_string(R"(
INPUT(a)
OUTPUT(y)
OUTPUT(z)
one = CONST1()
y = AND(a, one)
z = XOR(a, one)
)",
                            "consts");
}

TEST(Constants, ParseSimulateWriteRoundTrip) {
  const Netlist nl = const_circuit();
  BitVec in(1);
  in.set(0, true);
  const BitVec out = simulate_pattern(nl, in);
  EXPECT_TRUE(out.get(0));   // y = a AND 1 = 1
  EXPECT_FALSE(out.get(1));  // z = a XOR 1 = 0
  const Netlist again = parse_bench_string(write_bench_string(nl), "consts");
  EXPECT_EQ(again.num_gates(), nl.num_gates());
}

TEST(Constants, FaultsOnConstCone) {
  const Netlist nl = const_circuit();
  const CollapseResult cr = collapsed_fault_list(nl);
  // The const gate drives two branches; its sa-faults are enumerable and
  // the sa1 case (stuck at its own value) is untestable.
  Podem podem(nl);
  Rng rng(2);
  BitVec test;
  const GateId one = nl.find("one");
  EXPECT_EQ(podem.generate({one, -1, 1}, &test, rng), PodemStatus::kUntestable);
  // Stuck-at-0 on the const flips both outputs for a=1.
  ASSERT_EQ(podem.generate({one, -1, 0}, &test, rng), PodemStatus::kTestFound);
  (void)cr;
}

// ------------------------------------------------------------ degenerate --

TEST(Degenerate, SingleTestDictionary) {
  const Netlist nl = const_circuit();
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  TestSet tests(1);
  tests.add_string("1");
  const ResponseMatrix rm = build_response_matrix(nl, faults, tests);
  const auto pf = PassFailDictionary::build(rm);
  const auto full = FullDictionary::build(rm);
  EXPECT_LE(full.indistinguished_pairs(), pf.indistinguished_pairs());
  BaselineSelectionConfig cfg;
  cfg.calls1 = 2;
  const auto p1 = run_procedure1(rm, cfg);
  EXPECT_LE(p1.indistinguished_pairs, pf.indistinguished_pairs());
}

TEST(Degenerate, SingleFaultUniverse) {
  const Netlist nl = const_circuit();
  FaultList one(std::vector<StuckFault>{{nl.find("y"), -1, 0}});
  TestSet tests(1);
  tests.add_string("1");
  const ResponseMatrix rm = build_response_matrix(nl, one, tests);
  EXPECT_EQ(FullDictionary::build(rm).indistinguished_pairs(), 0u);
  EXPECT_EQ(run_procedure2(rm, {0}).indistinguished_pairs, 0u);
}

TEST(Degenerate, EmptyTestSetResponseMatrix) {
  const Netlist nl = const_circuit();
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  const TestSet none(1);
  const ResponseMatrix rm = build_response_matrix(nl, faults, none);
  EXPECT_EQ(rm.num_tests(), 0u);
  const auto pf = PassFailDictionary::build(rm);
  // Nothing distinguishes anything.
  EXPECT_EQ(pf.indistinguished_pairs(),
            Partition::pairs(faults.size()));
}

TEST(Degenerate, InverterChainPipelineEndToEnd) {
  // The smallest interesting circuit: a NOT chain has 2 collapsed faults.
  Netlist nl("chain");
  GateId g = nl.add_gate(GateType::kInput, "a");
  for (int i = 0; i < 5; ++i)
    g = nl.add_gate(GateType::kNot, "n" + std::to_string(i), {g});
  nl.mark_output(g);
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  ASSERT_EQ(faults.size(), 2u);
  TestSet tests(1);
  tests.add_string("0");
  tests.add_string("1");
  const ResponseMatrix rm = build_response_matrix(nl, faults, tests);
  // One output: the two faults (sa0/sa1 of the line) fail on complementary
  // tests, so even pass/fail distinguishes them.
  EXPECT_EQ(PassFailDictionary::build(rm).indistinguished_pairs(), 0u);
}

TEST(Degenerate, ProcedureOneOnFullyEquivalentFaults) {
  // Two copies of the same fault line: never distinguishable; Procedure 1
  // must terminate with the pair intact.
  const Netlist nl = const_circuit();
  const GateId y = nl.find("y");
  FaultList dup(std::vector<StuckFault>{{y, -1, 0}, {y, -1, 0}});
  TestSet tests(1);
  tests.add_string("1");
  tests.add_string("0");
  const ResponseMatrix rm = build_response_matrix(nl, dup, tests);
  BaselineSelectionConfig cfg;
  cfg.calls1 = 2;
  const auto p1 = run_procedure1(rm, cfg);
  EXPECT_EQ(p1.indistinguished_pairs, 1u);
}

}  // namespace
}  // namespace sddict
