#include <gtest/gtest.h>

#include <set>

#include "bmcirc/embedded.h"
#include "dict/full_dict.h"
#include "dict/signature_dict.h"
#include "fault/collapse.h"
#include "netlist/transform.h"
#include "sim/logicsim.h"
#include "sim/misr.h"

namespace sddict {
namespace {

TEST(Lfsr, MaximalLengthForStandard16) {
  Lfsr lfsr = Lfsr::standard(16);
  const std::uint64_t start = lfsr.state();
  std::size_t period = 0;
  do {
    lfsr.step();
    ++period;
  } while (lfsr.state() != start && period <= (1u << 16));
  EXPECT_EQ(period, (1u << 16) - 1);  // primitive polynomial: full cycle
}

TEST(Lfsr, RejectsBadConfig) {
  EXPECT_THROW(Lfsr(0, 1), std::invalid_argument);
  EXPECT_THROW(Lfsr(8, 0), std::invalid_argument);
  EXPECT_THROW(Lfsr::standard(13), std::invalid_argument);
}

TEST(Lfsr, ZeroSeedEscapesFixedPoint) {
  Lfsr lfsr(8, 0xB8, 0);
  EXPECT_NE(lfsr.state(), 0u);
}

TEST(Misr, OrderSensitive) {
  Misr a = Misr::standard(16);
  Misr b = Misr::standard(16);
  const BitVec r1 = BitVec::from_string("1010");
  const BitVec r2 = BitVec::from_string("0110");
  a.absorb(r1);
  a.absorb(r2);
  b.absorb(r2);
  b.absorb(r1);
  EXPECT_NE(a.signature(), b.signature());
}

TEST(Misr, DeterministicAndResettable) {
  Misr a = Misr::standard(32);
  a.absorb(BitVec::from_string("110"));
  const std::uint64_t s = a.signature();
  a.reset();
  a.absorb(BitVec::from_string("110"));
  EXPECT_EQ(a.signature(), s);
}

TEST(Misr, WideResponsesFold) {
  Misr a = Misr::standard(8);
  BitVec wide(20);
  wide.set(0, true);
  wide.set(8, true);  // folds onto the same register input as bit 0
  a.absorb(wide);
  Misr b = Misr::standard(8);
  b.absorb(BitVec(20));  // all-zero
  // Two set bits folding to the same position cancel.
  EXPECT_EQ(a.signature(), b.signature());
}

// ------------------------------------------------------------ dictionary --

struct Fixture {
  Netlist nl = make_c17();
  FaultList faults = collapsed_fault_list(nl).collapsed;
  TestSet tests;
  Fixture() : tests(5) {
    Rng rng(31);
    tests.add_random(24, rng);
  }
};

TEST(SignatureDict, MatchesReferenceMisrAbsorption) {
  Fixture fx;
  const auto d = SignatureDictionary::build(fx.nl, fx.faults, fx.tests, 32);
  // Fault-free signature equals absorbing the good responses directly.
  EXPECT_EQ(d.fault_free_signature(),
            SignatureDictionary::signature_of(good_responses(fx.nl, fx.tests)));
  // Per-fault signatures equal absorbing the structurally-injected faulty
  // responses.
  for (FaultId f = 0; f < fx.faults.size(); f += 3) {
    const Netlist bad = inject_faults(fx.nl, {to_injection(fx.faults[f])});
    EXPECT_EQ(d.signature(f),
              SignatureDictionary::signature_of(good_responses(bad, fx.tests)))
        << fault_name(fx.nl, fx.faults[f]);
  }
}

TEST(SignatureDict, SizeIsTiny) {
  Fixture fx;
  const auto d = SignatureDictionary::build(fx.nl, fx.faults, fx.tests, 32);
  EXPECT_EQ(d.size_bits(), fx.faults.size() * 32);
  // Far below even pass/fail once tests outnumber the register width.
  TestSet many(5);
  Rng rng(5);
  many.add_random(100, rng);
  const auto d2 = SignatureDictionary::build(fx.nl, fx.faults, many, 32);
  EXPECT_LT(d2.size_bits(), fx.faults.size() * many.size());
}

TEST(SignatureDict, ResolutionNeverBeatsFullDictionary) {
  Fixture fx;
  const auto d = SignatureDictionary::build(fx.nl, fx.faults, fx.tests, 32);
  const ResponseMatrix rm = build_response_matrix(fx.nl, fx.faults, fx.tests);
  const auto full = FullDictionary::build(rm);
  EXPECT_GE(d.indistinguished_pairs(), full.indistinguished_pairs());
}

TEST(SignatureDict, DiagnoseExactMatch) {
  Fixture fx;
  const auto d = SignatureDictionary::build(fx.nl, fx.faults, fx.tests, 32);
  const FaultId truth = 4;
  const auto candidates = d.diagnose(d.signature(truth));
  EXPECT_NE(std::find(candidates.begin(), candidates.end(), truth),
            candidates.end());
  // Candidate set == faults sharing the signature.
  for (FaultId f : candidates) EXPECT_EQ(d.signature(f), d.signature(truth));
}

TEST(SignatureDict, UndetectedFaultsKeepFaultFreeSignature) {
  // A fault the test set never detects produces the good stream.
  Fixture fx;
  TestSet one(5);
  one.add_string("00000");
  const auto d = SignatureDictionary::build(fx.nl, fx.faults, one, 32);
  const ResponseMatrix rm = build_response_matrix(fx.nl, fx.faults, one);
  for (FaultId f = 0; f < fx.faults.size(); ++f) {
    if (!rm.detected(f, 0)) {
      EXPECT_EQ(d.signature(f), d.fault_free_signature());
    }
  }
}

TEST(SignatureDict, WidthsSupported) {
  Fixture fx;
  for (unsigned w : {8u, 16u, 24u, 32u}) {
    const auto d = SignatureDictionary::build(fx.nl, fx.faults, fx.tests, w);
    EXPECT_EQ(d.width(), w);
  }
  EXPECT_THROW(SignatureDictionary::build(fx.nl, fx.faults, fx.tests, 17),
               std::invalid_argument);
}

TEST(SignatureDict, NarrowRegisterAliasesMore) {
  // Statistically, 8-bit signatures must collapse more fault pairs than
  // 32-bit ones on the same responses.
  Fixture fx;
  const auto d8 = SignatureDictionary::build(fx.nl, fx.faults, fx.tests, 8);
  const auto d32 = SignatureDictionary::build(fx.nl, fx.faults, fx.tests, 32);
  EXPECT_GE(d8.indistinguished_pairs(), d32.indistinguished_pairs());
}

}  // namespace
}  // namespace sddict
