#include <gtest/gtest.h>

#include "bmcirc/embedded.h"
#include "fault/collapse.h"
#include "sim/faultsim.h"
#include "tgen/compact.h"

namespace sddict {
namespace {

TEST(CompactNDetect, PreservesNDetectCoverageExactly) {
  const Netlist nl = make_c17();
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  TestSet tests(5);
  Rng rng(3);
  tests.add_random(200, rng);
  const auto before = count_detections(nl, faults, tests);
  for (std::uint32_t n : {1u, 3u, 10u}) {
    const TestSet small = compact_reverse_ndetect(nl, faults, tests, n);
    EXPECT_LE(small.size(), tests.size());
    const auto after = count_detections(nl, faults, small);
    for (FaultId f = 0; f < faults.size(); ++f)
      EXPECT_GE(after[f], std::min(n, before[f]))
          << fault_name(nl, faults[f]) << " n=" << n;
  }
}

TEST(CompactNDetect, SmallerNCompactsHarder) {
  const Netlist nl = make_c17();
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  TestSet tests(5);
  Rng rng(7);
  tests.add_random(300, rng);
  const TestSet n1 = compact_reverse_ndetect(nl, faults, tests, 1);
  const TestSet n10 = compact_reverse_ndetect(nl, faults, tests, 10);
  EXPECT_LE(n1.size(), n10.size());
  // n=1 compaction should agree with the plain 1-detect compactor's
  // coverage guarantee.
  const auto c1 = count_detections(nl, faults, n1);
  const auto full = count_detections(nl, faults, tests);
  for (FaultId f = 0; f < faults.size(); ++f)
    EXPECT_EQ(c1[f] > 0, full[f] > 0);
}

TEST(CompactNDetect, NoopOnAlreadyMinimalSet) {
  const Netlist nl = make_c17();
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  TestSet tests(5);
  Rng rng(9);
  tests.add_random(120, rng);
  const TestSet once = compact_reverse_ndetect(nl, faults, tests, 5);
  const TestSet twice = compact_reverse_ndetect(nl, faults, once, 5);
  EXPECT_EQ(twice.size(), once.size());
}

}  // namespace
}  // namespace sddict
