#include <gtest/gtest.h>

#include <numeric>

#include "bmcirc/embedded.h"
#include "bmcirc/synth.h"
#include "core/baseline.h"
#include "core/hybrid.h"
#include "core/pairset.h"
#include "core/procedure2.h"
#include "dict/passfail_dict.h"
#include "dict/samediff_dict.h"
#include "fault/collapse.h"
#include "netlist/transform.h"
#include "sim/logicsim.h"

namespace sddict {
namespace {

// The paper's worked example (Tables 1-5).
ResponseMatrix paper_example() {
  const std::vector<BitVec> ff = {BitVec::from_string("00"),
                                  BitVec::from_string("00")};
  const std::vector<std::vector<BitVec>> faulty = {
      {BitVec::from_string("10"), BitVec::from_string("11")},
      {BitVec::from_string("00"), BitVec::from_string("10")},
      {BitVec::from_string("01"), BitVec::from_string("10")},
      {BitVec::from_string("01"), BitVec::from_string("00")},
  };
  return response_matrix_from_table(ff, faulty);
}

ResponseMatrix c17_matrix(std::size_t num_tests, std::uint64_t seed,
                          FaultList* out_faults = nullptr) {
  static const Netlist nl = make_c17();
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  if (out_faults != nullptr) *out_faults = faults;
  TestSet tests(nl.num_inputs());
  Rng rng(seed);
  tests.add_random(num_tests, rng);
  return build_response_matrix(nl, faults, tests);
}

// ------------------------------------------------------ candidate_dist  --

TEST(CandidateDist, ReproducesPaperTable4) {
  const ResponseMatrix rm = paper_example();
  Partition part(4);
  const auto dist = candidate_dist(rm, 0, part);
  // Z_0 = {00 (id0), 10, 01}. Table 4: dist(00)=3, dist(10)=3, dist(01)=4.
  ASSERT_EQ(dist.size(), 3u);
  EXPECT_EQ(dist[rm.response(1, 0)], 3u);  // 00 = fault-free id
  EXPECT_EQ(dist[rm.response(0, 0)], 3u);  // 10
  EXPECT_EQ(dist[rm.response(2, 0)], 4u);  // 01
}

TEST(CandidateDist, ReproducesPaperTable5AfterFirstSelection) {
  const ResponseMatrix rm = paper_example();
  Partition part(4);
  const ResponseId bl0 = rm.response(2, 0);  // 01, selected in Table 4
  part.refine_with([&](std::uint32_t f) {
    return static_cast<std::uint32_t>(rm.response(f, 0) == bl0);
  });
  const auto dist = candidate_dist(rm, 1, part);
  // Table 5: dist(11)=1, dist(10)=2, dist(00)=1.
  EXPECT_EQ(dist[rm.response(0, 1)], 1u);  // 11
  EXPECT_EQ(dist[rm.response(1, 1)], 2u);  // 10
  EXPECT_EQ(dist[0], 1u);                  // 00 = fault-free
}

TEST(CandidateDist, SingletonClassesContributeNothing) {
  const ResponseMatrix rm = paper_example();
  Partition part(4);
  part.refine({0, 1, 2, 3});  // fully refined
  const auto dist = candidate_dist(rm, 0, part);
  for (auto d : dist) EXPECT_EQ(d, 0u);
}

// ------------------------------------------------------ scan_with_lower --

TEST(ScanWithLower, PicksFirstArgmax) {
  EXPECT_EQ(scan_with_lower({5, 9, 9, 3}, 10), 1u);
}

TEST(ScanWithLower, EarlyStopHidesLateMaximum) {
  // LOWER=2: candidates 0,1 score below best at index 0; scan stops before
  // seeing the 100 at the end. This is the paper's Step 3c semantics.
  EXPECT_EQ(scan_with_lower({50, 10, 10, 100}, 2), 0u);
  // With a generous LOWER the late maximum is found.
  EXPECT_EQ(scan_with_lower({50, 10, 10, 100}, 3), 3u);
}

TEST(ScanWithLower, EqualScoresDoNotCountTowardStop) {
  // Scores equal to the best neither reset nor advance the counter.
  EXPECT_EQ(scan_with_lower({7, 7, 7, 7, 8}, 1), 4u);
}

TEST(ScanWithLower, EmptyAndSingle) {
  EXPECT_EQ(scan_with_lower({}, 3), 0u);
  EXPECT_EQ(scan_with_lower({4}, 3), 0u);
}

// --------------------------------------------------------- procedure 1  --

TEST(Procedure1, SolvesPaperExampleExactly) {
  const ResponseMatrix rm = paper_example();
  const BaselineSelection sel = procedure1_single(rm, {0, 1}, 10);
  // Expect the Table 3 solution: baselines 01 and 10, all pairs split.
  EXPECT_EQ(sel.baselines[0], rm.response(2, 0));
  EXPECT_EQ(sel.baselines[1], rm.response(1, 1));
  EXPECT_EQ(sel.indistinguished_pairs, 0u);
  EXPECT_EQ(sel.distinguished_pairs, 6u);
}

TEST(Procedure1, MatchesExplicitPairReferenceOnRandomizedCircuits) {
  // Differential test over randomized small synthetic circuits: the
  // partition-refinement implementation must agree with the paper-literal
  // explicit-pair-set reference for every test order and LOWER value —
  // including LOWER=1, where the early stop triggers on the first candidate
  // scoring strictly below the running best while ties keep scanning
  // (scan_with_lower's tie rule).
  for (std::uint64_t seed : {101u, 202u, 303u}) {
    SynthProfile profile;
    profile.name = "diff";
    profile.inputs = 6;
    profile.outputs = 3;
    profile.gates = 30;
    profile.seed = seed;
    const Netlist nl = generate_synthetic(profile);
    const FaultList faults = collapsed_fault_list(nl).collapsed;
    TestSet tests(nl.num_inputs());
    Rng rng(seed);
    tests.add_random(8, rng);
    const ResponseMatrix rm = build_response_matrix(nl, faults, tests);

    std::vector<std::size_t> order(rm.num_tests());
    std::iota(order.begin(), order.end(), std::size_t{0});
    for (int trial = 0; trial < 3; ++trial) {
      for (std::size_t lower : {1u, 2u, 5u, 100u}) {
        const auto fast = procedure1_single(rm, order, lower);
        const auto slow = procedure1_single_pairs(rm, order, lower);
        EXPECT_EQ(fast.baselines, slow.baselines)
            << "seed=" << seed << " lower=" << lower << " trial=" << trial;
        EXPECT_EQ(fast.indistinguished_pairs, slow.indistinguished_pairs);
        EXPECT_EQ(fast.distinguished_pairs, slow.distinguished_pairs);
      }
      rng.shuffle(order);
    }
  }
}

TEST(Procedure1, MatchesExplicitPairReferenceOnRandomTables) {
  // Dense random response tables tie candidate scores far more often than
  // circuit-derived matrices, hammering the LOWER tie path specifically.
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 3 + rng.below(6);  // faults
    const std::size_t k = 2 + rng.below(4);  // tests
    const std::size_t m = 2 + rng.below(3);  // outputs
    std::vector<BitVec> ff;
    for (std::size_t j = 0; j < k; ++j) {
      BitVec v(m);
      for (std::size_t o = 0; o < m; ++o) v.set(o, rng.coin());
      ff.push_back(v);
    }
    std::vector<std::vector<BitVec>> faulty(n);
    for (auto& row : faulty)
      for (std::size_t j = 0; j < k; ++j) {
        BitVec v(m);
        for (std::size_t o = 0; o < m; ++o) v.set(o, rng.coin());
        row.push_back(v);
      }
    const ResponseMatrix rm = response_matrix_from_table(ff, faulty);
    std::vector<std::size_t> order(k);
    std::iota(order.begin(), order.end(), std::size_t{0});
    for (std::size_t lower : {1u, 2u, 3u}) {
      const auto fast = procedure1_single(rm, order, lower);
      const auto slow = procedure1_single_pairs(rm, order, lower);
      EXPECT_EQ(fast.baselines, slow.baselines)
          << "trial=" << trial << " lower=" << lower;
      EXPECT_EQ(fast.indistinguished_pairs, slow.indistinguished_pairs);
    }
  }
}

TEST(Procedure1, MatchesExplicitPairReferenceOnC17) {
  FaultList faults;
  const ResponseMatrix rm = c17_matrix(10, 31, &faults);
  std::vector<std::size_t> order(rm.num_tests());
  std::iota(order.begin(), order.end(), std::size_t{0});
  Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    for (std::size_t lower : {1u, 3u, 10u}) {
      const auto fast = procedure1_single(rm, order, lower);
      const auto slow = procedure1_single_pairs(rm, order, lower);
      EXPECT_EQ(fast.baselines, slow.baselines) << "lower=" << lower;
      EXPECT_EQ(fast.indistinguished_pairs, slow.indistinguished_pairs);
      EXPECT_EQ(fast.distinguished_pairs, slow.distinguished_pairs);
    }
    rng.shuffle(order);
  }
}

TEST(Procedure1, SelectionConsistentWithBuiltDictionary) {
  const ResponseMatrix rm = c17_matrix(8, 17);
  std::vector<std::size_t> order(rm.num_tests());
  std::iota(order.begin(), order.end(), std::size_t{0});
  const auto sel = procedure1_single(rm, order, 10);
  const auto sd = SameDifferentDictionary::build(rm, sel.baselines);
  EXPECT_EQ(sd.indistinguished_pairs(), sel.indistinguished_pairs);
}

TEST(Procedure1, RestartsNeverWorseThanPassFail) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const ResponseMatrix rm = c17_matrix(9, seed);
    BaselineSelectionConfig cfg;
    cfg.calls1 = 5;
    cfg.seed = seed;
    const auto sel = run_procedure1(rm, cfg);
    const auto pf = PassFailDictionary::build(rm);
    EXPECT_LE(sel.indistinguished_pairs, pf.indistinguished_pairs());
  }
}

TEST(Procedure1, FaultFreeIdIsZeroOnSimulatedMatrices) {
  const ResponseMatrix rm = c17_matrix(10, 23);
  for (std::size_t j = 0; j < rm.num_tests(); ++j)
    EXPECT_EQ(rm.fault_free_id(j), 0u);
}

TEST(Procedure1, PassFailFallbackResolvesPermutedFaultFreeId) {
  // Regression for the fallback in run_procedure1 assuming ResponseId 0 is
  // the fault-free response. One test, six faults: two produce response A,
  // one produces B, three are fault-free — with ids permuted so the
  // fault-free signature sits at id 2, not 0.
  //
  // With LOWER=1 the greedy scan sees dist(A)=8 then dist(B)=5 and stops
  // before reaching the fault-free candidate, settling for a {2|4} split
  // (7 indistinguished pairs). The true pass/fail split {3|3} leaves only
  // 6, so the fallback must win — but only if it refines against the
  // *resolved* fault-free id. The buggy "== 0" refinement reproduces the
  // same {2|4} split and keeps 7.
  const Hash128 sig_a = slot_token(0, 1);
  const Hash128 sig_b = slot_token(1, 1);
  const ResponseMatrix permuted = response_matrix_from_ids(
      /*resp=*/{0, 0, 1, 2, 2, 2},
      /*signatures=*/{{sig_a, sig_b, Hash128{}}},
      /*num_faults=*/6, /*num_tests=*/1, /*num_outputs=*/2);
  ASSERT_EQ(permuted.fault_free_id(0), 2u);

  BaselineSelectionConfig cfg;
  cfg.lower = 1;
  cfg.calls1 = 0;  // no restarts: greedy pass + pass/fail fallback only
  const auto sel = run_procedure1(permuted, cfg);
  EXPECT_EQ(sel.indistinguished_pairs, 6u);
  EXPECT_EQ(sel.baselines[0], 2u);

  // The unpermuted encoding of the same matrix must land on the same count.
  const ResponseMatrix canonical = response_matrix_from_ids(
      {1, 1, 2, 0, 0, 0}, {{Hash128{}, sig_a, sig_b}}, 6, 1, 2);
  const auto canonical_sel = run_procedure1(canonical, cfg);
  EXPECT_EQ(canonical_sel.indistinguished_pairs, 6u);
  EXPECT_EQ(canonical_sel.baselines[0], 0u);
}

TEST(ResponseMatrixFromIds, ValidatesShape) {
  const Hash128 sig_a = slot_token(0, 1);
  // Wrong resp size.
  EXPECT_THROW(response_matrix_from_ids({0}, {{Hash128{}}}, 2, 1, 1),
               std::invalid_argument);
  // No fault-free signature.
  EXPECT_THROW(response_matrix_from_ids({0, 0}, {{sig_a}}, 2, 1, 1),
               std::invalid_argument);
  // Two fault-free signatures.
  EXPECT_THROW(
      response_matrix_from_ids({0, 1}, {{Hash128{}, Hash128{}}}, 2, 1, 1),
      std::invalid_argument);
  // Id out of range.
  EXPECT_THROW(response_matrix_from_ids({0, 3}, {{Hash128{}, sig_a}}, 2, 1, 1),
               std::invalid_argument);
}

TEST(Procedure1, TargetStopsEarly) {
  const ResponseMatrix rm = c17_matrix(16, 4);
  BaselineSelectionConfig cfg;
  cfg.calls1 = 100;
  cfg.target_indistinguished = Partition::pairs(rm.num_faults());  // trivial
  const auto sel = run_procedure1(rm, cfg);
  EXPECT_EQ(sel.calls_used, 1u);
}

TEST(Procedure1, OrderAffectsSelection) {
  // At least the machinery accepts arbitrary permutations; results must be
  // valid baseline ids in each test's candidate set.
  const ResponseMatrix rm = c17_matrix(12, 8);
  std::vector<std::size_t> order(rm.num_tests());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::reverse(order.begin(), order.end());
  const auto sel = procedure1_single(rm, order, 10);
  for (std::size_t t = 0; t < rm.num_tests(); ++t)
    EXPECT_LT(sel.baselines[t], rm.num_distinct(t));
}

// --------------------------------------------------------- procedure 2  --

TEST(Procedure2, CountMatchesDictionaryBuild) {
  const ResponseMatrix rm = c17_matrix(10, 12);
  std::vector<ResponseId> baselines(rm.num_tests());
  for (std::size_t t = 0; t < rm.num_tests(); ++t)
    baselines[t] = rm.num_distinct(t) - 1;
  EXPECT_EQ(count_indistinguished(rm, baselines),
            SameDifferentDictionary::build(rm, baselines)
                .indistinguished_pairs());
}

TEST(Procedure2, PassFailStartOnPaperExampleIsALocalOptimum) {
  // From the pass/fail assignment (indistinguished = 1), every single
  // baseline replacement still leaves one duplicate row pair, so
  // Procedure 2 — a strict-improvement local search — makes no move. This
  // is exactly why the paper runs it after Procedure 1, not instead of it.
  const ResponseMatrix rm = paper_example();
  const Procedure2Result res = run_procedure2(rm, {0, 0});
  EXPECT_EQ(res.indistinguished_pairs, 1u);
  EXPECT_EQ(res.replacements, 0u);
  // Whereas from the Table-3/4/5 greedy starting point the assignment is
  // already perfect and Procedure 2 confirms it.
  const Procedure2Result from_p1 =
      run_procedure2(rm, {rm.response(2, 0), rm.response(1, 1)});
  EXPECT_EQ(from_p1.indistinguished_pairs, 0u);
}

TEST(Procedure2, NeverWorsens) {
  for (std::uint64_t seed : {3u, 14u, 15u}) {
    const ResponseMatrix rm = c17_matrix(10, seed);
    BaselineSelectionConfig cfg;
    cfg.calls1 = 2;
    cfg.seed = seed;
    const auto p1 = run_procedure1(rm, cfg);
    const auto p2 = run_procedure2(rm, p1.baselines);
    EXPECT_LE(p2.indistinguished_pairs, p1.indistinguished_pairs);
    EXPECT_EQ(count_indistinguished(rm, p2.baselines),
              p2.indistinguished_pairs);
  }
}

TEST(Procedure2, FixpointIsStable) {
  const ResponseMatrix rm = c17_matrix(10, 16);
  const auto first = run_procedure2(rm, std::vector<ResponseId>(10, 0));
  const auto second = run_procedure2(rm, first.baselines);
  EXPECT_EQ(second.indistinguished_pairs, first.indistinguished_pairs);
  EXPECT_EQ(second.replacements, 0u);
}

TEST(Procedure2, FixpointIsSingleSwapOptimal) {
  // After Procedure 2 terminates, *no* single baseline replacement can
  // strictly improve the count — verified by exhaustive enumeration.
  for (std::uint64_t seed : {21u, 22u}) {
    const ResponseMatrix rm = c17_matrix(8, seed);
    const auto p2 = run_procedure2(rm, std::vector<ResponseId>(8, 0));
    for (std::size_t j = 0; j < rm.num_tests(); ++j) {
      for (ResponseId z = 0; z < rm.num_distinct(j); ++z) {
        auto trial = p2.baselines;
        trial[j] = z;
        EXPECT_GE(count_indistinguished(rm, trial), p2.indistinguished_pairs)
            << "j=" << j << " z=" << z << " seed=" << seed;
      }
    }
  }
}

TEST(Procedure2, BaselineCountMismatchRejected) {
  const ResponseMatrix rm = paper_example();
  EXPECT_THROW(run_procedure2(rm, {0}), std::invalid_argument);
}

// -------------------------------------------------------------- hybrid  --

TEST(Hybrid, PreservesResolution) {
  const ResponseMatrix rm = c17_matrix(12, 19);
  BaselineSelectionConfig cfg;
  cfg.calls1 = 3;
  const auto p1 = run_procedure1(rm, cfg);
  const auto before = count_indistinguished(rm, p1.baselines);
  const auto hyb = hybridize_baselines(rm, p1.baselines);
  EXPECT_LE(hyb.indistinguished_pairs, before);
  EXPECT_EQ(count_indistinguished(rm, hyb.baselines),
            hyb.indistinguished_pairs);
  // Only reverted-to-fault-free baselines may differ.
  for (std::size_t t = 0; t < rm.num_tests(); ++t) {
    if (hyb.baselines[t] != p1.baselines[t]) {
      EXPECT_EQ(hyb.baselines[t], 0u);
    }
  }
}

TEST(Hybrid, StoredBaselinesCounted) {
  const ResponseMatrix rm = paper_example();
  const auto hyb = hybridize_baselines(
      rm, {rm.response(2, 0), rm.response(1, 1)});
  std::size_t nonzero = 0;
  for (auto b : hyb.baselines) nonzero += b != 0 ? 1 : 0;
  EXPECT_EQ(hyb.stored_baselines, nonzero);
  // Size model: never more than the plain same/different size + flags.
  EXPECT_LE(hyb.size_bits,
            dictionary_sizes(2, 4, 2).same_different_bits + 2);
}

TEST(Hybrid, AllFaultFreeWhenPassFailIsOptimal) {
  // If every test's baseline is already fault-free, nothing changes.
  const ResponseMatrix rm = paper_example();
  const auto hyb = hybridize_baselines(rm, {0, 0});
  EXPECT_EQ(hyb.stored_baselines, 0u);
}

}  // namespace
}  // namespace sddict
