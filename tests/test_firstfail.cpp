#include <gtest/gtest.h>

#include "bmcirc/embedded.h"
#include "dict/firstfail_dict.h"
#include "dict/full_dict.h"
#include "dict/passfail_dict.h"
#include "fault/collapse.h"
#include "netlist/transform.h"
#include "sim/logicsim.h"

namespace sddict {
namespace {

struct Fixture {
  Netlist nl = make_c17();
  FaultList faults = collapsed_fault_list(nl).collapsed;
  TestSet tests;
  ResponseMatrix rm;
  Fixture() : tests(5) {
    Rng rng(23);
    tests.add_random(16, rng);
    rm = build_response_matrix(nl, faults, tests, {.store_diff_outputs = true});
  }
};

TEST(FirstFail, RequiresDiffOutputs) {
  Fixture fx;
  const ResponseMatrix bare = build_response_matrix(fx.nl, fx.faults, fx.tests);
  EXPECT_THROW(FirstFailDictionary::build(bare), std::invalid_argument);
}

TEST(FirstFail, EntriesMatchStructuralSimulation) {
  Fixture fx;
  const auto d = FirstFailDictionary::build(fx.rm);
  const auto good = good_responses(fx.nl, fx.tests);
  for (FaultId f = 0; f < fx.faults.size(); ++f) {
    const Netlist bad = inject_faults(fx.nl, {to_injection(fx.faults[f])});
    const auto resp = good_responses(bad, fx.tests);
    for (std::size_t t = 0; t < fx.tests.size(); ++t) {
      const std::size_t first = good[t].first_difference(resp[t]);
      const std::uint32_t expect =
          first == BitVec::npos ? 0 : static_cast<std::uint32_t>(1 + first);
      EXPECT_EQ(d.entry(f, t), expect) << f << " " << t;
    }
  }
}

TEST(FirstFail, ResolutionBetweenPassFailAndFull) {
  Fixture fx;
  const auto d = FirstFailDictionary::build(fx.rm);
  const auto pf = PassFailDictionary::build(fx.rm);
  const auto full = FullDictionary::build(fx.rm);
  EXPECT_LE(full.indistinguished_pairs(), d.indistinguished_pairs());
  EXPECT_LE(d.indistinguished_pairs(), pf.indistinguished_pairs());
}

TEST(FirstFail, SizeFormula) {
  Fixture fx;
  const auto d = FirstFailDictionary::build(fx.rm);
  // c17: m = 2 outputs -> 3 values -> 2 bits per entry.
  EXPECT_EQ(d.size_bits(), fx.tests.size() * fx.faults.size() * 2);
  const auto pf = PassFailDictionary::build(fx.rm);
  const auto full = FullDictionary::build(fx.rm);
  EXPECT_GE(d.size_bits(), pf.size_bits());
  EXPECT_LE(d.size_bits(), full.size_bits());
}

TEST(FirstFail, EncodeAndDiagnose) {
  Fixture fx;
  const auto d = FirstFailDictionary::build(fx.rm);
  std::vector<ResponseId> observed(fx.tests.size());
  for (std::size_t t = 0; t < fx.tests.size(); ++t)
    observed[t] = fx.rm.response(6, t);
  const auto enc = d.encode(fx.rm, observed);
  for (std::size_t t = 0; t < fx.tests.size(); ++t)
    EXPECT_EQ(enc[t], d.entry(6, t));
  const auto matches = d.diagnose(enc, 3);
  ASSERT_FALSE(matches.empty());
  EXPECT_EQ(matches[0].mismatches, 0u);
}

TEST(FirstFail, UnknownResponseEncodesAsMismatch) {
  Fixture fx;
  const auto d = FirstFailDictionary::build(fx.rm);
  std::vector<ResponseId> observed(fx.tests.size(), kUnknownResponse);
  const auto enc = d.encode(fx.rm, observed);
  for (auto e : enc) EXPECT_EQ(e, fx.nl.num_outputs() + 1);
}

// ------------------------------------------------------------- compactor --

TEST(XorCompactor, StructureAndFunction) {
  const Netlist nl = make_c17();
  const Netlist x1 = xor_compact_outputs(nl, 1);
  EXPECT_EQ(x1.num_outputs(), 1u);
  EXPECT_EQ(x1.num_inputs(), nl.num_inputs());
  // Signature = XOR of the original outputs, for every input vector.
  for (std::size_t v = 0; v < 32; ++v) {
    BitVec in(5);
    for (std::size_t i = 0; i < 5; ++i) in.set(i, (v >> i) & 1);
    const BitVec orig = simulate_pattern(nl, in);
    const BitVec sig = simulate_pattern(x1, in);
    EXPECT_EQ(sig.get(0), orig.get(0) ^ orig.get(1)) << v;
  }
}

TEST(XorCompactor, IdentityWidthKeepsResponses) {
  const Netlist nl = make_c17();
  const Netlist x2 = xor_compact_outputs(nl, 2);
  EXPECT_EQ(x2.num_outputs(), 2u);
  // Round-robin with m == signatures: group s holds exactly output s.
  for (std::size_t v = 0; v < 32; ++v) {
    BitVec in(5);
    for (std::size_t i = 0; i < 5; ++i) in.set(i, (v >> i) & 1);
    EXPECT_EQ(simulate_pattern(x2, in), simulate_pattern(nl, in)) << v;
  }
}

TEST(XorCompactor, AliasingOnlyCoarsens) {
  const Netlist nl = make_c17();
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  TestSet tests(5);
  Rng rng(9);
  tests.add_random(20, rng);
  const ResponseMatrix rm_orig = build_response_matrix(nl, faults, tests);

  const Netlist x1 = xor_compact_outputs(nl, 1);
  // Same fault sites exist in the compacted netlist under the same names.
  std::vector<StuckFault> mapped;
  for (const auto& f : faults) {
    const GateId g = x1.find(nl.gate(f.gate).name);
    ASSERT_NE(g, kNoGate);
    mapped.push_back({g, f.pin, f.value});
  }
  const ResponseMatrix rm_x =
      build_response_matrix(x1, FaultList(mapped), tests);
  EXPECT_LE(FullDictionary::build(rm_orig).indistinguished_pairs(),
            FullDictionary::build(rm_x).indistinguished_pairs());
}

TEST(XorCompactor, ValidatesArguments) {
  const Netlist nl = make_c17();
  EXPECT_THROW(xor_compact_outputs(nl, 0), std::runtime_error);
  EXPECT_THROW(xor_compact_outputs(nl, 3), std::runtime_error);
  EXPECT_THROW(xor_compact_outputs(make_s27(), 1), std::runtime_error);
}

}  // namespace
}  // namespace sddict
