#include <gtest/gtest.h>

#include <algorithm>

#include "bmcirc/embedded.h"
#include "bmcirc/synth.h"
#include "fault/collapse.h"
#include "netlist/bench_io.h"
#include "netlist/transform.h"
#include "sim/faultsim.h"
#include "sim/logicsim.h"
#include "sim/response.h"
#include "tgen/compact.h"
#include "tgen/diagset.h"
#include "tgen/distinguish.h"
#include "tgen/ndetect.h"
#include "tgen/podem.h"
#include "tgen/randgen.h"
#include "tgen/valuesys.h"

namespace sddict {
namespace {

bool detects(const Netlist& nl, const StuckFault& f, const BitVec& test) {
  const Netlist bad = inject_faults(nl, {to_injection(f)});
  return simulate_pattern(nl, test) != simulate_pattern(bad, test);
}

// Exhaustive testability check for small circuits.
bool exhaustively_testable(const Netlist& nl, const StuckFault& f) {
  for (std::size_t v = 0; v < (1u << nl.num_inputs()); ++v) {
    BitVec in(nl.num_inputs());
    for (std::size_t i = 0; i < nl.num_inputs(); ++i) in.set(i, (v >> i) & 1);
    if (detects(nl, f, in)) return true;
  }
  return false;
}

// ------------------------------------------------------------------- V3 --

TEST(ValueSys, NotAndDefiniteness) {
  EXPECT_EQ(v3_not(kV0), kV1);
  EXPECT_EQ(v3_not(kV1), kV0);
  EXPECT_EQ(v3_not(kVX), kVX);
  EXPECT_TRUE(is_definite(kV0));
  EXPECT_FALSE(is_definite(kVX));
}

TEST(ValueSys, AndWithX) {
  {
    const V3 in[] = {kV0, kVX};
    EXPECT_EQ(eval_gate_v3(GateType::kAnd, in, 2), kV0);  // controlled
    EXPECT_EQ(eval_gate_v3(GateType::kNand, in, 2), kV1);
  }
  {
    const V3 in[] = {kV1, kVX};
    EXPECT_EQ(eval_gate_v3(GateType::kAnd, in, 2), kVX);
    EXPECT_EQ(eval_gate_v3(GateType::kOr, in, 2), kV1);
    EXPECT_EQ(eval_gate_v3(GateType::kNor, in, 2), kV0);
  }
}

TEST(ValueSys, XorContaminatedByX) {
  const V3 in[] = {kV1, kVX};
  EXPECT_EQ(eval_gate_v3(GateType::kXor, in, 2), kVX);
  const V3 in2[] = {kV1, kV1, kV1};
  EXPECT_EQ(eval_gate_v3(GateType::kXor, in2, 3), kV1);
  EXPECT_EQ(eval_gate_v3(GateType::kXnor, in2, 3), kV0);
}

TEST(ValueSys, MatchesBooleanEvalOnDefiniteInputs) {
  for (GateType t : {GateType::kAnd, GateType::kNand, GateType::kOr,
                     GateType::kNor, GateType::kXor, GateType::kXnor}) {
    for (unsigned v = 0; v < 8; ++v) {
      V3 in3[3];
      bool inb[3];
      for (int i = 0; i < 3; ++i) {
        inb[i] = (v >> i) & 1;
        in3[i] = v3_from_bool(inb[i]);
      }
      EXPECT_EQ(v3_to_bool(eval_gate_v3(t, in3, 3)), eval_gate_bool(t, inb, 3))
          << gate_type_name(t) << " " << v;
    }
  }
}

// ---------------------------------------------------------------- PODEM --

TEST(Podem, FindsTestsForAllC17Faults) {
  const Netlist nl = make_c17();
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  Podem podem(nl);
  Rng rng(1);
  for (const auto& f : faults) {
    BitVec test;
    ASSERT_EQ(podem.generate(f, &test, rng), PodemStatus::kTestFound)
        << fault_name(nl, f);
    EXPECT_TRUE(detects(nl, f, test)) << fault_name(nl, f);
  }
}

TEST(Podem, ProvesRedundantFaultUntestable) {
  // y = OR(a, AND(a, b)) == a; the AND gate is redundant logic.
  Netlist nl("red");
  const GateId a = nl.add_gate(GateType::kInput, "a");
  const GateId b = nl.add_gate(GateType::kInput, "b");
  const GateId g = nl.add_gate(GateType::kAnd, "g", {a, b});
  const GateId y = nl.add_gate(GateType::kOr, "y", {a, g});
  nl.mark_output(y);

  Podem podem(nl);
  Rng rng(1);
  BitVec test;
  const StuckFault g_sa0{g, -1, 0};
  ASSERT_FALSE(exhaustively_testable(nl, g_sa0));
  EXPECT_EQ(podem.generate(g_sa0, &test, rng), PodemStatus::kUntestable);
  // The same gate's sa1 is testable (a=1,b=0 gives y good 1... fault g sa1:
  // y = a OR 1 = 1 vs good y = a; a=0 -> diff).
  const StuckFault g_sa1{g, -1, 1};
  ASSERT_TRUE(exhaustively_testable(nl, g_sa1));
  ASSERT_EQ(podem.generate(g_sa1, &test, rng), PodemStatus::kTestFound);
  EXPECT_TRUE(detects(nl, g_sa1, test));
}

TEST(Podem, AgreesWithExhaustiveCheckOnSyntheticFaults) {
  SynthProfile p;
  p.name = "pod";
  p.inputs = 8;
  p.outputs = 3;
  p.gates = 50;
  p.seed = 42;
  const Netlist nl = full_scan(generate_synthetic(p));
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  Podem podem(nl);
  Rng rng(2);
  std::size_t untestable = 0;
  for (const auto& f : faults) {
    BitVec test;
    const PodemStatus st = podem.generate(f, &test, rng);
    ASSERT_NE(st, PodemStatus::kAborted) << fault_name(nl, f);
    if (st == PodemStatus::kTestFound) {
      EXPECT_TRUE(detects(nl, f, test)) << fault_name(nl, f);
    } else {
      EXPECT_FALSE(exhaustively_testable(nl, f)) << fault_name(nl, f);
      ++untestable;
    }
  }
  // Sanity: most faults of a random circuit are testable.
  EXPECT_LT(untestable, faults.size() / 2);
}

TEST(Podem, PinFaultsHandled) {
  const Netlist nl = make_c17();
  const FaultList all = enumerate_all_faults(nl);
  Podem podem(nl);
  Rng rng(3);
  for (const auto& f : all) {
    if (f.is_output_fault()) continue;
    BitVec test;
    ASSERT_EQ(podem.generate(f, &test, rng), PodemStatus::kTestFound)
        << fault_name(nl, f);
    EXPECT_TRUE(detects(nl, f, test)) << fault_name(nl, f);
  }
}

TEST(Podem, JustifyBothValues) {
  const Netlist nl = make_c17();
  Podem podem(nl);
  Rng rng(4);
  for (GateId out : nl.outputs()) {
    for (bool v : {false, true}) {
      BitVec test;
      ASSERT_EQ(podem.justify(out, v, &test, rng), PodemStatus::kTestFound);
      const BitVec resp = simulate_pattern(nl, test);
      EXPECT_EQ(resp.get(static_cast<std::size_t>(nl.output_index(out))), v);
    }
  }
}

TEST(Podem, JustifyContradictionUntestable) {
  // y = AND(a, NOT(a)) is constant 0.
  Netlist nl("c");
  const GateId a = nl.add_gate(GateType::kInput, "a");
  const GateId na = nl.add_gate(GateType::kNot, "na", {a});
  const GateId y = nl.add_gate(GateType::kAnd, "y", {a, na});
  nl.mark_output(y);
  Podem podem(nl);
  Rng rng(5);
  BitVec test;
  EXPECT_EQ(podem.justify(y, true, &test, rng), PodemStatus::kUntestable);
  EXPECT_EQ(podem.justify(y, false, &test, rng), PodemStatus::kTestFound);
}

TEST(Podem, FaultOnUnobservableGateUntestable) {
  Netlist nl("dang");
  const GateId a = nl.add_gate(GateType::kInput, "a");
  const GateId dead = nl.add_gate(GateType::kNot, "dead", {a});
  const GateId dead2 = nl.add_gate(GateType::kNot, "dead2", {dead});
  (void)dead2;
  const GateId y = nl.add_gate(GateType::kBuf, "y", {a});
  nl.mark_output(y);
  Podem podem(nl);
  Rng rng(6);
  BitVec test;
  EXPECT_EQ(podem.generate({dead, -1, 0}, &test, rng),
            PodemStatus::kUntestable);
}

TEST(Podem, DeterministicCoreAssignments) {
  // With the same rng seed the produced tests are identical.
  const Netlist nl = make_c17();
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  Podem podem(nl);
  Rng r1(9), r2(9);
  BitVec t1, t2;
  ASSERT_EQ(podem.generate(faults[0], &t1, r1), PodemStatus::kTestFound);
  ASSERT_EQ(podem.generate(faults[0], &t2, r2), PodemStatus::kTestFound);
  EXPECT_EQ(t1, t2);
}

// ----------------------------------------------------------- random gen --

TEST(RandomPhase, RespectsTargetAndCredits) {
  const Netlist nl = make_c17();
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  TestSet tests(nl.num_inputs());
  std::vector<std::uint32_t> det(faults.size(), 0);
  Rng rng(1);
  const std::size_t kept = random_phase(nl, faults, 3, &tests, &det, rng);
  EXPECT_EQ(kept, tests.size());
  for (auto d : det) EXPECT_LE(d, 3u);
  // c17 is easy: random patterns should saturate every fault.
  for (std::size_t i = 0; i < det.size(); ++i)
    EXPECT_EQ(det[i], 3u) << fault_name(nl, faults[i]);
  // Reported counts are genuine: re-simulate.
  const auto recount = count_detections(nl, faults, tests);
  for (std::size_t i = 0; i < det.size(); ++i) EXPECT_GE(recount[i], det[i]);
}

TEST(RandomPhase, SizeMismatchRejected) {
  const Netlist nl = make_c17();
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  TestSet tests(nl.num_inputs());
  std::vector<std::uint32_t> det(3, 0);
  Rng rng(1);
  EXPECT_THROW(random_phase(nl, faults, 1, &tests, &det, rng),
               std::invalid_argument);
}

// -------------------------------------------------------------- compact --

TEST(Compact, PreservesCoverage) {
  const Netlist nl = make_c17();
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  TestSet tests(nl.num_inputs());
  Rng rng(2);
  tests.add_random(120, rng);
  const auto before = count_detections(nl, faults, tests);
  const TestSet small = compact_reverse(nl, faults, tests);
  EXPECT_LT(small.size(), tests.size());
  const auto after = count_detections(nl, faults, small);
  for (std::size_t i = 0; i < faults.size(); ++i)
    EXPECT_EQ(after[i] > 0, before[i] > 0) << fault_name(nl, faults[i]);
}

TEST(Compact, EmptySetStaysEmpty) {
  const Netlist nl = make_c17();
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  const TestSet none(nl.num_inputs());
  EXPECT_EQ(compact_reverse(nl, faults, none).size(), 0u);
}

// -------------------------------------------------------------- ndetect --

TEST(NDetect, ReachesTargetOnC17) {
  const Netlist nl = make_c17();
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  NDetectOptions opts;
  opts.n = 3;
  opts.seed = 7;
  const NDetectResult res = generate_ndetect(nl, faults, opts);
  EXPECT_EQ(res.untestable_faults, 0u);
  const auto counts = count_detections(nl, faults, res.tests);
  for (std::size_t i = 0; i < faults.size(); ++i)
    EXPECT_GE(counts[i], 3u) << fault_name(nl, faults[i]);
}

TEST(NDetect, TenDetectLargerThanOneDetect) {
  const Netlist nl = make_c17();
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  const DetectResult d1 = generate_detect(nl, faults, 7);
  NDetectOptions opts;
  opts.n = 10;
  opts.seed = 7;
  const NDetectResult d10 = generate_ndetect(nl, faults, opts);
  EXPECT_GT(d10.tests.size(), d1.tests.size());
}

TEST(Detect, FullCoverageAndCompaction) {
  const Netlist nl = make_c17();
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  const DetectResult res = generate_detect(nl, faults, 3);
  EXPECT_EQ(res.detected_faults, faults.size());
  EXPECT_EQ(res.untestable_faults, 0u);
  const auto counts = count_detections(nl, faults, res.tests);
  for (std::size_t i = 0; i < faults.size(); ++i) EXPECT_GT(counts[i], 0u);
}

// ---------------------------------------------------------- distinguish --

TEST(Distinguish, FindsTestForDistinguishablePair) {
  const Netlist nl = make_c17();
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  Rng rng(8);
  BitVec test;
  const auto st = distinguish_pair(nl, faults[0], faults[1], &test, rng);
  ASSERT_EQ(st, DistinguishStatus::kFound);
  const Netlist bad_a = inject_faults(nl, {to_injection(faults[0])});
  const Netlist bad_b = inject_faults(nl, {to_injection(faults[1])});
  EXPECT_NE(simulate_pattern(bad_a, test), simulate_pattern(bad_b, test));
}

TEST(Distinguish, ProvesEquivalentPairIndistinguishable) {
  // Use two faults from the same structural equivalence class.
  const Netlist nl = make_c17();
  const FaultList all = enumerate_all_faults(nl);
  const CollapseResult cr = collapse_equivalent(nl, all);
  const auto big_class =
      std::find_if(cr.class_members.begin(), cr.class_members.end(),
                   [](const auto& m) { return m.size() >= 2; });
  ASSERT_NE(big_class, cr.class_members.end());
  Rng rng(9);
  BitVec test;
  EXPECT_EQ(distinguish_pair(nl, all[(*big_class)[0]], all[(*big_class)[1]],
                             &test, rng),
            DistinguishStatus::kIndistinguishable);
}

TEST(Distinguish, SameFaultIndistinguishableFromItself) {
  const Netlist nl = make_c17();
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  Rng rng(10);
  BitVec test;
  EXPECT_EQ(distinguish_pair(nl, faults[3], faults[3], &test, rng),
            DistinguishStatus::kIndistinguishable);
}

// -------------------------------------------------------------- diagset --

// Reference: minimum achievable indistinguished pairs = those equivalent
// under the exhaustive test set.
std::uint64_t exhaustive_indistinguished(const Netlist& nl,
                                         const FaultList& faults) {
  TestSet all(nl.num_inputs());
  for (std::size_t v = 0; v < (1u << nl.num_inputs()); ++v) {
    BitVec in(nl.num_inputs());
    for (std::size_t i = 0; i < nl.num_inputs(); ++i) in.set(i, (v >> i) & 1);
    all.add(in);
  }
  const ResponseMatrix rm = build_response_matrix(nl, faults, all);
  std::vector<std::vector<ResponseId>> rows(faults.size());
  for (FaultId f = 0; f < faults.size(); ++f) {
    rows[f].resize(all.size());
    for (std::size_t t = 0; t < all.size(); ++t) rows[f][t] = rm.response(f, t);
  }
  std::uint64_t pairs = 0;
  for (FaultId a = 0; a < faults.size(); ++a)
    for (FaultId b = a + 1; b < faults.size(); ++b)
      if (rows[a] == rows[b]) ++pairs;
  return pairs;
}

TEST(DiagSet, ReachesFullResolutionOnC17) {
  const Netlist nl = make_c17();
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  DiagSetOptions opts;
  opts.seed = 11;
  const DiagSetResult res = generate_diagnostic(nl, faults, opts);
  EXPECT_EQ(res.indistinguished_pairs, exhaustive_indistinguished(nl, faults));
  EXPECT_GT(res.tests.size(), 0u);
  EXPECT_GE(res.tests.size(), res.detect_tests);
}

TEST(DiagSet, ReportedResolutionMatchesRecomputation) {
  SynthProfile p;
  p.name = "ds";
  p.inputs = 7;
  p.outputs = 3;
  p.gates = 45;
  p.seed = 77;
  const Netlist nl = full_scan(generate_synthetic(p));
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  DiagSetOptions opts;
  opts.seed = 13;
  const DiagSetResult res = generate_diagnostic(nl, faults, opts);

  // Recompute the claimed resolution from scratch.
  const ResponseMatrix rm = build_response_matrix(nl, faults, res.tests);
  std::uint64_t pairs = 0;
  for (FaultId a = 0; a < faults.size(); ++a)
    for (FaultId b = a + 1; b < faults.size(); ++b) {
      bool same = true;
      for (std::size_t t = 0; t < res.tests.size() && same; ++t)
        same = rm.response(a, t) == rm.response(b, t);
      pairs += same ? 1 : 0;
    }
  EXPECT_EQ(res.indistinguished_pairs, pairs);
}

}  // namespace
}  // namespace sddict
