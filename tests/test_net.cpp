// Networked serving tier (ISSUE 7): the poll() event-loop front end over
// DiagnosisService, exercised through real TCP sockets with the blocking
// retry/backoff client.
//
//  * byte-identity: replies over TCP (single and concurrent clients, with
//    and without injected short reads / EINTR / short writes) match the
//    direct engine rendering modulo the volatile timing line;
//  * admission control and load shedding: injected service saturation
//    (`net.submit.full`) turns into explicit `busy retry_after_ms=N`
//    replies — delivered strictly in request order behind earlier
//    replies — never a hang or silent drop, and sheds recover once
//    pressure lifts;
//  * fault isolation: a malformed datalog poisons only its own reply, an
//    oversize frame closes only its own session, a mid-frame disconnect
//    leaves other sessions untouched;
//  * reaping: idle sessions and slow-loris partial frames are closed on
//    their timeouts and tallied;
//  * drain-on-shutdown: every accepted request is answered before run()
//    returns.
//
// Registered under the "serving" ctest label; the tsan preset includes it.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bmcirc/synth.h"
#include "diag/engine.h"
#include "diag/testerlog.h"
#include "dict/full_dict.h"
#include "dict/samediff_dict.h"
#include "fault/collapse.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "serve/diagnosis_service.h"
#include "sim/response.h"
#include "sim/testset.h"
#include "store/signature_store.h"
#include "util/failpoint.h"
#include "util/rng.h"

namespace sddict {
namespace {

// ------------------------------------------------------------- fixtures --

ResponseMatrix net_matrix() {
  SynthProfile profile;
  profile.name = "net";
  profile.inputs = 10;
  profile.outputs = 4;
  profile.dffs = 0;
  profile.gates = 80;
  profile.seed = 0x5e2e;
  const Netlist nl = generate_synthetic(profile);
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  TestSet tests(nl.num_inputs());
  Rng rng(9);
  tests.add_random(40, rng);
  ResponseMatrixStatus status;
  return build_response_matrix(nl, faults, tests, {.store_diff_outputs = true},
                               &status);
}

const ResponseMatrix& rm() {
  static const ResponseMatrix m = net_matrix();
  return m;
}

const SameDifferentDictionary& sd() {
  static const SameDifferentDictionary d = SameDifferentDictionary::build(
      rm(), std::vector<ResponseId>(rm().num_tests(), 0));
  return d;
}

std::vector<Observed> fault_observation(FaultId f) {
  static const FullDictionary full = FullDictionary::build(rm());
  std::vector<ResponseId> obs(rm().num_tests());
  for (std::size_t t = 0; t < rm().num_tests(); ++t) obs[t] = full.entry(f, t);
  return qualify(obs);
}

std::string frame_text(const std::vector<Observed>& obs) {
  std::ostringstream os;
  write_testerlog(os, obs);
  return os.str();
}

// Reply canonicalization: everything but the volatile timing line.
std::string canonical(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& l : lines)
    if (l.rfind("timing ", 0) != 0) out += l + "\n";
  return out;
}

// What the serial path would answer, rendered through the same shared
// protocol code the server uses.
std::string expected_reply(const std::vector<Observed>& obs) {
  ServiceResponse r;
  r.diagnosis = diagnose_observed(sd(), obs);
  std::ostringstream os;
  net::write_response(os, r, /*dropped=*/0);
  std::istringstream is(os.str());
  std::vector<std::string> lines;
  for (std::string line; std::getline(is, line);) lines.push_back(line);
  return canonical(lines);
}

// An in-process server on an ephemeral TCP port with run() on a
// background thread. The service is gate-configured (batch = 1, cache
// off) so every networked reply must be bit-identical to the direct call.
class TestServer {
 public:
  explicit TestServer(net::NetServerOptions nopts = {},
                      ServiceOptions sopts = gate_options()) {
    service_ = std::make_unique<DiagnosisService>(SignatureStore::build(sd()),
                                                  sopts);
    backend_.svc = service_.get();
    nopts.tcp_port = 0;
    server_ = std::make_unique<net::NetServer>(backend_, nopts);
    server_->start();
    thread_ = std::thread([this] { server_->run(); });
  }

  ~TestServer() { stop(); }

  void stop() {
    if (thread_.joinable()) {
      server_->request_stop();
      thread_.join();
    }
  }

  static ServiceOptions gate_options() {
    ServiceOptions o;
    o.threads = 1;
    o.batch = 1;
    o.cache = 0;
    return o;
  }

  int port() const { return server_->tcp_port(); }
  net::NetStats stats() const { return server_->stats(); }
  net::NetServer& server() { return *server_; }
  net::Client connect() { return net::Client::connect_tcp("127.0.0.1", port(), 10); }

  // Stats are published once per loop iteration; spin until `pred` sees a
  // satisfying snapshot or the deadline passes.
  bool wait_stats(const std::function<bool(const net::NetStats&)>& pred,
                  double timeout_s = 5.0) const {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(timeout_s);
    while (std::chrono::steady_clock::now() < deadline) {
      if (pred(server_->stats())) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return pred(server_->stats());
  }

 private:
  struct StoreBackend : net::NetServer::Backend {
    DiagnosisService* svc = nullptr;
    DiagnosisService& service() override { return *svc; }
    bool handle_admin(const std::vector<std::string>&, std::ostream&) override {
      return false;
    }
  };

  std::unique_ptr<DiagnosisService> service_;
  StoreBackend backend_;
  std::unique_ptr<net::NetServer> server_;
  std::thread thread_;
};

// Process-global failpoints must never leak across tests.
struct FailpointGuard {
  ~FailpointGuard() { failpoint::disarm_all(); }
};

// --------------------------------------------------------- byte identity --

TEST(NetServing, SingleClientMatchesDirectEngine) {
  TestServer server;
  net::Client client = server.connect();
  Rng rng(0x71);
  for (int i = 0; i < 6; ++i) {
    const auto obs =
        fault_observation(static_cast<FaultId>(rng.below(rm().num_faults())));
    const net::Reply reply = client.request(frame_text(obs));
    EXPECT_FALSE(reply.busy);
    EXPECT_FALSE(reply.error);
    EXPECT_EQ(canonical(reply.lines), expected_reply(obs)) << "request " << i;
  }
  // The in-band stats command answers with one line, service counters
  // first, net counters after.
  const std::string stats_line = client.command_line("stats");
  EXPECT_EQ(stats_line.rfind("stats requests=", 0), 0u) << stats_line;
  EXPECT_NE(stats_line.find(" busy_shed="), std::string::npos) << stats_line;
  // Admin verbs need repo mode: explicit error, session survives.
  const net::Reply admin = client.request("!list\n");
  EXPECT_TRUE(admin.error);
  // quit closes the connection after the reply queue flushes.
  client.send_raw("quit\n");
  EXPECT_THROW(client.read_line(), std::runtime_error);
}

TEST(NetServing, ConcurrentClientsStayByteIdentical) {
  TestServer server;
  constexpr int kClients = 4;
  constexpr int kRequests = 5;
  std::vector<std::string> failures(kClients);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      try {
        net::Client client = server.connect();
        Rng rng(0x100 + static_cast<std::uint64_t>(c));
        for (int i = 0; i < kRequests; ++i) {
          const auto obs = fault_observation(
              static_cast<FaultId>(rng.below(rm().num_faults())));
          net::BackoffPolicy policy;
          policy.seed = static_cast<std::uint64_t>(c) * 97 + 1;
          const net::Reply reply =
              client.request_with_retry(frame_text(obs), policy);
          if (reply.busy || reply.error ||
              canonical(reply.lines) != expected_reply(obs)) {
            failures[c] = "client " + std::to_string(c) + " request " +
                          std::to_string(i) + " diverged";
            return;
          }
        }
      } catch (const std::exception& e) {
        failures[c] = e.what();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const std::string& f : failures) EXPECT_EQ(f, "");
  const net::NetStats s = server.stats();
  EXPECT_EQ(s.accepted, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(s.frames, static_cast<std::uint64_t>(kClients * kRequests));
}

TEST(NetServing, InjectedIoFaultsPreserveByteIdentity) {
  FailpointGuard guard;
  TestServer server;
  net::Client client = server.connect();
  // Degrade both directions of both endpoints: every 3rd read is clamped
  // to one byte, every 5th gets a spurious EINTR (retried internally),
  // writes likewise. The replies must not change by a single byte.
  failpoint::arm_cyclic("net.read.short", 3);
  failpoint::arm_cyclic("net.read.eintr", 5);
  failpoint::arm_cyclic("net.write.short", 3);
  failpoint::arm_cyclic("net.write.eintr", 7);
  Rng rng(0x72);
  for (int i = 0; i < 6; ++i) {
    const auto obs =
        fault_observation(static_cast<FaultId>(rng.below(rm().num_faults())));
    const net::Reply reply = client.request(frame_text(obs));
    EXPECT_FALSE(reply.busy);
    EXPECT_FALSE(reply.error);
    EXPECT_EQ(canonical(reply.lines), expected_reply(obs)) << "request " << i;
  }
}

// ------------------------------------------------- shedding and recovery --

TEST(NetServing, SaturationShedsExplicitlyOldestFirstAndRecovers) {
  FailpointGuard guard;
  net::NetServerOptions nopts;
  nopts.max_pending = 0;  // any undispatchable request sheds immediately
  TestServer server(nopts);
  net::Client client = server.connect();
  const auto obs = fault_observation(1);

  // While the service pretends to be saturated every request is shed with
  // an explicit busy reply — not a hang, not a dropped connection.
  failpoint::arm_cyclic("net.submit.full", 1);
  for (int i = 0; i < 3; ++i) {
    const net::Reply reply = client.request(frame_text(obs));
    ASSERT_TRUE(reply.busy) << "request " << i;
    EXPECT_GT(reply.retry_after_ms, 0u);
    EXPECT_EQ(reply.lines.back(), "done");
  }
  EXPECT_TRUE(server.wait_stats(
      [](const net::NetStats& s) { return s.busy_shed >= 3; }));

  // Pressure lifts: the same client's next request goes through.
  failpoint::disarm("net.submit.full");
  const net::Reply ok = client.request(frame_text(obs));
  EXPECT_FALSE(ok.busy);
  EXPECT_EQ(canonical(ok.lines), expected_reply(obs));

  // The retrying client rides busy replies to success on its own.
  failpoint::arm("net.submit.full", 1);  // one-shot: first attempt sheds
  net::BackoffPolicy policy;
  policy.base_ms = 1;
  const net::Reply retried = client.request_with_retry(frame_text(obs), policy);
  EXPECT_FALSE(retried.busy);
  EXPECT_GE(retried.busy_retries, 1);
  EXPECT_EQ(canonical(retried.lines), expected_reply(obs));
}

TEST(NetServing, SessionInflightCapShedsInReplyOrder) {
  FailpointGuard guard;
  net::NetServerOptions nopts;
  nopts.session_inflight = 1;
  nopts.max_pending = 128;
  TestServer server(nopts);
  net::Client client = server.connect();
  const auto obs = fault_observation(2);

  // Hold the first request undispatchable so the pipelined second one
  // deterministically exceeds the per-session cap.
  failpoint::arm_cyclic("net.submit.full", 1);
  const std::string frame = frame_text(obs);
  client.send_raw(frame + frame);
  ASSERT_TRUE(server.wait_stats(
      [](const net::NetStats& s) { return s.frames >= 2; }));
  failpoint::disarm("net.submit.full");

  // Replies must come back in request order: the first request's full
  // diagnosis, then the second's busy — the busy never overtakes.
  const net::Reply first = client.read_reply();
  EXPECT_FALSE(first.busy);
  EXPECT_EQ(canonical(first.lines), expected_reply(obs));
  const net::Reply second = client.read_reply();
  EXPECT_TRUE(second.busy);
  const net::NetStats s = server.stats();
  EXPECT_GE(s.busy_shed, 1u);
}

// --------------------------------------------------------- fault isolation --

TEST(NetServing, MalformedFramePoisonsOnlyItsOwnReply) {
  TestServer server;
  net::Client client = server.connect();
  // No testerlog header: a structural defect even the recovery-mode
  // reader rejects.
  const net::Reply bad = client.request("t 0 garbage\nend\n");
  EXPECT_TRUE(bad.error);
  EXPECT_EQ(bad.lines.back(), "done");
  // The session survives and serves the next request correctly.
  const auto obs = fault_observation(3);
  const net::Reply good = client.request(frame_text(obs));
  EXPECT_FALSE(good.error);
  EXPECT_EQ(canonical(good.lines), expected_reply(obs));
  EXPECT_TRUE(server.wait_stats(
      [](const net::NetStats& s) { return s.malformed >= 1; }));
}

TEST(NetServing, OversizeFrameGetsErrorThenClose) {
  net::NetServerOptions nopts;
  nopts.max_frame_bytes = 1024;  // bigger than any legitimate fixture frame
  TestServer server(nopts);
  net::Client oversized = server.connect();
  // One endless line; no newline needed to trip the cap.
  oversized.send_raw(std::string(4096, 'x'));
  const net::Reply reply = oversized.read_reply();
  EXPECT_TRUE(reply.error);
  EXPECT_NE(reply.error_text.find("exceeds"), std::string::npos);
  // The offending session is closed...
  EXPECT_THROW(oversized.read_line(), std::runtime_error);
  // ...but a well-behaved one is not.
  net::Client polite = server.connect();
  const auto obs = fault_observation(4);
  EXPECT_EQ(canonical(polite.request(frame_text(obs)).lines),
            expected_reply(obs));
  EXPECT_TRUE(server.wait_stats(
      [](const net::NetStats& s) { return s.oversize >= 1; }));
}

TEST(NetServing, MidFrameDisconnectIsIsolated) {
  TestServer server;
  {
    net::Client dying = server.connect();
    dying.send_raw("sddict testerlog v1\ntests 10\nt 0 1\n");  // no `end`
    // Destructor closes mid-frame.
  }
  EXPECT_TRUE(server.wait_stats(
      [](const net::NetStats& s) { return s.midframe_disconnects >= 1; }));
  net::Client client = server.connect();
  const auto obs = fault_observation(5);
  EXPECT_EQ(canonical(client.request(frame_text(obs)).lines),
            expected_reply(obs));
}

// ------------------------------------------------------------ health probe --

TEST(NetServing, HealthVerbAnswersOneMachineReadableLine) {
  TestServer server;
  net::Client client = server.connect();
  // One line, no `done`: shaped for the fleet proxy's rotation and drain
  // decisions. Store mode has no repository version to report.
  const std::string line = client.command_line("!health");
  EXPECT_EQ(line.rfind("health state=ok ", 0), 0u) << line;
  EXPECT_NE(line.find(" queue_depth=0"), std::string::npos) << line;
  EXPECT_NE(line.find(" in_flight=0"), std::string::npos) << line;
  EXPECT_NE(line.find(" epoch=0"), std::string::npos) << line;
  EXPECT_NE(line.find(" version=0"), std::string::npos) << line;
  // The session is fully usable afterwards — nothing queued behind the
  // one-liner.
  const auto obs = fault_observation(7);
  EXPECT_EQ(canonical(client.request(frame_text(obs)).lines),
            expected_reply(obs));
}

// ----------------------------------------------------------- retry backoff --

TEST(NetClient, BackoffNeverSleepsBelowServerHint) {
  // Regression: the jitter used to scale the WHOLE delay into
  // [0.5, 1.0]x, so a client could sleep less than the server's
  // retry_after_ms floor and earn an immediate re-shed. Only the excess
  // above the hint is jittered now.
  for (const double u : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    // Hint above the client's own backoff: the hint is the floor.
    EXPECT_GE(net::compute_backoff_delay_ms(50, 10, 1000, u), 50.0);
    // Hint below the backoff: never under the hint, never over the
    // un-jittered target.
    const double d = net::compute_backoff_delay_ms(50, 200, 1000, u);
    EXPECT_GE(d, 50.0);
    EXPECT_LE(d, 200.0);
  }
  // u sweeps exactly the [hint + excess/2, target] range.
  EXPECT_DOUBLE_EQ(net::compute_backoff_delay_ms(50, 200, 1000, 0.0), 125.0);
  EXPECT_DOUBLE_EQ(net::compute_backoff_delay_ms(50, 200, 1000, 1.0), 200.0);
  // The cap bounds the backoff but can never undercut the server's hint.
  EXPECT_DOUBLE_EQ(net::compute_backoff_delay_ms(500, 800, 300, 1.0), 500.0);
}

// ----------------------------------------------------------------- reaping --

TEST(NetServing, IdleAndSlowLorisSessionsAreReaped) {
  net::NetServerOptions nopts;
  nopts.idle_timeout_ms = 40;
  nopts.frame_timeout_ms = 40;
  TestServer server(nopts);
  net::Client idle = server.connect();
  net::Client loris = server.connect();
  loris.send_raw("sddict testerlog v1\n");  // open frame, then dribble nothing
  EXPECT_TRUE(server.wait_stats([](const net::NetStats& s) {
    return s.idle_reaped >= 1 && s.frame_reaped >= 1;
  }));
  EXPECT_TRUE(server.wait_stats(
      [](const net::NetStats& s) { return s.active_sessions == 0; }));
}

// ------------------------------------------------------------------- drain --

TEST(NetServing, DrainAnswersEveryAcceptedRequest) {
  TestServer server;
  net::Client client = server.connect();
  const auto obs = fault_observation(6);
  const std::string frame = frame_text(obs);
  client.send_raw(frame + frame + frame);
  // Stop only after the server has accepted all three frames; drain mode
  // stops reading but must answer everything already parsed.
  ASSERT_TRUE(server.wait_stats(
      [](const net::NetStats& s) { return s.frames >= 3; }));
  server.server().request_stop();
  for (int i = 0; i < 3; ++i) {
    const net::Reply reply = client.read_reply();
    EXPECT_FALSE(reply.busy) << "reply " << i;
    EXPECT_EQ(canonical(reply.lines), expected_reply(obs)) << "reply " << i;
  }
  server.stop();  // joins run(); must not hang
  const net::NetStats s = server.stats();
  EXPECT_GE(s.responses, 3u);
  EXPECT_EQ(s.active_sessions, 0u);
  EXPECT_EQ(s.pending, 0u);
  EXPECT_EQ(s.in_flight, 0u);
  // The listener is gone: new connections are refused.
  EXPECT_THROW(server.connect(), std::runtime_error);
}

}  // namespace
}  // namespace sddict
