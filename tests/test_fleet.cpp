// Supervised serving fleet (ISSUE 8): the round-robin proxy with health
// probing, transparent failover and epoch-consistent hot swap, plus the
// process supervisor.
//
//  * byte identity through the proxy: replies proxied to in-process
//    NetServer backends match the direct engine rendering modulo the
//    volatile timing line, and the fleet admin verbs (`!health`,
//    `!fleet`, `stats`) answer in their documented shapes;
//  * transparent failover: with the fleet.backend.reset failpoint
//    severing backend connections mid-conversation, every request is
//    still answered exactly once with the correct ranking and the proxy
//    records failovers — the client never sees a duplicate, a hang, or
//    a half-reply;
//  * epoch-consistent flip: publishing v2 changes nothing until the
//    fleet-wide `!reload`; afterwards every reply is v2. A session
//    pipelining requests across the flip sees a monotone version
//    sequence — v1 replies, then v2 replies, never an interleave;
//  * rolling restart: `!rolling` drains and restarts every backend in
//    turn (generations bump) while the fleet keeps answering;
//  * supervisor: a kill -9'd child is reaped and respawned with a bumped
//    generation, an asked-for restart() is graceful, shutdown() leaves
//    no processes behind.
//
// Registered under the "serving" ctest label.
#include <gtest/gtest.h>

#include <signal.h>

#include <chrono>
#include <filesystem>
#include <functional>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bmcirc/synth.h"
#include "diag/engine.h"
#include "diag/testerlog.h"
#include "dict/full_dict.h"
#include "dict/samediff_dict.h"
#include "fault/collapse.h"
#include "fleet/proxy.h"
#include "fleet/supervisor.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "repo/repository.h"
#include "serve/diagnosis_service.h"
#include "sim/response.h"
#include "sim/testset.h"
#include "store/signature_store.h"
#include "util/failpoint.h"
#include "util/fileio.h"
#include "util/process.h"
#include "util/rng.h"

namespace sddict {
namespace {

// ------------------------------------------------------------- fixtures --

// Two store versions with genuinely different rankings: the same test
// count (so one tester log parses under both) over different synthesized
// circuits.
ResponseMatrix fleet_matrix(std::uint64_t seed) {
  SynthProfile profile;
  profile.name = "fleet";
  profile.inputs = 10;
  profile.outputs = 4;
  profile.dffs = 0;
  profile.gates = 80;
  profile.seed = seed;
  const Netlist nl = generate_synthetic(profile);
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  TestSet tests(nl.num_inputs());
  Rng rng(21);
  tests.add_random(40, rng);
  ResponseMatrixStatus status;
  return build_response_matrix(nl, faults, tests, {.store_diff_outputs = true},
                               &status);
}

const ResponseMatrix& rm1() {
  static const ResponseMatrix m = fleet_matrix(0xf1ee7);
  return m;
}
const ResponseMatrix& rm2() {
  static const ResponseMatrix m = fleet_matrix(0x0dd5);
  return m;
}

const SameDifferentDictionary& sd1() {
  static const SameDifferentDictionary d = SameDifferentDictionary::build(
      rm1(), std::vector<ResponseId>(rm1().num_tests(), 0));
  return d;
}
const SameDifferentDictionary& sd2() {
  static const SameDifferentDictionary d = SameDifferentDictionary::build(
      rm2(), std::vector<ResponseId>(rm2().num_tests(), 0));
  return d;
}

std::vector<Observed> fault_observation(FaultId f) {
  static const FullDictionary full = FullDictionary::build(rm1());
  std::vector<ResponseId> obs(rm1().num_tests());
  for (std::size_t t = 0; t < rm1().num_tests(); ++t)
    obs[t] = full.entry(f, t);
  return qualify(obs);
}

std::string frame_text(const std::vector<Observed>& obs) {
  std::ostringstream os;
  write_testerlog(os, obs);
  return os.str();
}

std::string canonical(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& l : lines)
    if (l.rfind("timing ", 0) != 0) out += l + "\n";
  return out;
}

// The serial reference against a given dictionary version.
std::string expected_reply(const SameDifferentDictionary& sd,
                           const std::vector<Observed>& obs) {
  ServiceResponse r;
  r.diagnosis = diagnose_observed(sd, obs);
  std::ostringstream os;
  net::write_response(os, r, /*dropped=*/0);
  std::istringstream is(os.str());
  std::vector<std::string> lines;
  for (std::string line; std::getline(is, line);) lines.push_back(line);
  return canonical(lines);
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "sddict_fleet_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

struct FailpointGuard {
  ~FailpointGuard() { failpoint::disarm_all(); }
};

// ------------------------------------------- in-process backend source --

// One in-process repo-mode backend: a NetServer over a DiagnosisService
// whose store comes from the shared repository, with `!reload` wired the
// way sddict_serve wires it (re-read manifest, swap to latest version).
struct FleetTestBackend : net::NetServer::Backend {
  DictionaryRepository* repo = nullptr;
  std::string circuit;
  std::unique_ptr<DiagnosisService> svc;
  std::uint64_t version = 0;

  FleetTestBackend(DictionaryRepository* r, std::string c) : repo(r),
                                                             circuit(c) {
    ServiceOptions sopts;
    sopts.threads = 1;
    sopts.batch = 1;
    sopts.cache = 0;  // gate config: replies must be bit-identical
    svc = std::make_unique<DiagnosisService>(
        repo->acquire(circuit, StoreSource::kSameDifferent), sopts);
    version = repo->latest_version(circuit, StoreSource::kSameDifferent);
  }
  DiagnosisService& service() override { return *svc; }
  std::uint64_t store_version() override { return version; }
  bool handle_admin(const std::vector<std::string>& tokens,
                    std::ostream& os) override {
    if (tokens.size() == 1 && tokens[0] == "!reload") {
      repo->reload();
      svc->swap_store(repo->acquire(circuit, StoreSource::kSameDifferent));
      version = repo->latest_version(circuit, StoreSource::kSameDifferent);
      os << "reloaded circuit=" << circuit << " swapped=1\n"
         << "done\n";
      return true;
    }
    return false;
  }
};

// A BackendSource over in-process NetServers: real sockets, real line
// protocol, no child processes — so tests control death and restart
// deterministically. tick()/restart() run on the proxy loop thread;
// the test's main thread uses stop_node() under the same lock.
class TestBackendSource : public fleet::BackendSource {
 public:
  TestBackendSource(DictionaryRepository* repo, std::string circuit, int n)
      : repo_(repo), circuit_(std::move(circuit)) {
    nodes_.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) start_node(i);
  }
  ~TestBackendSource() override { shutdown(); }

  void tick(double, fleet::FleetView* view) override {
    std::lock_guard<std::mutex> lk(mutex_);
    view->backends.clear();
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      const Node& n = nodes_[i];
      view->backends.push_back(fleet::FleetBackendAddr{
          static_cast<int>(i), "127.0.0.1", n.server ? n.port : -1,
          n.generation, static_cast<pid_t>(1000 + i)});
    }
    view->respawns = respawns_;
  }

  bool restart(int id) override {
    std::lock_guard<std::mutex> lk(mutex_);
    stop_node_locked(id);
    start_node_locked(id);
    return true;
  }

  void shutdown() override {
    std::lock_guard<std::mutex> lk(mutex_);
    for (std::size_t i = 0; i < nodes_.size(); ++i)
      stop_node_locked(static_cast<int>(i));
  }

  // Test hooks.
  void start_node(int id) {
    std::lock_guard<std::mutex> lk(mutex_);
    start_node_locked(id);
  }
  std::uint64_t generation(int id) {
    std::lock_guard<std::mutex> lk(mutex_);
    return nodes_[static_cast<std::size_t>(id)].generation;
  }

 private:
  struct Node {
    std::unique_ptr<FleetTestBackend> backend;
    std::unique_ptr<net::NetServer> server;
    std::thread thread;
    int port = -1;
    std::uint64_t generation = 0;
  };

  void start_node_locked(int id) {
    Node& n = nodes_[static_cast<std::size_t>(id)];
    if (n.server) return;
    n.backend = std::make_unique<FleetTestBackend>(repo_, circuit_);
    net::NetServerOptions nopts;
    nopts.tcp_port = 0;
    n.server = std::make_unique<net::NetServer>(*n.backend, nopts);
    n.server->start();
    n.port = n.server->tcp_port();
    n.thread = std::thread([srv = n.server.get()] { srv->run(); });
    ++n.generation;
    if (n.generation > 1) ++respawns_;
  }

  void stop_node_locked(int id) {
    Node& n = nodes_[static_cast<std::size_t>(id)];
    if (!n.server) return;
    n.server->request_stop();
    n.thread.join();
    n.server.reset();
    n.backend.reset();
    n.port = -1;
  }

  DictionaryRepository* repo_;
  std::string circuit_;
  std::mutex mutex_;
  std::vector<Node> nodes_;
  std::uint64_t respawns_ = 0;
};

// Fleet-under-test: a shared repository with v1 published, N in-process
// backends, and the proxy on a background thread.
class TestFleet {
 public:
  explicit TestFleet(const std::string& name, int backends = 2,
                     fleet::ProxyOptions popts = tuned_options()) {
    dir_ = fresh_dir(name);
    repo_ = std::make_unique<DictionaryRepository>(dir_);
    repo_->publish("fleet", StoreSource::kSameDifferent,
                   SignatureStore::build(sd1()), Provenance{});
    source_ =
        std::make_unique<TestBackendSource>(repo_.get(), "fleet", backends);
    proxy_ = std::make_unique<fleet::FleetProxy>(*source_, popts);
    proxy_->start();
    thread_ = std::thread([this] { proxy_->run(); });
  }

  ~TestFleet() { stop(); }

  void stop() {
    if (thread_.joinable()) {
      proxy_->request_stop();
      thread_.join();
      source_->shutdown();
    }
  }

  static fleet::ProxyOptions tuned_options() {
    fleet::ProxyOptions p;
    p.probe_interval_ms = 25;  // heal fast: tests wait on reinstatement
    p.probation_ms = 50;
    p.max_failovers = 10;
    return p;
  }

  DictionaryRepository& repo() { return *repo_; }
  TestBackendSource& source() { return *source_; }
  fleet::FleetProxy& proxy() { return *proxy_; }
  net::Client connect() {
    return net::Client::connect_tcp("127.0.0.1", proxy_->tcp_port(), 10);
  }
  void publish_v2() {
    repo_->publish("fleet", StoreSource::kSameDifferent,
                   SignatureStore::build(sd2()), Provenance{});
  }

  bool wait_stats(const std::function<bool(const fleet::ProxyStats&)>& pred,
                  double timeout_s = 5.0) const {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(timeout_s);
    while (std::chrono::steady_clock::now() < deadline) {
      if (pred(proxy_->stats())) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return pred(proxy_->stats());
  }

 private:
  std::string dir_;
  std::unique_ptr<DictionaryRepository> repo_;
  std::unique_ptr<TestBackendSource> source_;
  std::unique_ptr<fleet::FleetProxy> proxy_;
  std::thread thread_;
};

// ----------------------------------------------------- proxy basics ------

TEST(FleetProxying, ProxiedRepliesMatchDirectEngine) {
  TestFleet fleet("basic");
  ASSERT_TRUE(fleet.wait_stats(
      [](const fleet::ProxyStats& s) { return s.backends_healthy == 2; }));
  net::Client client = fleet.connect();
  Rng rng(0x81);
  for (int i = 0; i < 8; ++i) {
    const auto obs =
        fault_observation(static_cast<FaultId>(rng.below(rm1().num_faults())));
    const net::Reply reply = client.request(frame_text(obs));
    EXPECT_FALSE(reply.busy);
    EXPECT_FALSE(reply.error);
    EXPECT_EQ(canonical(reply.lines), expected_reply(sd1(), obs))
        << "request " << i;
  }
  // Both backends took work: 8 requests round-robin over 2 healthy
  // backends cannot land on one.
  std::string fleet_lines;
  const net::Reply fl = client.request("!fleet\n");
  for (const std::string& l : fl.lines) fleet_lines += l + "\n";
  EXPECT_NE(fleet_lines.find("state=healthy"), std::string::npos)
      << fleet_lines;
  // The one-line admin verbs answer without `done`.
  const std::string health = client.command_line("!health");
  EXPECT_EQ(health.rfind("health state=ok healthy=2 total=2", 0), 0u)
      << health;
  const std::string stats = client.command_line("stats");
  EXPECT_EQ(stats.rfind("stats accepted=", 0), 0u) << stats;
  // Unknown verbs get an explicit error; the session survives.
  const net::Reply bad = client.request("!frobnicate\n");
  EXPECT_TRUE(bad.error);
  const auto obs = fault_observation(1);
  EXPECT_EQ(canonical(client.request(frame_text(obs)).lines),
            expected_reply(sd1(), obs));
}

TEST(FleetProxying, MalformedFrameAnswersThroughBackend) {
  TestFleet fleet("malformed");
  ASSERT_TRUE(fleet.wait_stats(
      [](const fleet::ProxyStats& s) { return s.backends_healthy == 2; }));
  net::Client client = fleet.connect();
  const net::Reply bad = client.request("t 0 garbage\nend\n");
  EXPECT_TRUE(bad.error);  // the backend's parse error, proxied verbatim
  const auto obs = fault_observation(2);
  EXPECT_EQ(canonical(client.request(frame_text(obs)).lines),
            expected_reply(sd1(), obs));
}

// --------------------------------------------------------- failover ------

TEST(FleetProxying, FailoverAnswersEveryRequestExactlyOnce) {
  FailpointGuard guard;
  TestFleet fleet("failover");
  ASSERT_TRUE(fleet.wait_stats(
      [](const fleet::ProxyStats& s) { return s.backends_healthy == 2; }));
  net::Client client = fleet.connect();
  // Every 5th backend-connection write severs the connection: requests
  // outstanding on it fail over and are re-dealt. Each request still gets
  // exactly one, correct reply.
  failpoint::arm_cyclic("fleet.backend.reset", 5);
  Rng rng(0x82);
  for (int i = 0; i < 25; ++i) {
    const auto obs =
        fault_observation(static_cast<FaultId>(rng.below(rm1().num_faults())));
    const net::Reply reply = client.request(frame_text(obs));
    ASSERT_FALSE(reply.busy) << "request " << i;
    ASSERT_FALSE(reply.error) << "request " << i;
    EXPECT_EQ(canonical(reply.lines), expected_reply(sd1(), obs))
        << "request " << i;
  }
  failpoint::disarm("fleet.backend.reset");
  const fleet::ProxyStats s = fleet.proxy().stats();
  EXPECT_GE(s.failovers, 1u);
  EXPECT_GE(s.backend_disconnects, 1u);
  // Exactly-once: one reply record per request plus the session's own
  // verb replies — nothing extra ever hit the wire (the client would have
  // thrown on an unexpected line), and nothing was dropped.
  EXPECT_EQ(s.in_flight, 0u);
  EXPECT_EQ(s.pending, 0u);
}

TEST(FleetProxying, DeadBackendHealsAndReenters) {
  TestFleet fleet("heal");
  ASSERT_TRUE(fleet.wait_stats(
      [](const fleet::ProxyStats& s) { return s.backends_healthy == 2; }));
  // Simulate a crash + supervisor respawn: node 0 goes away and comes
  // back with a bumped generation.
  fleet.source().restart(0);
  ASSERT_TRUE(fleet.wait_stats(
      [](const fleet::ProxyStats& s) { return s.respawns >= 1; }));
  ASSERT_TRUE(fleet.wait_stats(
      [](const fleet::ProxyStats& s) { return s.backends_healthy == 2; }));
  EXPECT_EQ(fleet.source().generation(0), 2u);
  net::Client client = fleet.connect();
  const auto obs = fault_observation(3);
  EXPECT_EQ(canonical(client.request(frame_text(obs)).lines),
            expected_reply(sd1(), obs));
}

// -------------------------------------------------------- epoch flip ------

TEST(FleetProxying, EpochFlipIsFleetWideAndMonotone) {
  TestFleet fleet("flip");
  ASSERT_TRUE(fleet.wait_stats(
      [](const fleet::ProxyStats& s) { return s.backends_healthy == 2; }));
  net::Client client = fleet.connect();
  const auto obs = fault_observation(5);
  const std::string v1 = expected_reply(sd1(), obs);
  const std::string v2 = expected_reply(sd2(), obs);
  ASSERT_NE(v1, v2) << "fixture defect: versions must rank differently";

  // Publishing alone changes nothing: the fleet still serves v1.
  fleet.publish_v2();
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(canonical(client.request(frame_text(obs)).lines), v1);

  // A pipelined burst straddling the flip: requests, the flip, more
  // requests — all on one session. The version sequence must be monotone
  // (v1...v1, v2...v2) and everything after the reload ack must be v2.
  std::string burst;
  for (int i = 0; i < 3; ++i) burst += frame_text(obs);
  burst += "!reload\n";
  for (int i = 0; i < 3; ++i) burst += frame_text(obs);
  client.send_raw(burst);
  bool flipped = false;
  for (int i = 0; i < 3; ++i) {
    const std::string got = canonical(client.read_reply().lines);
    if (got == v2) flipped = true;
    EXPECT_EQ(got, flipped ? v2 : v1) << "pre-flip reply " << i;
  }
  const net::Reply ack = client.read_reply();
  ASSERT_FALSE(ack.error);
  EXPECT_EQ(ack.lines.front().rfind("reloaded backends=", 0), 0u)
      << ack.lines.front();
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(canonical(client.read_reply().lines), v2)
        << "post-flip reply " << i;

  // Counters are published once per loop tick, so the ack can outrun the
  // snapshot by one iteration — poll rather than read once.
  EXPECT_TRUE(fleet.wait_stats(
      [](const fleet::ProxyStats& s) { return s.flips == 1; }));

  // A backend joining after the flip (fresh generation) must enter at v2:
  // the entry reload re-proves the version before it serves.
  fleet.source().restart(0);
  ASSERT_TRUE(fleet.wait_stats(
      [](const fleet::ProxyStats& s) { return s.backends_healthy == 2; }));
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(canonical(client.request(frame_text(obs)).lines), v2);
}

// ---------------------------------------------------- rolling restart ------

TEST(FleetProxying, RollingRestartCyclesEveryBackend) {
  TestFleet fleet("rolling");
  ASSERT_TRUE(fleet.wait_stats(
      [](const fleet::ProxyStats& s) { return s.backends_healthy == 2; }));
  net::Client client = fleet.connect();
  const net::Reply reply = client.request("!rolling\n");
  ASSERT_FALSE(reply.error) << reply.error_text;
  EXPECT_EQ(reply.lines.front(), "rolling restarted=2");
  EXPECT_EQ(fleet.source().generation(0), 2u);
  EXPECT_EQ(fleet.source().generation(1), 2u);
  // Same one-tick snapshot lag as the flip counter: poll, don't read once.
  EXPECT_TRUE(fleet.wait_stats(
      [](const fleet::ProxyStats& s) { return s.rolling_restarts == 1; }));
  // The fleet still serves.
  const auto obs = fault_observation(7);
  EXPECT_EQ(canonical(client.request(frame_text(obs)).lines),
            expected_reply(sd1(), obs));
}

// ------------------------------------------------------------- drain ------

TEST(FleetProxying, DrainAnswersEveryAcceptedRequest) {
  TestFleet fleet("drain");
  ASSERT_TRUE(fleet.wait_stats(
      [](const fleet::ProxyStats& s) { return s.backends_healthy == 2; }));
  net::Client client = fleet.connect();
  const auto obs = fault_observation(6);
  const std::string frame = frame_text(obs);
  client.send_raw(frame + frame + frame);
  ASSERT_TRUE(fleet.wait_stats(
      [](const fleet::ProxyStats& s) { return s.accepted >= 1; }));
  fleet.proxy().request_stop();
  for (int i = 0; i < 3; ++i) {
    const net::Reply reply = client.read_reply();
    EXPECT_FALSE(reply.busy) << "reply " << i;
    EXPECT_EQ(canonical(reply.lines), expected_reply(sd1(), obs))
        << "reply " << i;
  }
  fleet.stop();  // joins run(); must not hang
  const fleet::ProxyStats s = fleet.proxy().stats();
  EXPECT_EQ(s.active_sessions, 0u);
  EXPECT_EQ(s.pending, 0u);
  EXPECT_EQ(s.in_flight, 0u);
}

// --------------------------------------------------------- supervisor ------

// /bin/sh stands in for sddict_serve: the supervisor appends
// `--tcp=0 --port-file=PATH` after the configured args `-c SCRIPT`, so
// inside the script $0 is "--tcp=0" and $1 is "--port-file=PATH".
constexpr const char* kFakeBackendScript =
    "pf=\"${1#--port-file=}\"; printf '127.0.0.1:1234\\n' > \"$pf.tmp\"; "
    "mv \"$pf.tmp\" \"$pf\"; trap 'exit 0' TERM; while :; do sleep 0.05; "
    "done";

double mono_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Drive tick() until `pred` holds on the view or the deadline passes.
bool tick_until(fleet::Supervisor& sup,
                const std::function<bool(const fleet::FleetView&)>& pred,
                double timeout_s = 10.0) {
  fleet::FleetView view;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  for (;;) {
    sup.tick(mono_ms(), &view);
    if (pred(view)) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

TEST(FleetSupervisor, RespawnsKill9AndRestartsGracefully) {
  fleet::SupervisorOptions sopts;
  sopts.serve_binary = "/bin/sh";
  sopts.backend_args = {"-c", kFakeBackendScript};
  sopts.state_dir = fresh_dir("supervisor");
  sopts.backends = 1;
  sopts.respawn_min_ms = 20;
  sopts.respawn_max_ms = 200;
  fleet::Supervisor sup(sopts);

  // First spawn: up with the port the fake wrote, generation 1.
  ASSERT_TRUE(tick_until(sup, [](const fleet::FleetView& v) {
    return v.backends.size() == 1 && v.backends[0].port == 1234;
  }));
  fleet::FleetView view;
  sup.tick(mono_ms(), &view);
  EXPECT_EQ(view.backends[0].generation, 1u);
  const pid_t first_pid = view.backends[0].pid;
  ASSERT_GT(first_pid, 0);

  // kill -9: reaped, respawned, generation bumps, respawns counts it.
  ASSERT_TRUE(proc::send_signal(first_pid, SIGKILL));
  ASSERT_TRUE(tick_until(sup, [](const fleet::FleetView& v) {
    return v.backends[0].port == 1234 && v.backends[0].generation == 2;
  }));
  EXPECT_EQ(sup.respawns(), 1u);
  sup.tick(mono_ms(), &view);
  EXPECT_NE(view.backends[0].pid, first_pid);
  EXPECT_TRUE(proc::alive(view.backends[0].pid));

  // restart(): graceful SIGTERM (the fake traps it and exits 0), then a
  // fresh generation.
  ASSERT_TRUE(sup.restart(0));
  ASSERT_TRUE(tick_until(sup, [](const fleet::FleetView& v) {
    return v.backends[0].port == 1234 && v.backends[0].generation == 3;
  }));
  EXPECT_EQ(sup.respawns(), 2u);

  // shutdown() leaves nothing behind.
  sup.tick(mono_ms(), &view);
  const pid_t last_pid = view.backends[0].pid;
  sup.shutdown();
  EXPECT_FALSE(proc::alive(last_pid));
}

TEST(FleetSupervisor, SpawnFailureBacksOffInsteadOfSpinning) {
  fleet::SupervisorOptions sopts;
  sopts.serve_binary = "/nonexistent/sddict_serve";
  sopts.backend_args = {};
  sopts.state_dir = fresh_dir("supervisor_bad");
  sopts.backends = 1;
  sopts.respawn_min_ms = 20;
  sopts.respawn_max_ms = 100;
  fleet::Supervisor sup(sopts);
  fleet::FleetView view;
  // The exec fails (child exits 127); the port never appears and the
  // supervisor keeps the backend in backoff rather than wedging or
  // crashing.
  const double start = mono_ms();
  while (mono_ms() - start < 300) {
    sup.tick(mono_ms(), &view);
    ASSERT_EQ(view.backends[0].port, -1);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  sup.shutdown();
}

}  // namespace
}  // namespace sddict
