// Robustness suite (ISSUE: bounded, cancellable, fail-safe construction):
//
//  * ThreadPool exception safety — a throwing task is captured and rethrown
//    at the join point, siblings are cancelled, and the pool stays usable;
//  * RunBudget / BudgetScope semantics and the anytime guarantees of every
//    budgeted entry point (fault simulation, ATPG, Procedures 1 and 2),
//    including the Procedure-1 differential: a deadline-expired run is
//    bit-identical to an unbudgeted run truncated at the same restart
//    index, at one thread and at eight;
//  * fault injection through library failpoints (src/util/failpoint.h) and
//    failing stream buffers (tests/faultinject.h): injected faults surface
//    as typed errors, never aborts, and the system works again afterwards;
//  * serialization hardening — v2 round trips for all four dictionary
//    types, degenerate shapes, v1 back-compat, and a deterministic mutation
//    fuzzer (every truncation and every single-byte flip of a v2 file must
//    be rejected with std::runtime_error).
//
// Registered under the ctest labels "robustness" and "concurrency" so the
// sanitizer presets pick it up.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bmcirc/registry.h"
#include "bmcirc/synth.h"
#include "core/baseline.h"
#include "core/multibaseline.h"
#include "core/procedure2.h"
#include "diag/engine.h"
#include "diag/observe.h"
#include "diag/testerlog.h"
#include "dict/firstfail_dict.h"
#include "fault/bridge.h"
#include "dict/full_dict.h"
#include "dict/multibaseline_dict.h"
#include "dict/passfail_dict.h"
#include "dict/samediff_dict.h"
#include "dict/serialize.h"
#include "fault/collapse.h"
#include "faultinject.h"
#include "netlist/transform.h"
#include "sim/response.h"
#include "tgen/diagset.h"
#include "tgen/ndetect.h"
#include "tgen/podem.h"
#include "util/budget.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/threadpool.h"

namespace sddict {
namespace {

using testing::FailAfterWriteBuf;
using testing::ScopedFailPoint;
using testing::ThrowAfterReadBuf;
using testing::flip_byte;

// ------------------------------------------------------------- fixtures --

struct Workload {
  Netlist nl;
  FaultList faults;
  TestSet tests;
};

Workload synth_workload(std::size_t gates, std::size_t num_tests,
                        std::uint64_t seed) {
  SynthProfile profile;
  profile.name = "rob";
  profile.inputs = 12;
  profile.outputs = 5;
  profile.dffs = 0;
  profile.gates = gates;
  profile.seed = seed;
  Workload w{generate_synthetic(profile), FaultList{}, TestSet{0}};
  w.faults = collapsed_fault_list(w.nl).collapsed;
  w.tests = TestSet(w.nl.num_inputs());
  Rng rng(seed);
  w.tests.add_random(num_tests, rng);
  return w;
}

// The paper's worked example: four faults, two tests, two outputs. Small
// enough that the fuzzers below can afford to re-parse the serialized file
// once per byte.
ResponseMatrix paper_example() {
  const std::vector<BitVec> ff = {BitVec::from_string("00"),
                                  BitVec::from_string("00")};
  const std::vector<std::vector<BitVec>> faulty = {
      {BitVec::from_string("10"), BitVec::from_string("11")},
      {BitVec::from_string("00"), BitVec::from_string("10")},
      {BitVec::from_string("01"), BitVec::from_string("10")},
      {BitVec::from_string("01"), BitVec::from_string("00")},
  };
  return response_matrix_from_table(ff, faulty);
}

RunBudget cancelled_budget() {
  RunBudget b;
  b.cancel.cancel();
  return b;
}

template <typename Dict>
std::string serialized(const Dict& d) {
  std::stringstream ss;
  write_dictionary(d, ss);
  return ss.str();
}

void expect_same_selection(const BaselineSelection& a,
                           const BaselineSelection& b, const char* what) {
  EXPECT_EQ(a.baselines, b.baselines) << what;
  EXPECT_EQ(a.distinguished_pairs, b.distinguished_pairs) << what;
  EXPECT_EQ(a.indistinguished_pairs, b.indistinguished_pairs) << what;
  EXPECT_EQ(a.calls_used, b.calls_used) << what;
}

// ------------------------------------------------ ThreadPool exceptions --

TEST(ThreadPoolRobust, PoisonedTaskAmongManySurfacesAtWaitIdle) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&ran, i] {
      if (i == 37) throw std::runtime_error("poison");
      ran.fetch_add(1);
    });
  try {
    pool.wait_idle();
    FAIL() << "wait_idle did not rethrow the poisoned task's exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "poison");
  }
  // Raw submits do not consult the cancellation flag: the other 99 all ran.
  EXPECT_EQ(ran.load(), 99);

  // The rethrow cleared the error and the cancellation it raised; the pool
  // is immediately reusable.
  for (int i = 0; i < 10; ++i)
    pool.submit([&ran] { ran.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 109);
}

TEST(ThreadPoolRobust, ParallelForBodyThrowRethrownAtBarrier) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 1000,
                                 [](std::size_t i) {
                                   if (i == 500)
                                     throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // Pool usable again, full coverage.
  std::atomic<std::size_t> count{0};
  pool.parallel_for(0, 1000, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1000u);
}

TEST(ThreadPoolRobust, ParallelForChunksThrowRethrownAtBarrier) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for_chunks(0, 512, 32,
                                        [](std::size_t b, std::size_t) {
                                          if (b >= 256)
                                            throw std::runtime_error("boom");
                                        }),
               std::runtime_error);
  std::atomic<std::size_t> covered{0};
  pool.parallel_for_chunks(0, 512, 32,
                           [&](std::size_t b, std::size_t e) {
                             covered.fetch_add(e - b);
                           });
  EXPECT_EQ(covered.load(), 512u);
}

TEST(ThreadPoolRobust, SingleWorkerInlinePathPropagatesAndRecovers) {
  ThreadPool pool(1);
  EXPECT_THROW(
      pool.parallel_for(0, 10,
                        [](std::size_t) { throw std::runtime_error("boom"); }),
      std::runtime_error);
  std::atomic<std::size_t> count{0};
  pool.parallel_for(0, 10, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10u);
}

TEST(ThreadPoolRobust, CancelSkipsBodiesResetRestores) {
  ThreadPool pool(4);
  pool.cancel();
  EXPECT_TRUE(pool.cancel_requested());
  std::atomic<std::size_t> count{0};
  pool.parallel_for(0, 100, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0u);

  pool.reset_cancel();
  EXPECT_FALSE(pool.cancel_requested());
  pool.parallel_for(0, 100, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100u);
}

// ------------------------------------------------- RunBudget primitives --

TEST(Budget, DeadlineLatches) {
  RunBudget b;
  b.max_seconds = 1e-9;
  BudgetScope scope(b);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(scope.stop());
  EXPECT_TRUE(scope.stopped());
  EXPECT_EQ(scope.reason(), StopReason::kDeadline);
  // Latched: stays stopped with a stable reason.
  EXPECT_TRUE(scope.stop());
  EXPECT_EQ(scope.reason(), StopReason::kDeadline);
}

TEST(Budget, PreCancelledTokenStopsImmediately) {
  BudgetScope scope(cancelled_budget());
  EXPECT_TRUE(scope.stop());
  EXPECT_EQ(scope.reason(), StopReason::kCancelled);
}

TEST(Budget, UnlimitedBudgetNeverStops) {
  BudgetScope scope(RunBudget{});
  EXPECT_FALSE(scope.stop());
  EXPECT_FALSE(scope.stopped());
  EXPECT_EQ(scope.reason(), StopReason::kCompleted);
}

TEST(Budget, TripFirstReasonWins) {
  BudgetScope scope(RunBudget{});
  scope.trip(StopReason::kMaxRestarts);
  scope.trip(StopReason::kMaxPatterns);
  EXPECT_TRUE(scope.stop());
  EXPECT_EQ(scope.reason(), StopReason::kMaxRestarts);
}

TEST(Budget, NestedSharesTokenNotCaps) {
  RunBudget outer;
  outer.max_restarts = 5;
  outer.max_patterns = 7;
  BudgetScope scope(outer);
  const RunBudget inner = scope.nested();
  // Caps belong to the outer consumer and are not inherited.
  EXPECT_EQ(inner.max_restarts, 0u);
  EXPECT_EQ(inner.max_patterns, 0u);
  // Cancelling the outer token stops nested scopes too.
  BudgetScope nested_scope(inner);
  EXPECT_FALSE(nested_scope.stop());
  outer.cancel.cancel();
  EXPECT_TRUE(nested_scope.stop());
  EXPECT_EQ(nested_scope.reason(), StopReason::kCancelled);
}

TEST(Budget, FoldLegacyDeadlinePrecedence) {
  EXPECT_DOUBLE_EQ(fold_legacy_deadline(RunBudget{}, 3.5).max_seconds, 3.5);
  RunBudget own;
  own.max_seconds = 2.0;
  EXPECT_DOUBLE_EQ(fold_legacy_deadline(own, 3.5).max_seconds, 2.0);
}

// --------------------------------------------- Procedure 1 anytime runs --

// The acceptance criterion of the budgeted pipeline: a deadline-expired
// Procedure-1 run must be bit-identical to an unbudgeted run truncated at
// the same restart index, at every thread count.
TEST(AnytimeProcedure1, DeadlineDifferentialBitIdentical) {
  const Workload w = synth_workload(200, 100, 7);
  const ResponseMatrix rm =
      build_response_matrix(w.nl, w.faults, w.tests, {.num_threads = 4});
  // The full dictionary lower-bounds every dictionary; with a nonzero floor
  // and target_indistinguished == 0, only the budget can stop the loop.
  ASSERT_GT(FullDictionary::build(rm).indistinguished_pairs(), 0u);

  BaselineSelectionConfig cfg;
  cfg.lower = 10;
  cfg.calls1 = 1 << 20;
  cfg.seed = 3;
  cfg.num_threads = 8;
  cfg.budget.max_seconds = 0.1;
  const BaselineSelection sel = run_procedure1(rm, cfg);
  ASSERT_FALSE(sel.completed);
  EXPECT_EQ(sel.stop_reason, StopReason::kDeadline);
  ASSERT_GE(sel.calls_used, 1u);

  BaselineSelectionConfig replay = cfg;
  replay.budget = RunBudget{};
  replay.budget.max_restarts = sel.calls_used;
  for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    replay.num_threads = threads;
    const BaselineSelection again = run_procedure1(rm, replay);
    expect_same_selection(sel, again,
                          threads == 1 ? "replay at 1 thread"
                                       : "replay at 8 threads");
    EXPECT_FALSE(again.completed);
    EXPECT_EQ(again.stop_reason, StopReason::kMaxRestarts);
  }
}

TEST(AnytimeProcedure1, MaxRestartsCapConsumesExactly) {
  const Workload w = synth_workload(150, 80, 11);
  const ResponseMatrix rm =
      build_response_matrix(w.nl, w.faults, w.tests, {.num_threads = 2});
  ASSERT_GT(FullDictionary::build(rm).indistinguished_pairs(), 0u);

  BaselineSelectionConfig cfg;
  cfg.calls1 = 1 << 20;
  cfg.seed = 5;
  cfg.budget.max_restarts = 3;
  cfg.num_threads = 1;
  const BaselineSelection serial = run_procedure1(rm, cfg);
  EXPECT_EQ(serial.calls_used, 3u);
  EXPECT_FALSE(serial.completed);
  EXPECT_EQ(serial.stop_reason, StopReason::kMaxRestarts);
  // The cap is part of the deterministic reduction: identical at any
  // thread count.
  cfg.num_threads = 8;
  expect_same_selection(serial, run_procedure1(rm, cfg), "capped at 8 threads");
}

TEST(AnytimeProcedure1, PreCancelledFallsBackToPassFailFloor) {
  const Workload w = synth_workload(120, 60, 13);
  const ResponseMatrix rm =
      build_response_matrix(w.nl, w.faults, w.tests, {.num_threads = 2});

  BaselineSelectionConfig cfg;
  cfg.budget = cancelled_budget();
  cfg.num_threads = 4;
  const BaselineSelection sel = run_procedure1(rm, cfg);
  EXPECT_FALSE(sel.completed);
  EXPECT_EQ(sel.stop_reason, StopReason::kCancelled);
  EXPECT_EQ(sel.calls_used, 0u);
  // Floor: the pass/fail selection (every baseline the fault-free id).
  ASSERT_EQ(sel.baselines.size(), rm.num_tests());
  for (std::size_t t = 0; t < rm.num_tests(); ++t)
    EXPECT_EQ(sel.baselines[t], rm.fault_free_id(t));
  EXPECT_EQ(sel.indistinguished_pairs,
            PassFailDictionary::build(rm).indistinguished_pairs());
}

// ------------------------------------------- other budgeted entry points --

TEST(AnytimePipeline, PreCancelledResponseMatrixIsStructurallyValid) {
  const Workload w = synth_workload(150, 60, 17);
  ResponseMatrixOptions opts;
  opts.num_threads = 4;
  opts.budget = cancelled_budget();
  ResponseMatrixStatus status;
  const ResponseMatrix rm =
      build_response_matrix(w.nl, w.faults, w.tests, opts, &status);
  EXPECT_FALSE(status.completed);
  EXPECT_EQ(status.stop_reason, StopReason::kCancelled);
  EXPECT_EQ(status.faults_simulated, 0u);
  // Unreached entries keep response id 0 and id 0 is still the fault-free
  // response of every test, so downstream consumers cannot misread the
  // partial matrix.
  ASSERT_EQ(rm.num_tests(), w.tests.size());
  for (std::size_t t = 0; t < rm.num_tests(); ++t) {
    EXPECT_EQ(rm.fault_free_id(t), 0u);
    EXPECT_EQ(rm.num_distinct(t), 1u);
  }
  for (FaultId f = 0; f < rm.num_faults(); ++f)
    for (std::size_t t = 0; t < rm.num_tests(); ++t)
      ASSERT_EQ(rm.response(f, t), 0u);
}

TEST(AnytimePipeline, PreCancelledNDetect) {
  const Workload w = synth_workload(120, 0, 19);
  NDetectOptions opts;
  opts.budget = cancelled_budget();
  const NDetectResult res = generate_ndetect(w.nl, w.faults, opts);
  EXPECT_FALSE(res.completed);
  EXPECT_EQ(res.stop_reason, StopReason::kCancelled);
}

TEST(AnytimePipeline, NDetectMaxPatternsCap) {
  const Workload w = synth_workload(150, 0, 23);
  NDetectOptions opts;
  // A tiny random phase leaves most faults short of n detections, so the
  // top-up loop runs and trips the pattern cap on its first fault.
  opts.n = 32;
  opts.random.max_batches = 2;
  opts.budget.max_patterns = 1;
  const NDetectResult res = generate_ndetect(w.nl, w.faults, opts);
  EXPECT_FALSE(res.completed);
  EXPECT_EQ(res.stop_reason, StopReason::kMaxPatterns);
}

TEST(AnytimePipeline, PreCancelledDiagSet) {
  const Workload w = synth_workload(100, 0, 29);
  DiagSetOptions opts;
  opts.budget = cancelled_budget();
  const DiagSetResult res = generate_diagnostic(w.nl, w.faults, opts);
  EXPECT_FALSE(res.completed);
  EXPECT_EQ(res.stop_reason, StopReason::kCancelled);
}

TEST(AnytimePipeline, PodemCancelledReturnsAborted) {
  const Workload w = synth_workload(150, 0, 31);
  PodemOptions opts;
  opts.budget = cancelled_budget();
  Podem podem(w.nl, opts);
  Rng rng(1);
  BitVec test;
  ASSERT_FALSE(w.faults.empty());
  EXPECT_EQ(podem.generate(w.faults[0], &test, rng), PodemStatus::kAborted);
}

TEST(AnytimePipeline, PreCancelledProcedure2KeepsInitialAssignment) {
  const Workload w = synth_workload(120, 60, 37);
  const ResponseMatrix rm =
      build_response_matrix(w.nl, w.faults, w.tests, {.num_threads = 2});
  const std::vector<ResponseId> initial(rm.num_tests(), 0);

  Procedure2Config cfg;
  cfg.budget = cancelled_budget();
  const Procedure2Result res = run_procedure2(rm, initial, cfg);
  EXPECT_FALSE(res.completed);
  EXPECT_EQ(res.stop_reason, StopReason::kCancelled);
  EXPECT_EQ(res.baselines, initial);
  EXPECT_EQ(res.replacements, 0u);
  EXPECT_EQ(res.indistinguished_pairs, count_indistinguished(rm, initial));
}

// ------------------------------------------------------ fault injection --

TEST(FaultInjection, SimulateChunkFaultSurfacesAtEveryThreadCount) {
  const Workload w = synth_workload(120, 40, 41);
  const ResponseMatrix reference =
      build_response_matrix(w.nl, w.faults, w.tests, {.num_threads = 1});
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ScopedFailPoint fp("simulate_chunk");
    EXPECT_THROW(build_response_matrix(w.nl, w.faults, w.tests,
                                       {.num_threads = threads}),
                 failpoint::InjectedFault)
        << threads << " threads";
  }
  // The system recovers completely once the fault stops firing.
  const ResponseMatrix again =
      build_response_matrix(w.nl, w.faults, w.tests, {.num_threads = 4});
  for (FaultId f = 0; f < reference.num_faults(); ++f)
    for (std::size_t t = 0; t < reference.num_tests(); ++t)
      ASSERT_EQ(again.response(f, t), reference.response(f, t));
}

TEST(FaultInjection, MergeBadAllocPropagatesAsBadAlloc) {
  const Workload w = synth_workload(120, 40, 43);
  {
    ScopedFailPoint fp("response_merge", 1, failpoint::Kind::kBadAlloc);
    EXPECT_THROW(
        build_response_matrix(w.nl, w.faults, w.tests, {.num_threads = 4}),
        std::bad_alloc);
  }
  EXPECT_NO_THROW(
      build_response_matrix(w.nl, w.faults, w.tests, {.num_threads = 4}));
}

TEST(FaultInjection, Procedure1RestartFaultCrossesThePool) {
  const Workload w = synth_workload(140, 60, 47);
  const ResponseMatrix rm =
      build_response_matrix(w.nl, w.faults, w.tests, {.num_threads = 2});
  BaselineSelectionConfig cfg;
  cfg.calls1 = 8;
  cfg.seed = 9;
  cfg.num_threads = 4;
  const BaselineSelection reference = run_procedure1(rm, cfg);
  {
    // Third restart throws, from whichever worker gets there.
    ScopedFailPoint fp("proc1_restart", 3);
    EXPECT_THROW(run_procedure1(rm, cfg), failpoint::InjectedFault);
  }
  expect_same_selection(reference, run_procedure1(rm, cfg),
                        "after injected fault");
}

// ------------------------------------------------- serialization: v2 I/O --

TEST(SerializeRobust, RoundTripAllFourDictionaryTypes) {
  const ResponseMatrix rm = paper_example();

  const auto pf = PassFailDictionary::build(rm);
  std::stringstream s1(serialized(pf));
  const auto pf2 = read_passfail_dictionary(s1);
  EXPECT_EQ(pf2.indistinguished_pairs(), pf.indistinguished_pairs());
  for (FaultId f = 0; f < pf.num_faults(); ++f)
    EXPECT_EQ(pf2.row(f), pf.row(f));

  const auto sd =
      SameDifferentDictionary::build(rm, {rm.response(2, 0), rm.response(1, 1)});
  std::stringstream s2(serialized(sd));
  const auto sd2 = read_samediff_dictionary(s2);
  EXPECT_EQ(sd2.baselines(), sd.baselines());
  EXPECT_EQ(sd2.indistinguished_pairs(), sd.indistinguished_pairs());
  for (FaultId f = 0; f < sd.num_faults(); ++f)
    EXPECT_EQ(sd2.row(f), sd.row(f));

  const auto full = FullDictionary::build(rm);
  std::stringstream s3(serialized(full));
  const auto full2 = read_full_dictionary(s3);
  EXPECT_EQ(full2.indistinguished_pairs(), full.indistinguished_pairs());
  for (FaultId f = 0; f < full.num_faults(); ++f)
    for (std::size_t t = 0; t < full.num_tests(); ++t)
      EXPECT_EQ(full2.entry(f, t), full.entry(f, t));

  const auto mb = MultiBaselineDictionary::build(
      rm, {{rm.response(0, 0), rm.response(2, 0)},
           {rm.response(0, 1), rm.response(1, 1)}});
  std::stringstream s4(serialized(mb));
  const auto mb2 = read_multibaseline_dictionary(s4);
  EXPECT_EQ(mb2.baselines(), mb.baselines());
  EXPECT_EQ(mb2.baselines_per_test(), mb.baselines_per_test());
  EXPECT_EQ(mb2.num_outputs(), mb.num_outputs());
  EXPECT_EQ(mb2.indistinguished_pairs(), mb.indistinguished_pairs());
  for (FaultId f = 0; f < mb.num_faults(); ++f)
    EXPECT_EQ(mb2.row(f), mb.row(f));
}

TEST(SerializeRobust, DegenerateShapesRoundTrip) {
  // One fault, zero tests, zero outputs.
  const auto pf = PassFailDictionary::from_rows({BitVec(0)}, 0, 0);
  std::stringstream s1(serialized(pf));
  const auto pf2 = read_passfail_dictionary(s1);
  EXPECT_EQ(pf2.num_faults(), 1u);
  EXPECT_EQ(pf2.num_tests(), 0u);
  EXPECT_EQ(pf2.num_outputs(), 0u);

  const auto sd = SameDifferentDictionary::from_parts({BitVec(0)}, {}, 0);
  std::stringstream s2(serialized(sd));
  const auto sd2 = read_samediff_dictionary(s2);
  EXPECT_EQ(sd2.num_faults(), 1u);
  EXPECT_EQ(sd2.num_tests(), 0u);
  EXPECT_TRUE(sd2.baselines().empty());

  const auto full = FullDictionary::from_entries({}, 1, 0, 0);
  std::stringstream s3(serialized(full));
  const auto full2 = read_full_dictionary(s3);
  EXPECT_EQ(full2.num_faults(), 1u);
  EXPECT_EQ(full2.num_tests(), 0u);

  // Multi-baseline needs at least one baseline: 1 fault, 1 test, rank 1.
  const auto mb =
      MultiBaselineDictionary::from_parts({BitVec(1)}, {{0}}, 1, 0);
  std::stringstream s4(serialized(mb));
  const auto mb2 = read_multibaseline_dictionary(s4);
  EXPECT_EQ(mb2.num_faults(), 1u);
  EXPECT_EQ(mb2.num_tests(), 1u);
  EXPECT_EQ(mb2.baselines(), mb.baselines());
}

// Turns a v2 serialization into its v1 equivalent: version bumped down on
// the magic line, trailer dropped.
std::string as_v1(const std::string& v2) {
  const std::size_t nl = v2.find('\n');
  EXPECT_NE(nl, std::string::npos);
  std::string out = v2.substr(0, nl);
  const std::size_t v = out.rfind(" v2");
  EXPECT_NE(v, std::string::npos);
  out.replace(v, 3, " v1");
  const std::size_t crc = v2.rfind("crc32 ");
  EXPECT_NE(crc, std::string::npos);
  out += v2.substr(nl, crc - nl);
  return out;
}

TEST(SerializeRobust, V1FilesStillReadable) {
  const ResponseMatrix rm = paper_example();
  const auto sd =
      SameDifferentDictionary::build(rm, {rm.response(2, 0), rm.response(1, 1)});
  std::stringstream s1(as_v1(serialized(sd)));
  const auto sd2 = read_samediff_dictionary(s1);
  EXPECT_EQ(sd2.baselines(), sd.baselines());
  for (FaultId f = 0; f < sd.num_faults(); ++f)
    EXPECT_EQ(sd2.row(f), sd.row(f));

  const auto mb = MultiBaselineDictionary::build(
      rm, {{rm.response(0, 0), rm.response(2, 0)}, {rm.response(0, 1)}});
  std::stringstream s2(as_v1(serialized(mb)));
  const auto mb2 = read_multibaseline_dictionary(s2);
  EXPECT_EQ(mb2.baselines(), mb.baselines());
  for (FaultId f = 0; f < mb.num_faults(); ++f)
    EXPECT_EQ(mb2.row(f), mb.row(f));
}

TEST(SerializeRobust, ChecksumMismatchNamesTheDefect) {
  const ResponseMatrix rm = paper_example();
  std::string text = serialized(PassFailDictionary::build(rm));
  // Flip the last payload character (a row bit, two bytes before the
  // trailer line): structure intact, checksum wrong.
  const std::size_t crc = text.rfind("crc32 ");
  ASSERT_NE(crc, std::string::npos);
  ASSERT_GE(crc, 2u);
  text = flip_byte(std::move(text), crc - 2);
  std::stringstream ss(text);
  try {
    read_passfail_dictionary(ss);
    FAIL() << "corrupted payload was accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum mismatch"),
              std::string::npos)
        << e.what();
  }
}

TEST(SerializeRobust, MidWriteStreamFailureThrows) {
  const ResponseMatrix rm = paper_example();
  const auto pf = PassFailDictionary::build(rm);
  FailAfterWriteBuf buf(/*limit=*/10);
  std::ostream out(&buf);
  EXPECT_THROW(write_dictionary(pf, out), std::runtime_error);
}

TEST(SerializeRobust, MidReadStreamFailureThrows) {
  const ResponseMatrix rm = paper_example();
  const std::string text = serialized(
      SameDifferentDictionary::build(rm, {rm.response(2, 0), rm.response(1, 1)}));
  ThrowAfterReadBuf buf(text, text.size() / 2);
  std::istream in(&buf);
  EXPECT_THROW(read_samediff_dictionary(in), std::runtime_error);
}

// ------------------------------------------ deterministic mutation fuzzer --

TEST(SerializeFuzz, EveryTruncationRejected) {
  const ResponseMatrix rm = paper_example();
  const std::string text = serialized(
      SameDifferentDictionary::build(rm, {rm.response(2, 0), rm.response(1, 1)}));
  ASSERT_GT(text.size(), 1u);
  for (std::size_t cut = 0; cut + 1 < text.size(); ++cut) {
    std::stringstream ss(text.substr(0, cut));
    EXPECT_THROW(read_samediff_dictionary(ss), std::runtime_error)
        << "cut at byte " << cut << " was accepted";
  }
  // Dropping only the final '\n' leaves a complete file.
  std::stringstream whole(text), clipped(text.substr(0, text.size() - 1));
  EXPECT_EQ(read_samediff_dictionary(clipped).indistinguished_pairs(),
            read_samediff_dictionary(whole).indistinguished_pairs());
}

TEST(SerializeFuzz, EverySingleByteFlipRejected) {
  const ResponseMatrix rm = paper_example();
  const std::string text = serialized(
      SameDifferentDictionary::build(rm, {rm.response(2, 0), rm.response(1, 1)}));
  // Every byte except the final newline: a flipped payload byte fails the
  // checksum (at minimum), a flipped structural byte fails parsing, a
  // flipped trailer byte fails the trailer check.
  for (std::size_t i = 0; i + 1 < text.size(); ++i) {
    std::stringstream ss(flip_byte(text, i));
    EXPECT_THROW(read_samediff_dictionary(ss), std::runtime_error)
        << "flip at byte " << i << " was accepted";
  }
  // The final newline carries no information; flipping it to '\v' leaves
  // the parse intact (trailing whitespace on the trailer line).
  std::stringstream ss(flip_byte(text, text.size() - 1));
  EXPECT_NO_THROW(read_samediff_dictionary(ss));
}

TEST(SerializeFuzz, MultiBaselineTruncationsAndFlipsRejected) {
  const ResponseMatrix rm = paper_example();
  const std::string text = serialized(MultiBaselineDictionary::build(
      rm, {{rm.response(0, 0), rm.response(2, 0)}, {rm.response(1, 1)}}));
  for (std::size_t cut = 0; cut + 1 < text.size(); ++cut) {
    std::stringstream ss(text.substr(0, cut));
    EXPECT_THROW(read_multibaseline_dictionary(ss), std::runtime_error)
        << "cut at byte " << cut << " was accepted";
  }
  for (std::size_t i = 0; i + 1 < text.size(); ++i) {
    std::stringstream ss(flip_byte(text, i));
    EXPECT_THROW(read_multibaseline_dictionary(ss), std::runtime_error)
        << "flip at byte " << i << " was accepted";
  }
}

// ------------------------------------------------------- CLI strictness --

CliArgs make_args(std::vector<std::string> argv) {
  std::vector<char*> ptrs;
  ptrs.reserve(argv.size());
  for (auto& s : argv) ptrs.push_back(s.data());
  return CliArgs(static_cast<int>(ptrs.size()), ptrs.data());
}

TEST(CliStrict, MalformedNumericsThrow) {
  const CliArgs args = make_args(
      {"prog", "--a=abc", "--b=12abc", "--c=", "--d", "--e=1,abc", "--f=1.5x"});
  EXPECT_THROW(args.get_int("a", 0), std::invalid_argument);
  EXPECT_THROW(args.get_int("b", 0), std::invalid_argument);
  EXPECT_THROW(args.get_int("c", 0), std::invalid_argument);
  EXPECT_THROW(args.get_int("d", 0), std::invalid_argument);
  EXPECT_THROW(args.get_int_list("e"), std::invalid_argument);
  EXPECT_THROW(args.get_double("f", 0), std::invalid_argument);
}

TEST(CliStrict, OutOfRangeThrowsInRangePasses) {
  const CliArgs args = make_args({"prog", "--n=5"});
  EXPECT_THROW(args.get_int("n", 0, 0, 4), std::invalid_argument);
  EXPECT_THROW(args.get_int("n", 0, 6, 10), std::invalid_argument);
  EXPECT_EQ(args.get_int("n", 0, 1, 10), 5);
  EXPECT_EQ(args.get_int("absent", 42, 0, 100), 42);
}

TEST(CliStrict, UnknownFlagsReported) {
  const CliArgs args = make_args({"prog", "--seed=1", "--sede=2"});
  const auto unknown = args.unknown_flags({"seed", "threads"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "sede");
}

// ------------------------------------------- tester-datalog reader --

TesterLog parse_log(const std::string& text, bool recover) {
  std::istringstream in(text);
  TesterLogOptions topt;
  topt.recover = recover;
  return read_testerlog(in, topt);
}

TEST(TesterLog, RoundTripPreservesEveryQualifier) {
  const std::vector<Observed> obs = {
      Observed::of(0),  Observed::of(3),
      Observed::missing(), Observed::unstable(),
      Observed::of(kUnknownResponse), Observed::of(7)};
  std::ostringstream out;
  write_testerlog(out, obs);
  const TesterLog log = parse_log(out.str(), /*recover=*/false);
  EXPECT_EQ(log.observations, obs);
  EXPECT_TRUE(log.dropped.empty());
  EXPECT_FALSE(log.truncated);
}

TEST(TesterLog, UnmentionedTestsDefaultToMissingAndCrlfTolerated) {
  const TesterLog log = parse_log(
      "sddict testerlog v1\r\ntests 4\r\n# comment\r\n\r\nt 1 5\r\nend\r\n",
      /*recover=*/false);
  ASSERT_EQ(log.observations.size(), 4u);
  EXPECT_EQ(log.observations[0], Observed::missing());
  EXPECT_EQ(log.observations[1], Observed::of(5));
  EXPECT_EQ(log.observations[2], Observed::missing());
  EXPECT_EQ(log.observations[3], Observed::missing());
}

TEST(TesterLog, StrictModeReportsLineAndColumn) {
  try {
    parse_log("sddict testerlog v1\ntests 3\nt 0 bogus\nend\n", false);
    FAIL() << "bad response value was accepted";
  } catch (const TesterLogError& e) {
    EXPECT_EQ(e.line(), 3u);
    EXPECT_EQ(e.column(), 5u);
    EXPECT_NE(std::string(e.what()).find("testerlog:3:5"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("bad response value"),
              std::string::npos);
  }
  try {
    parse_log("sddict testerlog v1\ntests 3\nt 9 1\nend\n", false);
    FAIL() << "out-of-range index was accepted";
  } catch (const TesterLogError& e) {
    EXPECT_EQ(e.line(), 3u);
    EXPECT_EQ(e.column(), 3u);
    EXPECT_NE(std::string(e.what()).find("out of range"), std::string::npos);
  }
  try {
    parse_log("sddict testerlog v1\ntests 2\nt 0 1\n", false);
    FAIL() << "missing 'end' was accepted in strict mode";
  } catch (const TesterLogError& e) {
    EXPECT_EQ(e.line(), 4u);
    EXPECT_NE(std::string(e.what()).find("missing 'end'"), std::string::npos);
  }
}

TEST(TesterLog, StructuralDefectsThrowInBothModes) {
  for (const bool recover : {false, true}) {
    EXPECT_THROW(parse_log("bogus header\n", recover), TesterLogError);
    EXPECT_THROW(parse_log("", recover), TesterLogError);
    EXPECT_THROW(parse_log("sddict testerlog v1\nnot-tests 3\n", recover),
                 TesterLogError);
    EXPECT_THROW(parse_log("sddict testerlog v1\ntests huge\n", recover),
                 TesterLogError);
    EXPECT_THROW(
        parse_log("sddict testerlog v1\ntests 999999999999\n", recover),
        TesterLogError);
  }
}

TEST(TesterLog, RecoveryModeDropsDeterministically) {
  const TesterLog log = parse_log(
      "sddict testerlog v1\n"
      "tests 4\n"
      "t 0 2\n"
      "t 0 3\n"      // duplicate: first record stands
      "t 9 1\n"      // index out of range
      "t 1 bogus\n"  // bad value
      "x 2 1\n"      // unknown record type
      "t 2\n"        // wrong arity
      "t 3 unstable\n"
      "end\n",
      /*recover=*/true);
  ASSERT_EQ(log.observations.size(), 4u);
  EXPECT_EQ(log.observations[0], Observed::of(2));
  EXPECT_EQ(log.observations[1], Observed::missing());
  EXPECT_EQ(log.observations[2], Observed::missing());
  EXPECT_EQ(log.observations[3], Observed::unstable());
  EXPECT_FALSE(log.truncated);
  ASSERT_EQ(log.dropped.size(), 5u);
  const struct {
    std::size_t line;
    const char* reason;
  } expected[5] = {{4, "duplicate record"},
                   {5, "out of range"},
                   {6, "bad response value"},
                   {7, "unknown record type"},
                   {8, "expected 't <index> <value>'"}};
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(log.dropped[i].line, expected[i].line) << i;
    EXPECT_NE(log.dropped[i].reason.find(expected[i].reason),
              std::string::npos)
        << log.dropped[i].reason;
  }
}

TEST(TesterLog, RecoveryModeMalformedTrailerIsNotTheTrailer) {
  // A corrupted 'end' line must not swallow the records after it: it is
  // dropped like any other malformed record and scanning continues.
  const TesterLog log = parse_log(
      "sddict testerlog v1\n"
      "tests 3\n"
      "t 0 2\n"
      "end extra\n"
      "t 1 5\n"
      "end\n",
      /*recover=*/true);
  EXPECT_FALSE(log.truncated);
  ASSERT_EQ(log.observations.size(), 3u);
  EXPECT_EQ(log.observations[0], Observed::of(2));
  EXPECT_EQ(log.observations[1], Observed::of(5));
  ASSERT_EQ(log.dropped.size(), 1u);
  EXPECT_EQ(log.dropped[0].line, 4u);
  EXPECT_NE(log.dropped[0].reason.find("trailing tokens after 'end'"),
            std::string::npos);

  // Without a later well-formed 'end' the salvage is honest about it.
  const TesterLog cut = parse_log(
      "sddict testerlog v1\ntests 2\nt 0 1\nend extra\n", /*recover=*/true);
  EXPECT_TRUE(cut.truncated);
  ASSERT_EQ(cut.dropped.size(), 1u);
  EXPECT_EQ(cut.observations[0], Observed::of(1));
}

TEST(TesterLog, RecoveryModeMarksMissingEndAsTruncated) {
  const TesterLog log =
      parse_log("sddict testerlog v1\ntests 2\nt 1 6\n", /*recover=*/true);
  EXPECT_TRUE(log.truncated);
  ASSERT_EQ(log.observations.size(), 2u);
  EXPECT_EQ(log.observations[1], Observed::of(6));
}

// Deterministic mutation fuzzer: every truncation and every single-byte
// flip of a valid log must either parse or raise a typed TesterLogError —
// in both modes — and recovery-mode salvage stays within the declared
// vector size.
TEST(TesterLog, MutationFuzzNeverCrashesOrOverflows) {
  const std::vector<Observed> obs = {
      Observed::of(4), Observed::missing(), Observed::unstable(),
      Observed::of(kUnknownResponse), Observed::of(0)};
  std::ostringstream out;
  write_testerlog(out, obs);
  const std::string good = out.str();
  const auto attempt = [](const std::string& text, bool recover) {
    try {
      const TesterLog log = parse_log(text, recover);
      for (const DroppedRecord& d : log.dropped) EXPECT_GT(d.line, 0u);
    } catch (const TesterLogError&) {
      // typed rejection is the other acceptable outcome
    }
  };
  for (std::size_t n = 0; n <= good.size(); ++n) {
    attempt(good.substr(0, n), false);
    attempt(good.substr(0, n), true);
  }
  for (std::size_t i = 0; i < good.size(); ++i) {
    attempt(flip_byte(good, i), false);
    attempt(flip_byte(good, i), true);
  }
}

// ------------------------------------------- noise-tolerant engine --

struct EngineEnv {
  Workload w;
  ResponseMatrix rm;
  FullDictionary full;
  PassFailDictionary pf;
  SameDifferentDictionary sd;
  MultiBaselineDictionary mb;
  FirstFailDictionary ff;
};

const EngineEnv& engine_env() {
  static const EngineEnv* env = [] {
    Workload w = synth_workload(150, 40, 7);
    ResponseMatrixOptions rmopts;
    rmopts.store_diff_outputs = true;  // first-fail translation needs them
    ResponseMatrix rm = build_response_matrix(w.nl, w.faults, w.tests, rmopts);
    const auto full = FullDictionary::build(rm);
    BaselineSelectionConfig cfg;
    cfg.calls1 = 4;
    cfg.seed = 7;
    cfg.target_indistinguished = full.indistinguished_pairs();
    const auto p1 = run_procedure1(rm, cfg);
    Procedure2Config p2cfg;
    p2cfg.target_indistinguished = full.indistinguished_pairs();
    const auto p2 = run_procedure2(rm, p1.baselines, p2cfg);
    auto sd = SameDifferentDictionary::build(rm, p2.baselines);
    auto mb = MultiBaselineDictionary::build(
        rm, run_multi_baseline(rm, 2, cfg).baselines);
    auto pf = PassFailDictionary::build(rm);
    auto ff = FirstFailDictionary::build(rm);
    return new EngineEnv{std::move(w),  std::move(rm), full,
                         std::move(pf), std::move(sd), std::move(mb),
                         std::move(ff)};
  }();
  return *env;
}

std::vector<ResponseId> defect_ids(const EngineEnv& e, FaultId truth) {
  return observe_defect(e.w.nl, e.w.tests, e.rm,
                        {to_injection(e.w.faults[truth])});
}

// fault id -> mismatch count, from a full-length candidate list.
std::vector<std::uint32_t> mismatch_map(
    const std::vector<DiagnosisMatch>& matches, std::size_t num_faults) {
  std::vector<std::uint32_t> m(num_faults, 0);
  EXPECT_EQ(matches.size(), num_faults);
  for (const DiagnosisMatch& dm : matches) m[dm.fault] = dm.mismatches;
  return m;
}

void expect_same_ranking(const std::vector<DiagnosisMatch>& engine,
                         const std::vector<DiagnosisMatch>& dict,
                         const char* what) {
  ASSERT_EQ(engine.size(), dict.size()) << what;
  for (std::size_t i = 0; i < engine.size(); ++i) {
    EXPECT_EQ(engine[i].fault, dict[i].fault) << what << " rank " << i;
    EXPECT_EQ(engine[i].mismatches, dict[i].mismatches) << what << " rank "
                                                        << i;
  }
}

// Acceptance gate of the engine refactor: with a clean observation, zero
// tolerance and no budget, the engine-routed diagnosis is bit-identical to
// each dictionary's own diagnose() — same ranking, same mismatch counts.
TEST(DiagnosisEngine, CleanObservationMatchesDictionaryDiagnose) {
  const EngineEnv& e = engine_env();
  const std::size_t n = e.rm.num_faults();
  EngineOptions opt;
  opt.max_results = n;
  Rng rng(11);
  for (int d = 0; d < 4; ++d) {
    const auto truth = static_cast<FaultId>(rng.below(n));
    const std::vector<ResponseId> ids = defect_ids(e, truth);
    const std::vector<Observed> obs = qualify(ids);

    const EngineDiagnosis df = diagnose_observed(e.full, obs, opt);
    EXPECT_EQ(df.outcome, DiagnosisOutcome::kExactMatch);
    EXPECT_EQ(df.best_mismatches, 0u);
    EXPECT_EQ(df.effective_tests, e.rm.num_tests());
    EXPECT_EQ(df.dont_care_tests, 0u);
    EXPECT_EQ(df.unknown_tests, 0u);
    expect_same_ranking(df.matches, e.full.diagnose(ids, n), "full");
    expect_same_ranking(diagnose_observed(e.pf, obs, opt).matches,
                        e.pf.diagnose(e.pf.encode(ids), n), "pass/fail");
    expect_same_ranking(diagnose_observed(e.sd, obs, opt).matches,
                        e.sd.diagnose(e.sd.encode(ids), n), "same/diff");
    expect_same_ranking(diagnose_observed(e.mb, obs, opt).matches,
                        e.mb.diagnose(e.mb.encode(ids), n), "multi-baseline");
    expect_same_ranking(diagnose_observed(e.ff, e.rm, obs, opt).matches,
                        e.ff.diagnose(e.ff.encode(e.rm, ids), n),
                        "first-fail");
  }
}

// Flipping one observed test across the pass/fail boundary moves every
// candidate's mismatch count by exactly one — the dictionary bit either
// agreed before and disagrees now, or vice versa.
TEST(DiagnosisEngine, SingleFlipShiftsEveryPassFailCandidateByOne) {
  const EngineEnv& e = engine_env();
  const std::size_t n = e.rm.num_faults();
  EngineOptions opt;
  opt.max_results = n;
  // Large tolerance keeps the flipped observation in the native stage, so
  // the compared mismatch counts live in the dictionary's own space.
  opt.tolerance = static_cast<std::uint32_t>(e.rm.num_tests());
  const std::vector<ResponseId> ids = defect_ids(e, 0);
  const auto base =
      mismatch_map(diagnose_observed(e.pf, qualify(ids), opt).matches, n);
  for (const std::size_t t : {std::size_t{0}, e.rm.num_tests() - 1}) {
    std::vector<Observed> obs = qualify(ids);
    // Cross the boundary: pass becomes some failing id, fail becomes pass.
    obs[t] = Observed::of(ids[t] == 0 ? 1 : 0);
    const auto flipped =
        mismatch_map(diagnose_observed(e.pf, obs, opt).matches, n);
    for (std::size_t f = 0; f < n; ++f) {
      const std::uint32_t delta =
          flipped[f] > base[f] ? flipped[f] - base[f] : base[f] - flipped[f];
      EXPECT_EQ(delta, 1u) << "fault " << f << " test " << t;
    }
  }
}

TEST(DiagnosisEngine, SingleFlipShiftsEverySameDiffCandidateByOne) {
  const EngineEnv& e = engine_env();
  const std::size_t n = e.rm.num_faults();
  EngineOptions opt;
  opt.max_results = n;
  opt.tolerance = static_cast<std::uint32_t>(e.rm.num_tests());
  const std::vector<ResponseId> ids = defect_ids(e, 1);
  const auto base =
      mismatch_map(diagnose_observed(e.sd, qualify(ids), opt).matches, n);
  const auto& bl = e.sd.baselines();
  for (const std::size_t t : {std::size_t{0}, e.rm.num_tests() / 2}) {
    std::vector<Observed> obs = qualify(ids);
    // Cross the same/different boundary for test t's baseline.
    obs[t] = Observed::of(ids[t] == bl[t] ? (bl[t] == 0 ? 1 : 0) : bl[t]);
    const auto flipped =
        mismatch_map(diagnose_observed(e.sd, obs, opt).matches, n);
    for (std::size_t f = 0; f < n; ++f) {
      const std::uint32_t delta =
          flipped[f] > base[f] ? flipped[f] - base[f] : base[f] - flipped[f];
      EXPECT_EQ(delta, 1u) << "fault " << f << " test " << t;
    }
  }
}

// Missing and unstable records are don't-cares: excluded from mismatch
// counting, counted in the result's qualifier tallies, and the true fault
// still exact-matches on the remaining tests.
TEST(DiagnosisEngine, MissingAndUnstableTestsAreExcluded) {
  const EngineEnv& e = engine_env();
  const std::size_t n = e.rm.num_faults();
  EngineOptions opt;
  opt.max_results = n;
  const FaultId truth = 2;
  const std::vector<ResponseId> ids = defect_ids(e, truth);
  std::vector<Observed> obs = qualify(ids);
  obs[0] = Observed::missing();
  obs[1] = Observed::unstable();
  const EngineDiagnosis d = diagnose_observed(e.full, obs, opt);
  EXPECT_EQ(d.outcome, DiagnosisOutcome::kExactMatch);
  EXPECT_EQ(d.best_mismatches, 0u);
  EXPECT_EQ(d.dont_care_tests, 2u);
  EXPECT_EQ(d.unknown_tests, 0u);
  EXPECT_EQ(d.effective_tests, e.rm.num_tests() - 2);
  EXPECT_GE(true_fault_rank(d.matches, truth), 1u);
  // Mismatch counts equal a by-hand count over the cared tests only.
  for (const DiagnosisMatch& m : d.matches) {
    std::uint32_t want = 0;
    for (std::size_t t = 2; t < e.rm.num_tests(); ++t)
      if (e.full.entry(m.fault, t) != ids[t]) ++want;
    EXPECT_EQ(m.mismatches, want) << "fault " << m.fault;
  }
}

// An observation containing a response no modeled fault produces can never
// yield a confident exact/tolerant verdict; it degrades to the pass/fail
// projection, where the unknown still counts as "the test failed".
TEST(DiagnosisEngine, UnknownResponseForbidsConfidentVerdict) {
  const EngineEnv& e = engine_env();
  EngineOptions opt;
  opt.max_results = e.rm.num_faults();
  const FaultId truth = 3;
  const std::vector<ResponseId> ids = defect_ids(e, truth);
  std::vector<Observed> obs = qualify(ids);
  // Replace one *failing* observation with an unmodeled response, so the
  // pass/fail projection of the truth is unchanged.
  std::size_t t0 = e.rm.num_tests();
  for (std::size_t t = 0; t < ids.size(); ++t)
    if (ids[t] != 0) {
      t0 = t;
      break;
    }
  ASSERT_LT(t0, e.rm.num_tests()) << "defect not excited by the test set";
  obs[t0] = Observed::of(kUnknownResponse);
  const EngineDiagnosis d = diagnose_observed(e.full, obs, opt);
  EXPECT_EQ(d.unknown_tests, 1u);
  EXPECT_NE(d.outcome, DiagnosisOutcome::kExactMatch);
  EXPECT_NE(d.outcome, DiagnosisOutcome::kTolerantMatch);
  EXPECT_EQ(d.outcome, DiagnosisOutcome::kPassFailProjection);
  EXPECT_EQ(d.best_mismatches, 0u);
  EXPECT_GE(true_fault_rank(d.matches, truth), 1u);
}

// The tolerance-e guarantee: every fault within Hamming distance e of the
// observed signature gets a candidate slot, even past max_results.
TEST(DiagnosisEngine, ToleranceGuaranteeOverridesMaxResults) {
  const EngineEnv& e = engine_env();
  const std::size_t n = e.rm.num_faults();
  EngineOptions opt;
  opt.max_results = 1;
  opt.tolerance = 2;
  const std::vector<ResponseId> ids = defect_ids(e, 4);
  const EngineDiagnosis d = diagnose_observed(e.pf, qualify(ids), opt);
  const std::string enc = e.pf.encode(ids).to_string();
  std::size_t within = 0;
  for (FaultId f = 0; f < n; ++f) {
    std::uint32_t dist = 0;
    for (std::size_t t = 0; t < e.rm.num_tests(); ++t)
      if (e.pf.bit(f, t) != (enc[t] == '1')) ++dist;
    if (dist > opt.tolerance) continue;
    ++within;
    EXPECT_GE(true_fault_rank(d.matches, f), 1u)
        << "fault " << f << " at distance " << dist << " missing";
  }
  EXPECT_GE(within, 1u);  // the true fault itself is at distance 0
  EXPECT_GE(d.matches.size(), within);
}

TEST(DiagnosisEngine, CancelledBudgetReturnsIncompleteWithoutThrowing) {
  const EngineEnv& e = engine_env();
  EngineOptions opt;
  opt.budget = cancelled_budget();
  const EngineDiagnosis d =
      diagnose_observed(e.pf, qualify(defect_ids(e, 0)), opt);
  EXPECT_FALSE(d.completed);
  EXPECT_EQ(d.stop_reason, StopReason::kCancelled);
}

TEST(DiagnosisEngine, WrongLengthObservationNamesBothSizes) {
  const EngineEnv& e = engine_env();
  const std::vector<Observed> obs(e.rm.num_tests() + 3, Observed::of(0));
  try {
    diagnose_observed(e.pf, obs);
    FAIL() << "wrong-length observation was accepted";
  } catch (const std::invalid_argument& ex) {
    const std::string what = ex.what();
    EXPECT_NE(what.find("expected"), std::string::npos);
    EXPECT_NE(what.find(std::to_string(e.rm.num_tests())), std::string::npos);
    EXPECT_NE(what.find(std::to_string(e.rm.num_tests() + 3)),
              std::string::npos);
  }
}

// A defect outside the single-stuck-at model (a wired bridge) must degrade
// to a weaker typed verdict instead of a confident wrong answer, and at
// least one bridge reaches the unmodeled-defect fallback with a cover.
TEST(DiagnosisEngine, BridgeDefectFallsBackInsteadOfExactMatching) {
  const EngineEnv& e = engine_env();
  EngineOptions opt;
  opt.max_results = 10;
  Rng rng(23);
  const auto bridges = sample_bridges(e.w.nl, 24, rng);
  std::size_t active = 0, unmodeled = 0;
  for (const BridgingFault& br : bridges) {
    const Netlist bad = inject_bridge(e.w.nl, br);
    const auto ids = observe_defective_netlist(e.w.nl, bad, e.w.tests, e.rm);
    bool fails = false;
    for (const ResponseId id : ids) fails |= id != 0;
    if (!fails) continue;  // bridge not excited by this test set
    ++active;
    const EngineDiagnosis d = diagnose_observed(e.full, qualify(ids), opt);
    if (d.unknown_tests > 0) {
      EXPECT_NE(d.outcome, DiagnosisOutcome::kExactMatch);
      EXPECT_NE(d.outcome, DiagnosisOutcome::kTolerantMatch);
    }
    if (d.outcome == DiagnosisOutcome::kUnmodeledDefect) {
      ++unmodeled;
      EXPECT_TRUE(!d.cover.empty() || d.uncovered_failures > 0);
    }
  }
  EXPECT_GE(active, 1u);
  EXPECT_GE(unmodeled, 1u);
}

// The headline robustness claim, pinned at a fixed seed: under 2% datalog
// noise the same/different dictionary ranks the true fault strictly better
// (lower mean rank) than pass/fail. Mirrors bench_noise's self-check.
TEST(DiagnosisEngine, SameDifferentOutranksPassFailUnderNoise) {
  Netlist nl = load_benchmark("s298");
  if (nl.has_dffs()) nl = full_scan(nl);
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  const TestSet tests = generate_detect(nl, faults, 1).tests;
  ResponseMatrixOptions rmopts;
  rmopts.store_diff_outputs = true;
  const ResponseMatrix rm = build_response_matrix(nl, faults, tests, rmopts);
  const auto full = FullDictionary::build(rm);
  const auto pf = PassFailDictionary::build(rm);
  BaselineSelectionConfig cfg;
  cfg.calls1 = 10;
  cfg.seed = 1;
  cfg.target_indistinguished = full.indistinguished_pairs();
  const auto p1 = run_procedure1(rm, cfg);
  Procedure2Config p2cfg;
  p2cfg.target_indistinguished = full.indistinguished_pairs();
  const auto p2 = run_procedure2(rm, p1.baselines, p2cfg);
  const auto sd = SameDifferentDictionary::build(rm, p2.baselines);

  EngineOptions opt;
  opt.tolerance = 2;
  opt.max_results = faults.size();
  std::uint64_t sum_pf = 0, sum_sd = 0;
  Rng defect_rng(100);
  for (int d = 0; d < 200; ++d) {
    const auto truth = static_cast<FaultId>(defect_rng.below(faults.size()));
    const auto ids =
        observe_defect(nl, tests, rm, {to_injection(faults[truth])});
    testing::NoiseChannel noise;  // the 2% channel bench_noise uses
    noise.drop_rate = 0.02;
    noise.flip_rate = 0.005;
    noise.seed = 1000003 + static_cast<std::uint64_t>(d) * 31;
    const auto obs = testing::apply_noise(ids, rm, noise);
    const std::size_t rp =
        true_fault_rank(diagnose_observed(pf, obs, opt).matches, truth);
    const std::size_t rs =
        true_fault_rank(diagnose_observed(sd, obs, opt).matches, truth);
    sum_pf += rp ? rp : faults.size();
    sum_sd += rs ? rs : faults.size();
  }
  EXPECT_LT(sum_sd, sum_pf);
}

}  // namespace
}  // namespace sddict
