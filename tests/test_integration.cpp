// End-to-end integration: the full Table-6 pipeline (test generation,
// fault simulation, dictionary construction, Procedures 1 and 2) on small
// circuits, checking the cross-dictionary invariants the paper's claims
// rest on.
#include <gtest/gtest.h>

#include "bmcirc/embedded.h"
#include "bmcirc/registry.h"
#include "core/experiment.h"
#include "netlist/transform.h"

namespace sddict {
namespace {

ExperimentConfig fast_config() {
  ExperimentConfig cfg;
  cfg.baseline.calls1 = 3;
  cfg.ndetect.n = 5;
  cfg.diag.max_rounds = 20;
  return cfg;
}

void check_row_invariants(const ExperimentRow& row) {
  // Size model (paper Section 2).
  EXPECT_EQ(row.sizes.full_bits,
            std::uint64_t{row.num_tests} * row.num_faults * row.num_outputs);
  EXPECT_EQ(row.sizes.pass_fail_bits,
            std::uint64_t{row.num_tests} * row.num_faults);
  EXPECT_EQ(row.sizes.same_different_bits,
            std::uint64_t{row.num_tests} * (row.num_faults + row.num_outputs));
  // Resolution ordering: full <= s/d(P2) <= s/d(P1) <= pass/fail.
  EXPECT_LE(row.indist_full, row.indist_sd_repl);
  EXPECT_LE(row.indist_sd_repl, row.indist_sd_rand);
  EXPECT_LE(row.indist_sd_rand, row.indist_passfail);
  EXPECT_EQ(row.proc2_improved, row.indist_sd_repl < row.indist_sd_rand);
}

TEST(Experiment, C17DiagnosticRow) {
  const Netlist nl = full_scan(make_c17());
  const ExperimentRow row =
      run_experiment(nl, TestSetKind::kDiagnostic, fast_config());
  EXPECT_EQ(row.ttype, "diag");
  EXPECT_EQ(row.num_faults, 22u);
  EXPECT_GT(row.num_tests, 0u);
  check_row_invariants(row);
  // c17 has no functionally equivalent collapsed fault pairs; a diagnostic
  // test set should reach zero with the full dictionary.
  EXPECT_EQ(row.indist_full, 0u);
}

TEST(Experiment, C17TenDetectRow) {
  const Netlist nl = full_scan(make_c17());
  ExperimentConfig cfg = fast_config();
  cfg.ndetect.n = 10;
  const ExperimentRow row = run_experiment(nl, TestSetKind::kTenDetect, cfg);
  EXPECT_EQ(row.ttype, "10det");
  check_row_invariants(row);
}

TEST(Experiment, S27ScanRows) {
  const Netlist nl = full_scan(make_s27());
  for (TestSetKind kind : {TestSetKind::kDiagnostic, TestSetKind::kTenDetect}) {
    const ExperimentRow row = run_experiment(nl, kind, fast_config());
    EXPECT_EQ(row.circuit, "s27_scan");
    check_row_invariants(row);
  }
}

TEST(Experiment, SyntheticS208Rows) {
  const Netlist nl = full_scan(load_benchmark("s208"));
  for (TestSetKind kind : {TestSetKind::kDiagnostic, TestSetKind::kTenDetect}) {
    const ExperimentRow row = run_experiment(nl, kind, fast_config());
    check_row_invariants(row);
    // Headline claim of the paper: the same/different dictionary has
    // (essentially pass/fail) size but distinguishes at least as much.
    EXPECT_LT(row.sizes.same_different_bits, row.sizes.full_bits);
    EXPECT_LE(row.indist_sd_rand, row.indist_passfail);
  }
}

TEST(Experiment, TenDetectGivesLargerTestSets) {
  const Netlist nl = full_scan(load_benchmark("s208"));
  ExperimentConfig cfg = fast_config();
  cfg.ndetect.n = 10;
  const ExperimentRow diag =
      run_experiment(nl, TestSetKind::kDiagnostic, cfg);
  const ExperimentRow tdet = run_experiment(nl, TestSetKind::kTenDetect, cfg);
  EXPECT_GT(tdet.num_tests, diag.num_tests / 2);  // typically much larger
}

TEST(Experiment, RowFormatting) {
  const Netlist nl = full_scan(make_c17());
  const ExperimentRow row =
      run_experiment(nl, TestSetKind::kDiagnostic, fast_config());
  const std::string header = experiment_header();
  EXPECT_NE(header.find("indistinguished"), std::string::npos);
  const std::string line = format_experiment_row(row);
  EXPECT_NE(line.find("c17"), std::string::npos);
  EXPECT_NE(line.find("diag"), std::string::npos);
}

TEST(Experiment, KindNames) {
  EXPECT_STREQ(test_set_kind_name(TestSetKind::kDiagnostic), "diag");
  EXPECT_STREQ(test_set_kind_name(TestSetKind::kTenDetect), "10det");
}

}  // namespace
}  // namespace sddict
