#include <gtest/gtest.h>

#include <sstream>

#include "bmcirc/embedded.h"
#include "dict/full_dict.h"
#include "dict/partition.h"
#include "dict/passfail_dict.h"
#include "dict/samediff_dict.h"
#include "dict/serialize.h"
#include "fault/collapse.h"
#include "sim/logicsim.h"

namespace sddict {
namespace {

// The paper's worked example (Tables 1-5): four faults, two tests, two
// outputs. Row ff = 00 00; f0 = 10 11; f1 = 00 10; f2 = 01 10; f3 = 01 00.
ResponseMatrix paper_example() {
  const std::vector<BitVec> ff = {BitVec::from_string("00"),
                                  BitVec::from_string("00")};
  const std::vector<std::vector<BitVec>> faulty = {
      {BitVec::from_string("10"), BitVec::from_string("11")},
      {BitVec::from_string("00"), BitVec::from_string("10")},
      {BitVec::from_string("01"), BitVec::from_string("10")},
      {BitVec::from_string("01"), BitVec::from_string("00")},
  };
  return response_matrix_from_table(ff, faulty);
}

// Baseline ids for the paper's Table 3 choice: z_bl,0 = 01, z_bl,1 = 10.
std::vector<ResponseId> table3_baselines(const ResponseMatrix& rm) {
  return {rm.response(2, 0), rm.response(1, 1)};
}

// ------------------------------------------------------------- partition --

TEST(Partition, StartsAsOneClass) {
  Partition p(5);
  EXPECT_EQ(p.num_classes(), 1u);
  EXPECT_EQ(p.indistinguished_pairs(), 10u);
  EXPECT_FALSE(p.fully_refined());
}

TEST(Partition, RefineSplitsAndCountsPairs) {
  Partition p(4);
  // Labels {0,0,1,1}: separates 2*2 = 4 pairs.
  EXPECT_EQ(p.refine({0, 0, 1, 1}), 4u);
  EXPECT_EQ(p.num_classes(), 2u);
  EXPECT_EQ(p.indistinguished_pairs(), 2u);
  // Further split one class.
  EXPECT_EQ(p.refine({0, 1, 2, 2}), 1u);
  EXPECT_EQ(p.indistinguished_pairs(), 1u);
  EXPECT_EQ(p.refine({7, 7, 7, 8}), 1u);
  EXPECT_TRUE(p.fully_refined());
  EXPECT_EQ(p.refine({0, 0, 0, 0}), 0u);
}

TEST(Partition, RefineNoopWhenLabelsEqual) {
  Partition p(4);
  EXPECT_EQ(p.refine({3, 3, 3, 3}), 0u);
  EXPECT_EQ(p.num_classes(), 1u);
}

TEST(Partition, ClassOfConsistentWithClasses) {
  Partition p(6);
  p.refine({0, 1, 0, 1, 2, 2});
  for (std::size_t c = 0; c < p.num_classes(); ++c)
    for (std::uint32_t e : p.classes()[c]) EXPECT_EQ(p.class_of(e), c);
}

TEST(Partition, PairsHelper) {
  EXPECT_EQ(Partition::pairs(0), 0u);
  EXPECT_EQ(Partition::pairs(1), 0u);
  EXPECT_EQ(Partition::pairs(2), 1u);
  EXPECT_EQ(Partition::pairs(100), 4950u);
}

TEST(Partition, EmptyPartition) {
  Partition p(0);
  EXPECT_EQ(p.num_classes(), 0u);
  EXPECT_TRUE(p.fully_refined());
  EXPECT_EQ(p.indistinguished_pairs(), 0u);
}

// ----------------------------------------------------------------- sizes --

TEST(Sizes, PaperFormulas) {
  const DictionarySizes s = dictionary_sizes(10, 100, 7);
  EXPECT_EQ(s.full_bits, 7000u);
  EXPECT_EQ(s.pass_fail_bits, 1000u);
  EXPECT_EQ(s.same_different_bits, 1070u);
}

TEST(Sizes, HybridBetweenPassFailAndSameDifferent) {
  const std::uint64_t k = 10, n = 100, m = 7;
  const auto s = dictionary_sizes(k, n, m);
  const auto h_none = hybrid_same_different_bits(k, n, m, 0);
  const auto h_all = hybrid_same_different_bits(k, n, m, k);
  EXPECT_EQ(h_none, s.pass_fail_bits + k);
  EXPECT_EQ(h_all, s.same_different_bits + k);
}

TEST(Sizes, KindNames) {
  EXPECT_STREQ(dictionary_kind_name(DictionaryKind::kFull), "full");
  EXPECT_STREQ(dictionary_kind_name(DictionaryKind::kPassFail), "pass/fail");
  EXPECT_STREQ(dictionary_kind_name(DictionaryKind::kSameDifferent),
               "same/different");
}

// ------------------------------------------------------- paper example  --

TEST(PaperExample, Table1FullDictionaryDistinguishesAll) {
  const ResponseMatrix rm = paper_example();
  const FullDictionary full = FullDictionary::build(rm);
  EXPECT_EQ(full.indistinguished_pairs(), 0u);
  EXPECT_EQ(full.size_bits(), 2u * 4u * 2u);
}

TEST(PaperExample, Table2PassFailLeavesF2F3) {
  const ResponseMatrix rm = paper_example();
  const PassFailDictionary pf = PassFailDictionary::build(rm);
  // Bits from Table 2: f0=11, f1=01, f2=11, f3=10... mapping: b=1 iff
  // detected. f0: t0 yes, t1 yes. f1: t0 no, t1 yes. f2: yes/yes. f3:
  // yes/no.
  EXPECT_EQ(pf.row(0).to_string(), "11");
  EXPECT_EQ(pf.row(1).to_string(), "01");
  EXPECT_EQ(pf.row(2).to_string(), "11");
  EXPECT_EQ(pf.row(3).to_string(), "10");
  // Exactly one indistinguished pair: (f0, f2).
  EXPECT_EQ(pf.indistinguished_pairs(), 1u);
  EXPECT_EQ(pf.size_bits(), 8u);
}

TEST(PaperExample, Table3SameDifferentDistinguishesAll) {
  const ResponseMatrix rm = paper_example();
  const SameDifferentDictionary sd =
      SameDifferentDictionary::build(rm, table3_baselines(rm));
  // Table 3 rows: f0=11, f1=10, f2=00, f3=01.
  EXPECT_EQ(sd.row(0).to_string(), "11");
  EXPECT_EQ(sd.row(1).to_string(), "10");
  EXPECT_EQ(sd.row(2).to_string(), "00");
  EXPECT_EQ(sd.row(3).to_string(), "01");
  EXPECT_EQ(sd.indistinguished_pairs(), 0u);
  EXPECT_EQ(sd.size_bits(), 2u * (4u + 2u));
}

TEST(PaperExample, SameDifferentWithFaultFreeBaselinesEqualsPassFail) {
  const ResponseMatrix rm = paper_example();
  const PassFailDictionary pf = PassFailDictionary::build(rm);
  const SameDifferentDictionary sd = SameDifferentDictionary::build(rm, {0, 0});
  for (FaultId f = 0; f < 4; ++f) EXPECT_EQ(sd.row(f), pf.row(f));
  EXPECT_EQ(sd.indistinguished_pairs(), pf.indistinguished_pairs());
  EXPECT_EQ(sd.num_nontrivial_baselines(), 0u);
}

TEST(PaperExample, BadBaselineDistinguishesNothing) {
  // A baseline no fault produces would set every bit to 1; our builder only
  // accepts ids in Z_j, which is exactly the paper's point that candidates
  // outside Z_j are useless.
  const ResponseMatrix rm = paper_example();
  EXPECT_THROW(SameDifferentDictionary::build(rm, {99, 0}),
               std::invalid_argument);
}

// ------------------------------------------------- dictionaries on c17  --

struct C17Fixture {
  Netlist nl = make_c17();
  FaultList faults = collapsed_fault_list(nl).collapsed;
  TestSet tests;
  ResponseMatrix rm;
  C17Fixture() : tests(5) {
    Rng rng(21);
    tests.add_random(12, rng);
    rm = build_response_matrix(nl, faults, tests);
  }
};

TEST(Dictionaries, ResolutionOrderingOnC17) {
  C17Fixture fx;
  const auto full = FullDictionary::build(fx.rm);
  const auto pf = PassFailDictionary::build(fx.rm);
  // Any baseline assignment is at least as coarse as the full dictionary.
  std::vector<ResponseId> some_baselines(fx.tests.size(), 0);
  for (std::size_t t = 0; t < fx.tests.size(); ++t)
    some_baselines[t] = fx.rm.num_distinct(t) > 1 ? 1 : 0;
  const auto sd = SameDifferentDictionary::build(fx.rm, some_baselines);
  EXPECT_LE(full.indistinguished_pairs(), sd.indistinguished_pairs());
  EXPECT_LE(full.indistinguished_pairs(), pf.indistinguished_pairs());
}

TEST(Dictionaries, DiagnoseExactMatchRanksFirst) {
  C17Fixture fx;
  const auto full = FullDictionary::build(fx.rm);
  // Use fault 3's own row as the observation.
  std::vector<ResponseId> observed(fx.tests.size());
  for (std::size_t t = 0; t < fx.tests.size(); ++t)
    observed[t] = fx.rm.response(3, t);
  const auto matches = full.diagnose(observed, 5);
  ASSERT_FALSE(matches.empty());
  EXPECT_EQ(matches[0].mismatches, 0u);
  // Fault 3 must be among the zero-mismatch candidates.
  bool found = false;
  for (const auto& m : matches)
    if (m.fault == 3 && m.mismatches == 0) found = true;
  EXPECT_TRUE(found);
}

TEST(Dictionaries, UnknownResponseMismatchesEveryone) {
  C17Fixture fx;
  const auto full = FullDictionary::build(fx.rm);
  std::vector<ResponseId> observed(fx.tests.size(), kUnknownResponse);
  const auto matches = full.diagnose(observed, 3);
  for (const auto& m : matches) EXPECT_EQ(m.mismatches, fx.tests.size());
}

TEST(Dictionaries, PassFailEncodeMatchesRows) {
  C17Fixture fx;
  const auto pf = PassFailDictionary::build(fx.rm);
  for (FaultId f = 0; f < fx.faults.size(); ++f) {
    std::vector<ResponseId> observed(fx.tests.size());
    for (std::size_t t = 0; t < fx.tests.size(); ++t)
      observed[t] = fx.rm.response(f, t);
    EXPECT_EQ(pf.encode(observed), pf.row(f));
  }
}

TEST(Dictionaries, SameDiffEncodeMatchesRows) {
  C17Fixture fx;
  std::vector<ResponseId> baselines(fx.tests.size(), 0);
  for (std::size_t t = 0; t < fx.tests.size(); ++t)
    baselines[t] = fx.rm.num_distinct(t) - 1;
  const auto sd = SameDifferentDictionary::build(fx.rm, baselines);
  for (FaultId f = 0; f < fx.faults.size(); ++f) {
    std::vector<ResponseId> observed(fx.tests.size());
    for (std::size_t t = 0; t < fx.tests.size(); ++t)
      observed[t] = fx.rm.response(f, t);
    EXPECT_EQ(sd.encode(observed), sd.row(f));
  }
}

TEST(Dictionaries, DiagnoseHammingRanking) {
  C17Fixture fx;
  const auto pf = PassFailDictionary::build(fx.rm);
  // Flip one bit of fault 0's signature: fault 0 should rank with exactly
  // one mismatch.
  BitVec obs = pf.row(0);
  obs.flip(0);
  const auto matches = pf.diagnose(obs, fx.faults.size());
  bool seen_f0 = false;
  for (const auto& m : matches)
    if (m.fault == 0) {
      EXPECT_EQ(m.mismatches, 1u);
      seen_f0 = true;
    }
  EXPECT_TRUE(seen_f0);
  // Ranking is non-decreasing.
  for (std::size_t i = 1; i < matches.size(); ++i)
    EXPECT_LE(matches[i - 1].mismatches, matches[i].mismatches);
}

TEST(Dictionaries, PartitionMatchesBruteForceRowComparison) {
  C17Fixture fx;
  const auto pf = PassFailDictionary::build(fx.rm);
  std::uint64_t brute = 0;
  for (FaultId a = 0; a < fx.faults.size(); ++a)
    for (FaultId b = a + 1; b < fx.faults.size(); ++b)
      if (pf.row(a) == pf.row(b)) ++brute;
  EXPECT_EQ(pf.indistinguished_pairs(), brute);
}

// ------------------------------------------------------------ serialize --

TEST(Serialize, PassFailRoundTrip) {
  C17Fixture fx;
  const auto pf = PassFailDictionary::build(fx.rm);
  std::stringstream ss;
  write_dictionary(pf, ss);
  const auto again = read_passfail_dictionary(ss);
  EXPECT_EQ(again.num_faults(), pf.num_faults());
  EXPECT_EQ(again.num_tests(), pf.num_tests());
  EXPECT_EQ(again.size_bits(), pf.size_bits());
  EXPECT_EQ(again.indistinguished_pairs(), pf.indistinguished_pairs());
  for (FaultId f = 0; f < pf.num_faults(); ++f)
    EXPECT_EQ(again.row(f), pf.row(f));
}

TEST(Serialize, SameDiffRoundTrip) {
  C17Fixture fx;
  std::vector<ResponseId> baselines(fx.tests.size());
  for (std::size_t t = 0; t < fx.tests.size(); ++t)
    baselines[t] = fx.rm.num_distinct(t) - 1;
  const auto sd = SameDifferentDictionary::build(fx.rm, baselines);
  std::stringstream ss;
  write_dictionary(sd, ss);
  const auto again = read_samediff_dictionary(ss);
  EXPECT_EQ(again.baselines(), sd.baselines());
  EXPECT_EQ(again.indistinguished_pairs(), sd.indistinguished_pairs());
  for (FaultId f = 0; f < sd.num_faults(); ++f)
    EXPECT_EQ(again.row(f), sd.row(f));
}

TEST(Serialize, FullRoundTrip) {
  C17Fixture fx;
  const auto full = FullDictionary::build(fx.rm);
  std::stringstream ss;
  write_dictionary(full, ss);
  const auto again = read_full_dictionary(ss);
  EXPECT_EQ(again.num_outputs(), full.num_outputs());
  EXPECT_EQ(again.indistinguished_pairs(), full.indistinguished_pairs());
  for (FaultId f = 0; f < full.num_faults(); ++f)
    for (std::size_t t = 0; t < full.num_tests(); ++t)
      EXPECT_EQ(again.entry(f, t), full.entry(f, t));
}

std::string to_crlf(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '\n') out += '\r';
    out += c;
  }
  return out;
}

TEST(Serialize, PassFailCrlfRoundTrip) {
  // Files round-tripped through Windows tooling carry \r\n endings; the
  // reader must strip the \r instead of failing the row-width check.
  C17Fixture fx;
  const auto pf = PassFailDictionary::build(fx.rm);
  std::stringstream ss;
  write_dictionary(pf, ss);
  std::stringstream crlf(to_crlf(ss.str()));
  const auto again = read_passfail_dictionary(crlf);
  EXPECT_EQ(again.indistinguished_pairs(), pf.indistinguished_pairs());
  for (FaultId f = 0; f < pf.num_faults(); ++f)
    EXPECT_EQ(again.row(f), pf.row(f));
}

TEST(Serialize, SameDiffCrlfRoundTrip) {
  C17Fixture fx;
  std::vector<ResponseId> baselines(fx.tests.size());
  for (std::size_t t = 0; t < fx.tests.size(); ++t)
    baselines[t] = fx.rm.num_distinct(t) - 1;
  const auto sd = SameDifferentDictionary::build(fx.rm, baselines);
  std::stringstream ss;
  write_dictionary(sd, ss);
  std::stringstream crlf(to_crlf(ss.str()));
  const auto again = read_samediff_dictionary(crlf);
  EXPECT_EQ(again.baselines(), sd.baselines());
  for (FaultId f = 0; f < sd.num_faults(); ++f)
    EXPECT_EQ(again.row(f), sd.row(f));
}

TEST(Serialize, FullCrlfRoundTrip) {
  C17Fixture fx;
  const auto full = FullDictionary::build(fx.rm);
  std::stringstream ss;
  write_dictionary(full, ss);
  std::stringstream crlf(to_crlf(ss.str()));
  const auto again = read_full_dictionary(crlf);
  EXPECT_EQ(again.indistinguished_pairs(), full.indistinguished_pairs());
  for (FaultId f = 0; f < full.num_faults(); ++f)
    for (std::size_t t = 0; t < full.num_tests(); ++t)
      EXPECT_EQ(again.entry(f, t), full.entry(f, t));
}

TEST(Serialize, RejectsTrailingGarbageAfterRows) {
  C17Fixture fx;
  const auto pf = PassFailDictionary::build(fx.rm);
  std::stringstream ss;
  write_dictionary(pf, ss);
  {
    // An extra row beyond the declared fault count is not silently ignored.
    std::stringstream extra(ss.str() + std::string(pf.num_tests(), '0') + "\n");
    EXPECT_THROW(read_passfail_dictionary(extra), std::runtime_error);
  }
  {
    std::stringstream junk(ss.str() + "junk");
    EXPECT_THROW(read_passfail_dictionary(junk), std::runtime_error);
  }
  {
    // Trailing blank lines are harmless, not garbage.
    std::stringstream blank(ss.str() + "\n\n");
    EXPECT_NO_THROW(read_passfail_dictionary(blank));
  }
}

TEST(Serialize, RejectsTrailingGarbageSameDiffAndFull) {
  C17Fixture fx;
  {
    std::vector<ResponseId> baselines(fx.tests.size(), 0);
    const auto sd = SameDifferentDictionary::build(fx.rm, baselines);
    std::stringstream ss;
    write_dictionary(sd, ss);
    std::stringstream junk(ss.str() + "0110\n");
    EXPECT_THROW(read_samediff_dictionary(junk), std::runtime_error);
  }
  {
    const auto full = FullDictionary::build(fx.rm);
    std::stringstream ss;
    write_dictionary(full, ss);
    std::stringstream junk(ss.str() + "7\n");
    EXPECT_THROW(read_full_dictionary(junk), std::runtime_error);
  }
}

TEST(Serialize, RejectsCorruptHeader) {
  std::stringstream ss("bogus v1\n");
  EXPECT_THROW(read_passfail_dictionary(ss), std::runtime_error);
}

TEST(Serialize, RejectsTruncatedRows) {
  std::stringstream ss("sddict-passfail v1\ntests 3 faults 2 outputs 1\n010\n");
  EXPECT_THROW(read_passfail_dictionary(ss), std::runtime_error);
}

TEST(FromRows, WidthValidated) {
  EXPECT_THROW(
      PassFailDictionary::from_rows({BitVec::from_string("01")}, 3, 1),
      std::invalid_argument);
}

}  // namespace
}  // namespace sddict
