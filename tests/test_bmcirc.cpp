#include <gtest/gtest.h>

#include "bmcirc/embedded.h"
#include "bmcirc/registry.h"
#include "bmcirc/synth.h"
#include "netlist/bench_io.h"
#include "netlist/stats.h"
#include "netlist/transform.h"
#include "sim/logicsim.h"

namespace sddict {
namespace {

TEST(Embedded, C17Shape) {
  const Netlist nl = make_c17();
  EXPECT_EQ(nl.num_inputs(), 5u);
  EXPECT_EQ(nl.num_outputs(), 2u);
  EXPECT_FALSE(nl.has_dffs());
  const NetlistStats s = compute_stats(nl);
  EXPECT_EQ(s.logic_gates, 6u);
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    if (nl.gate(g).type != GateType::kInput) {
      EXPECT_EQ(nl.gate(g).type, GateType::kNand);
    }
  }
}

TEST(Embedded, C17KnownResponses) {
  const Netlist nl = make_c17();
  // Inputs in declaration order: 1, 2, 3, 6, 7.
  // All zero: 10=NAND(0,0)=1, 11=NAND(0,0)=1, 16=NAND(0,1)=1,
  // 19=NAND(1,0)=1, 22=NAND(1,1)=0, 23=NAND(1,1)=0.
  EXPECT_EQ(simulate_pattern(nl, BitVec::from_string("00000")).to_string(),
            "00");
  // All ones: 10=NAND(1,1)=0, 11=0, 16=NAND(1,0)=1, 19=NAND(0,1)=1,
  // 22=NAND(0,1)=1, 23=NAND(1,1)=0.
  EXPECT_EQ(simulate_pattern(nl, BitVec::from_string("11111")).to_string(),
            "10");
}

TEST(Embedded, S27Shape) {
  const Netlist nl = make_s27();
  EXPECT_EQ(nl.num_inputs(), 4u);
  EXPECT_EQ(nl.num_outputs(), 1u);
  EXPECT_EQ(nl.dffs().size(), 3u);
  const NetlistStats s = compute_stats(nl);
  EXPECT_EQ(s.logic_gates, 10u);
}

TEST(Embedded, BenchTextRoundTrips) {
  const Netlist c17 = parse_bench_string(c17_bench_text(), "c17");
  EXPECT_EQ(c17.num_gates(), make_c17().num_gates());
  const Netlist s27 = parse_bench_string(s27_bench_text(), "s27");
  EXPECT_EQ(s27.dffs().size(), 3u);
}

// ---------------------------------------------------------------- synth --

TEST(Synth, DeterministicForSameProfile) {
  SynthProfile p;
  p.name = "d";
  p.inputs = 6;
  p.outputs = 4;
  p.dffs = 5;
  p.gates = 80;
  p.seed = 123;
  const std::string a = write_bench_string(generate_synthetic(p));
  const std::string b = write_bench_string(generate_synthetic(p));
  EXPECT_EQ(a, b);
}

TEST(Synth, DifferentSeedsDiffer) {
  SynthProfile p;
  p.name = "d";
  p.inputs = 6;
  p.outputs = 4;
  p.gates = 80;
  p.seed = 1;
  const std::string a = write_bench_string(generate_synthetic(p));
  p.seed = 2;
  const std::string b = write_bench_string(generate_synthetic(p));
  EXPECT_NE(a, b);
}

TEST(Synth, HonorsProfileCounts) {
  SynthProfile p;
  p.name = "prof";
  p.inputs = 12;
  p.outputs = 7;
  p.dffs = 9;
  p.gates = 150;
  p.seed = 55;
  const Netlist nl = generate_synthetic(p);
  EXPECT_EQ(nl.num_inputs(), 12u);
  EXPECT_EQ(nl.dffs().size(), 9u);
  const NetlistStats s = compute_stats(nl);
  EXPECT_EQ(s.logic_gates, 150u);
  // The dangler fix-up may add a few extra observation points.
  EXPECT_GE(nl.num_outputs(), 7u);
  EXPECT_LE(nl.num_outputs(), 7u + 10u);
}

TEST(Synth, NoDanglingLogic) {
  for (std::uint64_t seed : {1u, 9u, 33u}) {
    SynthProfile p;
    p.name = "nd";
    p.inputs = 8;
    p.outputs = 4;
    p.dffs = 6;
    p.gates = 100;
    p.seed = seed;
    const Netlist nl = generate_synthetic(p);
    for (GateId g = 0; g < nl.num_gates(); ++g) {
      const Gate& gate = nl.gate(g);
      if (gate.type == GateType::kInput || gate.type == GateType::kDff)
        continue;
      EXPECT_TRUE(!gate.fanout.empty() || nl.is_output(g))
          << gate.name << " dangles (seed " << seed << ")";
    }
  }
}

TEST(Synth, FullScanWorks) {
  SynthProfile p;
  p.name = "fs";
  p.inputs = 5;
  p.outputs = 3;
  p.dffs = 4;
  p.gates = 60;
  p.seed = 77;
  const Netlist scan = full_scan(generate_synthetic(p));
  EXPECT_EQ(scan.num_inputs(), 9u);
  EXPECT_FALSE(scan.has_dffs());
  scan.validate();
}

TEST(Synth, ValidatesArguments) {
  SynthProfile p;
  p.gates = 0;
  EXPECT_THROW(generate_synthetic(p), std::invalid_argument);
  p.gates = 10;
  p.inputs = 0;
  EXPECT_THROW(generate_synthetic(p), std::invalid_argument);
}

// ------------------------------------------------------------- registry --

TEST(Registry, NamesIncludePaperCircuits) {
  const auto names = benchmark_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "c17"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "s9234"), names.end());
  const auto t6 = table6_circuit_names();
  EXPECT_EQ(t6.size(), 16u);
  EXPECT_EQ(t6.front(), "s208");
  EXPECT_EQ(t6.back(), "s9234");
}

TEST(Registry, LoadsEveryName) {
  for (const auto& name : benchmark_names()) {
    EXPECT_TRUE(is_known_benchmark(name));
    const Netlist nl = load_benchmark(name);
    EXPECT_EQ(nl.name(), name);
    nl.validate();
  }
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_FALSE(is_known_benchmark("s99999"));
  EXPECT_THROW(load_benchmark("s99999"), std::invalid_argument);
  EXPECT_THROW(benchmark_profile("c17"), std::invalid_argument);
}

TEST(Registry, ProfilesMatchGeneratedCircuits) {
  for (const auto& name : {"s208", "s386", "s1423"}) {
    const SynthProfile p = benchmark_profile(name);
    const Netlist nl = load_benchmark(name);
    EXPECT_EQ(nl.num_inputs(), p.inputs);
    EXPECT_EQ(nl.dffs().size(), p.dffs);
    EXPECT_EQ(compute_stats(nl).logic_gates, p.gates);
  }
}

TEST(Registry, GenerationIsStableAcrossCalls) {
  const std::string a = write_bench_string(load_benchmark("s298"));
  const std::string b = write_bench_string(load_benchmark("s298"));
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace sddict
