#include <gtest/gtest.h>

#include "bmcirc/embedded.h"
#include "dict/detlist_dict.h"
#include "dict/passfail_dict.h"
#include "fault/collapse.h"
#include "sim/logicsim.h"

namespace sddict {
namespace {

struct Fixture {
  Netlist nl = make_c17();
  FaultList faults = collapsed_fault_list(nl).collapsed;
  TestSet tests;
  ResponseMatrix rm;
  Fixture() : tests(5) {
    Rng rng(41);
    tests.add_random(20, rng);
    rm = build_response_matrix(nl, faults, tests);
  }
};

TEST(DetectionList, ListsMatchPassFailBits) {
  Fixture fx;
  const auto dl = DetectionListDictionary::build(fx.rm);
  const auto pf = PassFailDictionary::build(fx.rm);
  ASSERT_EQ(dl.num_tests(), fx.tests.size());
  for (std::size_t t = 0; t < fx.tests.size(); ++t) {
    const auto& list = dl.detected_by(t);
    // Sorted, duplicate-free, and exactly the pass/fail 1-bits.
    for (std::size_t i = 1; i < list.size(); ++i)
      EXPECT_LT(list[i - 1], list[i]);
    std::size_t expected = 0;
    for (FaultId f = 0; f < fx.faults.size(); ++f) expected += pf.bit(f, t);
    EXPECT_EQ(list.size(), expected);
    for (FaultId f : list) EXPECT_TRUE(pf.bit(f, t));
  }
}

TEST(DetectionList, ResolutionIdenticalToPassFail) {
  Fixture fx;
  const auto dl = DetectionListDictionary::build(fx.rm);
  const auto pf = PassFailDictionary::build(fx.rm);
  EXPECT_EQ(dl.indistinguished_pairs(), pf.indistinguished_pairs());
}

TEST(DetectionList, SizeModel) {
  Fixture fx;
  const auto dl = DetectionListDictionary::build(fx.rm);
  // 22 faults -> 5 id bits, 5 length bits.
  EXPECT_EQ(dl.size_bits(),
            dl.total_entries() * 5 + fx.tests.size() * 5);
}

TEST(DetectionList, BreakevenDensity) {
  // With 22 faults, lists beat the bit matrix below 1/5 density.
  EXPECT_DOUBLE_EQ(DetectionListDictionary::breakeven_density(22), 1.0 / 5.0);
  EXPECT_DOUBLE_EQ(DetectionListDictionary::breakeven_density(1024), 1.0 / 10.0);
  // Sanity of the claim itself on this fixture.
  Fixture fx;
  const auto dl = DetectionListDictionary::build(fx.rm);
  const auto pf = PassFailDictionary::build(fx.rm);
  const double density =
      static_cast<double>(dl.total_entries()) /
      static_cast<double>(fx.faults.size() * fx.tests.size());
  if (density < 0.15) {  // clearly below breakeven (margin for length fields)
    EXPECT_LT(dl.size_bits(), pf.size_bits());
  }
}

}  // namespace
}  // namespace sddict
