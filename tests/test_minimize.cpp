#include <gtest/gtest.h>

#include "bmcirc/embedded.h"
#include "bmcirc/registry.h"
#include "core/baseline.h"
#include "core/minimize.h"
#include "dict/full_dict.h"
#include "dict/samediff_dict.h"
#include "fault/collapse.h"
#include "netlist/transform.h"
#include "sim/logicsim.h"

namespace sddict {
namespace {

struct Fixture {
  Netlist nl;
  FaultList faults;
  TestSet tests{0};
  ResponseMatrix rm;
  explicit Fixture(std::size_t k, std::uint64_t seed, const char* name = "c17") {
    nl = std::string(name) == "c17" ? make_c17()
                                    : full_scan(load_benchmark(name));
    faults = collapsed_fault_list(nl).collapsed;
    tests = TestSet(nl.num_inputs());
    Rng rng(seed);
    tests.add_random(k, rng);
    rm = build_response_matrix(nl, faults, tests);
  }
};

TEST(MinimizeFull, PreservesFullResolutionExactly) {
  Fixture fx(60, 3);
  const auto before = FullDictionary::build(fx.rm).indistinguished_pairs();
  const MinimizeResult min = minimize_tests_full(fx.rm);
  EXPECT_EQ(min.indistinguished_pairs, before);
  EXPECT_EQ(min.kept_tests.size() + min.dropped, fx.tests.size());

  const TestSet small = fx.tests.subset(min.kept_tests);
  const ResponseMatrix rm2 = build_response_matrix(fx.nl, fx.faults, small);
  EXPECT_EQ(FullDictionary::build(rm2).indistinguished_pairs(), before);
}

TEST(MinimizeFull, DropsRedundantDuplicatesAggressively) {
  // A test set with every test duplicated must lose at least half.
  Fixture fx(20, 5);
  TestSet doubled(fx.nl.num_inputs());
  doubled.append(fx.tests);
  doubled.append(fx.tests);
  const ResponseMatrix rm =
      build_response_matrix(fx.nl, fx.faults, doubled);
  const MinimizeResult min = minimize_tests_full(rm);
  EXPECT_LE(min.kept_tests.size(), fx.tests.size());
}

TEST(MinimizeFull, KeptIndicesAscendingAndValid) {
  Fixture fx(40, 7);
  const MinimizeResult min = minimize_tests_full(fx.rm);
  for (std::size_t i = 1; i < min.kept_tests.size(); ++i)
    EXPECT_LT(min.kept_tests[i - 1], min.kept_tests[i]);
  for (std::size_t j : min.kept_tests) EXPECT_LT(j, fx.tests.size());
}

TEST(MinimizeSameDiff, PreservesDictionaryResolution) {
  Fixture fx(60, 9);
  BaselineSelectionConfig cfg;
  cfg.calls1 = 3;
  const auto p1 = run_procedure1(fx.rm, cfg);
  const MinimizeResult min = minimize_tests_samediff(fx.rm, p1.baselines);
  EXPECT_EQ(min.indistinguished_pairs, p1.indistinguished_pairs);

  // Rebuild the dictionary on the kept tests only and verify.
  const TestSet small = fx.tests.subset(min.kept_tests);
  std::vector<ResponseId> small_baselines;
  for (std::size_t j : min.kept_tests)
    small_baselines.push_back(p1.baselines[j]);
  const ResponseMatrix rm2 = build_response_matrix(fx.nl, fx.faults, small);
  // Response ids are interned per matrix, so translate via signatures.
  for (std::size_t idx = 0; idx < min.kept_tests.size(); ++idx) {
    const std::size_t orig = min.kept_tests[idx];
    if (small_baselines[idx] == 0) continue;
    const Hash128 sig = fx.rm.signature(orig, small_baselines[idx]);
    const ResponseId translated = rm2.find_response(idx, sig);
    ASSERT_NE(translated, static_cast<ResponseId>(-1));
    small_baselines[idx] = translated;
  }
  const auto sd = SameDifferentDictionary::build(rm2, small_baselines);
  EXPECT_EQ(sd.indistinguished_pairs(), p1.indistinguished_pairs);
}

TEST(MinimizeSameDiff, AllPassColumnsAlwaysDropped) {
  // Append the all-zero test twice; under fault-free baselines a column
  // detecting nothing distinguishes nothing... but the all-zero input may
  // detect faults, so instead check: duplicated columns collapse.
  Fixture fx(15, 11);
  TestSet doubled(fx.nl.num_inputs());
  doubled.append(fx.tests);
  doubled.append(fx.tests);
  const ResponseMatrix rm = build_response_matrix(fx.nl, fx.faults, doubled);
  const std::vector<ResponseId> baselines(rm.num_tests(), 0);
  const MinimizeResult min = minimize_tests_samediff(rm, baselines);
  EXPECT_LE(min.kept_tests.size(), fx.tests.size());
}

TEST(MinimizeSameDiff, BaselineCountValidated) {
  Fixture fx(10, 13);
  EXPECT_THROW(minimize_tests_samediff(fx.rm, {0}), std::invalid_argument);
}

TEST(Minimize, RealisticShrinkOnBenchmark) {
  Fixture fx(200, 15, "s298");
  const MinimizeResult min = minimize_tests_full(fx.rm);
  // 200 random tests on s298 carry substantial redundancy.
  EXPECT_LT(min.kept_tests.size(), fx.tests.size());
  EXPECT_GT(min.dropped, 0u);
}

}  // namespace
}  // namespace sddict
