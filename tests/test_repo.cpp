// Repository suite (ISSUE 5): the DictionaryRepository artifact catalog
// and the hot-swap serving path over it.
//
//  * manifest round-trip, and the corruption gate — byte-flip and
//    truncation fuzz over EVERY manifest byte must yield a named
//    ManifestError, never a crash or a silently wrong catalog;
//  * publish/acquire round-trip with version monotonicity, re-open from
//    disk, and size/CRC validation of the artifact against its entry;
//  * provenance-based stale detection (empty fields are wildcards);
//  * LRU eviction under a tiny byte budget, with load/evict/hit counters
//    and handed-out pointers surviving eviction;
//  * background refresh on the shared ThreadPool (skip when fresh, build
//    and publish when stale);
//  * the hot-swap identity gate — 4 producer threads querying through a
//    repository-backed DiagnosisService while a byte-identical-content
//    version is published and swapped in mid-stream: every future
//    resolves, zero errors, every ranking identical to the direct engine
//    call — plus cache invalidation when a swap actually changes content;
//  * crash-consistency via the publish failpoints: a failure before or
//    between the two atomic writes never corrupts the catalog.
//
// Registered under the "serving" ctest label; the tsan preset includes it.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <future>
#include <stdexcept>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bmcirc/synth.h"
#include "diag/engine.h"
#include "dict/samediff_dict.h"
#include "fault/collapse.h"
#include "faultinject.h"
#include "repo/manifest.h"
#include "repo/repository.h"
#include "serve/diagnosis_service.h"
#include "sim/response.h"
#include "sim/testset.h"
#include "store/signature_store.h"
#include "util/crc32.h"
#include "util/failpoint.h"
#include "util/fileio.h"
#include "util/rng.h"

namespace sddict {
namespace {

using testing::ScopedFailPoint;
using testing::flip_byte;
using testing::truncate_to;

// ------------------------------------------------------------- fixtures --

ResponseMatrix repo_matrix() {
  SynthProfile profile;
  profile.name = "repo";
  profile.inputs = 10;
  profile.outputs = 4;
  profile.dffs = 0;
  profile.gates = 80;
  profile.seed = 0x4e90;
  const Netlist nl = generate_synthetic(profile);
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  TestSet tests(nl.num_inputs());
  Rng rng(11);
  tests.add_random(48, rng);
  ResponseMatrixStatus status;
  return build_response_matrix(nl, faults, tests, {.store_diff_outputs = true},
                               &status);
}

const ResponseMatrix& rm() {
  static const ResponseMatrix m = repo_matrix();
  return m;
}

std::vector<ResponseId> sd_baselines(int phase) {
  std::vector<ResponseId> bl(rm().num_tests(), 0);
  for (std::size_t t = 0; t < rm().num_tests(); ++t)
    if (rm().num_distinct(t) > 1 && t % 2 == static_cast<std::size_t>(phase))
      bl[t] = 1;
  return bl;
}

const SameDifferentDictionary& sd_dict() {
  static const SameDifferentDictionary d =
      SameDifferentDictionary::build(rm(), sd_baselines(0));
  return d;
}

std::vector<std::vector<Observed>> observation_stream(std::size_t count,
                                                      std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<Observed>> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto f = static_cast<FaultId>(rng.below(rm().num_faults()));
    std::vector<ResponseId> ids(rm().num_tests());
    for (std::size_t t = 0; t < rm().num_tests(); ++t)
      ids[t] = rm().response(f, t);
    out.push_back(qualify(ids));
  }
  return out;
}

void expect_same_diagnosis(const EngineDiagnosis& a, const EngineDiagnosis& b,
                           const char* what) {
  EXPECT_EQ(a.outcome, b.outcome) << what;
  EXPECT_EQ(a.best_mismatches, b.best_mismatches) << what;
  EXPECT_EQ(a.margin, b.margin) << what;
  EXPECT_EQ(a.effective_tests, b.effective_tests) << what;
  EXPECT_EQ(a.completed, b.completed) << what;
  ASSERT_EQ(a.matches.size(), b.matches.size()) << what;
  for (std::size_t i = 0; i < a.matches.size(); ++i) {
    EXPECT_EQ(a.matches[i].fault, b.matches[i].fault) << what << " #" << i;
    EXPECT_EQ(a.matches[i].mismatches, b.matches[i].mismatches)
        << what << " #" << i;
  }
}

// A fresh, empty repository directory under the test temp dir.
std::string fresh_repo_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "sddict_repo_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

Provenance make_prov(const std::string& tests_hex,
                     const std::string& faults_hex, const std::string& config) {
  Provenance p;
  p.tests_hash = tests_hex;
  p.faults_hash = faults_hex;
  p.config = config;
  return p;
}

// ------------------------------------------------------------- manifest --

Manifest sample_manifest() {
  Manifest m;
  ManifestEntry a;
  a.circuit = "s27";
  a.kind = StoreSource::kSameDifferent;
  a.version = 1;
  a.file = "s27.same-different.v1.store";
  a.bytes = 12288;
  a.file_crc = 0xdeadbeef;
  a.provenance = make_prov("0123456789abcdef0123456789abcdef",
                           "fedcba9876543210fedcba9876543210",
                           "ttype=diag,seed=7");
  a.build_ms = 12.5;
  a.built_unix = 1754524800;
  ManifestEntry b = a;
  b.version = 2;
  b.file = "s27.same-different.v2.store";
  b.provenance = Provenance{};  // all wildcards -> "-" tokens on disk
  ManifestEntry c;
  c.circuit = "s344";
  c.kind = StoreSource::kPassFail;
  c.version = 1;
  c.file = "s344.pass-fail.v1.store";
  c.bytes = 8192;
  c.file_crc = 1;
  // Delta records (ISSUE 10) ride in the same manifest, so the byte-flip
  // and truncation fuzz below covers their line type too: one delta with
  // added columns, one drop-only delta (no artifact file at all).
  ManifestEntry d;
  d.circuit = "s344";
  d.kind = StoreSource::kPassFail;
  d.version = 2;
  d.file = "s344.pass-fail.v2.delta";
  d.bytes = 4096;
  d.file_crc = 0xabad1dea;
  d.is_delta = true;
  d.base_version = 1;
  d.added_tests = 5;
  d.dropped = {4, 8, 9, 10, 12};
  d.provenance = make_prov("00112233445566778899aabbccddeeff", "", "append=5");
  d.build_ms = 3.25;
  d.built_unix = 1754611200;
  ManifestEntry e;
  e.circuit = "s344";
  e.kind = StoreSource::kPassFail;
  e.version = 3;
  e.is_delta = true;
  e.base_version = 2;
  e.added_tests = 0;
  e.dropped = {0, 1, 2, 3, 7};
  m.entries = {a, b, c, d, e};
  return m;
}

TEST(Manifest, RoundTripPreservesEveryField) {
  const Manifest m = sample_manifest();
  const Manifest back = read_manifest_string(write_manifest_string(m));
  ASSERT_EQ(back.entries.size(), m.entries.size());
  for (std::size_t i = 0; i < m.entries.size(); ++i)
    EXPECT_EQ(back.entries[i], m.entries[i]) << "entry #" << i;
}

TEST(Manifest, FindAndVersioning) {
  const Manifest m = sample_manifest();
  const ManifestEntry* latest = m.find("s27", StoreSource::kSameDifferent);
  ASSERT_NE(latest, nullptr);
  EXPECT_EQ(latest->version, 2u);
  EXPECT_EQ(m.find_version("s27", StoreSource::kSameDifferent, 1)->file,
            "s27.same-different.v1.store");
  EXPECT_EQ(m.find("s27", StoreSource::kFull), nullptr);
  EXPECT_EQ(m.next_version("s27", StoreSource::kSameDifferent), 3u);
  EXPECT_EQ(m.next_version("s999", StoreSource::kPassFail), 1u);
}

TEST(Manifest, KindTokensRoundTrip) {
  for (std::uint32_t s = 0;
       s <= static_cast<std::uint32_t>(StoreSource::kDetectionList); ++s) {
    StoreSource parsed{};
    ASSERT_TRUE(parse_store_source(
        store_source_name(static_cast<StoreSource>(s)), &parsed));
    EXPECT_EQ(parsed, static_cast<StoreSource>(s));
  }
  StoreSource parsed{};
  EXPECT_FALSE(parse_store_source("bogus", &parsed));
}

TEST(Manifest, StrictSchemaRejectsUnknownAndMissingKeys) {
  const std::string good = write_manifest_string(sample_manifest());
  const auto message_of = [](const std::string& text) -> std::string {
    try {
      read_manifest_string(text);
    } catch (const ManifestError& e) {
      return e.what();
    }
    return "";
  };
  // Rebuild a manifest by hand with an extra key: parse must name it. The
  // trailer has to be recomputed, which write_manifest_string does not
  // expose — splice the body instead.
  std::string body = good.substr(0, good.rfind("crc32"));
  body.insert(body.find(" kind="), " extra=1");
  Manifest bad;
  char buf[32];
  std::snprintf(buf, sizeof buf, "crc32 0x%08x\n", crc32(body));
  EXPECT_NE(message_of(body + buf).find("unknown key 'extra'"),
            std::string::npos);

  std::string missing = good.substr(0, good.rfind("crc32"));
  const std::size_t at = missing.find(" bytes=");
  missing.erase(at, missing.find(' ', at + 1) - at);
  std::snprintf(buf, sizeof buf, "crc32 0x%08x\n", crc32(missing));
  EXPECT_NE(message_of(missing + buf).find("missing key 'bytes'"),
            std::string::npos);
}

// Delta lines carry three extra keys (base/added/dropped) with their own
// validity rules; each violation must be a named ManifestError. Edits are
// applied to the serialized body and the CRC trailer recomputed, so the
// parser sees schema problems, not checksum noise.
TEST(Manifest, DeltaSchemaIsStrict) {
  const std::string good = write_manifest_string(sample_manifest());
  const auto message_after = [&](const std::string& from,
                                 const std::string& to) -> std::string {
    std::string body = good.substr(0, good.rfind("crc32"));
    const std::size_t at = body.find(from);
    if (at == std::string::npos) return "edit target '" + from + "' not found";
    body.replace(at, from.size(), to);
    char buf[32];
    std::snprintf(buf, sizeof buf, "crc32 0x%08x\n", crc32(body));
    try {
      read_manifest_string(body + buf);
    } catch (const ManifestError& e) {
      return e.what();
    }
    return "";
  };
  // The base must exist below the delta's own version.
  EXPECT_NE(message_after("version=2 base=1", "version=2 base=2").find("base"),
            std::string::npos);
  EXPECT_NE(message_after("version=2 base=1", "version=2 base=0").find("base"),
            std::string::npos);
  // added=0 <=> file="-": break each direction.
  EXPECT_FALSE(message_after(" added=5", " added=0").empty());
  EXPECT_FALSE(
      message_after("file=s344.pass-fail.v2.delta", "file=-").empty());
  // Nothing added AND nothing dropped is not a delta.
  EXPECT_NE(message_after("added=0 dropped=0-3,7", "added=0 dropped=-")
                .find("empty delta"),
            std::string::npos);
  // Drop lists must be strictly ascending closed ranges.
  EXPECT_FALSE(message_after("dropped=4,8-10,12", "dropped=4,3").empty());
  EXPECT_FALSE(message_after("dropped=4,8-10,12", "dropped=9-8").empty());
  EXPECT_FALSE(message_after("dropped=4,8-10,12", "dropped=4,x").empty());
  // Absurd range spans are rejected before any allocation.
  EXPECT_FALSE(
      message_after("dropped=4,8-10,12", "dropped=0-18446744073709551615")
          .empty());
  // A full entry line must not carry delta keys.
  EXPECT_NE(message_after("entry circuit=s344 kind=pass/fail version=1",
                          "entry circuit=s344 kind=pass/fail version=1 base=0")
                .find("base"),
            std::string::npos);
}

// The corruption acceptance gate: EVERY single-byte flip and EVERY
// truncation of a valid manifest must surface as ManifestError.
TEST(ManifestFuzz, EveryByteFlipIsANamedError) {
  const std::string bytes = write_manifest_string(sample_manifest());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    try {
      read_manifest_string(flip_byte(bytes, i));
      FAIL() << "flip at byte " << i << " was accepted";
    } catch (const ManifestError& e) {
      EXPECT_EQ(std::string(e.what()).rfind("manifest:", 0), 0u)
          << "flip at byte " << i;
    }
    // Any other exception type escapes and fails the test.
  }
}

TEST(ManifestFuzz, EveryTruncationIsANamedError) {
  const std::string bytes = write_manifest_string(sample_manifest());
  for (std::size_t size = 0; size < bytes.size(); ++size) {
    try {
      read_manifest_string(truncate_to(bytes, size));
      FAIL() << "truncation to " << size << " bytes was accepted";
    } catch (const ManifestError&) {
    }
  }
}

// ----------------------------------------------------- publish / acquire --

TEST(Repository, PublishAcquireRoundTrip) {
  const std::string dir = fresh_repo_dir("roundtrip");
  DictionaryRepository repo(dir);
  const SignatureStore store = SignatureStore::build(sd_dict());
  const ManifestEntry e =
      repo.publish("synth", StoreSource::kSameDifferent, store,
                   make_prov("aa", "bb", "cfg"), 3.25);
  EXPECT_EQ(e.version, 1u);
  EXPECT_EQ(e.bytes, store.size_bytes());
  EXPECT_TRUE(file_exists(dir + "/" + e.file));

  const auto acquired = repo.acquire("synth", StoreSource::kSameDifferent);
  ASSERT_NE(acquired, nullptr);
  EXPECT_EQ(acquired->num_faults(), sd_dict().num_faults());
  for (const auto& obs : observation_stream(4, 0x91)) {
    expect_same_diagnosis(diagnose_observed(*acquired, obs),
                          diagnose_observed(sd_dict(), obs), "acquired");
  }

  // Versions are monotonic, and a re-opened repository sees the catalog.
  const ManifestEntry e2 = repo.publish("synth", StoreSource::kSameDifferent,
                                        store, make_prov("aa", "bb", "cfg"));
  EXPECT_EQ(e2.version, 2u);
  DictionaryRepository reopened(dir);
  EXPECT_EQ(reopened.manifest().entries.size(), 2u);
  EXPECT_NE(reopened.acquire_version("synth", StoreSource::kSameDifferent, 1),
            nullptr);
  EXPECT_THROW(reopened.acquire("absent", StoreSource::kSameDifferent),
               std::runtime_error);
  EXPECT_THROW(
      reopened.acquire_version("synth", StoreSource::kSameDifferent, 99),
      std::runtime_error);
}

TEST(Repository, CorruptArtifactIsANamedErrorNotAWrongAnswer) {
  const std::string dir = fresh_repo_dir("corrupt");
  std::string file;
  {
    DictionaryRepository repo(dir);
    file = repo.publish("synth", StoreSource::kSameDifferent,
                        SignatureStore::build(sd_dict()), Provenance{})
               .file;
  }
  const std::string path = dir + "/" + file;
  const std::string original = read_file_bytes(path);

  // A flipped payload byte fails CRC validation against the manifest.
  atomic_write_file(path, flip_byte(original, original.size() / 2));
  {
    DictionaryRepository repo(dir);
    try {
      repo.acquire("synth", StoreSource::kSameDifferent);
      FAIL() << "corrupt artifact was served";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("mismatch"), std::string::npos);
    }
  }
  // A truncated artifact fails the size check (or the store parser).
  atomic_write_file(path, truncate_to(original, original.size() - 1));
  {
    DictionaryRepository repo(dir);
    EXPECT_THROW(repo.acquire("synth", StoreSource::kSameDifferent),
                 std::runtime_error);
  }
  // Restored bytes serve again.
  atomic_write_file(path, original);
  DictionaryRepository repo(dir);
  EXPECT_NE(repo.acquire("synth", StoreSource::kSameDifferent), nullptr);
}

TEST(Repository, CorruptManifestFailsAtOpen) {
  const std::string dir = fresh_repo_dir("badmanifest");
  {
    DictionaryRepository repo(dir);
    repo.publish("synth", StoreSource::kSameDifferent,
                 SignatureStore::build(sd_dict()), Provenance{});
  }
  const std::string path = dir + "/" + DictionaryRepository::kManifestName;
  atomic_write_file(path, flip_byte(read_file_bytes(path), 3));
  EXPECT_THROW(DictionaryRepository{dir}, ManifestError);
}

// ------------------------------------------------------ stale detection --

TEST(Repository, StaleDetectionComparesProvenance) {
  const std::string dir = fresh_repo_dir("stale");
  DictionaryRepository repo(dir);
  const Provenance prov = make_prov("aaaa", "bbbb", "ttype=diag");

  // Nothing cataloged: everything is stale.
  EXPECT_TRUE(repo.is_stale("synth", StoreSource::kSameDifferent, prov));

  repo.publish("synth", StoreSource::kSameDifferent,
               SignatureStore::build(sd_dict()), prov);
  EXPECT_FALSE(repo.is_stale("synth", StoreSource::kSameDifferent, prov));
  EXPECT_TRUE(repo.is_stale("synth", StoreSource::kSameDifferent,
                            make_prov("cccc", "bbbb", "ttype=diag")));
  EXPECT_TRUE(repo.is_stale("synth", StoreSource::kSameDifferent,
                            make_prov("aaaa", "bbbb", "ttype=10det")));
  // Empty fields are wildcards on either side.
  EXPECT_FALSE(repo.is_stale("synth", StoreSource::kSameDifferent,
                             make_prov("", "", "")));
  EXPECT_FALSE(repo.is_stale("synth", StoreSource::kSameDifferent,
                             make_prov("aaaa", "", "")));
  // A different kind is uncataloged, hence stale.
  EXPECT_TRUE(repo.is_stale("synth", StoreSource::kPassFail, prov));
}

// ------------------------------------------------------------- eviction --

TEST(Repository, EvictionUnderTinyByteBudget) {
  const std::string dir = fresh_repo_dir("evict");
  RepositoryOptions opts;
  opts.cache_bytes = 1;  // every second insert must evict the first
  DictionaryRepository repo(dir, opts);
  const SignatureStore store = SignatureStore::build(sd_dict());
  repo.publish("a", StoreSource::kSameDifferent, store, Provenance{});
  repo.publish("b", StoreSource::kSameDifferent, store, Provenance{});
  repo.publish("c", StoreSource::kSameDifferent, store, Provenance{});

  auto a = repo.acquire("a", StoreSource::kSameDifferent);
  auto b = repo.acquire("b", StoreSource::kSameDifferent);
  auto c = repo.acquire("c", StoreSource::kSameDifferent);
  RepositoryStats s = repo.stats();
  EXPECT_EQ(s.loads, 3u);
  EXPECT_EQ(s.misses, 3u);
  EXPECT_EQ(s.evictions, 2u);
  EXPECT_EQ(s.cached_entries, 1u);
  EXPECT_EQ(s.cached_bytes, store.size_bytes());

  // Eviction dropped the cache's reference only: handed-out pointers still
  // answer queries.
  const auto obs = observation_stream(1, 0x7)[0];
  expect_same_diagnosis(diagnose_observed(*a, obs),
                        diagnose_observed(sd_dict(), obs), "evicted ptr");

  // Re-acquiring an evicted entry is a fresh load (and evicts "c"); the
  // immediate re-acquire of the now-cached "a" is the one hit.
  repo.acquire("a", StoreSource::kSameDifferent);
  repo.acquire("a", StoreSource::kSameDifferent);
  s = repo.stats();
  EXPECT_EQ(s.loads, 4u);
  EXPECT_EQ(s.hits, 1u);

  // Dropping the last reference retires the store.
  const std::uint64_t retired_before = repo.stats().retired;
  b.reset();  // b was evicted from the cache, so this was the last ref
  EXPECT_EQ(repo.stats().retired, retired_before + 1);
  a.reset();
  c.reset();
}

// ---------------------------------------------------- background refresh --

TEST(Repository, RefreshAsyncSkipsFreshAndBuildsStale) {
  const std::string dir = fresh_repo_dir("refresh");
  DictionaryRepository repo(dir);
  ThreadPool pool(2);
  const Provenance prov = make_prov("aaaa", "bbbb", "cfg");

  bool built = false;
  const auto builder = [&built](const RunBudget&) {
    built = true;
    return SignatureStore::build(sd_dict());
  };

  // Stale (empty catalog): builds and publishes v1.
  ManifestEntry e1 = repo.refresh_async(pool, "synth",
                                        StoreSource::kSameDifferent, builder,
                                        prov)
                         .get();
  EXPECT_TRUE(built);
  EXPECT_EQ(e1.version, 1u);
  EXPECT_GE(e1.build_ms, 0.0);
  EXPECT_EQ(e1.provenance.tests_hash, "aaaa");

  // Fresh: resolves with the existing entry, builder not called.
  built = false;
  ManifestEntry e2 = repo.refresh_async(pool, "synth",
                                        StoreSource::kSameDifferent, builder,
                                        prov)
                         .get();
  EXPECT_FALSE(built);
  EXPECT_EQ(e2.version, 1u);

  // Stale provenance: rebuilds as v2.
  ManifestEntry e3 =
      repo.refresh_async(pool, "synth", StoreSource::kSameDifferent, builder,
                         make_prov("ffff", "bbbb", "cfg"))
          .get();
  EXPECT_TRUE(built);
  EXPECT_EQ(e3.version, 2u);

  // A throwing builder surfaces through the future.
  auto failing = repo.refresh_async(
      pool, "other", StoreSource::kSameDifferent,
      [](const RunBudget&) -> SignatureStore {
        throw std::runtime_error("builder exploded");
      },
      Provenance{});
  EXPECT_THROW(failing.get(), std::runtime_error);
}

// -------------------------------------------------------------- hot swap --

// The acceptance gate: 4 producers query a repository-backed service while
// a byte-identical-content version is published and swapped in mid-stream.
// Zero dropped or errored requests, and every ranking matches the direct
// engine call (equivalently, a single-store DiagnosisService).
TEST(RepositoryHotSwap, IdentityUnderConcurrentSwaps) {
  const std::string dir = fresh_repo_dir("hotswap");
  DictionaryRepository repo(dir);
  const SignatureStore store = SignatureStore::build(sd_dict());
  repo.publish("synth", StoreSource::kSameDifferent, store, Provenance{});

  ServiceOptions opts;
  opts.threads = 2;
  opts.batch = 4;
  opts.cache = 64;
  DiagnosisService service(repo.acquire("synth", StoreSource::kSameDifferent),
                           opts);

  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 24;
  std::vector<std::vector<std::vector<Observed>>> streams;
  for (std::size_t p = 0; p < kProducers; ++p)
    streams.push_back(observation_stream(kPerProducer, 0x1000 + p));

  std::vector<std::vector<std::future<ServiceResponse>>> futures(kProducers);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (const auto& obs : streams[p])
        futures[p].push_back(service.submit(obs));
    });
  }

  // Mid-stream: republish (byte-identical content -> new version) and
  // hot-swap, several times, while the producers are pounding the queue.
  for (int round = 0; round < 3; ++round) {
    repo.publish("synth", StoreSource::kSameDifferent, store, Provenance{});
    repo.reload();
    service.swap_store(repo.acquire("synth", StoreSource::kSameDifferent));
  }

  for (auto& t : producers) t.join();
  std::size_t resolved = 0;
  for (std::size_t p = 0; p < kProducers; ++p) {
    for (std::size_t i = 0; i < futures[p].size(); ++i) {
      const ServiceResponse r = futures[p][i].get();  // throws on any error
      expect_same_diagnosis(r.diagnosis,
                            diagnose_observed(sd_dict(), streams[p][i]),
                            "hot-swap identity");
      ++resolved;
    }
  }
  EXPECT_EQ(resolved, kProducers * kPerProducer);
  EXPECT_EQ(service.stats().swaps, 3u);
  EXPECT_EQ(repo.stats().published, 4u);
}

TEST(RepositoryHotSwap, SwapToChangedContentInvalidatesTheCache) {
  const SameDifferentDictionary other =
      SameDifferentDictionary::build(rm(), sd_baselines(1));
  auto v1 = std::make_shared<const SignatureStore>(
      SignatureStore::build(sd_dict()));
  auto v2 =
      std::make_shared<const SignatureStore>(SignatureStore::build(other));

  ServiceOptions opts;
  opts.threads = 1;
  opts.batch = 1;
  opts.cache = 64;
  DiagnosisService service(v1, opts);
  EXPECT_EQ(service.current_store().get(), v1.get());

  const auto stream = observation_stream(6, 0x77);
  for (const auto& obs : stream)
    expect_same_diagnosis(service.diagnose(obs).diagnosis,
                          diagnose_observed(sd_dict(), obs), "pre-swap");

  service.swap_store(v2);
  EXPECT_EQ(service.current_store().get(), v2.get());
  // Random faults can repeat (or be response-equivalent) within the
  // stream; a repeat may hit the post-swap cache, but the FIRST sighting
  // of each observation after the swap must miss — the pre-swap rankings
  // were flushed — and every answer must come from the new store.
  std::set<std::string> seen;
  for (const auto& obs : stream) {
    std::string key;
    for (const Observed& o : obs) {
      key += std::to_string(o.value);
      key += static_cast<char>('0' + static_cast<int>(o.status));
      key += ',';
    }
    const bool first_sighting = seen.insert(key).second;
    const ServiceResponse r = service.diagnose(obs);
    if (first_sighting) {
      EXPECT_FALSE(r.cache_hit) << "stale ranking served across a swap";
    }
    expect_same_diagnosis(r.diagnosis, diagnose_observed(other, obs),
                          "post-swap");
  }
  EXPECT_EQ(service.stats().swaps, 1u);
}

TEST(RepositoryHotSwap, SwapOutsideRepositoryModeThrows) {
  DiagnosisService service(SignatureStore::build(sd_dict()), ServiceOptions{});
  EXPECT_EQ(service.current_store(), nullptr);
  EXPECT_THROW(service.swap_store(std::make_shared<const SignatureStore>(
                   SignatureStore::build(sd_dict()))),
               std::runtime_error);
  auto shared = std::make_shared<const SignatureStore>(
      SignatureStore::build(sd_dict()));
  DiagnosisService swappable(shared, ServiceOptions{});
  EXPECT_THROW(swappable.swap_store(nullptr), std::runtime_error);
}

// ----------------------------------------------------- crash consistency --

TEST(RepositoryCrash, FailedPublishNeverCorruptsTheCatalog) {
  const std::string dir = fresh_repo_dir("crash");
  DictionaryRepository repo(dir);
  const SignatureStore store = SignatureStore::build(sd_dict());
  repo.publish("synth", StoreSource::kSameDifferent, store, Provenance{});
  const Manifest before = repo.manifest();

  // Crash before anything is written.
  {
    ScopedFailPoint fp("repo.publish.store");
    EXPECT_THROW(repo.publish("synth", StoreSource::kSameDifferent, store,
                              Provenance{}),
                 failpoint::InjectedFault);
  }
  // Crash after the store file, before the manifest: orphaned store file,
  // catalog unchanged.
  {
    ScopedFailPoint fp("repo.publish.manifest");
    EXPECT_THROW(repo.publish("synth", StoreSource::kSameDifferent, store,
                              Provenance{}),
                 failpoint::InjectedFault);
  }
  // Crash inside the atomic store-file write (before its rename): the
  // destination is untouched and no temp file is left behind.
  {
    ScopedFailPoint fp("fileio.rename");
    EXPECT_THROW(repo.publish("synth", StoreSource::kSameDifferent, store,
                              Provenance{}),
                 failpoint::InjectedFault);
  }

  EXPECT_EQ(repo.manifest().entries, before.entries);
  DictionaryRepository reopened(dir);  // the on-disk catalog parses clean
  EXPECT_EQ(reopened.manifest().entries, before.entries);
  EXPECT_NE(reopened.acquire("synth", StoreSource::kSameDifferent), nullptr);

  // And a later publish (failpoints gone) succeeds with the next version.
  const ManifestEntry e = repo.publish("synth", StoreSource::kSameDifferent,
                                       store, Provenance{});
  EXPECT_EQ(e.version, 2u);
  repo.reload();
  EXPECT_NE(repo.acquire_version("synth", StoreSource::kSameDifferent, 2),
            nullptr);
}

}  // namespace
}  // namespace sddict
