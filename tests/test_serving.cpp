// Serving suite (ISSUE 4): the DiagnosisService over packed stores and
// dictionaries.
//
//  * the single-query equivalence gate — a service configured with
//    batch = 1, cache off and no deadline returns results bit-identical to
//    calling diagnose_observed() directly, for ALL FIVE dictionary types
//    (pass/fail, same/different, multi-baseline, first-fail, full) and the
//    store-backed path, on clean and on noisy observations;
//  * batching and caching preserve those results, with cache_hit reported
//    on repeats;
//  * per-request deadlines resolve (anytime semantics) instead of throwing;
//  * the bounded MPMC queue under concurrent producers with backpressure
//    (queue_capacity intentionally tiny) — the test tsan actually cares
//    about;
//  * shutdown drains everything, further submits throw, stats survive;
//  * malformed observations resolve the future with the engine's
//    std::invalid_argument instead of poisoning the service.
//
// Registered under the "serving" ctest label; the tsan preset includes it.
#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "bmcirc/synth.h"
#include "diag/engine.h"
#include "dict/firstfail_dict.h"
#include "dict/full_dict.h"
#include "dict/multibaseline_dict.h"
#include "dict/passfail_dict.h"
#include "dict/samediff_dict.h"
#include "fault/collapse.h"
#include "faultinject.h"
#include "serve/diagnosis_service.h"
#include "sim/response.h"
#include "sim/testset.h"
#include "store/signature_store.h"
#include "util/rng.h"

namespace sddict {
namespace {

using testing::NoiseChannel;
using testing::apply_noise;

// ------------------------------------------------------------- fixtures --

ResponseMatrix serving_matrix() {
  SynthProfile profile;
  profile.name = "serve";
  profile.inputs = 10;
  profile.outputs = 4;
  profile.dffs = 0;
  profile.gates = 80;
  profile.seed = 0x5e2e;
  const Netlist nl = generate_synthetic(profile);
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  TestSet tests(nl.num_inputs());
  Rng rng(9);
  tests.add_random(60, rng);
  ResponseMatrixStatus status;
  return build_response_matrix(nl, faults, tests, {.store_diff_outputs = true},
                               &status);
}

const ResponseMatrix& rm() {
  static const ResponseMatrix m = serving_matrix();
  return m;
}

const FullDictionary& full_dict() {
  static const FullDictionary d = FullDictionary::build(rm());
  return d;
}

std::vector<ResponseId> sd_baselines() {
  std::vector<ResponseId> bl(rm().num_tests(), 0);
  for (std::size_t t = 0; t < rm().num_tests(); ++t)
    if (rm().num_distinct(t) > 1 && t % 2 == 0) bl[t] = 1;
  return bl;
}

std::vector<std::vector<ResponseId>> mb_baselines() {
  std::vector<std::vector<ResponseId>> bl(rm().num_tests());
  for (std::size_t t = 0; t < rm().num_tests(); ++t) {
    bl[t].push_back(0);
    if (rm().num_distinct(t) > 1 && t % 3 == 0) bl[t].push_back(1);
  }
  return bl;
}

std::vector<ResponseId> fault_response(FaultId f) {
  std::vector<ResponseId> obs(rm().num_tests());
  for (std::size_t t = 0; t < rm().num_tests(); ++t)
    obs[t] = full_dict().entry(f, t);
  return obs;
}

// Clean and degraded observation streams over the same fault set: every
// odd observation goes through the seeded noise channel (flips into other
// modeled ids or kUnknownResponse, drops records to kMissing).
std::vector<std::vector<Observed>> observation_stream(std::size_t count,
                                                      std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<Observed>> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto f = static_cast<FaultId>(rng.below(rm().num_faults()));
    const std::vector<ResponseId> ids = fault_response(f);
    if (i % 2 == 0) {
      out.push_back(qualify(ids));
    } else {
      out.push_back(apply_noise(
          ids, rm(),
          NoiseChannel{.flip_rate = 0.1, .drop_rate = 0.1, .seed = seed + i}));
    }
  }
  return out;
}

void expect_same_diagnosis(const EngineDiagnosis& a, const EngineDiagnosis& b,
                           const char* what) {
  EXPECT_EQ(a.outcome, b.outcome) << what;
  EXPECT_EQ(a.best_mismatches, b.best_mismatches) << what;
  EXPECT_EQ(a.margin, b.margin) << what;
  EXPECT_EQ(a.effective_tests, b.effective_tests) << what;
  EXPECT_EQ(a.dont_care_tests, b.dont_care_tests) << what;
  EXPECT_EQ(a.unknown_tests, b.unknown_tests) << what;
  EXPECT_EQ(a.completed, b.completed) << what;
  EXPECT_EQ(a.stop_reason, b.stop_reason) << what;
  EXPECT_EQ(a.cover, b.cover) << what;
  EXPECT_EQ(a.uncovered_failures, b.uncovered_failures) << what;
  ASSERT_EQ(a.matches.size(), b.matches.size()) << what;
  for (std::size_t i = 0; i < a.matches.size(); ++i) {
    EXPECT_EQ(a.matches[i].fault, b.matches[i].fault) << what << " #" << i;
    EXPECT_EQ(a.matches[i].mismatches, b.matches[i].mismatches)
        << what << " #" << i;
    EXPECT_EQ(a.matches[i].margin, b.matches[i].margin) << what << " #" << i;
    EXPECT_EQ(a.matches[i].effective_tests, b.matches[i].effective_tests)
        << what << " #" << i;
  }
}

// The gate configuration the header documents: no batching, no cache, no
// deadline — a service response must be bit-identical to the direct call.
ServiceOptions gate_options() {
  ServiceOptions o;
  o.threads = 1;
  o.batch = 1;
  o.cache = 0;
  return o;
}

template <typename Backend>
void run_equivalence_gate(Backend backend, const char* what) {
  DiagnosisService service(backend, gate_options());
  for (const auto& obs : observation_stream(10, 0xabc)) {
    const ServiceResponse r = service.diagnose(obs);
    EXPECT_FALSE(r.cache_hit) << what;
    expect_same_diagnosis(r.diagnosis, diagnose_observed(backend, obs), what);
  }
}

// ------------------------------------------------------ equivalence gate --

TEST(ServingGate, PassFail) {
  run_equivalence_gate(PassFailDictionary::build(rm()), "pass/fail");
}

TEST(ServingGate, SameDifferent) {
  run_equivalence_gate(SameDifferentDictionary::build(rm(), sd_baselines()),
                       "same/different");
}

TEST(ServingGate, MultiBaseline) {
  run_equivalence_gate(MultiBaselineDictionary::build(rm(), mb_baselines()),
                       "multi-baseline");
}

TEST(ServingGate, Full) { run_equivalence_gate(full_dict(), "full"); }

TEST(ServingGate, FirstFail) {
  const FirstFailDictionary ff = FirstFailDictionary::build(rm());
  DiagnosisService service(ff, rm(), gate_options());
  for (const auto& obs : observation_stream(10, 0xdef)) {
    const ServiceResponse r = service.diagnose(obs);
    expect_same_diagnosis(r.diagnosis, diagnose_observed(ff, rm(), obs),
                          "first-fail");
  }
}

TEST(ServingGate, StoreBacked) {
  const SameDifferentDictionary sd =
      SameDifferentDictionary::build(rm(), sd_baselines());
  DiagnosisService service(SignatureStore::build(sd), gate_options());
  EXPECT_EQ(service.num_tests(), sd.num_tests());
  EXPECT_EQ(service.num_faults(), sd.num_faults());
  for (const auto& obs : observation_stream(10, 0x111)) {
    expect_same_diagnosis(service.diagnose(obs).diagnosis,
                          diagnose_observed(sd, obs), "store-backed");
  }
}

// ------------------------------------------------------- batching, cache --

TEST(Serving, BatchedServiceMatchesDirectCalls) {
  const SameDifferentDictionary sd =
      SameDifferentDictionary::build(rm(), sd_baselines());
  ServiceOptions o;
  o.threads = 2;
  o.batch = 4;
  o.cache = 0;
  DiagnosisService service(SignatureStore::build(sd), o);

  const auto stream = observation_stream(24, 0x222);
  std::vector<std::future<ServiceResponse>> futures;
  futures.reserve(stream.size());
  for (const auto& obs : stream) futures.push_back(service.submit(obs));
  for (std::size_t i = 0; i < stream.size(); ++i)
    expect_same_diagnosis(futures[i].get().diagnosis,
                          diagnose_observed(sd, stream[i]), "batched");

  const ServiceStats s = service.stats();
  EXPECT_EQ(s.requests, stream.size());
  EXPECT_GE(s.batches, 1u);
  EXPECT_LE(s.batches, s.requests);
  EXPECT_EQ(s.cache_hits, 0u);
}

TEST(Serving, CacheHitsOnRepeatsWithIdenticalResults) {
  const PassFailDictionary pf = PassFailDictionary::build(rm());
  ServiceOptions o;
  o.threads = 1;
  o.batch = 4;
  o.cache = 64;
  DiagnosisService service(SignatureStore::build(pf), o);

  const auto stream = observation_stream(8, 0x333);
  std::vector<EngineDiagnosis> first;
  std::size_t first_hits = 0;  // the stream may repeat a query by chance
  for (const auto& obs : stream) {
    const ServiceResponse r = service.diagnose(obs);
    if (r.cache_hit) ++first_hits;
    first.push_back(r.diagnosis);
  }
  // Replay: every repeat must hit and return the identical diagnosis.
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const ServiceResponse r = service.diagnose(stream[i]);
    EXPECT_TRUE(r.cache_hit) << "replay #" << i;
    expect_same_diagnosis(r.diagnosis, first[i], "cached replay");
  }
  const ServiceStats s = service.stats();
  EXPECT_EQ(s.cache_hits, stream.size() + first_hits);
  EXPECT_EQ(s.cache_misses, stream.size() - first_hits);
}

TEST(Serving, CacheEvictsBeyondCapacity) {
  const PassFailDictionary pf = PassFailDictionary::build(rm());
  ServiceOptions o;
  o.threads = 1;
  o.batch = 1;
  o.cache = 2;
  DiagnosisService service(pf, o);

  const auto stream = observation_stream(6, 0x444);
  for (const auto& obs : stream) service.diagnose(obs);
  // Oldest entries were evicted: replaying the first query misses again.
  EXPECT_FALSE(service.diagnose(stream[0]).cache_hit);
  // The most recent query is still resident.
  EXPECT_TRUE(service.diagnose(stream[5]).cache_hit);
}

// --------------------------------------------------------------- deadline --

TEST(Serving, ExpiredDeadlineResolvesAnytime) {
  const SameDifferentDictionary sd =
      SameDifferentDictionary::build(rm(), sd_baselines());
  ServiceOptions o;
  o.threads = 1;
  o.batch = 1;
  o.cache = 0;
  o.deadline_ms = 1e-6;  // expires before the first restart check
  DiagnosisService service(SignatureStore::build(sd), o);

  const auto stream = observation_stream(4, 0x555);
  for (const auto& obs : stream) {
    const ServiceResponse r = service.diagnose(obs);  // must not throw
    if (!r.diagnosis.completed) {
      EXPECT_EQ(r.diagnosis.stop_reason, StopReason::kDeadline);
    }
  }
  // Nothing incomplete may have entered the cache-tally as a hit.
  EXPECT_EQ(service.stats().cache_hits, 0u);
  EXPECT_EQ(service.stats().requests, stream.size());
}

// ------------------------------------------------- MPMC queue, shutdown --

TEST(Serving, ConcurrentProducersThroughTinyQueue) {
  const PassFailDictionary pf = PassFailDictionary::build(rm());
  ServiceOptions o;
  o.threads = 2;
  o.batch = 2;
  o.cache = 8;
  o.queue_capacity = 2;  // force submit() to block on backpressure
  DiagnosisService service(SignatureStore::build(pf), o);

  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 8;
  std::vector<std::thread> producers;
  std::vector<std::vector<std::future<ServiceResponse>>> futures(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      const auto stream = observation_stream(kPerProducer, 0x600 + p);
      for (const auto& obs : stream)
        futures[p].push_back(service.submit(obs));
    });
  }
  for (auto& t : producers) t.join();
  // Every future resolves (no deadlock, no dropped request).
  for (auto& fs : futures)
    for (auto& f : fs) EXPECT_NO_THROW(f.get());
  EXPECT_EQ(service.stats().requests, kProducers * kPerProducer);
}

TEST(Serving, ShutdownDrainsThenRejects) {
  const PassFailDictionary pf = PassFailDictionary::build(rm());
  ServiceOptions o;
  o.threads = 1;
  o.batch = 4;
  DiagnosisService service(pf, o);

  const auto stream = observation_stream(6, 0x777);
  std::vector<std::future<ServiceResponse>> futures;
  for (const auto& obs : stream) futures.push_back(service.submit(obs));
  service.shutdown();
  // Everything submitted before shutdown resolved.
  for (auto& f : futures)
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  // New submissions are refused; stats remain readable.
  EXPECT_THROW(service.submit(stream[0]), std::runtime_error);
  EXPECT_EQ(service.stats().requests, stream.size());
  service.shutdown();  // idempotent
}

// Drain introspection: what the fleet's rolling-restart path keys off —
// after shutdown() the gauges must prove quiescence (queue_depth == 0,
// in_flight == 0, accepting() false), and a swap_store() racing the
// drain is serialized, never torn: every request resolves and the swap
// is counted exactly once.
TEST(Serving, DrainIntrospectionProvesQuiescence) {
  const SameDifferentDictionary sd =
      SameDifferentDictionary::build(rm(), sd_baselines());
  auto v1 = std::make_shared<const SignatureStore>(SignatureStore::build(sd));
  auto v2 = std::make_shared<const SignatureStore>(SignatureStore::build(sd));
  ServiceOptions o;
  o.threads = 2;
  o.batch = 2;
  o.cache = 0;
  DiagnosisService service(v1, o);
  EXPECT_TRUE(service.accepting());

  const auto stream = observation_stream(12, 0x778);
  std::vector<std::future<ServiceResponse>> futures;
  for (const auto& obs : stream) futures.push_back(service.submit(obs));
  std::thread swapper([&] { service.swap_store(v2); });
  service.shutdown();
  swapper.join();

  for (auto& f : futures)
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  const ServiceStats s = service.stats();
  EXPECT_EQ(s.queue_depth, 0u);
  EXPECT_EQ(s.in_flight, 0u);
  EXPECT_EQ(s.requests, stream.size());
  EXPECT_EQ(s.swaps, 1u);
  EXPECT_FALSE(service.accepting());
  EXPECT_THROW(service.submit(stream[0]), std::runtime_error);
}

// try_submit: the non-blocking admission primitive the networked front
// end (src/net) sheds with. A full queue returns nullopt — tallied in
// shed_count — instead of parking the caller, accepted futures all still
// resolve, and the queue_depth/in_flight gauges read zero once drained.
TEST(Serving, TrySubmitShedsWhenQueueFullInsteadOfBlocking) {
  const PassFailDictionary pf = PassFailDictionary::build(rm());
  ServiceOptions o;
  o.threads = 1;
  o.batch = 1;
  o.cache = 0;
  o.queue_capacity = 1;
  DiagnosisService service(SignatureStore::build(pf), o);

  const auto obs = observation_stream(1, 0xaaa).front();
  std::vector<std::future<ServiceResponse>> accepted;
  std::uint64_t shed = 0;
  // try_submit costs nanoseconds; ranking costs far more. A tight loop
  // over a one-slot queue must observe it full long before the attempt
  // bound.
  for (int i = 0; i < 100000 && shed == 0; ++i) {
    auto fut = service.try_submit(obs);
    if (fut.has_value())
      accepted.push_back(std::move(*fut));
    else
      ++shed;
  }
  EXPECT_GT(shed, 0u);
  // A shed is a refusal, never a hang or a lost accepted request.
  for (auto& f : accepted) EXPECT_NO_THROW(f.get());

  // The dispatcher resolves the future before it zeroes the in-flight
  // gauge, so give it a bounded moment to go quiescent.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    const ServiceStats g = service.stats();
    if (g.queue_depth == 0 && g.in_flight == 0 &&
        g.requests == accepted.size())
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const ServiceStats s = service.stats();
  EXPECT_EQ(s.shed_count, shed);
  EXPECT_EQ(s.requests, accepted.size());
  EXPECT_EQ(s.queue_depth, 0u);  // drained: gauges back to zero
  EXPECT_EQ(s.in_flight, 0u);
  EXPECT_EQ(service.queue_depth(), 0u);
  const std::string text = format_service_stats(s);
  EXPECT_NE(text.find(" shed="), std::string::npos);
  EXPECT_NE(text.find(" queue_depth="), std::string::npos);
  EXPECT_NE(text.find(" in_flight="), std::string::npos);

  service.shutdown();
  EXPECT_THROW(service.try_submit(obs), std::runtime_error);
}

TEST(Serving, MalformedObservationResolvesWithEngineError) {
  const PassFailDictionary pf = PassFailDictionary::build(rm());
  DiagnosisService service(SignatureStore::build(pf), gate_options());
  std::future<ServiceResponse> bad =
      service.submit(std::vector<Observed>(3, Observed::of(0)));
  EXPECT_THROW(bad.get(), std::invalid_argument);
  // The service survives a poisoned request.
  const auto obs = observation_stream(1, 0x888).front();
  EXPECT_NO_THROW(service.diagnose(obs));
}

TEST(Serving, StatsTallyOutcomesAndFormat) {
  const SameDifferentDictionary sd =
      SameDifferentDictionary::build(rm(), sd_baselines());
  ServiceOptions o;
  o.threads = 1;
  o.batch = 2;
  o.cache = 16;
  DiagnosisService service(SignatureStore::build(sd), o);
  for (const auto& obs : observation_stream(12, 0x999)) service.diagnose(obs);

  const ServiceStats s = service.stats();
  EXPECT_EQ(s.requests, 12u);
  std::uint64_t outcome_sum = 0;
  for (const std::uint64_t c : s.outcomes) outcome_sum += c;
  EXPECT_EQ(outcome_sum, s.requests);
  EXPECT_EQ(s.cache_hits + s.cache_misses, s.requests);
  EXPECT_GE(s.p99_ms, s.p50_ms);
  EXPECT_GE(s.max_ms, 0.0);
  const std::string text = format_service_stats(s);
  EXPECT_NE(text.find("requests"), std::string::npos);
  EXPECT_NE(text.find("p99"), std::string::npos);
}

// ------------------------------------------------- latency percentiles --

// percentile_from_buckets over hand-built histograms. The regression this
// pins: when the cumulative count crosses the target in a bucket that is
// itself empty (the crossing happened earlier and a gap follows), the
// reported bound must be that of the last NON-EMPTY bucket — a latency
// some request actually recorded — not the empty bucket's.
TEST(Serving, PercentileFromHandBuiltHistograms) {
  std::uint64_t buckets[64] = {};

  // All mass in one bucket: every percentile reports that bucket's bound.
  buckets[5] = 100;
  EXPECT_DOUBLE_EQ(percentile_from_buckets(buckets, 100, 0.50),
                   bucket_upper_ms(5));
  EXPECT_DOUBLE_EQ(percentile_from_buckets(buckets, 100, 0.99),
                   bucket_upper_ms(5));

  // Bimodal with a gap: 90 fast (bucket 2), 10 slow (bucket 9). p50 lands
  // inside the fast mode, p99 inside the slow one; neither may report a
  // bound from the empty buckets 3..8 in between.
  std::fill(std::begin(buckets), std::end(buckets), 0);
  buckets[2] = 90;
  buckets[9] = 10;
  EXPECT_DOUBLE_EQ(percentile_from_buckets(buckets, 100, 0.50),
                   bucket_upper_ms(2));
  EXPECT_DOUBLE_EQ(percentile_from_buckets(buckets, 100, 0.90),
                   bucket_upper_ms(2));
  EXPECT_DOUBLE_EQ(percentile_from_buckets(buckets, 100, 0.91),
                   bucket_upper_ms(9));
  EXPECT_DOUBLE_EQ(percentile_from_buckets(buckets, 100, 0.99),
                   bucket_upper_ms(9));

  // Empty histogram: degenerate, reports 0.
  std::fill(std::begin(buckets), std::end(buckets), 0);
  EXPECT_DOUBLE_EQ(percentile_from_buckets(buckets, 0, 0.99), 0.0);

  // Mass only in the last bucket: the final-bucket fallback still returns
  // a real bound.
  buckets[63] = 1;
  EXPECT_DOUBLE_EQ(percentile_from_buckets(buckets, 1, 0.99),
                   bucket_upper_ms(63));
}

// latency_bucket / bucket_upper_ms invariants: every latency's bucket
// bound is >= the latency itself (so percentiles are upper bounds), and
// the mapping is monotone.
TEST(Serving, LatencyBucketBoundsAreUpperBounds) {
  const double samples[] = {0.0,  0.0005, 0.001, 0.004, 0.1,
                            1.0,  1.5,    16.0,  250.0, 10000.0};
  for (const double ms : samples) {
    const std::size_t b = latency_bucket(ms);
    ASSERT_LT(b, 64u);
    EXPECT_GE(bucket_upper_ms(b), ms) << "ms=" << ms;
  }
  std::size_t prev = 0;
  for (double ms = 0.001; ms < 1000.0; ms *= 1.7) {
    const std::size_t b = latency_bucket(ms);
    EXPECT_GE(b, prev);
    prev = b;
  }
}

}  // namespace
}  // namespace sddict
