#include <gtest/gtest.h>

#include <algorithm>

#include "bmcirc/embedded.h"
#include "diag/observe.h"
#include "diag/probe.h"
#include "dict/passfail_dict.h"
#include "fault/collapse.h"
#include "sim/logicsim.h"

namespace sddict {
namespace {

struct Fixture {
  Netlist nl = make_c17();
  FaultList faults = collapsed_fault_list(nl).collapsed;
  TestSet tests;
  ResponseMatrix rm;
  Fixture() : tests(5) {
    for (std::size_t v = 0; v < 32; ++v) {
      BitVec in(5);
      for (std::size_t i = 0; i < 5; ++i) in.set(i, (v >> i) & 1);
      tests.add(in);
    }
    rm = build_response_matrix(nl, faults, tests);
  }
  // Pass/fail candidates tied at best match for a stuck defect.
  std::vector<FaultId> pf_candidates(FaultId truth) const {
    const auto pf = PassFailDictionary::build(rm);
    const auto observed =
        observe_defect(nl, tests, rm, {to_injection(faults[truth])});
    const auto ranked = pf.diagnose(pf.encode(observed), faults.size());
    std::vector<FaultId> out;
    for (const auto& m : ranked)
      if (m.mismatches == ranked.front().mismatches) out.push_back(m.fault);
    return out;
  }
};

TEST(GuidedProbe, KeepsTruthAndNeverGrows) {
  Fixture fx;
  for (FaultId truth = 0; truth < fx.faults.size(); truth += 4) {
    auto candidates = fx.pf_candidates(truth);
    const std::size_t before = candidates.size();
    const auto oracle = stuck_probe_oracle(fx.nl, fx.tests, fx.faults[truth]);
    const ProbeResult res =
        guided_probe(fx.nl, fx.faults, fx.tests, candidates, oracle);
    EXPECT_LE(res.final_candidates.size(), before);
    EXPECT_NE(std::find(res.final_candidates.begin(),
                        res.final_candidates.end(), truth),
              res.final_candidates.end())
        << "truth " << truth << " lost during probing";
  }
}

TEST(GuidedProbe, ResolvesTiedPassFailCandidates) {
  Fixture fx;
  // Find a defect whose pass/fail tie is larger than 1 and check probing
  // shrinks it strictly.
  for (FaultId truth = 0; truth < fx.faults.size(); ++truth) {
    auto candidates = fx.pf_candidates(truth);
    if (candidates.size() < 2) continue;
    const auto oracle = stuck_probe_oracle(fx.nl, fx.tests, fx.faults[truth]);
    const ProbeResult res =
        guided_probe(fx.nl, fx.faults, fx.tests, candidates, oracle);
    EXPECT_LT(res.final_candidates.size(), candidates.size());
    EXPECT_FALSE(res.steps.empty());
    for (const auto& step : res.steps) {
      EXPECT_LT(step.net, fx.nl.num_gates());
      EXPECT_LT(step.test, fx.tests.size());
    }
    return;  // one case suffices
  }
  GTEST_SKIP() << "no tied pass/fail candidates on this circuit";
}

TEST(GuidedProbe, SingleCandidateReturnsImmediately) {
  Fixture fx;
  const auto oracle = stuck_probe_oracle(fx.nl, fx.tests, fx.faults[0]);
  const ProbeResult res =
      guided_probe(fx.nl, fx.faults, fx.tests, {FaultId{0}}, oracle);
  EXPECT_TRUE(res.steps.empty());
  ASSERT_EQ(res.final_candidates.size(), 1u);
  EXPECT_EQ(res.final_candidates[0], 0u);
}

TEST(GuidedProbe, MaxProbesRespected) {
  Fixture fx;
  std::vector<FaultId> all(fx.faults.size());
  for (FaultId f = 0; f < fx.faults.size(); ++f) all[f] = f;
  const auto oracle = stuck_probe_oracle(fx.nl, fx.tests, fx.faults[3]);
  ProbeOptions opts;
  opts.max_probes = 2;
  const ProbeResult res =
      guided_probe(fx.nl, fx.faults, fx.tests, all, oracle, opts);
  EXPECT_LE(res.steps.size(), 2u);
}

TEST(GuidedProbe, StuckOracleReadsStuckValueAtSite) {
  Fixture fx;
  // An output stuck-at-1 fault: probing the site reads 1 under every test.
  StuckFault f{fx.nl.find("10"), -1, 1};
  const auto oracle = stuck_probe_oracle(fx.nl, fx.tests, f);
  for (std::size_t t = 0; t < 8; ++t) EXPECT_TRUE(oracle(f.gate, t));
}

TEST(GuidedProbe, BridgeOracleReadsWiredValue) {
  Fixture fx;
  const BridgingFault br{fx.nl.find("10"), fx.nl.find("11"),
                         BridgeType::kWiredAnd};
  const auto oracle = bridge_probe_oracle(fx.nl, fx.tests, br);
  // Wired-AND reading at either net = AND of the two pre-bridge values.
  for (std::size_t t = 0; t < 16; ++t) {
    const BitVec& in = fx.tests[t];
    // Net 10 = NAND(in0, in2); net 11 = NAND(in2, in3) (c17 input order
    // 1,2,3,6,7 -> indices 0..4; 10 = NAND(1,3)=NAND(i0,i2), 11 =
    // NAND(3,6)=NAND(i2,i3)).
    const bool v10 = !(in.get(0) && in.get(2));
    const bool v11 = !(in.get(2) && in.get(3));
    EXPECT_EQ(oracle(br.a, t), v10 && v11) << t;
    EXPECT_EQ(oracle(br.b, t), v10 && v11) << t;
  }
}

TEST(GuidedProbe, BridgeDefectStopsCleanlyWhenUnmodeled) {
  Fixture fx;
  // Probing a bridge while all candidates are stuck-at faults may reach a
  // reading no candidate predicts — the engine must stop with a non-empty
  // set rather than discard everything.
  const BridgingFault br{fx.nl.find("10"), fx.nl.find("19"),
                         BridgeType::kWiredOr};
  std::vector<FaultId> all(fx.faults.size());
  for (FaultId f = 0; f < fx.faults.size(); ++f) all[f] = f;
  const auto oracle = bridge_probe_oracle(fx.nl, fx.tests, br);
  const ProbeResult res = guided_probe(fx.nl, fx.faults, fx.tests, all, oracle);
  EXPECT_FALSE(res.final_candidates.empty());
}

}  // namespace
}  // namespace sddict
