#include <gtest/gtest.h>

#include <numeric>

#include "bmcirc/embedded.h"
#include "core/multibaseline.h"
#include "dict/full_dict.h"
#include "dict/multibaseline_dict.h"
#include "dict/passfail_dict.h"
#include "dict/samediff_dict.h"
#include "fault/collapse.h"
#include "sim/logicsim.h"

namespace sddict {
namespace {

ResponseMatrix paper_example() {
  const std::vector<BitVec> ff = {BitVec::from_string("00"),
                                  BitVec::from_string("00")};
  const std::vector<std::vector<BitVec>> faulty = {
      {BitVec::from_string("10"), BitVec::from_string("11")},
      {BitVec::from_string("00"), BitVec::from_string("10")},
      {BitVec::from_string("01"), BitVec::from_string("10")},
      {BitVec::from_string("01"), BitVec::from_string("00")},
  };
  return response_matrix_from_table(ff, faulty);
}

ResponseMatrix c17_matrix(std::size_t num_tests, std::uint64_t seed,
                          FaultList* out_faults = nullptr) {
  static const Netlist nl = make_c17();
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  if (out_faults != nullptr) *out_faults = faults;
  TestSet tests(nl.num_inputs());
  Rng rng(seed);
  tests.add_random(num_tests, rng);
  return build_response_matrix(nl, faults, tests);
}

TEST(MultiBaselineDict, RankOneMatchesSameDifferent) {
  const ResponseMatrix rm = c17_matrix(10, 3);
  std::vector<ResponseId> single(rm.num_tests());
  std::vector<std::vector<ResponseId>> multi(rm.num_tests());
  for (std::size_t t = 0; t < rm.num_tests(); ++t) {
    single[t] = rm.num_distinct(t) - 1;
    multi[t] = {single[t]};
  }
  const auto sd = SameDifferentDictionary::build(rm, single);
  const auto mb = MultiBaselineDictionary::build(rm, multi);
  EXPECT_EQ(mb.baselines_per_test(), 1u);
  EXPECT_EQ(mb.indistinguished_pairs(), sd.indistinguished_pairs());
  EXPECT_EQ(mb.size_bits(), sd.size_bits());
  for (FaultId f = 0; f < rm.num_faults(); ++f)
    EXPECT_EQ(mb.row(f), sd.row(f));
}

TEST(MultiBaselineDict, SecondBaselineOnlyRefines) {
  const ResponseMatrix rm = c17_matrix(12, 5);
  std::vector<std::vector<ResponseId>> one(rm.num_tests()), two(rm.num_tests());
  for (std::size_t t = 0; t < rm.num_tests(); ++t) {
    one[t] = {0};
    two[t] = rm.num_distinct(t) > 1 ? std::vector<ResponseId>{0, 1}
                                    : std::vector<ResponseId>{0};
  }
  const auto d1 = MultiBaselineDictionary::build(rm, one);
  const auto d2 = MultiBaselineDictionary::build(rm, two);
  EXPECT_LE(d2.indistinguished_pairs(), d1.indistinguished_pairs());
}

TEST(MultiBaselineDict, PartitionMatchesBruteForceRows) {
  const ResponseMatrix rm = c17_matrix(9, 7);
  std::vector<std::vector<ResponseId>> baselines(rm.num_tests());
  for (std::size_t t = 0; t < rm.num_tests(); ++t) {
    baselines[t] = {0};
    if (rm.num_distinct(t) > 2) baselines[t].push_back(2);
  }
  const auto d = MultiBaselineDictionary::build(rm, baselines);
  std::uint64_t brute = 0;
  for (FaultId a = 0; a < rm.num_faults(); ++a)
    for (FaultId b = a + 1; b < rm.num_faults(); ++b)
      if (d.row(a) == d.row(b)) ++brute;
  EXPECT_EQ(d.indistinguished_pairs(), brute);
}

TEST(MultiBaselineDict, ValidatesInput) {
  const ResponseMatrix rm = paper_example();
  EXPECT_THROW(MultiBaselineDictionary::build(rm, {{0}}),
               std::invalid_argument);  // wrong test count
  EXPECT_THROW(MultiBaselineDictionary::build(rm, {{0, 0}, {0}}),
               std::invalid_argument);  // duplicate in one test
  EXPECT_THROW(MultiBaselineDictionary::build(rm, {{9}, {0}}),
               std::invalid_argument);  // id out of range
  EXPECT_THROW(MultiBaselineDictionary::build(rm, {{}, {}}),
               std::invalid_argument);  // no baselines at all
}

TEST(MultiBaselineDict, RaggedSetsSupported) {
  const ResponseMatrix rm = paper_example();
  const auto d = MultiBaselineDictionary::build(rm, {{0, 1}, {0}});
  EXPECT_EQ(d.baselines_per_test(), 2u);
  // Test 1's missing second slot is a constant-1 column.
  for (FaultId f = 0; f < rm.num_faults(); ++f)
    EXPECT_TRUE(d.bit(f, 1, 1));
}

TEST(MultiBaselineDict, EncodeMatchesRows) {
  const ResponseMatrix rm = c17_matrix(8, 11);
  std::vector<std::vector<ResponseId>> baselines(rm.num_tests());
  for (std::size_t t = 0; t < rm.num_tests(); ++t) {
    baselines[t] = {static_cast<ResponseId>(rm.num_distinct(t) - 1)};
    if (rm.num_distinct(t) > 1) baselines[t].push_back(0);
  }
  const auto d = MultiBaselineDictionary::build(rm, baselines);
  for (FaultId f = 0; f < rm.num_faults(); ++f) {
    std::vector<ResponseId> observed(rm.num_tests());
    for (std::size_t t = 0; t < rm.num_tests(); ++t)
      observed[t] = rm.response(f, t);
    EXPECT_EQ(d.encode(observed), d.row(f));
  }
  // Diagnosis finds the encoded fault at zero mismatches.
  std::vector<ResponseId> observed(rm.num_tests());
  for (std::size_t t = 0; t < rm.num_tests(); ++t)
    observed[t] = rm.response(2, t);
  const auto matches = d.diagnose(d.encode(observed), 3);
  ASSERT_FALSE(matches.empty());
  EXPECT_EQ(matches[0].mismatches, 0u);
}

TEST(MultiBaselineSelect, PaperExampleRankTwoIsPerfect) {
  const ResponseMatrix rm = paper_example();
  const auto sel = multi_baseline_single(rm, 2, {0, 1}, 10);
  EXPECT_EQ(sel.indistinguished_pairs, 0u);
  const auto d = MultiBaselineDictionary::build(rm, sel.baselines);
  EXPECT_EQ(d.indistinguished_pairs(), 0u);
}

TEST(MultiBaselineSelect, SelectionConsistentWithDictionary) {
  const ResponseMatrix rm = c17_matrix(10, 13);
  for (std::size_t rank : {1u, 2u, 3u}) {
    std::vector<std::size_t> order(rm.num_tests());
    std::iota(order.begin(), order.end(), std::size_t{0});
    const auto sel = multi_baseline_single(rm, rank, order, 10);
    const auto d = MultiBaselineDictionary::build(rm, sel.baselines);
    EXPECT_EQ(d.indistinguished_pairs(), sel.indistinguished_pairs)
        << "rank " << rank;
  }
}

TEST(MultiBaselineSelect, HigherRankNeverHurtsWithRestarts) {
  FaultList faults;
  const ResponseMatrix rm = c17_matrix(10, 17, &faults);
  BaselineSelectionConfig cfg;
  cfg.calls1 = 5;
  cfg.target_indistinguished =
      FullDictionary::build(rm).indistinguished_pairs();
  const auto r1 = run_multi_baseline(rm, 1, cfg);
  const auto r2 = run_multi_baseline(rm, 2, cfg);
  const auto r3 = run_multi_baseline(rm, 3, cfg);
  EXPECT_LE(r2.indistinguished_pairs, r1.indistinguished_pairs);
  EXPECT_LE(r3.indistinguished_pairs, r2.indistinguished_pairs);
  // Floor: never below the full dictionary.
  EXPECT_GE(r3.indistinguished_pairs, cfg.target_indistinguished);
}

TEST(MultiBaselineSelect, RankOneMatchesProcedure1Structure) {
  // With rank 1 the greedy per-test choice coincides with Procedure 1's
  // (same dist computation, same LOWER scan).
  const ResponseMatrix rm = c17_matrix(12, 19);
  std::vector<std::size_t> order(rm.num_tests());
  std::iota(order.begin(), order.end(), std::size_t{0});
  const auto multi = multi_baseline_single(rm, 1, order, 10);
  const auto single = procedure1_single(rm, order, 10);
  EXPECT_EQ(multi.indistinguished_pairs, single.indistinguished_pairs);
  for (std::size_t t = 0; t < rm.num_tests(); ++t) {
    ASSERT_EQ(multi.baselines[t].size(), 1u);
    EXPECT_EQ(multi.baselines[t][0], single.baselines[t]);
  }
}

}  // namespace
}  // namespace sddict
