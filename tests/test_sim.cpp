#include <gtest/gtest.h>

#include "bmcirc/embedded.h"
#include "bmcirc/synth.h"
#include "fault/collapse.h"
#include "netlist/transform.h"
#include "sim/faultsim.h"
#include "sim/logicsim.h"
#include "sim/response.h"

namespace sddict {
namespace {

// Independent reference evaluator (recursive, one pattern).
BitVec ref_simulate(const Netlist& nl, const BitVec& input) {
  std::vector<int> value(nl.num_gates(), -1);
  for (std::size_t i = 0; i < nl.num_inputs(); ++i)
    value[nl.inputs()[i]] = input.get(i);
  for (GateId g : nl.topo_order()) {
    const Gate& gate = nl.gate(g);
    if (gate.type == GateType::kInput) continue;
    std::vector<bool> in;
    std::vector<char> raw;
    for (GateId f : gate.fanin) raw.push_back(static_cast<char>(value[f]));
    std::vector<bool> bools(raw.begin(), raw.end());
    bool inb[16];
    for (std::size_t p = 0; p < bools.size(); ++p) inb[p] = bools[p];
    value[g] = eval_gate_bool(gate.type, inb, bools.size());
  }
  BitVec out(nl.num_outputs());
  for (std::size_t o = 0; o < nl.num_outputs(); ++o)
    out.set(o, value[nl.outputs()[o]] == 1);
  return out;
}

TEST(TestSet, AddAndPack) {
  TestSet ts(3);
  ts.add_string("101");
  ts.add_string("010");
  EXPECT_EQ(ts.size(), 2u);
  std::vector<std::uint64_t> words;
  ts.pack_batch(0, 2, &words);
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[0], 0b01u);  // input0: test0=1, test1=0
  EXPECT_EQ(words[1], 0b10u);
  EXPECT_EQ(words[2], 0b01u);
}

TEST(TestSet, WrongWidthRejected) {
  TestSet ts(3);
  EXPECT_THROW(ts.add_string("10"), std::invalid_argument);
}

TEST(TestSet, RandomDeterministic) {
  Rng a(5), b(5);
  TestSet ta(10), tb(10);
  ta.add_random(20, a);
  tb.add_random(20, b);
  for (std::size_t i = 0; i < 20; ++i) EXPECT_EQ(ta[i], tb[i]);
}

TEST(TestSet, Dedupe) {
  TestSet ts(2);
  ts.add_string("01");
  ts.add_string("10");
  ts.add_string("01");
  ts.dedupe();
  EXPECT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts[0].to_string(), "01");
  EXPECT_EQ(ts[1].to_string(), "10");
}

TEST(TestSet, SubsetAndAppend) {
  TestSet ts(2);
  ts.add_string("00");
  ts.add_string("01");
  ts.add_string("10");
  const TestSet sub = ts.subset({2, 0});
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub[0].to_string(), "10");
  TestSet other(2);
  other.add_string("11");
  TestSet merged = ts;
  merged.append(other);
  EXPECT_EQ(merged.size(), 4u);
}

TEST(BatchSimulator, MatchesReferenceOnC17Exhaustive) {
  const Netlist nl = make_c17();
  for (std::size_t v = 0; v < 32; ++v) {
    BitVec in(5);
    for (std::size_t i = 0; i < 5; ++i) in.set(i, (v >> i) & 1);
    EXPECT_EQ(simulate_pattern(nl, in), ref_simulate(nl, in)) << v;
  }
}

TEST(BatchSimulator, MatchesReferenceOnSyntheticCircuit) {
  SynthProfile p;
  p.name = "rnd";
  p.inputs = 8;
  p.outputs = 4;
  p.gates = 60;
  p.seed = 99;
  const Netlist nl = full_scan(generate_synthetic(p));
  Rng rng(3);
  TestSet ts(nl.num_inputs());
  ts.add_random(100, rng);
  const auto fast = good_responses(nl, ts);
  for (std::size_t t = 0; t < ts.size(); ++t)
    EXPECT_EQ(fast[t], ref_simulate(nl, ts[t])) << t;
}

TEST(BatchSimulator, RejectsSequentialNetlist) {
  EXPECT_THROW(BatchSimulator sim(make_s27()), std::runtime_error);
}

TEST(BatchSimulator, SixtyFourPatternsIndependent) {
  // Pattern packing: bit t of every word belongs only to test t.
  const Netlist nl = make_c17();
  Rng rng(17);
  TestSet ts(5);
  ts.add_random(64, rng);
  const auto batch = good_responses(nl, ts);
  for (std::size_t t = 0; t < 64; ++t)
    EXPECT_EQ(batch[t], simulate_pattern(nl, ts[t])) << t;
}

// ------------------------------------------------------------- faultsim --

// Reference: detection by explicit structural injection.
bool ref_detects(const Netlist& nl, const StuckFault& f, const BitVec& test) {
  const Netlist bad = inject_faults(nl, {to_injection(f)});
  return simulate_pattern(nl, test) != simulate_pattern(bad, test);
}

TEST(FaultSimulator, MatchesStructuralInjectionOnC17) {
  const Netlist nl = make_c17();
  const FaultList faults = enumerate_all_faults(nl);
  // All 32 input vectors in one batch.
  TestSet ts(5);
  for (std::size_t v = 0; v < 32; ++v) {
    BitVec in(5);
    for (std::size_t i = 0; i < 5; ++i) in.set(i, (v >> i) & 1);
    ts.add(in);
  }
  FaultSimulator fsim(nl);
  std::vector<std::uint64_t> words;
  ts.pack_batch(0, 32, &words);
  fsim.load_batch(words, 32);
  for (const auto& f : faults) {
    const std::uint64_t w = fsim.detect_word(f);
    for (std::size_t v = 0; v < 32; ++v)
      EXPECT_EQ((w >> v) & 1, ref_detects(nl, f, ts[v]) ? 1u : 0u)
          << fault_name(nl, f) << " test " << v;
  }
}

TEST(FaultSimulator, MatchesStructuralInjectionOnSynthetic) {
  SynthProfile p;
  p.name = "rnd";
  p.inputs = 6;
  p.outputs = 3;
  p.gates = 40;
  p.seed = 5;
  const Netlist nl = full_scan(generate_synthetic(p));
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  Rng rng(1);
  TestSet ts(nl.num_inputs());
  ts.add_random(50, rng);

  FaultSimulator fsim(nl);
  std::vector<std::uint64_t> words;
  ts.pack_batch(0, 50, &words);
  fsim.load_batch(words, 50);
  for (const auto& f : faults) {
    const std::uint64_t w = fsim.detect_word(f);
    for (std::size_t v = 0; v < 50; ++v)
      EXPECT_EQ((w >> v) & 1, ref_detects(nl, f, ts[v]) ? 1u : 0u)
          << fault_name(nl, f) << " test " << v;
  }
}

TEST(FaultSimulator, PatternMaskSuppressesPadSlots) {
  const Netlist nl = make_c17();
  const FaultList faults = enumerate_all_faults(nl);
  TestSet ts(5);
  ts.add_string("00000");  // single pattern; slots 1..63 are padding
  FaultSimulator fsim(nl);
  std::vector<std::uint64_t> words;
  ts.pack_batch(0, 1, &words);
  fsim.load_batch(words, 1);
  for (const auto& f : faults)
    EXPECT_EQ(fsim.detect_word(f) & ~std::uint64_t{1}, 0u);
}

TEST(FaultSimulator, DiffSinkReportsCorrectOutputs) {
  // y0 = NOT(a), y1 = BUF(a); a sa1 flips both outputs iff a=0.
  Netlist nl("t");
  const GateId a = nl.add_gate(GateType::kInput, "a");
  const GateId x = nl.add_gate(GateType::kNot, "x", {a});
  const GateId y = nl.add_gate(GateType::kBuf, "y", {a});
  nl.mark_output(x);
  nl.mark_output(y);

  TestSet ts(1);
  ts.add_string("0");
  ts.add_string("1");
  FaultSimulator fsim(nl);
  std::vector<std::uint64_t> words;
  ts.pack_batch(0, 2, &words);
  fsim.load_batch(words, 2);

  std::vector<std::pair<std::size_t, std::uint64_t>> diffs;
  fsim.simulate_fault({a, -1, 1}, [&](std::size_t o, std::uint64_t w) {
    diffs.push_back({o, w});
  });
  ASSERT_EQ(diffs.size(), 2u);
  for (const auto& [o, w] : diffs) EXPECT_EQ(w, 0b01u) << o;
}

TEST(FaultSimulator, CountDetections) {
  const Netlist nl = make_c17();
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  TestSet ts(5);
  for (std::size_t v = 0; v < 32; ++v) {
    BitVec in(5);
    for (std::size_t i = 0; i < 5; ++i) in.set(i, (v >> i) & 1);
    ts.add(in);
  }
  const auto counts = count_detections(nl, faults, ts);
  // Exhaustive test set detects every (testable) collapsed fault of c17.
  for (std::size_t i = 0; i < counts.size(); ++i)
    EXPECT_GT(counts[i], 0u) << fault_name(nl, faults[i]);
}

// ------------------------------------------------------- response matrix --

TEST(ResponseMatrix, FaultFreeRowsAreZero) {
  const Netlist nl = make_c17();
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  TestSet ts(5);
  ts.add_string("00000");
  const ResponseMatrix rm = build_response_matrix(nl, faults, ts);
  // Under the all-zero input, undetected faults must have response id 0.
  FaultSimulator fsim(nl);
  std::vector<std::uint64_t> words;
  ts.pack_batch(0, 1, &words);
  fsim.load_batch(words, 1);
  for (FaultId i = 0; i < faults.size(); ++i)
    EXPECT_EQ(rm.detected(i, 0), fsim.detect_word(faults[i]) != 0);
}

TEST(ResponseMatrix, EqualResponsesShareIds) {
  const Netlist nl = make_c17();
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  TestSet ts(5);
  for (std::size_t v = 0; v < 32; ++v) {
    BitVec in(5);
    for (std::size_t i = 0; i < 5; ++i) in.set(i, (v >> i) & 1);
    ts.add(in);
  }
  const ResponseMatrix rm =
      build_response_matrix(nl, faults, ts, {.store_diff_outputs = true});

  // Cross-check ids against explicit faulty output vectors.
  std::vector<std::vector<BitVec>> responses(faults.size());
  for (FaultId i = 0; i < faults.size(); ++i) {
    const Netlist bad = inject_faults(nl, {to_injection(faults[i])});
    responses[i] = good_responses(bad, ts);
  }
  for (std::size_t t = 0; t < ts.size(); ++t)
    for (FaultId i = 0; i < faults.size(); ++i)
      for (FaultId j = 0; j < faults.size(); ++j)
        EXPECT_EQ(rm.response(i, t) == rm.response(j, t),
                  responses[i][t] == responses[j][t])
            << "t=" << t << " i=" << i << " j=" << j;
}

TEST(ResponseMatrix, DiffOutputsReconstructResponses) {
  const Netlist nl = make_c17();
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  TestSet ts(5);
  ts.add_string("10110");
  ts.add_string("01001");
  const ResponseMatrix rm =
      build_response_matrix(nl, faults, ts, {.store_diff_outputs = true});
  const auto good = good_responses(nl, ts);
  for (FaultId i = 0; i < faults.size(); ++i) {
    const Netlist bad = inject_faults(nl, {to_injection(faults[i])});
    const auto bad_resp = good_responses(bad, ts);
    for (std::size_t t = 0; t < ts.size(); ++t) {
      BitVec rebuilt = good[t];
      for (std::uint32_t o : rm.diff_outputs(t, rm.response(i, t)))
        rebuilt.flip(o);
      EXPECT_EQ(rebuilt, bad_resp[t]);
    }
  }
}

TEST(ResponseMatrix, DiffOutputsThrowWithoutOption) {
  const Netlist nl = make_c17();
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  TestSet ts(5);
  ts.add_string("00000");
  const ResponseMatrix rm = build_response_matrix(nl, faults, ts);
  EXPECT_THROW(rm.diff_outputs(0, 0), std::logic_error);
}

TEST(ResponseMatrix, ResponseCountsSumToFaults) {
  const Netlist nl = make_c17();
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  TestSet ts(5);
  ts.add_string("11111");
  ts.add_string("00011");
  const ResponseMatrix rm = build_response_matrix(nl, faults, ts);
  for (std::size_t t = 0; t < ts.size(); ++t) {
    const auto counts = rm.response_counts(t);
    std::size_t total = 0;
    for (auto c : counts) total += c;
    EXPECT_EQ(total, faults.size());
  }
}

TEST(ResponseMatrix, FindResponseInvertsSignature) {
  const Netlist nl = make_c17();
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  TestSet ts(5);
  ts.add_string("10101");
  const ResponseMatrix rm = build_response_matrix(nl, faults, ts);
  for (ResponseId id = 0; id < rm.num_distinct(0); ++id)
    EXPECT_EQ(rm.find_response(0, rm.signature(0, id)), id);
  EXPECT_EQ(rm.find_response(0, Hash128{123, 456}),
            static_cast<ResponseId>(-1));
}

TEST(ResponseMatrix, FromTableMatchesManualExpectation) {
  // Two outputs, two tests, the paper's Table 1 example.
  const std::vector<BitVec> ff = {BitVec::from_string("00"),
                                  BitVec::from_string("00")};
  const std::vector<std::vector<BitVec>> faulty = {
      {BitVec::from_string("10"), BitVec::from_string("11")},  // f0
      {BitVec::from_string("00"), BitVec::from_string("10")},  // f1
      {BitVec::from_string("01"), BitVec::from_string("10")},  // f2
      {BitVec::from_string("01"), BitVec::from_string("00")},  // f3
  };
  const ResponseMatrix rm = response_matrix_from_table(ff, faulty);
  EXPECT_EQ(rm.num_faults(), 4u);
  EXPECT_EQ(rm.num_tests(), 2u);
  EXPECT_EQ(rm.num_outputs(), 2u);
  // Test 0 responses: 10, 00, 01, 01 -> ids f1=0; f0 and f2 distinct; f2==f3.
  EXPECT_EQ(rm.response(1, 0), 0u);
  EXPECT_NE(rm.response(0, 0), rm.response(2, 0));
  EXPECT_EQ(rm.response(2, 0), rm.response(3, 0));
  // Test 1: f0=11, f1=f2=10, f3=00(=ff).
  EXPECT_EQ(rm.response(3, 1), 0u);
  EXPECT_EQ(rm.response(1, 1), rm.response(2, 1));
  EXPECT_NE(rm.response(0, 1), rm.response(1, 1));
  EXPECT_EQ(rm.num_distinct(0), 3u);
  EXPECT_EQ(rm.num_distinct(1), 3u);
}

}  // namespace
}  // namespace sddict
