#include <gtest/gtest.h>

#include "bmcirc/embedded.h"
#include "bmcirc/synth.h"
#include "diag/observe.h"
#include "fault/bridge.h"
#include "fault/collapse.h"
#include "netlist/bench_io.h"
#include "netlist/transform.h"
#include "sim/logicsim.h"

namespace sddict {
namespace {

std::vector<BitVec> truth_table(const Netlist& nl) {
  std::vector<BitVec> rows;
  for (std::size_t v = 0; v < (1u << nl.num_inputs()); ++v) {
    BitVec in(nl.num_inputs());
    for (std::size_t i = 0; i < nl.num_inputs(); ++i) in.set(i, (v >> i) & 1);
    rows.push_back(simulate_pattern(nl, in));
  }
  return rows;
}

TEST(Bridge, NonFeedbackPredicate) {
  const Netlist nl = make_c17();
  const GateId n10 = nl.find("10");
  const GateId n11 = nl.find("11");
  const GateId n16 = nl.find("16");
  // 10 and 11 are parallel NANDs: incomparable.
  EXPECT_TRUE(is_non_feedback_bridge(nl, n10, n11));
  // 11 feeds 16: feedback bridge.
  EXPECT_FALSE(is_non_feedback_bridge(nl, n11, n16));
  EXPECT_FALSE(is_non_feedback_bridge(nl, n16, n11));
  EXPECT_FALSE(is_non_feedback_bridge(nl, n10, n10));
}

TEST(Bridge, WiredAndSemantics) {
  // y0 = BUF(a), y1 = BUF(b), bridge(a, b) wired-AND: both outputs = a & b.
  Netlist nl("t");
  const GateId a = nl.add_gate(GateType::kInput, "a");
  const GateId b = nl.add_gate(GateType::kInput, "b");
  const GateId y0 = nl.add_gate(GateType::kBuf, "y0", {a});
  const GateId y1 = nl.add_gate(GateType::kBuf, "y1", {b});
  nl.mark_output(y0);
  nl.mark_output(y1);
  const Netlist bad = inject_bridge(nl, {a, b, BridgeType::kWiredAnd});
  const auto rows = truth_table(bad);
  for (std::size_t v = 0; v < 4; ++v) {
    const bool expect = (v & 1) && ((v >> 1) & 1);
    EXPECT_EQ(rows[v].get(0), expect) << v;
    EXPECT_EQ(rows[v].get(1), expect) << v;
  }
}

TEST(Bridge, WiredOrSemantics) {
  Netlist nl("t");
  const GateId a = nl.add_gate(GateType::kInput, "a");
  const GateId b = nl.add_gate(GateType::kInput, "b");
  const GateId y = nl.add_gate(GateType::kXor, "y", {a, b});
  nl.mark_output(y);
  const Netlist bad = inject_bridge(nl, {a, b, BridgeType::kWiredOr});
  // Both XOR pins read a|b: y = (a|b) XOR (a|b) = 0 always.
  for (const auto& row : truth_table(bad)) EXPECT_FALSE(row.get(0));
}

TEST(Bridge, AllConsumersOfBothNetsRedirected) {
  // Deep asymmetric cones: a at level 0 with an early consumer, b deep.
  Netlist nl = parse_bench_string(R"(
INPUT(a)
INPUT(x)
OUTPUT(p)
OUTPUT(q)
p = NOT(a)
b1 = NOT(x)
b2 = NOT(b1)
q = AND(a, b2)
)");
  const GateId a = nl.find("a");
  const GateId b2 = nl.find("b2");
  ASSERT_TRUE(is_non_feedback_bridge(nl, a, b2));
  const Netlist bad = inject_bridge(nl, {a, b2, BridgeType::kWiredAnd});
  // p = NOT(a & b2) where b2 = x; q = (a&b2) & (a&b2) = a & x.
  const auto rows = truth_table(bad);
  for (std::size_t v = 0; v < 4; ++v) {
    const bool av = v & 1, xv = (v >> 1) & 1;
    EXPECT_EQ(rows[v].get(0), !(av && xv)) << v;  // p
    EXPECT_EQ(rows[v].get(1), av && xv) << v;     // q
  }
}

TEST(Bridge, FeedbackBridgeRejected) {
  const Netlist nl = make_c17();
  EXPECT_THROW(
      inject_bridge(nl, {nl.find("11"), nl.find("16"), BridgeType::kWiredAnd}),
      std::runtime_error);
}

TEST(Bridge, SamplerProducesValidDistinctBridges) {
  SynthProfile p;
  p.name = "b";
  p.inputs = 8;
  p.outputs = 4;
  p.gates = 80;
  p.seed = 3;
  const Netlist nl = full_scan(generate_synthetic(p));
  Rng rng(4);
  const auto bridges = sample_bridges(nl, 25, rng);
  EXPECT_EQ(bridges.size(), 25u);
  for (const auto& br : bridges) {
    EXPECT_TRUE(is_non_feedback_bridge(nl, br.a, br.b))
        << bridge_name(nl, br);
    // Injection must produce a valid combinational netlist.
    const Netlist bad = inject_bridge(nl, br);
    EXPECT_EQ(bad.num_inputs(), nl.num_inputs());
    EXPECT_EQ(bad.num_outputs(), nl.num_outputs());
  }
}

TEST(Bridge, ObservationThroughDictionaryMachinery) {
  const Netlist nl = make_c17();
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  TestSet tests(5);
  for (std::size_t v = 0; v < 32; ++v) {
    BitVec in(5);
    for (std::size_t i = 0; i < 5; ++i) in.set(i, (v >> i) & 1);
    tests.add(in);
  }
  const ResponseMatrix rm = build_response_matrix(nl, faults, tests);
  const BridgingFault br{nl.find("10"), nl.find("11"), BridgeType::kWiredAnd};
  const Netlist bad = inject_bridge(nl, br);
  const auto observed = observe_defective_netlist(nl, bad, tests, rm);
  EXPECT_EQ(observed.size(), tests.size());
  // A wired-AND between two NAND outputs must fail somewhere on the
  // exhaustive test set.
  bool any_fail = false;
  for (ResponseId id : observed) any_fail |= id != 0;
  EXPECT_TRUE(any_fail);
}

TEST(Bridge, Names) {
  const Netlist nl = make_c17();
  const BridgingFault br{nl.find("10"), nl.find("11"), BridgeType::kWiredOr};
  EXPECT_EQ(bridge_name(nl, br), "wired-OR(10, 11)");
}

}  // namespace
}  // namespace sddict
