#include <gtest/gtest.h>

#include "bmcirc/embedded.h"
#include "bmcirc/synth.h"
#include "netlist/bench_io.h"
#include "netlist/transform.h"
#include "sim/logicsim.h"
#include "sim/seqsim.h"

namespace sddict {
namespace {

// A 2-bit counter-ish circuit with known behaviour:
//   q0' = NOT(q0); q1' = XOR(q1, q0); out = AND(q1, q0).
Netlist counter2() {
  return parse_bench_string(R"(
INPUT(en)
OUTPUT(out)
q0 = DFF(d0)
q1 = DFF(d1)
d0 = XOR(q0, en)
d1 = XOR(q1, c)
c  = AND(q0, en)
out = AND(q1, q0)
)",
                            "counter2");
}

TEST(SequentialSim, CounterCountsWhenEnabled) {
  const Netlist nl = counter2();
  SequentialSimulator sim(nl);
  // With en=1 the state follows 00 -> 01 -> 10 -> 11 -> 00; out = q1&q0.
  const bool expected_out[] = {false, false, false, true, false, false};
  BitVec en(1);
  en.set(0, true);
  for (bool exp : expected_out) {
    const BitVec out = sim.step(en);
    EXPECT_EQ(out.get(0), exp);
  }
}

TEST(SequentialSim, DisabledCounterHoldsState) {
  const Netlist nl = counter2();
  SequentialSimulator sim(nl);
  BitVec s(2);
  s.set(0, true);
  s.set(1, true);
  sim.set_state(s);
  BitVec en(1);  // en = 0
  for (int i = 0; i < 4; ++i) {
    const BitVec out = sim.step(en);
    EXPECT_TRUE(out.get(0));  // state 11 held, out = 1
  }
  EXPECT_EQ(sim.state(), s);
}

TEST(SequentialSim, ResetAndStateAccessors) {
  const Netlist nl = make_s27();
  SequentialSimulator sim(nl);
  EXPECT_EQ(sim.num_state_bits(), 3u);
  EXPECT_EQ(sim.state().count_ones(), 0u);
  BitVec s(3);
  s.set(1, true);
  sim.set_state(s);
  EXPECT_EQ(sim.state(), s);
  sim.reset();
  EXPECT_EQ(sim.state().count_ones(), 0u);
}

TEST(SequentialSim, WidthValidation) {
  SequentialSimulator sim(make_s27());
  EXPECT_THROW(sim.step(BitVec(3)), std::invalid_argument);
  EXPECT_THROW(sim.set_state(BitVec(2)), std::invalid_argument);
}

// Cross-validate: full-scan view, driven cycle by cycle with explicit state
// feedback, must equal native sequential simulation.
TEST(SequentialSim, AgreesWithFullScanFeedbackLoop) {
  for (std::uint64_t seed : {1u, 2u}) {
    SynthProfile p;
    p.name = "seq";
    p.inputs = 5;
    p.outputs = 3;
    p.dffs = 6;
    p.gates = 70;
    p.seed = seed;
    const Netlist nl = generate_synthetic(p);
    const Netlist scan = full_scan(nl);

    SequentialSimulator seq(nl);
    Rng rng(seed + 10);
    BitVec state(nl.dffs().size());  // zero initial state
    for (int cycle = 0; cycle < 20; ++cycle) {
      BitVec in(nl.num_inputs());
      for (std::size_t i = 0; i < in.size(); ++i) in.set(i, rng.coin());
      // Scan view: inputs = PIs then state; outputs = POs then next state.
      BitVec scan_in(scan.num_inputs());
      for (std::size_t i = 0; i < in.size(); ++i) scan_in.set(i, in.get(i));
      for (std::size_t i = 0; i < state.size(); ++i)
        scan_in.set(nl.num_inputs() + i, state.get(i));
      const BitVec scan_out = simulate_pattern(scan, scan_in);

      const BitVec seq_out = seq.step(in);
      for (std::size_t o = 0; o < nl.num_outputs(); ++o)
        EXPECT_EQ(seq_out.get(o), scan_out.get(o)) << "cycle " << cycle;
      for (std::size_t i = 0; i < state.size(); ++i)
        state.set(i, scan_out.get(nl.num_outputs() + i));
      EXPECT_EQ(seq.state(), state) << "cycle " << cycle;
    }
  }
}

// ----------------------------------------------------------------- unroll --

TEST(Unroll, StructureOfS27) {
  const Netlist nl = make_s27();
  const Netlist u3 = unroll(nl, 3);
  // Inputs: 3 initial-state + 3 frames x 4 PIs = 15.
  EXPECT_EQ(u3.num_inputs(), 15u);
  // Outputs: 3 frames x 1 PO + 3 final-state = 6.
  EXPECT_EQ(u3.num_outputs(), 6u);
  EXPECT_FALSE(u3.has_dffs());
}

TEST(Unroll, RejectsZeroFrames) {
  EXPECT_THROW(unroll(make_s27(), 0), std::runtime_error);
}

TEST(Unroll, MatchesSequentialSimulation) {
  for (std::uint64_t seed : {3u, 4u}) {
    SynthProfile p;
    p.name = "unr";
    p.inputs = 4;
    p.outputs = 2;
    p.dffs = 5;
    p.gates = 50;
    p.seed = seed;
    const Netlist nl = generate_synthetic(p);
    const std::size_t frames = 4;
    const Netlist u = unroll(nl, frames);

    Rng rng(seed + 20);
    // Random initial state and input sequence.
    BitVec init(nl.dffs().size());
    for (std::size_t i = 0; i < init.size(); ++i) init.set(i, rng.coin());
    std::vector<BitVec> inputs(frames, BitVec(nl.num_inputs()));
    for (auto& in : inputs)
      for (std::size_t i = 0; i < in.size(); ++i) in.set(i, rng.coin());

    SequentialSimulator seq(nl);
    seq.set_state(init);
    const std::vector<BitVec> seq_out = seq.run(inputs);

    // Pack the unrolled input vector: initial state first, then per-frame
    // PIs (input declaration order of the unrolled netlist).
    BitVec uin(u.num_inputs());
    std::size_t pos = 0;
    for (std::size_t i = 0; i < init.size(); ++i) uin.set(pos++, init.get(i));
    for (std::size_t f = 0; f < frames; ++f)
      for (std::size_t i = 0; i < nl.num_inputs(); ++i)
        uin.set(pos++, inputs[f].get(i));
    const BitVec uout = simulate_pattern(u, uin);

    pos = 0;
    for (std::size_t f = 0; f < frames; ++f)
      for (std::size_t o = 0; o < nl.num_outputs(); ++o)
        EXPECT_EQ(uout.get(pos++), seq_out[f].get(o))
            << "frame " << f << " output " << o;
    // Final state.
    for (std::size_t i = 0; i < init.size(); ++i)
      EXPECT_EQ(uout.get(pos++), seq.state().get(i)) << "state bit " << i;
  }
}

TEST(Unroll, InputOrderIsInitialStateThenFrames) {
  const Netlist u = unroll(make_s27(), 2);
  EXPECT_EQ(u.gate(u.inputs()[0]).name, "G5@0");
  EXPECT_EQ(u.gate(u.inputs()[3]).name, "G0@0");
  EXPECT_EQ(u.gate(u.inputs()[7]).name, "G0@1");
}

}  // namespace
}  // namespace sddict
