#include "faultinject.h"

#include <ios>

#include "dict/full_dict.h"  // kUnknownResponse
#include "util/rng.h"

namespace sddict::testing {

std::streambuf::int_type FailAfterWriteBuf::overflow(int_type ch) {
  if (ch == traits_type::eof()) return traits_type::eof();
  if (written_.size() >= limit_) return traits_type::eof();
  written_.push_back(static_cast<char>(ch));
  return ch;
}

std::streambuf::int_type ThrowAfterReadBuf::underflow() {
  if (served_ >= limit_) throw std::ios_base::failure("injected read error");
  if (served_ >= data_.size()) return traits_type::eof();
  ch_ = data_[served_];
  ++served_;
  setg(&ch_, &ch_, &ch_ + 1);
  return traits_type::to_int_type(ch_);
}

std::string flip_byte(std::string text, std::size_t index) {
  text.at(index) = static_cast<char>(text[index] ^ 1);
  return text;
}

std::string truncate_to(std::string bytes, std::size_t size) {
  if (size < bytes.size()) bytes.resize(size);
  return bytes;
}

std::vector<Observed> apply_noise(const std::vector<ResponseId>& observed,
                                  const ResponseMatrix& rm,
                                  const NoiseChannel& noise) {
  Rng rng(noise.seed);
  std::vector<Observed> out(observed.size());
  for (std::size_t t = 0; t < observed.size(); ++t) {
    if (rng.chance(noise.drop_rate)) {
      out[t] = Observed::missing();
      continue;
    }
    ResponseId v = observed[t];
    if (rng.chance(noise.flip_rate)) {
      const std::size_t n = rm.num_distinct(t);
      if (v < n && n > 1) {
        // Corrupt into one of the other modeled responses.
        auto pick = static_cast<ResponseId>(rng.below(n - 1));
        if (pick >= v) ++pick;
        v = pick;
      } else if (v >= n) {
        // Already unmodeled; corrupt into any modeled response.
        v = static_cast<ResponseId>(rng.below(n));
      } else {
        v = kUnknownResponse;
      }
    }
    out[t] = Observed::of(v);
  }
  return out;
}

}  // namespace sddict::testing
