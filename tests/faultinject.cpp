#include "faultinject.h"

#include <ios>

namespace sddict::testing {

std::streambuf::int_type FailAfterWriteBuf::overflow(int_type ch) {
  if (ch == traits_type::eof()) return traits_type::eof();
  if (written_.size() >= limit_) return traits_type::eof();
  written_.push_back(static_cast<char>(ch));
  return ch;
}

std::streambuf::int_type ThrowAfterReadBuf::underflow() {
  if (served_ >= limit_) throw std::ios_base::failure("injected read error");
  if (served_ >= data_.size()) return traits_type::eof();
  ch_ = data_[served_];
  ++served_;
  setg(&ch_, &ch_, &ch_ + 1);
  return traits_type::to_int_type(ch_);
}

std::string flip_byte(std::string text, std::size_t index) {
  text.at(index) = static_cast<char>(text[index] ^ 1);
  return text;
}

}  // namespace sddict::testing
