// Signature-store suite (ISSUE 4): the packed on-disk format and its
// kernels.
//
//  * round trips for every store kind (pass/fail, same/different,
//    multi-baseline, full) plus the pass/fail projections of first-fail
//    and detection-list dictionaries — to_bytes/from_bytes, write_file/
//    load_file, dictionary reconstruction, and diagnose equivalence of the
//    store path against the dictionary path;
//  * mmap vs. stream loads are byte- and behavior-identical;
//  * word-parallel kernels against their per-bit reference loops on random
//    operands;
//  * fault injection (same discipline as the v2 serialization trailer):
//    EVERY single-byte flip and EVERY truncation of a packed store must be
//    rejected with a named std::runtime_error — never a crash, never a
//    silently wrong answer.
//
// Registered under the "robustness" ctest label (sanitizer presets).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bmcirc/synth.h"
#include "diag/engine.h"
#include "dict/detlist_dict.h"
#include "dict/firstfail_dict.h"
#include "dict/full_dict.h"
#include "dict/multibaseline_dict.h"
#include "dict/passfail_dict.h"
#include "dict/samediff_dict.h"
#include "fault/collapse.h"
#include "faultinject.h"
#include "sim/response.h"
#include "sim/testset.h"
#include "store/kernels.h"
#include "store/signature_store.h"
#include "util/crc32.h"
#include "util/rng.h"
#include "util/threadpool.h"

namespace sddict {
namespace {

using testing::flip_byte;
using testing::truncate_to;

// ------------------------------------------------------------- fixtures --

// A small-but-not-trivial workload: enough faults and tests that rows span
// multiple 64-bit words and the store needs several pages.
ResponseMatrix store_matrix() {
  SynthProfile profile;
  profile.name = "store";
  profile.inputs = 10;
  profile.outputs = 4;
  profile.dffs = 0;
  profile.gates = 90;
  profile.seed = 0x570e;
  const Netlist nl = generate_synthetic(profile);
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  TestSet tests(nl.num_inputs());
  Rng rng(7);
  tests.add_random(70, rng);
  ResponseMatrixStatus status;
  return build_response_matrix(nl, faults, tests, {.store_diff_outputs = true},
                               &status);
}

const ResponseMatrix& rm() {
  static const ResponseMatrix m = store_matrix();
  return m;
}

std::vector<ResponseId> nontrivial_baselines(const ResponseMatrix& m) {
  std::vector<ResponseId> bl(m.num_tests(), 0);
  for (std::size_t t = 0; t < m.num_tests(); ++t)
    if (m.num_distinct(t) > 1 && t % 2 == 0) bl[t] = 1;
  return bl;
}

std::vector<std::vector<ResponseId>> ragged_baselines(const ResponseMatrix& m) {
  std::vector<std::vector<ResponseId>> bl(m.num_tests());
  for (std::size_t t = 0; t < m.num_tests(); ++t) {
    bl[t].push_back(0);
    if (m.num_distinct(t) > 1 && t % 3 == 0) bl[t].push_back(1);
  }
  return bl;
}

std::vector<Observed> fault_observation(const FullDictionary& full,
                                        FaultId f) {
  std::vector<Observed> obs(full.num_tests());
  for (std::size_t t = 0; t < full.num_tests(); ++t)
    obs[t] = Observed::of(full.entry(f, t));
  return obs;
}

void expect_same_diagnosis(const EngineDiagnosis& a, const EngineDiagnosis& b,
                           const char* what) {
  EXPECT_EQ(a.outcome, b.outcome) << what;
  EXPECT_EQ(a.best_mismatches, b.best_mismatches) << what;
  EXPECT_EQ(a.margin, b.margin) << what;
  EXPECT_EQ(a.effective_tests, b.effective_tests) << what;
  EXPECT_EQ(a.dont_care_tests, b.dont_care_tests) << what;
  EXPECT_EQ(a.unknown_tests, b.unknown_tests) << what;
  EXPECT_EQ(a.completed, b.completed) << what;
  EXPECT_EQ(a.stop_reason, b.stop_reason) << what;
  EXPECT_EQ(a.cover, b.cover) << what;
  EXPECT_EQ(a.uncovered_failures, b.uncovered_failures) << what;
  ASSERT_EQ(a.matches.size(), b.matches.size()) << what;
  for (std::size_t i = 0; i < a.matches.size(); ++i) {
    EXPECT_EQ(a.matches[i].fault, b.matches[i].fault) << what << " #" << i;
    EXPECT_EQ(a.matches[i].mismatches, b.matches[i].mismatches)
        << what << " #" << i;
    EXPECT_EQ(a.matches[i].margin, b.matches[i].margin) << what << " #" << i;
    EXPECT_EQ(a.matches[i].effective_tests, b.matches[i].effective_tests)
        << what << " #" << i;
  }
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

// --------------------------------------------------------------- kernels --

TEST(Kernels, MaskedHammingMatchesReferenceOnRandomOperands) {
  Rng rng(11);
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t nbits = 1 + rng.below(300);
    const std::size_t nwords = (nbits + 63) / 64;
    std::vector<std::uint64_t> row(nwords), obs(nwords), care(nwords);
    for (std::size_t i = 0; i < nwords; ++i) {
      row[i] = rng.next();
      obs[i] = rng.next();
      care[i] = rng.next();
    }
    // Zero the tail so per-word and per-bit agree on the domain.
    const std::size_t tail = nwords * 64 - nbits;
    if (tail > 0) {
      const std::uint64_t mask = ~std::uint64_t{0} >> tail;
      row[nwords - 1] &= mask;
      obs[nwords - 1] &= mask;
      care[nwords - 1] &= mask;
    }
    EXPECT_EQ(kernels::masked_hamming(row.data(), obs.data(), care.data(),
                                      nwords),
              kernels::masked_hamming_reference(row.data(), obs.data(),
                                                care.data(), nbits));
  }
}

TEST(Kernels, MaskedSymbolMismatchesMatchesReference) {
  Rng rng(12);
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t n = 1 + rng.below(200);
    std::vector<std::uint32_t> row(n), obs(n);
    std::vector<std::uint8_t> care(n);
    for (std::size_t t = 0; t < n; ++t) {
      row[t] = static_cast<std::uint32_t>(rng.below(4));
      obs[t] = rng.coin() ? row[t] : static_cast<std::uint32_t>(rng.below(4));
      care[t] = rng.coin() ? 1 : 0;
    }
    EXPECT_EQ(kernels::masked_symbol_mismatches(row.data(), obs.data(),
                                                care.data(), n),
              kernels::masked_symbol_mismatches_reference(
                  row.data(), obs.data(), care.data(), n));
  }
}

// Every dispatched variant (scalar word-parallel + whatever SIMD tables
// this machine supports) against the per-bit oracle, sweeping tail widths
// around every vector-width boundary (nbits mod 64 in {0, 1, 63}) and the
// degenerate all-care / no-care masks. A variant whose tail handling is
// off by even one lane fails here before it can misrank anything.
TEST(Kernels, EveryVariantMatchesPerBitOracleAcrossTailWidths) {
  const auto tables = kernels::supported_kernels();
  ASSERT_FALSE(tables.empty());
  EXPECT_STREQ(tables.front()->name, "scalar");
  Rng rng(13);
  const std::size_t widths[] = {1,   63,  64,  65,  127, 128, 129,
                                191, 192, 193, 320, 321, 512, 513};
  for (const std::size_t nbits : widths) {
    const std::size_t nwords = (nbits + 63) / 64;
    std::vector<std::uint64_t> row(nwords), obs(nwords), care(nwords);
    for (std::size_t i = 0; i < nwords; ++i) {
      row[i] = rng.next();
      obs[i] = rng.next();
      care[i] = rng.next();
    }
    const std::size_t tail = nwords * 64 - nbits;
    const std::uint64_t mask =
        tail > 0 ? ~std::uint64_t{0} >> tail : ~std::uint64_t{0};
    row[nwords - 1] &= mask;
    obs[nwords - 1] &= mask;
    care[nwords - 1] &= mask;

    const std::uint32_t want_masked = kernels::masked_hamming_reference(
        row.data(), obs.data(), care.data(), nbits);
    std::vector<std::uint64_t> all_care(nwords, ~std::uint64_t{0});
    all_care[nwords - 1] = mask;
    const std::uint32_t want_all = kernels::masked_hamming_reference(
        row.data(), obs.data(), all_care.data(), nbits);
    const std::vector<std::uint64_t> no_care(nwords, 0);

    for (const kernels::KernelTable* t : tables) {
      EXPECT_EQ(t->masked_hamming(row.data(), obs.data(), care.data(), nwords),
                want_masked)
          << t->name << " nbits=" << nbits;
      EXPECT_EQ(
          t->masked_hamming(row.data(), obs.data(), all_care.data(), nwords),
          want_all)
          << t->name << " all-care nbits=" << nbits;
      EXPECT_EQ(
          t->masked_hamming(row.data(), obs.data(), no_care.data(), nwords),
          0u)
          << t->name << " no-care nbits=" << nbits;
      // hamming == masked_hamming under the all-ones mask.
      EXPECT_EQ(t->hamming(row.data(), obs.data(), nwords), want_all)
          << t->name << " hamming nbits=" << nbits;
    }
  }
}

// Regression test for the care-byte contract (any non-zero byte means
// "cared"): the pre-fix scalar kernel masked with the raw care byte, so an
// even byte (2, 0x80, ...) silently dropped real mismatches. Every
// variant must count a mismatch under every non-zero care byte, across
// lane-tail widths of the 8- and 16-lane SIMD loops.
TEST(Kernels, EveryVariantCountsSymbolMismatchesForAnyNonZeroCareByte) {
  const auto tables = kernels::supported_kernels();
  const std::uint8_t care_bytes[] = {0, 1, 2, 0x80, 0xFF};

  // Deterministic single-lane probe: one mismatching lane, every care byte.
  for (const std::uint8_t c : care_bytes) {
    const std::uint32_t row = 3, obs = 4;
    const std::uint32_t want = c != 0 ? 1u : 0u;
    for (const kernels::KernelTable* t : tables)
      EXPECT_EQ(t->masked_symbol_mismatches(&row, &obs, &c, 1), want)
          << t->name << " care=" << int{c};
  }

  Rng rng(14);
  const std::size_t lane_counts[] = {1,  2,  3,  4,  5,  7,  8,  9,
                                     15, 16, 17, 31, 32, 33, 64, 65};
  for (const std::size_t n : lane_counts) {
    std::vector<std::uint32_t> row(n), obs(n);
    std::vector<std::uint8_t> care(n);
    for (std::size_t t = 0; t < n; ++t) {
      row[t] = static_cast<std::uint32_t>(rng.below(4));
      obs[t] = rng.coin() ? row[t] : static_cast<std::uint32_t>(rng.below(4));
      care[t] = care_bytes[rng.below(5)];
    }
    const std::uint32_t want = kernels::masked_symbol_mismatches_reference(
        row.data(), obs.data(), care.data(), n);
    for (const kernels::KernelTable* t : tables)
      EXPECT_EQ(t->masked_symbol_mismatches(row.data(), obs.data(),
                                            care.data(), n),
                want)
          << t->name << " n=" << n;
  }
}

// The bounded kernels' contract (the top-k pruning primitive): a result
// <= limit is the exact count; a result > limit proves the true count is
// also > limit. Checked for every variant over random operands and limits
// straddling the true count, plus the no-limit short-circuit.
TEST(Kernels, BoundedKernelsHonorTheirContract) {
  const auto tables = kernels::supported_kernels();
  Rng rng(15);
  constexpr std::uint32_t kNoLimit = ~std::uint32_t{0};
  for (int iter = 0; iter < 100; ++iter) {
    const std::size_t nbits = 1 + rng.below(1200);
    const std::size_t nwords = (nbits + 63) / 64;
    std::vector<std::uint64_t> row(nwords), obs(nwords), care(nwords);
    for (std::size_t i = 0; i < nwords; ++i) {
      row[i] = rng.next();
      obs[i] = rng.next();
      care[i] = rng.next();
    }
    const std::size_t tail = nwords * 64 - nbits;
    if (tail > 0) {
      const std::uint64_t mask = ~std::uint64_t{0} >> tail;
      row[nwords - 1] &= mask;
      obs[nwords - 1] &= mask;
      care[nwords - 1] &= mask;
    }
    const std::uint32_t truth = kernels::masked_hamming_reference(
        row.data(), obs.data(), care.data(), nbits);
    const std::uint32_t limits[] = {0,
                                    truth > 0 ? truth - 1 : 0,
                                    truth,
                                    truth + 1,
                                    truth + 17,
                                    static_cast<std::uint32_t>(rng.below(
                                        2 * truth + 2)),
                                    kNoLimit};
    for (const kernels::KernelTable* t : tables) {
      for (const std::uint32_t limit : limits) {
        const std::uint32_t got = kernels::masked_hamming_bounded(
            *t, row.data(), obs.data(), care.data(), nwords, limit);
        if (got <= limit)
          EXPECT_EQ(got, truth) << t->name << " limit=" << limit;
        else
          EXPECT_GT(truth, limit) << t->name << " limit=" << limit;
      }
    }
  }
  // Symbol-lane flavor.
  for (int iter = 0; iter < 100; ++iter) {
    const std::size_t n = 1 + rng.below(400);
    std::vector<std::uint32_t> row(n), obs(n);
    std::vector<std::uint8_t> care(n);
    for (std::size_t t = 0; t < n; ++t) {
      row[t] = static_cast<std::uint32_t>(rng.below(4));
      obs[t] = rng.coin() ? row[t] : static_cast<std::uint32_t>(rng.below(4));
      care[t] = static_cast<std::uint8_t>(rng.below(3));
    }
    const std::uint32_t truth = kernels::masked_symbol_mismatches_reference(
        row.data(), obs.data(), care.data(), n);
    const std::uint32_t limits[] = {0, truth, truth + 1, kNoLimit};
    for (const kernels::KernelTable* t : tables) {
      for (const std::uint32_t limit : limits) {
        const std::uint32_t got = kernels::masked_symbol_mismatches_bounded(
            *t, row.data(), obs.data(), care.data(), n, limit);
        if (got <= limit)
          EXPECT_EQ(got, truth) << t->name << " limit=" << limit;
        else
          EXPECT_GT(truth, limit) << t->name << " limit=" << limit;
      }
    }
  }
}

// ----------------------------------------------------------- round trips --

TEST(SignatureStore, PassFailRoundTrip) {
  const PassFailDictionary d = PassFailDictionary::build(rm());
  const SignatureStore s =
      SignatureStore::from_bytes(SignatureStore::build(d).to_bytes());
  EXPECT_EQ(s.kind(), StoreKind::kPassFail);
  EXPECT_EQ(s.source(), StoreSource::kPassFail);
  EXPECT_EQ(s.num_faults(), d.num_faults());
  EXPECT_EQ(s.num_tests(), d.num_tests());
  EXPECT_EQ(s.num_outputs(), d.num_outputs());
  for (FaultId f = 0; f < d.num_faults(); ++f)
    for (std::size_t t = 0; t < d.num_tests(); ++t)
      ASSERT_EQ(s.row_bit(f, t), d.bit(f, t)) << "fault " << f << " test " << t;
  const PassFailDictionary back = s.to_passfail();
  EXPECT_EQ(back.num_faults(), d.num_faults());
  EXPECT_EQ(back.indistinguished_pairs(), d.indistinguished_pairs());
}

TEST(SignatureStore, SameDifferentRoundTrip) {
  const SameDifferentDictionary d =
      SameDifferentDictionary::build(rm(), nontrivial_baselines(rm()));
  const SignatureStore s =
      SignatureStore::from_bytes(SignatureStore::build(d).to_bytes());
  EXPECT_EQ(s.kind(), StoreKind::kSameDifferent);
  for (std::size_t t = 0; t < d.num_tests(); ++t)
    ASSERT_EQ(s.baselines()[t], d.baselines()[t]) << "test " << t;
  const SameDifferentDictionary back = s.to_samediff();
  EXPECT_EQ(back.baselines(), d.baselines());
  EXPECT_EQ(back.indistinguished_pairs(), d.indistinguished_pairs());
  for (FaultId f = 0; f < d.num_faults(); ++f)
    for (std::size_t t = 0; t < d.num_tests(); ++t)
      ASSERT_EQ(back.bit(f, t), d.bit(f, t));
}

TEST(SignatureStore, MultiBaselineRoundTrip) {
  const MultiBaselineDictionary d =
      MultiBaselineDictionary::build(rm(), ragged_baselines(rm()));
  const SignatureStore s =
      SignatureStore::from_bytes(SignatureStore::build(d).to_bytes());
  EXPECT_EQ(s.kind(), StoreKind::kMultiBaseline);
  EXPECT_EQ(s.rank(), d.baselines_per_test());
  for (std::size_t t = 0; t < d.num_tests(); ++t) {
    const auto [ids, count] = s.baseline_set(t);
    ASSERT_EQ(count, d.baselines()[t].size()) << "test " << t;
    for (std::size_t l = 0; l < count; ++l)
      ASSERT_EQ(ids[l], d.baselines()[t][l]) << "test " << t << " slot " << l;
  }
  const MultiBaselineDictionary back = s.to_multibaseline();
  EXPECT_EQ(back.baselines(), d.baselines());
  EXPECT_EQ(back.indistinguished_pairs(), d.indistinguished_pairs());
}

TEST(SignatureStore, FullRoundTrip) {
  const FullDictionary d = FullDictionary::build(rm());
  const SignatureStore s =
      SignatureStore::from_bytes(SignatureStore::build(d).to_bytes());
  EXPECT_EQ(s.kind(), StoreKind::kFull);
  for (FaultId f = 0; f < d.num_faults(); ++f)
    for (std::size_t t = 0; t < d.num_tests(); ++t)
      ASSERT_EQ(s.entry(f, t), d.entry(f, t));
  const FullDictionary back = s.to_full();
  EXPECT_EQ(back.indistinguished_pairs(), d.indistinguished_pairs());
}

TEST(SignatureStore, FirstFailAndDetectionListProjectToPassFail) {
  const PassFailDictionary pf = PassFailDictionary::build(rm());
  const FirstFailDictionary ff = FirstFailDictionary::build(rm());
  const DetectionListDictionary dl = DetectionListDictionary::build(rm());

  const SignatureStore sff = SignatureStore::build(ff);
  EXPECT_EQ(sff.kind(), StoreKind::kPassFail);
  EXPECT_EQ(sff.source(), StoreSource::kFirstFail);
  const SignatureStore sdl = SignatureStore::build(dl, rm().num_outputs());
  EXPECT_EQ(sdl.kind(), StoreKind::kPassFail);
  EXPECT_EQ(sdl.source(), StoreSource::kDetectionList);

  // Both projections are exactly the pass/fail bit matrix.
  for (FaultId f = 0; f < pf.num_faults(); ++f)
    for (std::size_t t = 0; t < pf.num_tests(); ++t) {
      ASSERT_EQ(sff.row_bit(f, t), pf.bit(f, t)) << "first-fail " << f;
      ASSERT_EQ(sdl.row_bit(f, t), pf.bit(f, t)) << "detlist " << f;
    }
}

TEST(SignatureStore, RejectsKindMismatchedReconstruction) {
  const SignatureStore s =
      SignatureStore::build(PassFailDictionary::build(rm()));
  EXPECT_THROW(s.to_samediff(), std::runtime_error);
  EXPECT_THROW(s.to_multibaseline(), std::runtime_error);
  EXPECT_THROW(s.to_full(), std::runtime_error);
}

TEST(SignatureStore, RejectsEmptyDictionary) {
  EXPECT_THROW(SignatureStore::build(PassFailDictionary::from_rows({}, 4, 2)),
               std::runtime_error);
}

// ----------------------------------------------------- store == dictionary --

TEST(SignatureStore, DiagnoseEquivalentToDictionaryAllKinds) {
  const FullDictionary full = FullDictionary::build(rm());
  const PassFailDictionary pf = PassFailDictionary::build(rm());
  const SameDifferentDictionary sd =
      SameDifferentDictionary::build(rm(), nontrivial_baselines(rm()));
  const MultiBaselineDictionary mb =
      MultiBaselineDictionary::build(rm(), ragged_baselines(rm()));

  Rng rng(3);
  for (int i = 0; i < 6; ++i) {
    const auto f = static_cast<FaultId>(rng.below(full.num_faults()));
    std::vector<Observed> obs = fault_observation(full, f);
    if (i % 2 == 1) {
      // Degrade: one dropped record, one unmodeled response.
      obs[rng.below(obs.size())] = Observed::unstable();
      obs[rng.below(obs.size())] = Observed::of(kUnknownResponse);
    }
    expect_same_diagnosis(diagnose_observed(SignatureStore::build(pf), obs),
                          diagnose_observed(pf, obs), "pass/fail");
    expect_same_diagnosis(diagnose_observed(SignatureStore::build(sd), obs),
                          diagnose_observed(sd, obs), "same/different");
    expect_same_diagnosis(diagnose_observed(SignatureStore::build(mb), obs),
                          diagnose_observed(mb, obs), "multi-baseline");
    expect_same_diagnosis(diagnose_observed(SignatureStore::build(full), obs),
                          diagnose_observed(full, obs), "full");
  }
}

// --------------------------------------------------- top-k pruned ranking --

// The pruned sweep must be bit-identical to the exhaustive one (engine.h)
// for every store kind, including: degraded observations (which switch on
// the projection tiebreak), mass ties in the mismatch counts, max_results
// down to 1 (the k >= 2 clamp that keeps the margin exact), and non-zero
// tolerance (every fault within e keeps its guaranteed slot).
TEST(SignatureStore, PrunedRankingIsBitIdenticalToUnpruned) {
  const FullDictionary full = FullDictionary::build(rm());
  const SignatureStore stores[] = {
      SignatureStore::build(PassFailDictionary::build(rm())),
      SignatureStore::build(
          SameDifferentDictionary::build(rm(), nontrivial_baselines(rm()))),
      SignatureStore::build(
          MultiBaselineDictionary::build(rm(), ragged_baselines(rm()))),
      SignatureStore::build(full)};

  Rng rng(21);
  for (int i = 0; i < 8; ++i) {
    const auto f = static_cast<FaultId>(rng.below(full.num_faults()));
    std::vector<Observed> obs = fault_observation(full, f);
    if (i % 2 == 1) {
      // Degraded: dropped record + unmodeled response.
      obs[rng.below(obs.size())] = Observed::missing();
      obs[rng.below(obs.size())] = Observed::of(kUnknownResponse);
    }
    if (i >= 4) {
      // Scramble toward the fault-free response so many faults tie: ties
      // are where an unsound pruning bound would first leak (a kept row
      // displacing an equal-count pruned one).
      for (int j = 0; j < 12; ++j) obs[rng.below(obs.size())] = Observed::of(0);
    }
    EngineOptions opt;
    opt.max_results = 1 + static_cast<std::size_t>(i % 3);
    opt.tolerance = (i % 2 == 1) ? 2u : 0u;
    EngineOptions unpruned = opt;
    unpruned.prune = false;
    for (const SignatureStore& s : stores)
      expect_same_diagnosis(diagnose_observed(s, obs, opt),
                            diagnose_observed(s, obs, unpruned),
                            "pruned vs unpruned");
  }
}

// Sharding the sweep across a real pool (forced on via shard_min_faults =
// 1) must agree with the sequential sweep, pruned and unpruned.
TEST(SignatureStore, ShardedRankingMatchesSequential) {
  const FullDictionary full = FullDictionary::build(rm());
  const SignatureStore s = SignatureStore::build(full);
  ThreadPool pool(2);

  Rng rng(22);
  for (int i = 0; i < 4; ++i) {
    const auto f = static_cast<FaultId>(rng.below(full.num_faults()));
    std::vector<Observed> obs = fault_observation(full, f);
    if (i % 2 == 1) obs[rng.below(obs.size())] = Observed::unstable();

    EngineOptions sequential;
    sequential.max_results = 3;
    EngineOptions sharded = sequential;
    sharded.pool = &pool;
    sharded.shard_min_faults = 1;
    expect_same_diagnosis(diagnose_observed(s, obs, sharded),
                          diagnose_observed(s, obs, sequential),
                          "sharded vs sequential");
    sharded.prune = false;
    expect_same_diagnosis(diagnose_observed(s, obs, sharded),
                          diagnose_observed(s, obs, sequential),
                          "sharded unpruned vs sequential pruned");
  }
}

// ------------------------------------------------------------ file modes --

TEST(SignatureStore, MmapAndStreamLoadsAreIdentical) {
  const SameDifferentDictionary sd =
      SameDifferentDictionary::build(rm(), nontrivial_baselines(rm()));
  const SignatureStore built = SignatureStore::build(sd);
  const std::string path = temp_path("sdstore_modes.bin");
  built.write_file(path);

  const SignatureStore streamed =
      SignatureStore::load_file(path, StoreLoadMode::kStream);
  EXPECT_FALSE(streamed.mapped());
  EXPECT_EQ(streamed.to_bytes(), built.to_bytes());

#if defined(__unix__) || defined(__APPLE__)
  const SignatureStore mapped =
      SignatureStore::load_file(path, StoreLoadMode::kMmap);
  EXPECT_TRUE(mapped.mapped());
  EXPECT_EQ(mapped.to_bytes(), built.to_bytes());

  const FullDictionary full = FullDictionary::build(rm());
  const std::vector<Observed> obs = fault_observation(full, 5);
  expect_same_diagnosis(diagnose_observed(mapped, obs),
                        diagnose_observed(streamed, obs), "mmap vs stream");
#endif
  std::remove(path.c_str());
}

TEST(SignatureStore, LoadFileMissingPathThrows) {
  EXPECT_THROW(SignatureStore::load_file(temp_path("no_such_store.bin")),
               std::runtime_error);
}

// ------------------------------------------------------------ edge cases --

// Degenerate dimensions: a dictionary with zero faults or zero tests has
// no signatures to pack. The builder refuses with a named error rather
// than emitting an image the loader would have to special-case.
TEST(SignatureStore, ZeroFaultDictionaryIsRejectedByName) {
  try {
    SignatureStore::build(PassFailDictionary::from_rows({}, 4, 2));
    FAIL() << "zero-fault build should throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("empty dictionary"),
              std::string::npos)
        << e.what();
  }
}

TEST(SignatureStore, ZeroTestDictionaryIsRejectedByName) {
  try {
    SignatureStore::build(
        PassFailDictionary::from_rows({BitVec(0), BitVec(0)}, 0, 2));
    FAIL() << "zero-test build should throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("empty dictionary"),
              std::string::npos)
        << e.what();
  }
}

// An image whose header claims zero faults or zero tests is rejected at
// parse time ("empty dimensions"), so a corrupted dimension field can
// never produce a store that silently answers nothing.
TEST(SignatureStore, ParseRejectsZeroDimensionHeaders) {
  const SignatureStore s =
      SignatureStore::build(PassFailDictionary::build(rm()));
  for (const std::size_t off : {std::size_t{24}, std::size_t{32}}) {
    std::string img = s.to_bytes();
    for (std::size_t i = 0; i < 8; ++i) img[off + i] = '\0';
    EXPECT_THROW(SignatureStore::from_bytes(img), std::runtime_error);
  }
}

// A zero-length file is a named error in every load mode — kMmap cannot
// map it, kStream sees a truncated header, and kAuto falls back from the
// failed mmap to the stream path and reports the same defect. Never a
// crash, never a store.
TEST(SignatureStore, ZeroLengthFileIsANamedErrorInEveryLoadMode) {
  const std::string path = temp_path("zero_len.store");
  { std::ofstream out(path, std::ios::binary); }
  for (const StoreLoadMode mode :
       {StoreLoadMode::kAuto, StoreLoadMode::kStream, StoreLoadMode::kMmap}) {
    try {
      SignatureStore::load_file(path, mode);
      FAIL() << "zero-length load should throw (mode "
             << static_cast<int>(mode) << ")";
    } catch (const std::runtime_error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("SignatureStore:"), std::string::npos) << what;
    }
  }
  std::remove(path.c_str());
}

// --------------------------------------------------------------- fuzzers --

// Small matrix (the paper's worked example) so the flip fuzzer can afford
// one full parse per byte of the image.
ResponseMatrix tiny_matrix() {
  const std::vector<BitVec> ff = {BitVec::from_string("00"),
                                  BitVec::from_string("00")};
  const std::vector<std::vector<BitVec>> faulty = {
      {BitVec::from_string("10"), BitVec::from_string("11")},
      {BitVec::from_string("00"), BitVec::from_string("10")},
      {BitVec::from_string("01"), BitVec::from_string("10")},
      {BitVec::from_string("01"), BitVec::from_string("00")},
  };
  return response_matrix_from_table(ff, faulty);
}

void run_flip_fuzzer(const std::string& bytes, const char* what) {
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    try {
      SignatureStore::from_bytes(flip_byte(bytes, i));
      FAIL() << what << ": flip at byte " << i << " was accepted";
    } catch (const std::runtime_error&) {
      // Named rejection: exactly what the format promises.
    }
  }
}

TEST(SignatureStoreFuzz, EverySingleByteFlipIsRejected) {
  const ResponseMatrix m = tiny_matrix();
  run_flip_fuzzer(
      SignatureStore::build(PassFailDictionary::build(m)).to_bytes(),
      "pass/fail");
  run_flip_fuzzer(
      SignatureStore::build(
          SameDifferentDictionary::build(m, {1, 0}))
          .to_bytes(),
      "same/different");
  run_flip_fuzzer(
      SignatureStore::build(FullDictionary::build(m)).to_bytes(), "full");
}

TEST(SignatureStoreFuzz, EveryTruncationIsRejected) {
  const SignatureStore built =
      SignatureStore::build(SameDifferentDictionary::build(tiny_matrix(),
                                                           {1, 0}));
  const std::string bytes = built.to_bytes();
  for (std::size_t size = 0; size < bytes.size(); ++size) {
    try {
      SignatureStore::from_bytes(truncate_to(bytes, size));
      FAIL() << "truncation to " << size << " bytes was accepted";
    } catch (const std::runtime_error&) {
    }
  }
}

TEST(SignatureStoreFuzz, TrailingGarbageIsRejected) {
  const std::string bytes =
      SignatureStore::build(PassFailDictionary::build(tiny_matrix()))
          .to_bytes();
  EXPECT_THROW(SignatureStore::from_bytes(bytes + std::string(4096, '\0')),
               std::runtime_error);
  EXPECT_THROW(SignatureStore::from_bytes(bytes + "x"), std::runtime_error);
}

// Patches a header field and repairs the header CRC, so parse() reaches
// the semantic validation behind the checksum.
std::string patch_header(std::string bytes, std::size_t off,
                         std::uint32_t value) {
  for (int b = 0; b < 4; ++b)
    bytes[off + b] = static_cast<char>((value >> (8 * b)) & 0xff);
  Crc32 crc;
  crc.update(bytes.data(), 4092);
  const std::uint32_t v = crc.value();
  for (int b = 0; b < 4; ++b)
    bytes[4092 + b] = static_cast<char>((v >> (8 * b)) & 0xff);
  return bytes;
}

TEST(SignatureStoreFuzz, NamedErrorsBehindTheChecksum) {
  const std::string bytes =
      SignatureStore::build(PassFailDictionary::build(tiny_matrix()))
          .to_bytes();
  const auto message_of = [](const std::string& image) -> std::string {
    try {
      SignatureStore::from_bytes(image);
    } catch (const std::runtime_error& e) {
      return e.what();
    }
    return "";
  };
  EXPECT_NE(message_of(patch_header(bytes, 12, 99)).find("version"),
            std::string::npos);
  EXPECT_NE(message_of(patch_header(bytes, 16, 7)).find("bad kind"),
            std::string::npos);
  EXPECT_NE(message_of(patch_header(bytes, 20, 42)).find("bad source"),
            std::string::npos);
  EXPECT_NE(message_of(patch_header(bytes, 24, 0)).find("empty"),
            std::string::npos);
  EXPECT_NE(message_of(patch_header(bytes, 64, 8)).find("row stride"),
            std::string::npos);
  // Every named error carries the format prefix.
  EXPECT_EQ(message_of(patch_header(bytes, 12, 99)).rfind("SignatureStore:", 0),
            0u);
}

}  // namespace
}  // namespace sddict
