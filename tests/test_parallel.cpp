// Concurrency-layer tests: the work-stealing thread pool itself, and the
// bit-determinism guarantees of the two parallel construction stages —
// build_response_matrix and run_procedure1 must produce identical results
// at every thread count (ISSUE 1 tentpole). Registered under the ctest
// label "concurrency" so they can be singled out for -fsanitize=thread runs.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "bmcirc/embedded.h"
#include "bmcirc/synth.h"
#include "core/baseline.h"
#include "fault/collapse.h"
#include "sim/response.h"
#include "util/rng.h"
#include "util/threadpool.h"

namespace sddict {
namespace {

// ------------------------------------------------------------ ThreadPool --

TEST(ThreadPool, ResolveDefaultsToHardware) {
  EXPECT_GE(ThreadPool::default_num_threads(), 1u);
  EXPECT_EQ(ThreadPool::resolve(0), ThreadPool::default_num_threads());
  EXPECT_EQ(ThreadPool::resolve(3), 3u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(0, hits.size(),
                      [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ParallelForChunksPartitionExactly) {
  ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  std::vector<std::atomic<int>> hits(137);
  pool.parallel_for_chunks(0, hits.size(), 16,
                           [&](std::size_t b, std::size_t e) {
                             EXPECT_LT(b, e);
                             total.fetch_add(e - b);
                             for (std::size_t i = b; i < e; ++i)
                               hits[i].fetch_add(1);
                           });
  EXPECT_EQ(total.load(), hits.size());
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SubmitAndWaitIdle) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i)
    pool.submit([&] { done.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, SubmitFromWorkerTask) {
  // A task submitting follow-up work must not deadlock; the follow-up lands
  // on the submitting worker's own deque.
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i)
    pool.submit([&] { pool.submit([&] { done.fetch_add(1); }); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPool, EmptyRangeIsANoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ManySmallWavesStress) {
  // Exercises the sleep/wake and steal paths repeatedly (the shapes
  // run_procedure1 produces: many short parallel_for calls on one pool).
  ThreadPool pool(4);
  std::atomic<std::size_t> sum{0};
  for (int wave = 0; wave < 200; ++wave)
    pool.parallel_for(0, 7, [&](std::size_t i) { sum.fetch_add(i + 1); });
  EXPECT_EQ(sum.load(), 200u * (1 + 2 + 3 + 4 + 5 + 6 + 7));
}

// ------------------------------------------------- deterministic results --

void expect_same_matrix(const ResponseMatrix& a, const ResponseMatrix& b) {
  ASSERT_EQ(a.num_faults(), b.num_faults());
  ASSERT_EQ(a.num_tests(), b.num_tests());
  ASSERT_EQ(a.num_outputs(), b.num_outputs());
  for (std::size_t j = 0; j < a.num_tests(); ++j) {
    ASSERT_EQ(a.num_distinct(j), b.num_distinct(j)) << "test " << j;
    for (ResponseId id = 0; id < a.num_distinct(j); ++id)
      EXPECT_EQ(a.signature(j, id), b.signature(j, id))
          << "test " << j << " id " << id;
  }
  for (FaultId f = 0; f < a.num_faults(); ++f)
    for (std::size_t j = 0; j < a.num_tests(); ++j)
      ASSERT_EQ(a.response(f, j), b.response(f, j))
          << "fault " << f << " test " << j;
}

struct Workload {
  Netlist nl;
  FaultList faults;
  TestSet tests;
};

Workload synth_workload(std::size_t gates, std::size_t num_tests,
                        std::uint64_t seed) {
  SynthProfile profile;
  profile.name = "par";
  profile.inputs = 12;
  profile.outputs = 5;
  profile.dffs = 0;
  profile.gates = gates;
  profile.seed = seed;
  Workload w{generate_synthetic(profile), FaultList{}, TestSet{0}};
  w.faults = collapsed_fault_list(w.nl).collapsed;
  w.tests = TestSet(w.nl.num_inputs());
  Rng rng(seed);
  w.tests.add_random(num_tests, rng);
  return w;
}

TEST(ParallelDeterminism, ResponseMatrixIdenticalAcrossThreadCounts) {
  const Workload w = synth_workload(180, 150, 11);
  const ResponseMatrix serial =
      build_response_matrix(w.nl, w.faults, w.tests, {.num_threads = 1});
  for (std::size_t threads : {2u, 8u}) {
    const ResponseMatrix parallel = build_response_matrix(
        w.nl, w.faults, w.tests, {.num_threads = threads});
    expect_same_matrix(serial, parallel);
  }
}

TEST(ParallelDeterminism, ResponseMatrixWithDiffOutputsIdentical) {
  const Workload w = synth_workload(120, 100, 3);
  const ResponseMatrix serial = build_response_matrix(
      w.nl, w.faults, w.tests, {.store_diff_outputs = true, .num_threads = 1});
  const ResponseMatrix parallel = build_response_matrix(
      w.nl, w.faults, w.tests, {.store_diff_outputs = true, .num_threads = 8});
  expect_same_matrix(serial, parallel);
  for (std::size_t j = 0; j < serial.num_tests(); ++j)
    for (ResponseId id = 0; id < serial.num_distinct(j); ++id)
      EXPECT_EQ(serial.diff_outputs(j, id), parallel.diff_outputs(j, id));
}

TEST(ParallelDeterminism, Procedure1IdenticalAcrossThreadCounts) {
  const Workload w = synth_workload(140, 80, 29);
  const ResponseMatrix rm =
      build_response_matrix(w.nl, w.faults, w.tests, {.num_threads = 2});
  BaselineSelectionConfig cfg;
  cfg.lower = 10;
  cfg.calls1 = 12;
  cfg.seed = 5;
  cfg.num_threads = 1;
  const BaselineSelection serial = run_procedure1(rm, cfg);
  for (std::size_t threads : {2u, 8u}) {
    cfg.num_threads = threads;
    const BaselineSelection parallel = run_procedure1(rm, cfg);
    EXPECT_EQ(serial.baselines, parallel.baselines) << threads << " threads";
    EXPECT_EQ(serial.distinguished_pairs, parallel.distinguished_pairs);
    EXPECT_EQ(serial.indistinguished_pairs, parallel.indistinguished_pairs);
    EXPECT_EQ(serial.calls_used, parallel.calls_used);
  }
}

TEST(ParallelDeterminism, RepeatedRunsStable) {
  // Same seed, same thread count, run twice: no hidden global state.
  const Workload w = synth_workload(100, 60, 41);
  BaselineSelectionConfig cfg;
  cfg.calls1 = 6;
  cfg.seed = 13;
  cfg.num_threads = 4;
  const ResponseMatrix rm1 =
      build_response_matrix(w.nl, w.faults, w.tests, {.num_threads = 4});
  const ResponseMatrix rm2 =
      build_response_matrix(w.nl, w.faults, w.tests, {.num_threads = 4});
  expect_same_matrix(rm1, rm2);
  const BaselineSelection a = run_procedure1(rm1, cfg);
  const BaselineSelection b = run_procedure1(rm2, cfg);
  EXPECT_EQ(a.baselines, b.baselines);
  EXPECT_EQ(a.indistinguished_pairs, b.indistinguished_pairs);
  EXPECT_EQ(a.calls_used, b.calls_used);
}

TEST(ParallelDeterminism, C17MatrixMatchesAtEveryThreadCount) {
  const Netlist nl = make_c17();
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  TestSet tests(nl.num_inputs());
  Rng rng(2);
  tests.add_random(20, rng);
  const ResponseMatrix one =
      build_response_matrix(nl, faults, tests, {.num_threads = 1});
  for (std::size_t threads : {2u, 8u}) {
    const ResponseMatrix many =
        build_response_matrix(nl, faults, tests, {.num_threads = threads});
    expect_same_matrix(one, many);
  }
}

}  // namespace
}  // namespace sddict
