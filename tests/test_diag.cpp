#include <gtest/gtest.h>

#include "bmcirc/embedded.h"
#include "diag/observe.h"
#include "diag/report.h"
#include "diag/twophase.h"
#include "fault/collapse.h"
#include "sim/logicsim.h"

namespace sddict {
namespace {

struct Fixture {
  Netlist nl = make_c17();
  FaultList faults = collapsed_fault_list(nl).collapsed;
  TestSet tests;
  ResponseMatrix rm;
  Fixture() : tests(5) {
    // Exhaustive test set: every fault pair distinguishable by the test set
    // is distinguished, which makes expectations crisp.
    for (std::size_t v = 0; v < 32; ++v) {
      BitVec in(5);
      for (std::size_t i = 0; i < 5; ++i) in.set(i, (v >> i) & 1);
      tests.add(in);
    }
    rm = build_response_matrix(nl, faults, tests);
  }
};

TEST(Observe, ModeledFaultReproducesItsRow) {
  Fixture fx;
  for (FaultId f = 0; f < fx.faults.size(); f += 5) {
    const auto observed =
        observe_defect(fx.nl, fx.tests, fx.rm, {to_injection(fx.faults[f])});
    for (std::size_t t = 0; t < fx.tests.size(); ++t)
      EXPECT_EQ(observed[t], fx.rm.response(f, t)) << "fault " << f;
  }
}

TEST(Observe, FaultFreeChipSeesAllZeroIds) {
  Fixture fx;
  const auto observed = observe_defect(fx.nl, fx.tests, fx.rm, {});
  for (ResponseId id : observed) EXPECT_EQ(id, 0u);
}

TEST(Observe, DefectResponsesMatchStructuralSimulation) {
  Fixture fx;
  const Injection inj = to_injection(fx.faults[2]);
  const auto raw = defect_responses(fx.nl, fx.tests, {inj});
  const Netlist bad = inject_faults(fx.nl, {inj});
  for (std::size_t t = 0; t < fx.tests.size(); ++t)
    EXPECT_EQ(raw[t], simulate_pattern(bad, fx.tests[t]));
}

TEST(Observe, UnmodeledDefectMayProduceUnknownResponses) {
  Fixture fx;
  // A double fault is outside the single-fault model; any test response not
  // matching a modeled fault must come back as kUnknownResponse, and there
  // must be no crash.
  const auto observed = observe_defect(
      fx.nl, fx.tests, fx.rm,
      {to_injection(fx.faults[0]), to_injection(fx.faults[7])});
  EXPECT_EQ(observed.size(), fx.tests.size());
}

TEST(Diagnose, TrueFaultRanksFirstWithAllDictionaries) {
  Fixture fx;
  const auto full = FullDictionary::build(fx.rm);
  const auto pf = PassFailDictionary::build(fx.rm);
  const auto sd = SameDifferentDictionary::build(
      fx.rm, std::vector<ResponseId>(fx.tests.size(), 0));
  const FaultId truth = 4;
  const auto observed =
      observe_defect(fx.nl, fx.tests, fx.rm, {to_injection(fx.faults[truth])});
  const auto cmp = compare_dictionaries(full, pf, sd, observed, truth);
  EXPECT_EQ(cmp.full.best_mismatches, 0u);
  EXPECT_EQ(cmp.pass_fail.best_mismatches, 0u);
  EXPECT_EQ(cmp.same_different.best_mismatches, 0u);
  EXPECT_GE(cmp.full.true_fault_rank, 1u);
  EXPECT_LE(cmp.full.true_fault_rank, cmp.full.tied_candidates);
}

TEST(Diagnose, FullNeverCoarserThanPassFail) {
  Fixture fx;
  const auto full = FullDictionary::build(fx.rm);
  const auto pf = PassFailDictionary::build(fx.rm);
  const auto sd = SameDifferentDictionary::build(
      fx.rm, std::vector<ResponseId>(fx.tests.size(), 0));
  for (FaultId truth = 0; truth < fx.faults.size(); truth += 3) {
    const auto observed = observe_defect(fx.nl, fx.tests, fx.rm,
                                         {to_injection(fx.faults[truth])});
    const auto cmp = compare_dictionaries(full, pf, sd, observed, truth);
    EXPECT_LE(cmp.full.tied_candidates, cmp.pass_fail.tied_candidates);
  }
}

TEST(Diagnose, TiedCandidatesEqualsDictionaryClassSize) {
  Fixture fx;
  const auto full = FullDictionary::build(fx.rm);
  const auto pf = PassFailDictionary::build(fx.rm);
  const auto sd = SameDifferentDictionary::build(
      fx.rm, std::vector<ResponseId>(fx.tests.size(), 0));
  const FaultId truth = 0;
  const auto observed =
      observe_defect(fx.nl, fx.tests, fx.rm, {to_injection(fx.faults[truth])});
  const auto cmp = compare_dictionaries(full, pf, sd, observed, truth);
  const auto& cls =
      full.partition().classes()[full.partition().class_of(truth)];
  EXPECT_EQ(cmp.full.tied_candidates, cls.size());
}

TEST(Diagnose, ReportFormatsNames) {
  Fixture fx;
  const auto full = FullDictionary::build(fx.rm);
  const auto pf = PassFailDictionary::build(fx.rm);
  const auto sd = SameDifferentDictionary::build(
      fx.rm, std::vector<ResponseId>(fx.tests.size(), 0));
  const auto observed =
      observe_defect(fx.nl, fx.tests, fx.rm, {to_injection(fx.faults[1])});
  const auto cmp = compare_dictionaries(full, pf, sd, observed, 1);
  const std::string report = format_diagnosis(fx.nl, fx.faults, cmp);
  EXPECT_NE(report.find("full dictionary"), std::string::npos);
  EXPECT_NE(report.find("sa"), std::string::npos);
  EXPECT_NE(report.find("true fault ranked"), std::string::npos);
}

// ------------------------------------------------------------ two-phase --

TEST(TwoPhase, ExactCandidatesContainTruth) {
  Fixture fx;
  const auto pf = PassFailDictionary::build(fx.rm);
  const auto sd = SameDifferentDictionary::build(
      fx.rm, std::vector<ResponseId>(fx.tests.size(), 0));
  const FaultId truth = 9;
  const auto observed =
      observe_defect(fx.nl, fx.tests, fx.rm, {to_injection(fx.faults[truth])});

  const auto via_pf = two_phase_with_passfail(pf, fx.rm, observed);
  const auto via_sd = two_phase_with_samediff(sd, fx.rm, observed);
  for (const auto* res : {&via_pf, &via_sd}) {
    EXPECT_NE(std::find(res->phase1_candidates.begin(),
                        res->phase1_candidates.end(), truth),
              res->phase1_candidates.end());
    EXPECT_NE(std::find(res->phase2_candidates.begin(),
                        res->phase2_candidates.end(), truth),
              res->phase2_candidates.end());
    // Phase 2 only filters phase 1.
    for (FaultId f : res->phase2_candidates)
      EXPECT_NE(std::find(res->phase1_candidates.begin(),
                          res->phase1_candidates.end(), f),
                res->phase1_candidates.end());
    EXPECT_EQ(res->simulations_run, res->phase1_candidates.size());
    EXPECT_LT(res->simulations_run, fx.faults.size());
  }
}

TEST(TwoPhase, Phase2EqualsFullResponseClass) {
  Fixture fx;
  const auto pf = PassFailDictionary::build(fx.rm);
  const FaultId truth = 2;
  const auto observed =
      observe_defect(fx.nl, fx.tests, fx.rm, {to_injection(fx.faults[truth])});
  const auto res = two_phase_with_passfail(pf, fx.rm, observed);
  // Phase-2 candidates are exactly the faults whose full rows equal the
  // observation.
  for (FaultId f = 0; f < fx.faults.size(); ++f) {
    bool same = true;
    for (std::size_t t = 0; t < fx.tests.size() && same; ++t)
      same = fx.rm.response(f, t) == observed[t];
    const bool in_phase2 =
        std::find(res.phase2_candidates.begin(), res.phase2_candidates.end(),
                  f) != res.phase2_candidates.end();
    EXPECT_EQ(in_phase2, same) << f;
  }
}

TEST(TwoPhase, BetterDictionaryNarrowsPhase1) {
  // With a same/different dictionary of strictly better resolution, the
  // phase-1 candidate list can only be narrower or equal for every defect.
  Fixture fx;
  const auto pf = PassFailDictionary::build(fx.rm);
  // All-zero baselines equal pass/fail; a tuned baseline set is at least as
  // fine on every class it splits. (Comparison is per-observation.)
  std::vector<ResponseId> baselines(fx.tests.size(), 0);
  for (std::size_t t = 0; t < fx.tests.size(); ++t)
    if (fx.rm.num_distinct(t) > 1) baselines[t] = 1;
  const auto sd = SameDifferentDictionary::build(fx.rm, baselines);
  for (FaultId truth = 0; truth < fx.faults.size(); truth += 4) {
    const auto observed = observe_defect(fx.nl, fx.tests, fx.rm,
                                         {to_injection(fx.faults[truth])});
    const auto a = two_phase_with_passfail(pf, fx.rm, observed);
    const auto b = two_phase_with_samediff(sd, fx.rm, observed);
    // Both end at the same exact phase-2 answer.
    EXPECT_EQ(a.phase2_candidates, b.phase2_candidates);
  }
}

}  // namespace
}  // namespace sddict
