
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dict/detlist_dict.cpp" "src/dict/CMakeFiles/sddict_dict.dir/detlist_dict.cpp.o" "gcc" "src/dict/CMakeFiles/sddict_dict.dir/detlist_dict.cpp.o.d"
  "/root/repo/src/dict/dictionary.cpp" "src/dict/CMakeFiles/sddict_dict.dir/dictionary.cpp.o" "gcc" "src/dict/CMakeFiles/sddict_dict.dir/dictionary.cpp.o.d"
  "/root/repo/src/dict/firstfail_dict.cpp" "src/dict/CMakeFiles/sddict_dict.dir/firstfail_dict.cpp.o" "gcc" "src/dict/CMakeFiles/sddict_dict.dir/firstfail_dict.cpp.o.d"
  "/root/repo/src/dict/full_dict.cpp" "src/dict/CMakeFiles/sddict_dict.dir/full_dict.cpp.o" "gcc" "src/dict/CMakeFiles/sddict_dict.dir/full_dict.cpp.o.d"
  "/root/repo/src/dict/multibaseline_dict.cpp" "src/dict/CMakeFiles/sddict_dict.dir/multibaseline_dict.cpp.o" "gcc" "src/dict/CMakeFiles/sddict_dict.dir/multibaseline_dict.cpp.o.d"
  "/root/repo/src/dict/partition.cpp" "src/dict/CMakeFiles/sddict_dict.dir/partition.cpp.o" "gcc" "src/dict/CMakeFiles/sddict_dict.dir/partition.cpp.o.d"
  "/root/repo/src/dict/passfail_dict.cpp" "src/dict/CMakeFiles/sddict_dict.dir/passfail_dict.cpp.o" "gcc" "src/dict/CMakeFiles/sddict_dict.dir/passfail_dict.cpp.o.d"
  "/root/repo/src/dict/samediff_dict.cpp" "src/dict/CMakeFiles/sddict_dict.dir/samediff_dict.cpp.o" "gcc" "src/dict/CMakeFiles/sddict_dict.dir/samediff_dict.cpp.o.d"
  "/root/repo/src/dict/serialize.cpp" "src/dict/CMakeFiles/sddict_dict.dir/serialize.cpp.o" "gcc" "src/dict/CMakeFiles/sddict_dict.dir/serialize.cpp.o.d"
  "/root/repo/src/dict/signature_dict.cpp" "src/dict/CMakeFiles/sddict_dict.dir/signature_dict.cpp.o" "gcc" "src/dict/CMakeFiles/sddict_dict.dir/signature_dict.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sddict_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/sddict_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/sddict_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sddict_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
