# Empty dependencies file for sddict_dict.
# This may be replaced when dependencies are built.
