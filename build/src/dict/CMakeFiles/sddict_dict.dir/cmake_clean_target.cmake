file(REMOVE_RECURSE
  "libsddict_dict.a"
)
