file(REMOVE_RECURSE
  "CMakeFiles/sddict_dict.dir/detlist_dict.cpp.o"
  "CMakeFiles/sddict_dict.dir/detlist_dict.cpp.o.d"
  "CMakeFiles/sddict_dict.dir/dictionary.cpp.o"
  "CMakeFiles/sddict_dict.dir/dictionary.cpp.o.d"
  "CMakeFiles/sddict_dict.dir/firstfail_dict.cpp.o"
  "CMakeFiles/sddict_dict.dir/firstfail_dict.cpp.o.d"
  "CMakeFiles/sddict_dict.dir/full_dict.cpp.o"
  "CMakeFiles/sddict_dict.dir/full_dict.cpp.o.d"
  "CMakeFiles/sddict_dict.dir/multibaseline_dict.cpp.o"
  "CMakeFiles/sddict_dict.dir/multibaseline_dict.cpp.o.d"
  "CMakeFiles/sddict_dict.dir/partition.cpp.o"
  "CMakeFiles/sddict_dict.dir/partition.cpp.o.d"
  "CMakeFiles/sddict_dict.dir/passfail_dict.cpp.o"
  "CMakeFiles/sddict_dict.dir/passfail_dict.cpp.o.d"
  "CMakeFiles/sddict_dict.dir/samediff_dict.cpp.o"
  "CMakeFiles/sddict_dict.dir/samediff_dict.cpp.o.d"
  "CMakeFiles/sddict_dict.dir/serialize.cpp.o"
  "CMakeFiles/sddict_dict.dir/serialize.cpp.o.d"
  "CMakeFiles/sddict_dict.dir/signature_dict.cpp.o"
  "CMakeFiles/sddict_dict.dir/signature_dict.cpp.o.d"
  "libsddict_dict.a"
  "libsddict_dict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sddict_dict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
