# Empty compiler generated dependencies file for sddict_tgen.
# This may be replaced when dependencies are built.
