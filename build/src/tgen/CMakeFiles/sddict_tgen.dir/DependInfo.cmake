
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tgen/compact.cpp" "src/tgen/CMakeFiles/sddict_tgen.dir/compact.cpp.o" "gcc" "src/tgen/CMakeFiles/sddict_tgen.dir/compact.cpp.o.d"
  "/root/repo/src/tgen/diagset.cpp" "src/tgen/CMakeFiles/sddict_tgen.dir/diagset.cpp.o" "gcc" "src/tgen/CMakeFiles/sddict_tgen.dir/diagset.cpp.o.d"
  "/root/repo/src/tgen/distinguish.cpp" "src/tgen/CMakeFiles/sddict_tgen.dir/distinguish.cpp.o" "gcc" "src/tgen/CMakeFiles/sddict_tgen.dir/distinguish.cpp.o.d"
  "/root/repo/src/tgen/ndetect.cpp" "src/tgen/CMakeFiles/sddict_tgen.dir/ndetect.cpp.o" "gcc" "src/tgen/CMakeFiles/sddict_tgen.dir/ndetect.cpp.o.d"
  "/root/repo/src/tgen/podem.cpp" "src/tgen/CMakeFiles/sddict_tgen.dir/podem.cpp.o" "gcc" "src/tgen/CMakeFiles/sddict_tgen.dir/podem.cpp.o.d"
  "/root/repo/src/tgen/randgen.cpp" "src/tgen/CMakeFiles/sddict_tgen.dir/randgen.cpp.o" "gcc" "src/tgen/CMakeFiles/sddict_tgen.dir/randgen.cpp.o.d"
  "/root/repo/src/tgen/valuesys.cpp" "src/tgen/CMakeFiles/sddict_tgen.dir/valuesys.cpp.o" "gcc" "src/tgen/CMakeFiles/sddict_tgen.dir/valuesys.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sddict_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dict/CMakeFiles/sddict_dict.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/sddict_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/sddict_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sddict_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
