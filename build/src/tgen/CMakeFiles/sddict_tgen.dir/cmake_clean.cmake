file(REMOVE_RECURSE
  "CMakeFiles/sddict_tgen.dir/compact.cpp.o"
  "CMakeFiles/sddict_tgen.dir/compact.cpp.o.d"
  "CMakeFiles/sddict_tgen.dir/diagset.cpp.o"
  "CMakeFiles/sddict_tgen.dir/diagset.cpp.o.d"
  "CMakeFiles/sddict_tgen.dir/distinguish.cpp.o"
  "CMakeFiles/sddict_tgen.dir/distinguish.cpp.o.d"
  "CMakeFiles/sddict_tgen.dir/ndetect.cpp.o"
  "CMakeFiles/sddict_tgen.dir/ndetect.cpp.o.d"
  "CMakeFiles/sddict_tgen.dir/podem.cpp.o"
  "CMakeFiles/sddict_tgen.dir/podem.cpp.o.d"
  "CMakeFiles/sddict_tgen.dir/randgen.cpp.o"
  "CMakeFiles/sddict_tgen.dir/randgen.cpp.o.d"
  "CMakeFiles/sddict_tgen.dir/valuesys.cpp.o"
  "CMakeFiles/sddict_tgen.dir/valuesys.cpp.o.d"
  "libsddict_tgen.a"
  "libsddict_tgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sddict_tgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
