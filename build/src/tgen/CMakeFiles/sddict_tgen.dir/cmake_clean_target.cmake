file(REMOVE_RECURSE
  "libsddict_tgen.a"
)
