file(REMOVE_RECURSE
  "libsddict_core.a"
)
