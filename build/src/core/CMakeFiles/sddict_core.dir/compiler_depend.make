# Empty compiler generated dependencies file for sddict_core.
# This may be replaced when dependencies are built.
