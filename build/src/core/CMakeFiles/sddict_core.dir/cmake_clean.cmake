file(REMOVE_RECURSE
  "CMakeFiles/sddict_core.dir/baseline.cpp.o"
  "CMakeFiles/sddict_core.dir/baseline.cpp.o.d"
  "CMakeFiles/sddict_core.dir/experiment.cpp.o"
  "CMakeFiles/sddict_core.dir/experiment.cpp.o.d"
  "CMakeFiles/sddict_core.dir/hybrid.cpp.o"
  "CMakeFiles/sddict_core.dir/hybrid.cpp.o.d"
  "CMakeFiles/sddict_core.dir/minimize.cpp.o"
  "CMakeFiles/sddict_core.dir/minimize.cpp.o.d"
  "CMakeFiles/sddict_core.dir/multibaseline.cpp.o"
  "CMakeFiles/sddict_core.dir/multibaseline.cpp.o.d"
  "CMakeFiles/sddict_core.dir/pairset.cpp.o"
  "CMakeFiles/sddict_core.dir/pairset.cpp.o.d"
  "CMakeFiles/sddict_core.dir/procedure2.cpp.o"
  "CMakeFiles/sddict_core.dir/procedure2.cpp.o.d"
  "libsddict_core.a"
  "libsddict_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sddict_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
