
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baseline.cpp" "src/core/CMakeFiles/sddict_core.dir/baseline.cpp.o" "gcc" "src/core/CMakeFiles/sddict_core.dir/baseline.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/sddict_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/sddict_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/hybrid.cpp" "src/core/CMakeFiles/sddict_core.dir/hybrid.cpp.o" "gcc" "src/core/CMakeFiles/sddict_core.dir/hybrid.cpp.o.d"
  "/root/repo/src/core/minimize.cpp" "src/core/CMakeFiles/sddict_core.dir/minimize.cpp.o" "gcc" "src/core/CMakeFiles/sddict_core.dir/minimize.cpp.o.d"
  "/root/repo/src/core/multibaseline.cpp" "src/core/CMakeFiles/sddict_core.dir/multibaseline.cpp.o" "gcc" "src/core/CMakeFiles/sddict_core.dir/multibaseline.cpp.o.d"
  "/root/repo/src/core/pairset.cpp" "src/core/CMakeFiles/sddict_core.dir/pairset.cpp.o" "gcc" "src/core/CMakeFiles/sddict_core.dir/pairset.cpp.o.d"
  "/root/repo/src/core/procedure2.cpp" "src/core/CMakeFiles/sddict_core.dir/procedure2.cpp.o" "gcc" "src/core/CMakeFiles/sddict_core.dir/procedure2.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dict/CMakeFiles/sddict_dict.dir/DependInfo.cmake"
  "/root/repo/build/src/tgen/CMakeFiles/sddict_tgen.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sddict_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/sddict_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/sddict_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sddict_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
