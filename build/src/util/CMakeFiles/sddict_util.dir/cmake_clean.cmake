file(REMOVE_RECURSE
  "CMakeFiles/sddict_util.dir/bitvec.cpp.o"
  "CMakeFiles/sddict_util.dir/bitvec.cpp.o.d"
  "CMakeFiles/sddict_util.dir/cli.cpp.o"
  "CMakeFiles/sddict_util.dir/cli.cpp.o.d"
  "CMakeFiles/sddict_util.dir/hash.cpp.o"
  "CMakeFiles/sddict_util.dir/hash.cpp.o.d"
  "CMakeFiles/sddict_util.dir/log.cpp.o"
  "CMakeFiles/sddict_util.dir/log.cpp.o.d"
  "CMakeFiles/sddict_util.dir/rng.cpp.o"
  "CMakeFiles/sddict_util.dir/rng.cpp.o.d"
  "CMakeFiles/sddict_util.dir/strings.cpp.o"
  "CMakeFiles/sddict_util.dir/strings.cpp.o.d"
  "libsddict_util.a"
  "libsddict_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sddict_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
