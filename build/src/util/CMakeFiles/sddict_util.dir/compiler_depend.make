# Empty compiler generated dependencies file for sddict_util.
# This may be replaced when dependencies are built.
