file(REMOVE_RECURSE
  "libsddict_util.a"
)
