file(REMOVE_RECURSE
  "CMakeFiles/sddict_fault.dir/bridge.cpp.o"
  "CMakeFiles/sddict_fault.dir/bridge.cpp.o.d"
  "CMakeFiles/sddict_fault.dir/collapse.cpp.o"
  "CMakeFiles/sddict_fault.dir/collapse.cpp.o.d"
  "CMakeFiles/sddict_fault.dir/fault.cpp.o"
  "CMakeFiles/sddict_fault.dir/fault.cpp.o.d"
  "CMakeFiles/sddict_fault.dir/faultlist.cpp.o"
  "CMakeFiles/sddict_fault.dir/faultlist.cpp.o.d"
  "libsddict_fault.a"
  "libsddict_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sddict_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
