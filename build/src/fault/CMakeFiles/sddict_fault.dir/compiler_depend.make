# Empty compiler generated dependencies file for sddict_fault.
# This may be replaced when dependencies are built.
