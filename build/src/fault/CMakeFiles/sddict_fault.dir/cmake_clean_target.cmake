file(REMOVE_RECURSE
  "libsddict_fault.a"
)
