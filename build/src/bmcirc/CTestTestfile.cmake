# CMake generated Testfile for 
# Source directory: /root/repo/src/bmcirc
# Build directory: /root/repo/build/src/bmcirc
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
