file(REMOVE_RECURSE
  "CMakeFiles/sddict_bmcirc.dir/embedded.cpp.o"
  "CMakeFiles/sddict_bmcirc.dir/embedded.cpp.o.d"
  "CMakeFiles/sddict_bmcirc.dir/registry.cpp.o"
  "CMakeFiles/sddict_bmcirc.dir/registry.cpp.o.d"
  "CMakeFiles/sddict_bmcirc.dir/synth.cpp.o"
  "CMakeFiles/sddict_bmcirc.dir/synth.cpp.o.d"
  "libsddict_bmcirc.a"
  "libsddict_bmcirc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sddict_bmcirc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
