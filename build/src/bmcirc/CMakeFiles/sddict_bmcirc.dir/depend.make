# Empty dependencies file for sddict_bmcirc.
# This may be replaced when dependencies are built.
