file(REMOVE_RECURSE
  "libsddict_bmcirc.a"
)
