
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bmcirc/embedded.cpp" "src/bmcirc/CMakeFiles/sddict_bmcirc.dir/embedded.cpp.o" "gcc" "src/bmcirc/CMakeFiles/sddict_bmcirc.dir/embedded.cpp.o.d"
  "/root/repo/src/bmcirc/registry.cpp" "src/bmcirc/CMakeFiles/sddict_bmcirc.dir/registry.cpp.o" "gcc" "src/bmcirc/CMakeFiles/sddict_bmcirc.dir/registry.cpp.o.d"
  "/root/repo/src/bmcirc/synth.cpp" "src/bmcirc/CMakeFiles/sddict_bmcirc.dir/synth.cpp.o" "gcc" "src/bmcirc/CMakeFiles/sddict_bmcirc.dir/synth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/sddict_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sddict_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
