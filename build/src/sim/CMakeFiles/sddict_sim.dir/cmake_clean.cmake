file(REMOVE_RECURSE
  "CMakeFiles/sddict_sim.dir/faultsim.cpp.o"
  "CMakeFiles/sddict_sim.dir/faultsim.cpp.o.d"
  "CMakeFiles/sddict_sim.dir/logicsim.cpp.o"
  "CMakeFiles/sddict_sim.dir/logicsim.cpp.o.d"
  "CMakeFiles/sddict_sim.dir/misr.cpp.o"
  "CMakeFiles/sddict_sim.dir/misr.cpp.o.d"
  "CMakeFiles/sddict_sim.dir/response.cpp.o"
  "CMakeFiles/sddict_sim.dir/response.cpp.o.d"
  "CMakeFiles/sddict_sim.dir/seqsim.cpp.o"
  "CMakeFiles/sddict_sim.dir/seqsim.cpp.o.d"
  "CMakeFiles/sddict_sim.dir/testset.cpp.o"
  "CMakeFiles/sddict_sim.dir/testset.cpp.o.d"
  "libsddict_sim.a"
  "libsddict_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sddict_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
