file(REMOVE_RECURSE
  "libsddict_sim.a"
)
