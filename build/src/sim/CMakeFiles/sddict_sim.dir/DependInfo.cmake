
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/faultsim.cpp" "src/sim/CMakeFiles/sddict_sim.dir/faultsim.cpp.o" "gcc" "src/sim/CMakeFiles/sddict_sim.dir/faultsim.cpp.o.d"
  "/root/repo/src/sim/logicsim.cpp" "src/sim/CMakeFiles/sddict_sim.dir/logicsim.cpp.o" "gcc" "src/sim/CMakeFiles/sddict_sim.dir/logicsim.cpp.o.d"
  "/root/repo/src/sim/misr.cpp" "src/sim/CMakeFiles/sddict_sim.dir/misr.cpp.o" "gcc" "src/sim/CMakeFiles/sddict_sim.dir/misr.cpp.o.d"
  "/root/repo/src/sim/response.cpp" "src/sim/CMakeFiles/sddict_sim.dir/response.cpp.o" "gcc" "src/sim/CMakeFiles/sddict_sim.dir/response.cpp.o.d"
  "/root/repo/src/sim/seqsim.cpp" "src/sim/CMakeFiles/sddict_sim.dir/seqsim.cpp.o" "gcc" "src/sim/CMakeFiles/sddict_sim.dir/seqsim.cpp.o.d"
  "/root/repo/src/sim/testset.cpp" "src/sim/CMakeFiles/sddict_sim.dir/testset.cpp.o" "gcc" "src/sim/CMakeFiles/sddict_sim.dir/testset.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fault/CMakeFiles/sddict_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/sddict_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sddict_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
