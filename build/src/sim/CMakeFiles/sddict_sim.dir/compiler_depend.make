# Empty compiler generated dependencies file for sddict_sim.
# This may be replaced when dependencies are built.
