file(REMOVE_RECURSE
  "libsddict_diag.a"
)
