# Empty dependencies file for sddict_diag.
# This may be replaced when dependencies are built.
