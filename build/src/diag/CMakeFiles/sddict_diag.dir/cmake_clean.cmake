file(REMOVE_RECURSE
  "CMakeFiles/sddict_diag.dir/observe.cpp.o"
  "CMakeFiles/sddict_diag.dir/observe.cpp.o.d"
  "CMakeFiles/sddict_diag.dir/probe.cpp.o"
  "CMakeFiles/sddict_diag.dir/probe.cpp.o.d"
  "CMakeFiles/sddict_diag.dir/report.cpp.o"
  "CMakeFiles/sddict_diag.dir/report.cpp.o.d"
  "CMakeFiles/sddict_diag.dir/twophase.cpp.o"
  "CMakeFiles/sddict_diag.dir/twophase.cpp.o.d"
  "libsddict_diag.a"
  "libsddict_diag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sddict_diag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
