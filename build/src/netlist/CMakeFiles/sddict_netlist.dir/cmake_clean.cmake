file(REMOVE_RECURSE
  "CMakeFiles/sddict_netlist.dir/bench_io.cpp.o"
  "CMakeFiles/sddict_netlist.dir/bench_io.cpp.o.d"
  "CMakeFiles/sddict_netlist.dir/gate.cpp.o"
  "CMakeFiles/sddict_netlist.dir/gate.cpp.o.d"
  "CMakeFiles/sddict_netlist.dir/netlist.cpp.o"
  "CMakeFiles/sddict_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/sddict_netlist.dir/stats.cpp.o"
  "CMakeFiles/sddict_netlist.dir/stats.cpp.o.d"
  "CMakeFiles/sddict_netlist.dir/transform.cpp.o"
  "CMakeFiles/sddict_netlist.dir/transform.cpp.o.d"
  "libsddict_netlist.a"
  "libsddict_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sddict_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
