# Empty dependencies file for sddict_netlist.
# This may be replaced when dependencies are built.
