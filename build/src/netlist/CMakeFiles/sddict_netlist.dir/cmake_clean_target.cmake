file(REMOVE_RECURSE
  "libsddict_netlist.a"
)
