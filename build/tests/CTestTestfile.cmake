# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_netlist[1]_include.cmake")
include("/root/repo/build/tests/test_transform[1]_include.cmake")
include("/root/repo/build/tests/test_fault[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_tgen[1]_include.cmake")
include("/root/repo/build/tests/test_dict[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_diag[1]_include.cmake")
include("/root/repo/build/tests/test_bmcirc[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_multibaseline[1]_include.cmake")
include("/root/repo/build/tests/test_firstfail[1]_include.cmake")
include("/root/repo/build/tests/test_sequential[1]_include.cmake")
include("/root/repo/build/tests/test_edgecases[1]_include.cmake")
include("/root/repo/build/tests/test_minimize[1]_include.cmake")
include("/root/repo/build/tests/test_bridge[1]_include.cmake")
include("/root/repo/build/tests/test_signature[1]_include.cmake")
include("/root/repo/build/tests/test_probe[1]_include.cmake")
include("/root/repo/build/tests/test_compact_ndetect[1]_include.cmake")
include("/root/repo/build/tests/test_detlist[1]_include.cmake")
