
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/test_sim.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/test_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sddict_core.dir/DependInfo.cmake"
  "/root/repo/build/src/diag/CMakeFiles/sddict_diag.dir/DependInfo.cmake"
  "/root/repo/build/src/tgen/CMakeFiles/sddict_tgen.dir/DependInfo.cmake"
  "/root/repo/build/src/dict/CMakeFiles/sddict_dict.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sddict_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/sddict_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/sddict_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/bmcirc/CMakeFiles/sddict_bmcirc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sddict_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
