file(REMOVE_RECURSE
  "CMakeFiles/test_compact_ndetect.dir/test_compact_ndetect.cpp.o"
  "CMakeFiles/test_compact_ndetect.dir/test_compact_ndetect.cpp.o.d"
  "test_compact_ndetect"
  "test_compact_ndetect.pdb"
  "test_compact_ndetect[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compact_ndetect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
