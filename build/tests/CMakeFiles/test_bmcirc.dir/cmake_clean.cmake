file(REMOVE_RECURSE
  "CMakeFiles/test_bmcirc.dir/test_bmcirc.cpp.o"
  "CMakeFiles/test_bmcirc.dir/test_bmcirc.cpp.o.d"
  "test_bmcirc"
  "test_bmcirc.pdb"
  "test_bmcirc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bmcirc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
