# Empty compiler generated dependencies file for test_bmcirc.
# This may be replaced when dependencies are built.
