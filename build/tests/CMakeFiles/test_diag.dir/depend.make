# Empty dependencies file for test_diag.
# This may be replaced when dependencies are built.
