file(REMOVE_RECURSE
  "CMakeFiles/test_tgen.dir/test_tgen.cpp.o"
  "CMakeFiles/test_tgen.dir/test_tgen.cpp.o.d"
  "test_tgen"
  "test_tgen.pdb"
  "test_tgen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
