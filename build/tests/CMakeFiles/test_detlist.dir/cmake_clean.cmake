file(REMOVE_RECURSE
  "CMakeFiles/test_detlist.dir/test_detlist.cpp.o"
  "CMakeFiles/test_detlist.dir/test_detlist.cpp.o.d"
  "test_detlist"
  "test_detlist.pdb"
  "test_detlist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_detlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
