# Empty dependencies file for test_detlist.
# This may be replaced when dependencies are built.
