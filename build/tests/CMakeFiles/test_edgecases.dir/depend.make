# Empty dependencies file for test_edgecases.
# This may be replaced when dependencies are built.
