file(REMOVE_RECURSE
  "CMakeFiles/test_multibaseline.dir/test_multibaseline.cpp.o"
  "CMakeFiles/test_multibaseline.dir/test_multibaseline.cpp.o.d"
  "test_multibaseline"
  "test_multibaseline.pdb"
  "test_multibaseline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multibaseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
