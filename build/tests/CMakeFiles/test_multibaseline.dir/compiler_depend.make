# Empty compiler generated dependencies file for test_multibaseline.
# This may be replaced when dependencies are built.
