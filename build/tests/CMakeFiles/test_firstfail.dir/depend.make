# Empty dependencies file for test_firstfail.
# This may be replaced when dependencies are built.
