file(REMOVE_RECURSE
  "CMakeFiles/test_firstfail.dir/test_firstfail.cpp.o"
  "CMakeFiles/test_firstfail.dir/test_firstfail.cpp.o.d"
  "test_firstfail"
  "test_firstfail.pdb"
  "test_firstfail[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_firstfail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
