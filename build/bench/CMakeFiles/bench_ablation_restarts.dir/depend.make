# Empty dependencies file for bench_ablation_restarts.
# This may be replaced when dependencies are built.
