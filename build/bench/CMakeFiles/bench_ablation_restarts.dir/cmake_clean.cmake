file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_restarts.dir/bench_ablation_restarts.cpp.o"
  "CMakeFiles/bench_ablation_restarts.dir/bench_ablation_restarts.cpp.o.d"
  "bench_ablation_restarts"
  "bench_ablation_restarts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_restarts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
