# Empty compiler generated dependencies file for bench_ablation_compaction.
# This may be replaced when dependencies are built.
