file(REMOVE_RECURSE
  "CMakeFiles/bench_bridging.dir/bench_bridging.cpp.o"
  "CMakeFiles/bench_bridging.dir/bench_bridging.cpp.o.d"
  "bench_bridging"
  "bench_bridging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bridging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
