file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lower.dir/bench_ablation_lower.cpp.o"
  "CMakeFiles/bench_ablation_lower.dir/bench_ablation_lower.cpp.o.d"
  "bench_ablation_lower"
  "bench_ablation_lower.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lower.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
