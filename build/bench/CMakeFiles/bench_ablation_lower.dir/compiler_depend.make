# Empty compiler generated dependencies file for bench_ablation_lower.
# This may be replaced when dependencies are built.
