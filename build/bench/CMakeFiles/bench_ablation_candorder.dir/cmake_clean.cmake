file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_candorder.dir/bench_ablation_candorder.cpp.o"
  "CMakeFiles/bench_ablation_candorder.dir/bench_ablation_candorder.cpp.o.d"
  "bench_ablation_candorder"
  "bench_ablation_candorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_candorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
