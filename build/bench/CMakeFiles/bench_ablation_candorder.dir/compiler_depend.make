# Empty compiler generated dependencies file for bench_ablation_candorder.
# This may be replaced when dependencies are built.
