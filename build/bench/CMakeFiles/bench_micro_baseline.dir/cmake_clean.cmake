file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_baseline.dir/bench_micro_baseline.cpp.o"
  "CMakeFiles/bench_micro_baseline.dir/bench_micro_baseline.cpp.o.d"
  "bench_micro_baseline"
  "bench_micro_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
