file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multibaseline.dir/bench_ablation_multibaseline.cpp.o"
  "CMakeFiles/bench_ablation_multibaseline.dir/bench_ablation_multibaseline.cpp.o.d"
  "bench_ablation_multibaseline"
  "bench_ablation_multibaseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multibaseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
