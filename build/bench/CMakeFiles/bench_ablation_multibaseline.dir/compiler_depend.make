# Empty compiler generated dependencies file for bench_ablation_multibaseline.
# This may be replaced when dependencies are built.
