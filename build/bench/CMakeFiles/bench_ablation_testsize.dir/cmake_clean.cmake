file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_testsize.dir/bench_ablation_testsize.cpp.o"
  "CMakeFiles/bench_ablation_testsize.dir/bench_ablation_testsize.cpp.o.d"
  "bench_ablation_testsize"
  "bench_ablation_testsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_testsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
