# Empty compiler generated dependencies file for bench_ablation_testsize.
# This may be replaced when dependencies are built.
