file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_dict.dir/bench_micro_dict.cpp.o"
  "CMakeFiles/bench_micro_dict.dir/bench_micro_dict.cpp.o.d"
  "bench_micro_dict"
  "bench_micro_dict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_dict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
