# Empty dependencies file for bench_micro_dict.
# This may be replaced when dependencies are built.
