# Empty compiler generated dependencies file for probe_session.
# This may be replaced when dependencies are built.
