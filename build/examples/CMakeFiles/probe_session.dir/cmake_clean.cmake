file(REMOVE_RECURSE
  "CMakeFiles/probe_session.dir/probe_session.cpp.o"
  "CMakeFiles/probe_session.dir/probe_session.cpp.o.d"
  "probe_session"
  "probe_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probe_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
