# Empty dependencies file for diagnose_chip.
# This may be replaced when dependencies are built.
