file(REMOVE_RECURSE
  "CMakeFiles/diagnose_chip.dir/diagnose_chip.cpp.o"
  "CMakeFiles/diagnose_chip.dir/diagnose_chip.cpp.o.d"
  "diagnose_chip"
  "diagnose_chip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diagnose_chip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
