# Empty dependencies file for dictionary_explorer.
# This may be replaced when dependencies are built.
