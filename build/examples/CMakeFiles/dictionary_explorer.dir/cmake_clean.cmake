file(REMOVE_RECURSE
  "CMakeFiles/dictionary_explorer.dir/dictionary_explorer.cpp.o"
  "CMakeFiles/dictionary_explorer.dir/dictionary_explorer.cpp.o.d"
  "dictionary_explorer"
  "dictionary_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dictionary_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
