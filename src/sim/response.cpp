#include "sim/response.h"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <unordered_map>

#include "sim/faultsim.h"

namespace sddict {

std::vector<std::uint32_t> ResponseMatrix::response_counts(std::size_t test) const {
  std::vector<std::uint32_t> counts(num_distinct(test), 0);
  for (FaultId f = 0; f < num_faults_; ++f) ++counts[response(f, test)];
  return counts;
}

std::uint32_t ResponseMatrix::detection_count(FaultId fault) const {
  std::uint32_t n = 0;
  for (std::size_t j = 0; j < num_tests_; ++j)
    if (detected(fault, j)) ++n;
  return n;
}

ResponseId ResponseMatrix::find_response(std::size_t test,
                                         const Hash128& sig) const {
  const auto& sigs = signatures_[test];
  for (ResponseId id = 0; id < sigs.size(); ++id)
    if (sigs[id] == sig) return id;
  return static_cast<ResponseId>(-1);
}

const std::vector<std::uint32_t>& ResponseMatrix::diff_outputs(
    std::size_t test, ResponseId id) const {
  if (!has_diffs_)
    throw std::logic_error(
        "ResponseMatrix: built without store_diff_outputs");
  return diffs_[test][id];
}

ResponseMatrix build_response_matrix(const Netlist& nl, const FaultList& faults,
                                     const TestSet& tests,
                                     const ResponseMatrixOptions& options) {
  ResponseMatrix rm;
  rm.num_faults_ = faults.size();
  rm.num_tests_ = tests.size();
  rm.num_outputs_ = nl.num_outputs();
  rm.has_diffs_ = options.store_diff_outputs;
  rm.resp_.assign(faults.size() * tests.size(), 0);
  rm.signatures_.assign(tests.size(), {Hash128{}});  // id 0 = fault-free
  if (options.store_diff_outputs)
    rm.diffs_.assign(tests.size(), {{}});

  // Per-test interning tables.
  std::vector<std::unordered_map<Hash128, ResponseId, Hash128Hasher>> intern(
      tests.size());

  FaultSimulator fsim(nl);
  std::vector<std::uint64_t> input_words;

  // Scratch reused across faults: per-pattern signature accumulators and the
  // raw (output, diff word) pairs of the current fault.
  Hash128 sig[64];
  std::vector<std::pair<std::size_t, std::uint64_t>> fault_diffs;

  for (std::size_t first = 0; first < tests.size(); first += 64) {
    const std::size_t count = std::min<std::size_t>(64, tests.size() - first);
    tests.pack_batch(first, count, &input_words);
    fsim.load_batch(input_words, count);

    for (FaultId i = 0; i < faults.size(); ++i) {
      fault_diffs.clear();
      const std::uint64_t any =
          fsim.simulate_fault(faults[i], [&](std::size_t o, std::uint64_t w) {
            fault_diffs.push_back({o, w});
          });
      if (any == 0) continue;  // all slots keep response id 0

      for (const auto& [o, w] : fault_diffs) {
        const Hash128 tok = slot_token(o, 1);
        std::uint64_t bits = w;
        while (bits != 0) {
          const int t = std::countr_zero(bits);
          bits &= bits - 1;
          sig[t] ^= tok;
        }
      }

      std::uint64_t dirty = any;
      while (dirty != 0) {
        const int t = std::countr_zero(dirty);
        dirty &= dirty - 1;
        const std::size_t test = first + static_cast<std::size_t>(t);
        auto& table = intern[test];
        auto [it, inserted] = table.try_emplace(
            sig[t], static_cast<ResponseId>(rm.signatures_[test].size()));
        if (inserted) {
          rm.signatures_[test].push_back(sig[t]);
          if (options.store_diff_outputs) {
            std::vector<std::uint32_t> outs;
            for (const auto& [o, w] : fault_diffs)
              if ((w >> t) & 1) outs.push_back(static_cast<std::uint32_t>(o));
            std::sort(outs.begin(), outs.end());
            rm.diffs_[test].push_back(std::move(outs));
          }
        }
        rm.resp_[static_cast<std::size_t>(i) * tests.size() + test] = it->second;
        sig[t] = Hash128{};  // reset for the next fault
      }
    }
  }
  return rm;
}

ResponseMatrix response_matrix_from_table(
    const std::vector<BitVec>& fault_free,
    const std::vector<std::vector<BitVec>>& faulty) {
  const std::size_t k = fault_free.size();
  const std::size_t n = faulty.size();
  const std::size_t m = k > 0 ? fault_free[0].size() : 0;
  for (const auto& v : fault_free)
    if (v.size() != m)
      throw std::invalid_argument("response_matrix_from_table: ragged fault-free");
  for (const auto& row : faulty) {
    if (row.size() != k)
      throw std::invalid_argument("response_matrix_from_table: ragged fault row");
    for (const auto& v : row)
      if (v.size() != m)
        throw std::invalid_argument("response_matrix_from_table: vector width");
  }

  ResponseMatrix rm;
  rm.num_faults_ = n;
  rm.num_tests_ = k;
  rm.num_outputs_ = m;
  rm.has_diffs_ = true;
  rm.resp_.assign(n * k, 0);
  rm.signatures_.assign(k, {Hash128{}});
  rm.diffs_.assign(k, {{}});

  std::vector<std::unordered_map<Hash128, ResponseId, Hash128Hasher>> intern(k);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      Hash128 sig;
      std::vector<std::uint32_t> outs;
      for (std::size_t o = 0; o < m; ++o) {
        if (faulty[i][j].get(o) != fault_free[j].get(o)) {
          sig ^= slot_token(o, 1);
          outs.push_back(static_cast<std::uint32_t>(o));
        }
      }
      if (outs.empty()) continue;  // fault-free response, id 0
      auto [it, inserted] = intern[j].try_emplace(
          sig, static_cast<ResponseId>(rm.signatures_[j].size()));
      if (inserted) {
        rm.signatures_[j].push_back(sig);
        rm.diffs_[j].push_back(std::move(outs));
      }
      rm.resp_[i * k + j] = it->second;
    }
  }
  return rm;
}

}  // namespace sddict
