#include "sim/response.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>
#include <unordered_map>

#include "sim/faultsim.h"
#include "util/failpoint.h"
#include "util/threadpool.h"

namespace sddict {

const char* observed_status_name(ObservedStatus s) {
  switch (s) {
    case ObservedStatus::kValue: return "value";
    case ObservedStatus::kMissing: return "missing";
    case ObservedStatus::kUnstable: return "unstable";
  }
  return "?";
}

std::vector<Observed> qualify(const std::vector<ResponseId>& observed) {
  std::vector<Observed> out(observed.size());
  for (std::size_t t = 0; t < observed.size(); ++t)
    out[t] = Observed::of(observed[t]);
  return out;
}

std::vector<std::uint32_t> ResponseMatrix::response_counts(std::size_t test) const {
  std::vector<std::uint32_t> counts(num_distinct(test), 0);
  for (FaultId f = 0; f < num_faults_; ++f) ++counts[response(f, test)];
  return counts;
}

std::uint32_t ResponseMatrix::detection_count(FaultId fault) const {
  std::uint32_t n = 0;
  for (std::size_t j = 0; j < num_tests_; ++j)
    if (detected(fault, j)) ++n;
  return n;
}

ResponseId ResponseMatrix::find_response(std::size_t test,
                                         const Hash128& sig) const {
  const auto& sigs = signatures_[test];
  for (ResponseId id = 0; id < sigs.size(); ++id)
    if (sigs[id] == sig) return id;
  return static_cast<ResponseId>(-1);
}

const std::vector<std::uint32_t>& ResponseMatrix::diff_outputs(
    std::size_t test, ResponseId id) const {
  if (!has_diffs_)
    throw std::logic_error(
        "ResponseMatrix: built without store_diff_outputs");
  return diffs_[test][id];
}

namespace {

// One contiguous slice of the fault list, simulated with chunk-local
// response ids. Local id 0 is fault-free; local id l >= 1 maps to
// sigs[test][l - 1], listed in first-appearance order — which, because a
// chunk scans its faults in ascending id order for every test, is ascending
// first-detecting-fault order within the chunk.
struct ChunkStage {
  std::size_t fault_begin = 0;
  std::size_t fault_end = 0;
  bool complete = false;  // ran over every pattern batch without expiring
  std::vector<std::vector<Hash128>> sigs;                        // [test][l-1]
  std::vector<std::vector<std::vector<std::uint32_t>>> diffs;    // [test][l-1]
};

// Simulates faults [stage->fault_begin, stage->fault_end) against all tests,
// writing chunk-local ids into the global fault-major resp array (rows are
// disjoint across chunks, so no synchronization is needed). Stops at the
// next pattern-batch boundary once the budget scope expires, leaving the
// remaining entries at id 0.
void simulate_chunk(const Netlist& nl, const FaultList& faults,
                    const TestSet& tests, const ResponseMatrixOptions& options,
                    BudgetScope* scope, std::vector<ResponseId>* resp,
                    ChunkStage* stage) {
  SDDICT_FAILPOINT("simulate_chunk");
  const std::size_t k = tests.size();
  stage->sigs.assign(k, {});
  if (options.store_diff_outputs) stage->diffs.assign(k, {});
  std::vector<std::unordered_map<Hash128, ResponseId, Hash128Hasher>> intern(k);

  FaultSimulator fsim(nl);
  std::vector<std::uint64_t> input_words;

  // Scratch reused across faults: per-pattern signature accumulators and the
  // raw (output, diff word) pairs of the current fault.
  Hash128 sig[64];
  std::vector<std::pair<std::size_t, std::uint64_t>> fault_diffs;

  for (std::size_t first = 0; first < k; first += 64) {
    if (scope->stop()) return;  // stage->complete stays false
    const std::size_t count = std::min<std::size_t>(64, k - first);
    tests.pack_batch(first, count, &input_words);
    fsim.load_batch(input_words, count);

    for (FaultId i = stage->fault_begin; i < stage->fault_end; ++i) {
      fault_diffs.clear();
      const std::uint64_t any =
          fsim.simulate_fault(faults[i], [&](std::size_t o, std::uint64_t w) {
            fault_diffs.push_back({o, w});
          });
      if (any == 0) continue;  // all slots keep response id 0

      for (const auto& [o, w] : fault_diffs) {
        const Hash128 tok = slot_token(o, 1);
        std::uint64_t bits = w;
        while (bits != 0) {
          const int t = std::countr_zero(bits);
          bits &= bits - 1;
          sig[t] ^= tok;
        }
      }

      std::uint64_t dirty = any;
      while (dirty != 0) {
        const int t = std::countr_zero(dirty);
        dirty &= dirty - 1;
        const std::size_t test = first + static_cast<std::size_t>(t);
        auto& table = intern[test];
        auto [it, inserted] = table.try_emplace(
            sig[t], static_cast<ResponseId>(stage->sigs[test].size() + 1));
        if (inserted) {
          stage->sigs[test].push_back(sig[t]);
          if (options.store_diff_outputs) {
            std::vector<std::uint32_t> outs;
            for (const auto& [o, w] : fault_diffs)
              if ((w >> t) & 1) outs.push_back(static_cast<std::uint32_t>(o));
            std::sort(outs.begin(), outs.end());
            stage->diffs[test].push_back(std::move(outs));
          }
        }
        (*resp)[static_cast<std::size_t>(i) * k + test] = it->second;
        sig[t] = Hash128{};  // reset for the next fault
      }
    }
  }
  stage->complete = true;
}

}  // namespace

ResponseMatrix build_response_matrix(const Netlist& nl, const FaultList& faults,
                                     const TestSet& tests,
                                     const ResponseMatrixOptions& options,
                                     ResponseMatrixStatus* status) {
  BudgetScope scope(options.budget);
  ResponseMatrix rm;
  rm.num_faults_ = faults.size();
  rm.num_tests_ = tests.size();
  rm.num_outputs_ = nl.num_outputs();
  rm.has_diffs_ = options.store_diff_outputs;
  rm.resp_.assign(faults.size() * tests.size(), 0);
  rm.signatures_.assign(tests.size(), {Hash128{}});  // id 0 = fault-free
  if (options.store_diff_outputs)
    rm.diffs_.assign(tests.size(), {{}});

  const std::size_t n = faults.size();
  const std::size_t k = tests.size();
  const std::size_t threads = ThreadPool::resolve(options.num_threads);
  // Oversplit relative to the thread count so uneven fault cones balance via
  // stealing. Any contiguous ascending chunking yields the same matrix: the
  // merge below re-interns in ascending first-detecting-fault order, which
  // is independent of where the chunk boundaries fall.
  const std::size_t num_chunks =
      (threads <= 1 || n < 2) ? (n > 0 ? 1 : 0)
                              : std::min(n, threads * 4);

  std::vector<ChunkStage> stages(num_chunks);
  for (std::size_t c = 0; c < num_chunks; ++c) {
    stages[c].fault_begin = n * c / num_chunks;
    stages[c].fault_end = n * (c + 1) / num_chunks;
  }

  auto run_chunk = [&](std::size_t c) {
    simulate_chunk(nl, faults, tests, options, &scope, &rm.resp_, &stages[c]);
  };

  std::unique_ptr<ThreadPool> pool;
  if (num_chunks > 1) {
    pool = std::make_unique<ThreadPool>(threads);
    pool->parallel_for(0, num_chunks, run_chunk);
  } else if (num_chunks == 1) {
    run_chunk(0);
  }

  // Deterministic merge: per test, intern each chunk's local signatures in
  // (chunk, local id) order. Chunks cover ascending fault ranges and local
  // ids appear in ascending first-fault order inside a chunk, so the global
  // enumeration is exactly the ascending first-detecting-fault order a
  // single-threaded pass produces.
  std::vector<std::vector<std::vector<ResponseId>>> remap(num_chunks);
  std::vector<bool> identity(num_chunks, true);
  {
    std::vector<std::unordered_map<Hash128, ResponseId, Hash128Hasher>> intern(
        k);
    for (std::size_t c = 0; c < num_chunks; ++c) {
      SDDICT_FAILPOINT("response_merge");
      remap[c].assign(k, {});
      for (std::size_t j = 0; j < k; ++j) {
        const auto& local_sigs = stages[c].sigs[j];
        auto& map = remap[c][j];
        map.resize(local_sigs.size() + 1);
        map[0] = 0;
        for (std::size_t l = 0; l < local_sigs.size(); ++l) {
          auto [it, inserted] = intern[j].try_emplace(
              local_sigs[l], static_cast<ResponseId>(rm.signatures_[j].size()));
          if (inserted) {
            rm.signatures_[j].push_back(local_sigs[l]);
            if (options.store_diff_outputs)
              rm.diffs_[j].push_back(std::move(stages[c].diffs[j][l]));
          }
          map[l + 1] = it->second;
          if (it->second != static_cast<ResponseId>(l + 1))
            identity[c] = false;
        }
      }
    }
  }

  // Rewrite chunk-local ids as global ids. Chunks with an identity map (in
  // particular the single-chunk case) skip the pass.
  auto remap_chunk = [&](std::size_t c) {
    if (identity[c]) return;
    for (std::size_t f = stages[c].fault_begin; f < stages[c].fault_end; ++f)
      for (std::size_t j = 0; j < k; ++j) {
        ResponseId& r = rm.resp_[f * k + j];
        if (r != 0) r = remap[c][j][r];
      }
  };
  if (pool != nullptr) {
    pool->parallel_for(0, num_chunks, remap_chunk);
  } else {
    for (std::size_t c = 0; c < num_chunks; ++c) remap_chunk(c);
  }

#ifndef NDEBUG
  // Invariant relied on throughout the dictionary layer: id 0 — and only
  // id 0 — carries the empty (fault-free) difference signature. It holds
  // for budget-truncated matrices too: unsimulated entries keep id 0.
  for (std::size_t j = 0; j < k; ++j)
    assert(rm.fault_free_id(j) == 0);
#endif
  if (status != nullptr) {
    status->completed = !scope.stopped();
    status->stop_reason = scope.reason();
    status->faults_simulated = 0;
    for (const ChunkStage& s : stages)
      if (s.complete) status->faults_simulated += s.fault_end - s.fault_begin;
  }
  return rm;
}

ResponseMatrix response_matrix_from_table(
    const std::vector<BitVec>& fault_free,
    const std::vector<std::vector<BitVec>>& faulty) {
  const std::size_t k = fault_free.size();
  const std::size_t n = faulty.size();
  const std::size_t m = k > 0 ? fault_free[0].size() : 0;
  for (const auto& v : fault_free)
    if (v.size() != m)
      throw std::invalid_argument("response_matrix_from_table: ragged fault-free");
  for (const auto& row : faulty) {
    if (row.size() != k)
      throw std::invalid_argument("response_matrix_from_table: ragged fault row");
    for (const auto& v : row)
      if (v.size() != m)
        throw std::invalid_argument("response_matrix_from_table: vector width");
  }

  ResponseMatrix rm;
  rm.num_faults_ = n;
  rm.num_tests_ = k;
  rm.num_outputs_ = m;
  rm.has_diffs_ = true;
  rm.resp_.assign(n * k, 0);
  rm.signatures_.assign(k, {Hash128{}});
  rm.diffs_.assign(k, {{}});

  std::vector<std::unordered_map<Hash128, ResponseId, Hash128Hasher>> intern(k);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      Hash128 sig;
      std::vector<std::uint32_t> outs;
      for (std::size_t o = 0; o < m; ++o) {
        if (faulty[i][j].get(o) != fault_free[j].get(o)) {
          sig ^= slot_token(o, 1);
          outs.push_back(static_cast<std::uint32_t>(o));
        }
      }
      if (outs.empty()) continue;  // fault-free response, id 0
      auto [it, inserted] = intern[j].try_emplace(
          sig, static_cast<ResponseId>(rm.signatures_[j].size()));
      if (inserted) {
        rm.signatures_[j].push_back(sig);
        rm.diffs_[j].push_back(std::move(outs));
      }
      rm.resp_[i * k + j] = it->second;
    }
  }
#ifndef NDEBUG
  for (std::size_t j = 0; j < k; ++j) assert(rm.fault_free_id(j) == 0);
#endif
  return rm;
}

ResponseMatrix response_matrix_from_ids(
    std::vector<ResponseId> resp, std::vector<std::vector<Hash128>> signatures,
    std::size_t num_faults, std::size_t num_tests, std::size_t num_outputs) {
  if (resp.size() != num_faults * num_tests)
    throw std::invalid_argument("response_matrix_from_ids: resp size");
  if (signatures.size() != num_tests)
    throw std::invalid_argument("response_matrix_from_ids: signature tests");
  for (std::size_t j = 0; j < num_tests; ++j) {
    std::size_t empty = 0;
    for (const Hash128& s : signatures[j])
      if (s == Hash128{}) ++empty;
    if (empty != 1)
      throw std::invalid_argument(
          "response_matrix_from_ids: each test needs exactly one fault-free "
          "(empty) signature");
  }
  for (std::size_t i = 0; i < num_faults; ++i)
    for (std::size_t j = 0; j < num_tests; ++j)
      if (resp[i * num_tests + j] >= signatures[j].size())
        throw std::invalid_argument(
            "response_matrix_from_ids: response id out of range");

  ResponseMatrix rm;
  rm.num_faults_ = num_faults;
  rm.num_tests_ = num_tests;
  rm.num_outputs_ = num_outputs;
  rm.has_diffs_ = false;
  rm.resp_ = std::move(resp);
  rm.signatures_ = std::move(signatures);
  return rm;
}

}  // namespace sddict
