#include "sim/seqsim.h"

#include <stdexcept>

namespace sddict {

SequentialSimulator::SequentialSimulator(const Netlist& nl) : nl_(&nl) {
  value_.assign(nl.num_gates(), 0);
  nl.topo_order();  // raises on combinational cycles
}

BitVec SequentialSimulator::state() const {
  BitVec s(nl_->dffs().size());
  for (std::size_t i = 0; i < nl_->dffs().size(); ++i)
    s.set(i, value_[nl_->dffs()[i]] != 0);
  return s;
}

void SequentialSimulator::set_state(const BitVec& state) {
  if (state.size() != nl_->dffs().size())
    throw std::invalid_argument("SequentialSimulator: state width");
  for (std::size_t i = 0; i < nl_->dffs().size(); ++i)
    value_[nl_->dffs()[i]] = state.get(i) ? 1 : 0;
}

void SequentialSimulator::reset() {
  for (GateId d : nl_->dffs()) value_[d] = 0;
}

BitVec SequentialSimulator::step(const BitVec& inputs) {
  if (inputs.size() != nl_->num_inputs())
    throw std::invalid_argument("SequentialSimulator: input width");
  for (std::size_t i = 0; i < nl_->num_inputs(); ++i)
    value_[nl_->inputs()[i]] = inputs.get(i) ? 1 : 0;

  bool buf[64];
  std::vector<bool> big;
  for (GateId g : nl_->topo_order()) {
    const Gate& gate = nl_->gate(g);
    if (gate.type == GateType::kInput || gate.type == GateType::kDff)
      continue;  // DFF outputs hold the current state during the cycle
    const std::size_t arity = gate.fanin.size();
    if (arity <= 64) {
      for (std::size_t p = 0; p < arity; ++p) buf[p] = value_[gate.fanin[p]] != 0;
      value_[g] = eval_gate_bool(gate.type, buf, arity) ? 1 : 0;
    } else {
      big.assign(arity, false);
      bool wide[256];
      for (std::size_t p = 0; p < arity && p < 256; ++p)
        wide[p] = value_[gate.fanin[p]] != 0;
      value_[g] = eval_gate_bool(gate.type, wide, arity) ? 1 : 0;
    }
  }

  BitVec out(nl_->num_outputs());
  for (std::size_t o = 0; o < nl_->num_outputs(); ++o)
    out.set(o, value_[nl_->outputs()[o]] != 0);

  // Advance state: each DFF captures its data input.
  std::vector<std::uint8_t> next(nl_->dffs().size());
  for (std::size_t i = 0; i < nl_->dffs().size(); ++i)
    next[i] = value_[nl_->gate(nl_->dffs()[i]).fanin[0]];
  for (std::size_t i = 0; i < nl_->dffs().size(); ++i)
    value_[nl_->dffs()[i]] = next[i];
  return out;
}

std::vector<BitVec> SequentialSimulator::run(const std::vector<BitVec>& inputs) {
  std::vector<BitVec> out;
  out.reserve(inputs.size());
  for (const auto& in : inputs) out.push_back(step(in));
  return out;
}

}  // namespace sddict
