// A test set: an ordered list of input vectors for a combinational
// (full-scan) circuit. Tests are stored one BitVec per test, bit i = value
// of primary input i; helpers pack them 64-at-a-time for the bit-parallel
// simulator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bitvec.h"
#include "util/rng.h"

namespace sddict {

class TestSet {
 public:
  TestSet() = default;
  explicit TestSet(std::size_t num_inputs) : num_inputs_(num_inputs) {}

  std::size_t num_inputs() const { return num_inputs_; }
  std::size_t size() const { return tests_.size(); }
  bool empty() const { return tests_.empty(); }

  const BitVec& operator[](std::size_t t) const { return tests_[t]; }
  const std::vector<BitVec>& tests() const { return tests_; }

  void add(BitVec test);
  void add_string(const std::string& bits);

  // Appends `count` uniformly random tests.
  void add_random(std::size_t count, Rng& rng);

  // Appends every test of `other` (same input count required).
  void append(const TestSet& other);

  // Keeps only tests at the given indices, in the given order.
  TestSet subset(const std::vector<std::size_t>& indices) const;

  // Removes duplicate tests, preserving first occurrences.
  void dedupe();

  // Packs tests [first, first+count) into words: word[i] bit t holds
  // test (first+t) input i. count <= 64; missing slots are zero-filled.
  void pack_batch(std::size_t first, std::size_t count,
                  std::vector<std::uint64_t>* words) const;

  std::size_t num_batches() const { return (size() + 63) / 64; }

 private:
  std::size_t num_inputs_ = 0;
  std::vector<BitVec> tests_;
};

}  // namespace sddict
