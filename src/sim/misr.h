// Linear-feedback signature machinery for BIST-style diagnosis (the
// setting of the paper's references [6] and [19]): an LFSR-based MISR
// (multiple-input signature register) compacts a circuit's whole output
// stream across a test set into one short signature per fault.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bitvec.h"

namespace sddict {

// Fibonacci LFSR over GF(2) with a caller-supplied tap mask (bit i of
// `taps` = feedback from stage i). Used both as a pattern source and as the
// base of the MISR.
class Lfsr {
 public:
  // width in [1, 64]; taps must be nonzero within the width.
  Lfsr(unsigned width, std::uint64_t taps, std::uint64_t seed = 1);

  // A maximal-length default polynomial for common widths (16/24/32).
  static Lfsr standard(unsigned width, std::uint64_t seed = 1);

  std::uint64_t state() const { return state_; }
  unsigned width() const { return width_; }

  // Advances one clock; returns the new state.
  std::uint64_t step();

 private:
  unsigned width_;
  std::uint64_t taps_;
  std::uint64_t mask_;
  std::uint64_t state_;
};

// MISR: each clock XORs a parallel input word into the shifted state.
// Output vectors wider than the register fold round-robin onto its inputs.
class Misr {
 public:
  Misr(unsigned width, std::uint64_t taps);
  static Misr standard(unsigned width = 32);

  void reset();
  // Absorbs one output vector (one test's response).
  void absorb(const BitVec& response);
  std::uint64_t signature() const { return state_; }

 private:
  unsigned width_;
  std::uint64_t taps_;
  std::uint64_t mask_;
  std::uint64_t state_;
};

}  // namespace sddict
