// 64-way bit-parallel two-valued logic simulation of a combinational
// netlist: one machine word per gate carries the value of up to 64 test
// patterns simultaneously.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"
#include "sim/testset.h"
#include "util/bitvec.h"

namespace sddict {

class BatchSimulator {
 public:
  // The netlist must be combinational (run full_scan first) and must
  // outlive the simulator.
  explicit BatchSimulator(const Netlist& nl);

  const Netlist& netlist() const { return *nl_; }

  // Simulates one batch; input_words has one word per primary input, bit t
  // of word i = value of input i in pattern t.
  void simulate(const std::vector<std::uint64_t>& input_words);

  std::uint64_t value(GateId g) const { return values_[g]; }
  const std::vector<std::uint64_t>& values() const { return values_; }

  // Output words in primary-output order.
  void output_words(std::vector<std::uint64_t>* out) const;

 private:
  const Netlist* nl_;
  std::vector<std::uint64_t> values_;
};

// Convenience: single-pattern good simulation; returns the output vector.
BitVec simulate_pattern(const Netlist& nl, const BitVec& input);

// Good output vectors for every test in the set (row j = z_ff,j).
std::vector<BitVec> good_responses(const Netlist& nl, const TestSet& tests);

}  // namespace sddict
