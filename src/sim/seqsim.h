// Cycle-accurate simulation of sequential (DFF) netlists. Used to validate
// the full-scan and time-frame-expansion transforms against the circuit's
// native behaviour, and by examples that model a non-scan tester.
#pragma once

#include <vector>

#include "netlist/netlist.h"
#include "util/bitvec.h"

namespace sddict {

class SequentialSimulator {
 public:
  // The netlist may contain DFFs (a combinational netlist simply has no
  // state). State starts all-zero; use set_state to override.
  explicit SequentialSimulator(const Netlist& nl);

  const Netlist& netlist() const { return *nl_; }

  std::size_t num_state_bits() const { return nl_->dffs().size(); }

  // Current state, one bit per DFF in declaration order.
  BitVec state() const;
  void set_state(const BitVec& state);
  void reset();  // all-zero state

  // Applies one input vector (primary inputs only): computes outputs for
  // the current cycle and advances the state. Returns the output vector.
  BitVec step(const BitVec& inputs);

  // Runs a whole sequence from the current state.
  std::vector<BitVec> run(const std::vector<BitVec>& inputs);

 private:
  const Netlist* nl_;
  std::vector<std::uint8_t> value_;  // per gate, current cycle
};

}  // namespace sddict
