#include "sim/misr.h"

#include <bit>
#include <stdexcept>

namespace sddict {
namespace {

std::uint64_t standard_taps(unsigned width) {
  // Primitive polynomials (tap masks) for a few practical widths.
  switch (width) {
    case 8: return 0xB8;                 // x^8+x^6+x^5+x^4+1
    case 16: return 0xB400;              // x^16+x^14+x^13+x^11+1
    case 24: return 0xE10000;            // x^24+x^23+x^22+x^17+1
    case 32: return 0x80200003;          // x^32+x^22+x^2+x+1
    default:
      throw std::invalid_argument("no standard polynomial for this width");
  }
}

}  // namespace

Lfsr::Lfsr(unsigned width, std::uint64_t taps, std::uint64_t seed)
    : width_(width), taps_(taps) {
  if (width == 0 || width > 64)
    throw std::invalid_argument("Lfsr: width must be in [1,64]");
  mask_ = width == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
  taps_ &= mask_;
  if (taps_ == 0) throw std::invalid_argument("Lfsr: empty tap mask");
  state_ = seed & mask_;
  if (state_ == 0) state_ = 1;  // all-zero is the LFSR's fixed point
}

Lfsr Lfsr::standard(unsigned width, std::uint64_t seed) {
  return Lfsr(width, standard_taps(width), seed);
}

std::uint64_t Lfsr::step() {
  const std::uint64_t fb =
      static_cast<std::uint64_t>(std::popcount(state_ & taps_) & 1);
  state_ = ((state_ << 1) | fb) & mask_;
  return state_;
}

Misr::Misr(unsigned width, std::uint64_t taps) : width_(width), taps_(taps) {
  if (width == 0 || width > 64)
    throw std::invalid_argument("Misr: width must be in [1,64]");
  mask_ = width == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
  taps_ &= mask_;
  if (taps_ == 0) throw std::invalid_argument("Misr: empty tap mask");
  state_ = 0;
}

Misr Misr::standard(unsigned width) { return Misr(width, standard_taps(width)); }

void Misr::reset() { state_ = 0; }

void Misr::absorb(const BitVec& response) {
  // Fold the response round-robin onto the register inputs.
  std::uint64_t in = 0;
  for (std::size_t o = 0; o < response.size(); ++o)
    if (response.get(o)) in ^= std::uint64_t{1} << (o % width_);
  const std::uint64_t fb =
      static_cast<std::uint64_t>(std::popcount(state_ & taps_) & 1);
  state_ = (((state_ << 1) | fb) ^ in) & mask_;
}

}  // namespace sddict
