#include "sim/testset.h"

#include <stdexcept>
#include <unordered_set>

#include "util/hash.h"

namespace sddict {

void TestSet::add(BitVec test) {
  if (test.size() != num_inputs_)
    throw std::invalid_argument("TestSet::add: wrong test width");
  tests_.push_back(std::move(test));
}

void TestSet::add_string(const std::string& bits) { add(BitVec::from_string(bits)); }

void TestSet::add_random(std::size_t count, Rng& rng) {
  for (std::size_t i = 0; i < count; ++i) {
    BitVec t(num_inputs_);
    for (auto& w : t.mutable_words()) w = rng.next();
    t.normalize_tail();
    tests_.push_back(std::move(t));
  }
}

void TestSet::append(const TestSet& other) {
  if (other.num_inputs_ != num_inputs_)
    throw std::invalid_argument("TestSet::append: input count mismatch");
  for (const auto& t : other.tests_) tests_.push_back(t);
}

TestSet TestSet::subset(const std::vector<std::size_t>& indices) const {
  TestSet out(num_inputs_);
  for (std::size_t i : indices) out.add(tests_.at(i));
  return out;
}

void TestSet::dedupe() {
  std::unordered_set<Hash128, Hash128Hasher> seen;
  std::vector<BitVec> kept;
  kept.reserve(tests_.size());
  for (auto& t : tests_)
    if (seen.insert(hash_bitvec(t)).second) kept.push_back(std::move(t));
  tests_ = std::move(kept);
}

void TestSet::pack_batch(std::size_t first, std::size_t count,
                         std::vector<std::uint64_t>* words) const {
  if (count > 64) throw std::invalid_argument("pack_batch: count > 64");
  words->assign(num_inputs_, 0);
  for (std::size_t t = 0; t < count; ++t) {
    const BitVec& test = tests_.at(first + t);
    for (std::size_t i = 0; i < num_inputs_; ++i)
      if (test.get(i)) (*words)[i] |= std::uint64_t{1} << t;
  }
}

}  // namespace sddict
