#include "sim/faultsim.h"

#include <bit>
#include <stdexcept>

namespace sddict {

FaultSimulator::FaultSimulator(const Netlist& nl) : good_(nl) {
  fval_.assign(nl.num_gates(), 0);
  touched_.assign(nl.num_gates(), false);
  queued_.assign(nl.num_gates(), false);
  level_queue_.resize(nl.depth() + 1);
}

void FaultSimulator::load_batch(const std::vector<std::uint64_t>& input_words,
                                std::size_t num_patterns) {
  if (num_patterns == 0 || num_patterns > 64)
    throw std::invalid_argument("load_batch: num_patterns must be in [1,64]");
  pattern_mask_ = num_patterns == 64 ? ~std::uint64_t{0}
                                     : (std::uint64_t{1} << num_patterns) - 1;
  good_.simulate(input_words);
}

bool FaultSimulator::inject(const StuckFault& f) {
  const Netlist& nl = netlist();
  const std::uint64_t cval = f.value ? ~std::uint64_t{0} : 0;
  if (f.is_output_fault()) {
    if (good_.value(f.gate) == cval) return false;
    fval_[f.gate] = cval;
    touched_[f.gate] = true;
    touched_list_.push_back(f.gate);
    return true;
  }
  // Pin fault: re-evaluate the site gate with one fanin forced.
  const Gate& gate = nl.gate(f.gate);
  const std::size_t arity = gate.fanin.size();
  std::uint64_t buf[64];
  std::vector<std::uint64_t> big;
  const std::uint64_t* in = buf;
  if (arity <= 64) {
    for (std::size_t p = 0; p < arity; ++p) buf[p] = good_.value(gate.fanin[p]);
    buf[static_cast<std::size_t>(f.pin)] = cval;
  } else {
    big.resize(arity);
    for (std::size_t p = 0; p < arity; ++p) big[p] = good_.value(gate.fanin[p]);
    big[static_cast<std::size_t>(f.pin)] = cval;
    in = big.data();
  }
  const std::uint64_t v = eval_gate_words(gate.type, in, arity);
  if (v == good_.value(f.gate)) return false;
  fval_[f.gate] = v;
  touched_[f.gate] = true;
  touched_list_.push_back(f.gate);
  return true;
}

void FaultSimulator::schedule_fanouts(GateId g) {
  const Netlist& nl = netlist();
  for (GateId s : nl.gate(g).fanout) {
    if (queued_[s]) continue;
    queued_[s] = true;
    level_queue_[nl.levels()[s]].push_back(s);
  }
}

std::uint64_t FaultSimulator::propagate(const DiffSink* sink) {
  const Netlist& nl = netlist();
  const GateId site = touched_list_.front();
  schedule_fanouts(site);

  std::uint64_t buf[64];
  std::vector<std::uint64_t> big;
  const std::size_t site_level = nl.levels()[site];
  for (std::size_t lvl = site_level; lvl < level_queue_.size(); ++lvl) {
    auto& bucket = level_queue_[lvl];
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const GateId g = bucket[i];
      queued_[g] = false;
      const Gate& gate = nl.gate(g);
      const std::size_t arity = gate.fanin.size();
      const std::uint64_t* in = buf;
      if (arity <= 64) {
        for (std::size_t p = 0; p < arity; ++p) buf[p] = faulty_value(gate.fanin[p]);
      } else {
        big.resize(arity);
        for (std::size_t p = 0; p < arity; ++p) big[p] = faulty_value(gate.fanin[p]);
        in = big.data();
      }
      const std::uint64_t v = eval_gate_words(gate.type, in, arity);
      if (v == faulty_value(g)) continue;
      if (!touched_[g]) {
        touched_[g] = true;
        touched_list_.push_back(g);
      }
      fval_[g] = v;
      schedule_fanouts(g);
    }
    bucket.clear();
  }

  // Collect output differences over the touched set.
  std::uint64_t any_diff = 0;
  for (GateId g : touched_list_) {
    if (!nl.is_output(g)) continue;
    const std::uint64_t diff = (fval_[g] ^ good_.value(g)) & pattern_mask_;
    if (diff == 0) continue;
    any_diff |= diff;
    if (sink != nullptr) (*sink)(static_cast<std::size_t>(nl.output_index(g)), diff);
  }
  return any_diff;
}

void FaultSimulator::reset_touched() {
  for (GateId g : touched_list_) touched_[g] = false;
  touched_list_.clear();
}

std::uint64_t FaultSimulator::simulate_fault(const StuckFault& f,
                                             const DiffSink& sink) {
  if (!inject(f)) return 0;
  const std::uint64_t d = propagate(&sink);
  reset_touched();
  return d;
}

std::uint64_t FaultSimulator::detect_word(const StuckFault& f) {
  if (!inject(f)) return 0;
  const std::uint64_t d = propagate(nullptr);
  reset_touched();
  return d;
}

void FaultSimulator::simulate_fault_full(
    const StuckFault& f, std::vector<std::uint64_t>* faulty_values) {
  *faulty_values = good_.values();
  if (!inject(f)) return;
  propagate(nullptr);
  for (GateId g : touched_list_) (*faulty_values)[g] = fval_[g];
  reset_touched();
}

std::vector<std::uint32_t> count_detections(const Netlist& nl,
                                            const FaultList& faults,
                                            const TestSet& tests) {
  std::vector<std::uint32_t> counts(faults.size(), 0);
  FaultSimulator fsim(nl);
  std::vector<std::uint64_t> input_words;
  for (std::size_t first = 0; first < tests.size(); first += 64) {
    const std::size_t count = std::min<std::size_t>(64, tests.size() - first);
    tests.pack_batch(first, count, &input_words);
    fsim.load_batch(input_words, count);
    for (FaultId i = 0; i < faults.size(); ++i) {
      const std::uint64_t w = fsim.detect_word(faults[i]);
      counts[i] += static_cast<std::uint32_t>(std::popcount(w));
    }
  }
  return counts;
}

}  // namespace sddict
