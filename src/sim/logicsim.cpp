#include "sim/logicsim.h"

#include <stdexcept>

namespace sddict {

BatchSimulator::BatchSimulator(const Netlist& nl) : nl_(&nl) {
  if (nl.has_dffs())
    throw std::runtime_error("BatchSimulator: run full_scan first");
  values_.assign(nl.num_gates(), 0);
  nl.topo_order();  // precompute; also raises on cycles
}

void BatchSimulator::simulate(const std::vector<std::uint64_t>& input_words) {
  if (input_words.size() != nl_->num_inputs())
    throw std::invalid_argument("BatchSimulator: wrong input word count");
  for (std::size_t i = 0; i < input_words.size(); ++i)
    values_[nl_->inputs()[i]] = input_words[i];

  std::uint64_t fanin_buf[64];
  std::vector<std::uint64_t> fanin_big;
  for (GateId g : nl_->topo_order()) {
    const Gate& gate = nl_->gate(g);
    if (gate.type == GateType::kInput) continue;
    const std::size_t arity = gate.fanin.size();
    const std::uint64_t* in = fanin_buf;
    if (arity <= 64) {
      for (std::size_t p = 0; p < arity; ++p) fanin_buf[p] = values_[gate.fanin[p]];
    } else {
      fanin_big.resize(arity);
      for (std::size_t p = 0; p < arity; ++p) fanin_big[p] = values_[gate.fanin[p]];
      in = fanin_big.data();
    }
    values_[g] = eval_gate_words(gate.type, in, arity);
  }
}

void BatchSimulator::output_words(std::vector<std::uint64_t>* out) const {
  out->resize(nl_->num_outputs());
  for (std::size_t o = 0; o < nl_->num_outputs(); ++o)
    (*out)[o] = values_[nl_->outputs()[o]];
}

BitVec simulate_pattern(const Netlist& nl, const BitVec& input) {
  if (input.size() != nl.num_inputs())
    throw std::invalid_argument("simulate_pattern: wrong input width");
  BatchSimulator sim(nl);
  std::vector<std::uint64_t> words(nl.num_inputs());
  for (std::size_t i = 0; i < words.size(); ++i) words[i] = input.get(i) ? 1 : 0;
  sim.simulate(words);
  BitVec out(nl.num_outputs());
  for (std::size_t o = 0; o < nl.num_outputs(); ++o)
    out.set(o, (sim.value(nl.outputs()[o]) & 1) != 0);
  return out;
}

std::vector<BitVec> good_responses(const Netlist& nl, const TestSet& tests) {
  std::vector<BitVec> out(tests.size(), BitVec(nl.num_outputs()));
  BatchSimulator sim(nl);
  std::vector<std::uint64_t> input_words;
  for (std::size_t first = 0; first < tests.size(); first += 64) {
    const std::size_t count = std::min<std::size_t>(64, tests.size() - first);
    tests.pack_batch(first, count, &input_words);
    sim.simulate(input_words);
    for (std::size_t o = 0; o < nl.num_outputs(); ++o) {
      const std::uint64_t w = sim.value(nl.outputs()[o]);
      for (std::size_t t = 0; t < count; ++t)
        out[first + t].set(o, (w >> t) & 1);
    }
  }
  return out;
}

}  // namespace sddict
