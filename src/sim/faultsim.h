// Parallel-pattern single-fault-propagation (PPSFP) fault simulation.
// A batch of up to 64 patterns is good-simulated once; each fault is then
// injected and only its fanout cone is event-driven re-simulated, producing
// for every primary output the 64-bit word of patterns on which the faulty
// value differs from the good value.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fault/faultlist.h"
#include "netlist/netlist.h"
#include "sim/logicsim.h"

namespace sddict {

class FaultSimulator {
 public:
  explicit FaultSimulator(const Netlist& nl);

  const Netlist& netlist() const { return good_.netlist(); }

  // Good-simulates a batch (words as in BatchSimulator::simulate).
  // `num_patterns` is how many of the 64 slots carry real tests; difference
  // words are masked so unused slots never report detections.
  void load_batch(const std::vector<std::uint64_t>& input_words,
                  std::size_t num_patterns = 64);

  // Output difference callback: (output_index, diff_word). Called only for
  // outputs with a nonzero difference word under the currently loaded batch.
  using DiffSink = std::function<void(std::size_t, std::uint64_t)>;

  // Simulates one fault against the loaded batch. Returns the OR of all
  // output difference words (nonzero iff the fault is detected by some
  // pattern in the batch).
  std::uint64_t simulate_fault(const StuckFault& f, const DiffSink& sink);

  // Detection word only (no per-output callback).
  std::uint64_t detect_word(const StuckFault& f);

  // Full faulty value of every gate under the loaded batch (word per gate,
  // bit t = pattern t), e.g. for internal-net probing. Costs one O(gates)
  // copy on top of the event-driven simulation.
  void simulate_fault_full(const StuckFault& f,
                           std::vector<std::uint64_t>* faulty_values);

  // Good value of a gate under the loaded batch.
  std::uint64_t good_value(GateId g) const { return good_.value(g); }

 private:
  std::uint64_t faulty_value(GateId g) const {
    return touched_[g] ? fval_[g] : good_.value(g);
  }
  // Sets the faulty value of the fault site and seeds propagation. Returns
  // false when the fault has no effect under this batch.
  bool inject(const StuckFault& f);
  void schedule_fanouts(GateId g);
  std::uint64_t propagate(const DiffSink* sink);
  void reset_touched();

  BatchSimulator good_;
  std::uint64_t pattern_mask_ = ~std::uint64_t{0};
  std::vector<std::uint64_t> fval_;
  std::vector<bool> touched_;
  std::vector<GateId> touched_list_;
  // Event queue bucketed by logic level.
  std::vector<std::vector<GateId>> level_queue_;
  std::vector<bool> queued_;
};

// Detection counts per fault over a whole test set (how many tests detect
// each fault) — the accounting n-detection test generation needs.
std::vector<std::uint32_t> count_detections(const Netlist& nl,
                                            const FaultList& faults,
                                            const TestSet& tests);

}  // namespace sddict
