// The response matrix is the central artifact the dictionary layer is built
// from: for every fault f_i and test t_j it records *which* output vector
// the faulty circuit produced, as a small per-test integer id.
//
//   id 0          == the fault-free response z_ff,j
//   id r (r > 0)  == the r-th distinct faulty response observed under t_j
//
// Equality of output vectors is decided through 128-bit signatures: the
// signature of a response is the XOR of per-output tokens over the outputs
// that differ from the fault-free value. Distinct difference sets collide
// with probability ~2^-128, negligible at any realistic circuit size.
// Optionally the sparse difference lists themselves are retained, which
// lets callers reconstruct full output vectors (used by diagnosis examples).
#pragma once

#include <cstdint>
#include <vector>

#include "fault/faultlist.h"
#include "netlist/netlist.h"
#include "sim/testset.h"
#include "util/budget.h"
#include "util/hash.h"

namespace sddict {

using ResponseId = std::uint32_t;

// Data-quality qualifier of one per-test tester observation. Real datalogs
// are imperfect: a record can be lost (kMissing) or the tester can read an
// inconsistent value across retries (kUnstable). Qualified tests are
// don't-cares for the diagnosis engine (diag/engine.h) — excluded from
// mismatch counting — instead of silently mismatching every fault.
enum class ObservedStatus : std::uint8_t { kValue = 0, kMissing, kUnstable };

const char* observed_status_name(ObservedStatus s);

struct Observed {
  ResponseId value = 0;  // meaningful only when status == kValue
  ObservedStatus status = ObservedStatus::kValue;

  bool dont_care() const { return status != ObservedStatus::kValue; }

  static Observed of(ResponseId v) { return {v, ObservedStatus::kValue}; }
  static Observed missing() { return {0, ObservedStatus::kMissing}; }
  static Observed unstable() { return {0, ObservedStatus::kUnstable}; }

  bool operator==(const Observed&) const = default;
};

// Lifts a plain per-test id vector into fully-observed qualified form.
std::vector<Observed> qualify(const std::vector<ResponseId>& observed);

struct ResponseMatrixOptions {
  // Keep, for every (test, response id), the sorted list of outputs whose
  // value differs from fault-free. Costs memory; off for large sweeps.
  bool store_diff_outputs = false;
  // Worker threads for fault simulation; 0 = hardware concurrency. The
  // resulting matrix is bit-identical at every thread count: the fault list
  // is partitioned into contiguous chunks, each simulated by its own
  // FaultSimulator into chunk-local response ids, and a deterministic merge
  // re-interns signatures in ascending first-detecting-fault order — the
  // same order the single-threaded construction produces.
  std::size_t num_threads = 0;
  // Wall-clock / cancellation budget for the simulation. Anytime: on
  // expiry each chunk stops at a pattern-batch boundary, the (fault, test)
  // entries never reached keep response id 0 (undetected), and the status
  // out-param reports completed == false. The partial matrix is structurally
  // valid (id 0 is still the fault-free response of every test) but is NOT
  // guaranteed bit-identical across thread counts — only completed runs are.
  RunBudget budget{};
};

// Completion report of build_response_matrix (pass to receive it).
struct ResponseMatrixStatus {
  bool completed = true;
  StopReason stop_reason = StopReason::kCompleted;
  // Fault rows simulated against every pattern; rows of chunks that were
  // interrupted mid-way are not counted even where partially filled.
  std::size_t faults_simulated = 0;
};

class ResponseMatrix {
 public:
  std::size_t num_faults() const { return num_faults_; }
  std::size_t num_tests() const { return num_tests_; }
  std::size_t num_outputs() const { return num_outputs_; }

  ResponseId response(FaultId fault, std::size_t test) const {
    return resp_[static_cast<std::size_t>(fault) * num_tests_ + test];
  }

  bool detected(FaultId fault, std::size_t test) const {
    return response(fault, test) != 0;
  }

  // Number of distinct responses under this test, fault-free included
  // (|Z_j| in the paper, except that responses no fault produces are not
  // enumerated — they can never distinguish anything).
  std::size_t num_distinct(std::size_t test) const {
    return signatures_[test].size();
  }

  const Hash128& signature(std::size_t test, ResponseId id) const {
    return signatures_[test][id];
  }

  // Id of the response with the given signature under `test`, or
  // static_cast<ResponseId>(-1) when no modeled fault produces it.
  ResponseId find_response(std::size_t test, const Hash128& sig) const;

  // Id of the fault-free response under `test` (the empty difference
  // signature). Matrices built by build_response_matrix or
  // response_matrix_from_table always intern it as id 0 (asserted at build
  // time); response_matrix_from_ids may place it anywhere, so callers that
  // need "the pass/fail baseline" must resolve it through here rather than
  // assuming 0.
  ResponseId fault_free_id(std::size_t test) const {
    return find_response(test, Hash128{});
  }

  // How many faults produce each response id under `test`; index 0 counts
  // faults the test does not detect.
  std::vector<std::uint32_t> response_counts(std::size_t test) const;

  // Tests that detect the fault.
  std::uint32_t detection_count(FaultId fault) const;

  // Sorted outputs differing from fault-free for (test, id); requires
  // store_diff_outputs. id 0 yields an empty list.
  const std::vector<std::uint32_t>& diff_outputs(std::size_t test,
                                                 ResponseId id) const;

  bool has_diff_outputs() const { return has_diffs_; }

 private:
  friend ResponseMatrix build_response_matrix(const Netlist&, const FaultList&,
                                              const TestSet&,
                                              const ResponseMatrixOptions&,
                                              ResponseMatrixStatus*);
  friend ResponseMatrix response_matrix_from_table(
      const std::vector<BitVec>&, const std::vector<std::vector<BitVec>>&);
  friend ResponseMatrix response_matrix_from_ids(
      std::vector<ResponseId>, std::vector<std::vector<Hash128>>, std::size_t,
      std::size_t, std::size_t);

  std::size_t num_faults_ = 0;
  std::size_t num_tests_ = 0;
  std::size_t num_outputs_ = 0;
  bool has_diffs_ = false;
  std::vector<ResponseId> resp_;                   // fault-major [n][k]
  std::vector<std::vector<Hash128>> signatures_;   // [test][id]
  std::vector<std::vector<std::vector<std::uint32_t>>> diffs_;  // [test][id]
};

ResponseMatrix build_response_matrix(const Netlist& nl, const FaultList& faults,
                                     const TestSet& tests,
                                     const ResponseMatrixOptions& options = {},
                                     ResponseMatrixStatus* status = nullptr);

// Builds a matrix directly from explicit output vectors: fault_free[j] is
// z_ff,j and faulty[i][j] is z_i,j. Used when responses come from an
// external source (e.g. the paper's worked example) rather than from fault
// simulation. Difference lists are always stored.
ResponseMatrix response_matrix_from_table(
    const std::vector<BitVec>& fault_free,
    const std::vector<std::vector<BitVec>>& faulty);

// Builds a matrix from an explicit id table plus per-test signature lists:
// resp is fault-major [num_faults][num_tests], signatures[j][id] the
// difference signature of response id under test j. Unlike the other
// builders this does NOT require the fault-free response to be id 0 — every
// test must still have exactly one empty signature (validated), which
// fault_free_id() resolves. Used for external/deserialized id tables and to
// exercise id-permutation robustness in tests. Difference lists are not
// stored. Caveat: detected() keeps its id-0 convention, so on a matrix with
// a permuted fault-free id only consumers that resolve through
// fault_free_id() (e.g. run_procedure1) interpret it correctly.
ResponseMatrix response_matrix_from_ids(
    std::vector<ResponseId> resp, std::vector<std::vector<Hash128>> signatures,
    std::size_t num_faults, std::size_t num_tests, std::size_t num_outputs);

}  // namespace sddict
