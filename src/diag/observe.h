// Tester-side observation: simulate a "defective chip" (the circuit with an
// arbitrary set of injected stuck lines — possibly a multiple fault outside
// the single-fault model) over a test set and express what the tester sees
// as per-test response ids in the vocabulary of a ResponseMatrix.
#pragma once

#include <vector>

#include "netlist/transform.h"
#include "sim/response.h"
#include "sim/testset.h"

namespace sddict {

// Per-test observed response ids. Responses produced by the defect that no
// modeled single fault produces map to kUnknownResponse (see full_dict.h).
std::vector<ResponseId> observe_defect(const Netlist& nl, const TestSet& tests,
                                       const ResponseMatrix& rm,
                                       const std::vector<Injection>& defect);

// Raw observed output vectors of the defective chip, one per test.
std::vector<BitVec> defect_responses(const Netlist& nl, const TestSet& tests,
                                     const std::vector<Injection>& defect);

// Same observation flow for an arbitrary defective netlist (e.g. a bridged
// circuit from inject_bridge): the defective netlist must share the good
// netlist's input count/order and output count/order.
std::vector<ResponseId> observe_defective_netlist(const Netlist& good_nl,
                                                  const Netlist& bad_nl,
                                                  const TestSet& tests,
                                                  const ResponseMatrix& rm);

}  // namespace sddict
