#include "diag/engine.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <queue>
#include <stdexcept>
#include <utility>

#include "store/kernels.h"
#include "store/signature_store.h"
#include "util/bitvec.h"
#include "util/threadpool.h"

namespace sddict {

const char* diagnosis_outcome_name(DiagnosisOutcome o) {
  switch (o) {
    case DiagnosisOutcome::kExactMatch: return "exact-match";
    case DiagnosisOutcome::kTolerantMatch: return "tolerant-match";
    case DiagnosisOutcome::kPassFailProjection: return "pass/fail-projection";
    case DiagnosisOutcome::kUnmodeledDefect: return "unmodeled-defect";
  }
  return "?";
}

std::size_t true_fault_rank(const std::vector<DiagnosisMatch>& matches,
                            FaultId fault) {
  for (std::size_t i = 0; i < matches.size(); ++i)
    if (matches[i].fault == fault) return i + 1;
  return 0;
}

namespace {

// Faults scored between budget polls in the ranking loops.
constexpr FaultId kPollStride = 256;

// "No pruning bound" sentinel handed to the bounded scorers; the bounded
// kernels short-circuit on it (store/kernels.h).
constexpr std::uint32_t kNoLimit = ~std::uint32_t{0};

// Running k-th-best tracker for the pruning bound: a max-heap of the k
// smallest exact mismatch counts seen so far. kth() stays kNoLimit until k
// rows have been fully counted — any k counts give a valid (if loose)
// upper bound on the final k-th best, which is all the pruning proof
// needs.
class TopKBound {
 public:
  explicit TopKBound(std::size_t k) : k_(k) {}
  void add(std::uint32_t m) {
    if (heap_.size() < k_) {
      heap_.push(m);
    } else if (m < heap_.top()) {
      heap_.pop();
      heap_.push(m);
    }
  }
  std::uint32_t kth() const {
    return heap_.size() == k_ ? heap_.top() : kNoLimit;
  }

 private:
  std::size_t k_;
  std::priority_queue<std::uint32_t> heap_;
};

// Tri-state pass/fail projection: 1 fail, 0 pass, -1 not derivable (for a
// row bit) or don't-care (for an observation).
struct PfProjection {
  std::vector<std::int8_t> obs;                  // per test
  std::function<int(FaultId, std::size_t)> bit;  // per (fault, test)
  std::size_t comparable_tests = 0;              // tests with obs[t] >= 0
};

// Everything the staged chain needs to know about the observation before
// any fault is scored.
struct ObservationSummary {
  std::size_t num_faults = 0;
  std::size_t effective_tests = 0;
  std::size_t dont_care_tests = 0;
  std::size_t unknown_tests = 0;
};

// Shared first pass over the qualified observation: counts the qualifier
// classes and computes the pass/fail projection of the observation.
// `ff_ids`, when given, holds the per-test fault-free response id; without
// it the fault-free response is id 0 (the precondition documented on the
// matrix-less entry points). kUnknownResponse never equals the fault-free
// id, so an unknown response still carries its one honest bit: the test
// failed.
std::vector<std::int8_t> project_observation(
    const std::vector<Observed>& observed, ObservationSummary* sum,
    const std::vector<ResponseId>* ff_ids = nullptr) {
  std::vector<std::int8_t> pf(observed.size(), -1);
  for (std::size_t t = 0; t < observed.size(); ++t) {
    const Observed& o = observed[t];
    if (o.dont_care()) {
      ++sum->dont_care_tests;
      continue;
    }
    if (o.value == kUnknownResponse) ++sum->unknown_tests;
    const ResponseId ff = ff_ids ? (*ff_ids)[t] : 0;
    pf[t] = o.value == ff ? 0 : 1;
  }
  sum->effective_tests = observed.size() - sum->dont_care_tests;
  return pf;
}

struct StageRank {
  std::vector<DiagnosisMatch> matches;  // sorted best-first, truncated
  std::uint32_t best = 0;
  std::uint32_t margin = 0;
  bool complete = true;
};

// Scores every fault (budget permitting), sorts, and truncates to
// max(max_results, faults within tolerance) — the tolerance-e guarantee.
//
// `mism(f, limit)` follows the bounded-kernel contract (store/kernels.h):
// the returned count is exact when <= limit, and any value > limit only
// promises the true count is also > limit. With opt.prune the sweep hands
// each row the bound max(k-th best so far, tolerance), k =
// max(max_results, 2), and drops rows whose count provably exceeds it.
// Every dropped row's final count is strictly greater than that of every
// row the truncation below can keep (the k-th best only tightens, and keep
// <= max(k, faults within tolerance)), and with k >= 2 the runner-up
// stays exact — so order, counts, margin and the tolerance-e guarantee
// are bit-identical to the unpruned sweep, including on budget-stopped
// prefixes.
//
// `tiebreak` (optional) orders faults whose mismatch counts tie before the
// fault-id fallback; it never reorders differently-scored candidates, so
// reported mismatch counts are unaffected.
template <typename MismFn>
StageRank rank_stage(std::size_t num_faults, std::size_t effective,
                     const EngineOptions& opt, BudgetScope& scope,
                     MismFn&& mism,
                     const std::function<std::uint32_t(FaultId)>& tiebreak =
                         nullptr) {
  StageRank r;
  const auto eff32 = static_cast<std::uint32_t>(effective);
  const std::size_t k = std::max<std::size_t>(opt.max_results, 2);
  std::vector<DiagnosisMatch> all;

  const bool sharded = opt.pool != nullptr && opt.pool->num_threads() > 1 &&
                       num_faults >= opt.shard_min_faults;
  if (sharded) {
    // Index-addressed slots, so shard timing cannot reorder anything: slot
    // f holds fault f's exact count, or kNoLimit for a pruned (or, after a
    // budget stop, unreached) row. Shards prune against the minimum of
    // their local k-th best and a shared published bound; every published
    // value is a valid bound, so the relaxed min-CAS can lose races
    // without affecting what is returned — only how much gets pruned.
    std::vector<std::uint32_t> counts(num_faults, kNoLimit);
    std::atomic<std::uint32_t> shared_kth{kNoLimit};
    std::atomic<bool> stopped{false};
    const std::size_t chunks = opt.pool->num_threads() * 4;
    opt.pool->parallel_for_chunks(
        0, num_faults, chunks, [&](std::size_t begin, std::size_t end) {
          TopKBound local(k);
          for (std::size_t i = begin; i < end; ++i) {
            if ((i - begin) % kPollStride == 0 && scope.stop()) {
              stopped.store(true, std::memory_order_relaxed);
              return;
            }
            std::uint32_t limit = kNoLimit;
            if (opt.prune) {
              const std::uint32_t kth = std::min(
                  local.kth(), shared_kth.load(std::memory_order_relaxed));
              if (kth != kNoLimit) limit = std::max(kth, opt.tolerance);
            }
            const std::uint32_t m = mism(static_cast<FaultId>(i), limit);
            if (m > limit) continue;  // provably outside top-k and tolerance
            counts[i] = m;
            if (opt.prune) {
              local.add(m);
              const std::uint32_t lk = local.kth();
              std::uint32_t cur = shared_kth.load(std::memory_order_relaxed);
              while (lk < cur && !shared_kth.compare_exchange_weak(
                                     cur, lk, std::memory_order_relaxed)) {
              }
            }
          }
        });
    r.complete = !stopped.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < num_faults; ++i)
      if (counts[i] != kNoLimit)
        all.push_back({static_cast<FaultId>(i), counts[i], 0, eff32});
  } else {
    all.reserve(opt.prune ? std::min<std::size_t>(num_faults, 1024)
                          : num_faults);
    TopKBound best(k);
    for (FaultId f = 0; f < num_faults; ++f) {
      if (f % kPollStride == 0 && scope.stop()) {
        r.complete = false;
        break;
      }
      std::uint32_t limit = kNoLimit;
      if (opt.prune && best.kth() != kNoLimit)
        limit = std::max(best.kth(), opt.tolerance);
      const std::uint32_t m = mism(f, limit);
      if (m > limit) continue;
      all.push_back({f, m, 0, eff32});
      if (opt.prune) best.add(m);
    }
  }
  if (tiebreak) {
    // Keyed by fault id (not position), so the comparator stays correct if
    // the candidate list is ever filtered or reordered before the sort.
    std::vector<std::uint32_t> sec(num_faults, 0);
    for (const DiagnosisMatch& m : all) sec[m.fault] = tiebreak(m.fault);
    std::sort(all.begin(), all.end(),
              [&sec](const DiagnosisMatch& a, const DiagnosisMatch& b) {
                if (a.mismatches != b.mismatches)
                  return a.mismatches < b.mismatches;
                if (sec[a.fault] != sec[b.fault])
                  return sec[a.fault] < sec[b.fault];
                return a.fault < b.fault;
              });
  } else {
    // Capture the size before the call: with the move inside the argument
    // list, an implementation is free to construct the by-value parameter
    // first, leaving all.size() == 0.
    const std::size_t n = all.size();
    all = rank_matches(std::move(all), n);
  }
  if (!all.empty()) {
    r.best = all.front().mismatches;
    if (all.size() >= 2) r.margin = all[1].mismatches - r.best;
    std::size_t within = 0;
    while (within < all.size() && all[within].mismatches <= opt.tolerance)
      ++within;
    const std::size_t keep = std::max(opt.max_results, within);
    if (all.size() > keep) all.resize(keep);
    all.front().margin = r.margin;
  }
  r.matches = std::move(all);
  return r;
}

// Bounded scorer shared by run_chain's stages: exact when the result is
// <= limit, early-exits otherwise (the bounded-kernel contract).
using BoundedScorer = std::function<std::uint32_t(FaultId, std::uint32_t)>;

// The staged fallback chain shared by all dictionary types.
EngineDiagnosis run_chain(const ObservationSummary& sum,
                          const BoundedScorer& native, const PfProjection& pf,
                          const EngineOptions& opt) {
  BudgetScope scope(opt.budget);
  EngineDiagnosis out;
  out.dont_care_tests = sum.dont_care_tests;
  out.unknown_tests = sum.unknown_tests;
  out.effective_tests = sum.effective_tests;

  // Pass/fail-projection mismatch count of one fault, reused by the
  // native-stage tiebreak and by stage 3.
  const auto proj_mism_bounded = [&pf](FaultId f, std::uint32_t limit) {
    std::uint32_t mism = 0;
    for (std::size_t t = 0; t < pf.obs.size(); ++t) {
      const int o = pf.obs[t];
      if (o < 0) continue;
      const int b = pf.bit(f, t);
      if (b >= 0 && b != o && ++mism > limit) return mism;
    }
    return mism;
  };
  const auto proj_mism = [&proj_mism_bounded](FaultId f) {
    return proj_mism_bounded(f, kNoLimit);
  };

  // Stages 1+2: exact / tolerant nearest match in the dictionary's native
  // space. An observation containing unmodeled responses can never produce
  // a confident native verdict, no matter how well the bits happen to line
  // up — it falls through to the projection stages.
  //
  // When the observation is visibly degraded (dropped/unstable records or
  // unmodeled responses), native ties are broken by pass/fail-projection
  // agreement: the projection is a coarser view, but its bits fail
  // independently of the native bits, so consulting it separates candidates
  // the noisy native signature can no longer tell apart. A clean
  // observation skips this and reproduces the dictionary's classical
  // ranking exactly.
  const bool degraded = sum.dont_care_tests > 0 || sum.unknown_tests > 0;
  StageRank nat = rank_stage(sum.num_faults, sum.effective_tests, opt, scope,
                             native,
                             degraded ? std::function<std::uint32_t(FaultId)>(
                                            proj_mism)
                                      : nullptr);
  if (!nat.matches.empty() && sum.unknown_tests == 0 &&
      nat.best <= opt.tolerance) {
    out.outcome = nat.best == 0 ? DiagnosisOutcome::kExactMatch
                                : DiagnosisOutcome::kTolerantMatch;
    out.matches = std::move(nat.matches);
    out.best_mismatches = nat.best;
    out.margin = nat.margin;
    out.completed = nat.complete;
    out.stop_reason = nat.complete ? StopReason::kCompleted : scope.reason();
    return out;
  }

  // Stage 3: pass/fail projection — compare only the tests where both the
  // observation and the dictionary row project onto pass/fail.
  StageRank proj = rank_stage(sum.num_faults, pf.comparable_tests, opt, scope,
                              proj_mism_bounded);
  out.completed = nat.complete && proj.complete;
  out.stop_reason = out.completed ? StopReason::kCompleted : scope.reason();

  if (proj.matches.empty() && !nat.matches.empty()) {
    // Budget expired before the projection scored anything; the native
    // best-so-far prefix is the strongest remaining evidence.
    out.outcome = DiagnosisOutcome::kUnmodeledDefect;
    out.matches = std::move(nat.matches);
    out.best_mismatches = nat.best;
    out.margin = nat.margin;
    return out;
  }

  out.matches = std::move(proj.matches);
  out.best_mismatches = proj.best;
  out.margin = proj.margin;
  out.effective_tests = pf.comparable_tests;
  if (!out.matches.empty() && proj.best <= opt.tolerance) {
    out.outcome = DiagnosisOutcome::kPassFailProjection;
    return out;
  }

  // Stage 4: unmodeled defect. Build a best-effort multiple-fault cover of
  // the observed failing tests (greedy set cover over detection sets).
  // Detector lists and per-fault gains are built once and maintained
  // incrementally as tests get covered, so each pick costs one max-scan
  // plus the decrements its newly covered tests induce instead of an
  // O(faults x failing) recount. Selection is unchanged from the
  // recounting version — highest gain, lowest fault id among ties — so
  // the covers are identical.
  out.outcome = DiagnosisOutcome::kUnmodeledDefect;
  std::vector<std::size_t> failing;
  for (std::size_t t = 0; t < pf.obs.size(); ++t)
    if (pf.obs[t] == 1) failing.push_back(t);
  std::vector<std::vector<FaultId>> detectors(failing.size());
  std::vector<std::size_t> gain(sum.num_faults, 0);
  for (FaultId f = 0; f < sum.num_faults; ++f)
    for (std::size_t i = 0; i < failing.size(); ++i)
      if (pf.bit(f, failing[i]) == 1) {
        detectors[i].push_back(f);
        ++gain[f];
      }
  std::vector<bool> covered(failing.size(), false);
  std::size_t uncovered = failing.size();
  while (uncovered > 0 && out.cover.size() < opt.max_cover) {
    if (scope.stop()) {
      out.completed = false;
      out.stop_reason = scope.reason();
      break;
    }
    FaultId best_f = kNoFault;
    std::size_t best_gain = 0;
    for (FaultId f = 0; f < sum.num_faults; ++f)
      if (gain[f] > best_gain) {
        best_gain = gain[f];
        best_f = f;
      }
    if (best_gain == 0) break;
    out.cover.push_back(best_f);
    for (std::size_t i = 0; i < failing.size(); ++i)
      if (!covered[i] && pf.bit(best_f, failing[i]) == 1) {
        covered[i] = true;
        --uncovered;
        for (FaultId f : detectors[i]) --gain[f];
      }
  }
  out.uncovered_failures = uncovered;
  return out;
}

// --- Per-kind implementations, shared by the dictionary and the packed
// SignatureStore entry points. Each is templated over the row accessors
// (BitVec rows and mmap'd store rows expose the same word layout), so the
// dictionary overload and the store overload of a kind run literally the
// same code — the basis of the serving layer's equivalence guarantee. The
// native mismatch loops go through the word-parallel kernels
// (store/kernels.h) instead of per-bit loops.

// RowWordsFn: FaultId -> const uint64_t* (num_tests bits, BitVec layout,
// zero tail).
template <typename RowWordsFn>
EngineDiagnosis diagnose_passfail_impl(std::size_t num_faults,
                                       std::size_t num_tests,
                                       const RowWordsFn& row_words,
                                       const std::vector<Observed>& observed,
                                       const EngineOptions& options,
                                       const char* what) {
  check_observation_size(what, num_tests, observed.size());
  ObservationSummary sum;
  sum.num_faults = num_faults;
  PfProjection pf;
  pf.obs = project_observation(observed, &sum);
  pf.comparable_tests = sum.effective_tests;
  pf.bit = [&row_words](FaultId f, std::size_t t) {
    return kernels::bit_at(row_words(f), t) ? 1 : 0;
  };

  BitVec bits(num_tests);
  BitVec care(num_tests);
  for (std::size_t t = 0; t < observed.size(); ++t) {
    if (observed[t].dont_care()) continue;
    care.set(t, true);
    bits.set(t, observed[t].value != 0);  // id 0 == fault-free == pass
  }
  const std::uint64_t* ow = bits.words().data();
  const std::uint64_t* cw = care.words().data();
  const std::size_t nw = bits.words().size();
  // Hoisted: one dispatch() guard per query, not per row.
  const kernels::KernelTable& kt = kernels::dispatch();
  return run_chain(
      sum,
      [&](FaultId f, std::uint32_t limit) {
        return kernels::masked_hamming_bounded(kt, row_words(f), ow, cw, nw,
                                               limit);
      },
      pf, options);
}

// BaselineFn: test -> baseline response id.
template <typename RowWordsFn, typename BaselineFn>
EngineDiagnosis diagnose_samediff_impl(std::size_t num_faults,
                                       std::size_t num_tests,
                                       const RowWordsFn& row_words,
                                       const BaselineFn& baseline,
                                       const std::vector<Observed>& observed,
                                       const EngineOptions& options,
                                       const char* what) {
  check_observation_size(what, num_tests, observed.size());
  ObservationSummary sum;
  sum.num_faults = num_faults;
  PfProjection pf;
  pf.obs = project_observation(observed, &sum);
  pf.comparable_tests = sum.effective_tests;
  pf.bit = [&row_words, &baseline](FaultId f, std::size_t t) {
    // Baseline id 0 is the fault-free response: the bit IS the pass/fail
    // bit. Against a non-fault-free baseline, bit 0 (matches the baseline)
    // implies "differs from fault-free" — a fail — while bit 1 says
    // nothing about pass/fail.
    if (baseline(t) == 0) return kernels::bit_at(row_words(f), t) ? 1 : 0;
    return kernels::bit_at(row_words(f), t) ? -1 : 1;
  };

  BitVec bits(num_tests);
  BitVec care(num_tests);
  for (std::size_t t = 0; t < observed.size(); ++t) {
    if (observed[t].dont_care()) continue;
    care.set(t, true);
    bits.set(t, observed[t].value != baseline(t));
  }
  const std::uint64_t* ow = bits.words().data();
  const std::uint64_t* cw = care.words().data();
  const std::size_t nw = bits.words().size();
  // Hoisted: one dispatch() guard per query, not per row.
  const kernels::KernelTable& kt = kernels::dispatch();
  return run_chain(
      sum,
      [&](FaultId f, std::uint32_t limit) {
        return kernels::masked_hamming_bounded(kt, row_words(f), ow, cw, nw,
                                               limit);
      },
      pf, options);
}

// RowWordsFn rows are num_tests*rank bits; BaselineSetFn: test ->
// {ids, count} of its (possibly ragged) baseline set.
template <typename RowWordsFn, typename BaselineSetFn>
EngineDiagnosis diagnose_multibaseline_impl(
    std::size_t num_faults, std::size_t num_tests, std::size_t rank,
    const RowWordsFn& row_words, const BaselineSetFn& baseline_set,
    const std::vector<Observed>& observed, const EngineOptions& options,
    const char* what) {
  check_observation_size(what, num_tests, observed.size());
  ObservationSummary sum;
  sum.num_faults = num_faults;

  // Slot of the fault-free response among each test's baselines, -1 if
  // absent (then a matched non-fault-free baseline still implies "fail").
  std::vector<int> ff_slot(num_tests, -1);
  for (std::size_t t = 0; t < num_tests; ++t) {
    const auto [ids, count] = baseline_set(t);
    for (std::size_t l = 0; l < count; ++l)
      if (ids[l] == 0) ff_slot[t] = static_cast<int>(l);
  }

  PfProjection pf;
  pf.obs = project_observation(observed, &sum);
  pf.comparable_tests = sum.effective_tests;
  pf.bit = [&row_words, &baseline_set, &ff_slot, rank](FaultId f,
                                                       std::size_t t) {
    const std::uint64_t* row = row_words(f);
    if (ff_slot[t] >= 0)
      return kernels::bit_at(row, t * rank + static_cast<std::size_t>(
                                                 ff_slot[t]))
                 ? 1
                 : 0;
    const auto [ids, count] = baseline_set(t);
    (void)ids;
    for (std::size_t l = 0; l < count; ++l)
      if (!kernels::bit_at(row, t * rank + l)) return 1;
    return -1;
  };

  BitVec bits(num_tests * rank);
  BitVec care(num_tests * rank);
  for (std::size_t t = 0; t < observed.size(); ++t) {
    if (observed[t].dont_care()) continue;
    const auto [ids, count] = baseline_set(t);
    for (std::size_t l = 0; l < rank; ++l) {
      care.set(t * rank + l, true);
      if (l >= count || observed[t].value != ids[l])
        bits.set(t * rank + l, true);
    }
  }
  const std::uint64_t* ow = bits.words().data();
  const std::uint64_t* cw = care.words().data();
  const std::size_t nw = bits.words().size();
  // Hoisted: one dispatch() guard per query, not per row.
  const kernels::KernelTable& kt = kernels::dispatch();
  return run_chain(
      sum,
      [&](FaultId f, std::uint32_t limit) {
        return kernels::masked_hamming_bounded(kt, row_words(f), ow, cw, nw,
                                               limit);
      },
      pf, options);
}

// RowIdsFn: FaultId -> const ResponseId* (num_tests u32 lanes).
template <typename RowIdsFn>
EngineDiagnosis diagnose_full_impl(std::size_t num_faults,
                                   std::size_t num_tests,
                                   const RowIdsFn& row_ids,
                                   const std::vector<Observed>& observed,
                                   const EngineOptions& options,
                                   const char* what) {
  check_observation_size(what, num_tests, observed.size());
  ObservationSummary sum;
  sum.num_faults = num_faults;
  PfProjection pf;
  pf.obs = project_observation(observed, &sum);
  pf.comparable_tests = sum.effective_tests;
  pf.bit = [&row_ids](FaultId f, std::size_t t) {
    return row_ids(f)[t] != 0 ? 1 : 0;
  };

  // Dictionary entries are always modeled ids, so kUnknownResponse in the
  // observation lane mismatches every row — the kernel needs no special
  // case for it.
  std::vector<std::uint32_t> obs(num_tests, 0);
  std::vector<std::uint8_t> care(num_tests, 0);
  for (std::size_t t = 0; t < observed.size(); ++t) {
    if (observed[t].dont_care()) continue;
    care[t] = 1;
    obs[t] = observed[t].value;
  }
  const kernels::KernelTable& kt = kernels::dispatch();
  return run_chain(
      sum,
      [&](FaultId f, std::uint32_t limit) {
        return kernels::masked_symbol_mismatches_bounded(
            kt, row_ids(f), obs.data(), care.data(), num_tests, limit);
      },
      pf, options);
}

}  // namespace

EngineDiagnosis diagnose_observed(const PassFailDictionary& dict,
                                  const std::vector<Observed>& observed,
                                  const EngineOptions& options) {
  return diagnose_passfail_impl(
      dict.num_faults(), dict.num_tests(),
      [&dict](FaultId f) { return dict.row(f).words().data(); }, observed,
      options, "diagnose_observed(pass/fail): observed tests");
}

EngineDiagnosis diagnose_observed(const SameDifferentDictionary& dict,
                                  const std::vector<Observed>& observed,
                                  const EngineOptions& options) {
  const auto& bl = dict.baselines();
  return diagnose_samediff_impl(
      dict.num_faults(), dict.num_tests(),
      [&dict](FaultId f) { return dict.row(f).words().data(); },
      [&bl](std::size_t t) { return bl[t]; }, observed, options,
      "diagnose_observed(same/different): observed tests");
}

EngineDiagnosis diagnose_observed(const MultiBaselineDictionary& dict,
                                  const std::vector<Observed>& observed,
                                  const EngineOptions& options) {
  const auto& bl = dict.baselines();
  return diagnose_multibaseline_impl(
      dict.num_faults(), dict.num_tests(), dict.baselines_per_test(),
      [&dict](FaultId f) { return dict.row(f).words().data(); },
      [&bl](std::size_t t) {
        return std::pair<const ResponseId*, std::size_t>{bl[t].data(),
                                                         bl[t].size()};
      },
      observed, options, "diagnose_observed(multi-baseline): observed tests");
}

EngineDiagnosis diagnose_observed(const FirstFailDictionary& dict,
                                  const ResponseMatrix& rm,
                                  const std::vector<Observed>& observed,
                                  const EngineOptions& options) {
  check_observation_size("diagnose_observed(first-fail): observed tests",
                         dict.num_tests(), observed.size());
  check_observation_size("diagnose_observed(first-fail): matrix tests",
                         dict.num_tests(), rm.num_tests());
  ObservationSummary sum;
  sum.num_faults = dict.num_faults();

  // The matrix is available here, so the pass baseline is resolved through
  // fault_free_id() per test instead of assuming it was interned at id 0.
  std::vector<ResponseId> ff(dict.num_tests());
  for (std::size_t t = 0; t < dict.num_tests(); ++t)
    ff[t] = rm.fault_free_id(t);

  PfProjection pf;
  pf.obs = project_observation(observed, &sum, &ff);
  pf.comparable_tests = sum.effective_tests;
  pf.bit = [&dict](FaultId f, std::size_t t) {
    return dict.entry(f, t) != 0 ? 1 : 0;
  };

  // Cared tests as (test, first-fail symbol) pairs; unknown or untranslat-
  // able responses get symbol m+1, which no dictionary entry equals.
  const auto unknown_sym = static_cast<std::uint32_t>(dict.num_outputs() + 1);
  std::vector<std::pair<std::size_t, std::uint32_t>> cared;
  cared.reserve(observed.size());
  for (std::size_t t = 0; t < observed.size(); ++t) {
    if (observed[t].dont_care()) continue;
    const ResponseId v = observed[t].value;
    std::uint32_t sym = 0;
    if (v != ff[t]) {
      sym = (v == kUnknownResponse || v >= rm.num_distinct(t))
                ? unknown_sym
                : 1 + rm.diff_outputs(t, v).front();
    }
    cared.emplace_back(t, sym);
  }
  return run_chain(
      sum,
      [&](FaultId f, std::uint32_t limit) {
        // Bounded by hand (no packed kernel for this dictionary): check the
        // running count against the pruning bound every 64 entries.
        std::uint32_t mism = 0;
        std::size_t seen = 0;
        for (const auto& [t, sym] : cared) {
          mism += static_cast<std::uint32_t>(dict.entry(f, t) != sym);
          if ((++seen & 63) == 0 && mism > limit) return mism;
        }
        return mism;
      },
      pf, options);
}

EngineDiagnosis diagnose_observed(const FullDictionary& dict,
                                  const std::vector<Observed>& observed,
                                  const EngineOptions& options) {
  return diagnose_full_impl(
      dict.num_faults(), dict.num_tests(),
      [&dict](FaultId f) { return dict.row_entries(f); }, observed, options,
      "diagnose_observed(full): observed tests");
}

EngineDiagnosis diagnose_observed(const SignatureStore& store,
                                  const std::vector<Observed>& observed,
                                  const EngineOptions& options) {
  const auto row = [&store](FaultId f) { return store.row_words(f); };
  switch (store.kind()) {
    case StoreKind::kPassFail:
      return diagnose_passfail_impl(
          store.num_faults(), store.num_tests(), row, observed, options,
          "diagnose_observed(store): observed tests");
    case StoreKind::kSameDifferent:
      return diagnose_samediff_impl(
          store.num_faults(), store.num_tests(), row,
          [&store](std::size_t t) { return store.baselines()[t]; }, observed,
          options, "diagnose_observed(store): observed tests");
    case StoreKind::kMultiBaseline:
      return diagnose_multibaseline_impl(
          store.num_faults(), store.num_tests(), store.rank(), row,
          [&store](std::size_t t) { return store.baseline_set(t); }, observed,
          options, "diagnose_observed(store): observed tests");
    case StoreKind::kFull:
      return diagnose_full_impl(
          store.num_faults(), store.num_tests(),
          [&store](FaultId f) { return store.full_row(f); }, observed, options,
          "diagnose_observed(store): observed tests");
  }
  throw std::runtime_error("diagnose_observed(store): bad store kind");
}

}  // namespace sddict
