#include "diag/observe.h"

#include <stdexcept>

#include "dict/full_dict.h"
#include "sim/logicsim.h"
#include "util/hash.h"

namespace sddict {

std::vector<BitVec> defect_responses(const Netlist& nl, const TestSet& tests,
                                     const std::vector<Injection>& defect) {
  const Netlist bad = inject_faults(nl, defect);
  return good_responses(bad, tests);
}

namespace {

std::vector<ResponseId> match_responses(const std::vector<BitVec>& good,
                                        const std::vector<BitVec>& bad,
                                        const ResponseMatrix& rm) {
  std::vector<ResponseId> observed(good.size());
  for (std::size_t t = 0; t < good.size(); ++t) {
    // Response signature: XOR of tokens of outputs that differ from good —
    // the same encoding build_response_matrix interns.
    Hash128 sig;
    for (std::size_t o = 0; o < good[t].size(); ++o)
      if (good[t].get(o) != bad[t].get(o)) sig ^= slot_token(o, 1);
    observed[t] = rm.find_response(t, sig);
  }
  return observed;
}

}  // namespace

std::vector<ResponseId> observe_defect(const Netlist& nl, const TestSet& tests,
                                       const ResponseMatrix& rm,
                                       const std::vector<Injection>& defect) {
  if (rm.num_tests() != tests.size())
    throw std::invalid_argument("observe_defect: test count mismatch");
  return match_responses(good_responses(nl, tests),
                         defect_responses(nl, tests, defect), rm);
}

std::vector<ResponseId> observe_defective_netlist(const Netlist& good_nl,
                                                  const Netlist& bad_nl,
                                                  const TestSet& tests,
                                                  const ResponseMatrix& rm) {
  if (rm.num_tests() != tests.size())
    throw std::invalid_argument("observe_defective_netlist: test count");
  if (bad_nl.num_inputs() != good_nl.num_inputs() ||
      bad_nl.num_outputs() != good_nl.num_outputs())
    throw std::invalid_argument(
        "observe_defective_netlist: interface mismatch");
  return match_responses(good_responses(good_nl, tests),
                         good_responses(bad_nl, tests), rm);
}

}  // namespace sddict
