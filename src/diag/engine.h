// Noise-tolerant diagnosis engine: one lookup path for every dictionary
// type that degrades gracefully under imperfect tester data instead of
// silently misranking.
//
//  * Qualified observations (sim/response.h): tests recorded as kMissing or
//    kUnstable are don't-cares — excluded from mismatch counting — rather
//    than counted as mismatches against every fault.
//  * Tolerance-e nearest match: on a run that completes within budget,
//    every fault whose dictionary signature is within Hamming distance e of
//    the observed signature (over the cared tests) is guaranteed a slot in
//    the returned candidate set, even when that exceeds max_results.
//  * Confidence scoring: the margin between the best match and the
//    runner-up and the number of effectively compared tests are stamped on
//    the result and its top DiagnosisMatch.
//  * Staged fallback chain, so diagnosis always returns a typed, honest
//    answer: exact match -> tolerant match -> pass/fail-projection match ->
//    unmodeled-defect verdict with a best-effort multiple-fault cover.
//    Observations containing kUnknownResponse (a response no modeled fault
//    produces) can never yield a "confident" exact/tolerant verdict; they
//    fall through to the projection stages, where an unknown response still
//    carries its one honest bit of information: the test failed.
//  * Budget-aware: ranking loops poll a RunBudget and return the
//    best-so-far prefix with completed == false on expiry, never throwing.
//  * Top-k pruned ranking: the sweep maintains the k-th-best mismatch count
//    seen so far (k = max(max_results, 2)) and hands each row's scorer the
//    bound max(k-th best, tolerance); the bounded kernels
//    (store/kernels.h) abandon a row as soon as its block-wise partial
//    count exceeds that bound. A row is only ever dropped when its final
//    count is provably larger, so the returned candidate list — order,
//    mismatch counts, margin, tolerance-e guarantee — is bit-identical to
//    the unpruned sweep's, including under budget expiry. `prune = false`
//    keeps the exhaustive sweep (the pruned path's differential oracle).
//  * Sharded ranking: with a ThreadPool and a large enough fault list, the
//    sweep splits across worker threads; shards prune against a shared
//    best-k bound (any published bound is valid, so racy timing can change
//    how much is pruned but never what is returned).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dict/dictionary.h"
#include "dict/firstfail_dict.h"
#include "dict/full_dict.h"
#include "dict/multibaseline_dict.h"
#include "dict/passfail_dict.h"
#include "dict/samediff_dict.h"
#include "sim/response.h"
#include "util/budget.h"

namespace sddict {

class ThreadPool;

struct EngineOptions {
  std::size_t max_results = 10;
  // Tolerance e of the nearest-match stage. The tolerant (and projection)
  // stages accept when the best candidate mismatches at most e cared tests.
  std::uint32_t tolerance = 0;
  // Cap on the multiple-fault cover built for an unmodeled-defect verdict.
  std::size_t max_cover = 8;
  // Wall-clock / cancellation budget; anytime, never throws on expiry.
  RunBudget budget{};
  // Top-k pruned ranking (see header comment): provably identical output,
  // skips most of most rows once the top-k bound tightens. Off = the
  // exhaustive sweep the pruned path is differentially tested against.
  bool prune = true;
  // When set and the fault list has at least shard_min_faults rows, the
  // ranking sweeps run as parallel_for_chunks on this pool. The caller must
  // not be a task on that same pool (ThreadPool::parallel_for is not
  // reentrant); the serving layer therefore only passes its pool on the
  // dispatcher-inline single-miss path. Results stay bit-identical to the
  // sequential sweep on completed runs; a budget expiry stops each shard at
  // its own prefix instead of one global prefix.
  ThreadPool* pool = nullptr;
  std::size_t shard_min_faults = 4096;
};

// How far down the fallback chain the engine had to go. The order is the
// chain order, so "later" means "weaker evidence".
enum class DiagnosisOutcome : std::uint8_t {
  kExactMatch = 0,      // a fault matches every cared test
  kTolerantMatch,       // best fault within tolerance of the observation
  kPassFailProjection,  // only the pass/fail projection matched (within
                        // tolerance); per-response detail did not
  kUnmodeledDefect,     // nothing in the single-fault model explains the
                        // observation; see `cover`
};

const char* diagnosis_outcome_name(DiagnosisOutcome o);

struct EngineDiagnosis {
  DiagnosisOutcome outcome = DiagnosisOutcome::kUnmodeledDefect;
  // Best-first candidates of the stage named by `outcome` (exact/tolerant:
  // native dictionary space; projection/unmodeled: pass/fail projection).
  // Holds at least every fault within `tolerance`, at most
  // max(max_results, that count) entries — on completed runs.
  std::vector<DiagnosisMatch> matches;
  std::uint32_t best_mismatches = 0;
  // Runner-up's mismatch count minus the best's; 0 when the best is tied
  // or there is no runner-up. Also stamped on matches.front().
  std::uint32_t margin = 0;
  // Tests actually compared in the stage that produced `matches`.
  std::size_t effective_tests = 0;
  std::size_t dont_care_tests = 0;  // kMissing/kUnstable observations
  std::size_t unknown_tests = 0;    // kUnknownResponse observations
  // Unmodeled-defect fallback: greedy multiple-fault cover of the observed
  // failing tests (faults whose detection sets jointly explain the fails),
  // and the failing tests no modeled fault detects.
  std::vector<FaultId> cover;
  std::size_t uncovered_failures = 0;
  bool completed = true;
  StopReason stop_reason = StopReason::kCompleted;
};

// One engine entry point per dictionary type. With tolerance 0, an
// all-kValue observation and no budget, the ranking equals the
// dictionary's own diagnose() (same order, same mismatch counts).
//
// Observed values are response ids in the space of the matrix the
// dictionary was built from. The matrix-less overloads require the
// fault-free response to be interned at id 0 when projecting onto
// pass/fail — the same precondition the dictionaries' own build()
// functions rely on, and one every matrix from build_response_matrix or
// response_matrix_from_table satisfies. A response_matrix_from_ids matrix
// with a permuted fault-free id is not supported by these overloads (nor
// by the builders; see sim/response.h). The first-fail overload, which is
// handed the matrix, instead resolves the pass baseline per test through
// rm.fault_free_id().
EngineDiagnosis diagnose_observed(const PassFailDictionary& dict,
                                  const std::vector<Observed>& observed,
                                  const EngineOptions& options = {});
EngineDiagnosis diagnose_observed(const SameDifferentDictionary& dict,
                                  const std::vector<Observed>& observed,
                                  const EngineOptions& options = {});
EngineDiagnosis diagnose_observed(const MultiBaselineDictionary& dict,
                                  const std::vector<Observed>& observed,
                                  const EngineOptions& options = {});
// The first-fail dictionary needs the response matrix it was built from to
// translate response ids into first-failing-output symbols.
EngineDiagnosis diagnose_observed(const FirstFailDictionary& dict,
                                  const ResponseMatrix& rm,
                                  const std::vector<Observed>& observed,
                                  const EngineOptions& options = {});
EngineDiagnosis diagnose_observed(const FullDictionary& dict,
                                  const std::vector<Observed>& observed,
                                  const EngineOptions& options = {});

// Packed-store entry point (store/signature_store.h): dispatches on the
// store's kind and ranks straight off the mmap'd rows through the
// word-parallel kernels — same staged chain, bit-identical results to the
// dictionary overload of the same kind (the per-kind implementations are
// shared; only the row accessor differs). A first-fail or detection-list
// store has kind pass/fail and is diagnosed in that projection.
class SignatureStore;
EngineDiagnosis diagnose_observed(const SignatureStore& store,
                                  const std::vector<Observed>& observed,
                                  const EngineOptions& options = {});

// 1-based rank of `fault` in a best-first candidate list; 0 when absent.
std::size_t true_fault_rank(const std::vector<DiagnosisMatch>& matches,
                            FaultId fault);

}  // namespace sddict
