// Guided-probe diagnosis (paper references [5], [16], [21]): when the
// dictionary leaves several candidates tied, physically probing internal
// nets disambiguates them. Each candidate fault predicts a value for every
// (net, test); the engine greedily picks the probe whose reading splits the
// surviving candidate set most evenly, reads the "chip" through a caller-
// supplied oracle, and keeps only the candidates consistent with the
// reading.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fault/bridge.h"
#include "fault/faultlist.h"
#include "netlist/netlist.h"
#include "sim/testset.h"

namespace sddict {

// Physical access abstraction: the logic value observed at `net` while
// test `test` is applied to the defective chip.
using ProbeOracle = std::function<bool(GateId net, std::size_t test)>;

struct ProbeStep {
  GateId net = kNoGate;
  std::size_t test = 0;
  bool reading = false;
  std::size_t candidates_before = 0;
  std::size_t candidates_after = 0;
};

struct ProbeResult {
  std::vector<ProbeStep> steps;
  std::vector<FaultId> final_candidates;
};

struct ProbeOptions {
  std::size_t max_probes = 16;
  // Tests considered as probe stimuli (first `test_window` of the set).
  std::size_t test_window = 64;
};

// Narrows `candidates` by probing; `oracle` answers physical readings.
ProbeResult guided_probe(const Netlist& nl, const FaultList& faults,
                         const TestSet& tests,
                         std::vector<FaultId> candidates,
                         const ProbeOracle& oracle,
                         const ProbeOptions& options = {});

// Oracles for simulated defects. Probing the faulted stem reads the stuck
// value; probing a bridged net reads the wired value.
ProbeOracle stuck_probe_oracle(const Netlist& nl, const TestSet& tests,
                               const StuckFault& defect);
ProbeOracle bridge_probe_oracle(const Netlist& nl, const TestSet& tests,
                                const BridgingFault& defect);

}  // namespace sddict
