#include "diag/report.h"

#include <algorithm>
#include <sstream>

namespace sddict {
namespace {

DictionaryDiagnosis summarize(DictionaryKind kind,
                              std::vector<DiagnosisMatch> ranked,
                              FaultId true_fault, std::size_t top) {
  DictionaryDiagnosis d;
  d.kind = kind;
  if (!ranked.empty()) {
    d.best_mismatches = ranked.front().mismatches;
    for (const auto& m : ranked)
      if (m.mismatches == d.best_mismatches) ++d.tied_candidates;
    if (true_fault != kNoFault) {
      for (std::size_t i = 0; i < ranked.size(); ++i)
        if (ranked[i].fault == true_fault) {
          d.true_fault_rank = i + 1;
          break;
        }
    }
  }
  if (ranked.size() > top) ranked.resize(top);
  d.top = std::move(ranked);
  return d;
}

}  // namespace

DiagnosisComparison compare_dictionaries(const FullDictionary& full,
                                         const PassFailDictionary& pf,
                                         const SameDifferentDictionary& sd,
                                         const std::vector<ResponseId>& observed,
                                         FaultId true_fault, std::size_t top) {
  const std::size_t all = full.num_faults();
  DiagnosisComparison cmp;
  cmp.full = summarize(DictionaryKind::kFull, full.diagnose(observed, all),
                       true_fault, top);
  cmp.pass_fail =
      summarize(DictionaryKind::kPassFail,
                pf.diagnose(pf.encode(observed), all), true_fault, top);
  cmp.same_different =
      summarize(DictionaryKind::kSameDifferent,
                sd.diagnose(sd.encode(observed), all), true_fault, top);
  return cmp;
}

RobustDiagnosisComparison compare_dictionaries_robust(
    const FullDictionary& full, const PassFailDictionary& pf,
    const SameDifferentDictionary& sd, const std::vector<Observed>& observed,
    const EngineOptions& options) {
  RobustDiagnosisComparison cmp;
  cmp.full = diagnose_observed(full, observed, options);
  cmp.pass_fail = diagnose_observed(pf, observed, options);
  cmp.same_different = diagnose_observed(sd, observed, options);
  return cmp;
}

std::string format_robust_diagnosis(const Netlist& nl, const FaultList& faults,
                                    const RobustDiagnosisComparison& cmp) {
  std::ostringstream out;
  const DictionaryKind kinds[] = {DictionaryKind::kFull,
                                  DictionaryKind::kPassFail,
                                  DictionaryKind::kSameDifferent};
  const EngineDiagnosis* diags[] = {&cmp.full, &cmp.pass_fail,
                                    &cmp.same_different};
  for (std::size_t i = 0; i < 3; ++i) {
    const EngineDiagnosis& d = *diags[i];
    out << dictionary_kind_name(kinds[i])
        << " dictionary: " << diagnosis_outcome_name(d.outcome) << ", best "
        << d.best_mismatches << " mismatch(es), margin " << d.margin << " over "
        << d.effective_tests << " effective test(s)";
    if (d.dont_care_tests != 0)
      out << ", " << d.dont_care_tests << " don't-care";
    if (d.unknown_tests != 0) out << ", " << d.unknown_tests << " unknown";
    if (!d.completed) out << " [budget: " << stop_reason_name(d.stop_reason)
                          << "]";
    out << "\n";
    for (const auto& m : d.matches)
      out << "    " << fault_name(nl, faults[m.fault]) << "  (" << m.mismatches
          << " mismatches)\n";
    if (d.outcome == DiagnosisOutcome::kUnmodeledDefect && !d.cover.empty()) {
      out << "    cover:";
      for (const FaultId f : d.cover)
        out << " " << fault_name(nl, faults[f]);
      out << "  (" << d.uncovered_failures << " failing test(s) uncovered)\n";
    }
  }
  return out.str();
}

std::string format_diagnosis(const Netlist& nl, const FaultList& faults,
                             const DiagnosisComparison& cmp) {
  std::ostringstream out;
  for (const DictionaryDiagnosis* d :
       {&cmp.full, &cmp.pass_fail, &cmp.same_different}) {
    out << dictionary_kind_name(d->kind) << " dictionary: "
        << d->tied_candidates << " candidate(s) at " << d->best_mismatches
        << " mismatching test(s)";
    if (d->true_fault_rank != 0)
      out << ", true fault ranked #" << d->true_fault_rank;
    out << "\n";
    for (const auto& m : d->top)
      out << "    " << fault_name(nl, faults[m.fault]) << "  (" << m.mismatches
          << " mismatches)\n";
  }
  return out.str();
}

}  // namespace sddict
