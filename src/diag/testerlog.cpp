#include "diag/testerlog.h"

#include <cstdint>
#include <istream>
#include <limits>
#include <ostream>

#include "dict/full_dict.h"  // kUnknownResponse

namespace sddict {

namespace {

// Absurd test counts in a corrupted header must not translate into an
// absurd allocation.
constexpr std::uint64_t kMaxTests = std::uint64_t{1} << 28;

std::string at(std::size_t line, std::size_t column, const std::string& reason) {
  return "testerlog:" + std::to_string(line) + ":" + std::to_string(column) +
         ": " + reason;
}

struct Token {
  std::string text;
  std::size_t col = 0;  // 1-based
};

std::vector<Token> split(const std::string& line) {
  std::vector<Token> toks;
  std::size_t i = 0;
  while (i < line.size()) {
    if (line[i] == ' ' || line[i] == '\t') {
      ++i;
      continue;
    }
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    toks.push_back({line.substr(start, i - start), start + 1});
  }
  return toks;
}

bool parse_u64(const std::string& s, std::uint64_t* out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t d = static_cast<std::uint64_t>(c - '0');
    if (v > (std::numeric_limits<std::uint64_t>::max() - d) / 10) return false;
    v = v * 10 + d;
  }
  *out = v;
  return true;
}

// Applies one body record (`t <index> <value>`) to the observation
// vector; defects go through drop(col, reason) and leave it untouched.
// Shared by the testerlog and sessionlog readers so the two formats
// accept byte-identical record grammar.
template <typename DropFn>
void apply_record(const std::vector<Token>& toks, std::size_t num_tests,
                  std::vector<char>& seen, std::vector<Observed>& observations,
                  const DropFn& drop) {
  if (toks[0].text != "t") {
    drop(toks[0].col, "unknown record type '" + toks[0].text + "'");
    return;
  }
  if (toks.size() != 3) {
    drop(toks.back().col + toks.back().text.size(),
         "expected 't <index> <value>'");
    return;
  }
  std::uint64_t idx = 0;
  if (!parse_u64(toks[1].text, &idx)) {
    drop(toks[1].col, "bad test index '" + toks[1].text + "'");
    return;
  }
  if (idx >= num_tests) {
    drop(toks[1].col, "test index " + toks[1].text + " out of range (tests " +
                          std::to_string(num_tests) + ")");
    return;
  }
  if (seen[idx]) {  // keep-first: the earlier record stands
    drop(toks[1].col, "duplicate record for test " + toks[1].text);
    return;
  }
  Observed obs;
  const std::string& val = toks[2].text;
  std::uint64_t v = 0;
  if (val == "missing") {
    obs = Observed::missing();
  } else if (val == "unstable") {
    obs = Observed::unstable();
  } else if (val == "unknown") {
    obs = Observed::of(kUnknownResponse);
  } else if (parse_u64(val, &v) &&
             v <= std::numeric_limits<std::uint32_t>::max()) {
    obs = Observed::of(static_cast<ResponseId>(v));
  } else {
    drop(toks[2].col, "bad response value '" + val + "'");
    return;
  }
  seen[idx] = 1;
  observations[static_cast<std::size_t>(idx)] = obs;
}

void write_records(std::ostream& out, const std::vector<Observed>& observed) {
  for (std::size_t t = 0; t < observed.size(); ++t) {
    const Observed& o = observed[t];
    switch (o.status) {
      case ObservedStatus::kMissing:
        break;  // absence means missing
      case ObservedStatus::kUnstable:
        out << "t " << t << " unstable\n";
        break;
      case ObservedStatus::kValue:
        if (o.value == kUnknownResponse)
          out << "t " << t << " unknown\n";
        else
          out << "t " << t << " " << o.value << "\n";
        break;
    }
  }
}

}  // namespace

TesterLogError::TesterLogError(std::size_t line, std::size_t column,
                               const std::string& reason)
    : std::runtime_error(at(line, column, reason)),
      line_(line),
      column_(column) {}

TesterLog read_testerlog(std::istream& in, const TesterLogOptions& options) {
  TesterLog log;
  std::string line;
  std::size_t lineno = 0;
  bool saw_header = false;
  bool saw_tests = false;
  bool saw_end = false;
  std::size_t num_tests = 0;
  std::vector<char> seen;

  // Record-level defects are recoverable; structural defects (header and
  // `tests` line — without them there is no observation vector to salvage
  // into) throw in both modes.
  const auto fail_or_drop = [&](std::size_t col, const std::string& reason) {
    if (!options.recover) throw TesterLogError(lineno, col, reason);
    log.dropped.push_back({lineno, col, line, reason});
  };

  while (std::getline(in, line)) {
    ++lineno;
    while (!line.empty() && (line.back() == '\r' || line.back() == '\n'))
      line.pop_back();
    if (!saw_header) {
      if (line != "sddict testerlog v1")
        throw TesterLogError(lineno, 1,
                             "expected header 'sddict testerlog v1'");
      saw_header = true;
      continue;
    }
    const std::vector<Token> toks = split(line);
    if (toks.empty() || toks[0].text[0] == '#') continue;
    if (!saw_tests) {
      if (toks[0].text != "tests")
        throw TesterLogError(lineno, toks[0].col, "expected 'tests <count>'");
      std::uint64_t k = 0;
      if (toks.size() != 2 || !parse_u64(toks[1].text, &k))
        throw TesterLogError(lineno, toks.size() > 1 ? toks[1].col : toks[0].col,
                             "expected 'tests <count>'");
      if (k > kMaxTests)
        throw TesterLogError(lineno, toks[1].col, "test count too large");
      num_tests = static_cast<std::size_t>(k);
      log.observations.assign(num_tests, Observed::missing());
      seen.assign(num_tests, 0);
      saw_tests = true;
      continue;
    }
    if (toks[0].text == "end") {
      if (toks.size() != 1) {
        // Strict mode throws inside fail_or_drop. In recovery mode a
        // malformed trailer is just another dropped record, NOT the
        // trailer: scanning continues so later salvageable records are
        // kept, and only a well-formed 'end' closes the log.
        fail_or_drop(toks[1].col, "trailing tokens after 'end'");
        continue;
      }
      saw_end = true;
      break;
    }
    apply_record(toks, num_tests, seen, log.observations, fail_or_drop);
  }

  if (!saw_header)
    throw TesterLogError(lineno == 0 ? 1 : lineno, 1,
                         "empty log: missing header");
  if (!saw_tests)
    throw TesterLogError(lineno + 1, 1, "missing 'tests <count>' line");
  if (!saw_end) {
    if (!options.recover)
      throw TesterLogError(lineno + 1, 1, "missing 'end' trailer");
    log.truncated = true;
  }
  return log;
}

void write_testerlog(std::ostream& out,
                     const std::vector<Observed>& observed) {
  out << "sddict testerlog v1\n";
  out << "tests " << observed.size() << "\n";
  write_records(out, observed);
  out << "end\n";
}

SessionLog read_sessionlog(std::istream& in, const TesterLogOptions& options) {
  SessionLog log;
  std::string line;
  std::size_t lineno = 0;
  // 0 = expecting header, 1 = `session <id>`, 2 = `tests <count>`, 3 = body.
  int stage = 0;
  bool in_run = false;
  SessionLogRun run;
  std::vector<char> seen;

  const auto fail_or_drop = [&](std::size_t col, const std::string& reason) {
    const std::string where =
        in_run ? "run " + std::to_string(log.runs.size() + 1) + ": " + reason
               : reason;
    if (!options.recover) throw TesterLogError(lineno, col, where);
    (in_run ? run.dropped : log.dropped).push_back({lineno, col, line, where});
  };

  while (std::getline(in, line)) {
    ++lineno;
    while (!line.empty() && (line.back() == '\r' || line.back() == '\n'))
      line.pop_back();
    if (stage == 0) {
      if (line != "sddict sessionlog v1")
        throw TesterLogError(lineno, 1,
                             "expected header 'sddict sessionlog v1'");
      stage = 1;
      continue;
    }
    const std::vector<Token> toks = split(line);
    if (toks.empty() || toks[0].text[0] == '#') continue;
    if (stage == 1) {
      if (toks[0].text != "session" || toks.size() != 2)
        throw TesterLogError(lineno, toks[0].col, "expected 'session <id>'");
      log.id = toks[1].text;
      stage = 2;
      continue;
    }
    if (stage == 2) {
      if (toks[0].text != "tests")
        throw TesterLogError(lineno, toks[0].col, "expected 'tests <count>'");
      std::uint64_t k = 0;
      if (toks.size() != 2 || !parse_u64(toks[1].text, &k))
        throw TesterLogError(lineno,
                             toks.size() > 1 ? toks[1].col : toks[0].col,
                             "expected 'tests <count>'");
      if (k > kMaxTests)
        throw TesterLogError(lineno, toks[1].col, "test count too large");
      log.num_tests = static_cast<std::size_t>(k);
      stage = 3;
      continue;
    }
    if (!in_run) {
      if (toks[0].text == "begin" && toks.size() == 1) {
        in_run = true;
        run = SessionLogRun{};
        run.observations.assign(log.num_tests, Observed::missing());
        seen.assign(log.num_tests, 0);
        continue;
      }
      fail_or_drop(toks[0].col, "record outside a run (expected 'begin')");
      continue;
    }
    if (toks[0].text == "end") {
      if (toks.size() != 1) {
        fail_or_drop(toks[1].col, "trailing tokens after 'end'");
        continue;
      }
      in_run = false;
      log.runs.push_back(std::move(run));
      continue;
    }
    if (toks[0].text == "begin") {
      fail_or_drop(toks[0].col, "'begin' inside an open run");
      continue;
    }
    apply_record(toks, log.num_tests, seen, run.observations, fail_or_drop);
  }

  if (stage == 0)
    throw TesterLogError(lineno == 0 ? 1 : lineno, 1,
                         "empty log: missing header");
  if (stage == 1)
    throw TesterLogError(lineno + 1, 1, "missing 'session <id>' line");
  if (stage == 2)
    throw TesterLogError(lineno + 1, 1, "missing 'tests <count>' line");
  if (in_run) {
    if (!options.recover)
      throw TesterLogError(lineno + 1, 1,
                           "run " + std::to_string(log.runs.size() + 1) +
                               ": missing 'end' trailer");
    run.truncated = true;
    log.runs.push_back(std::move(run));
  }
  return log;
}

void write_sessionlog(std::ostream& out, const std::string& id,
                      const std::vector<std::vector<Observed>>& runs) {
  out << "sddict sessionlog v1\n";
  out << "session " << id << "\n";
  out << "tests " << (runs.empty() ? 0 : runs.front().size()) << "\n";
  for (const std::vector<Observed>& observed : runs) {
    out << "begin\n";
    write_records(out, observed);
    out << "end\n";
  }
}

bool sniff_sessionlog(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) return false;
  while (!line.empty() && (line.back() == '\r' || line.back() == '\n'))
    line.pop_back();
  in.clear();
  in.seekg(0);
  return line == "sddict sessionlog v1";
}

}  // namespace sddict
