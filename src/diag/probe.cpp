#include "diag/probe.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "sim/faultsim.h"
#include "sim/logicsim.h"

namespace sddict {

ProbeResult guided_probe(const Netlist& nl, const FaultList& faults,
                         const TestSet& tests,
                         std::vector<FaultId> candidates,
                         const ProbeOracle& oracle,
                         const ProbeOptions& options) {
  ProbeResult res;
  const std::size_t window = std::min<std::size_t>(
      {options.test_window, tests.size(), std::size_t{64}});
  if (window == 0 || candidates.size() <= 1) {
    res.final_candidates = std::move(candidates);
    return res;
  }

  // Predicted values of every candidate for every (gate, windowed test).
  FaultSimulator fsim(nl);
  std::vector<std::uint64_t> words;
  tests.pack_batch(0, window, &words);
  fsim.load_batch(words, window);
  std::vector<std::vector<std::uint64_t>> predicted(candidates.size());
  for (std::size_t c = 0; c < candidates.size(); ++c)
    fsim.simulate_fault_full(faults[candidates[c]], &predicted[c]);

  const std::uint64_t window_mask =
      window == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << window) - 1;

  for (std::size_t probe = 0;
       probe < options.max_probes && candidates.size() > 1; ++probe) {
    // Pick the (net, test) whose predicted split is most balanced.
    GateId best_net = kNoGate;
    std::size_t best_test = 0;
    std::size_t best_minority = 0;  // larger minority = better split
    for (GateId g = 0; g < nl.num_gates(); ++g) {
      // Candidate predictions for net g over the window, one word each.
      for (std::size_t t = 0; t < window; ++t) {
        std::size_t ones = 0;
        for (std::size_t c = 0; c < candidates.size(); ++c)
          ones += (predicted[c][g] >> t) & 1;
        const std::size_t minority = std::min(ones, candidates.size() - ones);
        if (minority > best_minority) {
          best_minority = minority;
          best_net = g;
          best_test = t;
        }
      }
      if (best_minority * 2 >= candidates.size()) break;  // perfect split
    }
    if (best_net == kNoGate || best_minority == 0) break;  // nothing splits

    ProbeStep step;
    step.net = best_net;
    step.test = best_test;
    step.candidates_before = candidates.size();
    step.reading = oracle(best_net, best_test);

    std::vector<FaultId> kept;
    std::vector<std::vector<std::uint64_t>> kept_predicted;
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      const bool pred = (predicted[c][best_net] >> best_test) & 1;
      if (pred == step.reading) {
        kept.push_back(candidates[c]);
        kept_predicted.push_back(std::move(predicted[c]));
      }
    }
    // A reading no candidate predicted: the defect is outside the model;
    // stop with the current set rather than emptying it.
    if (kept.empty()) {
      res.steps.push_back(step);
      break;
    }
    candidates = std::move(kept);
    predicted = std::move(kept_predicted);
    step.candidates_after = candidates.size();
    res.steps.push_back(step);
    (void)window_mask;
  }

  res.final_candidates = std::move(candidates);
  return res;
}

ProbeOracle stuck_probe_oracle(const Netlist& nl, const TestSet& tests,
                               const StuckFault& defect) {
  // Precompute the defective chip's internal values per 64-test batch on
  // demand; cache the last batch.
  auto fsim = std::make_shared<FaultSimulator>(nl);
  auto cache = std::make_shared<std::pair<std::size_t, std::vector<std::uint64_t>>>(
      static_cast<std::size_t>(-1), std::vector<std::uint64_t>{});
  auto tests_copy = std::make_shared<TestSet>(tests);
  return [=, &nl](GateId net, std::size_t test) {
    const std::size_t batch = test / 64;
    if (cache->first != batch) {
      const std::size_t first = batch * 64;
      const std::size_t count =
          std::min<std::size_t>(64, tests_copy->size() - first);
      std::vector<std::uint64_t> words;
      tests_copy->pack_batch(first, count, &words);
      fsim->load_batch(words, count);
      fsim->simulate_fault_full(defect, &cache->second);
      cache->first = batch;
    }
    (void)nl;
    return ((cache->second[net] >> (test % 64)) & 1) != 0;
  };
}

ProbeOracle bridge_probe_oracle(const Netlist& nl, const TestSet& tests,
                                const BridgingFault& defect) {
  // Simulate the bridged netlist; reading either shorted net yields the
  // wired value (the "bridge$" gate), other nets their same-named gate.
  auto bad = std::make_shared<Netlist>(inject_bridge(nl, defect));
  const GateId wired = bad->find("bridge$");
  if (wired == kNoGate)
    throw std::logic_error("bridge_probe_oracle: wired gate missing");
  auto sim = std::make_shared<BatchSimulator>(*bad);
  auto cache = std::make_shared<std::size_t>(static_cast<std::size_t>(-1));
  auto tests_copy = std::make_shared<TestSet>(tests);
  const BridgingFault f = defect;
  return [=, &nl](GateId net, std::size_t test) {
    const std::size_t batch = test / 64;
    if (*cache != batch) {
      const std::size_t first = batch * 64;
      const std::size_t count =
          std::min<std::size_t>(64, tests_copy->size() - first);
      std::vector<std::uint64_t> words;
      tests_copy->pack_batch(first, count, &words);
      sim->simulate(words);
      *cache = batch;
    }
    GateId target;
    if (net == f.a || net == f.b) {
      target = wired;
    } else {
      target = bad->find(nl.gate(net).name);
      if (target == kNoGate)
        throw std::invalid_argument("bridge_probe_oracle: unknown net");
    }
    return ((sim->value(target) >> (test % 64)) & 1) != 0;
  };
}

}  // namespace sddict
