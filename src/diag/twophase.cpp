#include "diag/twophase.h"

namespace sddict {
namespace {

TwoPhaseResult run_two_phase(const std::vector<FaultId>& phase1,
                             const ResponseMatrix& rm,
                             const std::vector<ResponseId>& observed) {
  TwoPhaseResult res;
  res.phase1_candidates = phase1;
  res.simulations_run = phase1.size();
  for (FaultId f : phase1) {
    bool exact = true;
    for (std::size_t t = 0; t < rm.num_tests() && exact; ++t)
      exact = rm.response(f, t) == observed[t];
    if (exact) res.phase2_candidates.push_back(f);
  }
  return res;
}

}  // namespace

TwoPhaseResult two_phase_with_passfail(const PassFailDictionary& dict,
                                       const ResponseMatrix& rm,
                                       const std::vector<ResponseId>& observed) {
  const BitVec bits = dict.encode(observed);
  std::vector<FaultId> phase1;
  for (FaultId f = 0; f < dict.num_faults(); ++f)
    if (dict.row(f) == bits) phase1.push_back(f);
  return run_two_phase(phase1, rm, observed);
}

TwoPhaseResult two_phase_with_samediff(const SameDifferentDictionary& dict,
                                       const ResponseMatrix& rm,
                                       const std::vector<ResponseId>& observed) {
  const BitVec bits = dict.encode(observed);
  std::vector<FaultId> phase1;
  for (FaultId f = 0; f < dict.num_faults(); ++f)
    if (dict.row(f) == bits) phase1.push_back(f);
  return run_two_phase(phase1, rm, observed);
}

}  // namespace sddict
