// Two-phase diagnosis (the use case of refs [8], [12], [14] in the paper):
// a small bit dictionary (pass/fail or same/different) first narrows the
// candidate list; full-response fault simulation then checks only those
// candidates against the complete observation. The figure of merit is how
// many full-response simulations the bit dictionary saves — a higher-
// resolution bit dictionary (same/different) narrows further than pass/fail
// at essentially the same storage cost.
#pragma once

#include <vector>

#include "dict/passfail_dict.h"
#include "dict/samediff_dict.h"
#include "sim/response.h"

namespace sddict {

struct TwoPhaseResult {
  // Faults whose bit-dictionary row matches the observation exactly.
  std::vector<FaultId> phase1_candidates;
  // Of those, faults whose full response matches the observation on every
  // test (final cause-effect verdict).
  std::vector<FaultId> phase2_candidates;
  // Full-response checks run (== phase1 size); a dictionary-free flow would
  // run one per modeled fault.
  std::size_t simulations_run = 0;
};

TwoPhaseResult two_phase_with_passfail(const PassFailDictionary& dict,
                                       const ResponseMatrix& rm,
                                       const std::vector<ResponseId>& observed);

TwoPhaseResult two_phase_with_samediff(const SameDifferentDictionary& dict,
                                       const ResponseMatrix& rm,
                                       const std::vector<ResponseId>& observed);

}  // namespace sddict
