// Robust reader/writer for tester datalogs: the qualified per-test
// observation vector (sim/response.h) in a line-oriented text format.
//
//   sddict testerlog v1
//   tests <k>
//   # comment lines and blank lines are allowed anywhere
//   t <index> <response-id | missing | unstable | unknown>
//   end
//
// Tests with no record default to kMissing (a dropped datalog record is
// the common tester failure, and a don't-care is the honest reading of
// it). The reader never crashes on malformed input: in strict mode every
// defect raises a TesterLogError carrying the 1-based line and column; in
// recovery mode malformed or duplicate records are set aside as
// DroppedRecords (first record wins on duplicates), a malformed `end`
// line is dropped like any other record — only a well-formed `end`
// closes the log — a missing `end` trailer marks the log truncated, and
// everything parseable is kept.
// Lines are CRLF-tolerant.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/response.h"

namespace sddict {

// Parse error with tester-datalog coordinates; what() reads
// "testerlog:LINE:COL: reason".
class TesterLogError : public std::runtime_error {
 public:
  TesterLogError(std::size_t line, std::size_t column,
                 const std::string& reason);

  std::size_t line() const { return line_; }
  std::size_t column() const { return column_; }

 private:
  std::size_t line_ = 0;
  std::size_t column_ = 0;
};

// One record set aside (not applied) by the recovery-mode reader.
struct DroppedRecord {
  std::size_t line = 0;
  std::size_t column = 0;
  std::string text;    // the offending line, CR/LF stripped
  std::string reason;  // same wording a strict-mode TesterLogError carries
};

struct TesterLog {
  std::vector<Observed> observations;
  std::vector<DroppedRecord> dropped;  // recovery mode only
  bool truncated = false;              // `end` trailer never seen
};

struct TesterLogOptions {
  // false: throw TesterLogError on the first defect. true: salvage — keep
  // every well-formed record, collect the rest as DroppedRecords.
  bool recover = false;
};

TesterLog read_testerlog(std::istream& in, const TesterLogOptions& options = {});

// Writes a log read_testerlog round-trips. kMissing observations are
// omitted (absence already means missing).
void write_testerlog(std::ostream& out, const std::vector<Observed>& observed);

}  // namespace sddict
