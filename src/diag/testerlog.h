// Robust reader/writer for tester datalogs: the qualified per-test
// observation vector (sim/response.h) in a line-oriented text format.
//
//   sddict testerlog v1
//   tests <k>
//   # comment lines and blank lines are allowed anywhere
//   t <index> <response-id | missing | unstable | unknown>
//   end
//
// Tests with no record default to kMissing (a dropped datalog record is
// the common tester failure, and a don't-care is the honest reading of
// it). The reader never crashes on malformed input: in strict mode every
// defect raises a TesterLogError carrying the 1-based line and column; in
// recovery mode malformed or duplicate records are set aside as
// DroppedRecords (first record wins on duplicates), a malformed `end`
// line is dropped like any other record — only a well-formed `end`
// closes the log — a missing `end` trailer marks the log truncated, and
// everything parseable is kept.
// Lines are CRLF-tolerant.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/response.h"

namespace sddict {

// Parse error with tester-datalog coordinates; what() reads
// "testerlog:LINE:COL: reason".
class TesterLogError : public std::runtime_error {
 public:
  TesterLogError(std::size_t line, std::size_t column,
                 const std::string& reason);

  std::size_t line() const { return line_; }
  std::size_t column() const { return column_; }

 private:
  std::size_t line_ = 0;
  std::size_t column_ = 0;
};

// One record set aside (not applied) by the recovery-mode reader.
struct DroppedRecord {
  std::size_t line = 0;
  std::size_t column = 0;
  std::string text;    // the offending line, CR/LF stripped
  std::string reason;  // same wording a strict-mode TesterLogError carries
};

struct TesterLog {
  std::vector<Observed> observations;
  std::vector<DroppedRecord> dropped;  // recovery mode only
  bool truncated = false;              // `end` trailer never seen
};

struct TesterLogOptions {
  // false: throw TesterLogError on the first defect. true: salvage — keep
  // every well-formed record, collect the rest as DroppedRecords.
  bool recover = false;
};

TesterLog read_testerlog(std::istream& in, const TesterLogOptions& options = {});

// Writes a log read_testerlog round-trips. kMissing observations are
// omitted (absence already means missing).
void write_testerlog(std::ostream& out, const std::vector<Observed>& observed);

// ---------------------------------------------------------------------------
// Sessionlog: several applications of the same test set to one die, in a
// single file — the on-disk form of a retest session.
//
//   sddict sessionlog v1
//   session <id>
//   tests <k>
//   begin
//   t <index> <value>     # same record grammar as the testerlog body
//   end
//   begin
//   ...
//   end                   # EOF terminates the log; runs may repeat freely
//
// Strict mode names the offending run in every record-level error ("run
// 2: bad response value ..."). Recovery mode salvages run by run: a
// malformed record is set aside into that run's dropped list, a record
// outside any begin/end block lands in the log-level dropped list, and
// EOF inside an open run keeps what that run held and marks it truncated.
// Structural defects (header, `session`, `tests` lines) throw in both
// modes — without them there is no session to salvage into.

struct SessionLogRun {
  std::vector<Observed> observations;
  std::vector<DroppedRecord> dropped;  // recovery mode only
  bool truncated = false;              // EOF hit before this run's `end`
};

struct SessionLog {
  std::string id;
  std::size_t num_tests = 0;
  std::vector<SessionLogRun> runs;
  std::vector<DroppedRecord> dropped;  // records outside any run
};

SessionLog read_sessionlog(std::istream& in,
                           const TesterLogOptions& options = {});

// Writes a log read_sessionlog round-trips.
void write_sessionlog(std::ostream& out, const std::string& id,
                      const std::vector<std::vector<Observed>>& runs);

// Distinguishes the two on-disk formats by their header line so
// `diagnose_chip --from-log` can accept either.
bool sniff_sessionlog(std::istream& in);

}  // namespace sddict
