// Side-by-side cause-effect diagnosis with all three dictionary types, plus
// quality metrics: how many candidates tie at the best match, and where the
// true fault ranks (when known).
#pragma once

#include <string>
#include <vector>

#include "diag/engine.h"
#include "dict/full_dict.h"
#include "dict/passfail_dict.h"
#include "dict/samediff_dict.h"
#include "fault/faultlist.h"

namespace sddict {

struct DictionaryDiagnosis {
  DictionaryKind kind{};
  std::vector<DiagnosisMatch> top;    // best-first
  std::size_t best_mismatches = 0;    // of the top match
  std::size_t tied_candidates = 0;    // faults tying at best_mismatches
  // Rank (1-based) of the true fault among all faults ordered by mismatch
  // count; 0 when no true fault was supplied.
  std::size_t true_fault_rank = 0;
};

struct DiagnosisComparison {
  DictionaryDiagnosis full;
  DictionaryDiagnosis pass_fail;
  DictionaryDiagnosis same_different;
};

DiagnosisComparison compare_dictionaries(const FullDictionary& full,
                                         const PassFailDictionary& pf,
                                         const SameDifferentDictionary& sd,
                                         const std::vector<ResponseId>& observed,
                                         FaultId true_fault = kNoFault,
                                         std::size_t top = 5);

// Human-readable report; `nl`/`faults` provide fault names.
std::string format_diagnosis(const Netlist& nl, const FaultList& faults,
                             const DiagnosisComparison& cmp);

// Noise-tolerant variant of the side-by-side comparison: routes a
// *qualified* observation (possibly holding kMissing / kUnstable /
// kUnknownResponse entries) through the diagnosis engine for all three
// dictionary types, so each column reports the engine's staged verdict.
struct RobustDiagnosisComparison {
  EngineDiagnosis full;
  EngineDiagnosis pass_fail;
  EngineDiagnosis same_different;
};

RobustDiagnosisComparison compare_dictionaries_robust(
    const FullDictionary& full, const PassFailDictionary& pf,
    const SameDifferentDictionary& sd, const std::vector<Observed>& observed,
    const EngineOptions& options = {});

// Human-readable report of a robust comparison, including the outcome,
// confidence (margin / effective tests), and any multiple-fault cover.
std::string format_robust_diagnosis(const Netlist& nl, const FaultList& faults,
                                    const RobustDiagnosisComparison& cmp);

}  // namespace sddict
