// Side-by-side cause-effect diagnosis with all three dictionary types, plus
// quality metrics: how many candidates tie at the best match, and where the
// true fault ranks (when known).
#pragma once

#include <string>
#include <vector>

#include "dict/full_dict.h"
#include "dict/passfail_dict.h"
#include "dict/samediff_dict.h"
#include "fault/faultlist.h"

namespace sddict {

struct DictionaryDiagnosis {
  DictionaryKind kind{};
  std::vector<DiagnosisMatch> top;    // best-first
  std::size_t best_mismatches = 0;    // of the top match
  std::size_t tied_candidates = 0;    // faults tying at best_mismatches
  // Rank (1-based) of the true fault among all faults ordered by mismatch
  // count; 0 when no true fault was supplied.
  std::size_t true_fault_rank = 0;
};

struct DiagnosisComparison {
  DictionaryDiagnosis full;
  DictionaryDiagnosis pass_fail;
  DictionaryDiagnosis same_different;
};

DiagnosisComparison compare_dictionaries(const FullDictionary& full,
                                         const PassFailDictionary& pf,
                                         const SameDifferentDictionary& sd,
                                         const std::vector<ResponseId>& observed,
                                         FaultId true_fault = kNoFault,
                                         std::size_t top = 5);

// Human-readable report; `nl`/`faults` provide fault names.
std::string format_diagnosis(const Netlist& nl, const FaultList& faults,
                             const DiagnosisComparison& cmp);

}  // namespace sddict
