// PODEM (Path-Oriented DEcision Making) automatic test pattern generation
// over a combinational netlist, in two modes sharing one search engine:
//
//  * generate(fault)   — classic stuck-at ATPG with the D-calculus realized
//                        as a pair of three-valued networks (good / faulty).
//  * justify(net, v)   — find an input vector setting a net to a value in
//                        the fault-free circuit; used on miter netlists for
//                        distinguishing-test generation.
//
// Decisions are made only on primary inputs, so the search is complete:
// kUntestable is returned only after the whole decision tree is refuted.
// Backtrace/objective selection use SCOAP-style controllability and a
// distance-to-output observability estimate, but any heuristic choice only
// affects speed, never correctness.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault.h"
#include "netlist/netlist.h"
#include "tgen/valuesys.h"
#include "util/bitvec.h"
#include "util/budget.h"
#include "util/rng.h"

namespace sddict {

struct PodemOptions {
  // Decision flips allowed before giving up with kAborted.
  std::size_t backtrack_limit = 10000;
  // Unassigned inputs of a found test are filled randomly (default) or with 0.
  bool fill_random = true;
  // Deadline/cancellation for each generate()/justify() call; expiry makes
  // the search return kAborted. Callers running many ATPG calls under one
  // overall deadline refresh this per call (see BudgetScope::nested and
  // Podem::set_budget).
  RunBudget budget{};
};

enum class PodemStatus { kTestFound, kUntestable, kAborted };

const char* podem_status_name(PodemStatus s);

class Podem {
 public:
  explicit Podem(const Netlist& nl, PodemOptions options = {});

  const Netlist& netlist() const { return *nl_; }

  // Finds a test detecting the stuck-at fault, or proves none exists.
  PodemStatus generate(const StuckFault& fault, BitVec* test, Rng& rng);

  // Finds an input vector giving `target` the value `value` in the
  // fault-free circuit, or proves the value unjustifiable.
  PodemStatus justify(GateId target, bool value, BitVec* test, Rng& rng);

  // Replaces the run budget of subsequent calls (deadline anchored per
  // call, so pass a remaining-time budget, not the overall one).
  void set_budget(const RunBudget& budget) { options_.budget = budget; }

  // Search-effort statistics of the last call.
  std::size_t last_backtracks() const { return backtracks_; }
  std::size_t last_decisions() const { return decisions_; }

 private:
  enum class Check { kSuccess, kFail, kContinue };
  struct Objective {
    GateId gate = kNoGate;
    bool value = false;
  };
  struct Decision {
    GateId pi;
    bool value;
    bool flipped;
    std::size_t trail_mark = 0;  // trail size before this assignment
  };
  struct TrailEntry {
    GateId gate;
    V3 good;
    V3 faulty;
  };

  PodemStatus run(BitVec* test, Rng& rng);
  Check check();
  bool pick_objective(Objective* obj);
  // Maps an objective to a PI assignment; false when no X-input is reachable.
  bool backtrace(Objective obj, Decision* out);
  bool fallback_pi(Decision* out);
  void extract_test(BitVec* test, Rng& rng);
  bool xpath_exists();

  // Event-driven implication: assigning a PI re-evaluates only its fanout
  // cone, recording previous values on an undo trail so backtracking costs
  // O(changes) instead of O(circuit).
  void eval_gate(GateId g, V3* good_out, V3* faulty_out) const;
  void record_and_set(GateId g, V3 new_good, V3 new_faulty);
  void propagate_from(GateId source);
  void assign_pi(GateId pi, V3 value);
  void undo_to(std::size_t trail_mark);
  void full_imply();

  void compute_controllability();
  void compute_observability();

  const Netlist* nl_;
  PodemOptions options_;

  bool fault_mode_ = false;
  StuckFault fault_{};
  GateId activation_gate_ = kNoGate;  // line whose good value must be !stuck
  GateId justify_gate_ = kNoGate;
  bool justify_value_ = false;

  std::vector<V3> pi_value_;  // indexed by gate id; meaningful for inputs
  std::vector<V3> good_;
  std::vector<V3> faulty_;
  std::vector<Decision> stack_;
  std::vector<TrailEntry> trail_;
  std::size_t backtracks_ = 0;
  std::size_t decisions_ = 0;

  std::vector<std::uint32_t> cc0_, cc1_;  // SCOAP-ish controllability
  std::vector<std::uint32_t> dist_po_;    // min gates to any primary output

  // Gates reachable from the fault site (only they can differ between the
  // two networks); X-path scans are restricted to this cone.
  std::vector<GateId> cone_;

  // Scratch for frontier / X-path / event propagation.
  std::vector<GateId> frontier_;
  std::vector<std::uint8_t> visit_;
  std::vector<std::uint8_t> queued_;
  std::vector<std::vector<GateId>> level_queue_;
};

}  // namespace sddict
