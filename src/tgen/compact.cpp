#include "tgen/compact.h"

#include <algorithm>
#include <bit>

#include "compact/compact.h"
#include "sim/faultsim.h"
#include "sim/response.h"

namespace sddict {

namespace {

// detections[f] bit t = test t detects fault f.
std::vector<BitVec> detection_matrix(const Netlist& nl, const FaultList& faults,
                                     const TestSet& tests) {
  std::vector<BitVec> detections(faults.size(), BitVec(tests.size()));
  FaultSimulator fsim(nl);
  std::vector<std::uint64_t> words;
  for (std::size_t first = 0; first < tests.size(); first += 64) {
    const std::size_t count = std::min<std::size_t>(64, tests.size() - first);
    tests.pack_batch(first, count, &words);
    fsim.load_batch(words, count);
    for (FaultId i = 0; i < faults.size(); ++i) {
      std::uint64_t w = fsim.detect_word(faults[i]);
      while (w != 0) {
        const int t = std::countr_zero(w);
        w &= w - 1;
        detections[i].set(first + static_cast<std::size_t>(t), true);
      }
    }
  }
  return detections;
}

// Tests listed per fault is wasteful at scale; invert to faults per test.
std::vector<std::vector<FaultId>> faults_by_test(
    const std::vector<BitVec>& detections, std::size_t num_tests) {
  std::vector<std::vector<FaultId>> by_test(num_tests);
  for (FaultId f = 0; f < detections.size(); ++f)
    for (std::size_t t = 0; t < num_tests; ++t)
      if (detections[f].get(t)) by_test[t].push_back(f);
  return by_test;
}

}  // namespace

TestSet compact_reverse(const Netlist& nl, const FaultList& faults,
                        const TestSet& tests) {
  const std::vector<BitVec> detections = detection_matrix(nl, faults, tests);

  // Faults not yet covered by a kept test, as a worklist per test.
  std::vector<bool> covered(faults.size(), false);
  std::vector<std::size_t> keep;
  for (std::size_t t = tests.size(); t-- > 0;) {
    bool useful = false;
    for (FaultId i = 0; i < faults.size(); ++i) {
      if (!covered[i] && detections[i].get(t)) {
        covered[i] = true;
        useful = true;
      }
    }
    if (useful) keep.push_back(t);
  }
  std::reverse(keep.begin(), keep.end());
  return tests.subset(keep);
}

TestSet compact_reverse_ndetect(const Netlist& nl, const FaultList& faults,
                                const TestSet& tests, std::uint32_t n) {
  const std::vector<BitVec> detections = detection_matrix(nl, faults, tests);
  const auto by_test = faults_by_test(detections, tests.size());

  std::vector<std::uint32_t> count(faults.size(), 0);
  for (FaultId f = 0; f < faults.size(); ++f)
    count[f] = static_cast<std::uint32_t>(detections[f].count_ones());
  std::vector<std::uint32_t> need(faults.size());
  for (FaultId f = 0; f < faults.size(); ++f)
    need[f] = std::min(n, count[f]);

  std::vector<std::size_t> keep;
  for (std::size_t t = tests.size(); t-- > 0;) {
    bool droppable = true;
    for (FaultId f : by_test[t])
      if (count[f] <= need[f]) {
        droppable = false;
        break;
      }
    if (droppable) {
      for (FaultId f : by_test[t]) --count[f];
    } else {
      keep.push_back(t);
    }
  }
  std::reverse(keep.begin(), keep.end());
  return tests.subset(keep);
}

TestSet compact_reverse_diagnostic(const Netlist& nl, const FaultList& faults,
                                   const TestSet& tests) {
  const ResponseMatrix rm = build_response_matrix(nl, faults, tests);
  CompactionOptions opts;
  opts.order = CandidateOrder::kReverse;
  return compact_testset(rm, tests, opts).tests;
}

}  // namespace sddict
