// Diagnostic test set generation. A diagnostic test set aims to distinguish
// every distinguishable fault pair (full-response semantics). Three phases:
//
//   1. detection base  — a compacted 1-detect test set (random + PODEM);
//   2. random sweep    — random patterns kept only when they split some
//                        class of currently-indistinguished faults;
//   3. targeted ATPG   — for each remaining class, distinguishing-test
//                        generation on fault-pair miters, with proofs of
//                        functional equivalence memoized.
//
// The result approximates the paper's "diag" test sets: complete detection
// plus near-complete pairwise resolution under a full dictionary.
#pragma once

#include <cstdint>

#include "fault/faultlist.h"
#include "netlist/netlist.h"
#include "sim/testset.h"
#include "tgen/podem.h"
#include "tgen/randgen.h"
#include "util/budget.h"

namespace sddict {

struct DiagSetOptions {
  DiagSetOptions() { pair_podem.backtrack_limit = 2000; }

  std::uint64_t seed = 1;
  PodemOptions podem;        // detection-phase ATPG
  // Miter justification runs on a double-size circuit and mostly confronts
  // near-equivalent pairs; a tighter abort keeps hopeless searches cheap.
  PodemOptions pair_podem;
  RandomPhaseOptions random;
  // Random diagnostic sweep: stop after this many stale batches / total.
  std::size_t diag_random_batches = 200;
  std::size_t diag_random_stale = 5;
  // Phase-3 rounds and a global budget of pair-ATPG calls.
  std::size_t max_rounds = 100;
  std::size_t max_pair_atpg_calls = 100000;
  // Legacy wall-clock cap, folded into `budget` when budget.max_seconds is
  // unset (0 = unlimited). When exhausted the test set is returned as-is;
  // remaining classes stay indistinguished.
  double max_seconds = 300.0;
  // Overall run budget: deadline anchored at entry (and pushed into phase-1
  // detection and every pair-ATPG call), cancellation token, max_patterns
  // cap on the total emitted test-set size. Anytime: on expiry the tests
  // generated so far are returned with completed == false.
  RunBudget budget{};
};

struct DiagSetResult {
  TestSet tests;
  std::size_t detect_tests = 0;         // phase-1 size
  std::size_t random_diag_tests = 0;    // phase-2 additions
  std::size_t targeted_tests = 0;       // phase-3 additions
  std::uint64_t indistinguished_pairs = 0;  // full-response, final
  std::size_t equivalence_proofs = 0;   // pairs proven indistinguishable
  std::size_t aborted_pairs = 0;        // pair ATPG hit its limit
  std::size_t pair_atpg_calls = 0;
  bool completed = true;  // false when the budget cut generation short
  StopReason stop_reason = StopReason::kCompleted;
};

DiagSetResult generate_diagnostic(const Netlist& nl, const FaultList& faults,
                                  const DiagSetOptions& options = {});

}  // namespace sddict
