// Distinguishing-test (diagnostic) ATPG for a fault pair: builds the pair
// miter — two copies of the circuit with one fault injected in each, shared
// inputs, outputs XORed and OR-reduced — and justifies its output to 1.
// A satisfying vector is exactly a test under which the two faulty circuits
// produce different output vectors; proof of unjustifiability means the two
// faults are functionally indistinguishable (equivalent w.r.t. all inputs).
#pragma once

#include "fault/fault.h"
#include "netlist/netlist.h"
#include "tgen/podem.h"

namespace sddict {

enum class DistinguishStatus { kFound, kIndistinguishable, kAborted };

const char* distinguish_status_name(DistinguishStatus s);

DistinguishStatus distinguish_pair(const Netlist& nl, const StuckFault& fa,
                                   const StuckFault& fb, BitVec* test, Rng& rng,
                                   const PodemOptions& options = {});

}  // namespace sddict
