#include "tgen/podem.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace sddict {
namespace {

constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max() / 4;

std::uint32_t sat_add(std::uint32_t a, std::uint32_t b) {
  return std::min<std::uint64_t>(kInf, std::uint64_t{a} + b);
}

}  // namespace

const char* podem_status_name(PodemStatus s) {
  switch (s) {
    case PodemStatus::kTestFound: return "test-found";
    case PodemStatus::kUntestable: return "untestable";
    case PodemStatus::kAborted: return "aborted";
  }
  return "?";
}

Podem::Podem(const Netlist& nl, PodemOptions options)
    : nl_(&nl), options_(options) {
  if (nl.has_dffs()) throw std::runtime_error("Podem: run full_scan first");
  const std::size_t n = nl.num_gates();
  pi_value_.assign(n, kVX);
  good_.assign(n, kVX);
  faulty_.assign(n, kVX);
  visit_.assign(n, 0);
  queued_.assign(n, 0);
  level_queue_.resize(nl.depth() + 1);
  compute_controllability();
  compute_observability();
}

void Podem::compute_controllability() {
  const std::size_t n = nl_->num_gates();
  cc0_.assign(n, kInf);
  cc1_.assign(n, kInf);
  for (GateId g : nl_->topo_order()) {
    const Gate& gate = nl_->gate(g);
    switch (gate.type) {
      case GateType::kInput:
        cc0_[g] = cc1_[g] = 1;
        break;
      case GateType::kConst0:
        cc0_[g] = 0;
        cc1_[g] = kInf;
        break;
      case GateType::kConst1:
        cc0_[g] = kInf;
        cc1_[g] = 0;
        break;
      case GateType::kBuf:
        cc0_[g] = sat_add(cc0_[gate.fanin[0]], 1);
        cc1_[g] = sat_add(cc1_[gate.fanin[0]], 1);
        break;
      case GateType::kNot:
        cc0_[g] = sat_add(cc1_[gate.fanin[0]], 1);
        cc1_[g] = sat_add(cc0_[gate.fanin[0]], 1);
        break;
      case GateType::kAnd:
      case GateType::kNand:
      case GateType::kOr:
      case GateType::kNor: {
        const bool cv = controlling_value(gate.type);
        // Controlled response: cheapest single controlling input. Other
        // value: every input at the non-controlling value.
        std::uint32_t cheapest = kInf;
        std::uint32_t all = 1;
        for (GateId f : gate.fanin) {
          const std::uint32_t c_ctrl = cv ? cc1_[f] : cc0_[f];
          const std::uint32_t c_non = cv ? cc0_[f] : cc1_[f];
          cheapest = std::min(cheapest, c_ctrl);
          all = sat_add(all, c_non);
        }
        cheapest = sat_add(cheapest, 1);
        if (controlled_response(gate.type)) {
          cc1_[g] = cheapest;
          cc0_[g] = all;
        } else {
          cc0_[g] = cheapest;
          cc1_[g] = all;
        }
        break;
      }
      case GateType::kXor:
      case GateType::kXnor: {
        // Pairwise fold of the exact 2-input XOR SCOAP rule.
        std::uint32_t a0 = cc0_[gate.fanin[0]];
        std::uint32_t a1 = cc1_[gate.fanin[0]];
        for (std::size_t i = 1; i < gate.fanin.size(); ++i) {
          const std::uint32_t b0 = cc0_[gate.fanin[i]];
          const std::uint32_t b1 = cc1_[gate.fanin[i]];
          const std::uint32_t even = std::min(sat_add(a0, b0), sat_add(a1, b1));
          const std::uint32_t odd = std::min(sat_add(a0, b1), sat_add(a1, b0));
          a0 = even;
          a1 = odd;
        }
        if (gate.type == GateType::kXor) {
          cc0_[g] = sat_add(a0, 1);
          cc1_[g] = sat_add(a1, 1);
        } else {
          cc0_[g] = sat_add(a1, 1);
          cc1_[g] = sat_add(a0, 1);
        }
        break;
      }
      case GateType::kDff:
        throw std::logic_error("Podem: DFF in combinational netlist");
    }
  }
}

void Podem::compute_observability() {
  const std::size_t n = nl_->num_gates();
  dist_po_.assign(n, kInf);
  std::vector<GateId> queue;
  for (GateId g : nl_->outputs())
    if (dist_po_[g] == kInf) {
      dist_po_[g] = 0;
      queue.push_back(g);
    }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const GateId g = queue[head];
    for (GateId f : nl_->gate(g).fanin)
      if (dist_po_[f] == kInf) {
        dist_po_[f] = dist_po_[g] + 1;
        queue.push_back(f);
      }
  }
}

// ---------------------------------------------------------------------------
// Event-driven implication with an undo trail.
//
// Values are pure functions of the primary inputs (plus the forced fault
// site), so assigning one PI only disturbs its fanout cone: propagation
// walks that cone level by level, recording previous values on a trail so
// a backtrack restores state in O(changes) instead of O(circuit).
// ---------------------------------------------------------------------------

void Podem::eval_gate(GateId g, V3* good_out, V3* faulty_out) const {
  const Gate& gate = nl_->gate(g);
  if (gate.type == GateType::kInput) {
    *good_out = pi_value_[g];
    *faulty_out = fault_mode_ && fault_.is_output_fault() && fault_.gate == g
                      ? v3_from_bool(fault_.value != 0)
                      : pi_value_[g];
    return;
  }
  const std::size_t arity = gate.fanin.size();
  V3 buf[64];
  std::vector<V3> big;
  const V3* in;
  if (arity <= 64) {
    for (std::size_t p = 0; p < arity; ++p) buf[p] = good_[gate.fanin[p]];
    in = buf;
  } else {
    big.resize(arity);
    for (std::size_t p = 0; p < arity; ++p) big[p] = good_[gate.fanin[p]];
    in = big.data();
  }
  *good_out = eval_gate_v3(gate.type, in, arity);

  if (!fault_mode_) {
    *faulty_out = *good_out;
    return;
  }
  if (fault_.is_output_fault() && fault_.gate == g) {
    *faulty_out = v3_from_bool(fault_.value != 0);
    return;
  }
  V3 fbuf[64];
  std::vector<V3> fbig;
  const V3* fin;
  if (arity <= 64) {
    for (std::size_t p = 0; p < arity; ++p) fbuf[p] = faulty_[gate.fanin[p]];
    fin = fbuf;
  } else {
    fbig.resize(arity);
    for (std::size_t p = 0; p < arity; ++p) fbig[p] = faulty_[gate.fanin[p]];
    fin = fbig.data();
  }
  if (!fault_.is_output_fault() && fault_.gate == g) {
    if (arity <= 64)
      fbuf[static_cast<std::size_t>(fault_.pin)] = v3_from_bool(fault_.value != 0);
    else
      fbig[static_cast<std::size_t>(fault_.pin)] = v3_from_bool(fault_.value != 0);
  }
  *faulty_out = eval_gate_v3(gate.type, fin, arity);
}

void Podem::record_and_set(GateId g, V3 new_good, V3 new_faulty) {
  trail_.push_back({g, good_[g], faulty_[g]});
  good_[g] = new_good;
  faulty_[g] = new_faulty;
}

void Podem::propagate_from(GateId source) {
  const auto& levels = nl_->levels();
  for (GateId s : nl_->gate(source).fanout)
    if (!queued_[s]) {
      queued_[s] = 1;
      level_queue_[levels[s]].push_back(s);
    }
  for (std::size_t lvl = levels[source]; lvl < level_queue_.size(); ++lvl) {
    auto& bucket = level_queue_[lvl];
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const GateId g = bucket[i];
      queued_[g] = 0;
      V3 ng, nf;
      eval_gate(g, &ng, &nf);
      if (ng == good_[g] && nf == faulty_[g]) continue;
      record_and_set(g, ng, nf);
      for (GateId s : nl_->gate(g).fanout)
        if (!queued_[s]) {
          queued_[s] = 1;
          level_queue_[levels[s]].push_back(s);
        }
    }
    bucket.clear();
  }
}

void Podem::assign_pi(GateId pi, V3 value) {
  pi_value_[pi] = value;
  V3 ng, nf;
  eval_gate(pi, &ng, &nf);
  if (ng == good_[pi] && nf == faulty_[pi]) return;
  record_and_set(pi, ng, nf);
  propagate_from(pi);
}

void Podem::undo_to(std::size_t trail_mark) {
  while (trail_.size() > trail_mark) {
    const TrailEntry& e = trail_.back();
    good_[e.gate] = e.good;
    faulty_[e.gate] = e.faulty;
    trail_.pop_back();
  }
}

void Podem::full_imply() {
  trail_.clear();
  for (GateId g : nl_->topo_order()) {
    V3 ng, nf;
    eval_gate(g, &ng, &nf);
    good_[g] = ng;
    faulty_[g] = nf;
  }
}

// ---------------------------------------------------------------------------

Podem::Check Podem::check() {
  if (!fault_mode_) {
    const V3 v = good_[justify_gate_];
    if (!is_definite(v)) return Check::kContinue;
    return v3_to_bool(v) == justify_value_ ? Check::kSuccess : Check::kFail;
  }

  // Activation line must carry the opposite of the stuck value.
  const V3 act = good_[activation_gate_];
  if (is_definite(act) && v3_to_bool(act) == (fault_.value != 0))
    return Check::kFail;

  // Success: a definite good/faulty difference at some primary output.
  for (GateId po : nl_->outputs()) {
    if (is_definite(good_[po]) && is_definite(faulty_[po]) &&
        good_[po] != faulty_[po])
      return Check::kSuccess;
  }

  if (!is_definite(act)) return Check::kContinue;  // still activating

  // Activated: the effect must still be able to reach an output.
  return xpath_exists() ? Check::kContinue : Check::kFail;
}

// Builds frontier_ (gates that can still extend the fault effect) and runs
// a forward reachability pass to a primary output through X-capable gates.
bool Podem::xpath_exists() {
  frontier_.clear();
  auto maybe_diff = [&](GateId g) {
    return !is_definite(good_[g]) || !is_definite(faulty_[g]);
  };
  auto diff_definite = [&](GateId g) {
    return is_definite(good_[g]) && is_definite(faulty_[g]) &&
           good_[g] != faulty_[g];
  };

  std::vector<GateId> seeds;
  for (GateId g : cone_) {
    if (diff_definite(g)) {
      seeds.push_back(g);
      continue;
    }
    if (!maybe_diff(g)) continue;
    bool has_d_input = false;
    for (GateId f : nl_->gate(g).fanin)
      if (diff_definite(f)) {
        has_d_input = true;
        break;
      }
    // The pin-fault site can originate a difference its fanins do not show.
    if (!has_d_input && !fault_.is_output_fault() && fault_.gate == g) {
      const V3 line =
          good_[nl_->gate(g).fanin[static_cast<std::size_t>(fault_.pin)]];
      if (!is_definite(line) || v3_to_bool(line) != (fault_.value != 0))
        has_d_input = true;
    }
    if (has_d_input) {
      seeds.push_back(g);
      frontier_.push_back(g);
    }
  }
  if (seeds.empty()) return false;

  std::fill(visit_.begin(), visit_.end(), 0);
  std::vector<GateId> queue;
  for (GateId g : seeds) {
    visit_[g] = 1;
    queue.push_back(g);
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const GateId g = queue[head];
    if (nl_->is_output(g)) return true;
    for (GateId s : nl_->gate(g).fanout) {
      if (visit_[s] || !maybe_diff(s)) continue;
      visit_[s] = 1;
      queue.push_back(s);
    }
  }
  return false;
}

bool Podem::pick_objective(Objective* obj) {
  if (fault_mode_) {
    const V3 act = good_[activation_gate_];
    if (!is_definite(act)) {
      *obj = {activation_gate_, fault_.value == 0};
      return true;
    }
    // frontier_ is fresh: check() ran xpath_exists() on this state.
    GateId best = kNoGate;
    for (GateId g : frontier_) {
      bool has_x_input = false;
      for (GateId f : nl_->gate(g).fanin)
        if (!is_definite(good_[f])) {
          has_x_input = true;
          break;
        }
      if (!has_x_input) continue;
      if (best == kNoGate || dist_po_[g] < dist_po_[best]) best = g;
    }
    if (best == kNoGate) return false;
    const Gate& gate = nl_->gate(best);
    if (has_controlling_value(gate.type)) {
      const bool noncontrolling = !controlling_value(gate.type);
      for (GateId f : gate.fanin)
        if (!is_definite(good_[f])) {
          *obj = {f, noncontrolling};
          return true;
        }
    } else {
      for (GateId f : gate.fanin)
        if (!is_definite(good_[f])) {
          *obj = {f, false};
          return true;
        }
    }
    return false;
  }

  const V3 v = good_[justify_gate_];
  if (is_definite(v)) return false;
  *obj = {justify_gate_, justify_value_};
  return true;
}

bool Podem::backtrace(Objective obj, Decision* out) {
  GateId g = obj.gate;
  bool v = obj.value;
  for (std::size_t steps = 0; steps <= nl_->num_gates(); ++steps) {
    const Gate& gate = nl_->gate(g);
    if (gate.type == GateType::kInput) {
      if (is_definite(pi_value_[g])) return false;  // already decided
      *out = {g, v, false};
      return true;
    }
    if (gate.type == GateType::kConst0 || gate.type == GateType::kConst1)
      return false;  // cannot influence a constant

    switch (gate.type) {
      case GateType::kBuf:
        g = gate.fanin[0];
        break;
      case GateType::kNot:
        g = gate.fanin[0];
        v = !v;
        break;
      case GateType::kAnd:
      case GateType::kNand:
      case GateType::kOr:
      case GateType::kNor: {
        const bool inv = is_inverting(gate.type);
        const bool u = v != inv;  // target in the AND/OR sense
        const bool cv = controlling_value(gate.type);
        GateId pick = kNoGate;
        if (u != cv) {
          // All inputs must take the non-controlling value: attack the
          // hardest X input first to fail fast.
          std::uint32_t worst = 0;
          for (GateId f : gate.fanin) {
            if (is_definite(good_[f])) continue;
            const std::uint32_t cost = u ? cc1_[f] : cc0_[f];
            if (pick == kNoGate || cost > worst) {
              pick = f;
              worst = cost;
            }
          }
        } else {
          // One controlling input suffices: take the cheapest X input.
          std::uint32_t bestc = kInf;
          for (GateId f : gate.fanin) {
            if (is_definite(good_[f])) continue;
            const std::uint32_t cost = cv ? cc1_[f] : cc0_[f];
            if (pick == kNoGate || cost < bestc) {
              pick = f;
              bestc = cost;
            }
          }
        }
        if (pick == kNoGate) return false;
        g = pick;
        v = u;
        break;
      }
      case GateType::kXor:
      case GateType::kXnor: {
        bool parity = gate.type == GateType::kXnor;
        GateId pick = kNoGate;
        for (GateId f : gate.fanin) {
          if (is_definite(good_[f])) {
            parity ^= v3_to_bool(good_[f]);
          } else if (pick == kNoGate) {
            pick = f;
          }
        }
        if (pick == kNoGate) return false;
        // Assume the remaining X inputs settle to 0.
        g = pick;
        v = v != parity;
        break;
      }
      default:
        return false;
    }
  }
  return false;
}

bool Podem::fallback_pi(Decision* out) {
  for (GateId g : nl_->inputs())
    if (!is_definite(pi_value_[g])) {
      *out = {g, false, false};
      return true;
    }
  return false;
}

void Podem::extract_test(BitVec* test, Rng& rng) {
  *test = BitVec(nl_->num_inputs());
  for (std::size_t i = 0; i < nl_->num_inputs(); ++i) {
    const GateId g = nl_->inputs()[i];
    if (is_definite(pi_value_[g]))
      test->set(i, v3_to_bool(pi_value_[g]));
    else
      test->set(i, options_.fill_random ? rng.coin() : false);
  }
}

PodemStatus Podem::run(BitVec* test, Rng& rng) {
  stack_.clear();
  backtracks_ = 0;
  decisions_ = 0;
  for (GateId g : nl_->inputs()) pi_value_[g] = kVX;
  full_imply();

  BudgetScope scope(options_.budget);
  while (true) {
    // Budget expiry is reported like a backtrack-limit abort: the caller
    // already handles kAborted as "gave up on this fault".
    if (((decisions_ + backtracks_) & 63) == 0 && scope.stop())
      return PodemStatus::kAborted;
    const Check c = check();
    if (c == Check::kSuccess) {
      extract_test(test, rng);
      return PodemStatus::kTestFound;
    }
    bool need_backtrack = c == Check::kFail;
    if (!need_backtrack) {
      Objective obj;
      Decision d;
      bool have_decision = false;
      if (pick_objective(&obj) && backtrace(obj, &d)) have_decision = true;
      if (!have_decision && fallback_pi(&d)) have_decision = true;
      if (have_decision) {
        ++decisions_;
        d.trail_mark = trail_.size();
        stack_.push_back(d);
        assign_pi(d.pi, v3_from_bool(d.value));
        continue;
      }
      // All inputs assigned but no success: dead end.
      need_backtrack = true;
    }
    // Backtrack: discard exhausted decisions, flip the newest open one.
    while (!stack_.empty() && stack_.back().flipped) {
      undo_to(stack_.back().trail_mark);
      pi_value_[stack_.back().pi] = kVX;
      stack_.pop_back();
    }
    if (stack_.empty()) return PodemStatus::kUntestable;
    if (++backtracks_ > options_.backtrack_limit) return PodemStatus::kAborted;
    Decision& top = stack_.back();
    undo_to(top.trail_mark);
    top.flipped = true;
    top.value = !top.value;
    assign_pi(top.pi, v3_from_bool(top.value));
  }
}

PodemStatus Podem::generate(const StuckFault& fault, BitVec* test, Rng& rng) {
  fault_mode_ = true;
  fault_ = fault;
  activation_gate_ = fault.is_output_fault()
                         ? fault.gate
                         : nl_->gate(fault.gate)
                               .fanin[static_cast<std::size_t>(fault.pin)];
  // Faults with no structural path to an output are untestable outright.
  if (dist_po_[fault.gate] == kInf && !nl_->is_output(fault.gate))
    return PodemStatus::kUntestable;

  // Fanout cone of the fault site, in topological order (the only gates
  // whose good/faulty values can ever differ).
  cone_.clear();
  std::fill(visit_.begin(), visit_.end(), 0);
  std::vector<GateId> queue{fault.gate};
  visit_[fault.gate] = 1;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const GateId g = queue[head];
    for (GateId s : nl_->gate(g).fanout)
      if (!visit_[s]) {
        visit_[s] = 1;
        queue.push_back(s);
      }
  }
  for (GateId g : nl_->topo_order())
    if (visit_[g]) cone_.push_back(g);

  return run(test, rng);
}

PodemStatus Podem::justify(GateId target, bool value, BitVec* test, Rng& rng) {
  fault_mode_ = false;
  justify_gate_ = target;
  justify_value_ = value;
  return run(test, rng);
}

}  // namespace sddict
