// n-detection test set generation: every testable fault is detected by at
// least n distinct tests (as many as possible for hard faults). A random
// phase covers the bulk cheaply; PODEM with randomized X-fill then tops up
// every fault whose detection count is still short.
#pragma once

#include <cstdint>

#include "fault/faultlist.h"
#include "netlist/netlist.h"
#include "sim/testset.h"
#include "tgen/podem.h"
#include "tgen/randgen.h"
#include "util/budget.h"

namespace sddict {

struct NDetectOptions {
  std::size_t n = 10;
  std::uint64_t seed = 1;
  RandomPhaseOptions random;
  PodemOptions podem;
  // Deterministic top-up attempts per missing detection (PODEM may emit the
  // same test twice under unlucky fills; extra attempts compensate).
  std::size_t attempts_per_slot = 2;
  // Legacy wall-clock cap, folded into `budget` when budget.max_seconds is
  // unset (0 = unlimited); faults not topped up in time keep whatever
  // detections they have.
  double max_seconds = 300.0;
  // Overall run budget (deadline anchored at entry, cancellation token,
  // max_patterns cap on emitted tests). Anytime: on expiry the test set
  // generated so far is compacted and returned with completed == false.
  RunBudget budget{};
};

struct NDetectResult {
  TestSet tests;
  std::vector<std::uint32_t> detections;  // per fault, over the final set
  std::size_t untestable_faults = 0;
  std::size_t aborted_faults = 0;  // hit the backtrack limit at least once
  std::size_t random_patterns = 0;
  std::size_t atpg_patterns = 0;
  bool completed = true;  // false when the budget cut generation short
  StopReason stop_reason = StopReason::kCompleted;
};

NDetectResult generate_ndetect(const Netlist& nl, const FaultList& faults,
                               const NDetectOptions& options = {});

// Convenience: a plain detection (1-detect) test set, reverse-compacted.
struct DetectResult {
  TestSet tests;
  std::size_t detected_faults = 0;
  std::size_t untestable_faults = 0;
  std::size_t aborted_faults = 0;
  // Per-fault flag: PODEM *proved* the fault untestable. An untestable
  // fault's response is always the fault-free response, so two proven-
  // untestable faults are provably indistinguishable by any test.
  std::vector<std::uint8_t> untestable;
  bool completed = true;
  StopReason stop_reason = StopReason::kCompleted;
};

// `max_seconds` bounds the deterministic phase (0 = unlimited) and is
// folded into `budget` the same way NDetectOptions does; faults not
// reached in time simply stay untargeted.
DetectResult generate_detect(const Netlist& nl, const FaultList& faults,
                             std::uint64_t seed = 1,
                             const PodemOptions& podem = {},
                             const RandomPhaseOptions& random = {},
                             double max_seconds = 300.0,
                             const RunBudget& budget = {});

}  // namespace sddict
