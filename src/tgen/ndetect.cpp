#include "tgen/ndetect.h"

#include <bit>

#include "sim/faultsim.h"
#include "tgen/compact.h"
#include "util/log.h"

namespace sddict {
namespace {

// Fault-simulates a single test and credits detection counts (capped at
// `cap` so saturated faults stop accumulating).
void credit_test(FaultSimulator& fsim, const FaultList& faults,
                 const TestSet& tests, std::size_t test_index,
                 std::vector<std::uint32_t>* det, std::uint32_t cap) {
  std::vector<std::uint64_t> words;
  tests.pack_batch(test_index, 1, &words);
  fsim.load_batch(words, 1);
  for (FaultId i = 0; i < faults.size(); ++i) {
    if ((*det)[i] >= cap) continue;
    if (fsim.detect_word(faults[i]) != 0) ++(*det)[i];
  }
}

}  // namespace

NDetectResult generate_ndetect(const Netlist& nl, const FaultList& faults,
                               const NDetectOptions& options) {
  NDetectResult res;
  res.tests = TestSet(nl.num_inputs());
  res.detections.assign(faults.size(), 0);
  Rng rng(options.seed);

  res.random_patterns = random_phase(nl, faults, options.n, &res.tests,
                                     &res.detections, rng, options.random);

  Podem podem(nl, options.podem);
  FaultSimulator fsim(nl);
  std::vector<bool> untestable(faults.size(), false);
  std::vector<bool> aborted(faults.size(), false);

  BudgetScope scope(fold_legacy_deadline(options.budget, options.max_seconds));
  const std::size_t max_patterns = options.budget.max_patterns;
  for (FaultId i = 0; i < faults.size(); ++i) {
    if (max_patterns > 0 && res.tests.size() >= max_patterns)
      scope.trip(StopReason::kMaxPatterns);
    if (scope.stop()) break;
    std::size_t attempts =
        options.attempts_per_slot * options.n;  // overall budget per fault
    while (res.detections[i] < options.n && attempts-- > 0 && !untestable[i]) {
      BitVec test;
      podem.set_budget(scope.nested());
      const PodemStatus st = podem.generate(faults[i], &test, rng);
      if (st == PodemStatus::kUntestable) {
        untestable[i] = true;
        break;
      }
      if (st == PodemStatus::kAborted) {
        aborted[i] = true;
        break;
      }
      res.tests.add(std::move(test));
      ++res.atpg_patterns;
      credit_test(fsim, faults, res.tests, res.tests.size() - 1,
                  &res.detections, static_cast<std::uint32_t>(options.n));
      if (max_patterns > 0 && res.tests.size() >= max_patterns) {
        scope.trip(StopReason::kMaxPatterns);
        break;
      }
    }
  }

  for (FaultId i = 0; i < faults.size(); ++i) {
    res.untestable_faults += untestable[i] ? 1 : 0;
    res.aborted_faults += aborted[i] ? 1 : 0;
  }

  // The greedy random phase over-collects; drop every test whose removal
  // keeps all faults at min(n, achievable) detections.
  res.tests = compact_reverse_ndetect(nl, faults, res.tests,
                                      static_cast<std::uint32_t>(options.n));
  res.detections = count_detections(nl, faults, res.tests);
  res.completed = !scope.stopped();
  res.stop_reason = scope.reason();

  LOG_DEBUG << "ndetect(" << nl.name() << "): " << res.tests.size() << " tests ("
            << res.random_patterns << " random + " << res.atpg_patterns
            << " atpg), " << res.untestable_faults << " untestable, "
            << res.aborted_faults << " aborted";
  return res;
}

DetectResult generate_detect(const Netlist& nl, const FaultList& faults,
                             std::uint64_t seed, const PodemOptions& podem_opts,
                             const RandomPhaseOptions& random_opts,
                             double max_seconds, const RunBudget& budget) {
  DetectResult res;
  res.untestable.assign(faults.size(), 0);
  Rng rng(seed);
  TestSet tests(nl.num_inputs());
  std::vector<std::uint32_t> det(faults.size(), 0);
  random_phase(nl, faults, 1, &tests, &det, rng, random_opts);

  Podem podem(nl, podem_opts);
  FaultSimulator fsim(nl);
  BudgetScope scope(fold_legacy_deadline(budget, max_seconds));
  const std::size_t max_patterns = budget.max_patterns;
  for (FaultId i = 0; i < faults.size(); ++i) {
    if (det[i] > 0) continue;
    if (max_patterns > 0 && tests.size() >= max_patterns)
      scope.trip(StopReason::kMaxPatterns);
    if (scope.stop()) break;
    BitVec test;
    podem.set_budget(scope.nested());
    const PodemStatus st = podem.generate(faults[i], &test, rng);
    if (st == PodemStatus::kUntestable) {
      ++res.untestable_faults;
      res.untestable[i] = 1;
      continue;
    }
    if (st == PodemStatus::kAborted) {
      ++res.aborted_faults;
      continue;
    }
    tests.add(std::move(test));
    credit_test(fsim, faults, tests, tests.size() - 1, &det, 1);
  }
  for (std::uint32_t d : det) res.detected_faults += d > 0 ? 1 : 0;
  res.tests = compact_reverse(nl, faults, tests);
  res.completed = !scope.stopped();
  res.stop_reason = scope.reason();
  LOG_DEBUG << "detect(" << nl.name() << "): " << res.tests.size()
            << " tests after compaction, " << res.detected_faults << "/"
            << faults.size() << " detected";
  return res;
}

}  // namespace sddict
