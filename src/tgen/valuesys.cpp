#include "tgen/valuesys.h"

#include <stdexcept>

namespace sddict {

V3 eval_gate_v3(GateType t, const V3* in, std::size_t n) {
  switch (t) {
    case GateType::kInput:
      throw std::logic_error("eval_gate_v3: INPUT has no function");
    case GateType::kDff:
      throw std::logic_error("eval_gate_v3: DFF must be removed by full-scan");
    case GateType::kConst0:
      return kV0;
    case GateType::kConst1:
      return kV1;
    case GateType::kBuf:
      return in[0];
    case GateType::kNot:
      return v3_not(in[0]);
    case GateType::kAnd:
    case GateType::kNand: {
      // Output can be 1 iff all inputs can be 1; can be 0 iff some input can
      // be 0.
      std::uint8_t can1 = 1, can0 = 0;
      for (std::size_t i = 0; i < n; ++i) {
        can1 &= (in[i] >> 1) & 1;
        can0 |= in[i] & 1;
      }
      const V3 v = static_cast<V3>((can1 << 1) | can0);
      return t == GateType::kNand ? v3_not(v) : v;
    }
    case GateType::kOr:
    case GateType::kNor: {
      std::uint8_t can0 = 1, can1 = 0;
      for (std::size_t i = 0; i < n; ++i) {
        can0 &= in[i] & 1;
        can1 |= (in[i] >> 1) & 1;
      }
      const V3 v = static_cast<V3>((can1 << 1) | can0);
      return t == GateType::kNor ? v3_not(v) : v;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      // Any X input makes the output X (every input always affects XOR).
      bool parity = t == GateType::kXnor;  // XNOR = NOT(XOR)
      for (std::size_t i = 0; i < n; ++i) {
        if (!is_definite(in[i])) return kVX;
        parity ^= v3_to_bool(in[i]);
      }
      return v3_from_bool(parity);
    }
  }
  throw std::logic_error("eval_gate_v3: bad gate type");
}

}  // namespace sddict
