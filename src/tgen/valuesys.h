// Three-valued logic (0, 1, X) used by the PODEM test generator. Values are
// encoded as "possibility masks": bit 0 = can be 0, bit 1 = can be 1. The
// mask form makes gate evaluation branch-free for the monotone gates and
// keeps X-contamination exact for XOR/XNOR.
#pragma once

#include <cstdint>

#include "netlist/gate.h"

namespace sddict {

enum V3 : std::uint8_t {
  kV0 = 0b01,  // definitely 0
  kV1 = 0b10,  // definitely 1
  kVX = 0b11,  // unknown
};

inline bool is_definite(V3 v) { return v != kVX; }
inline V3 v3_from_bool(bool b) { return b ? kV1 : kV0; }
inline bool v3_to_bool(V3 v) { return v == kV1; }
inline V3 v3_not(V3 v) {
  return static_cast<V3>(((v & 1) << 1) | ((v >> 1) & 1));
}

// Evaluates a gate over three-valued fanins.
V3 eval_gate_v3(GateType t, const V3* in, std::size_t n);

}  // namespace sddict
