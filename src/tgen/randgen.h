// Random-pattern test generation phase: simulate 64-pattern random batches
// and keep the patterns that raise some fault's detection count toward a
// target. Used to cheaply cover the easy faults before deterministic ATPG
// targets the stragglers, both for 1-detect and n-detect flows.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/faultlist.h"
#include "netlist/netlist.h"
#include "sim/testset.h"
#include "util/rng.h"

namespace sddict {

struct RandomPhaseOptions {
  // Stop after this many batches total.
  std::size_t max_batches = 200;
  // ... or after this many consecutive batches kept no pattern.
  std::size_t stale_batches = 5;
};

// Appends useful random patterns to `tests`, crediting `det_counts` (one
// entry per fault, updated in place) up to `target_detections` per fault.
// Returns the number of patterns kept.
std::size_t random_phase(const Netlist& nl, const FaultList& faults,
                         std::size_t target_detections, TestSet* tests,
                         std::vector<std::uint32_t>* det_counts, Rng& rng,
                         const RandomPhaseOptions& options = {});

}  // namespace sddict
