#include "tgen/distinguish.h"

#include "netlist/transform.h"

namespace sddict {

const char* distinguish_status_name(DistinguishStatus s) {
  switch (s) {
    case DistinguishStatus::kFound: return "found";
    case DistinguishStatus::kIndistinguishable: return "indistinguishable";
    case DistinguishStatus::kAborted: return "aborted";
  }
  return "?";
}

DistinguishStatus distinguish_pair(const Netlist& nl, const StuckFault& fa,
                                   const StuckFault& fb, BitVec* test, Rng& rng,
                                   const PodemOptions& options) {
  const Netlist miter = build_pair_miter(nl, to_injection(fa), to_injection(fb));
  Podem podem(miter, options);
  const GateId out = miter.outputs()[0];
  switch (podem.justify(out, true, test, rng)) {
    case PodemStatus::kTestFound:
      return DistinguishStatus::kFound;
    case PodemStatus::kUntestable:
      return DistinguishStatus::kIndistinguishable;
    case PodemStatus::kAborted:
      return DistinguishStatus::kAborted;
  }
  return DistinguishStatus::kAborted;
}

}  // namespace sddict
