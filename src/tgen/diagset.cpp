#include "tgen/diagset.h"

#include <bit>
#include <unordered_map>
#include <unordered_set>

#include "dict/partition.h"
#include "sim/faultsim.h"
#include "tgen/distinguish.h"
#include "tgen/ndetect.h"
#include "util/hash.h"
#include "util/log.h"
#include "util/timer.h"

namespace sddict {
namespace {

// Full-response labels of every fault for each pattern of one batch:
// labels[t][fault] is a small id, 0 = fault-free response. Ids are local to
// the (batch, pattern) and only meaningful for equality tests.
std::vector<std::vector<std::uint32_t>> batch_response_labels(
    FaultSimulator& fsim, const FaultList& faults, const TestSet& tests,
    std::size_t first, std::size_t count) {
  std::vector<std::uint64_t> words;
  tests.pack_batch(first, count, &words);
  fsim.load_batch(words, count);

  std::vector<std::vector<std::uint32_t>> labels(
      count, std::vector<std::uint32_t>(faults.size(), 0));
  std::vector<std::unordered_map<Hash128, std::uint32_t, Hash128Hasher>> intern(
      count);

  Hash128 sig[64];
  std::vector<std::pair<std::size_t, std::uint64_t>> diffs;
  for (FaultId i = 0; i < faults.size(); ++i) {
    diffs.clear();
    const std::uint64_t any =
        fsim.simulate_fault(faults[i], [&](std::size_t o, std::uint64_t w) {
          diffs.push_back({o, w});
        });
    if (any == 0) continue;
    for (const auto& [o, w] : diffs) {
      const Hash128 tok = slot_token(o, 1);
      std::uint64_t bits = w;
      while (bits != 0) {
        const int t = std::countr_zero(bits);
        bits &= bits - 1;
        sig[t] ^= tok;
      }
    }
    std::uint64_t dirty = any;
    while (dirty != 0) {
      const int t = std::countr_zero(dirty);
      dirty &= dirty - 1;
      auto& table = intern[static_cast<std::size_t>(t)];
      auto [it, inserted] = table.try_emplace(
          sig[t], static_cast<std::uint32_t>(table.size() + 1));
      labels[static_cast<std::size_t>(t)][i] = it->second;
      sig[t] = Hash128{};
    }
  }
  return labels;
}

// Refines the partition with the full responses of tests [first, end).
void refine_with_tests(Partition* part, FaultSimulator& fsim,
                       const FaultList& faults, const TestSet& tests,
                       std::size_t first) {
  for (std::size_t b = first; b < tests.size(); b += 64) {
    const std::size_t count = std::min<std::size_t>(64, tests.size() - b);
    const auto labels = batch_response_labels(fsim, faults, tests, b, count);
    for (std::size_t t = 0; t < count; ++t) part->refine(labels[t]);
  }
}

std::uint64_t pair_key(FaultId a, FaultId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

}  // namespace

DiagSetResult generate_diagnostic(const Netlist& nl, const FaultList& faults,
                                  const DiagSetOptions& options) {
  DiagSetResult res;
  Rng rng(options.seed);
  Timer budget;
  BudgetScope scope(fold_legacy_deadline(options.budget, options.max_seconds));
  const std::size_t max_patterns = options.budget.max_patterns;
  // Polls deadline/cancellation and the emitted-pattern cap in one place.
  const auto out_of_budget = [&] {
    if (max_patterns > 0 && res.tests.size() >= max_patterns)
      scope.trip(StopReason::kMaxPatterns);
    return scope.stop();
  };

  // Phase 1: detection base (shares the overall deadline and token; its own
  // legacy 300 s cap applies only when this run is otherwise unbudgeted).
  DetectResult det = generate_detect(nl, faults, rng.next(), options.podem,
                                     options.random, 300.0, scope.nested());
  res.tests = std::move(det.tests);
  res.detect_tests = res.tests.size();
  LOG_DEBUG << "diagset(" << nl.name() << "): phase1 done at "
            << budget.seconds() << "s, " << res.detect_tests << " tests";

  Partition part(faults.size());
  FaultSimulator fsim(nl);
  refine_with_tests(&part, fsim, faults, res.tests, 0);
  LOG_DEBUG << "diagset(" << nl.name() << "): initial refine at "
            << budget.seconds() << "s, " << part.indistinguished_pairs()
            << " pairs open";

  // Phase 2: random diagnostic sweep — keep patterns that split classes.
  std::size_t stale = 0;
  for (std::size_t batch = 0; batch < options.diag_random_batches &&
                              stale < options.diag_random_stale &&
                              !part.fully_refined() && !out_of_budget();
       ++batch) {
    TestSet candidates(nl.num_inputs());
    candidates.add_random(64, rng);
    const auto labels = batch_response_labels(fsim, faults, candidates, 0, 64);
    std::size_t kept = 0;
    for (std::size_t t = 0; t < 64; ++t) {
      if (max_patterns > 0 && res.tests.size() >= max_patterns) {
        scope.trip(StopReason::kMaxPatterns);
        break;
      }
      if (part.refine(labels[t]) > 0) {
        res.tests.add(candidates[t]);
        ++kept;
      }
    }
    res.random_diag_tests += kept;
    stale = kept == 0 ? stale + 1 : 0;
  }
  LOG_DEBUG << "diagset(" << nl.name() << "): phase2 done at "
            << budget.seconds() << "s, +" << res.random_diag_tests
            << " tests, " << part.indistinguished_pairs() << " pairs open";

  // Phase 3: targeted pair ATPG on the remaining classes.
  std::unordered_set<std::uint64_t> settled;  // proven equivalent or aborted
  for (std::size_t round = 0;
       round < options.max_rounds && !part.fully_refined() && !out_of_budget();
       ++round) {
    if (res.pair_atpg_calls >= options.max_pair_atpg_calls) break;
    const std::size_t before = res.tests.size();

    // Snapshot classes (refinement below happens after the round).
    const auto classes = part.classes();
    for (const auto& members : classes) {
      if (members.size() < 2) continue;
      if (res.pair_atpg_calls >= options.max_pair_atpg_calls) break;
      if (out_of_budget()) break;
      const FaultId a = members[0];
      for (std::size_t j = 1; j < members.size(); ++j) {
        const FaultId b = members[j];
        if (settled.count(pair_key(a, b))) continue;
        // Two proven-untestable faults both always produce the fault-free
        // response: provably indistinguishable, no ATPG needed.
        if (det.untestable[a] && det.untestable[b]) {
          settled.insert(pair_key(a, b));
          ++res.equivalence_proofs;
          continue;
        }
        ++res.pair_atpg_calls;
        BitVec test;
        PodemOptions pair_opts = options.pair_podem;
        pair_opts.budget = scope.nested();
        const DistinguishStatus st = distinguish_pair(
            nl, faults[a], faults[b], &test, rng, pair_opts);
        if (st == DistinguishStatus::kFound) {
          res.tests.add(std::move(test));
          ++res.targeted_tests;
          break;  // one new test per class per round
        }
        settled.insert(pair_key(a, b));
        if (st == DistinguishStatus::kIndistinguishable)
          ++res.equivalence_proofs;
        else
          ++res.aborted_pairs;
        if (res.pair_atpg_calls >= options.max_pair_atpg_calls) break;
      }
    }

    if (res.tests.size() == before) break;  // no class made progress
    refine_with_tests(&part, fsim, faults, res.tests, before);
    LOG_DEBUG << "diagset(" << nl.name() << "): round " << round << " at "
              << budget.seconds() << "s, +" << (res.tests.size() - before)
              << " tests, " << part.indistinguished_pairs() << " pairs open, "
              << res.pair_atpg_calls << " atpg calls";
  }

  res.indistinguished_pairs = part.indistinguished_pairs();
  res.completed = !scope.stopped();
  res.stop_reason = scope.reason();
  LOG_DEBUG << "diagset(" << nl.name() << "): " << res.tests.size() << " tests ("
            << res.detect_tests << " det + " << res.random_diag_tests
            << " rand + " << res.targeted_tests << " atpg), "
            << res.indistinguished_pairs << " pairs left, "
            << res.equivalence_proofs << " equivalence proofs";
  return res;
}

}  // namespace sddict
