// Reverse-order test-set compaction: walk the test set from the last test
// to the first, keeping a test only if it detects some fault not detected
// by the tests already kept. Classic static compaction for detection test
// sets (later ATPG tests tend to be more specific, hence reverse order).
#pragma once

#include "fault/faultlist.h"
#include "netlist/netlist.h"
#include "sim/testset.h"

namespace sddict {

TestSet compact_reverse(const Netlist& nl, const FaultList& faults,
                        const TestSet& tests);

// n-detect-aware variant: a test is dropped only if every fault it detects
// still has at least min(n, achievable) detections without it, where
// `achievable` is the fault's detection count under the full set. The
// result therefore preserves each fault's n-detect coverage exactly.
TestSet compact_reverse_ndetect(const Netlist& nl, const FaultList& faults,
                                const TestSet& tests, std::uint32_t n);

// Diagnostic variant: preserves full-response pair DISTINGUISHABILITY
// instead of detection coverage — a test is dropped only when removing it
// merges no equivalence classes of the full-response fault partition. The
// same reverse-order walk as compact_reverse, run through the shared
// src/compact planner (which generalizes it with AD-index ordering, lossy
// budgets and packed-store front ends).
TestSet compact_reverse_diagnostic(const Netlist& nl, const FaultList& faults,
                                   const TestSet& tests);

}  // namespace sddict
