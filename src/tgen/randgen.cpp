#include "tgen/randgen.h"

#include <bit>
#include <stdexcept>

#include "sim/faultsim.h"

namespace sddict {

std::size_t random_phase(const Netlist& nl, const FaultList& faults,
                         std::size_t target_detections, TestSet* tests,
                         std::vector<std::uint32_t>* det_counts, Rng& rng,
                         const RandomPhaseOptions& options) {
  if (det_counts->size() != faults.size())
    throw std::invalid_argument("random_phase: det_counts size mismatch");

  FaultSimulator fsim(nl);
  std::size_t kept_total = 0;
  std::size_t stale = 0;

  // (pattern slot -> faults it detects) for the current batch.
  std::vector<std::vector<FaultId>> by_pattern(64);

  for (std::size_t batch = 0;
       batch < options.max_batches && stale < options.stale_batches; ++batch) {
    TestSet candidates(nl.num_inputs());
    candidates.add_random(64, rng);
    std::vector<std::uint64_t> words;
    candidates.pack_batch(0, 64, &words);
    fsim.load_batch(words, 64);

    for (auto& v : by_pattern) v.clear();
    bool anyone_needs = false;
    for (FaultId i = 0; i < faults.size(); ++i) {
      if ((*det_counts)[i] >= target_detections) continue;
      anyone_needs = true;
      std::uint64_t w = fsim.detect_word(faults[i]);
      while (w != 0) {
        const int t = std::countr_zero(w);
        w &= w - 1;
        by_pattern[static_cast<std::size_t>(t)].push_back(i);
      }
    }
    if (!anyone_needs) break;

    std::size_t kept_this_batch = 0;
    for (std::size_t t = 0; t < 64; ++t) {
      bool useful = false;
      for (FaultId i : by_pattern[t]) {
        if ((*det_counts)[i] < target_detections) {
          ++(*det_counts)[i];
          useful = true;
        }
      }
      if (useful) {
        tests->add(candidates[t]);
        ++kept_this_batch;
      }
    }
    kept_total += kept_this_batch;
    stale = kept_this_batch == 0 ? stale + 1 : 0;
  }
  return kept_total;
}

}  // namespace sddict
