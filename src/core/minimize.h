// Resolution-preserving test-set minimization (the dictionary-size-
// reduction theme of the paper's references [2], [9], [13]): greedily drop
// tests whose column adds no diagnostic resolution to a given dictionary
// type. Every dictionary's size is linear in the number of tests, so each
// dropped test shrinks full, pass/fail and same/different dictionaries
// alike.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/response.h"

namespace sddict {

struct MinimizeResult {
  // Indices of the kept tests, ascending.
  std::vector<std::size_t> kept_tests;
  std::uint64_t indistinguished_pairs = 0;  // unchanged by construction
  std::size_t dropped = 0;
};

// Minimizes with respect to *full-response* resolution: after dropping, the
// partition of faults by their (kept-column) response rows is unchanged.
// Scans tests in reverse order (late tests tend to be the targeted,
// irreplaceable ones in generated sets, so reverse scanning drops the
// redundant early coverage first — the classic ordering).
MinimizeResult minimize_tests_full(const ResponseMatrix& rm);

// Minimizes with respect to a same/different dictionary's resolution under
// the given baselines: drops test columns (and their baselines) while the
// row-signature partition is unchanged. Returns kept test indices; the
// caller subsets both the test set and the baseline vector with them.
MinimizeResult minimize_tests_samediff(const ResponseMatrix& rm,
                                       const std::vector<ResponseId>& baselines);

}  // namespace sddict
