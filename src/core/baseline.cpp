#include "core/baseline.h"

#include <numeric>

#include "util/log.h"
#include "util/rng.h"

namespace sddict {

std::vector<std::uint64_t> candidate_dist(const ResponseMatrix& rm,
                                          std::size_t test,
                                          const Partition& partition) {
  const std::size_t num_candidates = rm.num_distinct(test);
  std::vector<std::uint64_t> dist(num_candidates, 0);
  std::vector<std::uint32_t> cnt(num_candidates, 0);
  std::vector<ResponseId> touched;
  for (const auto& members : partition.classes()) {
    if (members.size() < 2) continue;
    touched.clear();
    for (std::uint32_t f : members) {
      const ResponseId r = rm.response(f, test);
      if (cnt[r]++ == 0) touched.push_back(r);
    }
    for (ResponseId r : touched) {
      dist[r] += static_cast<std::uint64_t>(cnt[r]) * (members.size() - cnt[r]);
      cnt[r] = 0;
    }
  }
  return dist;
}

ResponseId scan_with_lower(const std::vector<std::uint64_t>& dist,
                           std::size_t lower) {
  // Procedure 1, steps 3b/3c: best_dist starts below every real score;
  // `lower` counts consecutive candidates scoring strictly below the best.
  ResponseId best_id = 0;
  bool have_best = false;
  std::uint64_t best = 0;
  std::size_t low_run = 0;
  for (ResponseId z = 0; z < dist.size(); ++z) {
    if (!have_best || dist[z] > best) {
      best = dist[z];
      best_id = z;
      have_best = true;
      low_run = 0;
    } else if (dist[z] < best) {
      if (++low_run == lower) break;
    }
  }
  return best_id;
}

BaselineSelection procedure1_single(const ResponseMatrix& rm,
                                    const std::vector<std::size_t>& order,
                                    std::size_t lower) {
  BaselineSelection sel;
  sel.baselines.assign(rm.num_tests(), 0);
  Partition part(rm.num_faults());
  const std::uint64_t total_pairs = Partition::pairs(rm.num_faults());

  for (std::size_t j : order) {
    if (part.fully_refined()) break;
    const auto dist = candidate_dist(rm, j, part);
    const ResponseId chosen = scan_with_lower(dist, lower);
    sel.baselines[j] = chosen;
    part.refine_with([&](std::uint32_t f) {
      return static_cast<std::uint32_t>(rm.response(f, j) == chosen);
    });
  }
  sel.indistinguished_pairs = part.indistinguished_pairs();
  sel.distinguished_pairs = total_pairs - sel.indistinguished_pairs;
  sel.calls_used = 1;
  return sel;
}

BaselineSelection run_procedure1(const ResponseMatrix& rm,
                                 const BaselineSelectionConfig& config) {
  std::vector<std::size_t> order(rm.num_tests());
  std::iota(order.begin(), order.end(), std::size_t{0});
  Rng rng(config.seed);

  BaselineSelection best = procedure1_single(rm, order, config.lower);
  // The all-fault-free assignment (a pass/fail dictionary) is itself a valid
  // baseline choice; never return anything worse than it.
  {
    BaselineSelection passfail;
    passfail.baselines.assign(rm.num_tests(), 0);
    Partition part(rm.num_faults());
    for (std::size_t j = 0; j < rm.num_tests() && !part.fully_refined(); ++j)
      part.refine_with([&](std::uint32_t f) {
        return static_cast<std::uint32_t>(rm.response(f, j) == 0);
      });
    passfail.indistinguished_pairs = part.indistinguished_pairs();
    passfail.distinguished_pairs =
        Partition::pairs(rm.num_faults()) - passfail.indistinguished_pairs;
    if (passfail.distinguished_pairs > best.distinguished_pairs)
      best = std::move(passfail);
  }
  std::size_t calls = 1;
  std::size_t no_improve = 0;
  while (no_improve < config.calls1 && calls < config.max_calls &&
         best.indistinguished_pairs > config.target_indistinguished) {
    rng.shuffle(order);
    BaselineSelection cur = procedure1_single(rm, order, config.lower);
    ++calls;
    if (cur.distinguished_pairs > best.distinguished_pairs) {
      best = std::move(cur);
      no_improve = 0;
    } else {
      ++no_improve;
    }
  }
  best.calls_used = calls;
  LOG_DEBUG << "procedure1: " << calls << " calls, "
            << best.indistinguished_pairs << " pairs indistinguished";
  return best;
}

}  // namespace sddict
