#include "core/baseline.h"

#include <memory>
#include <numeric>

#include "util/failpoint.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/threadpool.h"

namespace sddict {

std::vector<std::uint64_t> candidate_dist(const ResponseMatrix& rm,
                                          std::size_t test,
                                          const Partition& partition) {
  const std::size_t num_candidates = rm.num_distinct(test);
  std::vector<std::uint64_t> dist(num_candidates, 0);
  std::vector<std::uint32_t> cnt(num_candidates, 0);
  std::vector<ResponseId> touched;
  for (const auto& members : partition.classes()) {
    if (members.size() < 2) continue;
    touched.clear();
    for (std::uint32_t f : members) {
      const ResponseId r = rm.response(f, test);
      if (cnt[r]++ == 0) touched.push_back(r);
    }
    for (ResponseId r : touched) {
      dist[r] += static_cast<std::uint64_t>(cnt[r]) * (members.size() - cnt[r]);
      cnt[r] = 0;
    }
  }
  return dist;
}

ResponseId scan_with_lower(const std::vector<std::uint64_t>& dist,
                           std::size_t lower) {
  // Procedure 1, steps 3b/3c: best_dist starts below every real score;
  // `lower` counts consecutive candidates scoring strictly below the best.
  ResponseId best_id = 0;
  bool have_best = false;
  std::uint64_t best = 0;
  std::size_t low_run = 0;
  for (ResponseId z = 0; z < dist.size(); ++z) {
    if (!have_best || dist[z] > best) {
      best = dist[z];
      best_id = z;
      have_best = true;
      low_run = 0;
    } else if (dist[z] < best) {
      if (++low_run == lower) break;
    }
  }
  return best_id;
}

BaselineSelection procedure1_single(const ResponseMatrix& rm,
                                    const std::vector<std::size_t>& order,
                                    std::size_t lower) {
  BaselineSelection sel;
  // Tests never reached (processed after full refinement) keep the
  // fault-free baseline, resolved per test rather than assumed to be id 0.
  sel.baselines.resize(rm.num_tests());
  for (std::size_t j = 0; j < rm.num_tests(); ++j)
    sel.baselines[j] = rm.fault_free_id(j);
  Partition part(rm.num_faults());
  const std::uint64_t total_pairs = Partition::pairs(rm.num_faults());

  for (std::size_t j : order) {
    if (part.fully_refined()) break;
    const auto dist = candidate_dist(rm, j, part);
    const ResponseId chosen = scan_with_lower(dist, lower);
    sel.baselines[j] = chosen;
    part.refine_with([&](std::uint32_t f) {
      return static_cast<std::uint32_t>(rm.response(f, j) == chosen);
    });
  }
  sel.indistinguished_pairs = part.indistinguished_pairs();
  sel.distinguished_pairs = total_pairs - sel.indistinguished_pairs;
  sel.calls_used = 1;
  return sel;
}

BaselineSelection run_procedure1(const ResponseMatrix& rm,
                                 const BaselineSelectionConfig& config) {
  BudgetScope scope(config.budget);

  // Restart r is a pure function of (rm, config, r): restart 0 uses the
  // natural test order, restart r > 0 a permutation drawn from
  // Rng(config.seed + r). That makes restarts independently computable in
  // any order and on any thread. A restart started after the budget expired
  // is skipped (empty selection, calls_used == 0); the reduction below can
  // never consume such a slot, because the expiry it observed is also
  // visible to every later budget poll.
  auto run_restart = [&](std::size_t r) {
    if (scope.stop()) return BaselineSelection{};
    SDDICT_FAILPOINT("proc1_restart");
    std::vector<std::size_t> order(rm.num_tests());
    std::iota(order.begin(), order.end(), std::size_t{0});
    if (r > 0) {
      Rng rng(config.seed + r);
      rng.shuffle(order);
    }
    return procedure1_single(rm, order, config.lower);
  };

  BaselineSelection best = run_restart(0);
  // calls_used == 1 marks a restart that actually ran (procedure1_single
  // sets it); 0 means restart 0 was skipped by an already-expired budget.
  const bool have_restart0 = best.calls_used == 1;
  // The all-fault-free assignment (a pass/fail dictionary) is itself a valid
  // baseline choice; never return anything worse than it — and when even
  // restart 0 was skipped, it is the result. The fault-free id is resolved
  // per test — id 0 for simulated matrices, but not necessarily for
  // matrices from response_matrix_from_ids.
  {
    BaselineSelection passfail;
    passfail.baselines.resize(rm.num_tests());
    Partition part(rm.num_faults());
    for (std::size_t j = 0; j < rm.num_tests(); ++j) {
      const ResponseId ff = rm.fault_free_id(j);
      passfail.baselines[j] = ff;
      if (!part.fully_refined())
        part.refine_with([&](std::uint32_t f) {
          return static_cast<std::uint32_t>(rm.response(f, j) == ff);
        });
    }
    passfail.indistinguished_pairs = part.indistinguished_pairs();
    passfail.distinguished_pairs =
        Partition::pairs(rm.num_faults()) - passfail.indistinguished_pairs;
    if (!have_restart0 ||
        passfail.distinguished_pairs > best.distinguished_pairs)
      best = std::move(passfail);
  }

  // Waves of independent restarts, reduced sequentially by restart index
  // with the original stopping rules. Strict improvement ("more distinguished
  // pairs") keeps the lowest restart index on ties, and restarts past the
  // stop point are computed but never consumed — so the result and
  // calls_used are bit-identical at every thread count and wave size.
  // Stop-rule ordering matters for the anytime guarantee: natural
  // completion is checked first (so a run that finishes and expires in the
  // same instant reports completed), then the restart caps (which latch
  // kMaxRestarts), then the deadline/cancellation poll.
  std::size_t calls = have_restart0 ? 1 : 0;
  std::size_t no_improve = 0;
  auto stopped = [&] {
    if (no_improve >= config.calls1 ||
        best.indistinguished_pairs <= config.target_indistinguished)
      return true;
    if (calls >= config.max_calls ||
        (config.budget.max_restarts > 0 &&
         calls >= config.budget.max_restarts)) {
      scope.trip(StopReason::kMaxRestarts);
      return true;
    }
    return scope.stop();
  };

  const std::size_t threads = ThreadPool::resolve(config.num_threads);
  const std::size_t wave = threads;
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1 && !stopped()) pool = std::make_unique<ThreadPool>(threads);

  std::vector<BaselineSelection> slots(wave);
  std::size_t next_restart = 1;
  while (!stopped()) {
    const std::size_t wave_begin = next_restart;
    const std::size_t wave_end = wave_begin + wave;
    if (pool != nullptr) {
      pool->parallel_for(wave_begin, wave_end, [&](std::size_t r) {
        slots[r - wave_begin] = run_restart(r);
      });
    } else {
      for (std::size_t r = wave_begin; r < wave_end; ++r)
        slots[r - wave_begin] = run_restart(r);
    }
    for (std::size_t r = wave_begin; r < wave_end && !stopped(); ++r) {
      BaselineSelection cur = std::move(slots[r - wave_begin]);
      ++calls;
      if (cur.distinguished_pairs > best.distinguished_pairs) {
        best = std::move(cur);
        no_improve = 0;
      } else {
        ++no_improve;
      }
    }
    next_restart = wave_end;
  }
  best.calls_used = calls;
  best.completed = !scope.stopped();
  best.stop_reason = scope.reason();
  LOG_DEBUG << "procedure1: " << calls << " calls on " << threads
            << " thread(s), " << best.indistinguished_pairs
            << " pairs indistinguished ("
            << stop_reason_name(best.stop_reason) << ")";
  return best;
}

}  // namespace sddict
