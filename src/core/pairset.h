// Reference implementation of Procedure 1 with the paper's literal data
// structure: an explicit set P of target fault pairs, with dist(z) computed
// pair-by-pair (Step 3a verbatim). Quadratic in the number of faults —
// intended for validation against the partition-refinement implementation
// (core/baseline.h) and for small pedagogical examples, not for benchmarks.
#pragma once

#include "core/baseline.h"

namespace sddict {

BaselineSelection procedure1_single_pairs(const ResponseMatrix& rm,
                                          const std::vector<std::size_t>& order,
                                          std::size_t lower);

}  // namespace sddict
