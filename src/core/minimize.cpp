#include "core/minimize.h"

#include <algorithm>
#include <stdexcept>

#include "core/sigset.h"

namespace sddict {
namespace {

// Generic reverse-greedy elimination over per-test column tokens.
// token_of(f, j) is column j's contribution to fault f's row signature.
// Dropping a column can only coarsen the row partition, so an unchanged
// duplicate-pair count proves the partition is exactly preserved.
template <typename TokenOf>
MinimizeResult minimize_impl(std::size_t num_faults, std::size_t num_tests,
                             TokenOf&& token_of) {
  std::vector<Hash128> sig(num_faults);
  SignatureMultiset ms;
  for (FaultId f = 0; f < num_faults; ++f) {
    Hash128 s;
    for (std::size_t j = 0; j < num_tests; ++j) s ^= token_of(f, j);
    sig[f] = s;
    ms.insert(s);
  }
  const std::uint64_t target = ms.duplicate_pairs();

  std::vector<bool> kept(num_tests, true);
  MinimizeResult res;
  for (std::size_t j = num_tests; j-- > 0;) {
    for (FaultId f = 0; f < num_faults; ++f) {
      const Hash128 tok = token_of(f, j);
      if (tok == Hash128{}) continue;
      ms.remove(sig[f]);
      sig[f] ^= tok;
      ms.insert(sig[f]);
    }
    if (ms.duplicate_pairs() == target) {
      kept[j] = false;  // column was redundant
      ++res.dropped;
    } else {
      for (FaultId f = 0; f < num_faults; ++f) {
        const Hash128 tok = token_of(f, j);
        if (tok == Hash128{}) continue;
        ms.remove(sig[f]);
        sig[f] ^= tok;
        ms.insert(sig[f]);
      }
    }
  }
  for (std::size_t j = 0; j < num_tests; ++j)
    if (kept[j]) res.kept_tests.push_back(j);
  res.indistinguished_pairs = target;
  return res;
}

}  // namespace

MinimizeResult minimize_tests_full(const ResponseMatrix& rm) {
  return minimize_impl(rm.num_faults(), rm.num_tests(),
                       [&](FaultId f, std::size_t j) {
                         const ResponseId r = rm.response(f, j);
                         // Response 0 maps to the zero token so untouched
                         // (all-pass) columns are free to drop.
                         return r == 0 ? Hash128{} : slot_token(j, r);
                       });
}

MinimizeResult minimize_tests_samediff(
    const ResponseMatrix& rm, const std::vector<ResponseId>& baselines) {
  if (baselines.size() != rm.num_tests())
    throw std::invalid_argument("minimize_tests_samediff: baseline count");
  return minimize_impl(rm.num_faults(), rm.num_tests(),
                       [&](FaultId f, std::size_t j) {
                         return rm.response(f, j) != baselines[j]
                                    ? test_token(j)
                                    : Hash128{};
                       });
}

}  // namespace sddict
