#include "core/procedure2.h"

#include <stdexcept>

#include "core/sigset.h"
#include "dict/partition.h"
#include "util/log.h"

namespace sddict {

std::uint64_t count_indistinguished(const ResponseMatrix& rm,
                                    const std::vector<ResponseId>& baselines) {
  SignatureMultiset ms;
  for (FaultId f = 0; f < rm.num_faults(); ++f) {
    Hash128 sig;
    for (std::size_t j = 0; j < rm.num_tests(); ++j)
      if (rm.response(f, j) != baselines[j]) sig ^= test_token(j);
    ms.insert(sig);
  }
  return ms.duplicate_pairs();
}

Procedure2Result run_procedure2(const ResponseMatrix& rm,
                                std::vector<ResponseId> initial_baselines,
                                const Procedure2Config& config) {
  const std::size_t n = rm.num_faults();
  const std::size_t k = rm.num_tests();
  if (initial_baselines.size() != k)
    throw std::invalid_argument("run_procedure2: baseline count mismatch");

  Procedure2Result res;
  res.baselines = std::move(initial_baselines);

  // Row signatures under the current baselines.
  std::vector<Hash128> sig(n);
  for (FaultId f = 0; f < n; ++f) {
    Hash128 s;
    for (std::size_t j = 0; j < k; ++j)
      if (rm.response(f, j) != res.baselines[j]) s ^= test_token(j);
    sig[f] = s;
  }
  std::uint64_t dup;
  {
    SignatureMultiset ms;
    for (FaultId f = 0; f < n; ++f) ms.insert(sig[f]);
    dup = ms.duplicate_pairs();
  }

  // Per-test scoring. Key identity: with every other column fixed, two
  // faults are indistinguished exactly when they share a *rest* signature
  // (row signature with column j's contribution removed) and agree on
  // column j's bit. Grouping by rest signature once therefore scores every
  // candidate baseline of test j in a single O(n) pass:
  //
  //   dup_j(z) = sum over rest-groups g of  C(c_zg, 2) + C(s_g - c_zg, 2)
  //
  // where s_g = |g| and c_zg = members of g whose response under t_j is z.
  // Scanning Z_j with the paper's accept-if-better rule converges to the
  // argmin of dup_j, which is what this computes directly.
  std::vector<std::uint32_t> rest_gid(n);
  std::unordered_map<Hash128, std::uint32_t, Hash128Hasher> intern;
  std::unordered_map<std::uint64_t, std::uint32_t> pair_count;
  std::vector<std::uint64_t> group_size;

  auto pairs2 = [](std::uint64_t m) { return m * (m - 1) / 2; };

  BudgetScope scope(config.budget);
  bool improved = true;
  while (improved && res.sweeps < config.max_sweeps &&
         dup > config.target_indistinguished && !scope.stop()) {
    improved = false;
    ++res.sweeps;
    for (std::size_t j = 0;
         j < k && dup > config.target_indistinguished && !scope.stop(); ++j) {
      const std::size_t num_candidates = rm.num_distinct(j);
      if (num_candidates < 2) continue;
      const Hash128 tok = test_token(j);
      const ResponseId old_bl = res.baselines[j];

      intern.clear();
      group_size.clear();
      for (FaultId f = 0; f < n; ++f) {
        Hash128 rest = sig[f];
        if (rm.response(f, j) != old_bl) rest ^= tok;
        const auto [it, inserted] = intern.try_emplace(
            rest, static_cast<std::uint32_t>(group_size.size()));
        if (inserted) group_size.push_back(0);
        rest_gid[f] = it->second;
        ++group_size[it->second];
      }
      std::uint64_t dup_base = 0;
      for (std::uint64_t s : group_size) dup_base += pairs2(s);

      // c_zg counts for every (group, response) actually occurring.
      pair_count.clear();
      for (FaultId f = 0; f < n; ++f) {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(rest_gid[f]) << 32) | rm.response(f, j);
        ++pair_count[key];
      }
      // delta(z) = dup_j(z) - dup_base, accumulated sparsely.
      std::vector<std::int64_t> delta(num_candidates, 0);
      for (const auto& [key, c] : pair_count) {
        const std::uint64_t s = group_size[key >> 32];
        const auto z = static_cast<ResponseId>(key & 0xffffffffu);
        delta[z] += static_cast<std::int64_t>(pairs2(c) + pairs2(s - c)) -
                    static_cast<std::int64_t>(pairs2(s));
      }

      ResponseId best_z = old_bl;
      std::int64_t best_delta = delta[old_bl];
      for (ResponseId z = 0; z < num_candidates; ++z)
        if (delta[z] < best_delta) {
          best_delta = delta[z];
          best_z = z;
        }
      if (best_z == old_bl) continue;

      // Apply: flip the two groups' signatures and the running dup count.
      dup = dup_base + static_cast<std::uint64_t>(
                           static_cast<std::int64_t>(best_delta));
      for (FaultId f = 0; f < n; ++f) {
        const ResponseId r = rm.response(f, j);
        if (r == old_bl || r == best_z) sig[f] ^= tok;
      }
      res.baselines[j] = best_z;
      ++res.replacements;
      improved = true;
    }
  }

  res.indistinguished_pairs = dup;
  res.distinguished_pairs = Partition::pairs(n) - dup;
  res.completed = !scope.stopped();
  res.stop_reason = scope.reason();
  LOG_DEBUG << "procedure2: " << res.replacements << " replacements over "
            << res.sweeps << " sweeps, " << dup << " pairs indistinguished";
  return res;
}

}  // namespace sddict
