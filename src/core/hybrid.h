// Hybrid baseline reduction — the paper's Section 2 remark that "one may
// not need to use a baseline vector for every test vector": after baseline
// selection, revert every baseline to the fault-free response whenever the
// reversion loses no diagnostic resolution, shrinking the storage the
// dictionary needs for baseline vectors.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/response.h"

namespace sddict {

struct HybridResult {
  std::vector<ResponseId> baselines;
  std::size_t stored_baselines = 0;  // tests keeping a non-fault-free baseline
  std::uint64_t indistinguished_pairs = 0;
  std::uint64_t size_bits = 0;  // hybrid size model (see dict/dictionary.h)
};

HybridResult hybridize_baselines(const ResponseMatrix& rm,
                                 std::vector<ResponseId> baselines);

}  // namespace sddict
