#include "core/multibaseline.h"

#include <algorithm>
#include <numeric>

#include "dict/partition.h"
#include "util/log.h"
#include "util/rng.h"

namespace sddict {
namespace {

// Additional-split scores for one more baseline of test `test`, given that
// members matching one of `chosen` are already split off. Only faults whose
// response matches no chosen baseline can still be separated by a new one.
std::vector<std::uint64_t> additional_dist(
    const ResponseMatrix& rm, std::size_t test, const Partition& partition,
    const std::vector<ResponseId>& chosen) {
  const std::size_t num_candidates = rm.num_distinct(test);
  std::vector<std::uint64_t> dist(num_candidates, 0);
  std::vector<std::uint32_t> cnt(num_candidates, 0);
  std::vector<bool> is_chosen(num_candidates, false);
  for (ResponseId z : chosen) is_chosen[z] = true;

  std::vector<ResponseId> touched;
  for (const auto& members : partition.classes()) {
    if (members.size() < 2) continue;
    touched.clear();
    std::uint32_t unmatched = 0;
    for (std::uint32_t f : members) {
      const ResponseId r = rm.response(f, test);
      if (is_chosen[r]) continue;  // already split off by an earlier bit
      ++unmatched;
      if (cnt[r]++ == 0) touched.push_back(r);
    }
    for (ResponseId r : touched) {
      dist[r] += static_cast<std::uint64_t>(cnt[r]) * (unmatched - cnt[r]);
      cnt[r] = 0;
    }
  }
  for (ResponseId z : chosen) dist[z] = 0;  // cannot re-pick
  return dist;
}

// LOWER scan that skips already-chosen candidates.
ResponseId scan_skipping(const std::vector<std::uint64_t>& dist,
                         const std::vector<ResponseId>& chosen,
                         std::size_t lower) {
  std::vector<bool> skip(dist.size(), false);
  for (ResponseId z : chosen) skip[z] = true;
  ResponseId best_id = 0;
  bool have_best = false;
  std::uint64_t best = 0;
  std::size_t low_run = 0;
  for (ResponseId z = 0; z < dist.size(); ++z) {
    if (skip[z]) continue;
    if (!have_best) best_id = z;
    if (!have_best || dist[z] > best) {
      best = dist[z];
      best_id = z;
      have_best = true;
      low_run = 0;
    } else if (dist[z] < best) {
      if (++low_run == lower) break;
    }
  }
  return best_id;
}

}  // namespace

MultiBaselineSelection multi_baseline_single(
    const ResponseMatrix& rm, std::size_t rank,
    const std::vector<std::size_t>& order, std::size_t lower) {
  MultiBaselineSelection sel;
  sel.baselines.assign(rm.num_tests(), {});
  Partition part(rm.num_faults());
  const std::uint64_t total_pairs = Partition::pairs(rm.num_faults());

  for (std::size_t j : order) {
    std::vector<ResponseId>& chosen = sel.baselines[j];
    const std::size_t avail = rm.num_distinct(j);
    const std::size_t r = std::min(rank, avail);
    if (!part.fully_refined()) {
      for (std::size_t l = 0; l < r; ++l) {
        const auto dist = additional_dist(rm, j, part, chosen);
        chosen.push_back(scan_skipping(dist, chosen, lower));
      }
    } else {
      // Resolution complete: fill with the first ids (fault-free first) so
      // every test still carries `rank` baselines for the size model.
      for (ResponseId z = 0; chosen.size() < r && z < avail; ++z)
        chosen.push_back(z);
    }
    // Tests with fewer distinct responses than `rank` keep a shorter set;
    // the dictionary treats the missing slots as constant-1 bits.
    part.refine_with([&](std::uint32_t f) {
      const ResponseId resp = rm.response(f, j);
      for (std::size_t l = 0; l < chosen.size(); ++l)
        if (resp == chosen[l]) return static_cast<std::uint32_t>(l);
      return static_cast<std::uint32_t>(rank);
    });
  }

  sel.indistinguished_pairs = part.indistinguished_pairs();
  sel.distinguished_pairs = total_pairs - sel.indistinguished_pairs;
  sel.calls_used = 1;
  return sel;
}

MultiBaselineSelection run_multi_baseline(
    const ResponseMatrix& rm, std::size_t rank,
    const BaselineSelectionConfig& config) {
  std::vector<std::size_t> order(rm.num_tests());
  std::iota(order.begin(), order.end(), std::size_t{0});
  Rng rng(config.seed);

  MultiBaselineSelection best = multi_baseline_single(rm, rank, order,
                                                      config.lower);
  std::size_t calls = 1;
  std::size_t no_improve = 0;
  while (no_improve < config.calls1 && calls < config.max_calls &&
         best.indistinguished_pairs > config.target_indistinguished) {
    rng.shuffle(order);
    MultiBaselineSelection cur =
        multi_baseline_single(rm, rank, order, config.lower);
    ++calls;
    if (cur.distinguished_pairs > best.distinguished_pairs) {
      best = std::move(cur);
      no_improve = 0;
    } else {
      ++no_improve;
    }
  }
  best.calls_used = calls;
  LOG_DEBUG << "multi-baseline(r=" << rank << "): " << calls << " calls, "
            << best.indistinguished_pairs << " pairs indistinguished";
  return best;
}

}  // namespace sddict
