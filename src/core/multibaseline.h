// Greedy selection of r baselines per test for the multi-baseline
// same/different dictionary (the extension the paper leaves open).
// Generalizes Procedure 1: per test, baselines are chosen one at a time,
// each maximizing the *additional* fault pairs split given those already
// chosen; test order is randomized across restarts like Procedure 1.
#pragma once

#include <cstdint>
#include <vector>

#include "core/baseline.h"
#include "sim/response.h"

namespace sddict {

struct MultiBaselineSelection {
  std::vector<std::vector<ResponseId>> baselines;  // [test][0..r-1]
  std::uint64_t distinguished_pairs = 0;
  std::uint64_t indistinguished_pairs = 0;
  std::size_t calls_used = 0;
};

// One greedy pass over the tests in `order`, choosing `rank` baselines per
// test with the LOWER scan applied to each choice.
MultiBaselineSelection multi_baseline_single(
    const ResponseMatrix& rm, std::size_t rank,
    const std::vector<std::size_t>& order, std::size_t lower);

// Full selection with Procedure-1-style restarts. `config.calls1` and
// `config.lower` have their usual meanings.
MultiBaselineSelection run_multi_baseline(const ResponseMatrix& rm,
                                          std::size_t rank,
                                          const BaselineSelectionConfig& config);

}  // namespace sddict
