#include "core/pairset.h"

#include <vector>

#include "dict/partition.h"

namespace sddict {

BaselineSelection procedure1_single_pairs(const ResponseMatrix& rm,
                                          const std::vector<std::size_t>& order,
                                          std::size_t lower) {
  const std::size_t n = rm.num_faults();
  BaselineSelection sel;
  sel.baselines.assign(rm.num_tests(), 0);

  // Step 1: include in P every fault pair.
  std::vector<std::pair<FaultId, FaultId>> pairs;
  pairs.reserve(Partition::pairs(n));
  for (FaultId a = 0; a < n; ++a)
    for (FaultId b = a + 1; b < n; ++b) pairs.push_back({a, b});
  const std::uint64_t total_pairs = pairs.size();

  auto splits = [&](ResponseId z, std::size_t j, FaultId a, FaultId b) {
    const bool sa = rm.response(a, j) == z;
    const bool sb = rm.response(b, j) == z;
    return sa != sb;
  };

  for (std::size_t j : order) {
    if (pairs.empty()) break;
    // Steps 2-3: scan candidates in Z_j order with the LOWER rule, computing
    // dist(z) over the explicit pair set.
    const std::size_t num_candidates = rm.num_distinct(j);
    ResponseId best_id = 0;
    bool have_best = false;
    std::uint64_t best = 0;
    std::size_t low_run = 0;
    for (ResponseId z = 0; z < num_candidates; ++z) {
      std::uint64_t dist = 0;
      for (const auto& [a, b] : pairs)
        if (splits(z, j, a, b)) ++dist;
      if (!have_best || dist > best) {
        best = dist;
        best_id = z;
        have_best = true;
        low_run = 0;
      } else if (dist < best) {
        if (++low_run == lower) break;
      }
    }
    // Step 4: select and remove the pairs it distinguishes.
    sel.baselines[j] = best_id;
    std::vector<std::pair<FaultId, FaultId>> remaining;
    remaining.reserve(pairs.size());
    for (const auto& p : pairs)
      if (!splits(best_id, j, p.first, p.second)) remaining.push_back(p);
    pairs = std::move(remaining);
  }

  sel.indistinguished_pairs = pairs.size();
  sel.distinguished_pairs = total_pairs - pairs.size();
  sel.calls_used = 1;
  return sel;
}

}  // namespace sddict
