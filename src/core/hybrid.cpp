#include "core/hybrid.h"

#include <stdexcept>

#include "core/sigset.h"
#include "dict/dictionary.h"

namespace sddict {

HybridResult hybridize_baselines(const ResponseMatrix& rm,
                                 std::vector<ResponseId> baselines) {
  const std::size_t n = rm.num_faults();
  const std::size_t k = rm.num_tests();
  if (baselines.size() != k)
    throw std::invalid_argument("hybridize_baselines: baseline count mismatch");

  std::vector<Hash128> sig(n);
  SignatureMultiset ms;
  for (FaultId f = 0; f < n; ++f) {
    Hash128 s;
    for (std::size_t j = 0; j < k; ++j)
      if (rm.response(f, j) != baselines[j]) s ^= test_token(j);
    sig[f] = s;
    ms.insert(s);
  }

  std::vector<FaultId> changed;
  for (std::size_t j = 0; j < k; ++j) {
    if (baselines[j] == 0) continue;
    // Reverting to fault-free flips the rows of faults whose response is
    // the current baseline or the fault-free response.
    changed.clear();
    for (FaultId f = 0; f < n; ++f) {
      const ResponseId r = rm.response(f, j);
      if (r == baselines[j] || r == 0) changed.push_back(f);
    }
    const std::uint64_t before = ms.duplicate_pairs();
    const Hash128 tok = test_token(j);
    for (FaultId f : changed) {
      ms.remove(sig[f]);
      sig[f] ^= tok;
      ms.insert(sig[f]);
    }
    if (ms.duplicate_pairs() <= before) {
      baselines[j] = 0;  // keep the reversion (no resolution lost)
    } else {
      for (FaultId f : changed) {
        ms.remove(sig[f]);
        sig[f] ^= tok;
        ms.insert(sig[f]);
      }
    }
  }

  HybridResult res;
  res.indistinguished_pairs = ms.duplicate_pairs();
  for (ResponseId b : baselines) res.stored_baselines += b != 0 ? 1 : 0;
  res.size_bits =
      hybrid_same_different_bits(k, n, rm.num_outputs(), res.stored_baselines);
  res.baselines = std::move(baselines);
  return res;
}

}  // namespace sddict
