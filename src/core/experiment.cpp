#include "core/experiment.h"

#include <sstream>

#include "dict/full_dict.h"
#include "dict/passfail_dict.h"
#include "fault/collapse.h"
#include "util/log.h"
#include "util/timer.h"

namespace sddict {

const char* test_set_kind_name(TestSetKind k) {
  switch (k) {
    case TestSetKind::kDiagnostic: return "diag";
    case TestSetKind::kTenDetect: return "10det";
  }
  return "?";
}

ExperimentRow run_experiment(const Netlist& nl, TestSetKind kind,
                             const ExperimentConfig& config) {
  ExperimentRow row;
  row.circuit = nl.name();
  row.ttype = test_set_kind_name(kind);

  const CollapseResult collapse = collapsed_fault_list(nl);
  const FaultList& faults = collapse.collapsed;

  Timer timer;
  TestSet tests(nl.num_inputs());
  if (kind == TestSetKind::kDiagnostic) {
    tests = generate_diagnostic(nl, faults, config.diag).tests;
  } else {
    tests = generate_ndetect(nl, faults, config.ndetect).tests;
  }
  row.seconds_testgen = timer.seconds();

  row.num_tests = tests.size();
  row.num_faults = faults.size();
  row.num_outputs = nl.num_outputs();
  row.sizes = dictionary_sizes(tests.size(), faults.size(), nl.num_outputs());

  timer.reset();
  // Fault simulation reuses the baseline-selection thread knob; both stages
  // are bit-deterministic at any thread count.
  const ResponseMatrix rm = build_response_matrix(
      nl, faults, tests, {.num_threads = config.baseline.num_threads});
  row.seconds_faultsim = timer.seconds();

  for (FaultId f = 0; f < faults.size(); ++f)
    if (rm.detection_count(f) == 0) ++row.num_undetected;

  row.indist_full = FullDictionary::build(rm).indistinguished_pairs();
  row.indist_passfail = PassFailDictionary::build(rm).indistinguished_pairs();

  timer.reset();
  BaselineSelectionConfig bconfig = config.baseline;
  bconfig.target_indistinguished = row.indist_full;
  const BaselineSelection p1 = run_procedure1(rm, bconfig);
  row.seconds_proc1 = timer.seconds();
  row.indist_sd_rand = p1.indistinguished_pairs;
  row.proc1_calls = p1.calls_used;

  row.indist_sd_repl = row.indist_sd_rand;
  if (config.run_proc2 && row.indist_sd_rand > row.indist_full) {
    timer.reset();
    Procedure2Config p2config = config.proc2;
    p2config.target_indistinguished = row.indist_full;
    const Procedure2Result p2 = run_procedure2(rm, p1.baselines, p2config);
    row.seconds_proc2 = timer.seconds();
    row.indist_sd_repl = p2.indistinguished_pairs;
  }
  row.proc2_improved = row.indist_sd_repl < row.indist_sd_rand;

  LOG_INFO << "table6 " << row.circuit << " " << row.ttype << ": |T|="
           << row.num_tests << " indist full/pf/sd-rand/sd-repl = "
           << row.indist_full << "/" << row.indist_passfail << "/"
           << row.indist_sd_rand << "/" << row.indist_sd_repl << " ("
           << row.num_undetected << " undetected faults)";
  return row;
}

std::string experiment_header() {
  std::ostringstream out;
  out << "                        size (bits)                     indistinguished\n";
  out << "circuit  Ttype   |T|       full        p/f        s/d      full       "
         "p/f   s/d-rand   s/d-repl\n";
  out << "-------- ------ ----- ----------- ---------- ---------- --------- "
         "--------- ---------- ----------";
  return out.str();
}

std::string format_experiment_row(const ExperimentRow& row) {
  char buf[256];
  // The paper omits the s/d-repl entry when Procedure 2 does not improve.
  char repl[24];
  if (row.proc2_improved)
    std::snprintf(repl, sizeof repl, "%10llu",
                  static_cast<unsigned long long>(row.indist_sd_repl));
  else
    std::snprintf(repl, sizeof repl, "%10s", "-");
  std::snprintf(buf, sizeof buf,
                "%-8s %-6s %5zu %11llu %10llu %10llu %9llu %9llu %10llu %s",
                row.circuit.c_str(), row.ttype.c_str(), row.num_tests,
                static_cast<unsigned long long>(row.sizes.full_bits),
                static_cast<unsigned long long>(row.sizes.pass_fail_bits),
                static_cast<unsigned long long>(row.sizes.same_different_bits),
                static_cast<unsigned long long>(row.indist_full),
                static_cast<unsigned long long>(row.indist_passfail),
                static_cast<unsigned long long>(row.indist_sd_rand), repl);
  return buf;
}

}  // namespace sddict
