// The paper's Procedure 2: baseline replacement. Starting from a selected
// baseline assignment, every test's baseline is tentatively replaced by
// every other candidate response; a replacement is kept when it strictly
// increases the number of distinguished fault pairs. Sweeps repeat until a
// whole sweep makes no replacement.
//
// Scoring uses incremental 128-bit row signatures: each fault's dictionary
// row is summarized as the XOR of per-test tokens over its '1' bits, and
// the number of *in*distinguished pairs equals the number of duplicate-
// signature pairs, maintained by a running multiset. Swapping the baseline
// of test j only flips the rows of faults whose response equals the old or
// the new baseline, so each candidate is evaluated in time proportional to
// those two groups instead of n*k.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/response.h"
#include "util/budget.h"

namespace sddict {

struct Procedure2Result {
  std::vector<ResponseId> baselines;
  std::uint64_t distinguished_pairs = 0;
  std::uint64_t indistinguished_pairs = 0;
  std::size_t replacements = 0;
  std::size_t sweeps = 0;
  // Anytime: every replacement only improves the assignment, so a budgeted
  // run stopped mid-sweep returns a valid assignment at least as good as
  // the initial one, with completed == false.
  bool completed = true;
  StopReason stop_reason = StopReason::kCompleted;
};

struct Procedure2Config {
  // Stop once this many indistinguished pairs is reached (pass the
  // full-dictionary count; nothing can do better).
  std::uint64_t target_indistinguished = 0;
  std::size_t max_sweeps = 100;
  // Deadline/cancellation, polled before each test column within a sweep.
  RunBudget budget{};
};

Procedure2Result run_procedure2(const ResponseMatrix& rm,
                                std::vector<ResponseId> initial_baselines,
                                const Procedure2Config& config = {});

// Exact (non-incremental) count of indistinguished pairs under a baseline
// assignment; used by Procedure 2 internally and handy for verification.
std::uint64_t count_indistinguished(const ResponseMatrix& rm,
                                    const std::vector<ResponseId>& baselines);

}  // namespace sddict
