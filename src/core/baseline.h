// Baseline-vector selection for the same/different fault dictionary —
// the paper's Procedure 1 (greedy selection with LOWER early stop and
// CALLS1 random-order restarts).
//
// Key implementation idea: the set P of not-yet-distinguished fault pairs
// is an equivalence relation, represented as a Partition of the fault set.
// For test t_j and candidate baseline z, the paper's dist(z) equals
//     sum over classes C of  c_z(C) * (|C| - c_z(C)),
// where c_z(C) is the number of members of C whose response under t_j is z.
// All candidate scores for one test are computed in a single O(n) pass and
// the paper's LOWER scan is then replayed over them, reproducing Procedure 1
// exactly at a fraction of the cost of explicit pair bookkeeping. (The
// explicit-pair reference implementation lives in core/pairset.h and is
// cross-checked in tests.)
#pragma once

#include <cstdint>
#include <vector>

#include "dict/partition.h"
#include "sim/response.h"
#include "util/budget.h"

namespace sddict {

struct BaselineSelectionConfig {
  std::size_t lower = 10;    // the paper's LOWER
  std::size_t calls1 = 100;  // the paper's CALLS1 (consecutive no-improve restarts)
  std::uint64_t seed = 1;
  // Hard cap on total Procedure-1 invocations (safety net).
  std::size_t max_calls = 100000;
  // Stop restarting once this many indistinguished pairs is reached — pass
  // the full-dictionary count, which lower-bounds every dictionary.
  std::uint64_t target_indistinguished = 0;
  // Worker threads for the restart loop; 0 = hardware concurrency. Restarts
  // are independent by construction — restart r shuffles the test order with
  // its own Rng(seed + r) — and are reduced sequentially by restart index
  // with the original stopping rules, so the selection, pair counts, and
  // calls_used are bit-identical at every thread count.
  std::size_t num_threads = 0;
  // Run budget with the strong anytime guarantee: a budgeted run returns
  // the incumbent after some restart index r with completed == false, and
  // that result (baselines, pair counts, calls_used) is bit-identical to an
  // unbudgeted run re-run with budget.max_restarts == r, at every thread
  // count. This holds because the sequential reduction polls the budget
  // before consuming each restart slot, and a restart skipped by a worker
  // implies the budget had already expired before the reduction got there —
  // so a skipped slot is never consumed. budget.max_restarts caps restarts
  // consumed (including the initial natural-order pass); the run can never
  // end below the pass/fail floor, which is computed unconditionally.
  RunBudget budget{};
};

struct BaselineSelection {
  // One per test. The pass/fail fallback stores each test's fault-free id
  // (rm.fault_free_id(j), which is 0 on simulated/table-built matrices).
  std::vector<ResponseId> baselines;
  std::uint64_t distinguished_pairs = 0;
  std::uint64_t indistinguished_pairs = 0;
  std::size_t calls_used = 0;  // Procedure-1 passes consumed by the reduction
  // False when a budget (deadline / cancellation / max_restarts, or the
  // legacy max_calls safety net) ended the restart loop early; the
  // selection is still valid — it is the best of the passes consumed.
  bool completed = true;
  StopReason stop_reason = StopReason::kCompleted;
};

// dist(z) for every candidate response of one test, given the current
// partition (the paper's Step 3a, all candidates at once).
std::vector<std::uint64_t> candidate_dist(const ResponseMatrix& rm,
                                          std::size_t test,
                                          const Partition& partition);

// The paper's LOWER early-stop scan over candidate scores in enumeration
// order: returns the first candidate attaining the best score among those
// the scan actually examines.
ResponseId scan_with_lower(const std::vector<std::uint64_t>& dist,
                           std::size_t lower);

// One pass of Procedure 1 over the tests in `order` (a permutation of
// 0..k-1). Baselines of tests processed after full refinement default to
// the fault-free response.
BaselineSelection procedure1_single(const ResponseMatrix& rm,
                                    const std::vector<std::size_t>& order,
                                    std::size_t lower);

// Procedure 1 with restarts: the first pass uses the natural test order,
// pass r > 0 a permutation drawn from Rng(seed + r); stops after `calls1`
// consecutive passes without improvement (or on reaching
// target_indistinguished / max_calls). Never returns a selection worse than
// the pass/fail dictionary (all-fault-free baselines). Ties between restarts
// go to the lowest restart index. Runs restarts on config.num_threads
// threads with a deterministic reduction — see BaselineSelectionConfig.
BaselineSelection run_procedure1(const ResponseMatrix& rm,
                                 const BaselineSelectionConfig& config);

}  // namespace sddict
