// Multiset of dictionary-row signatures with a running duplicate-pair
// count. Two faults are indistinguished by a bit dictionary exactly when
// their rows are equal, so duplicate_pairs() is the number of
// indistinguished pairs. Rows are summarized as 128-bit XOR signatures of
// per-test tokens (collision probability ~2^-128), which makes single-bit
// row flips O(1) — the operation Procedure 2 and hybridization live on.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <unordered_map>

#include "util/hash.h"

namespace sddict {

class SignatureMultiset {
 public:
  void insert(const Hash128& h) {
    const std::uint32_t c = counts_[h]++;
    dup_pairs_ += c;
  }

  void remove(const Hash128& h) {
    const auto it = counts_.find(h);
    if (it == counts_.end() || it->second == 0)
      throw std::logic_error("SignatureMultiset: removing absent signature");
    dup_pairs_ -= --it->second;
    if (it->second == 0) counts_.erase(it);
  }

  std::uint64_t duplicate_pairs() const { return dup_pairs_; }
  std::size_t distinct() const { return counts_.size(); }

 private:
  std::unordered_map<Hash128, std::uint32_t, Hash128Hasher> counts_;
  std::uint64_t dup_pairs_ = 0;
};

// Token contributed to a fault's row signature by a '1' bit under `test`.
inline Hash128 test_token(std::size_t test) { return slot_token(test, 1); }

}  // namespace sddict
