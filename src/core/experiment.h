// End-to-end driver for one row of the paper's Table 6: given a full-scan
// circuit and a test-set type, generate the test set, fault-simulate the
// collapsed fault list, build the full / pass-fail / same-different
// dictionaries, and report sizes and indistinguished-pair counts.
#pragma once

#include <string>

#include "core/baseline.h"
#include "core/procedure2.h"
#include "dict/dictionary.h"
#include "netlist/netlist.h"
#include "tgen/diagset.h"
#include "tgen/ndetect.h"

namespace sddict {

enum class TestSetKind { kDiagnostic, kTenDetect };

const char* test_set_kind_name(TestSetKind k);  // "diag" / "10det"

struct ExperimentConfig {
  BaselineSelectionConfig baseline;
  Procedure2Config proc2;  // target_indistinguished is filled by the driver
  NDetectOptions ndetect;
  DiagSetOptions diag;
  bool run_proc2 = true;
};

struct ExperimentRow {
  std::string circuit;
  std::string ttype;
  std::size_t num_tests = 0;
  std::size_t num_faults = 0;
  std::size_t num_outputs = 0;
  // Faults the final test set never detects; C(undetected, 2) pairs are a
  // floor under every dictionary's indistinguished count.
  std::size_t num_undetected = 0;
  DictionarySizes sizes;
  std::uint64_t indist_full = 0;
  std::uint64_t indist_passfail = 0;
  std::uint64_t indist_sd_rand = 0;  // Procedure 1 (best over restarts)
  std::uint64_t indist_sd_repl = 0;  // after Procedure 2
  bool proc2_improved = false;
  std::size_t proc1_calls = 0;
  double seconds_testgen = 0;
  double seconds_faultsim = 0;
  double seconds_proc1 = 0;
  double seconds_proc2 = 0;
};

// `nl` must be the combinational (full-scan) view of the circuit.
ExperimentRow run_experiment(const Netlist& nl, TestSetKind kind,
                             const ExperimentConfig& config = {});

// Table 6 formatting: the paper's column layout.
std::string experiment_header();
std::string format_experiment_row(const ExperimentRow& row);

}  // namespace sddict
