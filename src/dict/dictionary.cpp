#include "dict/dictionary.h"

namespace sddict {

const char* dictionary_kind_name(DictionaryKind k) {
  switch (k) {
    case DictionaryKind::kFull: return "full";
    case DictionaryKind::kPassFail: return "pass/fail";
    case DictionaryKind::kSameDifferent: return "same/different";
  }
  return "?";
}

DictionarySizes dictionary_sizes(std::uint64_t num_tests, std::uint64_t num_faults,
                                 std::uint64_t num_outputs) {
  DictionarySizes s;
  s.full_bits = num_tests * num_faults * num_outputs;
  s.pass_fail_bits = num_tests * num_faults;
  s.same_different_bits = num_tests * (num_faults + num_outputs);
  return s;
}

std::uint64_t hybrid_same_different_bits(std::uint64_t num_tests,
                                         std::uint64_t num_faults,
                                         std::uint64_t num_outputs,
                                         std::uint64_t stored_baselines) {
  return num_tests * num_faults + stored_baselines * num_outputs + num_tests;
}

}  // namespace sddict
