#include "dict/dictionary.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace sddict {

const char* dictionary_kind_name(DictionaryKind k) {
  switch (k) {
    case DictionaryKind::kFull: return "full";
    case DictionaryKind::kPassFail: return "pass/fail";
    case DictionaryKind::kSameDifferent: return "same/different";
  }
  return "?";
}

DictionarySizes dictionary_sizes(std::uint64_t num_tests, std::uint64_t num_faults,
                                 std::uint64_t num_outputs) {
  DictionarySizes s;
  s.full_bits = num_tests * num_faults * num_outputs;
  s.pass_fail_bits = num_tests * num_faults;
  s.same_different_bits = num_tests * (num_faults + num_outputs);
  return s;
}

std::uint64_t hybrid_same_different_bits(std::uint64_t num_tests,
                                         std::uint64_t num_faults,
                                         std::uint64_t num_outputs,
                                         std::uint64_t stored_baselines) {
  return num_tests * num_faults + stored_baselines * num_outputs + num_tests;
}

std::vector<DiagnosisMatch> rank_matches(std::vector<DiagnosisMatch> all,
                                         std::size_t max_results) {
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    return a.mismatches != b.mismatches ? a.mismatches < b.mismatches
                                        : a.fault < b.fault;
  });
  if (all.size() > max_results) all.resize(max_results);
  return all;
}

void check_observation_size(const char* what, std::size_t expected,
                            std::size_t actual) {
  if (actual == expected) return;
  throw std::invalid_argument(std::string(what) + ": expected " +
                              std::to_string(expected) + ", got " +
                              std::to_string(actual));
}

}  // namespace sddict
