// Pass/fail fault dictionary: one bit per (fault, test), set when the test
// detects the fault, i.e. the faulty response differs from the fault-free
// response (the baseline is implicitly z_ff,j for every test).
#pragma once

#include <cstdint>
#include <vector>

#include "dict/dictionary.h"
#include "dict/full_dict.h"
#include "dict/partition.h"
#include "sim/response.h"
#include "util/bitvec.h"

namespace sddict {

class PassFailDictionary {
 public:
  static PassFailDictionary build(const ResponseMatrix& rm);

  // Reconstructs a dictionary from raw rows (one BitVec of num_tests bits
  // per fault), e.g. when loading from disk. The partition is recomputed.
  static PassFailDictionary from_rows(std::vector<BitVec> rows,
                                      std::size_t num_tests,
                                      std::size_t num_outputs);

  std::size_t num_faults() const { return rows_.size(); }
  std::size_t num_tests() const { return num_tests_; }
  std::size_t num_outputs() const { return num_outputs_; }

  bool bit(FaultId f, std::size_t t) const { return rows_[f].get(t); }
  const BitVec& row(FaultId f) const { return rows_[f]; }

  std::uint64_t size_bits() const {
    return dictionary_sizes(num_tests_, rows_.size(), num_outputs_).pass_fail_bits;
  }

  const Partition& partition() const { return partition_; }
  std::uint64_t indistinguished_pairs() const {
    return partition_.indistinguished_pairs();
  }

  // Encodes an observed per-test response-id sequence into the pass/fail
  // signature the tester would report.
  BitVec encode(const std::vector<ResponseId>& observed) const;

  std::vector<DiagnosisMatch> diagnose(const BitVec& observed_bits,
                                       std::size_t max_results = 10) const;

 private:
  std::size_t num_tests_ = 0;
  std::size_t num_outputs_ = 0;
  std::vector<BitVec> rows_;
  Partition partition_{0};
};

}  // namespace sddict
