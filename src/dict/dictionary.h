// Common vocabulary for the three dictionary types the paper compares.
//
// Size model (Section 2 of the paper), for k tests, n faults, m outputs:
//   full         k * n * m   bits
//   pass/fail    k * n       bits
//   same/diff    k * (n + m) bits   (bit matrix + one baseline vector/test)
// The fault-free response (k*m bits) is needed by all flows and is not
// charged to any dictionary.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault.h"

namespace sddict {

enum class DictionaryKind { kFull, kPassFail, kSameDifferent };

const char* dictionary_kind_name(DictionaryKind k);

struct DictionarySizes {
  std::uint64_t full_bits = 0;
  std::uint64_t pass_fail_bits = 0;
  std::uint64_t same_different_bits = 0;
};

DictionarySizes dictionary_sizes(std::uint64_t num_tests, std::uint64_t num_faults,
                                 std::uint64_t num_outputs);

// Size of a hybrid same/different dictionary that stores explicit baselines
// for only `stored_baselines` of the tests (the rest compare against the
// fault-free response): bit matrix + stored vectors + a per-test flag bit.
std::uint64_t hybrid_same_different_bits(std::uint64_t num_tests,
                                         std::uint64_t num_faults,
                                         std::uint64_t num_outputs,
                                         std::uint64_t stored_baselines);

// One candidate of a cause-effect lookup, shared by every dictionary type.
struct DiagnosisMatch {
  FaultId fault = kNoFault;
  // Number of tests whose dictionary entry disagrees with the observation.
  std::uint32_t mismatches = 0;
  // Confidence annotations stamped by the diagnosis engine (diag/engine.h):
  // how far the runner-up trails this candidate (top match only) and how
  // many tests were actually compared after don't-care removal. Zero on
  // matches produced by a plain dictionary diagnose().
  std::uint32_t margin = 0;
  std::uint32_t effective_tests = 0;
};

// The shared tail of every dictionary's diagnose(): order candidates by
// (mismatches, fault id) and keep the best max_results.
std::vector<DiagnosisMatch> rank_matches(std::vector<DiagnosisMatch> all,
                                         std::size_t max_results);

// Throws std::invalid_argument naming the call site and both sizes, e.g.
// "SameDifferentDictionary::diagnose: signature bits: expected 14, got 12".
void check_observation_size(const char* what, std::size_t expected,
                            std::size_t actual);

}  // namespace sddict
