// Common vocabulary for the three dictionary types the paper compares.
//
// Size model (Section 2 of the paper), for k tests, n faults, m outputs:
//   full         k * n * m   bits
//   pass/fail    k * n       bits
//   same/diff    k * (n + m) bits   (bit matrix + one baseline vector/test)
// The fault-free response (k*m bits) is needed by all flows and is not
// charged to any dictionary.
#pragma once

#include <cstdint>

namespace sddict {

enum class DictionaryKind { kFull, kPassFail, kSameDifferent };

const char* dictionary_kind_name(DictionaryKind k);

struct DictionarySizes {
  std::uint64_t full_bits = 0;
  std::uint64_t pass_fail_bits = 0;
  std::uint64_t same_different_bits = 0;
};

DictionarySizes dictionary_sizes(std::uint64_t num_tests, std::uint64_t num_faults,
                                 std::uint64_t num_outputs);

// Size of a hybrid same/different dictionary that stores explicit baselines
// for only `stored_baselines` of the tests (the rest compare against the
// fault-free response): bit matrix + stored vectors + a per-test flag bit.
std::uint64_t hybrid_same_different_bits(std::uint64_t num_tests,
                                         std::uint64_t num_faults,
                                         std::uint64_t num_outputs,
                                         std::uint64_t stored_baselines);

}  // namespace sddict
