#include "dict/firstfail_dict.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace sddict {

FirstFailDictionary FirstFailDictionary::build(const ResponseMatrix& rm) {
  if (!rm.has_diff_outputs())
    throw std::invalid_argument(
        "FirstFailDictionary: build the response matrix with "
        "store_diff_outputs");
  FirstFailDictionary d;
  d.num_faults_ = rm.num_faults();
  d.num_tests_ = rm.num_tests();
  d.num_outputs_ = rm.num_outputs();
  d.entries_.assign(d.num_faults_ * d.num_tests_, 0);
  for (FaultId f = 0; f < rm.num_faults(); ++f)
    for (std::size_t t = 0; t < rm.num_tests(); ++t) {
      const ResponseId r = rm.response(f, t);
      if (r == 0) continue;
      const auto& outs = rm.diff_outputs(t, r);
      d.entries_[static_cast<std::size_t>(f) * d.num_tests_ + t] =
          1 + outs.front();  // lists are sorted ascending
    }

  d.partition_ = Partition(d.num_faults_);
  for (std::size_t t = 0; t < d.num_tests_; ++t) {
    d.partition_.refine_with([&](std::uint32_t f) { return d.entry(f, t); });
    if (d.partition_.fully_refined()) break;
  }
  return d;
}

std::uint64_t FirstFailDictionary::size_bits() const {
  const std::uint64_t values = num_outputs_ + 1;  // pass + m outputs
  const std::uint64_t bits_per_entry = std::bit_width(values - 1);
  return static_cast<std::uint64_t>(num_tests_) * num_faults_ * bits_per_entry;
}

std::vector<std::uint32_t> FirstFailDictionary::encode(
    const ResponseMatrix& rm, const std::vector<ResponseId>& observed) const {
  check_observation_size("FirstFailDictionary::encode: observed tests",
                         num_tests_, observed.size());
  std::vector<std::uint32_t> out(num_tests_, 0);
  for (std::size_t t = 0; t < num_tests_; ++t) {
    const ResponseId r = observed[t];
    if (r == 0) continue;
    if (r == static_cast<ResponseId>(-1) || r >= rm.num_distinct(t)) {
      out[t] = static_cast<std::uint32_t>(num_outputs_ + 1);  // unknown
      continue;
    }
    out[t] = 1 + rm.diff_outputs(t, r).front();
  }
  return out;
}

std::vector<DiagnosisMatch> FirstFailDictionary::diagnose(
    const std::vector<std::uint32_t>& observed, std::size_t max_results) const {
  check_observation_size("FirstFailDictionary::diagnose: observed tests",
                         num_tests_, observed.size());
  std::vector<DiagnosisMatch> all(num_faults_);
  for (FaultId f = 0; f < num_faults_; ++f) {
    std::uint32_t mism = 0;
    for (std::size_t t = 0; t < num_tests_; ++t)
      if (entry(f, t) != observed[t]) ++mism;
    all[f] = {f, mism};
  }
  return rank_matches(std::move(all), max_results);
}

}  // namespace sddict
