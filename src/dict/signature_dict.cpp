#include "dict/signature_dict.h"

#include <bit>
#include <stdexcept>
#include <unordered_map>

#include "sim/faultsim.h"
#include "sim/misr.h"

namespace sddict {
namespace {

struct MisrParams {
  std::uint64_t taps;
  std::uint64_t mask;
};

MisrParams params_for(unsigned width) {
  // Mirrors Misr::standard so the incremental build below produces exactly
  // the signatures Misr::absorb would (asserted by tests).
  std::uint64_t taps;
  switch (width) {
    case 8: taps = 0xB8; break;
    case 16: taps = 0xB400; break;
    case 24: taps = 0xE10000; break;
    case 32: taps = 0x80200003; break;
    default:
      throw std::invalid_argument("SignatureDictionary: unsupported width");
  }
  const std::uint64_t mask =
      width == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
  return {taps & mask, mask};
}

std::uint64_t misr_step(std::uint64_t state, std::uint64_t in,
                        const MisrParams& p) {
  const std::uint64_t fb =
      static_cast<std::uint64_t>(std::popcount(state & p.taps) & 1);
  return (((state << 1) | fb) ^ in) & p.mask;
}

}  // namespace

SignatureDictionary SignatureDictionary::build(const Netlist& nl,
                                               const FaultList& faults,
                                               const TestSet& tests,
                                               unsigned width) {
  const MisrParams p = params_for(width);
  SignatureDictionary d;
  d.width_ = width;
  d.signatures_.assign(faults.size(), 0);

  FaultSimulator fsim(nl);
  std::vector<std::uint64_t> words;
  std::uint64_t gin[64];   // folded good response per batch slot
  std::uint64_t din[64];   // folded response *difference* per slot

  for (std::size_t first = 0; first < tests.size(); first += 64) {
    const std::size_t count = std::min<std::size_t>(64, tests.size() - first);
    tests.pack_batch(first, count, &words);
    fsim.load_batch(words, count);

    for (std::size_t t = 0; t < count; ++t) gin[t] = 0;
    for (std::size_t o = 0; o < nl.num_outputs(); ++o) {
      const std::uint64_t w = fsim.good_value(nl.outputs()[o]);
      const std::uint64_t fold = std::uint64_t{1} << (o % width);
      for (std::size_t t = 0; t < count; ++t)
        if ((w >> t) & 1) gin[t] ^= fold;
    }
    for (std::size_t t = 0; t < count; ++t)
      d.fault_free_ = misr_step(d.fault_free_, gin[t], p);

    for (FaultId i = 0; i < faults.size(); ++i) {
      std::uint64_t dirty = 0;
      const std::uint64_t any =
          fsim.simulate_fault(faults[i], [&](std::size_t o, std::uint64_t w) {
            const std::uint64_t fold = std::uint64_t{1} << (o % width);
            std::uint64_t bits = w;
            while (bits != 0) {
              const int t = std::countr_zero(bits);
              bits &= bits - 1;
              if (((dirty >> t) & 1) == 0) din[t] = 0;
              dirty |= std::uint64_t{1} << t;
              din[t] ^= fold;
            }
          });
      std::uint64_t s = d.signatures_[i];
      for (std::size_t t = 0; t < count; ++t) {
        const bool has_diff = (any >> t) & 1 && (dirty >> t) & 1;
        s = misr_step(s, has_diff ? gin[t] ^ din[t] : gin[t], p);
      }
      d.signatures_[i] = s;
    }
  }

  // Partition by signature value.
  std::unordered_map<std::uint64_t, std::uint32_t> intern;
  d.partition_ = Partition(faults.size());
  d.partition_.refine_with([&](std::uint32_t f) {
    return intern.try_emplace(d.signatures_[f],
                              static_cast<std::uint32_t>(intern.size()))
        .first->second;
  });
  return d;
}

std::vector<FaultId> SignatureDictionary::diagnose(
    std::uint64_t observed_signature) const {
  std::vector<FaultId> out;
  for (FaultId f = 0; f < signatures_.size(); ++f)
    if (signatures_[f] == observed_signature) out.push_back(f);
  return out;
}

std::uint64_t SignatureDictionary::signature_of(
    const std::vector<BitVec>& responses, unsigned width) {
  Misr m = Misr::standard(width);
  for (const auto& r : responses) m.absorb(r);
  return m.signature();
}

}  // namespace sddict
