#include "dict/samediff_dict.h"

#include <algorithm>
#include <stdexcept>

namespace sddict {

SameDifferentDictionary SameDifferentDictionary::build(
    const ResponseMatrix& rm, std::vector<ResponseId> baselines) {
  if (baselines.size() != rm.num_tests())
    throw std::invalid_argument("SameDifferentDictionary: baseline count mismatch");
  for (std::size_t t = 0; t < baselines.size(); ++t)
    if (baselines[t] >= rm.num_distinct(t))
      throw std::invalid_argument(
          "SameDifferentDictionary: baseline id out of range for test " +
          std::to_string(t));

  std::vector<BitVec> rows(rm.num_faults(), BitVec(rm.num_tests()));
  for (FaultId f = 0; f < rm.num_faults(); ++f)
    for (std::size_t t = 0; t < rm.num_tests(); ++t)
      if (rm.response(f, t) != baselines[t]) rows[f].set(t, true);
  return from_parts(std::move(rows), std::move(baselines), rm.num_outputs());
}

SameDifferentDictionary SameDifferentDictionary::from_parts(
    std::vector<BitVec> rows, std::vector<ResponseId> baselines,
    std::size_t num_outputs) {
  const std::size_t num_tests = baselines.size();
  for (const auto& r : rows)
    if (r.size() != num_tests)
      throw std::invalid_argument("SameDifferentDictionary::from_parts: row width");
  SameDifferentDictionary d;
  d.num_tests_ = num_tests;
  d.num_outputs_ = num_outputs;
  d.baselines_ = std::move(baselines);
  d.rows_ = std::move(rows);

  d.partition_ = Partition(d.rows_.size());
  for (std::size_t t = 0; t < num_tests; ++t) {
    d.partition_.refine_with(
        [&](std::uint32_t f) { return static_cast<std::uint32_t>(d.bit(f, t)); });
    if (d.partition_.fully_refined()) break;
  }
  return d;
}

std::size_t SameDifferentDictionary::num_nontrivial_baselines() const {
  std::size_t n = 0;
  for (ResponseId b : baselines_) n += b != 0 ? 1 : 0;
  return n;
}

BitVec SameDifferentDictionary::encode(
    const std::vector<ResponseId>& observed) const {
  check_observation_size("SameDifferentDictionary::encode: observed tests",
                         num_tests_, observed.size());
  BitVec bits(num_tests_);
  for (std::size_t t = 0; t < num_tests_; ++t)
    bits.set(t, observed[t] != baselines_[t]);
  return bits;
}

std::vector<DiagnosisMatch> SameDifferentDictionary::diagnose(
    const BitVec& observed_bits, std::size_t max_results) const {
  check_observation_size("SameDifferentDictionary::diagnose: signature bits",
                         num_tests_, observed_bits.size());
  std::vector<DiagnosisMatch> all(rows_.size());
  for (FaultId f = 0; f < rows_.size(); ++f) {
    BitVec diff = rows_[f];
    diff ^= observed_bits;
    all[f] = {f, static_cast<std::uint32_t>(diff.count_ones())};
  }
  return rank_matches(std::move(all), max_results);
}

}  // namespace sddict
