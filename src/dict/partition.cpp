#include "dict/partition.h"

#include <numeric>

namespace sddict {

Partition::Partition(std::size_t n) : class_of_(n, 0) {
  if (n > 0) {
    classes_.emplace_back(n);
    std::iota(classes_[0].begin(), classes_[0].end(), std::uint32_t{0});
  }
}

std::uint64_t Partition::indistinguished_pairs() const {
  std::uint64_t total = 0;
  for (const auto& c : classes_) total += pairs(c.size());
  return total;
}

std::uint64_t Partition::refine(const std::vector<std::uint32_t>& labels) {
  return refine_with([&](std::uint32_t e) { return labels[e]; });
}

bool Partition::fully_refined() const {
  for (const auto& c : classes_)
    if (c.size() > 1) return false;
  return true;
}

}  // namespace sddict
