#include "dict/full_dict.h"

#include <algorithm>
#include <stdexcept>

namespace sddict {

FullDictionary FullDictionary::build(const ResponseMatrix& rm) {
  std::vector<ResponseId> entries(rm.num_faults() * rm.num_tests());
  for (FaultId f = 0; f < rm.num_faults(); ++f)
    for (std::size_t t = 0; t < rm.num_tests(); ++t)
      entries[static_cast<std::size_t>(f) * rm.num_tests() + t] =
          rm.response(f, t);
  return from_entries(std::move(entries), rm.num_faults(), rm.num_tests(),
                      rm.num_outputs());
}

FullDictionary FullDictionary::from_entries(std::vector<ResponseId> entries,
                                            std::size_t num_faults,
                                            std::size_t num_tests,
                                            std::size_t num_outputs) {
  if (entries.size() != num_faults * num_tests)
    throw std::invalid_argument("FullDictionary::from_entries: size mismatch");
  FullDictionary d;
  d.num_faults_ = num_faults;
  d.num_tests_ = num_tests;
  d.num_outputs_ = num_outputs;
  d.entries_ = std::move(entries);

  d.partition_ = Partition(d.num_faults_);
  for (std::size_t t = 0; t < d.num_tests_; ++t) {
    d.partition_.refine_with([&](std::uint32_t f) { return d.entry(f, t); });
    if (d.partition_.fully_refined()) break;
  }
  return d;
}

std::vector<DiagnosisMatch> FullDictionary::diagnose(
    const std::vector<ResponseId>& observed, std::size_t max_results) const {
  check_observation_size("FullDictionary::diagnose: observed tests",
                         num_tests_, observed.size());
  std::vector<DiagnosisMatch> all(num_faults_);
  for (FaultId f = 0; f < num_faults_; ++f) {
    std::uint32_t mism = 0;
    for (std::size_t t = 0; t < num_tests_; ++t)
      if (observed[t] == kUnknownResponse || entry(f, t) != observed[t]) ++mism;
    all[f] = {f, mism};
  }
  return rank_matches(std::move(all), max_results);
}

}  // namespace sddict
