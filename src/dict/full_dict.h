// Full fault dictionary: conceptually stores the complete output vector of
// every fault under every test (k*n*m bits). This implementation keeps the
// interned response id per (fault, test) — equality-equivalent to the full
// vectors and sufficient for both resolution accounting and cause-effect
// matching; the size model still charges the paper's k*n*m bits.
#pragma once

#include <cstdint>
#include <vector>

#include "dict/dictionary.h"
#include "dict/partition.h"
#include "sim/response.h"

namespace sddict {

// Sentinel for "observed response matches no modeled fault's response".
inline constexpr ResponseId kUnknownResponse = static_cast<ResponseId>(-1);

class FullDictionary {
 public:
  static FullDictionary build(const ResponseMatrix& rm);

  // Reconstructs a dictionary from raw entries (fault-major, n*k ids), e.g.
  // when loading from disk. The partition is recomputed.
  static FullDictionary from_entries(std::vector<ResponseId> entries,
                                     std::size_t num_faults,
                                     std::size_t num_tests,
                                     std::size_t num_outputs);

  std::size_t num_faults() const { return num_faults_; }
  std::size_t num_tests() const { return num_tests_; }
  std::size_t num_outputs() const { return num_outputs_; }

  ResponseId entry(FaultId f, std::size_t t) const {
    return entries_[static_cast<std::size_t>(f) * num_tests_ + t];
  }
  // Contiguous num_tests-wide row of a fault — the operand of the
  // word-parallel symbol-mismatch kernel (store/kernels.h).
  const ResponseId* row_entries(FaultId f) const {
    return entries_.data() + static_cast<std::size_t>(f) * num_tests_;
  }

  std::uint64_t size_bits() const {
    return dictionary_sizes(num_tests_, num_faults_, num_outputs_).full_bits;
  }

  const Partition& partition() const { return partition_; }
  std::uint64_t indistinguished_pairs() const {
    return partition_.indistinguished_pairs();
  }

  // Cause-effect lookup: faults ranked by how many tests disagree with the
  // observed per-test response ids (kUnknownResponse disagrees with every
  // modeled response). At most max_results matches, best first; ties broken
  // by fault id.
  std::vector<DiagnosisMatch> diagnose(const std::vector<ResponseId>& observed,
                                       std::size_t max_results = 10) const;

 private:
  std::size_t num_faults_ = 0;
  std::size_t num_tests_ = 0;
  std::size_t num_outputs_ = 0;
  std::vector<ResponseId> entries_;
  Partition partition_{0};
};

}  // namespace sddict
