// Detection-list representation of the pass/fail dictionary — the paper's
// Section 1 note that dictionaries may also be stored as "lists of detected
// faults" [1]. Information content (and therefore resolution) is identical
// to the pass/fail bit matrix; only the encoding differs: per test, the
// sorted list of detected fault ids, at ceil(log2 n) bits per entry. Lists
// win over the k*n bit matrix exactly when detection density is below
// 1/ceil(log2 n) — the trade the size model here exposes.
#pragma once

#include <cstdint>
#include <vector>

#include "dict/full_dict.h"
#include "dict/partition.h"
#include "sim/response.h"

namespace sddict {

class DetectionListDictionary {
 public:
  static DetectionListDictionary build(const ResponseMatrix& rm);

  std::size_t num_faults() const { return num_faults_; }
  std::size_t num_tests() const { return lists_.size(); }

  // Sorted ids of the faults test t detects.
  const std::vector<FaultId>& detected_by(std::size_t t) const {
    return lists_[t];
  }

  // Total detections across the dictionary (list entries).
  std::size_t total_entries() const;

  // Entries * ceil(log2 n) + one per-test length field (ceil(log2(n+1))).
  std::uint64_t size_bits() const;

  // Identical to the pass/fail dictionary's by construction.
  std::uint64_t indistinguished_pairs() const {
    return partition_.indistinguished_pairs();
  }
  const Partition& partition() const { return partition_; }

  // Density threshold: with this fault count, lists are smaller than the
  // bit matrix iff the average detection density is below the returned
  // value.
  static double breakeven_density(std::size_t num_faults);

 private:
  std::size_t num_faults_ = 0;
  std::vector<std::vector<FaultId>> lists_;
  Partition partition_{0};
};

}  // namespace sddict
