#include "dict/serialize.h"

#include <cctype>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "util/crc32.h"

namespace sddict {
namespace {

struct Header {
  std::size_t tests = 0;
  std::size_t faults = 0;
  std::size_t outputs = 0;
  std::size_t rank = 1;  // multibaseline only
  int version = 0;
};

// Emits payload lines while accumulating the trailer checksum. The CRC
// covers each line plus exactly one '\n', matching what the reader
// accumulates after CR stripping.
class ChecksumWriter {
 public:
  explicit ChecksumWriter(std::ostream& out) : out_(out) {}

  void line(const std::string& s) {
    crc_.update(s);
    crc_.update("\n");
    out_ << s << '\n';
  }

  // Writes the trailer, flushes, and verifies the stream: a failure
  // anywhere during the write (disk full, closed pipe, a throwing
  // streambuf) sticks in the stream state and is reported here instead of
  // leaving a torn file behind silently.
  void finish() {
    char trailer[16];
    std::snprintf(trailer, sizeof trailer, "crc32 %08x", crc_.value());
    out_ << trailer << '\n';
    out_.flush();
    if (!out_)
      throw std::runtime_error("dictionary write: stream failure");
  }

 private:
  std::ostream& out_;
  Crc32 crc_;
};

// Reads payload lines (CR-stripped) while accumulating the checksum the
// v2 trailer must match.
class ChecksumReader {
 public:
  explicit ChecksumReader(std::istream& in) : in_(in) {}

  // A payload line; throws naming `what` on truncation.
  std::string line(const char* what) {
    std::string s;
    if (!raw_line(&s))
      throw std::runtime_error(std::string("dictionary read: truncated ") +
                               what);
    crc_.update(s);
    crc_.update("\n");
    return s;
  }

  Header header(const char* magic, bool with_rank) {
    const std::string first = line("header");
    Header h;
    if (first == std::string(magic) + " v1")
      h.version = 1;
    else if (first == std::string(magic) + " v2")
      h.version = 2;
    else
      throw std::runtime_error(std::string("dictionary read: expected '") +
                               magic + " v1' or '" + magic + " v2' header");
    version_ = h.version;

    std::istringstream hs(line("header"));
    std::string kw1, kw2, kw3;
    if (!(hs >> kw1 >> h.tests >> kw2 >> h.faults >> kw3 >> h.outputs) ||
        kw1 != "tests" || kw2 != "faults" || kw3 != "outputs")
      throw std::runtime_error("dictionary read: malformed dimensions line");
    if (with_rank) {
      std::string kw4;
      if (!(hs >> kw4 >> h.rank) || kw4 != "rank" || h.rank == 0)
        throw std::runtime_error("dictionary read: malformed dimensions line");
    }
    std::string extra;
    if (hs >> extra)
      throw std::runtime_error(
          "dictionary read: trailing tokens on dimensions line");
    return h;
  }

  // Verifies the v2 trailer (v1 has none) and rejects anything but
  // whitespace afterwards.
  void finish() {
    if (version_ == 2) {
      std::string s;
      if (!raw_line(&s))
        throw std::runtime_error("dictionary read: missing crc32 trailer");
      std::istringstream ts(s);
      std::string kw, hex, extra;
      if (!(ts >> kw >> hex) || kw != "crc32" || hex.size() != 8 ||
          (ts >> extra))
        throw std::runtime_error("dictionary read: malformed crc32 trailer");
      std::uint32_t stored = 0;
      for (char c : hex) {
        const unsigned char u = static_cast<unsigned char>(c);
        if (!std::isxdigit(u))
          throw std::runtime_error("dictionary read: malformed crc32 trailer");
        stored = stored * 16 +
                 static_cast<std::uint32_t>(
                     std::isdigit(u) ? c - '0' : std::tolower(u) - 'a' + 10);
      }
      if (stored != crc_.value()) {
        char msg[80];
        std::snprintf(msg, sizeof msg,
                      "dictionary read: checksum mismatch "
                      "(stored %08x, computed %08x)",
                      stored, crc_.value());
        throw std::runtime_error(msg);
      }
    }
    char c;
    while (in_.get(c)) {
      if (c != '\n' && c != '\r' && c != ' ' && c != '\t')
        throw std::runtime_error(
            "dictionary read: trailing garbage after rows");
    }
  }

 private:
  // getline that tolerates CRLF line endings: files written on (or round-
  // tripped through) Windows carry a trailing '\r' that would otherwise
  // fail the exact width/keyword checks with misleading errors.
  bool raw_line(std::string* s) {
    if (!std::getline(in_, *s)) return false;
    if (!s->empty() && s->back() == '\r') s->pop_back();
    return true;
  }

  std::istream& in_;
  Crc32 crc_;
  int version_ = 0;
};

std::string dims_line(std::size_t tests, std::size_t faults,
                      std::size_t outputs) {
  std::ostringstream os;
  os << "tests " << tests << " faults " << faults << " outputs " << outputs;
  return os.str();
}

std::vector<BitVec> read_bit_rows(ChecksumReader& r, std::size_t num_rows,
                                  std::size_t width) {
  std::vector<BitVec> rows;
  rows.reserve(num_rows);
  for (std::size_t f = 0; f < num_rows; ++f) {
    const std::string line = r.line("rows");
    if (line.size() != width)
      throw std::runtime_error("dictionary read: row width mismatch");
    rows.push_back(BitVec::from_string(line));
  }
  return rows;
}

void write_bit_rows(ChecksumWriter& w, std::size_t num_faults,
                    const auto& row_of) {
  for (std::size_t f = 0; f < num_faults; ++f) w.line(row_of(f).to_string());
}

}  // namespace

void write_dictionary(const PassFailDictionary& d, std::ostream& out) {
  ChecksumWriter w(out);
  w.line("sddict-passfail v2");
  w.line(dims_line(d.num_tests(), d.num_faults(), d.num_outputs()));
  write_bit_rows(w, d.num_faults(), [&](std::size_t f) { return d.row(f); });
  w.finish();
}

void write_dictionary(const SameDifferentDictionary& d, std::ostream& out) {
  ChecksumWriter w(out);
  w.line("sddict-samediff v2");
  w.line(dims_line(d.num_tests(), d.num_faults(), d.num_outputs()));
  std::ostringstream bl;
  bl << "baselines";
  for (ResponseId b : d.baselines()) bl << ' ' << b;
  w.line(bl.str());
  write_bit_rows(w, d.num_faults(), [&](std::size_t f) { return d.row(f); });
  w.finish();
}

void write_dictionary(const FullDictionary& d, std::ostream& out) {
  ChecksumWriter w(out);
  w.line("sddict-full v2");
  w.line(dims_line(d.num_tests(), d.num_faults(), d.num_outputs()));
  for (std::size_t f = 0; f < d.num_faults(); ++f) {
    std::ostringstream row;
    for (std::size_t t = 0; t < d.num_tests(); ++t) {
      if (t) row << ' ';
      row << d.entry(static_cast<FaultId>(f), t);
    }
    w.line(row.str());
  }
  w.finish();
}

void write_dictionary(const MultiBaselineDictionary& d, std::ostream& out) {
  ChecksumWriter w(out);
  w.line("sddict-multibaseline v2");
  std::ostringstream dims;
  dims << dims_line(d.num_tests(), d.num_faults(), d.num_outputs()) << " rank "
       << d.baselines_per_test();
  w.line(dims.str());
  for (const auto& bs : d.baselines()) {
    std::ostringstream bl;
    bl << "baselines " << bs.size();
    for (ResponseId b : bs) bl << ' ' << b;
    w.line(bl.str());
  }
  write_bit_rows(w, d.num_faults(), [&](std::size_t f) { return d.row(f); });
  w.finish();
}

PassFailDictionary read_passfail_dictionary(std::istream& in) {
  ChecksumReader r(in);
  const Header h = r.header("sddict-passfail", false);
  auto rows = read_bit_rows(r, h.faults, h.tests);
  r.finish();
  return PassFailDictionary::from_rows(std::move(rows), h.tests, h.outputs);
}

SameDifferentDictionary read_samediff_dictionary(std::istream& in) {
  ChecksumReader r(in);
  const Header h = r.header("sddict-samediff", false);
  std::istringstream bs(r.line("baselines"));
  std::string kw;
  bs >> kw;
  if (kw != "baselines")
    throw std::runtime_error("dictionary read: missing 'baselines' line");
  std::vector<ResponseId> baselines(h.tests);
  for (auto& b : baselines)
    if (!(bs >> b)) throw std::runtime_error("dictionary read: short baselines");
  std::string extra;
  if (bs >> extra)
    throw std::runtime_error(
        "dictionary read: trailing tokens on baselines line");
  auto rows = read_bit_rows(r, h.faults, h.tests);
  r.finish();
  return SameDifferentDictionary::from_parts(std::move(rows),
                                             std::move(baselines), h.outputs);
}

FullDictionary read_full_dictionary(std::istream& in) {
  ChecksumReader r(in);
  const Header h = r.header("sddict-full", false);
  std::vector<ResponseId> entries;
  entries.reserve(h.faults * h.tests);
  for (std::size_t f = 0; f < h.faults; ++f) {
    std::istringstream rs(r.line("rows"));
    ResponseId id;
    for (std::size_t t = 0; t < h.tests; ++t) {
      if (!(rs >> id)) throw std::runtime_error("dictionary read: short row");
      entries.push_back(id);
    }
    std::string extra;
    if (rs >> extra)
      throw std::runtime_error("dictionary read: trailing garbage in row");
  }
  r.finish();
  return FullDictionary::from_entries(std::move(entries), h.faults, h.tests,
                                      h.outputs);
}

MultiBaselineDictionary read_multibaseline_dictionary(std::istream& in) {
  ChecksumReader r(in);
  const Header h = r.header("sddict-multibaseline", true);
  std::vector<std::vector<ResponseId>> baselines(h.tests);
  for (std::size_t t = 0; t < h.tests; ++t) {
    std::istringstream bs(r.line("baselines"));
    std::string kw;
    std::size_t count = 0;
    if (!(bs >> kw >> count) || kw != "baselines" || count > h.rank)
      throw std::runtime_error("dictionary read: malformed baselines line");
    baselines[t].resize(count);
    for (auto& b : baselines[t])
      if (!(bs >> b))
        throw std::runtime_error("dictionary read: short baselines");
    std::string extra;
    if (bs >> extra)
      throw std::runtime_error(
          "dictionary read: trailing tokens on baselines line");
  }
  auto rows = read_bit_rows(r, h.faults, h.tests * h.rank);
  r.finish();
  return MultiBaselineDictionary::from_parts(
      std::move(rows), std::move(baselines), h.rank, h.outputs);
}

}  // namespace sddict
