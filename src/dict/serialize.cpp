#include "dict/serialize.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace sddict {
namespace {

struct Header {
  std::size_t tests = 0;
  std::size_t faults = 0;
  std::size_t outputs = 0;
};

// getline that tolerates CRLF line endings: files written on (or round-
// tripped through) Windows carry a trailing '\r' that would otherwise fail
// the exact width/keyword checks below with misleading errors.
bool getline_clean(std::istream& in, std::string& line) {
  if (!std::getline(in, line)) return false;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return true;
}

// After the last row nothing but whitespace may remain; anything else means
// the file has extra rows or was corrupted/concatenated, and silently
// ignoring it would hide the mismatch with the header's dimensions.
void reject_trailing_garbage(std::istream& in) {
  char c;
  while (in.get(c)) {
    if (c != '\n' && c != '\r' && c != ' ' && c != '\t')
      throw std::runtime_error("dictionary read: trailing garbage after rows");
  }
}

void write_header(std::ostream& out, const char* magic, std::size_t tests,
                  std::size_t faults, std::size_t outputs) {
  out << magic << " v1\n";
  out << "tests " << tests << " faults " << faults << " outputs " << outputs
      << "\n";
}

Header read_header(std::istream& in, const char* magic) {
  std::string line;
  if (!getline_clean(in, line) || line != std::string(magic) + " v1")
    throw std::runtime_error(std::string("dictionary read: expected '") + magic +
                             " v1' header");
  Header h;
  std::string kw1, kw2, kw3;
  if (!getline_clean(in, line))
    throw std::runtime_error("dictionary read: truncated header");
  std::istringstream hs(line);
  if (!(hs >> kw1 >> h.tests >> kw2 >> h.faults >> kw3 >> h.outputs) ||
      kw1 != "tests" || kw2 != "faults" || kw3 != "outputs")
    throw std::runtime_error("dictionary read: malformed dimensions line");
  return h;
}

std::vector<BitVec> read_bit_rows(std::istream& in, const Header& h) {
  std::vector<BitVec> rows;
  rows.reserve(h.faults);
  std::string line;
  for (std::size_t f = 0; f < h.faults; ++f) {
    if (!getline_clean(in, line))
      throw std::runtime_error("dictionary read: truncated rows");
    if (line.size() != h.tests)
      throw std::runtime_error("dictionary read: row width mismatch");
    rows.push_back(BitVec::from_string(line));
  }
  return rows;
}

void write_bit_rows(std::ostream& out, std::size_t num_faults,
                    const auto& row_of) {
  for (std::size_t f = 0; f < num_faults; ++f) out << row_of(f).to_string() << "\n";
}

}  // namespace

void write_dictionary(const PassFailDictionary& d, std::ostream& out) {
  write_header(out, "sddict-passfail", d.num_tests(), d.num_faults(),
               d.num_outputs());
  write_bit_rows(out, d.num_faults(), [&](std::size_t f) { return d.row(f); });
}

void write_dictionary(const SameDifferentDictionary& d, std::ostream& out) {
  write_header(out, "sddict-samediff", d.num_tests(), d.num_faults(),
               d.num_outputs());
  out << "baselines";
  for (ResponseId b : d.baselines()) out << ' ' << b;
  out << "\n";
  write_bit_rows(out, d.num_faults(), [&](std::size_t f) { return d.row(f); });
}

void write_dictionary(const FullDictionary& d, std::ostream& out) {
  write_header(out, "sddict-full", d.num_tests(), d.num_faults(),
               d.num_outputs());
  for (std::size_t f = 0; f < d.num_faults(); ++f) {
    for (std::size_t t = 0; t < d.num_tests(); ++t) {
      if (t) out << ' ';
      out << d.entry(static_cast<FaultId>(f), t);
    }
    out << "\n";
  }
}

PassFailDictionary read_passfail_dictionary(std::istream& in) {
  const Header h = read_header(in, "sddict-passfail");
  auto rows = read_bit_rows(in, h);
  reject_trailing_garbage(in);
  return PassFailDictionary::from_rows(std::move(rows), h.tests, h.outputs);
}

SameDifferentDictionary read_samediff_dictionary(std::istream& in) {
  const Header h = read_header(in, "sddict-samediff");
  std::string line;
  if (!getline_clean(in, line))
    throw std::runtime_error("dictionary read: missing baselines");
  std::istringstream bs(line);
  std::string kw;
  bs >> kw;
  if (kw != "baselines")
    throw std::runtime_error("dictionary read: missing 'baselines' line");
  std::vector<ResponseId> baselines(h.tests);
  for (auto& b : baselines)
    if (!(bs >> b)) throw std::runtime_error("dictionary read: short baselines");
  auto rows = read_bit_rows(in, h);
  reject_trailing_garbage(in);
  return SameDifferentDictionary::from_parts(std::move(rows),
                                             std::move(baselines), h.outputs);
}

FullDictionary read_full_dictionary(std::istream& in) {
  const Header h = read_header(in, "sddict-full");
  std::vector<ResponseId> entries;
  entries.reserve(h.faults * h.tests);
  std::string line;
  for (std::size_t f = 0; f < h.faults; ++f) {
    if (!getline_clean(in, line))
      throw std::runtime_error("dictionary read: truncated rows");
    std::istringstream rs(line);
    ResponseId id;
    for (std::size_t t = 0; t < h.tests; ++t) {
      if (!(rs >> id)) throw std::runtime_error("dictionary read: short row");
      entries.push_back(id);
    }
    std::string extra;
    if (rs >> extra)
      throw std::runtime_error("dictionary read: trailing garbage in row");
  }
  reject_trailing_garbage(in);
  return FullDictionary::from_entries(std::move(entries), h.faults, h.tests,
                                      h.outputs);
}

}  // namespace sddict
