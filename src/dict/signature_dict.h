// Signature dictionary for BIST-style diagnosis (paper references [6],
// [19]): the entire per-fault response stream is time-compacted through a
// MISR into one w-bit signature, so the dictionary stores just n*w bits —
// far below even pass/fail for long test sets — at the price of aliasing
// (distinct response streams can share a signature) and of losing per-test
// match granularity (diagnosis is exact-match only).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dict/partition.h"
#include "fault/faultlist.h"
#include "netlist/netlist.h"
#include "sim/testset.h"

namespace sddict {

class SignatureDictionary {
 public:
  // Simulates every fault over the test set, absorbing each test's output
  // vector into a width-bit MISR.
  static SignatureDictionary build(const Netlist& nl, const FaultList& faults,
                                   const TestSet& tests, unsigned width = 32);

  std::size_t num_faults() const { return signatures_.size(); }
  unsigned width() const { return width_; }

  std::uint64_t signature(FaultId f) const { return signatures_[f]; }
  std::uint64_t fault_free_signature() const { return fault_free_; }

  std::uint64_t size_bits() const {
    return static_cast<std::uint64_t>(signatures_.size()) * width_;
  }

  const Partition& partition() const { return partition_; }
  std::uint64_t indistinguished_pairs() const {
    return partition_.indistinguished_pairs();
  }

  // Faults whose signature equals the observed one (exact-match semantics —
  // a single corrupted bit changes the whole signature).
  std::vector<FaultId> diagnose(std::uint64_t observed_signature) const;

  // Signature of an arbitrary observed response stream.
  static std::uint64_t signature_of(const std::vector<BitVec>& responses,
                                    unsigned width = 32);

 private:
  unsigned width_ = 32;
  std::uint64_t fault_free_ = 0;
  std::vector<std::uint64_t> signatures_;
  Partition partition_{0};
};

}  // namespace sddict
