#include "dict/passfail_dict.h"

#include <algorithm>
#include <stdexcept>

namespace sddict {

PassFailDictionary PassFailDictionary::build(const ResponseMatrix& rm) {
  std::vector<BitVec> rows(rm.num_faults(), BitVec(rm.num_tests()));
  for (FaultId f = 0; f < rm.num_faults(); ++f)
    for (std::size_t t = 0; t < rm.num_tests(); ++t)
      if (rm.detected(f, t)) rows[f].set(t, true);
  return from_rows(std::move(rows), rm.num_tests(), rm.num_outputs());
}

PassFailDictionary PassFailDictionary::from_rows(std::vector<BitVec> rows,
                                                 std::size_t num_tests,
                                                 std::size_t num_outputs) {
  for (const auto& r : rows)
    if (r.size() != num_tests)
      throw std::invalid_argument("PassFailDictionary::from_rows: row width");
  PassFailDictionary d;
  d.num_tests_ = num_tests;
  d.num_outputs_ = num_outputs;
  d.rows_ = std::move(rows);

  d.partition_ = Partition(d.rows_.size());
  for (std::size_t t = 0; t < num_tests; ++t) {
    d.partition_.refine_with(
        [&](std::uint32_t f) { return static_cast<std::uint32_t>(d.bit(f, t)); });
    if (d.partition_.fully_refined()) break;
  }
  return d;
}

BitVec PassFailDictionary::encode(const std::vector<ResponseId>& observed) const {
  if (observed.size() != num_tests_)
    throw std::invalid_argument("PassFailDictionary::encode: wrong length");
  BitVec bits(num_tests_);
  for (std::size_t t = 0; t < num_tests_; ++t)
    bits.set(t, observed[t] != 0);  // id 0 == fault-free == pass
  return bits;
}

std::vector<DiagnosisMatch> PassFailDictionary::diagnose(
    const BitVec& observed_bits, std::size_t max_results) const {
  if (observed_bits.size() != num_tests_)
    throw std::invalid_argument("PassFailDictionary::diagnose: wrong length");
  std::vector<DiagnosisMatch> all(rows_.size());
  for (FaultId f = 0; f < rows_.size(); ++f) {
    BitVec diff = rows_[f];
    diff ^= observed_bits;
    all[f] = {f, static_cast<std::uint32_t>(diff.count_ones())};
  }
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    return a.mismatches != b.mismatches ? a.mismatches < b.mismatches
                                        : a.fault < b.fault;
  });
  if (all.size() > max_results) all.resize(max_results);
  return all;
}

}  // namespace sddict
