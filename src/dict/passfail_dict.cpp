#include "dict/passfail_dict.h"

#include <algorithm>
#include <stdexcept>

namespace sddict {

PassFailDictionary PassFailDictionary::build(const ResponseMatrix& rm) {
  std::vector<BitVec> rows(rm.num_faults(), BitVec(rm.num_tests()));
  for (FaultId f = 0; f < rm.num_faults(); ++f)
    for (std::size_t t = 0; t < rm.num_tests(); ++t)
      if (rm.detected(f, t)) rows[f].set(t, true);
  return from_rows(std::move(rows), rm.num_tests(), rm.num_outputs());
}

PassFailDictionary PassFailDictionary::from_rows(std::vector<BitVec> rows,
                                                 std::size_t num_tests,
                                                 std::size_t num_outputs) {
  for (const auto& r : rows)
    if (r.size() != num_tests)
      throw std::invalid_argument("PassFailDictionary::from_rows: row width");
  PassFailDictionary d;
  d.num_tests_ = num_tests;
  d.num_outputs_ = num_outputs;
  d.rows_ = std::move(rows);

  d.partition_ = Partition(d.rows_.size());
  for (std::size_t t = 0; t < num_tests; ++t) {
    d.partition_.refine_with(
        [&](std::uint32_t f) { return static_cast<std::uint32_t>(d.bit(f, t)); });
    if (d.partition_.fully_refined()) break;
  }
  return d;
}

BitVec PassFailDictionary::encode(const std::vector<ResponseId>& observed) const {
  check_observation_size("PassFailDictionary::encode: observed tests",
                         num_tests_, observed.size());
  BitVec bits(num_tests_);
  for (std::size_t t = 0; t < num_tests_; ++t)
    bits.set(t, observed[t] != 0);  // id 0 == fault-free == pass
  return bits;
}

std::vector<DiagnosisMatch> PassFailDictionary::diagnose(
    const BitVec& observed_bits, std::size_t max_results) const {
  check_observation_size("PassFailDictionary::diagnose: signature bits",
                         num_tests_, observed_bits.size());
  std::vector<DiagnosisMatch> all(rows_.size());
  for (FaultId f = 0; f < rows_.size(); ++f) {
    BitVec diff = rows_[f];
    diff ^= observed_bits;
    all[f] = {f, static_cast<std::uint32_t>(diff.count_ones())};
  }
  return rank_matches(std::move(all), max_results);
}

}  // namespace sddict
