// Partition refinement over the fault set.
//
// At any point during dictionary construction, the pairs of faults that are
// *not yet distinguished* form an equivalence relation (two faults are
// related iff their dictionary rows so far are identical), so the paper's
// target pair set P is represented as a partition of F. Refining by one
// more dictionary column splits classes; the number of pairs separated by a
// split is exactly the paper's dist(z).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace sddict {

class Partition {
 public:
  // Starts as a single class containing all n elements.
  explicit Partition(std::size_t n);

  std::size_t num_elements() const { return class_of_.size(); }
  std::size_t num_classes() const { return classes_.size(); }

  // Pairs still together: sum over classes of |C| choose 2.
  std::uint64_t indistinguished_pairs() const;

  std::uint32_t class_of(std::size_t e) const { return class_of_[e]; }
  const std::vector<std::vector<std::uint32_t>>& classes() const {
    return classes_;
  }

  // Splits every class by the given labeling; elements stay together iff
  // they share a label. Returns the number of pairs separated.
  std::uint64_t refine(const std::vector<std::uint32_t>& labels);

  // Same, with a callable element -> label.
  template <typename F>
  std::uint64_t refine_with(F&& label_of) {
    std::uint64_t separated = 0;
    const std::size_t orig_classes = classes_.size();
    for (std::size_t c = 0; c < orig_classes; ++c) {
      auto& members = classes_[c];
      if (members.size() < 2) continue;
      groups_.clear();
      for (std::uint32_t e : members) groups_[label_of(e)].push_back(e);
      if (groups_.size() < 2) continue;
      separated += pairs(members.size());
      bool first = true;
      for (auto& [label, group] : groups_) {
        (void)label;
        separated -= pairs(group.size());
        if (first) {
          members = std::move(group);
          first = false;
        } else {
          const auto id = static_cast<std::uint32_t>(classes_.size());
          for (std::uint32_t e : group) class_of_[e] = id;
          classes_.push_back(std::move(group));
        }
      }
    }
    return separated;
  }

  // True when every class is a singleton (nothing left to distinguish).
  bool fully_refined() const;

  static std::uint64_t pairs(std::size_t n) {
    return static_cast<std::uint64_t>(n) * (n - 1) / 2;
  }

 private:
  std::vector<std::uint32_t> class_of_;
  std::vector<std::vector<std::uint32_t>> classes_;
  // Scratch reused across refine calls.
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> groups_;
};

}  // namespace sddict
