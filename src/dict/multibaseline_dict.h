// Multi-baseline same/different dictionary — the extension the paper
// explicitly leaves open ("One can select more than one baseline vector for
// a test vector. In this work we select only one per test vector."). Each
// test stores r baseline responses and contributes r bits per fault: bit l
// is 0 exactly when the faulty response equals baseline l. Since baselines
// are distinct, a response matches at most one of them, so test j splits
// the faults into up to r+2 groups (one per matched baseline, plus
// "matches none"; the fault-free group coincides with a baseline group when
// z_ff,j is among the baselines).
//
// Size: k*n*r bits of matrix + r*k*m bits of baselines. r = 1 reduces to
// the ordinary same/different dictionary.
#pragma once

#include <cstdint>
#include <vector>

#include "dict/dictionary.h"
#include "dict/full_dict.h"
#include "dict/partition.h"
#include "sim/response.h"
#include "util/bitvec.h"

namespace sddict {

class MultiBaselineDictionary {
 public:
  // baselines[t] holds the (distinct) baseline response ids of test t.
  // Sets may be ragged (a test with few distinct responses cannot supply
  // many distinct baselines); the dictionary rank r is the largest set
  // size, and missing slots behave as baselines nothing matches (their bit
  // is constant 1). At least one test must have a baseline.
  static MultiBaselineDictionary build(
      const ResponseMatrix& rm,
      std::vector<std::vector<ResponseId>> baselines);

  // Reconstructs a dictionary from raw parts, e.g. when loading from disk.
  // rows are k*rank bits wide; the partition is recomputed from the bits
  // (the matched-baseline index of (f, t) is the first zero bit of the
  // test's slot group, or rank when every bit is 1). Validates what can be
  // validated without the response matrix: row count/width, per-test
  // baseline distinctness and set size <= rank, at least one baseline
  // overall, every missing slot's bit constant 1, and at most one matched
  // baseline per (fault, test).
  static MultiBaselineDictionary from_parts(
      std::vector<BitVec> rows, std::vector<std::vector<ResponseId>> baselines,
      std::size_t rank, std::size_t num_outputs);

  std::size_t num_faults() const { return num_faults_; }
  std::size_t num_tests() const { return num_tests_; }
  std::size_t num_outputs() const { return num_outputs_; }
  std::size_t baselines_per_test() const { return rank_; }

  // Bit l of test t for fault f (1 = response differs from baseline l).
  bool bit(FaultId f, std::size_t t, std::size_t l) const {
    return rows_[f].get(t * rank_ + l);
  }
  // The whole r-bit-per-test row of a fault.
  const BitVec& row(FaultId f) const { return rows_[f]; }

  const std::vector<std::vector<ResponseId>>& baselines() const {
    return baselines_;
  }

  // Matrix bits (k*n*r) plus one stored output vector per actual baseline.
  std::uint64_t size_bits() const {
    return num_tests_ * num_faults_ * rank_ + stored_baselines_ * num_outputs_;
  }

  const Partition& partition() const { return partition_; }
  std::uint64_t indistinguished_pairs() const {
    return partition_.indistinguished_pairs();
  }

  // Observed response ids -> bit signature (kUnknownResponse differs from
  // every baseline).
  BitVec encode(const std::vector<ResponseId>& observed) const;

  std::vector<DiagnosisMatch> diagnose(const BitVec& observed_bits,
                                       std::size_t max_results = 10) const;

 private:
  std::size_t num_faults_ = 0;
  std::size_t num_tests_ = 0;
  std::size_t num_outputs_ = 0;
  std::size_t rank_ = 1;
  std::size_t stored_baselines_ = 0;
  std::vector<std::vector<ResponseId>> baselines_;
  std::vector<BitVec> rows_;
  Partition partition_{0};
};

}  // namespace sddict
