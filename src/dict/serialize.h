// Text serialization of fault dictionaries. The formats are line-oriented
// and self-describing:
//
//   sddict-passfail v1
//   tests <k> faults <n> outputs <m>
//   <n rows of k '0'/'1' characters>
//
//   sddict-samediff v1
//   tests <k> faults <n> outputs <m>
//   baselines <k response ids>
//   <n rows of k '0'/'1' characters>
//
//   sddict-full v1
//   tests <k> faults <n> outputs <m>
//   <n rows of k response ids>
#pragma once

#include <iosfwd>

#include "dict/full_dict.h"
#include "dict/passfail_dict.h"
#include "dict/samediff_dict.h"

namespace sddict {

void write_dictionary(const PassFailDictionary& d, std::ostream& out);
void write_dictionary(const SameDifferentDictionary& d, std::ostream& out);
void write_dictionary(const FullDictionary& d, std::ostream& out);

PassFailDictionary read_passfail_dictionary(std::istream& in);
SameDifferentDictionary read_samediff_dictionary(std::istream& in);
FullDictionary read_full_dictionary(std::istream& in);

}  // namespace sddict
