// Text serialization of fault dictionaries. The formats are line-oriented,
// self-describing, versioned and (from v2) checksummed:
//
//   sddict-passfail v2
//   tests <k> faults <n> outputs <m>
//   <n rows of k '0'/'1' characters>
//   crc32 <8 hex digits>
//
//   sddict-samediff v2
//   tests <k> faults <n> outputs <m>
//   baselines <k response ids>
//   <n rows of k '0'/'1' characters>
//   crc32 <8 hex digits>
//
//   sddict-full v2
//   tests <k> faults <n> outputs <m>
//   <n rows of k response ids>
//   crc32 <8 hex digits>
//
//   sddict-multibaseline v2
//   tests <k> faults <n> outputs <m> rank <r>
//   <k lines "baselines <c> <c response ids>">
//   <n rows of k*r '0'/'1' characters>
//   crc32 <8 hex digits>
//
// The trailer holds the CRC-32 (IEEE, zlib-compatible) of everything from
// the magic line through the last payload line, computed over each line
// with CR stripped plus a single '\n' — so checksums survive CRLF
// round-trips. Writers always emit v2 and verify the stream after the
// final flush; a write to a failed stream throws instead of silently
// producing a torn file.
//
// Readers accept v1 (no trailer) and v2. Every structural defect —
// truncation anywhere, width/dimension mismatches, malformed numerics,
// trailing garbage, a missing or malformed trailer, a checksum mismatch —
// raises std::runtime_error with a message naming the defect; readers
// never crash and never silently accept a corrupted file.
#pragma once

#include <iosfwd>

#include "dict/full_dict.h"
#include "dict/multibaseline_dict.h"
#include "dict/passfail_dict.h"
#include "dict/samediff_dict.h"

namespace sddict {

void write_dictionary(const PassFailDictionary& d, std::ostream& out);
void write_dictionary(const SameDifferentDictionary& d, std::ostream& out);
void write_dictionary(const FullDictionary& d, std::ostream& out);
void write_dictionary(const MultiBaselineDictionary& d, std::ostream& out);

PassFailDictionary read_passfail_dictionary(std::istream& in);
SameDifferentDictionary read_samediff_dictionary(std::istream& in);
FullDictionary read_full_dictionary(std::istream& in);
MultiBaselineDictionary read_multibaseline_dictionary(std::istream& in);

}  // namespace sddict
