#include "dict/multibaseline_dict.h"

#include <algorithm>
#include <stdexcept>

namespace sddict {

MultiBaselineDictionary MultiBaselineDictionary::build(
    const ResponseMatrix& rm, std::vector<std::vector<ResponseId>> baselines) {
  if (baselines.size() != rm.num_tests())
    throw std::invalid_argument("MultiBaselineDictionary: baseline count");
  std::size_t rank = 0;
  std::size_t stored = 0;
  for (std::size_t t = 0; t < baselines.size(); ++t) {
    auto& bs = baselines[t];
    rank = std::max(rank, bs.size());
    stored += bs.size();
    for (std::size_t l = 0; l < bs.size(); ++l) {
      if (bs[l] >= rm.num_distinct(t))
        throw std::invalid_argument(
            "MultiBaselineDictionary: baseline id out of range");
      for (std::size_t k = l + 1; k < bs.size(); ++k)
        if (bs[l] == bs[k])
          throw std::invalid_argument(
              "MultiBaselineDictionary: duplicate baseline in one test");
    }
  }
  if (rank == 0)
    throw std::invalid_argument("MultiBaselineDictionary: no baselines at all");

  MultiBaselineDictionary d;
  d.num_faults_ = rm.num_faults();
  d.num_tests_ = rm.num_tests();
  d.num_outputs_ = rm.num_outputs();
  d.rank_ = rank;
  d.stored_baselines_ = stored;
  d.baselines_ = std::move(baselines);
  d.rows_.assign(rm.num_faults(), BitVec(rm.num_tests() * rank));
  for (FaultId f = 0; f < rm.num_faults(); ++f)
    for (std::size_t t = 0; t < rm.num_tests(); ++t) {
      const ResponseId r = rm.response(f, t);
      const auto& bs = d.baselines_[t];
      for (std::size_t l = 0; l < rank; ++l)
        if (l >= bs.size() || r != bs[l]) d.rows_[f].set(t * rank + l, true);
    }

  d.partition_ = Partition(rm.num_faults());
  for (std::size_t t = 0; t < rm.num_tests(); ++t) {
    // Label = index of the matched baseline, or rank for "none".
    d.partition_.refine_with([&](std::uint32_t f) {
      const ResponseId r = rm.response(f, t);
      const auto& bs = d.baselines_[t];
      for (std::size_t l = 0; l < bs.size(); ++l)
        if (r == bs[l]) return static_cast<std::uint32_t>(l);
      return static_cast<std::uint32_t>(d.rank_);
    });
    if (d.partition_.fully_refined()) break;
  }
  return d;
}

MultiBaselineDictionary MultiBaselineDictionary::from_parts(
    std::vector<BitVec> rows, std::vector<std::vector<ResponseId>> baselines,
    std::size_t rank, std::size_t num_outputs) {
  if (rank == 0)
    throw std::invalid_argument("MultiBaselineDictionary::from_parts: rank 0");
  const std::size_t num_tests = baselines.size();
  std::size_t stored = 0;
  for (const auto& bs : baselines) {
    if (bs.size() > rank)
      throw std::invalid_argument(
          "MultiBaselineDictionary::from_parts: baseline set exceeds rank");
    stored += bs.size();
    for (std::size_t l = 0; l < bs.size(); ++l)
      for (std::size_t k = l + 1; k < bs.size(); ++k)
        if (bs[l] == bs[k])
          throw std::invalid_argument(
              "MultiBaselineDictionary: duplicate baseline in one test");
  }
  if (stored == 0)
    throw std::invalid_argument("MultiBaselineDictionary: no baselines at all");

  for (const auto& row : rows) {
    if (row.size() != num_tests * rank)
      throw std::invalid_argument(
          "MultiBaselineDictionary::from_parts: row width");
    for (std::size_t t = 0; t < num_tests; ++t) {
      std::size_t zeros = 0;
      for (std::size_t l = 0; l < rank; ++l) {
        if (row.get(t * rank + l)) continue;
        if (l >= baselines[t].size())
          throw std::invalid_argument(
              "MultiBaselineDictionary::from_parts: zero bit in empty slot");
        ++zeros;
      }
      // Baselines are distinct, so a response matches at most one.
      if (zeros > 1)
        throw std::invalid_argument(
            "MultiBaselineDictionary::from_parts: multiple matched baselines");
    }
  }

  MultiBaselineDictionary d;
  d.num_faults_ = rows.size();
  d.num_tests_ = num_tests;
  d.num_outputs_ = num_outputs;
  d.rank_ = rank;
  d.stored_baselines_ = stored;
  d.baselines_ = std::move(baselines);
  d.rows_ = std::move(rows);

  d.partition_ = Partition(d.num_faults_);
  for (std::size_t t = 0; t < d.num_tests_; ++t) {
    d.partition_.refine_with([&](std::uint32_t f) {
      for (std::size_t l = 0; l < d.rank_; ++l)
        if (!d.rows_[f].get(t * d.rank_ + l))
          return static_cast<std::uint32_t>(l);
      return static_cast<std::uint32_t>(d.rank_);
    });
    if (d.partition_.fully_refined()) break;
  }
  return d;
}

BitVec MultiBaselineDictionary::encode(
    const std::vector<ResponseId>& observed) const {
  check_observation_size("MultiBaselineDictionary::encode: observed tests",
                         num_tests_, observed.size());
  BitVec bits(num_tests_ * rank_);
  for (std::size_t t = 0; t < num_tests_; ++t) {
    const auto& bs = baselines_[t];
    for (std::size_t l = 0; l < rank_; ++l)
      if (l >= bs.size() || observed[t] != bs[l]) bits.set(t * rank_ + l, true);
  }
  return bits;
}

std::vector<DiagnosisMatch> MultiBaselineDictionary::diagnose(
    const BitVec& observed_bits, std::size_t max_results) const {
  check_observation_size("MultiBaselineDictionary::diagnose: signature bits",
                         num_tests_ * rank_, observed_bits.size());
  std::vector<DiagnosisMatch> all(rows_.size());
  for (FaultId f = 0; f < rows_.size(); ++f) {
    BitVec diff = rows_[f];
    diff ^= observed_bits;
    all[f] = {f, static_cast<std::uint32_t>(diff.count_ones())};
  }
  return rank_matches(std::move(all), max_results);
}

}  // namespace sddict
