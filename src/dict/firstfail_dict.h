// First-fail dictionary: a classic low-resolution compromise from the
// literature the paper builds on (cf. reference [12], Lavo & Larrabee,
// "Making Cause-Effect Cost Effective: Low-Resolution Fault Dictionaries").
// Each (fault, test) entry records whether the test detects the fault and,
// if so, *which output fails first* (lowest failing output index):
//
//   entry = 0                 -> pass
//   entry = 1 + o             -> fail, first failing output is o
//
// Size: k * n * ceil(log2(m+1)) bits — between pass/fail and full. Included
// as a comparison point on the size/resolution frontier the same/different
// dictionary competes on.
#pragma once

#include <cstdint>
#include <vector>

#include "dict/dictionary.h"
#include "dict/full_dict.h"
#include "dict/partition.h"
#include "sim/response.h"

namespace sddict {

class FirstFailDictionary {
 public:
  // Requires a response matrix built with store_diff_outputs = true.
  static FirstFailDictionary build(const ResponseMatrix& rm);

  std::size_t num_faults() const { return num_faults_; }
  std::size_t num_tests() const { return num_tests_; }
  std::size_t num_outputs() const { return num_outputs_; }

  // 0 = pass, 1+o = first failing output o.
  std::uint32_t entry(FaultId f, std::size_t t) const {
    return entries_[static_cast<std::size_t>(f) * num_tests_ + t];
  }

  std::uint64_t size_bits() const;

  const Partition& partition() const { return partition_; }
  std::uint64_t indistinguished_pairs() const {
    return partition_.indistinguished_pairs();
  }

  // Converts observed responses (as response ids of `rm`, which must be the
  // matrix the dictionary was built from) into entry values; unknown
  // responses cannot be translated and yield entry value m+1 ("mismatch
  // against everything").
  std::vector<std::uint32_t> encode(const ResponseMatrix& rm,
                                    const std::vector<ResponseId>& observed) const;

  std::vector<DiagnosisMatch> diagnose(const std::vector<std::uint32_t>& observed,
                                       std::size_t max_results = 10) const;

 private:
  std::size_t num_faults_ = 0;
  std::size_t num_tests_ = 0;
  std::size_t num_outputs_ = 0;
  std::vector<std::uint32_t> entries_;
  Partition partition_{0};
};

}  // namespace sddict
