// Same/different fault dictionary (the paper's contribution): one bit per
// (fault, test), where the bit compares the faulty response against a
// per-test *baseline* response z_bl,j instead of the fault-free response.
// Baseline selection lives in src/core; this class materializes the
// dictionary for a given baseline assignment.
#pragma once

#include <cstdint>
#include <vector>

#include "dict/dictionary.h"
#include "dict/full_dict.h"
#include "dict/partition.h"
#include "sim/response.h"
#include "util/bitvec.h"

namespace sddict {

class SameDifferentDictionary {
 public:
  // baselines[t] is the response id (within rm's interning for test t) the
  // t-th column compares against; id 0 reproduces a pass/fail dictionary.
  static SameDifferentDictionary build(const ResponseMatrix& rm,
                                       std::vector<ResponseId> baselines);

  // Reconstructs a dictionary from raw parts, e.g. when loading from disk.
  // The partition is recomputed.
  static SameDifferentDictionary from_parts(std::vector<BitVec> rows,
                                            std::vector<ResponseId> baselines,
                                            std::size_t num_outputs);

  std::size_t num_faults() const { return rows_.size(); }
  std::size_t num_tests() const { return num_tests_; }
  std::size_t num_outputs() const { return num_outputs_; }

  bool bit(FaultId f, std::size_t t) const { return rows_[f].get(t); }
  const BitVec& row(FaultId f) const { return rows_[f]; }

  const std::vector<ResponseId>& baselines() const { return baselines_; }

  // Tests whose baseline is not the fault-free response (only these need a
  // stored baseline vector in the hybrid size model).
  std::size_t num_nontrivial_baselines() const;

  std::uint64_t size_bits() const {
    return dictionary_sizes(num_tests_, rows_.size(), num_outputs_)
        .same_different_bits;
  }
  std::uint64_t hybrid_size_bits() const {
    return hybrid_same_different_bits(num_tests_, rows_.size(), num_outputs_,
                                      num_nontrivial_baselines());
  }

  const Partition& partition() const { return partition_; }
  std::uint64_t indistinguished_pairs() const {
    return partition_.indistinguished_pairs();
  }

  // Observed response ids -> same/different signature. kUnknownResponse
  // (a response no modeled fault produces) always differs from the baseline.
  BitVec encode(const std::vector<ResponseId>& observed) const;

  std::vector<DiagnosisMatch> diagnose(const BitVec& observed_bits,
                                       std::size_t max_results = 10) const;

 private:
  std::size_t num_tests_ = 0;
  std::size_t num_outputs_ = 0;
  std::vector<ResponseId> baselines_;
  std::vector<BitVec> rows_;
  Partition partition_{0};
};

}  // namespace sddict
