#include "dict/detlist_dict.h"

#include <bit>

namespace sddict {

DetectionListDictionary DetectionListDictionary::build(const ResponseMatrix& rm) {
  DetectionListDictionary d;
  d.num_faults_ = rm.num_faults();
  d.lists_.assign(rm.num_tests(), {});
  for (std::size_t t = 0; t < rm.num_tests(); ++t)
    for (FaultId f = 0; f < rm.num_faults(); ++f)
      if (rm.detected(f, t)) d.lists_[t].push_back(f);

  d.partition_ = Partition(rm.num_faults());
  for (std::size_t t = 0; t < rm.num_tests(); ++t) {
    d.partition_.refine_with([&](std::uint32_t f) {
      return static_cast<std::uint32_t>(rm.detected(f, t));
    });
    if (d.partition_.fully_refined()) break;
  }
  return d;
}

std::size_t DetectionListDictionary::total_entries() const {
  std::size_t n = 0;
  for (const auto& l : lists_) n += l.size();
  return n;
}

std::uint64_t DetectionListDictionary::size_bits() const {
  if (num_faults_ == 0) return 0;
  const std::uint64_t id_bits = std::bit_width(num_faults_ - 1);
  const std::uint64_t len_bits = std::bit_width(num_faults_);
  return total_entries() * id_bits + lists_.size() * len_bits;
}

double DetectionListDictionary::breakeven_density(std::size_t num_faults) {
  if (num_faults <= 1) return 1.0;
  return 1.0 / static_cast<double>(std::bit_width(num_faults - 1));
}

}  // namespace sddict
