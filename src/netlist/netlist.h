// Gate-level netlist container. A netlist is a DAG of gates (cycles are
// only permitted through DFFs, which the full-scan transform removes before
// simulation). Primary outputs are references to driver gates; a gate can
// drive several outputs and an output can also feed other gates.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/gate.h"

namespace sddict {

class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  // --- construction -------------------------------------------------------

  // Adds a gate; fanins must already exist. Names must be unique and
  // non-empty. Returns the new gate's id.
  GateId add_gate(GateType type, const std::string& name,
                  const std::vector<GateId>& fanin = {});

  // Marks an existing gate as a primary output. A gate may be marked at most
  // once; order of marking defines output order.
  void mark_output(GateId g);

  // Sequential loops (DFF -> logic -> same DFF) make it impossible to create
  // every gate after its fanin. A DFF can therefore be created first as a
  // placeholder with no fanin and wired to its data input later.
  GateId add_dff_placeholder(const std::string& name);
  void connect_dff(GateId dff, GateId data_src);

  // Checks structural invariants (fanin arities, acyclicity except through
  // DFFs, fanout consistency). Throws std::runtime_error with a message on
  // violation.
  void validate() const;

  // --- access --------------------------------------------------------------

  std::size_t num_gates() const { return gates_.size(); }
  const Gate& gate(GateId g) const { return gates_[g]; }

  const std::vector<GateId>& inputs() const { return inputs_; }
  const std::vector<GateId>& outputs() const { return outputs_; }
  const std::vector<GateId>& dffs() const { return dffs_; }

  std::size_t num_inputs() const { return inputs_.size(); }
  std::size_t num_outputs() const { return outputs_.size(); }

  bool is_output(GateId g) const { return output_index_[g] >= 0; }
  // Position of g in outputs(), or -1.
  int output_index(GateId g) const { return output_index_[g]; }

  // Id of the gate with the given name, or kNoGate.
  GateId find(const std::string& name) const;

  bool has_dffs() const { return !dffs_.empty(); }

  // --- topology -------------------------------------------------------------

  // Gates in topological order (fanins before fanouts); DFF outputs are
  // treated as sources. Cached; invalidated by add_gate.
  const std::vector<GateId>& topo_order() const;

  // Logic level of each gate: inputs/DFFs/constants at level 0, otherwise
  // 1 + max fanin level. Cached alongside topo_order.
  const std::vector<std::uint32_t>& levels() const;

  std::uint32_t depth() const;

  // Number of connections (sum of fanin arities).
  std::size_t num_lines() const;

 private:
  void build_topo() const;

  std::string name_;
  std::vector<Gate> gates_;
  std::vector<GateId> inputs_;
  std::vector<GateId> outputs_;
  std::vector<GateId> dffs_;
  std::vector<int> output_index_;
  std::unordered_map<std::string, GateId> by_name_;

  mutable bool topo_valid_ = false;
  mutable std::vector<GateId> topo_;
  mutable std::vector<std::uint32_t> levels_;
};

}  // namespace sddict
