#include "netlist/netlist.h"

#include <algorithm>
#include <stdexcept>

namespace sddict {

GateId Netlist::add_gate(GateType type, const std::string& name,
                         const std::vector<GateId>& fanin) {
  if (name.empty()) throw std::runtime_error("add_gate: empty name");
  if (by_name_.count(name))
    throw std::runtime_error("add_gate: duplicate name '" + name + "'");
  // Arity checks.
  switch (type) {
    case GateType::kInput:
    case GateType::kConst0:
    case GateType::kConst1:
      if (!fanin.empty())
        throw std::runtime_error("add_gate: source gate '" + name + "' with fanin");
      break;
    case GateType::kBuf:
    case GateType::kNot:
    case GateType::kDff:
      if (fanin.size() != 1)
        throw std::runtime_error("add_gate: '" + name + "' needs exactly 1 fanin");
      break;
    default:
      if (fanin.empty())
        throw std::runtime_error("add_gate: '" + name + "' needs fanin");
      break;
  }
  for (GateId f : fanin)
    if (f >= gates_.size())
      throw std::runtime_error("add_gate: '" + name + "' references unknown fanin");

  const GateId id = static_cast<GateId>(gates_.size());
  Gate g;
  g.type = type;
  g.name = name;
  g.fanin = fanin;
  gates_.push_back(std::move(g));
  output_index_.push_back(-1);
  by_name_[name] = id;
  for (GateId f : fanin) gates_[f].fanout.push_back(id);
  if (type == GateType::kInput) inputs_.push_back(id);
  if (type == GateType::kDff) dffs_.push_back(id);
  topo_valid_ = false;
  return id;
}

GateId Netlist::add_dff_placeholder(const std::string& name) {
  if (name.empty()) throw std::runtime_error("add_dff_placeholder: empty name");
  if (by_name_.count(name))
    throw std::runtime_error("add_dff_placeholder: duplicate name '" + name + "'");
  const GateId id = static_cast<GateId>(gates_.size());
  Gate g;
  g.type = GateType::kDff;
  g.name = name;
  gates_.push_back(std::move(g));
  output_index_.push_back(-1);
  by_name_[name] = id;
  dffs_.push_back(id);
  topo_valid_ = false;
  return id;
}

void Netlist::connect_dff(GateId dff, GateId data_src) {
  if (dff >= gates_.size() || data_src >= gates_.size())
    throw std::runtime_error("connect_dff: bad gate id");
  Gate& g = gates_[dff];
  if (g.type != GateType::kDff)
    throw std::runtime_error("connect_dff: '" + g.name + "' is not a DFF");
  if (!g.fanin.empty())
    throw std::runtime_error("connect_dff: '" + g.name + "' already connected");
  g.fanin.push_back(data_src);
  gates_[data_src].fanout.push_back(dff);
  topo_valid_ = false;
}

void Netlist::mark_output(GateId g) {
  if (g >= gates_.size()) throw std::runtime_error("mark_output: bad gate id");
  if (output_index_[g] >= 0)
    throw std::runtime_error("mark_output: gate '" + gates_[g].name +
                             "' already an output");
  output_index_[g] = static_cast<int>(outputs_.size());
  outputs_.push_back(g);
}

GateId Netlist::find(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? kNoGate : it->second;
}

void Netlist::validate() const {
  // Fanout consistency.
  for (GateId g = 0; g < gates_.size(); ++g) {
    for (GateId f : gates_[g].fanin) {
      const auto& fo = gates_[f].fanout;
      if (std::count(fo.begin(), fo.end(), g) !=
          std::count(gates_[g].fanin.begin(), gates_[g].fanin.end(), f))
        throw std::runtime_error("validate: fanout list inconsistent at '" +
                                 gates_[g].name + "'");
    }
  }
  for (GateId d : dffs_)
    if (gates_[d].fanin.size() != 1)
      throw std::runtime_error("validate: DFF '" + gates_[d].name +
                               "' has no data input");
  // Acyclicity (throws inside build_topo on a combinational cycle).
  topo_order();
  // Every non-source gate reachable check is not required, but outputs must
  // exist on a non-trivial netlist.
  if (!gates_.empty() && outputs_.empty())
    throw std::runtime_error("validate: netlist has no outputs");
}

const std::vector<GateId>& Netlist::topo_order() const {
  if (!topo_valid_) build_topo();
  return topo_;
}

const std::vector<std::uint32_t>& Netlist::levels() const {
  if (!topo_valid_) build_topo();
  return levels_;
}

std::uint32_t Netlist::depth() const {
  std::uint32_t d = 0;
  for (auto l : levels()) d = std::max(d, l);
  return d;
}

std::size_t Netlist::num_lines() const {
  std::size_t n = 0;
  for (const auto& g : gates_) n += g.fanin.size();
  return n;
}

void Netlist::build_topo() const {
  const std::size_t n = gates_.size();
  topo_.clear();
  topo_.reserve(n);
  levels_.assign(n, 0);
  // Kahn's algorithm; DFFs count as sources (their fanin edge is a
  // sequential edge, not a combinational dependency).
  std::vector<std::uint32_t> pending(n, 0);
  std::vector<GateId> ready;
  for (GateId g = 0; g < n; ++g) {
    const auto& gate = gates_[g];
    const bool source = gate.type == GateType::kInput ||
                        gate.type == GateType::kDff ||
                        gate.type == GateType::kConst0 ||
                        gate.type == GateType::kConst1;
    pending[g] = source ? 0 : static_cast<std::uint32_t>(gate.fanin.size());
    if (pending[g] == 0) ready.push_back(g);
  }
  while (!ready.empty()) {
    const GateId g = ready.back();
    ready.pop_back();
    topo_.push_back(g);
    for (GateId s : gates_[g].fanout) {
      if (gates_[s].type == GateType::kDff) continue;  // sequential edge
      levels_[s] = std::max(levels_[s], levels_[g] + 1);
      if (--pending[s] == 0) ready.push_back(s);
    }
  }
  if (topo_.size() != n)
    throw std::runtime_error("netlist '" + name_ + "' has a combinational cycle");
  topo_valid_ = true;
}

}  // namespace sddict
