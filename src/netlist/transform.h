// Structural netlist transformations:
//  * full_scan      — removes DFFs (scan cell -> pseudo-PI + pseudo-PO),
//                     turning a sequential circuit into the combinational
//                     test-view the rest of the library operates on.
//  * copy_into      — appends a (optionally fault-injected) copy of a
//                     combinational netlist into another netlist.
//  * build_pair_miter — two fault-injected copies with shared inputs and a
//                     single output that is 1 iff their responses differ;
//                     the core construct for distinguishing-test generation.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace sddict {

// A stuck-at fault site expressed structurally: pin < 0 addresses the gate's
// output line, pin >= 0 addresses that fanin connection of the gate.
struct Injection {
  GateId gate = kNoGate;
  int pin = -1;
  bool stuck_value = false;
};

// Converts a sequential netlist into its full-scan combinational view.
// Every DFF becomes a pseudo input (same name); its data source is exposed
// through a fresh BUF pseudo output named "<dff>_si". Output order is the
// original POs followed by the pseudo POs in DFF declaration order.
// Combinational netlists pass through unchanged (a fresh copy).
Netlist full_scan(const Netlist& nl);

// Appends a copy of `src` (combinational only) into `dst`, prefixing every
// non-input gate name with `prefix`. `input_map[i]` supplies the dst gate to
// use for src's i-th primary input. Every fault in `faults` is injected
// structurally inside the copy (the faulted line is rerouted to a constant).
// Returns the dst gate ids corresponding to src's outputs.
std::vector<GateId> copy_into(Netlist& dst, const Netlist& src,
                              const std::string& prefix,
                              const std::vector<GateId>& input_map,
                              const std::vector<Injection>& faults);

// A standalone copy of `nl` with the given faults permanently injected —
// the "defective chip" used by diagnosis examples and tests.
Netlist inject_faults(const Netlist& nl, const std::vector<Injection>& faults);

// Builds the distinguishing miter of faults fa and fb on combinational
// netlist nl: shared primary inputs, copy A with fa injected, copy B with fb
// injected, outputs pairwise XOR-ed and OR-reduced into the single output
// "miter_out". An input vector is a distinguishing test for (fa, fb) exactly
// when it sets miter_out to 1.
Netlist build_pair_miter(const Netlist& nl, const Injection& fa,
                         const Injection& fb);

// Builds a detection miter: copy A fault-free, copy B with `f` injected.
// miter_out = 1 exactly on tests that detect f.
Netlist build_detection_miter(const Netlist& nl, const Injection& f);

// Time-frame expansion: unrolls a sequential netlist into a purely
// combinational netlist spanning `frames` clock cycles. Inputs are the
// initial state (one pseudo input per DFF, named "<dff>@0") followed by the
// per-frame primary inputs ("<pi>@f"); outputs are the per-frame primary
// outputs ("<po>@f" in frame-major order) followed by the final next-state
// ("<dff>@<frames>"). Enables combinational ATPG and dictionary analysis of
// non-scan sequential behaviour.
Netlist unroll(const Netlist& nl, std::size_t frames);

// Appends an XOR space compactor: the m outputs of `nl` are distributed
// round-robin over `num_signatures` XOR trees, which become the only
// outputs of the result. Models the test-response compaction the paper
// notes shrinks m (and with it baseline storage) at the cost of aliasing.
// Requires a combinational netlist and 1 <= num_signatures <= m.
Netlist xor_compact_outputs(const Netlist& nl, std::size_t num_signatures);

}  // namespace sddict
