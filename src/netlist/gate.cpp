#include "netlist/gate.h"

#include <stdexcept>

#include "util/strings.h"

namespace sddict {

const char* gate_type_name(GateType t) {
  switch (t) {
    case GateType::kInput: return "INPUT";
    case GateType::kBuf: return "BUF";
    case GateType::kNot: return "NOT";
    case GateType::kAnd: return "AND";
    case GateType::kNand: return "NAND";
    case GateType::kOr: return "OR";
    case GateType::kNor: return "NOR";
    case GateType::kXor: return "XOR";
    case GateType::kXnor: return "XNOR";
    case GateType::kDff: return "DFF";
    case GateType::kConst0: return "CONST0";
    case GateType::kConst1: return "CONST1";
  }
  return "?";
}

bool parse_gate_type(const std::string& name, GateType* out) {
  const std::string n = to_lower(name);
  if (n == "buf" || n == "buff") *out = GateType::kBuf;
  else if (n == "not" || n == "inv") *out = GateType::kNot;
  else if (n == "and") *out = GateType::kAnd;
  else if (n == "nand") *out = GateType::kNand;
  else if (n == "or") *out = GateType::kOr;
  else if (n == "nor") *out = GateType::kNor;
  else if (n == "xor") *out = GateType::kXor;
  else if (n == "xnor") *out = GateType::kXnor;
  else if (n == "dff") *out = GateType::kDff;
  else if (n == "const0") *out = GateType::kConst0;
  else if (n == "const1") *out = GateType::kConst1;
  else return false;
  return true;
}

bool has_controlling_value(GateType t) {
  switch (t) {
    case GateType::kAnd:
    case GateType::kNand:
    case GateType::kOr:
    case GateType::kNor:
      return true;
    default:
      return false;
  }
}

bool controlling_value(GateType t) {
  switch (t) {
    case GateType::kAnd:
    case GateType::kNand:
      return false;
    case GateType::kOr:
    case GateType::kNor:
      return true;
    default:
      throw std::logic_error("controlling_value: gate has none");
  }
}

bool controlled_response(GateType t) {
  switch (t) {
    case GateType::kAnd: return false;
    case GateType::kNand: return true;
    case GateType::kOr: return true;
    case GateType::kNor: return false;
    default:
      throw std::logic_error("controlled_response: gate has none");
  }
}

bool is_inverting(GateType t) {
  switch (t) {
    case GateType::kNot:
    case GateType::kNand:
    case GateType::kNor:
    case GateType::kXnor:
      return true;
    default:
      return false;
  }
}

std::uint64_t eval_gate_words(GateType t, const std::uint64_t* in, std::size_t n) {
  switch (t) {
    case GateType::kInput:
      throw std::logic_error("eval_gate_words: INPUT has no function");
    case GateType::kDff:
      throw std::logic_error("eval_gate_words: DFF must be removed by full-scan");
    case GateType::kConst0:
      return 0;
    case GateType::kConst1:
      return ~std::uint64_t{0};
    case GateType::kBuf:
      return in[0];
    case GateType::kNot:
      return ~in[0];
    case GateType::kAnd:
    case GateType::kNand: {
      std::uint64_t v = in[0];
      for (std::size_t i = 1; i < n; ++i) v &= in[i];
      return t == GateType::kNand ? ~v : v;
    }
    case GateType::kOr:
    case GateType::kNor: {
      std::uint64_t v = in[0];
      for (std::size_t i = 1; i < n; ++i) v |= in[i];
      return t == GateType::kNor ? ~v : v;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      std::uint64_t v = in[0];
      for (std::size_t i = 1; i < n; ++i) v ^= in[i];
      return t == GateType::kXnor ? ~v : v;
    }
  }
  throw std::logic_error("eval_gate_words: bad gate type");
}

bool eval_gate_bool(GateType t, const bool* in, std::size_t n) {
  std::uint64_t words[16];
  if (n > 16) {
    std::vector<std::uint64_t> big(n);
    for (std::size_t i = 0; i < n; ++i) big[i] = in[i] ? ~std::uint64_t{0} : 0;
    return (eval_gate_words(t, big.data(), n) & 1) != 0;
  }
  for (std::size_t i = 0; i < n; ++i) words[i] = in[i] ? ~std::uint64_t{0} : 0;
  return (eval_gate_words(t, words, n) & 1) != 0;
}

}  // namespace sddict
