// Reader and writer for the ISCAS .bench netlist format:
//
//   # comment
//   INPUT(G0)
//   OUTPUT(G17)
//   G10 = NAND(G0, G1)
//   G7 = DFF(G10)
//
// The reader accepts forward references (a gate may be used before it is
// defined) and is case-insensitive in function names.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.h"

namespace sddict {

Netlist parse_bench(std::istream& in, const std::string& name = "bench");
Netlist parse_bench_string(const std::string& text, const std::string& name = "bench");
Netlist parse_bench_file(const std::string& path);

void write_bench(const Netlist& nl, std::ostream& out);
std::string write_bench_string(const Netlist& nl);

}  // namespace sddict
