#include "netlist/bench_io.h"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "util/strings.h"

namespace sddict {
namespace {

struct PendingGate {
  GateType type;
  std::vector<std::string> fanin_names;
};

[[noreturn]] void parse_error(std::size_t line_no, const std::string& msg) {
  throw std::runtime_error("bench parse error at line " + std::to_string(line_no) +
                           ": " + msg);
}

}  // namespace

Netlist parse_bench(std::istream& in, const std::string& name) {
  std::vector<std::string> input_names;
  std::vector<std::string> output_names;
  std::vector<std::string> def_order;  // ids stay stable across runs
  std::map<std::string, PendingGate> defs;

  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string line = trim(raw);
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = trim(line.substr(0, hash));
    if (line.empty()) continue;

    const std::string lower = to_lower(line);
    if (starts_with(lower, "input(") || starts_with(lower, "output(")) {
      const std::size_t open = line.find('(');
      const std::size_t close = line.rfind(')');
      if (close == std::string::npos || close < open)
        parse_error(line_no, "malformed INPUT/OUTPUT");
      const std::string net = trim(line.substr(open + 1, close - open - 1));
      if (net.empty()) parse_error(line_no, "empty net name");
      if (lower[0] == 'i')
        input_names.push_back(net);
      else
        output_names.push_back(net);
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) parse_error(line_no, "expected '='");
    const std::string lhs = trim(line.substr(0, eq));
    const std::string rhs = trim(line.substr(eq + 1));
    const std::size_t open = rhs.find('(');
    const std::size_t close = rhs.rfind(')');
    if (lhs.empty() || open == std::string::npos || close == std::string::npos ||
        close < open)
      parse_error(line_no, "malformed gate definition");
    const std::string func = trim(rhs.substr(0, open));
    GateType type;
    if (!parse_gate_type(func, &type))
      parse_error(line_no, "unknown gate function '" + func + "'");
    PendingGate pg;
    pg.type = type;
    const std::string arg_text = rhs.substr(open + 1, close - open - 1);
    if (!trim(arg_text).empty()) {
      for (const auto& a : split(arg_text, ',')) {
        const std::string an = trim(a);
        if (an.empty()) parse_error(line_no, "empty fanin name");
        pg.fanin_names.push_back(an);
      }
    }
    if (defs.count(lhs)) parse_error(line_no, "redefinition of '" + lhs + "'");
    defs[lhs] = std::move(pg);
    def_order.push_back(lhs);
  }

  Netlist nl(name);
  std::map<std::string, GateId> ids;
  for (const auto& in_name : input_names) {
    if (ids.count(in_name))
      throw std::runtime_error("bench: duplicate INPUT(" + in_name + ")");
    ids[in_name] = nl.add_gate(GateType::kInput, in_name);
  }

  // Phase 1: DFF outputs act as sources, so create every DFF up front as a
  // placeholder. This is what allows sequential loops (DFF -> logic -> DFF).
  for (const auto& def_name : def_order) {
    const PendingGate& pg = defs.at(def_name);
    if (pg.type != GateType::kDff) continue;
    if (pg.fanin_names.size() != 1)
      throw std::runtime_error("bench: DFF '" + def_name + "' needs 1 fanin");
    if (ids.count(def_name))
      throw std::runtime_error("bench: '" + def_name + "' already defined");
    ids[def_name] = nl.add_dff_placeholder(def_name);
  }

  // Phase 2: create combinational gates in dependency order. Iterative DFS
  // so deep ISCAS cones cannot overflow the call stack; any cycle found here
  // is purely combinational and therefore an error.
  enum class Mark : std::uint8_t { kWhite, kGrey, kBlack };
  std::map<std::string, Mark> marks;
  struct Frame {
    std::string name;
    std::size_t next_child = 0;
  };
  auto resolve = [&](const std::string& root) {
    if (ids.count(root)) return;
    std::vector<Frame> stack;
    stack.push_back({root, 0});
    while (!stack.empty()) {
      Frame& fr = stack.back();
      const auto dit = defs.find(fr.name);
      if (dit == defs.end())
        throw std::runtime_error("bench: undefined net '" + fr.name + "'");
      const PendingGate& pg = dit->second;
      if (fr.next_child == 0) {
        auto& m = marks[fr.name];
        if (m == Mark::kGrey)
          throw std::runtime_error("bench: combinational cycle through '" +
                                   fr.name + "'");
        m = Mark::kGrey;
      }
      bool descended = false;
      while (fr.next_child < pg.fanin_names.size()) {
        const std::string child = pg.fanin_names[fr.next_child];
        ++fr.next_child;
        if (!ids.count(child)) {
          stack.push_back({child, 0});
          descended = true;
          break;
        }
      }
      if (descended) continue;
      std::vector<GateId> fin;
      fin.reserve(pg.fanin_names.size());
      for (const auto& f : pg.fanin_names) fin.push_back(ids.at(f));
      ids[fr.name] = nl.add_gate(pg.type, fr.name, fin);
      marks[fr.name] = Mark::kBlack;
      stack.pop_back();
    }
  };
  for (const auto& def_name : def_order)
    if (defs.at(def_name).type != GateType::kDff) resolve(def_name);

  // Phase 3: wire DFF data inputs (resolving any cone reachable only
  // through a DFF).
  for (const auto& def_name : def_order) {
    const PendingGate& pg = defs.at(def_name);
    if (pg.type != GateType::kDff) continue;
    resolve(pg.fanin_names[0]);
    nl.connect_dff(ids.at(def_name), ids.at(pg.fanin_names[0]));
  }

  for (const auto& out_name : output_names) {
    const auto it = ids.find(out_name);
    if (it == ids.end())
      throw std::runtime_error("bench: OUTPUT(" + out_name + ") is undefined");
    nl.mark_output(it->second);
  }
  nl.validate();
  return nl;
}

Netlist parse_bench_string(const std::string& text, const std::string& name) {
  std::istringstream in(text);
  return parse_bench(in, name);
}

Netlist parse_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open bench file: " + path);
  std::string base = path;
  const std::size_t slash = base.find_last_of('/');
  if (slash != std::string::npos) base = base.substr(slash + 1);
  const std::size_t dot = base.find_last_of('.');
  if (dot != std::string::npos) base = base.substr(0, dot);
  return parse_bench(in, base);
}

void write_bench(const Netlist& nl, std::ostream& out) {
  out << "# " << nl.name() << "\n";
  out << "# " << nl.num_inputs() << " inputs, " << nl.num_outputs()
      << " outputs, " << nl.dffs().size() << " flip-flops\n";
  for (GateId g : nl.inputs()) out << "INPUT(" << nl.gate(g).name << ")\n";
  for (GateId g : nl.outputs()) out << "OUTPUT(" << nl.gate(g).name << ")\n";
  for (GateId g : nl.dffs())
    out << nl.gate(g).name << " = DFF(" << nl.gate(nl.gate(g).fanin[0]).name
        << ")\n";
  for (GateId g : nl.topo_order()) {
    const Gate& gate = nl.gate(g);
    if (gate.type == GateType::kInput || gate.type == GateType::kDff) continue;
    out << gate.name << " = " << gate_type_name(gate.type) << "(";
    for (std::size_t i = 0; i < gate.fanin.size(); ++i) {
      if (i) out << ", ";
      out << nl.gate(gate.fanin[i]).name;
    }
    out << ")\n";
  }
}

std::string write_bench_string(const Netlist& nl) {
  std::ostringstream out;
  write_bench(nl, out);
  return out.str();
}

}  // namespace sddict
