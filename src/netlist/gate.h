// Gate-level primitives. The library models circuits at the granularity of
// ISCAS .bench netlists: multi-input basic gates, buffers/inverters, D
// flip-flops, and constants.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sddict {

using GateId = std::uint32_t;
inline constexpr GateId kNoGate = static_cast<GateId>(-1);

enum class GateType : std::uint8_t {
  kInput,   // primary or pseudo-primary input; no fanin
  kBuf,     // 1 fanin
  kNot,     // 1 fanin
  kAnd,     // >=1 fanin
  kNand,    // >=1 fanin
  kOr,      // >=1 fanin
  kNor,     // >=1 fanin
  kXor,     // >=1 fanin (odd parity)
  kXnor,    // >=1 fanin (even parity)
  kDff,     // 1 fanin (data); removed by the full-scan transform
  kConst0,  // no fanin
  kConst1,  // no fanin
};

const char* gate_type_name(GateType t);

// Parses a .bench function name ("AND", "nand", ...). Returns false when the
// name is not recognized.
bool parse_gate_type(const std::string& name, GateType* out);

// True for AND/NAND/OR/NOR: a single input at the controlling value fixes
// the output regardless of the other inputs.
bool has_controlling_value(GateType t);
// The controlling input value (0 for AND/NAND, 1 for OR/NOR). Only valid
// when has_controlling_value(t).
bool controlling_value(GateType t);
// Output when a controlling input is present (0 for AND/OR? no:) —
// controlled response: AND->0, NAND->1, OR->1, NOR->0.
bool controlled_response(GateType t);
// True when the gate inverts its "natural" sense (NOT, NAND, NOR, XNOR).
bool is_inverting(GateType t);

struct Gate {
  GateType type = GateType::kBuf;
  std::string name;
  std::vector<GateId> fanin;
  std::vector<GateId> fanout;  // gates that list this gate in their fanin
};

// Evaluates a gate over 64 packed pattern bits given fanin words.
std::uint64_t eval_gate_words(GateType t, const std::uint64_t* in, std::size_t n);

// Scalar two-valued evaluation.
bool eval_gate_bool(GateType t, const bool* in, std::size_t n);

}  // namespace sddict
