#include "netlist/stats.h"

#include <algorithm>
#include <sstream>

namespace sddict {

NetlistStats compute_stats(const Netlist& nl) {
  NetlistStats s;
  s.gates = nl.num_gates();
  s.inputs = nl.num_inputs();
  s.outputs = nl.num_outputs();
  s.dffs = nl.dffs().size();
  s.lines = nl.num_lines();
  s.depth = nl.depth();
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const Gate& gate = nl.gate(g);
    const bool logic = gate.type != GateType::kInput &&
                       gate.type != GateType::kDff &&
                       gate.type != GateType::kConst0 &&
                       gate.type != GateType::kConst1;
    if (logic) ++s.logic_gates;
    if (gate.fanout.size() > 1) ++s.fanout_stems;
    s.max_fanin = std::max(s.max_fanin, gate.fanin.size());
    s.max_fanout = std::max(s.max_fanout, gate.fanout.size());
  }
  return s;
}

std::string format_stats(const Netlist& nl) {
  const NetlistStats s = compute_stats(nl);
  std::ostringstream out;
  out << nl.name() << ": " << s.inputs << " PI, " << s.outputs << " PO, "
      << s.dffs << " DFF, " << s.logic_gates << " gates, " << s.lines
      << " lines, depth " << s.depth << ", " << s.fanout_stems << " stems";
  return out.str();
}

}  // namespace sddict
