#include "netlist/transform.h"

#include <stdexcept>

namespace sddict {

Netlist full_scan(const Netlist& nl) {
  Netlist out(nl.name() + "_scan");
  std::vector<GateId> gmap(nl.num_gates(), kNoGate);

  for (GateId g : nl.inputs()) gmap[g] = out.add_gate(GateType::kInput, nl.gate(g).name);
  // Pseudo inputs, one per DFF, keeping the DFF's net name so cones are
  // unchanged textually.
  for (GateId d : nl.dffs()) gmap[d] = out.add_gate(GateType::kInput, nl.gate(d).name);

  for (GateId g : nl.topo_order()) {
    const Gate& gate = nl.gate(g);
    if (gate.type == GateType::kInput || gate.type == GateType::kDff) continue;
    std::vector<GateId> fin;
    fin.reserve(gate.fanin.size());
    for (GateId f : gate.fanin) {
      if (gmap[f] == kNoGate)
        throw std::runtime_error("full_scan: fanin not yet copied (bad topo)");
      fin.push_back(gmap[f]);
    }
    gmap[g] = out.add_gate(gate.type, gate.name, fin);
  }

  for (GateId g : nl.outputs()) out.mark_output(gmap[g]);
  for (GateId d : nl.dffs()) {
    const GateId data = nl.gate(d).fanin[0];
    const GateId buf =
        out.add_gate(GateType::kBuf, nl.gate(d).name + "_si", {gmap[data]});
    out.mark_output(buf);
  }
  out.validate();
  return out;
}

std::vector<GateId> copy_into(Netlist& dst, const Netlist& src,
                              const std::string& prefix,
                              const std::vector<GateId>& input_map,
                              const std::vector<Injection>& faults) {
  if (src.has_dffs())
    throw std::runtime_error("copy_into: run full_scan first (netlist has DFFs)");
  if (input_map.size() != src.num_inputs())
    throw std::runtime_error("copy_into: input_map size mismatch");

  // One constant gate per injection; output faults also index a redirect
  // table consulted whenever the faulted gate is read.
  std::vector<GateId> out_fault_redirect(src.num_gates(), kNoGate);
  // (gate, pin) -> const dst gate, for pin faults.
  std::vector<std::pair<std::pair<GateId, int>, GateId>> pin_faults;
  for (std::size_t fi = 0; fi < faults.size(); ++fi) {
    const Injection& f = faults[fi];
    if (f.gate >= src.num_gates())
      throw std::runtime_error("copy_into: fault gate out of range");
    if (f.pin >= 0 &&
        static_cast<std::size_t>(f.pin) >= src.gate(f.gate).fanin.size())
      throw std::runtime_error("copy_into: fault pin out of range");
    const GateType ctype = f.stuck_value ? GateType::kConst1 : GateType::kConst0;
    const GateId cg =
        dst.add_gate(ctype, prefix + "fault_const" + std::to_string(fi));
    if (f.pin < 0)
      out_fault_redirect[f.gate] = cg;
    else
      pin_faults.push_back({{f.gate, f.pin}, cg});
  }

  std::vector<GateId> gmap(src.num_gates(), kNoGate);
  for (std::size_t i = 0; i < src.num_inputs(); ++i)
    gmap[src.inputs()[i]] = input_map[i];

  auto driver_of = [&](GateId g) {
    return out_fault_redirect[g] != kNoGate ? out_fault_redirect[g] : gmap[g];
  };
  auto pin_const = [&](GateId g, std::size_t p) -> GateId {
    for (const auto& [key, cg] : pin_faults)
      if (key.first == g && key.second == static_cast<int>(p)) return cg;
    return kNoGate;
  };

  for (GateId g : src.topo_order()) {
    const Gate& gate = src.gate(g);
    if (gate.type == GateType::kInput) continue;
    std::vector<GateId> fin;
    fin.reserve(gate.fanin.size());
    for (std::size_t p = 0; p < gate.fanin.size(); ++p) {
      const GateId cg = pin_const(g, p);
      fin.push_back(cg != kNoGate ? cg : driver_of(gate.fanin[p]));
    }
    if (gate.type == GateType::kConst0 || gate.type == GateType::kConst1)
      gmap[g] = dst.add_gate(gate.type, prefix + gate.name);
    else
      gmap[g] = dst.add_gate(gate.type, prefix + gate.name, fin);
  }

  std::vector<GateId> outs;
  outs.reserve(src.num_outputs());
  for (GateId g : src.outputs()) outs.push_back(driver_of(g));
  return outs;
}

Netlist inject_faults(const Netlist& nl, const std::vector<Injection>& faults) {
  Netlist out(nl.name() + "_defective");
  std::vector<GateId> shared;
  shared.reserve(nl.num_inputs());
  for (GateId g : nl.inputs())
    shared.push_back(out.add_gate(GateType::kInput, nl.gate(g).name));
  const std::vector<GateId> outs = copy_into(out, nl, "", shared, faults);
  // A faulted output may map to a constant also marked for another output;
  // mark_output rejects duplicates, so interpose BUFs where needed.
  for (std::size_t i = 0; i < outs.size(); ++i) {
    GateId g = outs[i];
    if (out.is_output(g))
      g = out.add_gate(GateType::kBuf, "po_dup" + std::to_string(i), {g});
    out.mark_output(g);
  }
  out.validate();
  return out;
}

namespace {

Netlist build_miter_impl(const Netlist& nl, const std::vector<Injection>& fa,
                         const std::vector<Injection>& fb,
                         const std::string& name) {
  if (nl.has_dffs())
    throw std::runtime_error("build miter: run full_scan first");
  Netlist m(name);
  std::vector<GateId> shared;
  shared.reserve(nl.num_inputs());
  for (GateId g : nl.inputs())
    shared.push_back(m.add_gate(GateType::kInput, nl.gate(g).name));

  const std::vector<GateId> oa = copy_into(m, nl, "A$", shared, fa);
  const std::vector<GateId> ob = copy_into(m, nl, "B$", shared, fb);

  std::vector<GateId> diffs;
  diffs.reserve(oa.size());
  for (std::size_t i = 0; i < oa.size(); ++i)
    diffs.push_back(m.add_gate(GateType::kXor, "diff$" + std::to_string(i),
                               {oa[i], ob[i]}));
  GateId out;
  if (diffs.size() == 1)
    out = m.add_gate(GateType::kBuf, "miter_out", diffs);
  else
    out = m.add_gate(GateType::kOr, "miter_out", diffs);
  m.mark_output(out);
  m.validate();
  return m;
}

}  // namespace

Netlist build_pair_miter(const Netlist& nl, const Injection& fa,
                         const Injection& fb) {
  return build_miter_impl(nl, {fa}, {fb}, nl.name() + "_pair_miter");
}

Netlist build_detection_miter(const Netlist& nl, const Injection& f) {
  return build_miter_impl(nl, {}, {f}, nl.name() + "_det_miter");
}

Netlist unroll(const Netlist& nl, std::size_t frames) {
  if (frames == 0) throw std::runtime_error("unroll: need at least one frame");
  Netlist out(nl.name() + "_u" + std::to_string(frames));

  // Initial state inputs.
  std::vector<GateId> state;
  state.reserve(nl.dffs().size());
  for (GateId d : nl.dffs())
    state.push_back(out.add_gate(GateType::kInput, nl.gate(d).name + "@0"));

  std::vector<std::vector<GateId>> frame_outputs;
  for (std::size_t f = 0; f < frames; ++f) {
    const std::string suffix = "@" + std::to_string(f);
    std::vector<GateId> gmap(nl.num_gates(), kNoGate);
    for (GateId g : nl.inputs())
      gmap[g] = out.add_gate(GateType::kInput, nl.gate(g).name + suffix);
    for (std::size_t i = 0; i < nl.dffs().size(); ++i)
      gmap[nl.dffs()[i]] = state[i];

    for (GateId g : nl.topo_order()) {
      const Gate& gate = nl.gate(g);
      if (gate.type == GateType::kInput || gate.type == GateType::kDff)
        continue;
      std::vector<GateId> fin;
      fin.reserve(gate.fanin.size());
      for (GateId fi : gate.fanin) fin.push_back(gmap[fi]);
      gmap[g] = out.add_gate(gate.type, gate.name + suffix, fin);
    }

    frame_outputs.emplace_back();
    for (GateId g : nl.outputs()) frame_outputs.back().push_back(gmap[g]);

    // Next state = this frame's DFF data inputs, exposed through BUFs so
    // they have stable names and unique output drivers.
    std::vector<GateId> next_state;
    next_state.reserve(nl.dffs().size());
    for (GateId d : nl.dffs()) {
      const GateId data = gmap[nl.gate(d).fanin[0]];
      next_state.push_back(out.add_gate(
          GateType::kBuf, nl.gate(d).name + "@" + std::to_string(f + 1),
          {data}));
    }
    state = std::move(next_state);
  }

  // Per-frame primary outputs, then the final state. A gate can drive
  // outputs in several frames only via the shared-state path, which the
  // BUFs above already disambiguate; primary outputs can still collide when
  // a PO is driven directly by a state input reused across frames, so
  // interpose BUFs on demand.
  std::size_t po_serial = 0;
  for (std::size_t f = 0; f < frames; ++f)
    for (GateId g : frame_outputs[f]) {
      GateId o = g;
      if (out.is_output(o))
        o = out.add_gate(GateType::kBuf, "po@" + std::to_string(po_serial), {o});
      ++po_serial;
      out.mark_output(o);
    }
  for (GateId s : state) {
    GateId o = s;
    if (out.is_output(o))
      o = out.add_gate(GateType::kBuf, "po@" + std::to_string(po_serial), {o});
    ++po_serial;
    out.mark_output(o);
  }
  out.validate();
  return out;
}

Netlist xor_compact_outputs(const Netlist& nl, std::size_t num_signatures) {
  if (nl.has_dffs())
    throw std::runtime_error("xor_compact_outputs: run full_scan first");
  if (num_signatures == 0 || num_signatures > nl.num_outputs())
    throw std::runtime_error(
        "xor_compact_outputs: need 1 <= signatures <= outputs");
  Netlist out(nl.name() + "_x" + std::to_string(num_signatures));
  std::vector<GateId> shared;
  shared.reserve(nl.num_inputs());
  for (GateId g : nl.inputs())
    shared.push_back(out.add_gate(GateType::kInput, nl.gate(g).name));
  const std::vector<GateId> pos = copy_into(out, nl, "", shared, {});

  std::vector<std::vector<GateId>> groups(num_signatures);
  for (std::size_t o = 0; o < pos.size(); ++o)
    groups[o % num_signatures].push_back(pos[o]);
  for (std::size_t s = 0; s < num_signatures; ++s) {
    GateId sig;
    if (groups[s].size() == 1)
      sig = out.add_gate(GateType::kBuf, "sig" + std::to_string(s), groups[s]);
    else
      sig = out.add_gate(GateType::kXor, "sig" + std::to_string(s), groups[s]);
    out.mark_output(sig);
  }
  out.validate();
  return out;
}

}  // namespace sddict
