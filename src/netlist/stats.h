// Structural statistics for reporting and for sanity-checking generated
// benchmark circuits against their published profiles.
#pragma once

#include <cstddef>
#include <string>

#include "netlist/netlist.h"

namespace sddict {

struct NetlistStats {
  std::size_t gates = 0;        // all gates incl. inputs
  std::size_t logic_gates = 0;  // excluding inputs/DFFs/constants
  std::size_t inputs = 0;
  std::size_t outputs = 0;
  std::size_t dffs = 0;
  std::size_t lines = 0;  // fanin connections
  std::size_t fanout_stems = 0;  // gates with fanout > 1
  std::size_t max_fanin = 0;
  std::size_t max_fanout = 0;
  std::size_t depth = 0;
};

NetlistStats compute_stats(const Netlist& nl);

std::string format_stats(const Netlist& nl);

}  // namespace sddict
