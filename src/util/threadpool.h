// Work-stealing thread pool for the dictionary-construction hot paths.
//
// Design: one task deque per worker. A worker pops from the back of its own
// deque (LIFO — keeps caches warm for recursively submitted work) and, when
// empty, steals from the front of a victim's deque (FIFO — steals the
// oldest, largest-granularity work first). External submitters distribute
// tasks round-robin. The pool itself is deterministic only in *what* gets
// executed, never in completion order; callers that need reproducible
// results must make their reduction order-independent (see
// build_response_matrix and run_procedure1 for the pattern: compute into
// index-addressed slots, reduce sequentially by index).
//
// Exception safety: a task that throws never takes the process down. The
// worker captures the std::exception_ptr, the pool cancels itself so
// sibling chunks of the same parallel_for stop early, and the first
// exception is rethrown at the join point — the end of parallel_for /
// parallel_for_chunks, or wait_idle for raw submit()s. Rethrowing clears
// the error and the cancellation flag, so the pool stays usable.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace sddict {

class ThreadPool {
 public:
  // num_threads == 0 selects default_num_threads(). A pool of size 1 still
  // runs tasks on its single worker; parallel_for additionally has an
  // inline fast path so tiny pools add no dispatch overhead.
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  // std::thread::hardware_concurrency(), clamped to at least 1.
  static std::size_t default_num_threads();

  // Resolves a user-facing thread-count knob: 0 -> hardware concurrency.
  static std::size_t resolve(std::size_t requested) {
    return requested == 0 ? default_num_threads() : requested;
  }

  // Enqueues one task. Thread-safe; may be called from worker threads
  // (the task lands on the calling worker's own deque). A throwing task's
  // exception is captured and rethrown by the next wait_idle().
  void submit(std::function<void()> task);

  // Blocks until every submitted task has finished, then rethrows the
  // first exception any of them raised (clearing it).
  void wait_idle();

  // Runs body(i) for i in [begin, end), split into contiguous chunks, and
  // blocks until all iterations complete. Chunking is by iteration ranges,
  // so side effects into index-addressed slots are race-free; completion
  // order is unspecified. Not reentrant from inside a pool task. If any
  // iteration throws, not-yet-started chunks are skipped and the first
  // exception is rethrown here after the barrier.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  // Range flavor: body(chunk_begin, chunk_end) over an even partition of
  // [begin, end) into at most num_chunks pieces. Used when per-chunk setup
  // (scratch buffers, simulator state) should be amortized.
  void parallel_for_chunks(
      std::size_t begin, std::size_t end, std::size_t num_chunks,
      const std::function<void(std::size_t, std::size_t)>& body);

  // Cooperative pool-wide cancellation. Cancelled pools skip the bodies of
  // chunks that have not started yet (queued tasks still drain, so joins
  // do not hang); long tasks may poll cancel_requested() to stop early.
  // Raised automatically when a task throws; cleared when the exception is
  // rethrown at a join point, or manually via reset_cancel().
  void cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_acquire);
  }
  void reset_cancel() { cancelled_.store(false, std::memory_order_release); }

 private:
  struct Worker {
    std::deque<std::function<void()>> deque;
    std::mutex mutex;
  };

  void worker_loop(std::size_t self);
  // Pops from own back / steals from a victim's front. Returns false when
  // no task is available anywhere.
  bool try_get_task(std::size_t self, std::function<void()>* out);
  bool try_steal(std::size_t thief, std::function<void()>* out);
  // Records the in-flight exception (first one wins) and cancels the pool.
  void capture_error() noexcept;
  // Takes the stored error, clearing it and the cancellation flag it set.
  std::exception_ptr take_error();

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex state_mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::size_t pending_ = 0;  // submitted but not yet finished
  // Tasks counted but possibly not yet claimable: submit increments before
  // the deque push, so a woken worker can transiently find nothing and
  // re-wait. Signed as defense in depth.
  std::int64_t queued_ = 0;
  std::size_t next_victim_ = 0;  // round-robin for external submits
  bool stop_ = false;
  std::exception_ptr first_error_;  // guarded by state_mutex_
  std::atomic<bool> cancelled_{false};
};

}  // namespace sddict
