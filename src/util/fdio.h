// POSIX fd helpers for the networked serving tier: nonblocking setup and
// read/write/accept wrappers with a uniform result type, EINTR retry, and
// failpoint hooks so the chaos harness can deterministically inject the
// syscall-level degradations production sees — short reads, spurious
// EINTR, mid-transfer resets — without a misbehaving peer.
//
// Failpoints (all condition-style, see util/failpoint.h triggered()):
//   net.read.eintr / net.write.eintr / net.accept.eintr
//       one attempt behaves as if interrupted; the wrapper retries, so
//       the injection exercises the retry loop, not the caller.
//   net.read.short / net.write.short
//       one attempt transfers at most 1 byte (a short read/write).
//   net.read.fail / net.write.fail
//       the attempt fails hard (ECONNRESET / EPIPE) without touching
//       the fd — a mid-frame peer reset.
#pragma once

#include <cstddef>
#include <sys/types.h>

namespace sddict::fdio {

// Outcome of one read_some/write_some call on a (possibly nonblocking)
// fd. Exactly one of the three shapes holds: transferred `n` bytes
// (n == 0 on read means EOF), would_block (EAGAIN — wait for poll), or
// failed (hard error, errno_value names it).
struct IoResult {
  ssize_t n = 0;
  bool would_block = false;
  bool failed = false;
  int errno_value = 0;
};

// Throw std::runtime_error on fcntl failure.
void set_nonblocking(int fd);
void set_cloexec(int fd);

// One read/write with EINTR retry and the failpoints above. Never throws.
IoResult read_some(int fd, char* buf, std::size_t n);
IoResult write_some(int fd, const char* buf, std::size_t n);

// accept() with EINTR retry (real and injected). Returns the connected
// fd, or -1 with would_block/failed semantics reported via *result.
int accept_retry(int listener, IoResult* result);

// Self-pipe pair for waking a poll loop from a signal handler or another
// thread: notify() is async-signal-safe (one nonblocking write, EAGAIN
// ignored — the pipe being full already guarantees a wakeup), drain()
// empties the read end. Both fds are nonblocking and close-on-exec.
class WakePipe {
 public:
  WakePipe();   // throws std::runtime_error on pipe() failure
  ~WakePipe();
  WakePipe(const WakePipe&) = delete;
  WakePipe& operator=(const WakePipe&) = delete;

  int read_fd() const { return fds_[0]; }
  void notify() const;
  void drain() const;

 private:
  int fds_[2];
};

}  // namespace sddict::fdio
