// Small string helpers shared by the .bench parser and the CLI tools.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace sddict {

std::string trim(std::string_view s);
std::vector<std::string> split(std::string_view s, char sep);
// Splits on any whitespace run; no empty tokens.
std::vector<std::string> split_ws(std::string_view s);
std::string to_lower(std::string_view s);
bool starts_with(std::string_view s, std::string_view prefix);

// "12,345,678" style grouping for table output.
std::string with_commas(unsigned long long v);

}  // namespace sddict
