#include "util/cli.h"

#include <algorithm>
#include <stdexcept>

#include "util/strings.h"

namespace sddict {
namespace {

std::int64_t parse_int_strict(const std::string& name, const std::string& value,
                              std::int64_t lo, std::int64_t hi) {
  std::int64_t out = 0;
  std::size_t consumed = 0;
  try {
    out = std::stoll(value, &consumed);
  } catch (const std::exception&) {
    throw std::invalid_argument("bad integer flag --" + name + "=" + value);
  }
  if (consumed != value.size())
    throw std::invalid_argument("bad integer flag --" + name + "=" + value);
  if (out < lo || out > hi)
    throw std::invalid_argument("flag --" + name + "=" + value +
                                " out of range [" + std::to_string(lo) + ", " +
                                std::to_string(hi) + "]");
  return out;
}

}  // namespace

CliArgs::CliArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (starts_with(arg, "--")) {
      const std::size_t eq = arg.find('=');
      if (eq == std::string::npos)
        flags_[arg.substr(2)] = "true";
      else
        flags_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    } else {
      positional_.push_back(std::move(arg));
    }
  }
}

bool CliArgs::has(const std::string& name) const { return flags_.count(name) > 0; }

std::string CliArgs::get(const std::string& name, const std::string& def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name, std::int64_t def,
                              std::int64_t lo, std::int64_t hi) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return parse_int_strict(name, it->second, lo, hi);
}

double CliArgs::get_double(const std::string& name, double def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  double out = 0;
  std::size_t consumed = 0;
  try {
    out = std::stod(it->second, &consumed);
  } catch (const std::exception&) {
    throw std::invalid_argument("bad numeric flag --" + name + "=" + it->second);
  }
  if (consumed != it->second.size())
    throw std::invalid_argument("bad numeric flag --" + name + "=" + it->second);
  return out;
}

bool CliArgs::get_bool(const std::string& name, bool def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  const std::string v = to_lower(it->second);
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("bad boolean flag --" + name + "=" + it->second);
}

std::vector<std::string> CliArgs::get_list(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return {};
  return split(it->second, ',');
}

std::vector<std::int64_t> CliArgs::get_int_list(const std::string& name,
                                                std::int64_t lo,
                                                std::int64_t hi) const {
  std::vector<std::int64_t> out;
  for (const std::string& e : get_list(name))
    out.push_back(parse_int_strict(name, e, lo, hi));
  return out;
}

std::vector<std::string> CliArgs::unknown_flags(
    const std::vector<std::string>& known) const {
  std::vector<std::string> out;
  for (const auto& [name, value] : flags_) {
    (void)value;
    if (std::find(known.begin(), known.end(), name) == known.end())
      out.push_back(name);
  }
  return out;
}

}  // namespace sddict
