// Tiny --flag=value command-line parser for the benches and examples.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sddict {

class CliArgs {
 public:
  CliArgs(int argc, char** argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& def = "") const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  // Comma-separated list flag.
  std::vector<std::string> get_list(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  // Flags seen on the command line that were never queried; used by benches
  // to reject typos.
  std::vector<std::string> unknown_flags(const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace sddict
