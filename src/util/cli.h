// Tiny --flag=value command-line parser for the benches and examples.
//
// Numeric accessors are strict: a malformed value ("abc", "12abc", an
// empty value, or a bare --flag with no '=') or an out-of-range value
// throws std::invalid_argument with a message naming the flag, so tools
// can catch once around argument handling and exit with a usage message
// instead of silently ignoring or wrapping the value.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace sddict {

class CliArgs {
 public:
  CliArgs(int argc, char** argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& def = "") const;
  // Throws std::invalid_argument unless the flag value is a fully-formed
  // integer within [lo, hi].
  std::int64_t get_int(const std::string& name, std::int64_t def,
                       std::int64_t lo = std::numeric_limits<std::int64_t>::min(),
                       std::int64_t hi = std::numeric_limits<std::int64_t>::max()) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  // Comma-separated list flag.
  std::vector<std::string> get_list(const std::string& name) const;

  // Comma-separated integer list, each element validated like get_int.
  std::vector<std::int64_t> get_int_list(
      const std::string& name,
      std::int64_t lo = std::numeric_limits<std::int64_t>::min(),
      std::int64_t hi = std::numeric_limits<std::int64_t>::max()) const;

  const std::vector<std::string>& positional() const { return positional_; }

  // Flags seen on the command line that were never queried; used by benches
  // to reject typos.
  std::vector<std::string> unknown_flags(const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace sddict
