// 128-bit non-cryptographic hashing for output-vector interning and
// incremental dictionary-signature maintenance. 128 bits keep the collision
// probability negligible even across billions of distinct vectors.
#pragma once

#include <cstdint>
#include <functional>

#include "util/bitvec.h"

namespace sddict {

struct Hash128 {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  bool operator==(const Hash128&) const = default;
  Hash128 operator^(const Hash128& o) const { return {lo ^ o.lo, hi ^ o.hi}; }
  Hash128& operator^=(const Hash128& o) {
    lo ^= o.lo;
    hi ^= o.hi;
    return *this;
  }
};

// Mixes a 64-bit value into a well-distributed 64-bit value (murmur3 final).
std::uint64_t mix64(std::uint64_t x);

// Hash of an arbitrary word sequence with a seed (used for output vectors).
Hash128 hash_words(const std::uint64_t* words, std::size_t n, std::uint64_t seed = 0);

Hash128 hash_bitvec(const BitVec& v, std::uint64_t seed = 0);

// Deterministic per-(slot, value) token, e.g. the contribution of dictionary
// column `slot` holding bit/value `value` to a fault's rolling signature.
Hash128 slot_token(std::uint64_t slot, std::uint64_t value);

struct Hash128Hasher {
  std::size_t operator()(const Hash128& h) const {
    return static_cast<std::size_t>(h.lo ^ (h.hi * 0x9e3779b97f4a7c15ULL));
  }
};

}  // namespace sddict
