#include "util/fdio.h"

#include <cerrno>
#include <fcntl.h>
#include <stdexcept>
#include <sys/socket.h>
#include <unistd.h>

#include "util/failpoint.h"

namespace sddict::fdio {

namespace {

void set_fd_flag(int fd, int get, int set, int flag, const char* what) {
  const int flags = ::fcntl(fd, get);
  if (flags < 0 || ::fcntl(fd, set, flags | flag) < 0)
    throw std::runtime_error(std::string("fcntl ") + what + " failed");
}

}  // namespace

void set_nonblocking(int fd) {
  set_fd_flag(fd, F_GETFL, F_SETFL, O_NONBLOCK, "O_NONBLOCK");
}

void set_cloexec(int fd) {
  set_fd_flag(fd, F_GETFD, F_SETFD, FD_CLOEXEC, "FD_CLOEXEC");
}

IoResult read_some(int fd, char* buf, std::size_t n) {
  IoResult r;
  for (;;) {
    if (failpoint::triggered("net.read.fail")) {
      r.failed = true;
      r.errno_value = ECONNRESET;
      return r;
    }
    if (failpoint::triggered("net.read.eintr")) continue;  // injected EINTR
    const std::size_t want =
        failpoint::triggered("net.read.short") ? std::size_t{1} : n;
    const ssize_t got = ::read(fd, buf, want);
    if (got >= 0) {
      r.n = got;
      return r;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      r.would_block = true;
      return r;
    }
    r.failed = true;
    r.errno_value = errno;
    return r;
  }
}

IoResult write_some(int fd, const char* buf, std::size_t n) {
  IoResult r;
  for (;;) {
    if (failpoint::triggered("net.write.fail")) {
      r.failed = true;
      r.errno_value = EPIPE;
      return r;
    }
    if (failpoint::triggered("net.write.eintr")) continue;  // injected EINTR
    const std::size_t want =
        failpoint::triggered("net.write.short") && n > 0 ? std::size_t{1} : n;
    // MSG_NOSIGNAL would need send(); plain write() keeps this usable on
    // pipes too, so callers must ignore SIGPIPE process-wide (the server
    // and client both do).
    const ssize_t put = ::write(fd, buf, want);
    if (put >= 0) {
      r.n = put;
      return r;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      r.would_block = true;
      return r;
    }
    r.failed = true;
    r.errno_value = errno;
    return r;
  }
}

int accept_retry(int listener, IoResult* result) {
  *result = IoResult{};
  for (;;) {
    if (failpoint::triggered("net.accept.eintr")) continue;  // injected EINTR
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      result->would_block = true;
      return -1;
    }
    result->failed = true;
    result->errno_value = errno;
    return -1;
  }
}

WakePipe::WakePipe() {
  if (::pipe(fds_) != 0) throw std::runtime_error("pipe() failed");
  for (int fd : fds_) {
    set_nonblocking(fd);
    set_cloexec(fd);
  }
}

WakePipe::~WakePipe() {
  ::close(fds_[0]);
  ::close(fds_[1]);
}

void WakePipe::notify() const {
  const char byte = 1;
  // Async-signal-safe: one nonblocking write; a full pipe already
  // guarantees the loop will wake, so EAGAIN is success.
  [[maybe_unused]] const ssize_t n = ::write(fds_[1], &byte, 1);
}

void WakePipe::drain() const {
  char sink[64];
  while (::read(fds_[0], sink, sizeof sink) > 0) {
  }
}

}  // namespace sddict::fdio
