// Minimal leveled logging to stderr. Benches and examples use it for
// progress reporting; the library itself logs only at debug level.
#pragma once

#include <sstream>
#include <string>

namespace sddict {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Process-wide threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

void log_message(LogLevel level, const std::string& msg);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, out_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    out_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream out_;
};

}  // namespace detail

#define SDDICT_LOG(level_enum)                                 \
  if (::sddict::log_level() > ::sddict::LogLevel::level_enum) { \
  } else                                                       \
    ::sddict::detail::LogLine(::sddict::LogLevel::level_enum)

#define LOG_DEBUG SDDICT_LOG(kDebug)
#define LOG_INFO SDDICT_LOG(kInfo)
#define LOG_WARN SDDICT_LOG(kWarn)
#define LOG_ERROR SDDICT_LOG(kError)

}  // namespace sddict
