#include "util/budget.h"

namespace sddict {

const char* stop_reason_name(StopReason r) {
  switch (r) {
    case StopReason::kCompleted: return "completed";
    case StopReason::kDeadline: return "deadline";
    case StopReason::kCancelled: return "cancelled";
    case StopReason::kMaxRestarts: return "max-restarts";
    case StopReason::kMaxPatterns: return "max-patterns";
  }
  return "?";
}

RunBudget fold_legacy_deadline(RunBudget budget, double legacy_max_seconds) {
  if (budget.max_seconds <= 0) budget.max_seconds = legacy_max_seconds;
  return budget;
}

BudgetScope::BudgetScope(const RunBudget& budget) : budget_(budget) {
  if (budget_.max_seconds > 0) {
    has_deadline_ = true;
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(budget_.max_seconds));
  }
}

void BudgetScope::trip(StopReason r) {
  bool expected = false;
  if (stopped_.compare_exchange_strong(expected, true,
                                       std::memory_order_acq_rel)) {
    reason_.store(static_cast<std::uint8_t>(r), std::memory_order_release);
  }
}

bool BudgetScope::stop() {
  if (stopped_.load(std::memory_order_acquire)) return true;
  if (budget_.cancel.cancelled()) {
    trip(StopReason::kCancelled);
    return true;
  }
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    trip(StopReason::kDeadline);
    return true;
  }
  return false;
}

RunBudget BudgetScope::nested() const {
  RunBudget b;
  b.cancel = budget_.cancel;
  if (has_deadline_) {
    const double remaining =
        std::chrono::duration<double>(deadline_ -
                                      std::chrono::steady_clock::now())
            .count();
    // An exhausted outer deadline must expire the nested run on its first
    // poll; 0 would mean "unlimited".
    b.max_seconds = remaining > 0 ? remaining : 1e-9;
  }
  return b;
}

}  // namespace sddict
