#include "util/hash.h"

namespace sddict {

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

Hash128 hash_words(const std::uint64_t* words, std::size_t n, std::uint64_t seed) {
  std::uint64_t a = seed ^ 0x2545f4914f6cdd1dULL;
  std::uint64_t b = ~seed ^ 0x6c8e9cf570932bd5ULL;
  for (std::size_t i = 0; i < n; ++i) {
    a = mix64(a ^ words[i]);
    b = mix64(b + words[i] + 0x9e3779b97f4a7c15ULL * (i + 1));
  }
  a = mix64(a ^ n);
  b = mix64(b ^ (n << 32));
  return {a, b};
}

Hash128 hash_bitvec(const BitVec& v, std::uint64_t seed) {
  return hash_words(v.words().data(), v.words().size(), seed ^ v.size());
}

Hash128 slot_token(std::uint64_t slot, std::uint64_t value) {
  const std::uint64_t k = mix64(slot * 0x9e3779b97f4a7c15ULL + value + 1);
  return {mix64(k ^ 0xa0761d6478bd642fULL), mix64(k + 0xe7037ed1a0b428dbULL)};
}

}  // namespace sddict
