#include "util/threadpool.h"

#include <atomic>

namespace sddict {
namespace {

// Set while a worker runs, so submit() from inside a task lands on the
// submitting worker's own deque (LIFO locality) instead of round-robin.
struct WorkerIdentity {
  const ThreadPool* pool = nullptr;
  std::size_t index = 0;
};
thread_local WorkerIdentity tls_worker;

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = resolve(num_threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.push_back(std::make_unique<Worker>());
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    threads_.emplace_back(&ThreadPool::worker_loop, this, i);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    stop_ = true;
  }
  work_available_.notify_all();
  for (auto& t : threads_) t.join();
}

std::size_t ThreadPool::default_num_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void ThreadPool::submit(std::function<void()> task) {
  std::size_t target;
  if (tls_worker.pool == this) {
    target = tls_worker.index;
  } else {
    std::lock_guard<std::mutex> lock(state_mutex_);
    target = next_victim_++ % workers_.size();
  }
  // Count before pushing: once the task is visible in a deque a worker may
  // claim and finish it immediately, and its decrements must not precede
  // these increments.
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++queued_;
    ++pending_;
  }
  {
    std::lock_guard<std::mutex> lock(workers_[target]->mutex);
    workers_[target]->deque.push_back(std::move(task));
  }
  work_available_.notify_one();
}

bool ThreadPool::try_get_task(std::size_t self, std::function<void()>* out) {
  // Own deque, newest first: recently pushed work is cache-warm.
  {
    Worker& own = *workers_[self];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.deque.empty()) {
      *out = std::move(own.deque.back());
      own.deque.pop_back();
      return true;
    }
  }
  return try_steal(self, out);
}

bool ThreadPool::try_steal(std::size_t thief, std::function<void()>* out) {
  // Victims' deques, oldest first: stealing the front grabs the
  // largest-granularity work and leaves the victim its warm tail.
  const std::size_t n = workers_.size();
  for (std::size_t off = 1; off < n; ++off) {
    Worker& victim = *workers_[(thief + off) % n];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.deque.empty()) {
      *out = std::move(victim.deque.front());
      victim.deque.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::capture_error() noexcept {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (!first_error_) first_error_ = std::current_exception();
  }
  // Stop siblings early: chunks that have not started skip their bodies.
  cancelled_.store(true, std::memory_order_release);
}

std::exception_ptr ThreadPool::take_error() {
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    err = first_error_;
    first_error_ = nullptr;
  }
  // The cancellation was raised by the failed task; clear it so the pool
  // stays usable after the rethrow. An explicit cancel() with no error in
  // flight is left alone.
  if (err) cancelled_.store(false, std::memory_order_release);
  return err;
}

void ThreadPool::worker_loop(std::size_t self) {
  tls_worker = {this, self};
  for (;;) {
    std::function<void()> task;
    if (try_get_task(self, &task)) {
      {
        std::lock_guard<std::mutex> lock(state_mutex_);
        --queued_;
      }
      // A throwing task must not unwind through the worker loop (that
      // would std::terminate the process); capture and surface at join.
      try {
        task();
      } catch (...) {
        capture_error();
      }
      task = nullptr;  // release captures before possibly sleeping
      {
        std::lock_guard<std::mutex> lock(state_mutex_);
        if (--pending_ == 0) all_done_.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(state_mutex_);
    // queued_ can lag a concurrent claim (popped, decrement pending), so a
    // wakeup may find the deques empty; the loop just re-waits.
    work_available_.wait(lock, [&] { return stop_ || queued_ > 0; });
    if (stop_ && queued_ <= 0) return;
  }
}

void ThreadPool::wait_idle() {
  {
    std::unique_lock<std::mutex> lock(state_mutex_);
    all_done_.wait(lock, [&] { return pending_ == 0; });
  }
  if (std::exception_ptr err = take_error()) std::rethrow_exception(err);
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  parallel_for_chunks(begin, end, /*num_chunks=*/end - begin,
                      [&](std::size_t cb, std::size_t ce) {
                        for (std::size_t i = cb; i < ce; ++i) body(i);
                      });
}

void ThreadPool::parallel_for_chunks(
    std::size_t begin, std::size_t end, std::size_t num_chunks,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  num_chunks = std::min(num_chunks, n);
  // Cap the task count: with coarse chunks there is nothing to steal past a
  // small multiple of the worker count, and fewer tasks mean less queue
  // traffic. 4x gives the stealer something to grab when chunks are uneven.
  num_chunks = std::min(num_chunks, workers_.size() * 4);
  if (num_chunks <= 1 || workers_.size() == 1) {
    // Inline fast path: exceptions propagate directly; cancellation is
    // honored the same way the task path honors it.
    if (!cancel_requested()) body(begin, end);
    return;
  }

  std::atomic<std::size_t> remaining{num_chunks};
  std::mutex done_mutex;
  std::condition_variable done_cv;

  for (std::size_t c = 0; c < num_chunks; ++c) {
    const std::size_t cb = begin + n * c / num_chunks;
    const std::size_t ce = begin + n * (c + 1) / num_chunks;
    submit([&, cb, ce] {
      // The decrement below must run even when the body throws, or the
      // barrier would hang; capture here rather than in the worker loop.
      if (!cancel_requested()) {
        try {
          body(cb, ce);
        } catch (...) {
          capture_error();
        }
      }
      if (remaining.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(done_mutex);
        done_cv.notify_all();
      }
    });
  }
  {
    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [&] { return remaining.load() == 0; });
  }
  if (std::exception_ptr err = take_error()) std::rethrow_exception(err);
}

}  // namespace sddict
