// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) for tamper-evident
// dictionary serialization. Incremental: feed the payload in pieces, read
// value() at the end. Matches zlib's crc32() so files can be checked with
// standard tools.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace sddict {

class Crc32 {
 public:
  void update(const void* data, std::size_t n);
  void update(std::string_view s) { update(s.data(), s.size()); }

  std::uint32_t value() const { return state_ ^ 0xffffffffu; }

  void reset() { state_ = 0xffffffffu; }

 private:
  std::uint32_t state_ = 0xffffffffu;
};

std::uint32_t crc32(std::string_view s);

}  // namespace sddict
