#include "util/bitvec.h"

#include <bit>
#include <stdexcept>

namespace sddict {

BitVec::BitVec(std::size_t nbits, bool fill) : BitVec(nbits) {
  if (fill) set_all();
}

BitVec BitVec::from_string(const std::string& s) {
  BitVec v(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '1')
      v.set(i, true);
    else if (s[i] != '0')
      throw std::invalid_argument("BitVec::from_string: bad character");
  }
  return v;
}

void BitVec::clear_all() {
  for (auto& w : words_) w = 0;
}

void BitVec::set_all() {
  for (auto& w : words_) w = ~std::uint64_t{0};
  normalize_tail();
}

void BitVec::push_back(bool v) {
  ++nbits_;
  if (word_count(nbits_) > words_.size()) words_.push_back(0);
  set(nbits_ - 1, v);
}

std::size_t BitVec::count_ones() const {
  std::size_t n = 0;
  for (auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

std::size_t BitVec::first_difference(const BitVec& other) const {
  if (nbits_ != other.nbits_)
    throw std::invalid_argument("BitVec::first_difference: size mismatch");
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    const std::uint64_t diff = words_[wi] ^ other.words_[wi];
    if (diff != 0)
      return wi * 64 + static_cast<std::size_t>(std::countr_zero(diff));
  }
  return npos;
}

BitVec& BitVec::operator^=(const BitVec& other) {
  if (nbits_ != other.nbits_) throw std::invalid_argument("BitVec: size mismatch");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

BitVec& BitVec::operator&=(const BitVec& other) {
  if (nbits_ != other.nbits_) throw std::invalid_argument("BitVec: size mismatch");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

BitVec& BitVec::operator|=(const BitVec& other) {
  if (nbits_ != other.nbits_) throw std::invalid_argument("BitVec: size mismatch");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

bool BitVec::operator<(const BitVec& other) const {
  if (nbits_ != other.nbits_) return nbits_ < other.nbits_;
  for (std::size_t i = 0; i < nbits_; ++i) {
    const bool a = get(i);
    const bool b = other.get(i);
    if (a != b) return b;  // a==0, b==1 -> a < b
  }
  return false;
}

std::string BitVec::to_string() const {
  std::string s(nbits_, '0');
  for (std::size_t i = 0; i < nbits_; ++i)
    if (get(i)) s[i] = '1';
  return s;
}

void BitVec::normalize_tail() {
  const std::size_t rem = nbits_ & 63;
  if (rem != 0 && !words_.empty())
    words_.back() &= (std::uint64_t{1} << rem) - 1;
}

}  // namespace sddict
