// Deterministic, seedable pseudo-random number generator (xoshiro256**).
// Used everywhere randomness is needed so that every experiment in the repo
// is reproducible from a seed.
#pragma once

#include <cstdint>
#include <vector>

namespace sddict {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  std::uint64_t next();

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

  bool coin() { return next() & 1; }

  // Bernoulli with probability p in [0,1].
  bool chance(double p);

  double uniform01();

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // A fresh generator whose stream is independent of subsequent draws from
  // this one (split by drawing a seed).
  Rng split() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

 private:
  std::uint64_t s_[4];
};

}  // namespace sddict
