#include "util/failpoint.h"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <new>

namespace sddict::failpoint {
namespace {

struct Point {
  std::size_t remaining = 0;
  std::size_t period = 0;  // 0 = one-shot; > 0 re-arms after each firing
  Kind kind = Kind::kRuntimeError;
};

std::mutex g_mutex;
std::map<std::string, Point>& points() {
  static std::map<std::string, Point> p;
  return p;
}
// Fast-path guard: number of currently armed points. Checked without the
// mutex so un-instrumented runs pay one relaxed load per hit.
std::atomic<int> g_armed{0};

void arm_locked(const std::string& name, Point point) {
  auto [it, inserted] = points().insert_or_assign(name, point);
  (void)it;
  if (inserted) g_armed.fetch_add(1, std::memory_order_relaxed);
}

// Counts one hit against `name`; returns the firing kind, or nothing when
// the point is unarmed or its countdown has not reached zero yet.
bool hit(const char* name, Kind* kind) {
  if (g_armed.load(std::memory_order_relaxed) == 0) return false;
  std::lock_guard<std::mutex> lock(g_mutex);
  const auto it = points().find(name);
  if (it == points().end()) return false;
  if (--it->second.remaining > 0) return false;
  *kind = it->second.kind;
  if (it->second.period > 0) {
    it->second.remaining = it->second.period;
  } else {
    points().erase(it);
    g_armed.fetch_sub(1, std::memory_order_relaxed);
  }
  return true;
}

}  // namespace

void arm(const std::string& name, std::size_t countdown, Kind kind) {
  std::lock_guard<std::mutex> lock(g_mutex);
  arm_locked(name, Point{countdown, 0, kind});
}

void arm_cyclic(const std::string& name, std::size_t period, Kind kind) {
  if (period == 0)
    throw std::invalid_argument("failpoint: cyclic period must be >= 1");
  std::lock_guard<std::mutex> lock(g_mutex);
  arm_locked(name, Point{period, period, kind});
}

void disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (points().erase(name) > 0)
    g_armed.fetch_sub(1, std::memory_order_relaxed);
}

void disarm_all() {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_armed.fetch_sub(static_cast<int>(points().size()),
                    std::memory_order_relaxed);
  points().clear();
}

void check(const char* name) {
  Kind kind;
  if (!hit(name, &kind)) return;
  // Throw outside the lock so the unwound stack can arm/disarm freely.
  if (kind == Kind::kBadAlloc) throw std::bad_alloc();
  throw InjectedFault(std::string("injected fault at '") + name + "'");
}

bool triggered(const char* name) {
  Kind kind;
  return hit(name, &kind);
}

std::size_t arm_from_spec(const std::string& spec) {
  std::size_t armed = 0;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == 0 || eq == std::string::npos)
      throw std::invalid_argument("failpoint spec entry '" + entry +
                                  "' is not name=N or name=every:N");
    const std::string name = entry.substr(0, eq);
    std::string count = entry.substr(eq + 1);
    bool cyclic = false;
    if (count.rfind("every:", 0) == 0) {
      cyclic = true;
      count = count.substr(6);
    }
    std::size_t consumed = 0;
    unsigned long n = 0;
    try {
      n = std::stoul(count, &consumed);
    } catch (const std::exception&) {
      consumed = 0;
    }
    if (consumed == 0 || consumed != count.size() || n == 0)
      throw std::invalid_argument("failpoint spec entry '" + entry +
                                  "' needs a positive count");
    if (cyclic)
      arm_cyclic(name, n);
    else
      arm(name, n);
    ++armed;
  }
  return armed;
}

std::size_t arm_from_env(const char* envvar) {
  const char* value = std::getenv(envvar);
  if (value == nullptr || *value == '\0') return 0;
  return arm_from_spec(value);
}

}  // namespace sddict::failpoint
