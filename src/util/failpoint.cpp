#include "util/failpoint.h"

#include <atomic>
#include <map>
#include <mutex>
#include <new>

namespace sddict::failpoint {
namespace {

struct Point {
  std::size_t remaining = 0;
  Kind kind = Kind::kRuntimeError;
};

std::mutex g_mutex;
std::map<std::string, Point>& points() {
  static std::map<std::string, Point> p;
  return p;
}
// Fast-path guard: number of currently armed points. Checked without the
// mutex so un-instrumented runs pay one relaxed load per hit.
std::atomic<int> g_armed{0};

}  // namespace

void arm(const std::string& name, std::size_t countdown, Kind kind) {
  std::lock_guard<std::mutex> lock(g_mutex);
  auto [it, inserted] = points().insert_or_assign(name, Point{countdown, kind});
  (void)it;
  if (inserted) g_armed.fetch_add(1, std::memory_order_relaxed);
}

void disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (points().erase(name) > 0)
    g_armed.fetch_sub(1, std::memory_order_relaxed);
}

void disarm_all() {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_armed.fetch_sub(static_cast<int>(points().size()),
                    std::memory_order_relaxed);
  points().clear();
}

void check(const char* name) {
  if (g_armed.load(std::memory_order_relaxed) == 0) return;
  Kind kind;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    const auto it = points().find(name);
    if (it == points().end()) return;
    if (--it->second.remaining > 0) return;
    kind = it->second.kind;
    points().erase(it);
    g_armed.fetch_sub(1, std::memory_order_relaxed);
  }
  // Throw outside the lock so the unwound stack can arm/disarm freely.
  if (kind == Kind::kBadAlloc) throw std::bad_alloc();
  throw InjectedFault(std::string("injected fault at '") + name + "'");
}

}  // namespace sddict::failpoint
