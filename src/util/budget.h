// Run budgets with anytime semantics for the long-running construction
// loops (fault simulation, ATPG, Procedure-1 restarts, Procedure-2 sweeps).
//
// A RunBudget bounds a run by wall-clock deadline, cooperative cancellation
// and optional work caps. Budgeted entry points never throw on expiry:
// they return their best-so-far result with `completed == false` and a
// StopReason saying why the run ended early. Procedure 1 additionally
// guarantees that a budgeted result is bit-identical to an unbudgeted run
// truncated at the same restart index (see core/baseline.h).
//
// A BudgetScope anchors the deadline when a run starts and is the object
// the inner loops poll. It is safe to poll from worker threads: the first
// trigger (deadline, cancellation, or a consumer-reported cap) latches both
// the stopped flag and the reason, and every later poll observes them.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace sddict {

enum class StopReason : std::uint8_t {
  kCompleted = 0,   // ran to natural completion
  kDeadline,        // wall-clock budget exhausted
  kCancelled,       // cancellation token tripped
  kMaxRestarts,     // restart/call cap reached (Procedure 1)
  kMaxPatterns,     // generated-pattern cap reached (test generation)
};

const char* stop_reason_name(StopReason r);

// Copyable handle to a shared cancellation flag. Copies share state, so a
// caller can keep one handle and hand copies (inside RunBudget) to any
// number of concurrent runs; cancel() stops them all at their next poll.
class CancelToken {
 public:
  CancelToken() : state_(std::make_shared<std::atomic<bool>>(false)) {}

  void cancel() { state_->store(true, std::memory_order_release); }
  bool cancelled() const { return state_->load(std::memory_order_acquire); }

 private:
  std::shared_ptr<std::atomic<bool>> state_;
};

struct RunBudget {
  // Wall-clock limit in seconds, measured from the start of the budgeted
  // run (BudgetScope construction). 0 = unlimited.
  double max_seconds = 0;
  // Cooperative cancellation; copying the budget shares the token.
  CancelToken cancel{};
  // Cap on Procedure-1 restarts consumed (including the initial natural-
  // order pass). 0 = unlimited. Ignored by entry points without restarts.
  std::size_t max_restarts = 0;
  // Cap on generated test patterns (n-detect / diagnostic generation stop
  // *emitting* once the test set reaches this size; patterns the random
  // phase already produced are kept). 0 = unlimited.
  std::size_t max_patterns = 0;
};

// Folds a legacy `max_seconds` knob into a budget: the budget's own
// deadline wins when set, otherwise the legacy value is used.
RunBudget fold_legacy_deadline(RunBudget budget, double legacy_max_seconds);

class BudgetScope {
 public:
  explicit BudgetScope(const RunBudget& budget);

  // Polls deadline and cancellation; returns true once the run should
  // stop. The result latches: after the first true, every poll (from any
  // thread) returns true with a stable reason.
  bool stop();

  // The latched state only — no fresh deadline/cancellation poll.
  bool stopped() const { return stopped_.load(std::memory_order_acquire); }

  // Reports a consumer-detected cap (kMaxRestarts / kMaxPatterns). First
  // trigger wins; later trips are ignored.
  void trip(StopReason r);

  // kCompleted until something stops the run.
  StopReason reason() const {
    return static_cast<StopReason>(reason_.load(std::memory_order_acquire));
  }

  // Budget for a nested run sharing this scope's absolute deadline and
  // cancellation token (caps are not inherited — they are owned by the
  // outer consumer). Used to push an outer deadline into inner ATPG calls.
  RunBudget nested() const;

  const RunBudget& budget() const { return budget_; }

 private:
  RunBudget budget_;
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
  std::atomic<bool> stopped_{false};
  std::atomic<std::uint8_t> reason_{
      static_cast<std::uint8_t>(StopReason::kCompleted)};
};

}  // namespace sddict
