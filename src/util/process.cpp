#include "util/process.h"

#include <fcntl.h>
#include <signal.h>
#include <stdlib.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace sddict::proc {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

void cloexec(int fd) { ::fcntl(fd, F_SETFD, FD_CLOEXEC); }

int decode_status(int status) {
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

}  // namespace

Child spawn(const std::vector<std::string>& argv, const SpawnOptions& options) {
  if (argv.empty()) throw std::runtime_error("proc::spawn: empty argv");
  int in_pipe[2] = {-1, -1}, out_pipe[2] = {-1, -1}, err_pipe[2] = {-1, -1};
  if ((options.capture_stdin && ::pipe(in_pipe) != 0) ||
      (options.capture_stdout && ::pipe(out_pipe) != 0) ||
      (options.capture_stderr && ::pipe(err_pipe) != 0))
    throw_errno("pipe");
  const pid_t pid = ::fork();
  if (pid < 0) throw_errno("fork");
  if (pid == 0) {
    if (options.capture_stdin) {
      ::dup2(in_pipe[0], 0);
      ::close(in_pipe[0]);
      ::close(in_pipe[1]);
    }
    if (options.capture_stdout) {
      ::dup2(out_pipe[1], 1);
      ::close(out_pipe[0]);
      ::close(out_pipe[1]);
    }
    if (options.capture_stderr) {
      ::dup2(err_pipe[1], 2);
      ::close(err_pipe[0]);
      ::close(err_pipe[1]);
    }
    for (const auto& [name, value] : options.env) {
      if (value.has_value())
        ::setenv(name.c_str(), value->c_str(), 1);
      else
        ::unsetenv(name.c_str());
    }
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string& a : argv)
      cargv.push_back(const_cast<char*>(a.c_str()));
    cargv.push_back(nullptr);
    ::execv(cargv[0], cargv.data());
    std::fprintf(stderr, "exec %s: %s\n", cargv[0], std::strerror(errno));
    ::_exit(127);
  }
  Child child;
  child.pid = pid;
  if (options.capture_stdin) {
    ::close(in_pipe[0]);
    cloexec(in_pipe[1]);
    child.stdin_fd = in_pipe[1];
  }
  if (options.capture_stdout) {
    ::close(out_pipe[1]);
    cloexec(out_pipe[0]);
    child.stdout_fd = out_pipe[0];
  }
  if (options.capture_stderr) {
    ::close(err_pipe[1]);
    cloexec(err_pipe[0]);
    child.stderr_fd = err_pipe[0];
  }
  return child;
}

int wait_exit(pid_t pid) {
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0) {
    if (errno != EINTR) return -1;
  }
  return decode_status(status);
}

std::optional<int> try_wait(pid_t pid) {
  int status = 0;
  for (;;) {
    const pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == 0) return std::nullopt;
    if (r < 0) {
      if (errno == EINTR) continue;
      return -1;  // ECHILD or worse: already reaped or never ours
    }
    return decode_status(status);
  }
}

bool send_signal(pid_t pid, int sig) {
  return pid > 0 && ::kill(pid, sig) == 0;
}

bool alive(pid_t pid) { return pid > 0 && ::kill(pid, 0) == 0; }

std::string read_all(int fd) {
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

std::string read_line(int fd) {
  std::string line;
  char c;
  for (;;) {
    const ssize_t n = ::read(fd, &c, 1);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0 || c == '\n') return line;
    line.push_back(c);
  }
}

}  // namespace sddict::proc
