// Child-process plumbing for the fleet supervisor and the multi-process
// soak harnesses: fork+exec with selective stdio capture and per-child
// environment overrides, plus blocking and non-blocking reaping.
//
// Deliberately minimal: argv in, pipes out. Anything fancier (pty
// allocation, process groups, cgroups) belongs to the caller. All helpers
// are EINTR-tolerant; none of them throws from the child side of fork()
// (the child _exits 127 on exec failure, after printing to its stderr).
#pragma once

#include <sys/types.h>

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace sddict::proc {

struct SpawnOptions {
  bool capture_stdin = false;   // parent gets a write end as Child::stdin_fd
  bool capture_stdout = false;  // parent gets a read end as Child::stdout_fd
  bool capture_stderr = false;  // parent gets a read end as Child::stderr_fd
  // Environment overrides applied in the child between fork and exec:
  // a value sets the variable, nullopt unsets it. Everything else is
  // inherited.
  std::vector<std::pair<std::string, std::optional<std::string>>> env;
};

struct Child {
  pid_t pid = -1;
  int stdin_fd = -1;   // -1 when not captured
  int stdout_fd = -1;
  int stderr_fd = -1;
};

// fork+exec argv[0] (an executable path, not a shell line). Throws
// std::runtime_error on pipe/fork failure; exec failure surfaces as the
// child exiting 127. Captured fds are close-on-exec in the parent.
Child spawn(const std::vector<std::string>& argv,
            const SpawnOptions& options = {});

// Blocking reap: the child's exit code, or 128+signal when it died on a
// signal, or -1 on a waitpid error other than EINTR.
int wait_exit(pid_t pid);

// Non-blocking reap: nullopt while the child is still running; otherwise
// the same encoding as wait_exit. A pid that was already reaped (ECHILD)
// reports -1 — callers must not poll a pid twice past completion.
std::optional<int> try_wait(pid_t pid);

// kill() that reports success; a dead/reaped pid (ESRCH) counts as false.
bool send_signal(pid_t pid, int sig);

// True while `pid` looks alive (kill(pid, 0) succeeds). A zombie still
// counts as alive until it is reaped.
bool alive(pid_t pid);

// Reads the fd to EOF (EINTR-tolerant) and returns everything; the
// soak-harness idiom for collecting a child's captured stream.
std::string read_all(int fd);

// Reads one '\n'-terminated line (the newline is stripped); an empty
// string on EOF. For parsing a child's startup banner line by line.
std::string read_line(int fd);

}  // namespace sddict::proc
