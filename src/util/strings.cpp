#include "util/strings.h"

#include <algorithm>
#include <cctype>

namespace sddict {

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (true) {
    const std::size_t next = s.find(sep, pos);
    if (next == std::string_view::npos) {
      out.emplace_back(s.substr(pos));
      return out;
    }
    out.emplace_back(s.substr(pos, next - pos));
    pos = next + 1;
  }
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t b = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > b) out.emplace_back(s.substr(b, i - b));
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string with_commas(unsigned long long v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

}  // namespace sddict
