#include "util/rng.h"

#include <bit>

namespace sddict {
namespace {

// splitmix64, used to expand the seed into the xoshiro state.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // All-zero state is invalid for xoshiro; splitmix64 cannot produce four
  // zeros from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  // Lemire's nearly-divisionless method with rejection for exactness.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t t = (0 - bound) % bound;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t Rng::range(std::uint64_t lo, std::uint64_t hi) {
  return lo + below(hi - lo + 1);
}

bool Rng::chance(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return uniform01() < p;
}

double Rng::uniform01() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

}  // namespace sddict
