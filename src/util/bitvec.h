// Dynamic bit vector used for output vectors, test patterns and dictionary
// rows. Bits are packed into 64-bit words; out-of-range bits of the last
// word are kept zero so whole-word equality and hashing are well defined.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sddict {

class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::size_t nbits) : nbits_(nbits), words_(word_count(nbits), 0) {}
  BitVec(std::size_t nbits, bool fill);

  // Parses a string of '0'/'1' characters, most significant (index 0) first.
  static BitVec from_string(const std::string& s);

  std::size_t size() const { return nbits_; }
  bool empty() const { return nbits_ == 0; }

  bool get(std::size_t i) const { return (words_[i >> 6] >> (i & 63)) & 1u; }
  void set(std::size_t i, bool v) {
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    if (v)
      words_[i >> 6] |= mask;
    else
      words_[i >> 6] &= ~mask;
  }
  void flip(std::size_t i) { words_[i >> 6] ^= std::uint64_t{1} << (i & 63); }

  void clear_all();
  void set_all();

  // Appends one bit, growing the vector.
  void push_back(bool v);

  std::size_t count_ones() const;

  // Index of first bit where *this and other differ, or npos when equal.
  // Both vectors must have the same size.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t first_difference(const BitVec& other) const;

  BitVec& operator^=(const BitVec& other);
  BitVec& operator&=(const BitVec& other);
  BitVec& operator|=(const BitVec& other);

  bool operator==(const BitVec& other) const {
    return nbits_ == other.nbits_ && words_ == other.words_;
  }
  bool operator!=(const BitVec& other) const { return !(*this == other); }

  // Lexicographic on bit index 0..n-1; shorter vectors compare by size first.
  bool operator<(const BitVec& other) const;

  // '0'/'1' characters, bit index 0 first.
  std::string to_string() const;

  const std::vector<std::uint64_t>& words() const { return words_; }
  std::vector<std::uint64_t>& mutable_words() { return words_; }

  // Zeroes any bits beyond size() in the last word. Call after writing
  // words directly through mutable_words().
  void normalize_tail();

  static std::size_t word_count(std::size_t nbits) { return (nbits + 63) / 64; }

 private:
  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace sddict
