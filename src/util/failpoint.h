// Deterministic fault-injection points compiled into the library.
//
// Library code marks a failure-prone spot with SDDICT_FAILPOINT("name");
// tests arm a point to throw on its N-th hit (see tests/faultinject.h for
// the RAII harness). When nothing is armed — the production case — a hit
// costs a single relaxed atomic load. Points are process-global and
// thread-safe: hits from pool workers decrement the same countdown.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace sddict::failpoint {

// What an armed point throws when its countdown reaches zero.
enum class Kind {
  kRuntimeError,  // InjectedFault (a std::runtime_error)
  kBadAlloc,      // std::bad_alloc, simulating allocation failure
};

// Thrown by kRuntimeError failpoints; the message names the point.
struct InjectedFault : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// Arms `name` to throw on its `countdown`-th hit (1 = the next hit).
// Re-arming an armed point replaces its countdown and kind.
void arm(const std::string& name, std::size_t countdown = 1,
         Kind kind = Kind::kRuntimeError);

void disarm(const std::string& name);
void disarm_all();

// Called by instrumented library code; throws when the point fires.
void check(const char* name);

}  // namespace sddict::failpoint

#define SDDICT_FAILPOINT(name) ::sddict::failpoint::check(name)
