// Deterministic fault-injection points compiled into the library.
//
// Library code marks a failure-prone spot with SDDICT_FAILPOINT("name");
// tests arm a point to throw on its N-th hit (see tests/faultinject.h for
// the RAII harness). When nothing is armed — the production case — a hit
// costs a single relaxed atomic load. Points are process-global and
// thread-safe: hits from pool workers decrement the same countdown.
//
// The networked serving tier needs faults that are *conditions*, not
// exceptions — a short read, a spurious EINTR, a dropped byte — so besides
// the throwing check() there is a non-throwing triggered() query, and
// points can be armed cyclically (fire on every period-th hit, forever)
// so a soak run keeps injecting for its whole duration. Cross-process
// runs (the soak harness starting a server binary) arm points through the
// SDDICT_FAILPOINTS environment variable via arm_from_env().
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace sddict::failpoint {

// What an armed point throws when its countdown reaches zero.
enum class Kind {
  kRuntimeError,  // InjectedFault (a std::runtime_error)
  kBadAlloc,      // std::bad_alloc, simulating allocation failure
};

// Thrown by kRuntimeError failpoints; the message names the point.
struct InjectedFault : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// Arms `name` to throw on its `countdown`-th hit (1 = the next hit).
// Re-arming an armed point replaces its countdown and kind.
void arm(const std::string& name, std::size_t countdown = 1,
         Kind kind = Kind::kRuntimeError);

// Arms `name` to fire on every `period`-th hit, indefinitely (period = 1
// fires on every hit). Cyclic points stay armed after firing; disarm
// explicitly. Meant for triggered()-style condition points, but check()
// honors them too (throwing on each firing hit).
void arm_cyclic(const std::string& name, std::size_t period,
                Kind kind = Kind::kRuntimeError);

void disarm(const std::string& name);
void disarm_all();

// Called by instrumented library code; throws when the point fires.
void check(const char* name);

// Non-throwing variant for condition-style injection (I/O paths where the
// "fault" is a degraded syscall result, not an exception): counts a hit
// and returns true when the point fires. One-shot points disarm on
// firing; cyclic points re-arm for their next period.
bool triggered(const char* name);

// Arms every point listed in the environment variable `envvar` (default
// SDDICT_FAILPOINTS), a comma-separated list of `name=N` (one-shot, fires
// on the N-th hit) and `name=every:N` (cyclic) entries, e.g.
//   SDDICT_FAILPOINTS=net.read.short=every:7,net.accept.eintr=3
// Returns the number of points armed; malformed entries throw
// std::invalid_argument naming the entry. A missing/empty variable arms
// nothing and returns 0.
std::size_t arm_from_env(const char* envvar = "SDDICT_FAILPOINTS");

// Parses one spec list (the env-var syntax above) and arms the points.
std::size_t arm_from_spec(const std::string& spec);

}  // namespace sddict::failpoint

#define SDDICT_FAILPOINT(name) ::sddict::failpoint::check(name)
