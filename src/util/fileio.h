// Small filesystem helpers shared by the artifact-repository layer and the
// CLI tools: whole-file reads and crash-consistent whole-file writes.
//
// atomic_write_file is the torn-file discipline for binary artifacts: the
// bytes land in a temp file in the destination directory, are flushed and
// fsync'd, and the temp file is renamed over the destination (POSIX rename
// is atomic within a filesystem), after which the directory itself is
// fsync'd so the rename survives a crash. A reader can therefore only ever
// observe the old file or the complete new file, never a prefix.
#pragma once

#include <string>
#include <string_view>

namespace sddict {

bool file_exists(const std::string& path);
bool dir_exists(const std::string& path);

// Creates one directory level (parent must exist). Succeeds silently when
// the directory already exists; throws std::runtime_error otherwise.
void make_dir(const std::string& path);

// Directory part of `path` ("." when the path has no separator).
std::string parent_dir(const std::string& path);

// Reads the whole file as binary; throws std::runtime_error naming the
// path on open/read failure.
std::string read_file_bytes(const std::string& path);

// Atomically replaces `path` with `bytes` (temp file + flush + fsync +
// rename + directory fsync). Throws std::runtime_error naming the failing
// step; on failure the temp file is removed and the destination is
// untouched. Failpoints "fileio.write" (mid-write) and "fileio.rename"
// (after the temp file is complete, before it is renamed) model a crash at
// the two interesting instants.
void atomic_write_file(const std::string& path, std::string_view bytes);

}  // namespace sddict
