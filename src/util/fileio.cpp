#include "util/fileio.h"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "util/failpoint.h"

#if defined(__unix__) || defined(__APPLE__)
#define SDDICT_HAS_POSIX_IO 1
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace sddict {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("fileio: " + what);
}

}  // namespace

bool file_exists(const std::string& path) {
#ifdef SDDICT_HAS_POSIX_IO
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
#else
  std::ifstream in(path, std::ios::binary);
  return in.good();
#endif
}

bool dir_exists(const std::string& path) {
#ifdef SDDICT_HAS_POSIX_IO
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
#else
  return true;  // no portable check; callers degrade to open-time errors
#endif
}

void make_dir(const std::string& path) {
#ifdef SDDICT_HAS_POSIX_IO
  if (::mkdir(path.c_str(), 0755) != 0 && !dir_exists(path))
    fail("cannot create directory " + path);
#else
  (void)path;  // no portable mkdir; callers degrade to open-time errors
#endif
}

std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

std::string read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("cannot open " + path + " for reading");
  std::string bytes;
  char buf[1 << 16];
  while (in.read(buf, sizeof buf) || in.gcount() > 0) {
    bytes.append(buf, static_cast<std::size_t>(in.gcount()));
    if (in.bad()) break;
  }
  if (in.bad()) fail("read of " + path + " failed mid-stream");
  return bytes;
}

void atomic_write_file(const std::string& path, std::string_view bytes) {
  const std::string dir = parent_dir(path);
  if (!dir_exists(dir)) fail("directory " + dir + " does not exist");
  const std::string tmp = path + ".tmp";
#ifdef SDDICT_HAS_POSIX_IO
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("cannot open temp file " + tmp + " for writing");
  try {
    SDDICT_FAILPOINT("fileio.write");
    const char* p = bytes.data();
    std::size_t left = bytes.size();
    while (left > 0) {
      const ssize_t n = ::write(fd, p, left);
      if (n <= 0) fail("write to temp file " + tmp + " failed");
      p += n;
      left -= static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0) fail("fsync of temp file " + tmp + " failed");
    SDDICT_FAILPOINT("fileio.rename");
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    fail("close of temp file " + tmp + " failed");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    fail("rename of " + tmp + " over " + path + " failed");
  }
  // Persist the rename itself: fsync the containing directory.
  const int dfd = ::open(dir.c_str(), O_RDONLY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
#else
  try {
    SDDICT_FAILPOINT("fileio.write");
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) fail("cannot open temp file " + tmp + " for writing");
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) fail("write to temp file " + tmp + " failed");
    SDDICT_FAILPOINT("fileio.rename");
  } catch (...) {
    std::remove(tmp.c_str());
    throw;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    fail("rename of " + tmp + " over " + path + " failed");
  }
#endif
}

}  // namespace sddict
