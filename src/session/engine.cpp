#include "session/engine.h"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <string>
#include <utility>

#include "store/kernels.h"
#include "store/signature_store.h"
#include "util/bitvec.h"

namespace sddict {

namespace {

std::uint32_t popcount_and(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t n) {
  std::uint32_t c = 0;
  for (std::size_t i = 0; i < n; ++i)
    c += static_cast<std::uint32_t>(std::popcount(a[i] & b[i]));
  return c;
}

}  // namespace

bool SessionEngine::detects(FaultId f, std::size_t t) const {
  return kernels::bit_at(detect_.data() + f * words_, t);
}

void SessionEngine::build(
    std::size_t num_faults, std::size_t num_tests,
    const std::function<bool(FaultId, std::size_t)>& detect) {
  num_faults_ = num_faults;
  num_tests_ = num_tests;
  words_ = BitVec::word_count(num_tests);
  detect_.assign(num_faults * words_, 0);
  ad_.assign(num_faults, 0);
  for (FaultId f = 0; f < num_faults; ++f) {
    std::uint64_t* row = detect_.data() + f * words_;
    std::uint32_t ad = 0;
    for (std::size_t t = 0; t < num_tests; ++t)
      if (detect(f, t)) {
        row[t >> 6] |= std::uint64_t{1} << (t & 63);
        ++ad;
      }
    ad_[f] = ad;
  }
}

SessionEngine::SessionEngine(std::shared_ptr<const SignatureStore> store)
    : store_(std::move(store)) {
  if (!store_) throw std::invalid_argument("SessionEngine: null store");
  const SignatureStore& s = *store_;
  switch (s.kind()) {
    case StoreKind::kPassFail:
      build(s.num_faults(), s.num_tests(),
            [&s](FaultId f, std::size_t t) { return s.row_bit(f, t); });
      break;
    case StoreKind::kSameDifferent:
      // Bit semantics of the staged engine's projection: against the
      // fault-free baseline the bit IS the fail bit; against a faulty
      // baseline only bit 0 ("same as that faulty response") is a
      // definite fail.
      build(s.num_faults(), s.num_tests(), [&s](FaultId f, std::size_t t) {
        return s.baselines()[t] == 0 ? s.row_bit(f, t) : !s.row_bit(f, t);
      });
      break;
    case StoreKind::kMultiBaseline: {
      const std::size_t rank = s.rank();
      build(s.num_faults(), s.num_tests(),
            [&s, rank](FaultId f, std::size_t t) {
              const auto [ids, count] = s.baseline_set(t);
              for (std::size_t l = 0; l < count; ++l) {
                const bool differs = s.row_bit(f, t * rank + l);
                if (ids[l] == 0) {
                  if (differs) return true;  // differs from fault-free
                } else if (!differs) {
                  return true;  // matches a faulty baseline
                }
              }
              return false;
            });
      break;
    }
    case StoreKind::kFull:
      build(s.num_faults(), s.num_tests(),
            [&s](FaultId f, std::size_t t) { return s.entry(f, t) != 0; });
      break;
  }
  rank_ = [sp = store_](const std::vector<Observed>& obs,
                        const EngineOptions& o) {
    return diagnose_observed(*sp, obs, o);
  };
}

SessionEngine::SessionEngine(const PassFailDictionary& dict) {
  build(dict.num_faults(), dict.num_tests(),
        [&dict](FaultId f, std::size_t t) { return dict.bit(f, t); });
  rank_ = [&dict](const std::vector<Observed>& obs, const EngineOptions& o) {
    return diagnose_observed(dict, obs, o);
  };
}

SessionEngine::SessionEngine(const SameDifferentDictionary& dict) {
  const auto& bl = dict.baselines();
  build(dict.num_faults(), dict.num_tests(),
        [&dict, &bl](FaultId f, std::size_t t) {
          return bl[t] == 0 ? dict.bit(f, t) : !dict.bit(f, t);
        });
  rank_ = [&dict](const std::vector<Observed>& obs, const EngineOptions& o) {
    return diagnose_observed(dict, obs, o);
  };
}

SessionEngine::SessionEngine(const MultiBaselineDictionary& dict) {
  const std::size_t rank = dict.baselines_per_test();
  const auto& bl = dict.baselines();
  build(dict.num_faults(), dict.num_tests(),
        [&dict, &bl, rank](FaultId f, std::size_t t) {
          for (std::size_t l = 0; l < bl[t].size(); ++l) {
            const bool differs = dict.row(f).get(t * rank + l);
            if (bl[t][l] == 0) {
              if (differs) return true;
            } else if (!differs) {
              return true;
            }
          }
          return false;
        });
  rank_ = [&dict](const std::vector<Observed>& obs, const EngineOptions& o) {
    return diagnose_observed(dict, obs, o);
  };
}

SessionEngine::SessionEngine(const FullDictionary& dict) {
  build(dict.num_faults(), dict.num_tests(),
        [&dict](FaultId f, std::size_t t) { return dict.entry(f, t) != 0; });
  rank_ = [&dict](const std::vector<Observed>& obs, const EngineOptions& o) {
    return diagnose_observed(dict, obs, o);
  };
}

SessionEngine::SessionEngine(const FirstFailDictionary& dict,
                             const ResponseMatrix& rm) {
  build(dict.num_faults(), dict.num_tests(),
        [&dict](FaultId f, std::size_t t) { return dict.entry(f, t) != 0; });
  // This backend is the one whose fault-free response may be interned
  // away from id 0; resolve the pass baseline per test like the engine's
  // first-fail overload does.
  ff_.resize(dict.num_tests());
  for (std::size_t t = 0; t < dict.num_tests(); ++t)
    ff_[t] = rm.fault_free_id(t);
  rank_ = [&dict, &rm](const std::vector<Observed>& obs,
                       const EngineOptions& o) {
    return diagnose_observed(dict, rm, obs, o);
  };
}

SessionDiagnosis SessionEngine::diagnose(const SessionEvidence& ev,
                                         const SessionOptions& opt) const {
  if (ev.num_runs == 0)
    throw std::invalid_argument("session diagnose: session has no runs");
  if (ev.num_tests != num_tests_)
    throw std::invalid_argument(
        "session diagnose: evidence covers " + std::to_string(ev.num_tests) +
        " tests, dictionary has " + std::to_string(num_tests_));

  SessionDiagnosis out;
  out.num_runs = ev.num_runs;
  const std::vector<Observed> consensus = ev.consensus();
  // Single-fault ranking through the existing staged chain. With one
  // clean run the consensus IS that run's observation vector, so this is
  // bit-identical to calling diagnose_observed() directly.
  out.single = rank_(consensus, opt.engine);

  BudgetScope scope(opt.budget);

  // Pass/fail view of the consensus: a concrete reading that differs
  // from the fault-free response is a fail (kUnknownResponse included —
  // its one honest bit), qualified tests are don't-cares.
  BitVec fail_mask(num_tests_);
  BitVec pass_mask(num_tests_);
  std::vector<std::size_t> failing;
  for (std::size_t t = 0; t < num_tests_; ++t) {
    if (consensus[t].dont_care()) continue;
    const ResponseId ff = ff_.empty() ? 0 : ff_[t];
    if (consensus[t].value != ff) {
      fail_mask.set(t, true);
      failing.push_back(t);
    } else {
      pass_mask.set(t, true);
    }
  }
  out.failing_tests = failing.size();
  if (failing.empty()) {
    out.cover_minimal = true;
    return out;
  }

  // Candidate scoring on the packed rows: per-fault coverage of the
  // failing set and conflicts against the passing set, one kernel call
  // each (obs = zeros, so masked_hamming counts row & mask). Setup and
  // the greedy incumbent below run un-polled — they are the bounded floor
  // an anytime result always includes; only the exponential search polls.
  const kernels::KernelTable& kt = kernels::dispatch();
  const std::vector<std::uint64_t> zeros(words_, 0);
  const std::uint64_t* fm = fail_mask.words().data();
  const std::uint64_t* pm = pass_mask.words().data();
  std::vector<std::uint32_t> relevant;       // faults covering >= 1 failure
  std::vector<std::uint32_t> conflicts_of;   // indexed like `relevant`
  std::vector<std::uint64_t> detected(words_, 0);  // union of relevant rows
  for (FaultId f = 0; f < num_faults_; ++f) {
    const std::uint64_t* row = detect_.data() + f * words_;
    if (kt.masked_hamming(row, zeros.data(), fm, words_) == 0) continue;
    relevant.push_back(static_cast<std::uint32_t>(f));
    conflicts_of.push_back(kt.masked_hamming(row, zeros.data(), pm, words_));
    for (std::size_t w = 0; w < words_; ++w) detected[w] |= row[w];
  }

  // Failing tests no modeled fault detects cannot constrain the cover;
  // report them and search over the rest.
  std::vector<std::size_t> coverable;
  for (const std::size_t t : failing) {
    if (kernels::bit_at(detected.data(), t))
      coverable.push_back(t);
    else
      ++out.unexplained_failures;
  }
  const std::size_t nf = coverable.size();
  if (nf == 0) {
    out.cover_minimal = true;
    return out;
  }

  // Compressed coverage rows over the coverable-failure positions, so the
  // search never touches full-width rows: cov[r] bit i <=> relevant[r]
  // detects coverable[i].
  const std::size_t fw = BitVec::word_count(nf);
  std::vector<std::uint64_t> cov(relevant.size() * fw, 0);
  std::vector<std::vector<std::uint32_t>> cand(nf);  // detectors per failure
  for (std::size_t r = 0; r < relevant.size(); ++r) {
    const std::uint64_t* row =
        detect_.data() + static_cast<std::size_t>(relevant[r]) * words_;
    std::uint64_t* crow = cov.data() + r * fw;
    for (std::size_t i = 0; i < nf; ++i)
      if (kernels::bit_at(row, coverable[i])) {
        crow[i >> 6] |= std::uint64_t{1} << (i & 63);
        cand[i].push_back(static_cast<std::uint32_t>(r));
      }
  }

  // Candidate preference at equal coverage gain: fewer conflicts, then
  // the AD index (a low accidental-detection count makes a fault hard to
  // implicate by accident), then fault id.
  const auto prefer = [&](std::uint32_t a, std::uint32_t b) {
    if (conflicts_of[a] != conflicts_of[b])
      return conflicts_of[a] < conflicts_of[b];
    if (ad_[relevant[a]] != ad_[relevant[b]])
      return ad_[relevant[a]] < ad_[relevant[b]];
    return relevant[a] < relevant[b];
  };

  // Greedy incumbent: the anytime fallback and the branch-and-bound's
  // initial upper bound.
  std::vector<std::uint64_t> uncov(fw, 0);
  for (std::size_t i = 0; i < nf; ++i)
    uncov[i >> 6] |= std::uint64_t{1} << (i & 63);
  std::vector<std::uint32_t> greedy;
  std::size_t greedy_uncovered = nf;
  {
    std::vector<std::uint64_t> u = uncov;
    std::size_t left = nf;
    while (left > 0 && greedy.size() < opt.max_cover) {
      std::uint32_t best_r = 0;
      std::uint32_t best_gain = 0;
      for (std::uint32_t r = 0; r < relevant.size(); ++r) {
        const std::uint32_t g = popcount_and(cov.data() + r * fw, u.data(), fw);
        if (g > best_gain || (g == best_gain && g > 0 && prefer(r, best_r)))
          best_r = r, best_gain = g;
      }
      if (best_gain == 0) break;  // cannot happen: every position has a cand
      greedy.push_back(best_r);
      const std::uint64_t* crow = cov.data() + best_r * fw;
      for (std::size_t w = 0; w < fw; ++w) u[w] &= ~crow[w];
      left -= best_gain;
    }
    greedy_uncovered = left;
  }
  const bool greedy_full = greedy_uncovered == 0;

  // Branch-and-bound enumeration of minimal covers. Exclusion branching
  // (branch i of a node bans candidates 0..i-1 of that node in its whole
  // subtree) yields every cover exactly once: a cover surfaces in the
  // branch of its lowest-ordered member among the branch test's
  // candidates. The admissible bound ceil(uncovered / gmax) prunes with
  // > (not >=), so every tie at the minimal cardinality is enumerated.
  std::uint32_t gmax = 1;
  for (std::size_t r = 0; r < relevant.size(); ++r)
    gmax = std::max(gmax, popcount_and(cov.data() + r * fw, uncov.data(), fw));

  std::size_t best = greedy_full ? greedy.size() : opt.max_cover + 1;
  bool have_full = greedy_full;
  std::vector<std::vector<std::uint32_t>> sols;
  bool truncated = false;
  bool stopped = false;
  std::vector<char> banned(relevant.size(), 0);
  std::vector<std::uint32_t> chosen;

  const std::function<void(const std::vector<std::uint64_t>&, std::size_t)>
      search = [&](const std::vector<std::uint64_t>& u, std::size_t left) {
        // Polled per node: the node's own work (candidate scan + sort)
        // dwarfs the clock read, and per-node polling makes truncation
        // deterministic — an expired budget stops at the very next node.
        if (stopped || scope.stop()) {
          stopped = true;
          return;
        }
        if (left == 0) {
          if (chosen.size() < best || !have_full) {
            best = chosen.size();
            have_full = true;
            sols.clear();
            truncated = false;
          }
          if (sols.size() < opt.max_groups)
            sols.push_back(chosen);
          else
            truncated = true;
          return;
        }
        const std::size_t limit = have_full ? best : opt.max_cover;
        if (chosen.size() + (left + gmax - 1) / gmax > limit) return;
        // Branch on the most constrained uncovered failure (fewest
        // detectors overall — a cheap static proxy).
        std::size_t pick = nf;
        for (std::size_t i = 0; i < nf; ++i) {
          if (!((u[i >> 6] >> (i & 63)) & 1u)) continue;
          if (pick == nf || cand[i].size() < cand[pick].size()) pick = i;
        }
        // Order its detectors: coverage gain against the live uncovered
        // set first, then the conflict/AD/id preference.
        std::vector<std::pair<std::uint32_t, std::uint32_t>> order;  // (r, gain)
        order.reserve(cand[pick].size());
        for (const std::uint32_t r : cand[pick]) {
          if (banned[r]) continue;
          order.emplace_back(r,
                             popcount_and(cov.data() + r * fw, u.data(), fw));
        }
        std::sort(order.begin(), order.end(), [&](const auto& a, const auto& b) {
          if (a.second != b.second) return a.second > b.second;
          return prefer(a.first, b.first);
        });
        std::size_t banned_here = 0;
        for (const auto& [r, gain] : order) {
          std::vector<std::uint64_t> child(fw);
          const std::uint64_t* crow = cov.data() + r * fw;
          for (std::size_t w = 0; w < fw; ++w) child[w] = u[w] & ~crow[w];
          chosen.push_back(r);
          search(child, left - gain);
          chosen.pop_back();
          if (stopped) break;
          banned[r] = 1;  // later branches must not re-enumerate covers of r
          ++banned_here;
        }
        for (std::size_t i = 0; i < banned_here; ++i) banned[order[i].first] = 0;
      };
  search(uncov, nf);

  out.completed = !stopped;
  out.stop_reason = stopped ? scope.reason() : StopReason::kCompleted;
  if (sols.empty()) {
    if (greedy.empty()) return out;  // budget died before the greedy pass
    sols.push_back(greedy);  // anytime incumbent (possibly partial)
    out.uncovered_failures = greedy_uncovered;
    out.cover_minimal = false;
  } else {
    out.cover_minimal = !stopped;
    out.groups_truncated = truncated;
  }
  out.min_cover = sols.front().size();

  // Score each cover as an ambiguity group on the full-width rows.
  double weight_total = 0;
  for (std::size_t t = 0; t < num_tests_; ++t)
    if (!consensus[t].dont_care()) weight_total += ev.weight(t);
  std::vector<std::uint64_t> joint(words_);
  for (const std::vector<std::uint32_t>& sol : sols) {
    AmbiguityGroup g;
    std::fill(joint.begin(), joint.end(), 0);
    for (const std::uint32_t r : sol) {
      const FaultId f = relevant[r];
      g.faults.push_back(f);
      g.ad_sum += ad_[f];
      const std::uint64_t* row = detect_.data() + f * words_;
      for (std::size_t w = 0; w < words_; ++w) joint[w] |= row[w];
    }
    std::sort(g.faults.begin(), g.faults.end());
    g.conflicts = popcount_and(joint.data(), pm, words_);
    double consistent = 0;
    for (std::size_t t = 0; t < num_tests_; ++t) {
      if (consensus[t].dont_care()) continue;
      const bool predicted_fail = kernels::bit_at(joint.data(), t);
      if (predicted_fail == fail_mask.get(t)) consistent += ev.weight(t);
    }
    g.confidence = weight_total > 0 ? consistent / weight_total : 0.0;
    out.groups.push_back(std::move(g));
  }
  std::sort(out.groups.begin(), out.groups.end(),
            [](const AmbiguityGroup& a, const AmbiguityGroup& b) {
              if (a.conflicts != b.conflicts) return a.conflicts < b.conflicts;
              if (a.confidence != b.confidence)
                return a.confidence > b.confidence;
              if (a.ad_sum != b.ad_sum) return a.ad_sum < b.ad_sum;
              return a.faults < b.faults;
            });
  return out;
}

}  // namespace sddict
