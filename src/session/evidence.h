// Cross-run evidence aggregation for session-level diagnosis: a tester
// retests the same die several times, and each run yields one qualified
// observation vector (sim/response.h). aggregate_runs() folds the runs
// into a per-test consensus — majority vote over the concrete values,
// with disagreement demoted to kUnstable rather than silently trusting
// either reading — plus the agreement counts the diagnoser turns into
// per-group confidence.
//
// A single run aggregates to exactly itself (consensus == the run's
// observation vector, record for record), which is what the session
// engine's single-run ≡ diagnose() identity gate rests on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/response.h"

namespace sddict {

// One application of the test set to the die under diagnosis.
struct SessionRun {
  std::vector<Observed> observed;
  std::size_t dropped = 0;  // datalog records set aside by the reader
};

// Consensus of one test across every run of the session.
struct TestEvidence {
  Observed consensus = Observed::missing();
  // Runs that recorded a concrete value (kValue) for this test.
  std::uint32_t votes = 0;
  // Of those, runs agreeing with the plurality value.
  std::uint32_t agree = 0;
  // Two or more distinct concrete values were recorded across runs.
  bool conflicted = false;
};

struct SessionEvidence {
  std::size_t num_tests = 0;
  std::size_t num_runs = 0;
  std::vector<TestEvidence> tests;
  std::size_t conflicted_tests = 0;

  // The consensus observation vector the single-fault engine ranks.
  std::vector<Observed> consensus() const;

  // Agreement weight of test t in [0, 1]: the fraction of runs backing
  // the consensus value (0 for tests with no concrete reading). The
  // confidence of an ambiguity group is the weighted fraction of this
  // evidence its fault set predicts correctly.
  double weight(std::size_t t) const {
    return num_runs == 0 ? 0.0
                         : static_cast<double>(tests[t].agree) /
                               static_cast<double>(num_runs);
  }
};

// Folds the runs test by test. The plurality value wins; a tie between
// distinct values has no honest winner and aggregates to kUnstable; a
// test no run read concretely stays kUnstable (if any run flagged it so)
// or kMissing. Throws std::invalid_argument when runs disagree on the
// observation-vector length.
SessionEvidence aggregate_runs(const std::vector<SessionRun>& runs);

}  // namespace sddict
