#include "session/service.h"

#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "diag/testerlog.h"
#include "util/strings.h"

namespace sddict {

namespace {

// Same two-line shape net::write_error produces; duplicated here so the
// session library stays independent of the net layer.
void write_session_error(std::ostream& out, const std::string& what) {
  out << "error " << what << "\n" << "done\n";
}

std::string format_confidence(double c) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", c);
  return buf;
}

}  // namespace

void write_session_diagnosis(std::ostream& out, const std::string& id,
                             const SessionEvidence& evidence,
                             const SessionDiagnosis& d) {
  out << "session id=" << id << " runs=" << d.num_runs
      << " tests=" << evidence.num_tests
      << " conflicted=" << evidence.conflicted_tests << "\n";
  // The single-fault consensus ranking, in write_response's exact line
  // format minus the volatile timing line — stdio and TCP transcripts of
  // the same session diff clean.
  const EngineDiagnosis& s = d.single;
  out << "diagnosis " << diagnosis_outcome_name(s.outcome)
      << " best=" << s.best_mismatches << " margin=" << s.margin
      << " effective=" << s.effective_tests
      << " dont_care=" << s.dont_care_tests << " unknown=" << s.unknown_tests
      << " completed=" << (s.completed ? 1 : 0)
      << " stop=" << stop_reason_name(s.stop_reason) << "\n";
  for (std::size_t i = 0; i < s.matches.size(); ++i)
    out << "candidate " << (i + 1) << " fault=" << s.matches[i].fault
        << " mismatches=" << s.matches[i].mismatches << "\n";
  if (s.outcome == DiagnosisOutcome::kUnmodeledDefect && !s.cover.empty()) {
    out << "cover";
    for (FaultId f : s.cover) out << " fault=" << f;
    out << " uncovered=" << s.uncovered_failures << "\n";
  }
  out << "multifault failing=" << d.failing_tests
      << " unexplained=" << d.unexplained_failures
      << " min_cover=" << d.min_cover
      << " minimal=" << (d.cover_minimal ? 1 : 0)
      << " uncovered=" << d.uncovered_failures << " groups=" << d.groups.size()
      << " truncated=" << (d.groups_truncated ? 1 : 0)
      << " completed=" << (d.completed ? 1 : 0)
      << " stop=" << stop_reason_name(d.stop_reason) << "\n";
  for (std::size_t i = 0; i < d.groups.size(); ++i) {
    const AmbiguityGroup& g = d.groups[i];
    out << "group " << (i + 1) << " faults=";
    for (std::size_t j = 0; j < g.faults.size(); ++j) {
      if (j > 0) out << ',';
      out << g.faults[j];
    }
    out << " conflicts=" << g.conflicts << " ad=" << g.ad_sum
        << " confidence=" << format_confidence(g.confidence) << "\n";
  }
  out << "done\n";
}

SessionService::SessionService(EngineFn engine,
                               const SessionServiceOptions& options)
    : engine_(std::move(engine)),
      options_(options),
      store_(options.limits) {}

void SessionService::handle(const std::string& frame_text, std::ostream& out) {
  const std::size_t eol = frame_text.find('\n');
  const std::string first =
      eol == std::string::npos ? frame_text : frame_text.substr(0, eol);
  const std::string rest =
      eol == std::string::npos ? std::string() : frame_text.substr(eol + 1);
  const std::vector<std::string> tokens = split_ws(first);
  if (tokens.size() != 3 || tokens[0] != "session") {
    write_session_error(out,
                        "usage: session begin|append|diagnose|end <id>");
    return;
  }
  const std::string& verb = tokens[1];
  const std::string& id = tokens[2];
  try {
    if (verb == "begin") {
      store_.begin(id);
      out << "session id=" << id << " state=open runs=0\n" << "done\n";
    } else if (verb == "append") {
      (void)store_.runs(id);  // fail with the no-open-session message first
      std::istringstream log(rest);
      const TesterLog parsed = read_testerlog(log, {.recover = true});
      if (parsed.truncated)
        throw std::runtime_error("datalog truncated: no 'end' trailer");
      const std::shared_ptr<const SessionEngine> eng = engine_();
      if (parsed.observations.size() != eng->num_tests())
        throw std::runtime_error(
            "run observes " + std::to_string(parsed.observations.size()) +
            " tests, dictionary has " + std::to_string(eng->num_tests()));
      SessionRun run;
      run.observed = parsed.observations;
      run.dropped = parsed.dropped.size();
      const std::size_t n = store_.append(id, std::move(run));
      out << "session id=" << id << " state=open runs=" << n;
      if (!parsed.dropped.empty()) out << " dropped=" << parsed.dropped.size();
      out << "\n" << "done\n";
    } else if (verb == "diagnose") {
      const std::vector<SessionRun>& runs = store_.runs(id);
      if (runs.empty())
        throw std::runtime_error("session '" + id +
                                 "' has no runs (use 'session append')");
      const SessionEvidence evidence = aggregate_runs(runs);
      const std::shared_ptr<const SessionEngine> eng = engine_();
      SessionOptions opt = options_.diagnose;
      if (options_.deadline_ms > 0) {
        opt.budget =
            fold_legacy_deadline(opt.budget, options_.deadline_ms / 1000.0);
        opt.engine.budget = fold_legacy_deadline(opt.engine.budget,
                                                 options_.deadline_ms / 1000.0);
      }
      const SessionDiagnosis d = eng->diagnose(evidence, opt);
      write_session_diagnosis(out, id, evidence, d);
    } else if (verb == "end") {
      const std::size_t n = store_.end(id);
      out << "session id=" << id << " state=closed runs=" << n << "\n"
          << "done\n";
    } else {
      write_session_error(out, "unknown session verb '" + verb + "'");
    }
  } catch (const std::exception& e) {
    write_session_error(out, e.what());
  }
}

std::shared_ptr<const SessionEngine> SessionEngineCache::get(
    std::shared_ptr<const SignatureStore> store) {
  if (!store)
    throw std::runtime_error(
        "session diagnosis needs a store-backed service");
  if (!engine_ || store.get() != store_.get()) {
    engine_ = std::make_shared<const SessionEngine>(store);
    store_ = std::move(store);
  }
  return engine_;
}

}  // namespace sddict
